package discsp

import (
	"io"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
)

// ColoringInstance is a generated solvable graph-coloring problem with its
// planted witness solution.
type ColoringInstance = gen.ColoringInstance

// SATInstance is a generated satisfiable 3SAT problem with its planted
// assignment.
type SATInstance = gen.SATInstance

// GenerateColoring generates a solvable graph-coloring instance with n
// nodes, m arcs, and the given number of colors (Minton et al. method). The
// paper's distributed 3-coloring benchmark uses colors=3 and m = 2.7n.
func GenerateColoring(n, m, colors int, seed int64) (*ColoringInstance, error) {
	return gen.Coloring(n, m, colors, seed)
}

// GenerateForcedSAT3 generates a satisfiable random 3SAT instance with n
// variables and m clauses (3SAT-GEN style). The paper uses m = 4.3n.
func GenerateForcedSAT3(n, m int, seed int64) (*SATInstance, error) {
	return gen.ForcedSAT3(n, m, seed)
}

// GenerateUniqueSAT3 generates a satisfiable 3SAT instance with exactly one
// solution (3ONESAT-GEN style). The paper uses m = 3.4n.
func GenerateUniqueSAT3(n, m int, seed int64) (*SATInstance, error) {
	return gen.UniqueSAT3(n, m, seed)
}

// RandomInitial draws uniform random initial values for every variable of
// p, deterministically from seed.
func RandomInitial(p *Problem, seed int64) SliceAssignment {
	return gen.RandomInitial(p, seed)
}

// ParseCNF reads a DIMACS CNF formula.
func ParseCNF(r io.Reader) (*CNF, error) { return csp.ParseCNF(r) }

// WriteCNF writes a formula in DIMACS CNF format.
func WriteCNF(w io.Writer, cnf *CNF, comments ...string) error {
	return csp.WriteCNF(w, cnf, comments...)
}

// ParseCOL reads a DIMACS COL graph.
func ParseCOL(r io.Reader) (*Graph, error) { return csp.ParseCOL(r) }

// WriteCOL writes a graph in DIMACS COL format.
func WriteCOL(w io.Writer, g *Graph, comments ...string) error {
	return csp.WriteCOL(w, g, comments...)
}

// BinaryCSPInstance is a generated random binary CSP.
type BinaryCSPInstance = gen.BinaryCSPInstance

// BinaryCSPConfig parameterizes GenerateBinaryCSP (Model B random CSPs).
type BinaryCSPConfig = gen.BinaryCSPConfig

// GenerateBinaryCSP generates a Model B random binary CSP: Density·n(n-1)/2
// constrained variable pairs, each prohibiting Tightness·d² value
// combinations; Force plants a solution, guaranteeing solubility.
func GenerateBinaryCSP(cfg BinaryCSPConfig, seed int64) (*BinaryCSPInstance, error) {
	return gen.RandomBinaryCSP(cfg, seed)
}

// WriteProblemJSON serializes any problem — including general k-ary,
// mixed-domain problems that have no DIMACS form — in the library's native
// JSON exchange format.
func WriteProblemJSON(w io.Writer, p *Problem) error {
	return csp.WriteProblemJSON(w, p)
}

// ReadProblemJSON parses a problem written by WriteProblemJSON.
func ReadProblemJSON(r io.Reader) (*Problem, error) {
	return csp.ReadProblemJSON(r)
}
