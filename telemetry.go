package discsp

import (
	"io"

	"github.com/discsp/discsp/internal/telemetry"
)

// Telemetry is the unified observability bundle attached to a run via
// Options.Telemetry: a metrics registry plus an optional JSONL event
// stream. A nil *Telemetry is the disabled configuration — the runtimes
// instrument through nil-checked branches only, and enabling it never
// changes cycles, maxcck, traces, or journaled aggregates (pinned by
// TestTelemetryInert).
type Telemetry = telemetry.Run

// MetricsRegistry aliases the telemetry registry so callers can mint one,
// hand it to Options.Telemetry, and serve or snapshot it.
type MetricsRegistry = telemetry.Registry

// TransportCounters is the shared reliability-layer counter block; see
// Result.Transport.
type TransportCounters = telemetry.Transport

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// NewTelemetry bundles a registry (may be nil) with an event stream
// written to w (may be nil for metrics-only). Call Flush on the returned
// bundle after the run to drain the stream and surface write errors.
func NewTelemetry(reg *MetricsRegistry, w io.Writer) *Telemetry {
	return telemetry.NewRun(reg, w)
}

// ServeMetrics serves reg at addr: /metrics (Prometheus text exposition),
// /metrics.json, /debug/vars (expvar), and /debug/pprof. Pass ":0" to bind
// an ephemeral port; the returned server's Addr has the bound address.
func ServeMetrics(addr string, reg *MetricsRegistry) (*telemetry.Server, error) {
	return telemetry.Serve(addr, reg)
}

// Transport returns the run's reliability-layer counters as the shared
// formatter type: Suffix() renders the " retrans=… dups=…" block every CLI
// surface appends, and Record() folds the counters into a registry.
func (r Result) Transport() TransportCounters {
	return TransportCounters{
		Retransmits:          r.Retransmits,
		DuplicatesSuppressed: r.DuplicatesSuppressed,
		Restarts:             r.Restarts,
		Partitioned:          r.Partitioned,
		PartitionHeals:       r.PartitionHeals,
		Reconnects:           r.Reconnects,
		HeartbeatTimeouts:    r.HeartbeatTimeouts,
		CorruptFrames:        r.CorruptFrames,
		BytesSent:            r.BytesSent,
		BytesRecv:            r.BytesRecv,
		BatchedFrames:        r.BatchedFrames,
	}
}

// AlgorithmName returns the run's label in the tables' naming scheme:
// "AWC-Rslv", "AWC-3rdRslv", "DB", "ABT", ...
func (o Options) AlgorithmName() string {
	switch o.Algorithm {
	case DB, ABT:
		return o.Algorithm.String()
	default:
		return "AWC-" + o.learning().Name()
	}
}

// instrumented is implemented by the algorithm agents whose nogood store
// accepts telemetry hooks.
type instrumented interface {
	Instrument(telemetry.StoreMetrics)
}

// storeSizer is implemented by agents exposing their nogood-store size.
type storeSizer interface{ StoreSize() int }
