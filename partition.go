package discsp

import (
	"github.com/discsp/discsp/internal/multi"
	"github.com/discsp/discsp/internal/sim"
)

// Partition assigns every problem variable to exactly one agent: entry i
// lists the variables owned by agent i. Most real distributed problems come
// pre-partitioned ("the distribution of local problems is given in
// advance", Section 2.1); UniformPartition and SingletonPartition cover the
// synthetic cases.
type Partition = multi.Partition

// UniformPartition gives each agent `block` consecutive variables.
func UniformPartition(numVars, block int) Partition {
	return multi.Uniform(numVars, block)
}

// SingletonPartition is the one-variable-per-agent partition.
func SingletonPartition(numVars int) Partition {
	return multi.Singletons(numVars)
}

// PartitionedOptions configures SolvePartitioned.
type PartitionedOptions struct {
	// LearningSizeBound, when positive, applies the kthRslv recording rule
	// to the block-level nogoods.
	LearningSizeBound int
	// LocalSolutionLimit caps the per-repair local solution enumeration
	// (0 means 16).
	LocalSolutionLimit int
	// Initial supplies per-variable initial values; nil starts every
	// variable at its first domain value, and InitialSeed != 0 draws them
	// at random.
	Initial SliceAssignment
	// InitialSeed draws random initial values when Initial is nil.
	InitialSeed int64
	// MaxCycles is the synchronous cutoff; 0 means 10000.
	MaxCycles int
}

// SolvePartitioned runs the multi-variable-per-agent AWC extension
// (Section 5 of the paper, after Yokoo & Hirayama ICMAS-98): each agent
// owns a block of variables, solves its local CSP against the agent_view,
// and learns block-level resolvent nogoods at local deadends.
func SolvePartitioned(p *Problem, partition Partition, opts PartitionedOptions) (Result, error) {
	init, err := Options{Initial: opts.Initial, InitialSeed: opts.InitialSeed}.initial(p)
	if err != nil {
		return Result{}, err
	}
	res, _, err := multi.Run(p, partition, init, multi.Options{
		SizeBound:          opts.LearningSizeBound,
		LocalSolutionLimit: opts.LocalSolutionLimit,
	}, sim.Options{MaxCycles: opts.MaxCycles})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Solved:      res.Solved,
		Insoluble:   res.Insoluble,
		Assignment:  res.Assignment,
		Cycles:      res.Cycles,
		MaxCCK:      res.MaxCCK,
		TotalChecks: res.TotalChecks,
		Messages:    int64(res.Messages),
	}, nil
}
