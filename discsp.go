// Package discsp is a library for modeling and solving distributed
// constraint satisfaction problems (DisCSPs), reproducing the system of
//
//	Katsutoshi Hirayama and Makoto Yokoo,
//	"The Effect of Nogood Learning in Distributed Constraint Satisfaction",
//	Proc. 20th IEEE International Conference on Distributed Computing
//	Systems (ICDCS 2000).
//
// A DisCSP distributes the variables and constraints (nogoods) of a CSP
// among autonomous agents — one variable per agent in this library — that
// cooperate by message passing to find a globally consistent assignment.
// The library provides:
//
//   - the asynchronous weak-commitment search algorithm (AWC) with the
//     paper's nogood-learning strategies: resolvent-based learning,
//     mcs-based (minimum conflict set) learning, size-bounded variants, and
//     no learning;
//   - the distributed breakout algorithm (DB) and asynchronous backtracking
//     (ABT) as baselines;
//   - three runtimes for the same agents: a deterministic synchronous
//     simulator measuring the paper's cycle and maxcck costs, a
//     goroutine-per-agent asynchronous runtime, and a loopback TCP runtime
//     (one socket per agent);
//   - generators for the paper's benchmark families (solvable 3-coloring,
//     forced-satisfiable 3SAT, single-solution 3SAT) and DIMACS CNF/COL
//     round-tripping;
//   - a benchmark harness regenerating every table and figure of the
//     paper's evaluation (see the internal/experiments package and
//     cmd/dcspbench).
//
// # Quick start
//
//	p := discsp.NewProblemUniform(3, 3) // 3 variables, 3 colors
//	p.AddNotEqual(0, 1)
//	p.AddNotEqual(1, 2)
//	res, err := discsp.Solve(p, discsp.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Solved, res.Assignment)
//
// See the examples/ directory for complete programs.
package discsp

import (
	"github.com/discsp/discsp/internal/csp"
)

// Core model types. These are aliases of the library's internal model so
// that every package operates on one representation; their methods are
// documented here at the API boundary they are used through.
type (
	// Var identifies a variable (and, in the one-variable-per-agent
	// setting, the agent that owns it). Variables are numbered 0..n-1.
	Var = csp.Var
	// Value is a member of a variable's finite discrete domain.
	Value = csp.Value
	// Lit is one variable-value pair inside a nogood or assignment.
	Lit = csp.Lit
	// Nogood is an immutable set of variable-value pairs stating that the
	// combination is prohibited.
	Nogood = csp.Nogood
	// Problem is a CSP: variables with domains plus a set of nogoods.
	Problem = csp.Problem
	// Assignment is a read-only view of variable values.
	Assignment = csp.Assignment
	// SliceAssignment is a dense assignment indexed by variable.
	SliceAssignment = csp.SliceAssignment
	// SATLit is a propositional literal for Problem.AddClause.
	SATLit = csp.SATLit
	// CNF is a propositional formula in DIMACS clausal form.
	CNF = csp.CNF
	// Graph is an undirected graph for coloring problems.
	Graph = csp.Graph
)

// Unassigned marks an absent entry in a SliceAssignment.
const Unassigned = csp.Unassigned

// NewProblem returns an empty problem; add variables with AddVar.
func NewProblem() *Problem { return csp.NewProblem() }

// NewProblemUniform returns a problem with n variables sharing the domain
// {0..domainSize-1}.
func NewProblemUniform(n, domainSize int) *Problem {
	return csp.NewProblemUniform(n, domainSize)
}

// NewNogood canonicalizes literals into a Nogood. It fails if one variable
// appears with two different values.
func NewNogood(lits ...Lit) (Nogood, error) { return csp.NewNogood(lits...) }

// MustNogood is NewNogood that panics on error; for literals known
// consistent.
func MustNogood(lits ...Lit) Nogood { return csp.MustNogood(lits...) }
