package discsp_test

import (
	"bytes"
	"testing"

	"github.com/discsp/discsp"
)

func chain(t *testing.T, n int, colors int) *discsp.Problem {
	t.Helper()
	p := discsp.NewProblemUniform(n, colors)
	for i := 0; i < n-1; i++ {
		if err := p.AddNotEqual(discsp.Var(i), discsp.Var(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestSolveDefaultsToAWC(t *testing.T) {
	p := chain(t, 6, 3)
	res, err := discsp.Solve(p, discsp.Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	if !p.IsSolution(res.Assignment) {
		t.Fatalf("assignment invalid")
	}
}

func TestSolveAllAlgorithms(t *testing.T) {
	for _, algo := range []discsp.AlgorithmKind{discsp.AWC, discsp.DB, discsp.ABT} {
		t.Run(algo.String(), func(t *testing.T) {
			p := chain(t, 6, 3)
			res, err := discsp.Solve(p, discsp.Options{Algorithm: algo, InitialSeed: 5})
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !res.Solved {
				t.Fatalf("%v failed: %+v", algo, res)
			}
		})
	}
}

func TestSolveAllLearningModes(t *testing.T) {
	cases := []struct {
		name string
		opts discsp.Options
	}{
		{"resolvent", discsp.Options{Learning: discsp.LearnResolvent}},
		{"mcs", discsp.Options{Learning: discsp.LearnMCS}},
		{"none", discsp.Options{Learning: discsp.LearnNone}},
		{"3rdRslv", discsp.Options{Learning: discsp.LearnResolvent, LearningSizeBound: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := chain(t, 8, 3)
			tc.opts.InitialSeed = 9
			res, err := discsp.Solve(p, tc.opts)
			if err != nil {
				t.Fatalf("Solve: %v", err)
			}
			if !res.Solved {
				t.Fatalf("not solved: %+v", res)
			}
		})
	}
}

func TestSolveInsolubleReported(t *testing.T) {
	p := discsp.NewProblemUniform(3, 2)
	for _, e := range [][2]discsp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := discsp.Solve(p, discsp.Options{Algorithm: discsp.ABT})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if res.Solved || !res.Insoluble {
		t.Fatalf("triangle 2-coloring: %+v", res)
	}
}

func TestSolveInitialValidation(t *testing.T) {
	p := chain(t, 4, 3)
	_, err := discsp.Solve(p, discsp.Options{Initial: discsp.SliceAssignment{0, 1}})
	if err == nil {
		t.Fatal("accepted wrong-length initial assignment")
	}
}

func TestSolveExplicitInitial(t *testing.T) {
	p := chain(t, 3, 3)
	init := discsp.SliceAssignment{0, 1, 0}
	res, err := discsp.Solve(p, discsp.Options{Initial: init})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// Already a solution → solved in 0 cycles.
	if !res.Solved || res.Cycles != 0 {
		t.Fatalf("res = %+v, want immediate solve", res)
	}
}

func TestSolveAsync(t *testing.T) {
	p := chain(t, 8, 3)
	res, err := discsp.SolveAsync(p, discsp.Options{InitialSeed: 3})
	if err != nil {
		t.Fatalf("SolveAsync: %v", err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	if res.Duration <= 0 {
		t.Errorf("duration not reported")
	}
}

func TestGenerators(t *testing.T) {
	col, err := discsp.GenerateColoring(20, 54, 3, 1)
	if err != nil {
		t.Fatalf("GenerateColoring: %v", err)
	}
	if !col.Problem.IsSolution(col.Hidden) {
		t.Errorf("coloring witness invalid")
	}
	sat3, err := discsp.GenerateForcedSAT3(20, 86, 1)
	if err != nil {
		t.Fatalf("GenerateForcedSAT3: %v", err)
	}
	if !sat3.Problem.IsSolution(sat3.Hidden) {
		t.Errorf("forced SAT witness invalid")
	}
	uniq, err := discsp.GenerateUniqueSAT3(20, 68, 1)
	if err != nil {
		t.Fatalf("GenerateUniqueSAT3: %v", err)
	}
	if !uniq.Unique {
		t.Errorf("unique instance not marked unique")
	}

	init := discsp.RandomInitial(col.Problem, 2)
	if len(init) != col.Problem.NumVars() {
		t.Errorf("RandomInitial length %d", len(init))
	}
}

func TestDIMACSRoundTripThroughFacade(t *testing.T) {
	sat3, err := discsp.GenerateForcedSAT3(10, 43, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := discsp.WriteCNF(&buf, sat3.CNF, "facade round trip"); err != nil {
		t.Fatal(err)
	}
	parsed, err := discsp.ParseCNF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.NumVars != 10 || len(parsed.Clauses) != 43 {
		t.Errorf("round trip shape: %d vars %d clauses", parsed.NumVars, len(parsed.Clauses))
	}

	col, err := discsp.GenerateColoring(10, 20, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := discsp.WriteCOL(&buf, col.Graph); err != nil {
		t.Fatal(err)
	}
	g, err := discsp.ParseCOL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 10 || len(g.Edges) != 20 {
		t.Errorf("graph round trip shape: %d nodes %d edges", g.NumNodes, len(g.Edges))
	}
}

func TestAlgorithmKindString(t *testing.T) {
	if discsp.AWC.String() != "AWC" || discsp.DB.String() != "DB" || discsp.ABT.String() != "ABT" {
		t.Errorf("algorithm names: %v %v %v", discsp.AWC, discsp.DB, discsp.ABT)
	}
}

func TestSolveSyncAsyncAgree(t *testing.T) {
	// Both runtimes must find (possibly different) valid solutions of the
	// same instance.
	inst, err := discsp.GenerateColoring(20, 54, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	syncRes, err := discsp.Solve(inst.Problem, discsp.Options{InitialSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	asyncRes, err := discsp.SolveAsync(inst.Problem, discsp.Options{InitialSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !syncRes.Solved || !asyncRes.Solved {
		t.Fatalf("sync=%v async=%v", syncRes.Solved, asyncRes.Solved)
	}
	if !inst.Problem.IsSolution(syncRes.Assignment) || !inst.Problem.IsSolution(asyncRes.Assignment) {
		t.Fatalf("invalid solutions")
	}
}

func TestSolvePartitioned(t *testing.T) {
	inst, err := discsp.GenerateColoring(18, 48, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discsp.SolvePartitioned(inst.Problem, discsp.UniformPartition(18, 3), discsp.PartitionedOptions{InitialSeed: 9})
	if err != nil {
		t.Fatalf("SolvePartitioned: %v", err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	if !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("assignment invalid")
	}
}

func TestSolvePartitionedValidatesPartition(t *testing.T) {
	p := discsp.NewProblemUniform(4, 2)
	_, err := discsp.SolvePartitioned(p, discsp.Partition{{0, 1}}, discsp.PartitionedOptions{})
	if err == nil {
		t.Fatal("accepted incomplete partition")
	}
}

func TestSolveTCP(t *testing.T) {
	inst, err := discsp.GenerateColoring(15, 40, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discsp.SolveTCP(inst.Problem, discsp.Options{InitialSeed: 11})
	if err != nil {
		t.Fatalf("SolveTCP: %v", err)
	}
	if !res.Solved {
		t.Fatalf("not solved over TCP: %+v", res)
	}
	if !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("assignment invalid")
	}
}
