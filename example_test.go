package discsp_test

import (
	"fmt"
	"log"

	"github.com/discsp/discsp"
)

// ExampleSolve models a small graph-coloring problem and solves it with
// AWC + resolvent-based nogood learning on the synchronous simulator.
func ExampleSolve() {
	p := discsp.NewProblemUniform(4, 3) // 4 agents, 3 colors
	for _, e := range [][2]discsp.Var{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	res, err := discsp.Solve(p, discsp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solved:", res.Solved)
	fmt.Println("is solution:", p.IsSolution(res.Assignment))
	// Output:
	// solved: true
	// is solution: true
}

// ExampleSolve_insoluble shows insolubility detection: ABT (or AWC with
// unrestricted learning) derives the empty nogood on an over-constrained
// problem.
func ExampleSolve_insoluble() {
	p := discsp.NewProblemUniform(3, 2) // a triangle cannot be 2-colored
	for _, e := range [][2]discsp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			log.Fatal(err)
		}
	}
	res, err := discsp.Solve(p, discsp.Options{Algorithm: discsp.ABT})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solved:", res.Solved)
	fmt.Println("proved insoluble:", res.Insoluble)
	// Output:
	// solved: false
	// proved insoluble: true
}

// ExampleGenerateColoring generates one of the paper's benchmark instances
// and checks the planted witness.
func ExampleGenerateColoring() {
	inst, err := discsp.GenerateColoring(60, 162, 3, 1) // n=60, m=2.7n
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nodes:", inst.Graph.NumNodes)
	fmt.Println("arcs:", len(inst.Graph.Edges))
	fmt.Println("witness valid:", inst.Problem.IsSolution(inst.Hidden))
	// Output:
	// nodes: 60
	// arcs: 162
	// witness valid: true
}

// ExampleSolvePartitioned runs the multi-variable-per-agent extension:
// two agents own three variables each and solve their local CSPs while
// negotiating the cross-boundary constraints.
func ExampleSolvePartitioned() {
	p := discsp.NewProblemUniform(6, 3)
	for i := 0; i < 5; i++ {
		if err := p.AddNotEqual(discsp.Var(i), discsp.Var(i+1)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := discsp.SolvePartitioned(p, discsp.UniformPartition(6, 3), discsp.PartitionedOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solved:", res.Solved)
	fmt.Println("is solution:", p.IsSolution(res.Assignment))
	// Output:
	// solved: true
	// is solution: true
}
