package central

import (
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
)

// This file implements centralized weak-commitment search (Yokoo,
// AAAI-94) — the direct ancestor of the distributed AWC this repository
// reproduces. The algorithm grows a consistent partial solution while all
// remaining variables hold tentative values chosen by min-conflict; at a
// deadend it records the partial solution as a nogood and abandons the
// whole partial solution (the "weak commitment") instead of backtracking
// chronologically. Recording every nogood makes it complete.
//
// It serves as a reference point between the pure backtracker (Solver) and
// the distributed algorithms, and as another oracle for the test suite.

// WCSResult reports a weak-commitment run.
type WCSResult struct {
	// Solved reports whether a solution was found.
	Solved bool
	// Insoluble reports that the recorded nogoods prove unsatisfiability
	// (the empty partial solution became a deadend).
	Insoluble bool
	// Solution is the satisfying assignment when Solved.
	Solution csp.SliceAssignment
	// Restarts counts abandoned partial solutions.
	Restarts int
	// NogoodsRecorded counts recorded deadend nogoods.
	NogoodsRecorded int
	// Checks counts nogood evaluations (the paper's cost unit).
	Checks int64
}

// WCSOptions bounds a run.
type WCSOptions struct {
	// MaxRestarts caps abandoned partial solutions; 0 means 100000.
	MaxRestarts int
}

// WeakCommitment runs weak-commitment search on p from the given initial
// tentative values (nil starts every variable at its first domain value).
func WeakCommitment(p *csp.Problem, initial csp.SliceAssignment, opts WCSOptions) WCSResult {
	maxRestarts := opts.MaxRestarts
	if maxRestarts <= 0 {
		maxRestarts = 100000
	}
	n := p.NumVars()
	var res WCSResult
	if n == 0 {
		res.Solved = true
		res.Solution = csp.SliceAssignment{}
		return res
	}

	values := csp.NewSliceAssignment(n)
	for v := 0; v < n; v++ {
		if initial != nil && initial[v] != csp.Unassigned {
			values[v] = initial[v]
		} else {
			values[v] = p.Domain(csp.Var(v))[0]
		}
	}
	inPartial := make([]bool, n)
	partialSize := 0
	learned := nogood.New()
	var counter nogood.Counter

	// consistentWith reports whether setting v=val violates any problem
	// nogood whose other variables are all in the partial solution, or any
	// learned nogood fully decided by the partial solution plus v=val.
	consistentWith := func(v csp.Var, val csp.Value) bool {
		probe := partialProbe{values: values, inPartial: inPartial, v: v, val: val}
		for _, ng := range p.NogoodsOf(v) {
			if nogood.Check(ng, probe, &counter) {
				return false
			}
		}
		for _, ng := range learned.All() {
			if !ng.Contains(v) {
				continue
			}
			if nogood.Check(ng, probe, &counter) {
				return false
			}
		}
		return true
	}

	for {
		if partialSize == n {
			res.Solved = true
			res.Solution = values
			res.Checks = counter.Total()
			return res
		}
		// Next variable: the smallest id not yet committed.
		var v csp.Var = -1
		for i := 0; i < n; i++ {
			if !inPartial[i] {
				v = csp.Var(i)
				break
			}
		}

		if consistentWith(v, values[v]) {
			inPartial[v] = true
			partialSize++
			continue
		}

		// Try other values, min-conflict against the tentative rest.
		bestVal, bestConf := csp.Unassigned, -1
		for _, d := range p.Domain(v) {
			if !consistentWith(v, d) {
				continue
			}
			conf := 0
			probe := csp.Override{Base: values, Var: v, Val: d}
			for _, ng := range p.NogoodsOf(v) {
				if nogood.Check(ng, probe, &counter) {
					conf++
				}
			}
			if bestConf < 0 || conf < bestConf {
				bestVal, bestConf = d, conf
			}
		}
		if bestVal != csp.Unassigned {
			values[v] = bestVal
			inPartial[v] = true
			partialSize++
			continue
		}

		// Deadend: record the partial solution as a nogood and abandon it.
		lits := make([]csp.Lit, 0, partialSize)
		for i := 0; i < n; i++ {
			if inPartial[i] {
				lits = append(lits, csp.Lit{Var: csp.Var(i), Val: values[i]})
			}
		}
		ng := csp.MustNogood(lits...)
		if ng.Empty() {
			res.Insoluble = true
			res.Checks = counter.Total()
			return res
		}
		if learned.Add(ng) {
			res.NogoodsRecorded++
		}
		for i := range inPartial {
			inPartial[i] = false
		}
		partialSize = 0
		res.Restarts++
		if res.Restarts > maxRestarts {
			res.Checks = counter.Total()
			return res
		}
	}
}

// partialProbe reads committed variables from values, plus one probe
// binding; uncommitted variables are unassigned.
type partialProbe struct {
	values    csp.SliceAssignment
	inPartial []bool
	v         csp.Var
	val       csp.Value
}

var _ csp.Assignment = partialProbe{}

// Lookup implements csp.Assignment.
func (p partialProbe) Lookup(v csp.Var) (csp.Value, bool) {
	if v == p.v {
		return p.val, true
	}
	if int(v) < len(p.inPartial) && p.inPartial[v] {
		return p.values[v], true
	}
	return 0, false
}
