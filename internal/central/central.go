// Package central is a centralized CSP solver — chronological backtracking
// with forward checking over k-ary nogoods and minimum-remaining-values
// variable ordering. It is the completeness oracle the test suite compares
// the distributed algorithms against (Section 2.2 of the paper sketches
// exactly this kind of "gather everything at a leader" solver as the
// strawman the distributed algorithms replace), and the verifier for
// generated instances.
package central

import (
	"github.com/discsp/discsp/internal/csp"
)

// Stats counts search work.
type Stats struct {
	Nodes      int64
	Backtracks int64
	Prunings   int64
}

// Solver solves one problem. Construct with New; queries may be repeated.
type Solver struct {
	p       *csp.Problem
	nogoods []csp.Nogood
	byVar   [][]int // nogood indices per variable

	domains [][]csp.Value // static domains per variable
	live    [][]bool      // live[v][i]: domains[v][i] still allowed
	liveCnt []int
	assign  []csp.Value
	done    []bool
	trail   []pruneRecord
	stats   Stats
}

type pruneRecord struct {
	v   int
	idx int
}

// New builds a solver over p. The problem is not copied; it must not be
// mutated while the solver is in use.
func New(p *csp.Problem) *Solver {
	s := &Solver{
		p:       p,
		nogoods: p.Nogoods(),
		byVar:   make([][]int, p.NumVars()),
		domains: make([][]csp.Value, p.NumVars()),
		live:    make([][]bool, p.NumVars()),
		liveCnt: make([]int, p.NumVars()),
		assign:  make([]csp.Value, p.NumVars()),
		done:    make([]bool, p.NumVars()),
	}
	for i, ng := range s.nogoods {
		for j := 0; j < ng.Len(); j++ {
			v := ng.At(j).Var
			s.byVar[v] = append(s.byVar[v], i)
		}
	}
	for v := 0; v < p.NumVars(); v++ {
		s.domains[v] = p.Domain(csp.Var(v))
		s.live[v] = make([]bool, len(s.domains[v]))
	}
	return s
}

// Stats returns cumulative counters.
func (s *Solver) Stats() Stats { return s.stats }

// Solve returns a solution if one exists.
func (s *Solver) Solve() (csp.SliceAssignment, bool) {
	sols := s.Enumerate(1)
	if len(sols) == 0 {
		return nil, false
	}
	return sols[0], true
}

// Enumerate returns up to limit solutions. Enumerate(2) is the uniqueness
// test.
func (s *Solver) Enumerate(limit int) []csp.SliceAssignment {
	if limit <= 0 {
		return nil
	}
	s.reset()
	var out []csp.SliceAssignment
	s.search(limit, &out)
	return out
}

func (s *Solver) reset() {
	for v := range s.live {
		for i := range s.live[v] {
			s.live[v][i] = true
		}
		s.liveCnt[v] = len(s.live[v])
		s.done[v] = false
	}
	s.trail = s.trail[:0]
	// Unary nogoods prune up front.
	for _, ng := range s.nogoods {
		if ng.Len() != 1 {
			continue
		}
		l := ng.At(0)
		s.pruneValue(int(l.Var), l.Val)
	}
}

func (s *Solver) pruneValue(v int, val csp.Value) {
	for i, d := range s.domains[v] {
		if d == val && s.live[v][i] {
			s.live[v][i] = false
			s.liveCnt[v]--
			s.trail = append(s.trail, pruneRecord{v: v, idx: i})
			s.stats.Prunings++
		}
	}
}

func (s *Solver) search(limit int, out *[]csp.SliceAssignment) bool {
	v := s.pickVar()
	if v < 0 {
		sol := csp.NewSliceAssignment(len(s.assign))
		for i := range s.assign {
			sol[i] = s.assign[i]
		}
		*out = append(*out, sol)
		return len(*out) >= limit
	}
	s.stats.Nodes++
	for i, d := range s.domains[v] {
		if !s.live[v][i] {
			continue
		}
		mark := len(s.trail)
		s.assign[v] = d
		s.done[v] = true
		if s.forwardCheck(v) {
			if s.search(limit, out) {
				return true
			}
		} else {
			s.stats.Backtracks++
		}
		s.done[v] = false
		s.undoTo(mark)
	}
	return false
}

// pickVar returns the unassigned variable with the fewest live values, or
// -1 when all are assigned (MRV; ties toward the smaller id).
func (s *Solver) pickVar() int {
	best, bestCnt := -1, int(^uint(0)>>1)
	for v := range s.done {
		if s.done[v] {
			continue
		}
		if s.liveCnt[v] < bestCnt {
			best, bestCnt = v, s.liveCnt[v]
		}
	}
	return best
}

// forwardCheck propagates the assignment of v: any nogood over v whose
// other literals are all satisfied either conflicts (fully assigned) or
// prunes its single unassigned literal. Returns false on wipeout/conflict.
func (s *Solver) forwardCheck(v int) bool {
	for _, ci := range s.byVar[v] {
		ng := s.nogoods[ci]
		matched := true
		unassignedVar := -1
		var unassignedVal csp.Value
		unassignedCount := 0
		for li := 0; li < ng.Len(); li++ {
			l := ng.At(li)
			if !s.done[l.Var] {
				unassignedCount++
				unassignedVar = int(l.Var)
				unassignedVal = l.Val
				if unassignedCount > 1 {
					break
				}
				continue
			}
			if s.assign[l.Var] != l.Val {
				matched = false
				break
			}
		}
		if !matched || unassignedCount > 1 {
			continue
		}
		if unassignedCount == 0 {
			return false // nogood fully violated
		}
		s.pruneValue(unassignedVar, unassignedVal)
		if s.liveCnt[unassignedVar] == 0 {
			return false
		}
	}
	return true
}

func (s *Solver) undoTo(mark int) {
	for len(s.trail) > mark {
		r := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.live[r.v][r.idx] = true
		s.liveCnt[r.v]++
	}
}
