package central

import (
	"math/rand"
	"testing"

	"github.com/discsp/discsp/internal/csp"
)

func TestSolveTriangle3Colors(t *testing.T) {
	p := csp.NewProblemUniform(3, 3)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	sol, ok := New(p).Solve()
	if !ok {
		t.Fatalf("triangle with 3 colors unsolved")
	}
	if !p.IsSolution(sol) {
		t.Fatalf("reported non-solution %v", sol)
	}
}

func TestSolveTriangle2ColorsUnsat(t *testing.T) {
	p := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := New(p).Solve(); ok {
		t.Fatalf("2-colored a triangle")
	}
}

func TestUnaryNogoodsPruneUpFront(t *testing.T) {
	p := csp.NewProblemUniform(1, 3)
	for _, v := range []csp.Value{0, 2} {
		if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: 0, Val: v})); err != nil {
			t.Fatal(err)
		}
	}
	sol, ok := New(p).Solve()
	if !ok {
		t.Fatalf("unsolved")
	}
	if v, _ := sol.Lookup(0); v != 1 {
		t.Errorf("x0 = %d, want 1", v)
	}
}

func TestUnaryWipeoutUnsat(t *testing.T) {
	p := csp.NewProblemUniform(1, 2)
	for v := csp.Value(0); v < 2; v++ {
		if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: 0, Val: v})); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := New(p).Solve(); ok {
		t.Fatalf("solved with wiped domain")
	}
}

func TestEnumerateExactCount(t *testing.T) {
	// Path 0-1 over {0,1}: solutions are (0,1) and (1,0).
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	sols := New(p).Enumerate(10)
	if len(sols) != 2 {
		t.Fatalf("got %d solutions, want 2", len(sols))
	}
	if got := len(New(p).Enumerate(1)); got != 1 {
		t.Fatalf("limit ignored: %d", got)
	}
	if got := len(New(p).Enumerate(0)); got != 0 {
		t.Fatalf("limit 0: %d", got)
	}
}

func TestTernaryNogoods(t *testing.T) {
	// Boolean vars with the single nogood {x0=1, x1=1, x2=1}: 7 solutions.
	p := csp.NewProblemUniform(3, 2)
	if err := p.AddNogood(csp.MustNogood(
		csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 1, Val: 1}, csp.Lit{Var: 2, Val: 1},
	)); err != nil {
		t.Fatal(err)
	}
	if got := len(New(p).Enumerate(100)); got != 7 {
		t.Fatalf("got %d solutions, want 7", got)
	}
}

// TestAgainstBruteForce compares solution counts with exhaustive search on
// random small problems with mixed-arity nogoods.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(5)
		domSize := 2 + rng.Intn(2)
		p := csp.NewProblemUniform(n, domSize)
		m := rng.Intn(10)
		for i := 0; i < m; i++ {
			arity := 1 + rng.Intn(3)
			if arity > n {
				arity = n
			}
			vars := rng.Perm(n)[:arity]
			lits := make([]csp.Lit, arity)
			for j, v := range vars {
				lits[j] = csp.Lit{Var: csp.Var(v), Val: csp.Value(rng.Intn(domSize))}
			}
			if err := p.AddNogood(csp.MustNogood(lits...)); err != nil {
				t.Fatal(err)
			}
		}
		want := 0
		total := 1
		for i := 0; i < n; i++ {
			total *= domSize
		}
		assign := make(csp.SliceAssignment, n)
		for code := 0; code < total; code++ {
			c := code
			for v := 0; v < n; v++ {
				assign[v] = csp.Value(c % domSize)
				c /= domSize
			}
			if p.IsSolution(assign) {
				want++
			}
		}
		got := len(New(p).Enumerate(total + 1))
		if got != want {
			t.Fatalf("trial %d: solver found %d solutions, brute force %d", trial, got, want)
		}
	}
}

func TestSolverReusable(t *testing.T) {
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	s := New(p)
	if got := len(s.Enumerate(10)); got != 2 {
		t.Fatalf("first query: %d", got)
	}
	if got := len(s.Enumerate(10)); got != 2 {
		t.Fatalf("second query: %d", got)
	}
}

func TestStatsProgress(t *testing.T) {
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := New(p)
	if _, ok := s.Solve(); ok {
		t.Fatalf("K4 3-colored")
	}
	st := s.Stats()
	if st.Nodes == 0 || st.Backtracks == 0 {
		t.Errorf("no search work recorded: %+v", st)
	}
}

func TestWeakCommitmentSolvesTriangle(t *testing.T) {
	p := csp.NewProblemUniform(3, 3)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res := WeakCommitment(p, nil, WCSOptions{})
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	if !p.IsSolution(res.Solution) {
		t.Fatalf("invalid solution %v", res.Solution)
	}
	if res.Checks == 0 {
		t.Errorf("no checks recorded")
	}
}

func TestWeakCommitmentDetectsInsolubility(t *testing.T) {
	p := csp.NewProblemUniform(3, 2) // 2-colored triangle
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res := WeakCommitment(p, nil, WCSOptions{})
	if res.Solved {
		t.Fatalf("solved an insoluble problem")
	}
	if !res.Insoluble {
		t.Fatalf("insolubility not derived: %+v", res)
	}
}

func TestWeakCommitmentEmptyProblem(t *testing.T) {
	res := WeakCommitment(csp.NewProblem(), nil, WCSOptions{})
	if !res.Solved {
		t.Fatalf("empty problem unsolved")
	}
}

func TestWeakCommitmentMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rng.Intn(4)
		domSize := 2 + rng.Intn(2)
		p := csp.NewProblemUniform(n, domSize)
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			arity := 1 + rng.Intn(2)
			vars := rng.Perm(n)[:arity+1]
			lits := make([]csp.Lit, 0, arity+1)
			for _, v := range vars {
				lits = append(lits, csp.Lit{Var: csp.Var(v), Val: csp.Value(rng.Intn(domSize))})
			}
			if err := p.AddNogood(csp.MustNogood(lits...)); err != nil {
				t.Fatal(err)
			}
		}
		_, soluble := New(p).Solve()
		res := WeakCommitment(p, nil, WCSOptions{})
		if soluble {
			if !res.Solved {
				t.Fatalf("trial %d: soluble problem unsolved by WCS (%+v)", trial, res)
			}
			if !p.IsSolution(res.Solution) {
				t.Fatalf("trial %d: WCS reported invalid solution", trial)
			}
		} else {
			if res.Solved {
				t.Fatalf("trial %d: WCS solved an insoluble problem", trial)
			}
			if !res.Insoluble {
				t.Fatalf("trial %d: WCS did not derive insolubility (%+v)", trial, res)
			}
		}
	}
}

func TestWeakCommitmentRestartsCounted(t *testing.T) {
	// K4 over 3 colors forces at least one abandoned partial solution
	// before insolubility is derived.
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	res := WeakCommitment(p, nil, WCSOptions{})
	if !res.Insoluble {
		t.Fatalf("K4/3 not proved insoluble: %+v", res)
	}
	if res.Restarts == 0 || res.NogoodsRecorded == 0 {
		t.Errorf("restarts=%d recorded=%d, want both > 0", res.Restarts, res.NogoodsRecorded)
	}
}
