package backoff

import (
	"math"
	"testing"
	"time"
)

func TestDelaySchedule(t *testing.T) {
	cases := []struct {
		name    string
		policy  Policy
		attempt int
		want    time.Duration
	}{
		{"first retry is base", Policy{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond}, 0, 10 * time.Millisecond},
		{"doubles per attempt", Policy{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond}, 1, 20 * time.Millisecond},
		{"keeps doubling", Policy{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond}, 3, 80 * time.Millisecond},
		{"hits the cap exactly", Policy{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond}, 4, 160 * time.Millisecond},
		{"stays at the cap", Policy{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond}, 20, 160 * time.Millisecond},
		{"cap below base clamps", Policy{Base: 10 * time.Millisecond, Cap: 5 * time.Millisecond}, 0, 5 * time.Millisecond},
		{"uncapped pure doubling", Policy{Base: 50 * time.Millisecond}, 4, 800 * time.Millisecond},
		{"negative attempt treated as zero", Policy{Base: 2 * time.Millisecond, Cap: 64 * time.Millisecond}, -3, 2 * time.Millisecond},
		{"zero base yields zero", Policy{Cap: time.Second}, 5, 0},
		{"capped overflow saturates at cap", Policy{Base: time.Second, Cap: time.Minute}, 80, time.Minute},
		{"uncapped overflow saturates at max", Policy{Base: time.Second}, 80, math.MaxInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.policy.Delay(tc.attempt); got != tc.want {
				t.Fatalf("Policy{%v,%v}.Delay(%d) = %v, want %v",
					tc.policy.Base, tc.policy.Cap, tc.attempt, got, tc.want)
			}
		})
	}
}

// The service retry loop historically computed RetryBackoff << (attempt-1)
// with no cap; the faults injector computed base << attempt clamped at its
// cap. Both must reproduce exactly through Policy so the unification is a
// refactor, not a behavior change.
func TestDelayMatchesLegacySchedules(t *testing.T) {
	svc := Policy{Base: 50 * time.Millisecond}
	for attempt := 1; attempt <= 8; attempt++ {
		legacy := 50 * time.Millisecond << (attempt - 1)
		if got := svc.Delay(attempt - 1); got != legacy {
			t.Fatalf("service schedule attempt %d: got %v, want %v", attempt, got, legacy)
		}
	}
	inj := Policy{Base: 2 * time.Millisecond, Cap: 64 * time.Millisecond}
	for attempt := 0; attempt <= 10; attempt++ {
		legacy := 2 * time.Millisecond << attempt
		if legacy > 64*time.Millisecond || legacy <= 0 {
			legacy = 64 * time.Millisecond
		}
		if got := inj.Delay(attempt); got != legacy {
			t.Fatalf("injector schedule attempt %d: got %v, want %v", attempt, got, legacy)
		}
	}
}

func TestJitteredBounds(t *testing.T) {
	p := Policy{Base: 25 * time.Millisecond, Cap: time.Second}
	for seed := int64(0); seed < 20; seed++ {
		for attempt := 0; attempt < 8; attempt++ {
			full := p.Delay(attempt)
			got := p.Jittered(attempt, seed)
			if got < full/2 || got >= full {
				t.Fatalf("Jittered(%d, seed %d) = %v outside [%v, %v)", attempt, seed, got, full/2, full)
			}
		}
	}
}

func TestJitteredDeterministic(t *testing.T) {
	p := Policy{Base: 25 * time.Millisecond, Cap: time.Second}
	for attempt := 0; attempt < 6; attempt++ {
		a := p.Jittered(attempt, 42)
		b := p.Jittered(attempt, 42)
		if a != b {
			t.Fatalf("Jittered not deterministic: %v vs %v", a, b)
		}
	}
}

// Distinct seeds must actually decorrelate: if every worker of a severed
// fleet redialed on an identical schedule the jitter would be decorative.
func TestJitteredSeedsDiffer(t *testing.T) {
	p := Policy{Base: 25 * time.Millisecond, Cap: time.Second}
	distinct := map[time.Duration]bool{}
	for seed := int64(0); seed < 32; seed++ {
		distinct[p.Jittered(3, seed)] = true
	}
	if len(distinct) < 16 {
		t.Fatalf("32 seeds produced only %d distinct delays", len(distinct))
	}
}

func TestJitteredTinyDelays(t *testing.T) {
	p := Policy{Base: 1}
	if got := p.Jittered(0, 7); got != 1 {
		t.Fatalf("1ns delay must pass through unjittered, got %v", got)
	}
	if got := (Policy{}).Jittered(3, 7); got != 0 {
		t.Fatalf("zero policy must yield 0, got %v", got)
	}
}
