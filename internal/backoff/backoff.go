// Package backoff is the one exponential-backoff implementation shared by
// every retry surface in the tree: the wire layer's retransmission schedule
// (wire.SendLink), the solver daemon's transient-failure retries
// (internal/service), the fault injector's restart delays (internal/faults),
// and the TCP node's dial/reconnect loop (internal/netrun).
//
// A Policy is a pure value — no goroutines, no clocks, no PRNG state — so
// callers that need determinism (the fault injector, the reliable-transport
// state machines) get it for free, and callers that need jitter (reconnect
// storms after a hub restart) get it from a hash of (seed, attempt) rather
// than shared mutable randomness, keeping same-seed runs bit-identical.
package backoff

import "time"

// Policy describes an exponential-backoff schedule: Base doubles per
// attempt up to Cap.
type Policy struct {
	// Base is the delay before the first retry (attempt 0). It must be
	// positive for the schedule to make sense; Delay returns 0 otherwise.
	Base time.Duration
	// Cap bounds the delay; 0 means uncapped (pure doubling).
	Cap time.Duration
}

// Delay returns the backoff delay after attempt consecutive failures:
// min(Base << attempt, Cap), overflow-safe. attempt 0 is the first retry.
func (p Policy) Delay(attempt int) time.Duration {
	if p.Base <= 0 {
		return 0
	}
	if attempt < 0 {
		attempt = 0
	}
	d := p.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.Cap && p.Cap > 0 {
			return p.Cap
		}
		if d <= 0 { // overflow past the int64 range
			if p.Cap > 0 {
				return p.Cap
			}
			return 1<<63 - 1
		}
	}
	if p.Cap > 0 && d > p.Cap {
		return p.Cap
	}
	return d
}

// Jittered returns Delay(attempt) scaled by a deterministic factor in
// [1/2, 1), hashed from (seed, attempt). Different seeds (one per
// reconnecting node, say) decorrelate their retry schedules without any
// shared PRNG, so a fleet of workers severed by the same hub restart does
// not dial back in lockstep — while the same (seed, attempt) pair always
// yields the same delay, keeping chaos runs reproducible.
func (p Policy) Jittered(attempt int, seed int64) time.Duration {
	d := p.Delay(attempt)
	if d <= 1 {
		return d
	}
	h := mix(uint64(seed)<<32 ^ uint64(uint32(attempt)) ^ 0x9e3779b97f4a7c15)
	// Map the top 53 bits to [0.5, 1.0).
	frac := 0.5 + 0.5*float64(h>>11)/(1<<53)
	return time.Duration(float64(d) * frac)
}

// mix is the splitmix64 finalizer — the same hash family the fault
// injector uses for its per-event decisions.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
