// Package stats provides the small aggregation toolkit the experiment
// harness uses to turn per-trial measurements into the paper's table rows
// (means over 100 trials, percentage solved within the cutoff).
package stats

import (
	"math"
	"sort"
)

// Sample accumulates float64 observations. The zero value is ready to use.
type Sample struct {
	values []float64
}

// Add appends one observation.
func (s *Sample) Add(v float64) { s.values = append(s.values, v) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.values {
		sum += v
	}
	return sum / float64(len(s.values))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 when
// fewer than two observations exist.
func (s *Sample) StdDev() float64 {
	if len(s.values) < 2 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.values {
		d := v - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(s.values)-1))
}

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) by nearest-rank on a
// sorted copy, or 0 for an empty sample.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	sorted := make([]float64, len(s.values))
	copy(sorted, s.values)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(50) }

// Counter tracks a boolean rate (e.g. trials solved within the cutoff).
type Counter struct {
	hits, total int
}

// Observe records one observation.
func (c *Counter) Observe(hit bool) {
	c.total++
	if hit {
		c.hits++
	}
}

// Percent returns 100·hits/total, or 0 when nothing was observed.
func (c *Counter) Percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.hits) / float64(c.total)
}

// Hits returns the number of positive observations.
func (c *Counter) Hits() int { return c.hits }

// Total returns the number of observations.
func (c *Counter) Total() int { return c.total }
