package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 {
		t.Errorf("empty sample not all-zero: n=%d mean=%v", s.N(), s.Mean())
	}
}

func TestSampleBasics(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample stddev with n-1 denominator: variance 32/7.
	if got := s.StdDev(); math.Abs(got-math.Sqrt(32.0/7)) > 1e-12 {
		t.Errorf("StdDev = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentile(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {50, 5}, {90, 9}, {100, 10}, {-5, 1}, {150, 10},
	}
	for _, tt := range tests {
		if got := s.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	s.Add(2)
	s.Percentile(50)
	if s.values[0] != 3 {
		t.Errorf("Percentile sorted the underlying sample")
	}
}

func TestSinglesAndStdDev(t *testing.T) {
	var s Sample
	s.Add(42)
	if s.StdDev() != 0 {
		t.Errorf("StdDev of single = %v", s.StdDev())
	}
	if s.Median() != 42 {
		t.Errorf("Median = %v", s.Median())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Percent() != 0 {
		t.Errorf("empty counter percent = %v", c.Percent())
	}
	for i := 0; i < 3; i++ {
		c.Observe(true)
	}
	c.Observe(false)
	if c.Hits() != 3 || c.Total() != 4 {
		t.Errorf("hits/total = %d/%d", c.Hits(), c.Total())
	}
	if c.Percent() != 75 {
		t.Errorf("Percent = %v, want 75", c.Percent())
	}
}

// Property: mean is bounded by min and max; percentiles are monotone.
func TestSampleProperties(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e15 {
				continue // avoid float summation overflow artifacts
			}
			s.Add(v)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		if m < s.Min()-1e-9 || m > s.Max()+1e-9 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			cur := s.Percentile(p)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
