package async

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// TestAsyncQuiescenceWithInFlightDuplicates pins the satellite property: the
// quiescence detector must stay sound while duplicate copies are still
// sitting in the dispatcher's delay heap. Duplicates are never counted in
// flight (they are suppressed, not delivered), so a run whose real traffic
// has drained terminates promptly instead of waiting out the timeout — and
// conversely a duplicate must never be double-delivered to make up the
// count. DB is the sharpest probe: its ok?-wave counter (oks == neighbor
// count) genuinely breaks if a duplicate slips through.
func TestAsyncQuiescenceWithInFlightDuplicates(t *testing.T) {
	inst, err := gen.Coloring(12, 24, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 42)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, inst.Problem, init[v])
	}, Options{
		MaxJitter: 200 * time.Microsecond,
		Seed:      7,
		Timeout:   20 * time.Second,
		Faults:    &faults.Config{Seed: 3, Duplicate: 0.5, MaxDelay: 300 * time.Microsecond},
	})
	if err != nil {
		t.Fatalf("%v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("DB under jitter+duplicates not solved: %+v", res)
	}
	if res.DuplicatesSuppressed == 0 {
		t.Fatalf("no duplicates suppressed at 50%% dup rate: %+v", res)
	}
	if res.Duration > 15*time.Second {
		t.Errorf("run crawled to the deadline (%v): quiescence likely stuck on dup copies", res.Duration)
	}
}

// TestAsyncConsistentStartQuiescesUnderDuplicates runs an already-consistent
// system whose only traffic is the initial ok? exchange — with every message
// duplicated, the run must still end promptly.
func TestAsyncConsistentStartQuiescesUnderDuplicates(t *testing.T) {
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	init := csp.SliceAssignment{0, 1}
	res, err := Run(p, awcFactory(p, init, core.Learning{Kind: core.LearnResolvent}), Options{
		Timeout: 10 * time.Second,
		Faults:  &faults.Config{Seed: 5, Duplicate: 1.0, MaxDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved && !res.Quiescent {
		t.Fatalf("consistent start did not terminate cleanly: %+v", res)
	}
	if res.Duration > 5*time.Second {
		t.Errorf("termination took %v with duplicates in flight", res.Duration)
	}
}

func TestAsyncAWCDropRetransmit(t *testing.T) {
	inst, err := gen.Coloring(15, 30, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 22)
	res, err := Run(inst.Problem,
		awcFactory(inst.Problem, init, core.Learning{Kind: core.LearnResolvent}),
		Options{
			Timeout: 20 * time.Second,
			Faults:  &faults.Config{Seed: 9, Drop: 0.2},
		})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("not solved under 20%% drop: %+v", res)
	}
	if res.Retransmits == 0 {
		t.Fatalf("no retransmits recorded at 20%% drop: %+v", res)
	}
}

func TestAsyncCrashRestartAWC(t *testing.T) {
	inst, err := gen.Coloring(15, 30, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 33)
	res, err := Run(inst.Problem,
		awcFactory(inst.Problem, init, core.Learning{Kind: core.LearnResolvent}),
		Options{
			Timeout: 20 * time.Second,
			Faults: &faults.Config{Seed: 1, Crashes: []faults.Crash{
				{Agent: 2, AfterSteps: 0, Restart: true},
				{Agent: 7, AfterSteps: 1, Restart: true},
			}},
		})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("not solved across crash-restarts: %+v", res)
	}
	// The run may legitimately finish before every scheduled crash point is
	// reached, but agent 2 crashes on its very first batch, which is routed
	// before any goroutine starts.
	if res.Restarts < 1 {
		t.Fatalf("restarts = %d, want >= 1: %+v", res.Restarts, res)
	}
	if res.Retransmits == 0 {
		t.Errorf("lost batches were not recorded as retransmitted: %+v", res)
	}
}

func TestAsyncCrashRestartABTInsoluble(t *testing.T) {
	// K4 with 3 colors is insoluble; the proof must survive an agent losing
	// its process mid-derivation and resuming from its checkpoint (the
	// nogood store is durable, so no derivation is repeated from scratch).
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Run(p, func(v csp.Var) sim.Agent {
		return abt.NewAgent(v, p, 0)
	}, Options{
		Timeout: 20 * time.Second,
		Faults: &faults.Config{Seed: 2, Crashes: []faults.Crash{
			{Agent: 1, AfterSteps: 2, Restart: true},
		}},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Insoluble {
		t.Fatalf("insolubility not proven across restart: %+v", res)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
}

// TestAsyncTimeoutErrorState pins the satellite contract: a timed-out run
// returns a *TimeoutError whose fields diagnose the stuck state without any
// further instrumentation.
func TestAsyncTimeoutErrorState(t *testing.T) {
	// An insoluble triangle under DB (which cannot prove insolubility)
	// runs until the deadline.
	p := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	init := csp.SliceAssignment{0, 0, 0}
	_, err := Run(p, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, p, init[v])
	}, Options{Timeout: 300 * time.Millisecond})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TimeoutError", err, err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("TimeoutError does not wrap ErrTimeout: %v", err)
	}
	if te.Timeout != 300*time.Millisecond {
		t.Errorf("Timeout = %v", te.Timeout)
	}
	if len(te.Processed) != 3 {
		t.Fatalf("Processed = %v, want 3 entries", te.Processed)
	}
	if te.Delivered == 0 {
		t.Errorf("Delivered = 0; DB exchanges traffic before the deadline")
	}
	var total int64
	for _, n := range te.Processed {
		total += n
	}
	if total != te.Delivered {
		t.Errorf("per-agent processed %v does not sum to delivered %d", te.Processed, te.Delivered)
	}
	for _, want := range []string{"in flight", "delivered", "processed"} {
		if !strings.Contains(te.Error(), want) {
			t.Errorf("error message %q missing %q", te.Error(), want)
		}
	}
}
