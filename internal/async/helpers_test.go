package async

// The package declares a type named runtime, so the standard library
// package is imported under an alias for the leak check.

import goruntime "runtime"

func runtimeNumGoroutine() int { return goruntime.NumGoroutine() }
