package async

import (
	"errors"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

func awcFactory(p *csp.Problem, init csp.SliceAssignment, l core.Learning) func(csp.Var) sim.Agent {
	return func(v csp.Var) sim.Agent { return core.NewAgent(v, p, init[v], l) }
}

func TestRunEmptyProblem(t *testing.T) {
	p := csp.NewProblem()
	res, err := Run(p, nil, Options{})
	if err != nil || !res.Solved {
		t.Fatalf("empty problem: res=%+v err=%v", res, err)
	}
}

func TestRunValidatesAgentIDs(t *testing.T) {
	p := csp.NewProblemUniform(2, 2)
	_, err := Run(p, func(csp.Var) sim.Agent {
		return core.NewAgent(0, p, 0, core.Learning{Kind: core.LearnResolvent})
	}, Options{})
	if err == nil {
		t.Fatal("accepted misnumbered agents")
	}
}

func TestAsyncAWCSolvesColoring(t *testing.T) {
	inst, err := gen.Coloring(30, 81, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 12)
	res, err := Run(inst.Problem, awcFactory(inst.Problem, init, core.Learning{Kind: core.LearnResolvent}), Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Solved {
		t.Fatalf("not solved: %+v", res)
	}
	if !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("assignment is not a solution")
	}
	if res.Messages == 0 || res.TotalChecks == 0 {
		t.Errorf("metrics empty: %+v", res)
	}
}

func TestAsyncDBSolvesColoring(t *testing.T) {
	inst, err := gen.Coloring(20, 54, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 14)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, inst.Problem, init[v])
	}, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Solved {
		t.Fatalf("DB async not solved: %+v", res)
	}
}

func TestAsyncABTDetectsInsolubility(t *testing.T) {
	// K4 with 3 colors is insoluble; ABT must prove it asynchronously.
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Run(p, func(v csp.Var) sim.Agent {
		return abt.NewAgent(v, p, 0)
	}, Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Insoluble {
		t.Fatalf("insolubility not detected: %+v", res)
	}
}

// TestAsyncAWCWithJitter injects random per-link delivery delays (FIFO per
// link, reordered across links) on small, loosely constrained instances;
// the algorithm must still converge.
func TestAsyncAWCWithJitter(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		inst, err := gen.Coloring(15, 30, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		init := gen.RandomInitial(inst.Problem, seed+20)
		res, err := Run(inst.Problem,
			awcFactory(inst.Problem, init, core.Learning{Kind: core.LearnResolvent}),
			Options{MaxJitter: 100 * time.Microsecond, Seed: seed, Timeout: 20 * time.Second})
		if err != nil {
			t.Fatalf("seed %d: %v (res=%+v)", seed, err, res)
		}
		if !res.Solved {
			t.Fatalf("seed %d: not solved under jitter: %+v", seed, res)
		}
	}
}

func TestAsyncQuiescenceOnConsistentStart(t *testing.T) {
	// Two unconstrained variables: the system exchanges no repair traffic
	// and the run must end promptly (already a solution).
	p := csp.NewProblemUniform(2, 2)
	init := csp.SliceAssignment{0, 0}
	res, err := Run(p, awcFactory(p, init, core.Learning{Kind: core.LearnResolvent}), Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Solved {
		t.Fatalf("trivial problem unsolved: %+v", res)
	}
}

func TestAsyncTimeout(t *testing.T) {
	// An insoluble problem under an algorithm that cannot prove
	// insolubility (DB) runs until the timeout.
	p := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	init := csp.SliceAssignment{0, 0, 0}
	start := time.Now()
	res, err := Run(p, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, p, init[v])
	}, Options{Timeout: 300 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v (res=%+v), want ErrTimeout", err, res)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v", elapsed)
	}
}

func TestMailbox(t *testing.T) {
	mb := newMailbox()
	type m struct{ sim.Message }
	mb.put(m{})
	mb.put(m{})
	batch, ok := mb.take()
	if !ok || len(batch) != 2 {
		t.Fatalf("take = %d msgs, ok=%v", len(batch), ok)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := mb.take(); ok {
			t.Errorf("take on closed mailbox returned ok")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	mb.close()
	<-done
	// put after close is a no-op.
	mb.put(m{})
	if _, ok := mb.take(); ok {
		t.Errorf("message accepted after close")
	}
}

func TestAsyncDBWithJitter(t *testing.T) {
	inst, err := gen.Coloring(12, 24, 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 42)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, inst.Problem, init[v])
	}, Options{MaxJitter: 50 * time.Microsecond, Seed: 7, Timeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("%v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("DB under jitter not solved: %+v", res)
	}
}

func TestAsyncGoroutinesDrainAfterRun(t *testing.T) {
	before := runtimeNumGoroutine()
	inst, err := gen.Coloring(20, 54, 3, 43)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 44)
	for i := 0; i < 3; i++ {
		if _, err := Run(inst.Problem, awcFactory(inst.Problem, init, core.Learning{Kind: core.LearnResolvent}), Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// All agent goroutines, the monitor, and the dispatcher must have
	// exited; allow slack for runtime background goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		after := runtimeNumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
