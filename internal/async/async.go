// Package async runs the distributed algorithms on a genuinely asynchronous
// system: one goroutine per agent, channel-free mailboxes with no global
// clock, optional randomized delivery delay. Section 5 of the paper notes
// the algorithms "are designed for a fully asynchronous distributed system,
// and thereby can work on any type of distributed systems"; this runtime
// demonstrates exactly that with the same Agent implementations the
// synchronous simulator uses.
//
// Because there are no cycles, the paper's cycle/maxcck metrics do not
// apply; the runtime reports wall-clock duration, total messages, and total
// nogood checks instead. Termination is detected by an out-of-band monitor
// that polls a lock-free snapshot of the agents' published values, plus a
// quiescence detector (no messages in flight means no agent will ever act
// again).
package async

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

// ErrTimeout is returned when the run's deadline expires before a solution,
// insolubility proof, or quiescence.
var ErrTimeout = errors.New("async: run timed out")

// Options configures a run.
type Options struct {
	// Timeout bounds the wall-clock run time; 0 means 30 seconds.
	Timeout time.Duration
	// PollInterval is the monitor's snapshot period; 0 means 100µs.
	PollInterval time.Duration
	// MaxJitter, when positive, delays every delivery by a uniform random
	// duration in [0, MaxJitter) — the failure-injection knob that
	// exercises message reordering across links. Deliveries on one
	// (sender, receiver) link stay FIFO: the algorithms' correctness model
	// (Yokoo et al.) assumes order-preserving channels, and reordering
	// within a link genuinely breaks them (an old ok? overwriting a newer
	// value leaves permanently stale views).
	MaxJitter time.Duration
	// Seed drives the jitter; runs with jitter are *not* reproducible
	// (goroutine interleaving is inherently nondeterministic) but the seed
	// decorrelates repeated test runs.
	Seed int64
}

// Result reports a completed asynchronous run.
type Result struct {
	// Solved reports whether the monitor observed a solution snapshot.
	Solved bool
	// Insoluble reports that some agent derived the empty nogood.
	Insoluble bool
	// Quiescent reports that the run ended because no messages were left
	// in flight.
	Quiescent bool
	// Assignment is the final published global assignment.
	Assignment csp.SliceAssignment
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalChecks sums every agent's nogood checks.
	TotalChecks int64
	// Duration is the wall-clock time from start to stop.
	Duration time.Duration
}

// Run executes one agent goroutine per problem variable until the monitor
// observes a solution, an agent proves insolubility, the system quiesces, or
// the timeout expires (which returns ErrTimeout alongside the partial
// result). makeAgent builds the algorithm-specific agent for each variable.
func Run(problem *csp.Problem, makeAgent func(v csp.Var) sim.Agent, opts Options) (Result, error) {
	n := problem.NumVars()
	if n == 0 {
		return Result{Solved: true, Assignment: csp.SliceAssignment{}}, nil
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	poll := opts.PollInterval
	if poll <= 0 {
		poll = 100 * time.Microsecond
	}

	rt := &runtime{
		problem:   problem,
		agents:    make([]sim.Agent, n),
		mailboxes: make([]*mailbox, n),
		published: make([]atomic.Int64, n),
		stop:      make(chan struct{}),
	}
	if opts.MaxJitter > 0 {
		rt.jitter = opts.MaxJitter
		rt.rng = rand.New(rand.NewSource(opts.Seed))
		rt.linkClock = make(map[linkKey]time.Time)
		rt.delayed = make(chan delayedMsg)
		rt.dispDone = make(chan struct{})
		go rt.dispatcher()
	}
	for v := 0; v < n; v++ {
		rt.agents[v] = makeAgent(csp.Var(v))
		if int(rt.agents[v].ID()) != v {
			return Result{}, fmt.Errorf("async: agent for variable %d has id %d", v, rt.agents[v].ID())
		}
		rt.mailboxes[v] = newMailbox()
	}

	start := time.Now()
	// Publish initial values and route initial messages before any
	// goroutine starts, so the in-flight counter can never be observed at
	// zero while startup messages remain unrouted.
	for v, a := range rt.agents {
		rt.published[v].Store(int64(a.CurrentValue()))
	}
	for _, a := range rt.agents {
		rt.route(a.Init())
	}

	var wg sync.WaitGroup
	for v := range rt.agents {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rt.agentLoop(v)
		}(v)
	}

	res := rt.monitor(timeout, poll)
	close(rt.stop)
	for _, mb := range rt.mailboxes {
		mb.close()
	}
	wg.Wait()

	if rt.dispDone != nil {
		<-rt.dispDone
	}

	res.Duration = time.Since(start)
	res.Messages = rt.delivered.Load()
	if res.Assignment == nil {
		res.Assignment = rt.snapshot()
		res.Solved = problem.IsSolution(res.Assignment)
	}
	for _, a := range rt.agents {
		res.TotalChecks += a.Checks()
	}
	if !res.Solved && !res.Insoluble && !res.Quiescent {
		return res, ErrTimeout
	}
	return res, nil
}

type runtime struct {
	problem   *csp.Problem
	agents    []sim.Agent
	mailboxes []*mailbox
	published []atomic.Int64
	inFlight  atomic.Int64
	delivered atomic.Int64
	insoluble atomic.Bool
	stop      chan struct{}

	jitter    time.Duration
	jitterMu  sync.Mutex
	rng       *rand.Rand
	linkClock map[linkKey]time.Time
	seq       int64
	delayed   chan delayedMsg
	dispDone  chan struct{}
}

// linkKey identifies one directed communication link.
type linkKey struct {
	from, to sim.AgentID
}

// delayedMsg is a message scheduled for future delivery by the dispatcher.
type delayedMsg struct {
	at  time.Time
	seq int64
	msg sim.Message
}

// agentLoop drains the agent's mailbox, steps the agent, and routes its
// output until the runtime stops.
func (rt *runtime) agentLoop(v int) {
	a := rt.agents[v]
	mb := rt.mailboxes[v]
	for {
		batch, ok := mb.take()
		if !ok {
			return
		}
		out := a.Step(batch)
		rt.published[v].Store(int64(a.CurrentValue()))
		if r, isReporter := a.(sim.InsolubleReporter); isReporter && r.Insoluble() {
			rt.insoluble.Store(true)
		}
		rt.route(out)
		rt.delivered.Add(int64(len(batch)))
		// Decrement last: a nonzero in-flight count must cover messages
		// being processed, or quiescence could be declared spuriously.
		rt.inFlight.Add(-int64(len(batch)))
	}
}

// route delivers messages, optionally after a random delay.
func (rt *runtime) route(out []sim.Message) {
	if len(out) == 0 {
		return
	}
	rt.inFlight.Add(int64(len(out)))
	for _, m := range out {
		if rt.jitter <= 0 {
			rt.mailboxes[m.To()].put(m)
			continue
		}
		// Pick a random arrival instant, then push it out to at least the
		// link's previously scheduled arrival so per-link FIFO holds; the
		// heap's sequence tiebreak orders equal arrivals by send order.
		rt.jitterMu.Lock()
		arrival := time.Now().Add(time.Duration(rt.rng.Int63n(int64(rt.jitter))))
		key := linkKey{from: m.From(), to: m.To()}
		if last, ok := rt.linkClock[key]; ok && arrival.Before(last) {
			arrival = last
		}
		rt.linkClock[key] = arrival
		rt.seq++
		dm := delayedMsg{at: arrival, seq: rt.seq, msg: m}
		rt.jitterMu.Unlock()
		select {
		case rt.delayed <- dm:
		case <-rt.stop:
			// The dispatcher has exited; drop the message but keep the
			// in-flight count honest.
			rt.inFlight.Add(-1)
		}
	}
}

// dispatcher delivers jitter-delayed messages in (arrival, send-order)
// sequence. A single goroutine owning the schedule gives a total delivery
// order, which per-message timers cannot (close deadlines race).
func (rt *runtime) dispatcher() {
	defer close(rt.dispDone)
	var h delayHeap
	for {
		var (
			timerC <-chan time.Time
			timer  *time.Timer
		)
		if len(h) > 0 {
			timer = time.NewTimer(time.Until(h[0].at))
			timerC = timer.C
		}
		select {
		case dm := <-rt.delayed:
			heap.Push(&h, dm)
		case <-timerC:
			now := time.Now()
			for len(h) > 0 && !h[0].at.After(now) {
				dm := heap.Pop(&h).(delayedMsg)
				rt.mailboxes[dm.msg.To()].put(dm.msg)
			}
		case <-rt.stop:
			if timer != nil {
				timer.Stop()
			}
			// Undelivered messages die with the run.
			rt.inFlight.Add(-int64(len(h)))
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// delayHeap orders delayed messages by arrival time, then send sequence.
type delayHeap []delayedMsg

func (h delayHeap) Len() int { return len(h) }

func (h delayHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *delayHeap) Push(x any) { *h = append(*h, x.(delayedMsg)) }

func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// monitor polls the published assignment until a terminal condition.
func (rt *runtime) monitor(timeout, poll time.Duration) Result {
	deadline := time.Now().Add(timeout)
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for range ticker.C {
		// A snapshot satisfying every constraint is a valid solution to the
		// CSP even if it mixes values from slightly different instants;
		// capture it immediately, because agents acting on stale views may
		// still move before the runtime shuts down.
		if snap := rt.snapshot(); rt.problem.IsSolution(snap) {
			return Result{Solved: true, Assignment: snap}
		}
		if rt.insoluble.Load() {
			return Result{Insoluble: true}
		}
		if rt.inFlight.Load() == 0 {
			// Double-check after a grace period: the counter can be zero
			// only between routing and processing when nothing is queued,
			// which is stable, but re-reading costs little.
			if rt.inFlight.Load() == 0 {
				return Result{Quiescent: true}
			}
		}
		if time.Now().After(deadline) {
			return Result{}
		}
	}
	return Result{}
}

func (rt *runtime) snapshot() csp.SliceAssignment {
	s := csp.NewSliceAssignment(len(rt.published))
	for i := range rt.published {
		s[i] = csp.Value(rt.published[i].Load())
	}
	return s
}

// mailbox is an unbounded MPSC queue with blocking take.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sim.Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m sim.Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
}

// take blocks until at least one message is available (returning the whole
// queue as a batch) or the mailbox closes (returning ok=false).
func (mb *mailbox) take() ([]sim.Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return nil, false
	}
	batch := mb.queue
	mb.queue = nil
	return batch, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}
