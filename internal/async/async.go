// Package async runs the distributed algorithms on a genuinely asynchronous
// system: one goroutine per agent, channel-free mailboxes with no global
// clock, optional randomized delivery delay. Section 5 of the paper notes
// the algorithms "are designed for a fully asynchronous distributed system,
// and thereby can work on any type of distributed systems"; this runtime
// demonstrates exactly that with the same Agent implementations the
// synchronous simulator uses.
//
// Because there are no cycles, the paper's cycle/maxcck metrics do not
// apply; the runtime reports wall-clock duration, total messages, and total
// nogood checks instead. Termination is detected by an out-of-band monitor
// that polls a lock-free snapshot of the agents' published values, plus a
// quiescence detector (no messages in flight means no agent will ever act
// again).
//
// The runtime additionally accepts a deterministic fault schedule
// (internal/faults): per-link message drop, duplication, and bounded delay,
// plus per-agent crash points with checkpoint-based restart. Faults are
// applied below the reliable-transport abstraction the algorithms assume —
// a dropped message costs retransmission backoff (delay), a duplicate is
// suppressed before delivery, and deliveries on one directed link stay
// FIFO — so the algorithms observe a slower, but still correct, network.
// Partition windows are modeled the same way: a message crossing the cut is
// held (deterministic added delay) until the window heals, and a
// never-healing window holds it forever — the message stays in flight, so
// quiescence is never declared while traffic is stranded, and the run ends
// at the deadline with a progress report instead.
package async

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/progress"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
)

// ErrTimeout is returned when the run's deadline expires before a solution,
// insolubility proof, or quiescence. The concrete error is a *TimeoutError
// carrying the runtime's last observed state; errors.Is(err, ErrTimeout)
// matches it.
var ErrTimeout = errors.New("async: run timed out")

// TimeoutError reports a run that hit its deadline, with a snapshot of the
// runtime's final state so a stuck run is diagnosable from the error alone.
// It wraps ErrTimeout.
type TimeoutError struct {
	// Timeout is the configured deadline that expired.
	Timeout time.Duration
	// InFlight is the number of messages routed but not yet processed.
	InFlight int64
	// Delivered is the total number of messages processed by agents.
	Delivered int64
	// Processed is the per-agent count of messages processed, indexed by
	// variable.
	Processed []int64
	// Report is the stall watchdog's classification of the stuck run —
	// stalled (no traffic), livelock (traffic without search progress), or
	// converging (slow, not stuck) — with per-agent progress deltas. Nil
	// only when the run died before the watchdog gathered two samples.
	Report *progress.Report
}

func (e *TimeoutError) Error() string {
	s := fmt.Sprintf("async: run timed out after %v: %d messages in flight, %d delivered, per-agent processed %v",
		e.Timeout, e.InFlight, e.Delivered, e.Processed)
	if e.Report != nil {
		s += "; " + e.Report.String()
	}
	return s
}

func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// Options configures a run.
type Options struct {
	// Timeout bounds the wall-clock run time; 0 means 30 seconds.
	Timeout time.Duration
	// PollInterval is the monitor's snapshot period; 0 means 100µs.
	PollInterval time.Duration
	// MaxJitter, when positive, delays every delivery by a uniform random
	// duration in [0, MaxJitter) — the failure-injection knob that
	// exercises message reordering across links. Deliveries on one
	// (sender, receiver) link stay FIFO: the algorithms' correctness model
	// (Yokoo et al.) assumes order-preserving channels, and reordering
	// within a link genuinely breaks them (an old ok? overwriting a newer
	// value leaves permanently stale views).
	MaxJitter time.Duration
	// Seed drives the jitter; runs with jitter are *not* reproducible
	// (goroutine interleaving is inherently nondeterministic) but the seed
	// decorrelates repeated test runs.
	Seed int64
	// Faults, when non-nil, injects a deterministic fault schedule: message
	// drop (modeled as retransmission delay), duplication (suppressed at
	// delivery), bounded extra delay, and per-agent crash points. Crashed
	// agents restart from their last checkpoint when the schedule says so;
	// agents that implement sim.Checkpointer resume mid-search, others
	// restart from scratch.
	Faults *faults.Config
	// WatchdogCadence is the stall watchdog's sampling period; 0 means
	// progress.DefaultCadence. Each sample also lands in the telemetry
	// stream when one is attached, so healthy runs record frontier-hash
	// progress, not only timed-out ones.
	WatchdogCadence time.Duration
	// Telemetry, when non-nil, receives the run's event stream (watchdog
	// samples, per-agent totals at the end-of-run quiescence point) and
	// metrics (deliveries, queue depths, transport counters, per-agent
	// nogood-store sizes). Nil disables all instrumentation; the runtime
	// behaves identically either way apart from the observation itself.
	Telemetry *telemetry.Run
	// Causal, when non-nil, records one span per agent activation and
	// stamps outgoing messages with trace IDs (see internal/causal). Agent
	// handles are per-variable and survive crash-restarts, so a restarted
	// incarnation continues its predecessor's trace-ID counter.
	Causal *causal.Tracer
}

// Result reports a completed asynchronous run.
type Result struct {
	// Solved reports whether the monitor observed a solution snapshot.
	Solved bool
	// Insoluble reports that some agent derived the empty nogood.
	Insoluble bool
	// Quiescent reports that the run ended because no messages were left
	// in flight.
	Quiescent bool
	// Assignment is the final published global assignment.
	Assignment csp.SliceAssignment
	// Messages is the total number of messages delivered.
	Messages int64
	// TotalChecks sums every agent's nogood checks.
	TotalChecks int64
	// Duration is the wall-clock time from start to stop.
	Duration time.Duration

	// Retransmits counts message transmissions repeated because a fault
	// dropped an earlier attempt, including batches redelivered to a
	// restarted agent.
	Retransmits int64
	// DuplicatesSuppressed counts injected duplicate deliveries discarded
	// before reaching an agent.
	DuplicatesSuppressed int64
	// Restarts counts agents that crashed and recovered from a checkpoint.
	Restarts int64
	// Partitioned counts messages held at a partition cut (delivered at
	// heal, or stranded forever under a never-healing window).
	Partitioned int64
	// PartitionHeals counts scheduled partition windows that healed within
	// the run's duration.
	PartitionHeals int64
}

// Run executes one agent goroutine per problem variable until the monitor
// observes a solution, an agent proves insolubility, the system quiesces, or
// the timeout expires (which returns a *TimeoutError alongside the partial
// result). makeAgent builds the algorithm-specific agent for each variable;
// it is also how a crash-scheduled agent is rebuilt before its checkpoint is
// restored.
func Run(problem *csp.Problem, makeAgent func(v csp.Var) sim.Agent, opts Options) (Result, error) {
	n := problem.NumVars()
	if n == 0 {
		return Result{Solved: true, Assignment: csp.SliceAssignment{}}, nil
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	poll := opts.PollInterval
	if poll <= 0 {
		poll = 100 * time.Microsecond
	}
	cadence := opts.WatchdogCadence
	if cadence <= 0 {
		cadence = progress.DefaultCadence
	}

	rt := &runtime{
		problem:   problem,
		makeAgent: makeAgent,
		agents:    make([]sim.Agent, n),
		mailboxes: make([]*mailbox, n),
		published: make([]atomic.Int64, n),
		processed: make([]atomic.Int64, n),
		stop:      make(chan struct{}),
		tel:       opts.Telemetry,
		causal:    opts.Causal,
	}
	if reg := opts.Telemetry.Registry(); reg != nil {
		// Resolve per-agent metrics up front (lookups mutate the registry
		// and must not race the monitor), then wrap makeAgent so restarted
		// agents re-attach to the same gauges. The gauges are atomics: the
		// monitor samples live store sizes without touching agent state.
		rt.storeGauges = make([]*telemetry.Gauge, n)
		metrics := make([]telemetry.StoreMetrics, n)
		for v := 0; v < n; v++ {
			label := strconv.Itoa(v)
			rt.storeGauges[v] = reg.Gauge(telemetry.Name("discsp_store_nogoods", "agent", label))
			metrics[v] = telemetry.StoreMetrics{
				Size:      rt.storeGauges[v],
				Lengths:   reg.Histogram(telemetry.Name("discsp_learned_nogood_len", "agent", label), telemetry.NogoodLenBuckets),
				Evictions: reg.Counter(telemetry.Name("discsp_store_evictions", "agent", label)),
			}
		}
		rt.queueHist = reg.Histogram("discsp_queue_depth", telemetry.QueueDepthBuckets)
		orig := makeAgent
		rt.makeAgent = func(v csp.Var) sim.Agent {
			a := orig(v)
			if ia, ok := a.(instrumented); ok {
				ia.Instrument(metrics[v])
			}
			return a
		}
	}
	if opts.Faults != nil {
		rt.inj = faults.New(*opts.Faults)
	}
	// The dispatcher owns every delayed delivery; it is needed whenever any
	// fault or jitter can push a message into the future — including a
	// partition window, which holds crossing messages until it heals.
	useDispatcher := opts.MaxJitter > 0 ||
		(opts.Faults != nil && (opts.Faults.Drop > 0 || opts.Faults.Duplicate > 0 ||
			opts.Faults.MaxDelay > 0 || len(opts.Faults.Partitions) > 0))
	if useDispatcher {
		rt.dispatch = true
		rt.linkClock = make(map[linkKey]time.Time)
		rt.linkSeq = make(map[linkKey]int64)
		rt.delayed = make(chan delayedMsg)
		rt.dispDone = make(chan struct{})
		if opts.MaxJitter > 0 {
			rt.jitter = opts.MaxJitter
			rt.rng = rand.New(rand.NewSource(opts.Seed))
		}
		go rt.dispatcher()
	}
	for v := 0; v < n; v++ {
		rt.agents[v] = rt.makeAgent(csp.Var(v))
		if int(rt.agents[v].ID()) != v {
			return Result{}, fmt.Errorf("async: agent for variable %d has id %d", v, rt.agents[v].ID())
		}
		rt.mailboxes[v] = newMailbox()
	}

	start := time.Now()
	rt.start = start
	// Publish initial values and route initial messages before any
	// goroutine starts, so the in-flight counter can never be observed at
	// zero while startup messages remain unrouted.
	for v, a := range rt.agents {
		rt.published[v].Store(int64(a.CurrentValue()))
	}
	for _, a := range rt.agents {
		at := rt.causal.Agent(int(a.ID()))
		at.Begin(causal.SpanInit, 0)
		out := a.Init()
		stampBatch(at, out)
		at.End()
		rt.route(out)
	}

	var wg sync.WaitGroup
	for v := range rt.agents {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rt.agentLoop(v)
		}(v)
	}

	res, terr := rt.monitor(timeout, poll, cadence)
	close(rt.stop)
	for _, mb := range rt.mailboxes {
		mb.close()
	}
	wg.Wait()

	if rt.dispDone != nil {
		<-rt.dispDone
	}
	if e := rt.runErr.Load(); e != nil {
		return res, e.(error)
	}

	res.Duration = time.Since(start)
	res.Messages = rt.delivered.Load()
	res.Retransmits = rt.retransmits.Load()
	res.DuplicatesSuppressed = rt.dupsSuppressed.Load()
	res.Restarts = rt.restarts.Load()
	res.Partitioned = rt.partitioned.Load()
	res.PartitionHeals = rt.inj.HealedBy(res.Duration)
	if res.Assignment == nil {
		res.Assignment = rt.snapshot()
		res.Solved = problem.IsSolution(res.Assignment)
	}
	for _, a := range rt.agentsFinal() {
		res.TotalChecks += a.Checks()
	}
	rt.emitFinal(res)
	if !res.Solved && !res.Insoluble && !res.Quiescent {
		if terr == nil {
			terr = ErrTimeout
		}
		return res, terr
	}
	return res, nil
}

type runtime struct {
	problem   *csp.Problem
	makeAgent func(v csp.Var) sim.Agent
	agents    []sim.Agent
	mailboxes []*mailbox
	published []atomic.Int64
	processed []atomic.Int64
	inFlight  atomic.Int64
	delivered atomic.Int64
	insoluble atomic.Bool
	stop      chan struct{}
	runErr    atomic.Value // error

	start time.Time

	inj            *faults.Injector
	retransmits    atomic.Int64
	dupsSuppressed atomic.Int64
	restarts       atomic.Int64
	partitioned    atomic.Int64

	tel         *telemetry.Run
	causal      *causal.Tracer
	storeGauges []*telemetry.Gauge
	queueHist   *telemetry.Histogram

	dispatch  bool
	jitter    time.Duration
	jitterMu  sync.Mutex
	rng       *rand.Rand
	linkClock map[linkKey]time.Time
	linkSeq   map[linkKey]int64
	seq       int64
	delayed   chan delayedMsg
	dispDone  chan struct{}
}

// agentsFinal returns the agent slice for post-run accounting. Agent loops
// may have replaced crashed agents; wg.Wait in Run orders those writes
// before this read.
func (rt *runtime) agentsFinal() []sim.Agent { return rt.agents }

// instrumented is implemented by agents whose nogood store accepts
// telemetry hooks (core, abt, breakout).
type instrumented interface {
	Instrument(telemetry.StoreMetrics)
}

// storeSizer is implemented by agents exposing their nogood-store size.
type storeSizer interface{ StoreSize() int }

// emitFinal records the run's totals: one agent event per variable at the
// end-of-run quiescence point (every agent goroutine has stopped, so the
// non-atomic Checks counters are safe to read), the delivery/check/transport
// counters, and the closing end + snapshot events. Called after wg.Wait and
// after res's counter fields are filled; no-op without telemetry.
func (rt *runtime) emitFinal(res Result) {
	if rt.tel == nil {
		return
	}
	reg := rt.tel.Registry()
	for v, a := range rt.agentsFinal() {
		ev := telemetry.Event{
			Kind:           telemetry.KindAgent,
			Agent:          v,
			Checks:         a.Checks(),
			AgentProcessed: rt.processed[v].Load(),
		}
		if ss, ok := a.(storeSizer); ok {
			ev.StoreSize = int64(ss.StoreSize())
		}
		rt.tel.Emit(ev)
	}
	reg.Counter("discsp_deliveries_total").Add(res.Messages)
	reg.Counter("discsp_checks_total").Add(res.TotalChecks)
	telemetry.Transport{
		Retransmits:          res.Retransmits,
		DuplicatesSuppressed: res.DuplicatesSuppressed,
		Restarts:             res.Restarts,
		Partitioned:          res.Partitioned,
		PartitionHeals:       res.PartitionHeals,
	}.Record(reg)
}

// linkKey identifies one directed communication link.
type linkKey struct {
	from, to sim.AgentID
}

// neverHealDelay schedules a message cut by a never-healing partition: far
// past any plausible deadline, so it stays in flight (and in the dispatch
// heap) until the run ends.
const neverHealDelay = 10000 * time.Hour

// delayedMsg is a message scheduled for future delivery by the dispatcher.
type delayedMsg struct {
	at  time.Time
	seq int64
	msg sim.Message
	// dup marks an injected duplicate copy: the transport's dedup layer
	// suppresses it at arrival instead of delivering it, so it never counts
	// toward in-flight work.
	dup bool
}

// agentLoop drains the agent's mailbox, steps the agent, and routes its
// output until the runtime stops. When the fault schedule assigns this agent
// a crash point, the loop checkpoints durable state after every step until
// the crash fires; the crash loses the batch in hand (it was never
// acknowledged), and on restart a fresh agent restores the checkpoint and
// the lost batch is redelivered — the transport-level retransmission the
// reliable protocol guarantees.
func (rt *runtime) agentLoop(v int) {
	a := rt.agents[v]
	mb := rt.mailboxes[v]
	// One tracer handle per variable for the whole loop: a restarted
	// incarnation keeps its predecessor's trace-ID counter, so cause IDs
	// stay stable across crash-restarts. Nil when tracing is off.
	at := rt.causal.Agent(v)
	var crash faults.Crash
	crashPending := false
	if rt.inj != nil {
		crash, crashPending = rt.inj.Crash(v)
	}
	var ckpt any
	steps := 0
	for {
		batch, ok := mb.take()
		if !ok {
			return
		}
		if crashPending && steps >= crash.AfterSteps {
			crashPending = false
			if !crash.Restart {
				// The agent is gone for good. Its in-hand batch dies with
				// it; keep the in-flight counter honest. Later arrivals
				// keep the counter positive, so quiescence is never
				// declared while work is stranded at a dead agent.
				rt.inFlight.Add(-int64(len(batch)))
				return
			}
			if crash.RestartDelay > 0 {
				time.Sleep(crash.RestartDelay)
			}
			fresh := rt.makeAgent(csp.Var(v))
			if c, canRestore := fresh.(sim.Checkpointer); canRestore && ckpt != nil {
				if err := c.Restore(ckpt); err != nil {
					rt.fail(fmt.Errorf("async: agent %d restore after crash: %w", v, err))
					rt.inFlight.Add(-int64(len(batch)))
					return
				}
			}
			a = fresh
			rt.agents[v] = a
			rt.published[v].Store(int64(a.CurrentValue()))
			rt.restarts.Add(1)
			// The batch in hand was lost with the crash and is being
			// redelivered by retransmission.
			rt.retransmits.Add(int64(len(batch)))
		}
		at.Begin(causal.SpanStep, steps)
		causeBatch(at, batch)
		out := a.Step(batch)
		stampBatch(at, out)
		at.End()
		steps++
		if crashPending {
			if c, canSnap := a.(sim.Checkpointer); canSnap {
				ckpt = c.Checkpoint()
			}
		}
		rt.published[v].Store(int64(a.CurrentValue()))
		if r, isReporter := a.(sim.InsolubleReporter); isReporter && r.Insoluble() {
			rt.insoluble.Store(true)
		}
		rt.route(out)
		rt.delivered.Add(int64(len(batch)))
		rt.processed[v].Add(int64(len(batch)))
		// Decrement last: a nonzero in-flight count must cover messages
		// being processed, or quiescence could be declared spuriously.
		rt.inFlight.Add(-int64(len(batch)))
	}
}

// fail records the first fatal runtime error; the monitor surfaces it.
func (rt *runtime) fail(err error) {
	rt.runErr.CompareAndSwap(nil, err)
}

// causeBatch records the delivered batch as the open span's cause set.
// No-op (no allocation, no timestamp) when tracing is off.
func causeBatch(at *causal.AgentTracer, in []sim.Message) {
	if at == nil {
		return
	}
	for _, m := range in {
		at.Cause(m)
	}
}

// stampBatch assigns trace IDs to outgoing messages in place. No-op when
// tracing is off.
func stampBatch(at *causal.AgentTracer, out []sim.Message) {
	if at == nil {
		return
	}
	for i, m := range out {
		out[i] = at.Stamp(m, int(m.To()), sim.TypeName(m)).(sim.Message)
	}
}

// route delivers messages, applying the fault schedule and optional jitter.
// Each logical message is counted in flight exactly once: a drop shows up as
// retransmission-backoff delay (the injector bounds attempts, so the first
// successful attempt is computable at send time), and a duplicate is an
// extra scheduled copy that the dedup layer discards at arrival. Per-link
// FIFO is preserved by clamping each arrival to the link's previous one.
func (rt *runtime) route(out []sim.Message) {
	if len(out) == 0 {
		return
	}
	rt.inFlight.Add(int64(len(out)))
	for _, m := range out {
		if !rt.dispatch {
			rt.mailboxes[m.To()].put(m)
			continue
		}
		rt.jitterMu.Lock()
		key := linkKey{from: m.From(), to: m.To()}
		now := time.Now()
		var delay time.Duration
		if rt.jitter > 0 {
			delay = time.Duration(rt.rng.Int63n(int64(rt.jitter)))
		}
		var dupAt time.Time
		hasDup := false
		if rt.inj != nil {
			seq := rt.linkSeq[key] + 1
			rt.linkSeq[key] = seq
			from, to := int(m.From()), int(m.To())
			attempt := 0
			for rt.inj.Dropped(from, to, seq, attempt) {
				delay += faults.Backoff(attempt)
				attempt++
			}
			rt.retransmits.Add(int64(attempt))
			delay += rt.inj.Delay(from, to, seq, 0)
			if rt.inj.Duplicated(from, to, seq) {
				hasDup = true
				dupAt = now.Add(rt.inj.Delay(from, to, seq, 1))
			}
		}
		arrival := now.Add(delay)
		if rt.inj.AnyPartition() {
			// A message crossing a partition cut is held at the boundary: it
			// arrives when the window heals, or — under a never-healing
			// window — effectively never, staying in flight so quiescence is
			// not declared while traffic is stranded.
			from, to := int(m.From()), int(m.To())
			if cut, heal, heals := rt.inj.PartitionedAt(from, to, arrival.Sub(rt.start)); cut {
				rt.partitioned.Add(1)
				if heals {
					arrival = rt.start.Add(heal)
				} else {
					arrival = rt.start.Add(neverHealDelay)
				}
			}
		}
		if last, ok := rt.linkClock[key]; ok && arrival.Before(last) {
			arrival = last
		}
		rt.linkClock[key] = arrival
		rt.seq++
		dm := delayedMsg{at: arrival, seq: rt.seq, msg: m}
		var ddm delayedMsg
		if hasDup {
			rt.seq++
			ddm = delayedMsg{at: dupAt, seq: rt.seq, msg: m, dup: true}
		}
		rt.jitterMu.Unlock()
		select {
		case rt.delayed <- dm:
		case <-rt.stop:
			// The dispatcher has exited; drop the message but keep the
			// in-flight count honest.
			rt.inFlight.Add(-1)
			continue
		}
		if hasDup {
			select {
			case rt.delayed <- ddm:
			case <-rt.stop:
			}
		}
	}
}

// dispatcher delivers delayed messages in (arrival, send-order) sequence. A
// single goroutine owning the schedule gives a total delivery order, which
// per-message timers cannot (close deadlines race). Injected duplicates are
// suppressed here — the dedup half of the reliable transport — so mailboxes
// see each logical message exactly once.
func (rt *runtime) dispatcher() {
	defer close(rt.dispDone)
	var h delayHeap
	for {
		var (
			timerC <-chan time.Time
			timer  *time.Timer
		)
		if len(h) > 0 {
			timer = time.NewTimer(time.Until(h[0].at))
			timerC = timer.C
		}
		select {
		case dm := <-rt.delayed:
			heap.Push(&h, dm)
		case <-timerC:
			now := time.Now()
			for len(h) > 0 && !h[0].at.After(now) {
				dm := heap.Pop(&h).(delayedMsg)
				if dm.dup {
					rt.dupsSuppressed.Add(1)
					continue
				}
				rt.mailboxes[dm.msg.To()].put(dm.msg)
			}
		case <-rt.stop:
			if timer != nil {
				timer.Stop()
			}
			// Undelivered messages die with the run; duplicates were never
			// counted in flight.
			for _, dm := range h {
				if !dm.dup {
					rt.inFlight.Add(-1)
				}
			}
			return
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// delayHeap orders delayed messages by arrival time, then send sequence.
type delayHeap []delayedMsg

func (h delayHeap) Len() int { return len(h) }

func (h delayHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *delayHeap) Push(x any) { *h = append(*h, x.(delayedMsg)) }

func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// observe feeds the stall watchdog one sample of the runtime's counters and
// tees the same sample into the telemetry stream, so healthy runs record
// frontier-hash progress too — not only the *TimeoutError path. The frontier
// hash covers the published assignment and the insolubility flag — what an
// outside observer can see of search progress.
func (rt *runtime) observe(wd *progress.Watchdog, now time.Time) {
	words := make([]int64, 0, len(rt.published)+1)
	for i := range rt.published {
		words = append(words, rt.published[i].Load())
	}
	if rt.insoluble.Load() {
		words = append(words, 1)
	}
	proc := make([]int64, len(rt.processed))
	for i := range rt.processed {
		proc[i] = rt.processed[i].Load()
	}
	sample := progress.Sample{
		At:        now,
		Delivered: rt.delivered.Load(),
		InFlight:  rt.inFlight.Load(),
		Processed: proc,
		Frontier:  progress.Hash64(words...),
	}
	wd.Observe(sample) // copies Processed; sharing proc below is safe
	if rt.tel == nil {
		return
	}
	var storeTotal int64
	for _, g := range rt.storeGauges {
		storeTotal += g.Value()
	}
	var depth int64
	for _, mb := range rt.mailboxes {
		depth += int64(mb.depth())
	}
	rt.queueHist.Observe(depth)
	rt.tel.Emit(telemetry.Event{
		Kind:       telemetry.KindSample,
		ElapsedUS:  now.Sub(rt.start).Microseconds(),
		Delivered:  sample.Delivered,
		InFlight:   sample.InFlight,
		Processed:  proc,
		Frontier:   strconv.FormatUint(sample.Frontier, 16),
		StoreTotal: storeTotal,
		QueueDepth: depth,
	})
}

// monitor polls the published assignment until a terminal condition. On
// deadline expiry it returns a *TimeoutError describing the stuck state,
// including the stall watchdog's progress report.
func (rt *runtime) monitor(timeout, poll, cadence time.Duration) (Result, error) {
	deadline := time.Now().Add(timeout)
	wd := progress.NewWatchdog()
	var lastObserve time.Time
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for range ticker.C {
		if now := time.Now(); now.Sub(lastObserve) >= cadence {
			lastObserve = now
			rt.observe(wd, now)
		}
		if rt.runErr.Load() != nil {
			return Result{}, nil // Run surfaces the recorded error
		}
		// A snapshot satisfying every constraint is a valid solution to the
		// CSP even if it mixes values from slightly different instants;
		// capture it immediately, because agents acting on stale views may
		// still move before the runtime shuts down.
		if snap := rt.snapshot(); rt.problem.IsSolution(snap) {
			return Result{Solved: true, Assignment: snap}, nil
		}
		if rt.insoluble.Load() {
			return Result{Insoluble: true}, nil
		}
		if rt.inFlight.Load() == 0 {
			// Double-check after a grace period: the counter can be zero
			// only between routing and processing when nothing is queued,
			// which is stable, but re-reading costs little.
			if rt.inFlight.Load() == 0 {
				return Result{Quiescent: true}, nil
			}
		}
		if now := time.Now(); now.After(deadline) {
			rt.observe(wd, now) // final sample so the report is current
			te := &TimeoutError{
				Timeout:   timeout,
				InFlight:  rt.inFlight.Load(),
				Delivered: rt.delivered.Load(),
				Processed: make([]int64, len(rt.processed)),
				Report:    wd.Report(now),
			}
			for i := range rt.processed {
				te.Processed[i] = rt.processed[i].Load()
			}
			return Result{}, te
		}
	}
	return Result{}, ErrTimeout
}

func (rt *runtime) snapshot() csp.SliceAssignment {
	s := csp.NewSliceAssignment(len(rt.published))
	for i := range rt.published {
		s[i] = csp.Value(rt.published[i].Load())
	}
	return s
}

// mailbox is an unbounded MPSC queue with blocking take.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []sim.Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// depth reports the queued message count; the telemetry sampler sums it
// across mailboxes.
func (mb *mailbox) depth() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

func (mb *mailbox) put(m sim.Message) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
}

// take blocks until at least one message is available (returning the whole
// queue as a batch) or the mailbox closes (returning ok=false).
func (mb *mailbox) take() ([]sim.Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return nil, false
	}
	batch := mb.queue
	mb.queue = nil
	return batch, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}
