package experiments

import (
	"os"
	"reflect"
	"testing"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// These tests pin the retention soundness contract (DESIGN.md §11): every
// learned nogood is implied by the initial constraints, so forgetting can
// change how much work a run does but never what it concludes. The
// unbounded store (RetainAll) is the reference; bounded policies must reach
// correct verdicts, and a cap that never binds must leave a run
// bit-identical to the reference — eviction machinery that is armed but
// idle may not perturb a single trace event or charged check.

// retentionLearners is the full learner matrix the dense/reference
// equivalence suite uses; retention must be sound under every one.
func retentionLearners() []core.Learning {
	return []core.Learning{
		{Kind: core.LearnResolvent},
		{Kind: core.LearnMCS},
		{Kind: core.LearnNone},
		{Kind: core.LearnResolvent, SizeBound: 3},
		{Kind: core.LearnResolvent, SubsumptionPruning: true},
		{Kind: core.LearnMCS, MCSRestrictScan: true},
		{Kind: core.LearnResolvent, TieBreak: core.TieBreakRandom, Seed: 17},
	}
}

// runAWCCapChecked runs AWC under l, asserting after every cycle that no
// agent's learned population exceeds the cap. It returns the result and the
// total evictions across agents.
func runAWCCapChecked(t *testing.T, p *csp.Problem, init csp.SliceAssignment, l core.Learning, maxCycles int) (TrialResult, int64) {
	t.Helper()
	agents := make([]sim.Agent, p.NumVars())
	awcAgents := make([]*core.Agent, p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		a := core.NewAgent(csp.Var(v), p, init[v], l)
		awcAgents[v] = a
		agents[v] = a
	}
	capHolds := true
	opts := sim.Options{
		MaxCycles: maxCycles,
		Trace: func(sim.CycleEvent) {
			if !l.Retention.Bounded() {
				return
			}
			for _, a := range awcAgents {
				if a.StoreLearnedLen() > l.Retention.Cap {
					capHolds = false
				}
			}
		},
	}
	res, err := sim.Run(p, agents, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !capHolds {
		t.Fatalf("learned population exceeded cap %d mid-run", l.Retention.Cap)
	}
	tr := TrialResult{Result: res}
	var evictions int64
	for _, a := range awcAgents {
		st := a.Stats()
		tr.RedundantGenerations += st.RedundantGenerations
		tr.NogoodsGenerated += st.NogoodsGenerated
		tr.Deadends += st.Deadends
		evictions += a.StoreEvictions()
	}
	return tr, evictions
}

// TestRetentionOracleVerdicts runs every learner on every problem family
// under binding caps and checks the verdict against the unbounded
// reference: same solved/insoluble outcome, and any claimed solution must
// actually satisfy the problem.
func TestRetentionOracleVerdicts(t *testing.T) {
	policies := []nogood.Retention{
		{Kind: nogood.RetainLRU, Cap: 16},
		{Kind: nogood.RetainActivity, Cap: 16},
	}
	const maxCycles = 4000
	for _, inst := range equivalenceInstances(t) {
		for _, l := range retentionLearners() {
			ref, _ := runAWCCapChecked(t, inst.problem, inst.init, l, maxCycles)
			for _, ret := range policies {
				bounded := l
				bounded.Retention = ret
				t.Run(inst.name+"/"+bounded.Name(), func(t *testing.T) {
					got, _ := runAWCCapChecked(t, inst.problem, inst.init, bounded, maxCycles)
					if got.Solved != ref.Solved || got.Insoluble != ref.Insoluble {
						t.Fatalf("verdict diverged: bounded solved=%v insoluble=%v, reference solved=%v insoluble=%v",
							got.Solved, got.Insoluble, ref.Solved, ref.Insoluble)
					}
					if got.Solved && !inst.problem.IsSolution(got.Assignment) {
						t.Fatal("bounded run claims a solution that violates the problem")
					}
				})
			}
		}
	}
}

// TestRetentionNonBindingBitIdentical pins the stronger eviction-free
// guarantee: with a cap no run ever reaches, every bounded policy is
// bit-identical to the unbounded reference — same per-cycle traces, same
// metrics, same charged checks, zero evictions. The retention machinery
// (meta stamps, Bump bookkeeping, cap checks) must be observationally free
// until it actually evicts.
func TestRetentionNonBindingBitIdentical(t *testing.T) {
	const hugeCap = 1 << 20
	for _, inst := range equivalenceInstances(t) {
		for _, l := range retentionLearners() {
			refRes, refTrace := traced(t, inst.problem, inst.init, l)
			for _, kind := range []nogood.RetentionKind{nogood.RetainLRU, nogood.RetainActivity} {
				bounded := l
				bounded.Retention = nogood.Retention{Kind: kind, Cap: hugeCap}
				t.Run(inst.name+"/"+bounded.Name(), func(t *testing.T) {
					res, trace := traced(t, inst.problem, inst.init, bounded)
					if !reflect.DeepEqual(res, refRes) {
						t.Errorf("results diverged under non-binding cap:\nbounded %+v\nref     %+v", res, refRes)
					}
					if len(trace) != len(refTrace) {
						t.Fatalf("trace lengths diverged: bounded %d, ref %d", len(trace), len(refTrace))
					}
					for i := range trace {
						if trace[i] != refTrace[i] {
							t.Fatalf("cycle %d diverged:\nbounded %+v\nref     %+v", i, trace[i], refTrace[i])
						}
					}
				})
			}
		}
	}
}

// TestRetentionABTVerdicts covers the second store-backed algorithm: ABT
// under binding caps must reach the reference verdict on both a solvable
// and an insoluble instance (ABT detects insolubility by deriving the empty
// nogood; forgetting learned nogoods must not break that).
func TestRetentionABTVerdicts(t *testing.T) {
	inst, err := gen.Coloring(12, 24, 3, 901)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 902)

	// An over-constrained instance: complete graph K4 with 3 colors is
	// insoluble.
	bad := csp.NewProblem()
	for i := 0; i < 4; i++ {
		bad.AddVar(0, 1, 2)
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := bad.AddNotEqual(csp.Var(i), csp.Var(j)); err != nil {
				t.Fatal(err)
			}
		}
	}
	badInit := gen.RandomInitial(bad, 903)

	opts := sim.Options{MaxCycles: 100000}
	for _, ret := range []nogood.Retention{
		{},
		{Kind: nogood.RetainLRU, Cap: 8},
		{Kind: nogood.RetainActivity, Cap: 8},
	} {
		res, err := RunABTRetention(inst.Problem, init, ret, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved || !inst.Problem.IsSolution(res.Assignment) {
			t.Errorf("ABT %v: solvable instance not solved (solved=%v)", ret, res.Solved)
		}
		badRes, err := RunABTRetention(bad, badInit, ret, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !badRes.Insoluble {
			t.Errorf("ABT %v: K4/3-coloring not reported insoluble", ret)
		}
	}
}

// soakConfig is one leg of the retention soak: a family × size grid run
// under a binding cap with verdicts checked against the unbounded
// reference on the same seeds, and the cap asserted after every cycle.
type soakConfig struct {
	kind      ProblemKind
	n         int
	instances int
	inits     int
	ret       nogood.Retention
	maxCycles int
}

func runRetentionSoak(t *testing.T, cfg soakConfig) {
	t.Helper()
	learning := BestLearning(cfg.kind)
	bounded := learning
	bounded.Retention = cfg.ret
	var evictionsTotal int64
	for i := 0; i < cfg.instances; i++ {
		problem, err := MakeInstance(cfg.kind, cfg.n, instanceSeed(0, cfg.kind, cfg.n, i))
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < cfg.inits; j++ {
			init := gen.RandomInitial(problem, initSeed(0, cfg.kind, cfg.n, i, j))
			ref, _ := runAWCCapChecked(t, problem, init, learning, cfg.maxCycles)
			got, ev := runAWCCapChecked(t, problem, init, bounded, cfg.maxCycles)
			evictionsTotal += ev
			if got.Solved != ref.Solved {
				t.Fatalf("%v n=%d instance %d init %d: bounded solved=%v, reference solved=%v",
					cfg.kind, cfg.n, i, j, got.Solved, ref.Solved)
			}
			if got.Solved && !problem.IsSolution(got.Assignment) {
				t.Fatalf("%v n=%d instance %d init %d: claimed solution violates problem",
					cfg.kind, cfg.n, i, j)
			}
		}
	}
	if evictionsTotal == 0 {
		t.Fatalf("%v n=%d cap=%d: soak produced no evictions — cap too loose to exercise retention",
			cfg.kind, cfg.n, cfg.ret.Cap)
	}
	t.Logf("%v n=%d %s: %d evictions across %d trials",
		cfg.kind, cfg.n, cfg.ret, evictionsTotal, cfg.instances*cfg.inits)
}

// TestRetentionSoakShort is the always-on slice of the soak: small enough
// for every `go test ./...`, still forcing real evictions.
func TestRetentionSoakShort(t *testing.T) {
	runRetentionSoak(t, soakConfig{
		kind: D3C, n: 60, instances: 2, inits: 2,
		ret:       nogood.Retention{Kind: nogood.RetainLRU, Cap: 8},
		maxCycles: 10000,
	})
}

// TestRetentionSoakNightly is the nightly CI soak (RETENTION_SOAK=1): long
// bounded runs across families and both policies, verdicts checked against
// the unbounded reference on the same seeds, cap asserted every cycle.
func TestRetentionSoakNightly(t *testing.T) {
	if os.Getenv("RETENTION_SOAK") == "" {
		t.Skip("set RETENTION_SOAK=1 to run the nightly retention soak")
	}
	// The caps are binding (thousands of evictions per leg) yet retain
	// enough for every run to terminate inside the cutoff; tighter caps make
	// some d3c n=90 runs exhaust their budget — the completeness-pressure
	// tradeoff DESIGN.md §11 documents, a timeout rather than a wrong
	// verdict, but the soak's job is asserting verdict equality, so it runs
	// where verdicts are reached. Activity needs a looser cap than LRU here:
	// its preference for keeping frequently-firing entries holds on to stale
	// hot nogoods longer, so at equal caps it forgets more of the frontier.
	for _, ret := range []nogood.Retention{
		{Kind: nogood.RetainLRU, Cap: 32},
		{Kind: nogood.RetainActivity, Cap: 64},
	} {
		for _, leg := range []struct {
			kind ProblemKind
			n    int
		}{
			{D3C, 90},
			{D3S, 100},
			{D3S1, 100},
		} {
			runRetentionSoak(t, soakConfig{
				kind: leg.kind, n: leg.n, instances: 5, inits: 4,
				ret: ret, maxCycles: 10000,
			})
		}
	}
}
