package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
)

// ForEach runs fn(i) for every i in [0, n) across a pool of workers
// goroutines. workers <= 0 means runtime.NumCPU(); workers == 1 runs the
// loop inline, preserving the exact serial execution order.
//
// On the first error the pool's context is cancelled: in-flight calls
// finish, queued indices are abandoned, and ForEach returns the error of
// the lowest index that failed. Because indices are handed out in order,
// the first worker to start always receives index 0, so a grid where the
// earliest trial fails surfaces that trial's error deterministically
// regardless of scheduling.
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Runner executes one trial grid (the cells of a table, sweep, or figure)
// across a pool of worker goroutines. Trials are independently seeded, so
// the pool only changes *when* a trial runs, never its outcome; results
// land in index-addressed slices and are aggregated in index order, making
// every mean and percentage bit-identical to the Workers==1 serial run.
type Runner struct {
	// Workers is the pool size; 0 means runtime.NumCPU(), 1 is serial.
	Workers int
	// Progress, when non-nil, is called after every completed trial with
	// the running count and the grid total. Calls are serialized.
	Progress func(done, total int)

	total int
	done  atomic.Int64
	mu    sync.Mutex
}

func newRunner(scale Scale) *Runner {
	return &Runner{Workers: scale.Workers, Progress: scale.Progress}
}

func (r *Runner) tick() {
	if r.Progress == nil {
		return
	}
	done := int(r.done.Add(1))
	r.mu.Lock()
	r.Progress(done, r.total)
	r.mu.Unlock()
}

// cellSpec is one cell of a trial grid: a family × size × algorithm plus
// the per-instance generator (paper ratio or an explicit density).
type cellSpec struct {
	kind ProblemKind
	n    int
	alg  Algorithm
	// key names the cell in the trial journal; it must be unique within a
	// grid and stable across runs (algorithm names are unique per learning
	// configuration, so they qualify).
	key string
	// makeProblem generates the cell's instance'th problem.
	makeProblem func(scale Scale, instance int) (*csp.Problem, error)
}

// trialKey names one (instance, init) trial of the cell in the journal.
func (s cellSpec) trialKey(instance, init int) string {
	return fmt.Sprintf("%s/i%d/r%d", s.key, instance, init)
}

// paperCell is a cell at the family's paper constraint/variable ratio.
func paperCell(kind ProblemKind, n int, alg Algorithm) cellSpec {
	return cellSpec{kind: kind, n: n, alg: alg,
		key: fmt.Sprintf("paper/%s/n%d/%s", kind, n, alg.Name),
		makeProblem: func(scale Scale, instance int) (*csp.Problem, error) {
			return MakeInstance(kind, n, instanceSeed(scale.SeedBase, kind, n, instance))
		}}
}

// ratioCell is a cell with an explicit constraint count m (the hardness
// sweeps); the seed salt keeps different densities on distinct RNG streams.
func ratioCell(kind ProblemKind, n, m int, alg Algorithm) cellSpec {
	return cellSpec{kind: kind, n: n, alg: alg,
		key: fmt.Sprintf("ratio/%s/n%d/m%d/%s", kind, n, m, alg.Name),
		makeProblem: func(scale Scale, instance int) (*csp.Problem, error) {
			return makeInstanceM(kind, n, m, instanceSeed(scale.SeedBase, kind, n, instance)+int64(m)*7_000_000_000_000)
		}}
}

// applyRetention rebuilds a grid's algorithms under scale.Retention when it
// is bounded. Each supporting algorithm is re-wrapped via WithRetention, and
// the display name and journal key both gain the policy suffix: row labels
// read "3rdRslv/lru512" and a resumed journal can never replay a trial run
// under a different eviction policy. Algorithms without a store (DB) pass
// through unchanged. With unbounded retention the specs are returned as-is.
func applyRetention(specs []cellSpec, scale Scale) []cellSpec {
	if !scale.Retention.Bounded() {
		return specs
	}
	out := append([]cellSpec(nil), specs...)
	for i := range out {
		if out[i].alg.WithRetention == nil {
			continue
		}
		wrapped := out[i].alg.WithRetention(scale.Retention)
		wrapped.Name = out[i].alg.Name + scale.Retention.Suffix()
		out[i].alg = wrapped
		out[i].key += scale.Retention.Suffix()
	}
	return out
}

// runCells measures every spec'd cell, fanning both phases — instance
// generation, then every (instance, init) trial of every cell — across the
// scale's worker pool. Results are written to preallocated index-addressed
// slots (no two trials share one), then aggregated cell by cell in
// (instance, init) order: the identical floating-point accumulation the
// old serial loops performed, so aggregates do not depend on scheduling.
//
// With scale.Journal set, trials already journaled are replayed from the
// journal instead of re-run (and instances all of whose trials are
// journaled are never even generated); fresh trials are journaled as they
// complete. Replayed and live trials land in the same index-addressed
// slots, so the aggregates of a resumed grid are bit-identical to an
// uninterrupted run's.
func runCells(specs []cellSpec, scale Scale) ([]CellResult, error) {
	specs = applyRetention(specs, scale)
	maxCycles := scale.maxCycles()
	journal := scale.Journal
	type cellPlan struct {
		instances, inits int
		problems         []*csp.Problem
		trials           []TrialResult
	}
	type job struct{ cell, instance, init int }
	plans := make([]cellPlan, len(specs))
	var instJobs, trialJobs []job
	for c, spec := range specs {
		instances, inits := scale.trials(spec.kind)
		plans[c] = cellPlan{
			instances: instances,
			inits:     inits,
			problems:  make([]*csp.Problem, instances),
			trials:    make([]TrialResult, instances*inits),
		}
		for i := 0; i < instances; i++ {
			needProblem := journal == nil
			for j := 0; j < inits; j++ {
				trialJobs = append(trialJobs, job{cell: c, instance: i, init: j})
				if journal != nil && !journal.Has(spec.trialKey(i, j)) {
					needProblem = true
				}
			}
			if needProblem {
				instJobs = append(instJobs, job{cell: c, instance: i})
			}
		}
	}

	r := newRunner(scale)
	r.total = len(trialJobs)

	if err := ForEach(r.Workers, len(instJobs), func(k int) error {
		j := instJobs[k]
		spec := specs[j.cell]
		problem, err := spec.makeProblem(scale, j.instance)
		if err != nil {
			return fmt.Errorf("cell %v n=%d instance %d: %w", spec.kind, spec.n, j.instance, err)
		}
		plans[j.cell].problems[j.instance] = problem
		return nil
	}); err != nil {
		return nil, err
	}

	if err := ForEach(r.Workers, len(trialJobs), func(k int) error {
		j := trialJobs[k]
		spec, plan := specs[j.cell], &plans[j.cell]
		slot := &plan.trials[j.instance*plan.inits+j.init]
		if journal != nil && journal.Lookup(spec.trialKey(j.instance, j.init), slot) {
			r.tick()
			return nil
		}
		problem := plan.problems[j.instance]
		init := gen.RandomInitial(problem, initSeed(scale.SeedBase, spec.kind, spec.n, j.instance, j.init))
		tr, err := spec.alg.Run(problem, init, sim.Options{MaxCycles: maxCycles})
		if err != nil {
			return fmt.Errorf("cell %v n=%d instance %d init %d: %w", spec.kind, spec.n, j.instance, j.init, err)
		}
		*slot = tr
		if journal != nil {
			if err := journal.Record(spec.trialKey(j.instance, j.init), tr); err != nil {
				return err
			}
		}
		r.tick()
		return nil
	}); err != nil {
		return nil, err
	}

	out := make([]CellResult, len(specs))
	reg := scale.Telemetry.Registry()
	cycleHist := reg.Histogram("discsp_trial_cycles", telemetry.CycleBuckets)
	maxcckHist := reg.Histogram("discsp_trial_maxcck", telemetry.ChecksBuckets)
	checksCtr := reg.Counter("discsp_checks_total")
	msgsCtr := reg.Counter("discsp_messages_total")
	for c, spec := range specs {
		agg := new(cellRunner)
		solvedCtr := reg.Counter(telemetry.Name("discsp_trials_solved_total", "cell", spec.key))
		trialCtr := reg.Counter(telemetry.Name("discsp_trials_total", "cell", spec.key))
		for t, tr := range plans[c].trials {
			agg.add(tr)
			trialCtr.Inc()
			if tr.Solved {
				solvedCtr.Inc()
			}
			cycleHist.Observe(int64(tr.Cycles))
			maxcckHist.Observe(tr.MaxCCK)
			checksCtr.Add(tr.TotalChecks)
			msgsCtr.Add(int64(tr.Messages))
			scale.Telemetry.Emit(telemetry.Event{
				Kind:        telemetry.KindTrial,
				Cell:        spec.key,
				Trial:       t,
				Solved:      tr.Solved,
				Cycles:      tr.Cycles,
				MaxCCK:      tr.MaxCCK,
				TotalChecks: tr.TotalChecks,
				Messages:    int64(tr.Messages),
			})
		}
		cell := CellResult{Kind: spec.kind, N: spec.n, Algorithm: spec.alg.Name}
		agg.fill(&cell)
		out[c] = cell
	}
	scale.Telemetry.EmitSnapshot()
	return out, nil
}

// ProgressPrinter returns a Scale.Progress callback that writes a
// done/total line with an approximate trials-per-second rate to w, at most
// once per interval. A grid that finishes inside one interval prints
// nothing. The runner serializes Progress calls, so the returned closure
// needs no locking; the rate clock restarts whenever a new grid begins
// (the count resets to 1).
func ProgressPrinter(w io.Writer, interval time.Duration) func(done, total int) {
	var start, last time.Time
	return func(done, total int) {
		now := time.Now()
		if done == 1 || start.IsZero() {
			start, last = now, now
		}
		if now.Sub(last) < interval {
			return
		}
		last = now
		elapsed := now.Sub(start).Seconds()
		if elapsed <= 0 {
			return
		}
		fmt.Fprintf(w, "progress: %d/%d trials (%.1f trials/sec)\n", done, total, float64(done)/elapsed)
	}
}
