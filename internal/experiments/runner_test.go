package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCoversEveryIndex: every index in [0, n) runs exactly once,
// whatever the pool size.
func TestForEachCoversEveryIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 200} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			hits := make([]atomic.Int64, n)
			if err := ForEach(workers, n, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("index %d ran %d times", i, got)
				}
			}
		})
	}
}

// TestForEachSerialOrder: Workers==1 must preserve the exact serial
// execution order, not just the result set.
func TestForEachSerialOrder(t *testing.T) {
	var order []int
	if err := ForEach(1, 10, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("position %d ran index %d; order %v", i, got, order)
		}
	}
	if len(order) != 10 {
		t.Fatalf("ran %d of 10 indices", len(order))
	}
}

// TestForEachEmpty: n <= 0 is a no-op.
func TestForEachEmpty(t *testing.T) {
	called := false
	if err := ForEach(4, 0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("fn called for an empty range")
	}
}

// TestForEachLowestIndexError: when several indices fail, the returned
// error is the lowest index's — index 0 is always handed out first, so a
// grid that fails everywhere reports trial 0 regardless of scheduling.
func TestForEachLowestIndexError(t *testing.T) {
	for rep := 0; rep < 20; rep++ {
		err := ForEach(7, 50, func(i int) error {
			return fmt.Errorf("index %d failed", i)
		})
		if err == nil || err.Error() != "index 0 failed" {
			t.Fatalf("rep %d: got %v, want the index 0 error", rep, err)
		}
	}
}

// TestForEachCancelsQueuedWork: after the first error, queued indices are
// abandoned — only work already in flight (at most one call per worker)
// completes.
func TestForEachCancelsQueuedWork(t *testing.T) {
	boom := errors.New("boom")
	const (
		workers = 4
		n       = 100
	)
	var calls atomic.Int64
	err := ForEach(workers, n, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// Index 0 fails while at most workers-1 other calls are in flight;
	// each surviving worker can start at most one more before seeing the
	// cancellation. 2×workers is a loose, scheduling-proof bound.
	if got := calls.Load(); got > 2*workers {
		t.Fatalf("%d calls ran after cancellation (want <= %d)", got, 2*workers)
	}
}
