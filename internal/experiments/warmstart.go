package experiments

import (
	"fmt"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// WarmStartResult aggregates the repeat-solve workload for one family × n:
// the same instances solved cold (empty store) and warm (store seeded from a
// cross-run nogood cache harvested off an earlier solve of the same
// instance). Cold and warm trials share problem, initial assignment, and
// learning configuration — the seeded nogoods are the only difference — so
// the deltas isolate the value of remembering.
type WarmStartResult struct {
	Kind ProblemKind
	N    int
	// Pairs is the number of cold/warm trial pairs measured.
	Pairs int
	// ColdCycles and WarmCycles are mean cycles to termination.
	ColdCycles, WarmCycles float64
	// ColdChecks and WarmChecks are mean total charged checks.
	ColdChecks, WarmChecks float64
	// ColdSolved and WarmSolved are the percentage of trials finished
	// within the cutoff.
	ColdSolved, WarmSolved float64
	// CacheNogoods is the total number of nogoods harvested into the
	// per-instance caches by the priming runs.
	CacheNogoods int
	// SeededPairs counts pairs whose warm run actually received seeds (a
	// priming run that learned nothing leaves its cache empty).
	SeededPairs int
}

// CycleReduction is the relative mean-cycle saving of warm over cold
// (positive = warm cheaper).
func (r WarmStartResult) CycleReduction() float64 { return reduction(r.ColdCycles, r.WarmCycles) }

// CheckReduction is the relative mean-check saving of warm over cold.
func (r WarmStartResult) CheckReduction() float64 { return reduction(r.ColdChecks, r.WarmChecks) }

func reduction(cold, warm float64) float64 {
	if cold == 0 {
		return 0
	}
	return (cold - warm) / cold
}

// WarmStart measures the warm-start benefit on a repeat-solve workload.
//
// For each (instance, initialization) trial of the scale: the cold run
// solves the instance from scratch and its surviving learned nogoods are
// harvested into a nogood.Cache keyed by the instance's signature — exactly
// the Solve/harvest/Save/Load/seed path the discsp facade runs across
// processes, minus the disk round-trip. The warm run then re-solves the
// *same* instance from the *same* initial assignment with every agent's
// store seeded from the cache: the crash-restart / re-verification scenario
// the resumable-experiment machinery exists for, where the second solve
// should not pay to re-derive what the first one learned. Seeding is
// uncharged (structural bookkeeping, like receiving a NogoodMsg before the
// clock starts), so warm checks are directly comparable to cold.
//
// Learning is the family's best size-bounded configuration (BestLearning),
// matching how a user would actually run a repeat-solve workload. Retention
// from the scale is applied to both sides of every pair.
func WarmStart(kind ProblemKind, n int, scale Scale) (WarmStartResult, error) {
	instances, inits := scale.trials(kind)
	maxCycles := scale.maxCycles()
	learning := BestLearning(kind)
	learning.Retention = scale.Retention

	type pair struct {
		cold, warm TrialResult
		seeded     bool
	}
	type instResult struct {
		pairs      []pair
		cacheCount int
	}
	results := make([]instResult, instances)

	if err := ForEach(scale.Workers, instances, func(i int) error {
		problem, err := MakeInstance(kind, n, instanceSeed(scale.SeedBase, kind, n, i))
		if err != nil {
			return fmt.Errorf("warmstart %v n=%d instance %d: %w", kind, n, i, err)
		}
		opts := sim.Options{MaxCycles: maxCycles}
		for j := 0; j < inits; j++ {
			init := gen.RandomInitial(problem, initSeed(scale.SeedBase, kind, n, i, j))
			cold, agents, err := runSeededAWC(problem, init, learning, nil, opts)
			if err != nil {
				return fmt.Errorf("warmstart %v n=%d instance %d init %d cold: %w", kind, n, i, j, err)
			}
			cache := nogood.NewCache()
			cache.Put(problem, harvestLearned(agents))
			results[i].cacheCount += cache.Len()
			seeds := seedsPerVar(problem, cache)
			warm, _, err := runSeededAWC(problem, init, learning, seeds, opts)
			if err != nil {
				return fmt.Errorf("warmstart %v n=%d instance %d init %d warm: %w", kind, n, i, j, err)
			}
			results[i].pairs = append(results[i].pairs, pair{cold: cold, warm: warm, seeded: seeds != nil})
		}
		return nil
	}); err != nil {
		return WarmStartResult{}, err
	}

	// Aggregate in instance order: means independent of worker scheduling.
	out := WarmStartResult{Kind: kind, N: n}
	var coldSolved, warmSolved int
	for i := range results {
		out.CacheNogoods += results[i].cacheCount
		for _, p := range results[i].pairs {
			out.Pairs++
			if p.seeded {
				out.SeededPairs++
			}
			out.ColdCycles += float64(p.cold.Cycles)
			out.WarmCycles += float64(p.warm.Cycles)
			out.ColdChecks += float64(p.cold.TotalChecks)
			out.WarmChecks += float64(p.warm.TotalChecks)
			if p.cold.Solved {
				coldSolved++
			}
			if p.warm.Solved {
				warmSolved++
			}
		}
	}
	if out.Pairs > 0 {
		np := float64(out.Pairs)
		out.ColdCycles /= np
		out.WarmCycles /= np
		out.ColdChecks /= np
		out.WarmChecks /= np
		out.ColdSolved = 100 * float64(coldSolved) / np
		out.WarmSolved = 100 * float64(warmSolved) / np
	}
	return out, nil
}

// runSeededAWC runs one AWC trial, seeding each agent's store from seeds
// (per-variable grouping; nil = cold) before the first cycle.
func runSeededAWC(p *csp.Problem, init csp.SliceAssignment, l core.Learning, seeds [][]csp.Nogood, opts sim.Options) (TrialResult, []*core.Agent, error) {
	agents := make([]sim.Agent, p.NumVars())
	awcAgents := make([]*core.Agent, p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		a := core.NewAgent(csp.Var(v), p, init[v], l)
		if seeds != nil {
			a.SeedNogoods(seeds[v])
		}
		awcAgents[v] = a
		agents[v] = a
	}
	res, err := sim.Run(p, agents, opts)
	if err != nil {
		return TrialResult{}, nil, err
	}
	tr := TrialResult{Result: res}
	for _, a := range awcAgents {
		st := a.Stats()
		tr.RedundantGenerations += st.RedundantGenerations
		tr.NogoodsGenerated += st.NogoodsGenerated
		tr.Deadends += st.Deadends
	}
	return tr, awcAgents, nil
}

// harvestLearned collects the surviving learned nogoods across agents,
// deduplicated by canonical key — the in-process mirror of the facade's
// post-Solve warm-cache harvest.
func harvestLearned(agents []*core.Agent) []csp.Nogood {
	var all []csp.Nogood
	seen := make(map[string]struct{})
	for _, a := range agents {
		for _, ng := range a.LearnedNogoods() {
			if _, dup := seen[ng.Key()]; dup {
				continue
			}
			seen[ng.Key()] = struct{}{}
			all = append(all, ng)
		}
	}
	return all
}

// seedsPerVar resolves the cache against p and groups the admissible
// nogoods per variable they mention — the same fan-out Options.warmSeeds
// performs in the facade. Nil when the cache has nothing admissible.
func seedsPerVar(p *csp.Problem, cache *nogood.Cache) [][]csp.Nogood {
	cached := cache.Seed(p)
	if len(cached) == 0 {
		return nil
	}
	seeds := make([][]csp.Nogood, p.NumVars())
	for _, ng := range cached {
		for i := 0; i < ng.Len(); i++ {
			v := ng.At(i).Var
			seeds[v] = append(seeds[v], ng)
		}
	}
	return seeds
}
