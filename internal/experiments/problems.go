package experiments

import (
	"fmt"
	"math"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
)

// ProblemKind selects one of the paper's three benchmark families.
type ProblemKind int

const (
	// D3C is the distributed 3-coloring family: solvable instances with
	// m = 2.7n arcs (Section 4, Minton et al. generation).
	D3C ProblemKind = iota + 1
	// D3S is the distributed 3SAT family in the style of 3SAT-GEN:
	// forced-satisfiable random 3SAT with m = 4.3n clauses.
	D3S
	// D3S1 is the distributed 3SAT family in the style of 3ONESAT-GEN:
	// single-solution instances with m = 3.4n clauses.
	D3S1
)

// String returns the paper's abbreviation (Table 4 uses d3c/d3s/d3s1).
func (k ProblemKind) String() string {
	switch k {
	case D3C:
		return "d3c"
	case D3S:
		return "d3s"
	case D3S1:
		return "d3s1"
	default:
		return fmt.Sprintf("ProblemKind(%d)", int(k))
	}
}

// Ratio returns the paper's constraint/variable ratio for the family.
func (k ProblemKind) Ratio() float64 {
	switch k {
	case D3C:
		return 2.7
	case D3S:
		return 4.3
	case D3S1:
		return 3.4
	default:
		return 0
	}
}

// PaperNs returns the n values the paper evaluates for the family.
func (k ProblemKind) PaperNs() []int {
	switch k {
	case D3C:
		return []int{60, 90, 120, 150}
	case D3S:
		return []int{50, 100, 150}
	case D3S1:
		return []int{50, 100, 200}
	default:
		return nil
	}
}

// PaperTrials returns the paper's (instances, initial-value sets per
// instance) trial structure for the family; every cell totals 100 trials.
func (k ProblemKind) PaperTrials() (instances, inits int) {
	switch k {
	case D3C:
		return 10, 10
	case D3S:
		return 25, 4
	case D3S1:
		return 4, 25
	default:
		return 0, 0
	}
}

// MakeInstance generates one instance of the family at size n, with the
// paper's ratio, deterministically from seed.
func MakeInstance(kind ProblemKind, n int, seed int64) (*csp.Problem, error) {
	return makeInstanceM(kind, n, int(math.Round(kind.Ratio()*float64(n))), seed)
}

// makeInstanceM generates an instance with an explicit constraint count
// (used by the hardness sweeps).
func makeInstanceM(kind ProblemKind, n, m int, seed int64) (*csp.Problem, error) {
	switch kind {
	case D3C:
		inst, err := gen.Coloring(n, m, 3, seed)
		if err != nil {
			return nil, err
		}
		return inst.Problem, nil
	case D3S:
		inst, err := gen.ForcedSAT3(n, m, seed)
		if err != nil {
			return nil, err
		}
		return inst.Problem, nil
	case D3S1:
		inst, err := gen.UniqueSAT3(n, m, seed)
		if err != nil {
			return nil, err
		}
		return inst.Problem, nil
	default:
		return nil, fmt.Errorf("experiments: unknown problem kind %d", int(kind))
	}
}

// instanceSeed and initSeed derive deterministic per-trial seeds so every
// table cell is reproducible and different cells never share RNG streams.
func instanceSeed(base int64, kind ProblemKind, n, instance int) int64 {
	return base + int64(kind)*1_000_000_000 + int64(n)*1_000_000 + int64(instance)*1_000
}

func initSeed(base int64, kind ProblemKind, n, instance, init int) int64 {
	return instanceSeed(base, kind, n, instance) + 500_000_000_000 + int64(init)
}
