package experiments

import (
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/stats"
	"github.com/discsp/discsp/internal/telemetry"
)

// Algorithm names a runnable algorithm configuration for the harness.
type Algorithm struct {
	// Name is the label printed in table rows ("Rslv", "3rdRslv", "DB", ...).
	Name string
	// Run executes one trial.
	Run func(problem *csp.Problem, initial csp.SliceAssignment, opts sim.Options) (TrialResult, error)
	// WithRetention, when non-nil, returns this algorithm running under the
	// given nogood retention policy. runCells applies it to every cell when
	// Scale.Retention is bounded; algorithms without a nogood store (DB)
	// leave it nil and run unchanged.
	WithRetention func(nogood.Retention) Algorithm
}

// AWC returns the Algorithm for AWC with the given learning configuration.
func AWC(l core.Learning) Algorithm {
	return Algorithm{
		Name: l.Name(),
		Run: func(p *csp.Problem, init csp.SliceAssignment, opts sim.Options) (TrialResult, error) {
			return RunAWC(p, init, l, opts)
		},
		WithRetention: func(ret nogood.Retention) Algorithm {
			bounded := l
			bounded.Retention = ret
			return AWC(bounded)
		},
	}
}

// DB returns the Algorithm for the distributed breakout baseline.
func DB() Algorithm {
	return Algorithm{Name: "DB", Run: RunDB}
}

// ABT returns the Algorithm for asynchronous backtracking.
func ABT() Algorithm {
	return Algorithm{
		Name: "ABT",
		Run:  RunABT,
		WithRetention: func(ret nogood.Retention) Algorithm {
			return Algorithm{
				Name: "ABT" + ret.Suffix(),
				Run: func(p *csp.Problem, init csp.SliceAssignment, opts sim.Options) (TrialResult, error) {
					return RunABTRetention(p, init, ret, opts)
				},
			}
		},
	}
}

// Scale sets the trial structure of a harness run. PaperScale reproduces
// the paper's 100-trials-per-cell setup; smaller scales keep benchmarks and
// CI affordable while preserving the comparisons.
type Scale struct {
	// Ns overrides the problem sizes; nil means the family's paper sizes.
	Ns []int
	// Instances and Inits override the per-cell trial structure; 0 means
	// the family's paper structure.
	Instances int
	Inits     int
	// MaxCycles is the cutoff; 0 means the paper's 10000.
	MaxCycles int
	// SeedBase shifts every derived seed, giving independent replications.
	SeedBase int64
	// Workers is the number of goroutines trials are fanned across; 0
	// means runtime.NumCPU(), 1 preserves the serial execution path.
	// Trials are independently seeded, so every Workers value produces
	// bit-identical aggregates (see runCells).
	Workers int
	// Progress, when non-nil, is called (serialized) after each completed
	// trial of the current grid with the running and total trial counts;
	// see ProgressPrinter for the CLI's periodic line.
	Progress func(done, total int)
	// Journal, when non-nil, records every completed trial and skips trials
	// it already holds — crash-safe resume for long grids. Because trials
	// are independently seeded and aggregation order is fixed, a resumed
	// grid produces bit-identical aggregates to an uninterrupted one.
	Journal *Journal
	// Telemetry, when non-nil, receives one trial event per completed trial
	// of every grid, emitted during the index-ordered aggregation pass (so
	// the stream is identical for every Workers value), plus a metrics
	// snapshot per grid. It never changes trial results or aggregates.
	Telemetry *telemetry.Run
	// Retention bounds every agent's nogood store. The zero value keeps
	// stores unbounded (the paper's setup). Bounded retention reshapes each
	// algorithm via Algorithm.WithRetention and suffixes cell keys, so
	// journals never mix trials across retention policies.
	Retention nogood.Retention
}

// PaperScale is the paper's full experimental setup.
func PaperScale() Scale { return Scale{} }

// QuickScale is a reduced setup for tests and benchmarks: smallest paper n,
// 3 instances × 2 initializations.
func QuickScale() Scale {
	return Scale{Instances: 3, Inits: 2}
}

func (s Scale) ns(kind ProblemKind) []int {
	if len(s.Ns) > 0 {
		return s.Ns
	}
	return kind.PaperNs()
}

func (s Scale) trials(kind ProblemKind) (int, int) {
	instances, inits := kind.PaperTrials()
	if s.Instances > 0 {
		instances = s.Instances
	}
	if s.Inits > 0 {
		inits = s.Inits
	}
	return instances, inits
}

func (s Scale) maxCycles() int {
	if s.MaxCycles > 0 {
		return s.MaxCycles
	}
	return sim.DefaultMaxCycles
}

// JournalMeta returns the journal metadata pinning this scale's run
// parameters — what OpenJournal validates before a resume skips trials.
func (s Scale) JournalMeta() JournalMeta {
	return JournalMeta{SeedBase: s.SeedBase, MaxCycles: s.maxCycles()}
}

// CellResult aggregates one table cell (one family × n × algorithm).
type CellResult struct {
	Kind      ProblemKind
	N         int
	Algorithm string
	// Cycle is the mean cycles over all trials (cutoff trials contribute
	// their at-cutoff value, per the paper).
	Cycle float64
	// MaxCCK is the mean maxcck over all trials.
	MaxCCK float64
	// Percent is the percentage of trials finished within the cutoff.
	Percent float64
	// Redundant is the mean total redundant nogood generations per trial
	// (Table 4's measure; zero for non-AWC algorithms).
	Redundant float64
	// Trials is the number of trials aggregated.
	Trials int
}

// cellRunner accumulates trial measurements for one cell. Trials are
// always added in (instance, init) index order — the same floating-point
// accumulation order as a serial run — so the filled means do not depend
// on how the worker pool scheduled the trials.
type cellRunner struct {
	cycle     stats.Sample
	maxcck    stats.Sample
	redundant stats.Sample
	solved    stats.Counter
}

func (r *cellRunner) add(tr TrialResult) {
	r.cycle.Add(float64(tr.Cycles))
	r.maxcck.Add(float64(tr.MaxCCK))
	r.redundant.Add(float64(tr.RedundantGenerations))
	r.solved.Observe(tr.Solved)
}

func (r *cellRunner) fill(cell *CellResult) {
	cell.Cycle = r.cycle.Mean()
	cell.MaxCCK = r.maxcck.Mean()
	cell.Percent = r.solved.Percent()
	cell.Redundant = r.redundant.Mean()
	cell.Trials = r.cycle.N()
}

// RunCell measures one cell: instances × inits trials of alg on fresh
// instances of the family at size n, fanned across scale.Workers
// goroutines.
func RunCell(kind ProblemKind, n int, alg Algorithm, scale Scale) (CellResult, error) {
	cells, err := runCells([]cellSpec{paperCell(kind, n, alg)}, scale)
	if err != nil {
		return CellResult{}, err
	}
	return cells[0], nil
}
