package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// smallScale keeps the integration tests fast while preserving comparisons.
func smallScale() Scale {
	return Scale{Ns: []int{30}, Instances: 3, Inits: 2}
}

func TestProblemKindMetadata(t *testing.T) {
	tests := []struct {
		kind      ProblemKind
		str       string
		ratio     float64
		instances int
		inits     int
	}{
		{D3C, "d3c", 2.7, 10, 10},
		{D3S, "d3s", 4.3, 25, 4},
		{D3S1, "d3s1", 3.4, 4, 25},
	}
	for _, tt := range tests {
		if tt.kind.String() != tt.str {
			t.Errorf("%v.String() = %q", tt.kind, tt.kind.String())
		}
		if tt.kind.Ratio() != tt.ratio {
			t.Errorf("%v.Ratio() = %v", tt.kind, tt.kind.Ratio())
		}
		inst, inits := tt.kind.PaperTrials()
		if inst != tt.instances || inits != tt.inits {
			t.Errorf("%v.PaperTrials() = %d,%d", tt.kind, inst, inits)
		}
		if inst*inits != 100 {
			t.Errorf("%v: paper cells must total 100 trials", tt.kind)
		}
		if len(tt.kind.PaperNs()) == 0 {
			t.Errorf("%v: no paper sizes", tt.kind)
		}
	}
}

func TestMakeInstanceAllFamilies(t *testing.T) {
	for _, kind := range []ProblemKind{D3C, D3S, D3S1} {
		p, err := MakeInstance(kind, 30, 1)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if p.NumVars() != 30 {
			t.Errorf("%v: vars = %d", kind, p.NumVars())
		}
		if err := p.Validate(); err != nil {
			t.Errorf("%v: %v", kind, err)
		}
	}
	if _, err := MakeInstance(ProblemKind(99), 30, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestSeedDerivationDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for _, kind := range []ProblemKind{D3C, D3S, D3S1} {
		for _, n := range []int{30, 60} {
			for i := 0; i < 3; i++ {
				s := instanceSeed(0, kind, n, i)
				if seen[s] {
					t.Fatalf("instance seed collision at %v n=%d i=%d", kind, n, i)
				}
				seen[s] = true
				for j := 0; j < 3; j++ {
					is := initSeed(0, kind, n, i, j)
					if seen[is] {
						t.Fatalf("init seed collision at %v n=%d i=%d j=%d", kind, n, i, j)
					}
					seen[is] = true
				}
			}
		}
	}
}

func TestRunCellDeterministic(t *testing.T) {
	scale := smallScale()
	a, err := RunCell(D3C, 30, AWC(core.Learning{Kind: core.LearnResolvent}), scale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(D3C, 30, AWC(core.Learning{Kind: core.LearnResolvent}), scale)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycle != b.Cycle || a.MaxCCK != b.MaxCCK || a.Percent != b.Percent {
		t.Errorf("cells differ across identical runs: %+v vs %+v", a, b)
	}
	if a.Trials != 6 {
		t.Errorf("trials = %d, want 6", a.Trials)
	}
}

// TestPaperShapeLearnerComparison is the reproduction core: at reduced
// scale, the qualitative results of Tables 1–3 must hold — learning beats
// no learning on cycles by a wide margin, and mcs-based learning costs more
// checks than resolvent-based learning.
func TestPaperShapeLearnerComparison(t *testing.T) {
	// Problem sizes where the no-learning gap is already visible at small
	// trial counts: n=40 suffices for d3c and d3s1, the forced-SAT family
	// needs the paper's own smallest size n=50.
	sizes := map[ProblemKind]int{D3C: 40, D3S: 50, D3S1: 40}
	for _, kind := range []ProblemKind{D3C, D3S, D3S1} {
		n := sizes[kind]
		scale := Scale{Ns: []int{n}, Instances: 4, Inits: 2}
		rslv, err := RunCell(kind, n, AWC(core.Learning{Kind: core.LearnResolvent}), scale)
		if err != nil {
			t.Fatal(err)
		}
		mcs, err := RunCell(kind, n, AWC(core.Learning{Kind: core.LearnMCS}), scale)
		if err != nil {
			t.Fatal(err)
		}
		none, err := RunCell(kind, n, AWC(core.Learning{Kind: core.LearnNone}), scale)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v n=%d: Rslv cycle=%.1f maxcck=%.0f | Mcs cycle=%.1f maxcck=%.0f | No cycle=%.1f maxcck=%.0f",
			kind, n, rslv.Cycle, rslv.MaxCCK, mcs.Cycle, mcs.MaxCCK, none.Cycle, none.MaxCCK)
		if rslv.Percent != 100 {
			t.Errorf("%v: Rslv solved %.0f%%, want 100%%", kind, rslv.Percent)
		}
		if mcs.Percent != 100 {
			t.Errorf("%v: Mcs solved %.0f%%, want 100%%", kind, mcs.Percent)
		}
		if none.Cycle < 1.5*rslv.Cycle {
			t.Errorf("%v: no-learning cycle %.1f not clearly above Rslv %.1f",
				kind, none.Cycle, rslv.Cycle)
		}
		if mcs.MaxCCK <= rslv.MaxCCK {
			t.Errorf("%v: Mcs maxcck %.0f not above Rslv %.0f", kind, mcs.MaxCCK, rslv.MaxCCK)
		}
	}
}

// TestPaperShapeDBComparison checks the Tables 8–10 pattern: AWC+kthRslv
// wins on cycles, DB wins on maxcck.
func TestPaperShapeDBComparison(t *testing.T) {
	scale := Scale{Ns: []int{40}, Instances: 4, Inits: 2}
	for _, kind := range []ProblemKind{D3C, D3S1} {
		awc, err := RunCell(kind, 40, AWC(BestLearning(kind)), scale)
		if err != nil {
			t.Fatal(err)
		}
		db, err := RunCell(kind, 40, DB(), scale)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%v n=40: AWC cycle=%.1f maxcck=%.0f | DB cycle=%.1f maxcck=%.0f",
			kind, awc.Cycle, awc.MaxCCK, db.Cycle, db.MaxCCK)
		if awc.Cycle >= db.Cycle {
			t.Errorf("%v: AWC cycle %.1f not below DB %.1f", kind, awc.Cycle, db.Cycle)
		}
		// The paper's "DB wins on maxcck" holds per-cycle by construction
		// (DB's store never grows); totals can invert when DB needs vastly
		// more cycles, which happens on the substitute unique-solution
		// family (its implication chains are adversarial for local
		// search; see EXPERIMENTS.md). Assert the per-cycle direction.
		if awc.MaxCCK/awc.Cycle <= db.MaxCCK/db.Cycle {
			t.Errorf("%v: AWC per-cycle checks %.1f not above DB %.1f",
				kind, awc.MaxCCK/awc.Cycle, db.MaxCCK/db.Cycle)
		}
	}
}

// TestPaperShapeRedundancy checks the Table 4 pattern: recording nogoods
// dramatically reduces redundant regeneration.
func TestPaperShapeRedundancy(t *testing.T) {
	scale := Scale{Ns: []int{40}, Instances: 4, Inits: 2}
	rec, err := RunCell(D3C, 40, AWC(core.Learning{Kind: core.LearnResolvent}), scale)
	if err != nil {
		t.Fatal(err)
	}
	norec, err := RunCell(D3C, 40, AWC(core.Learning{Kind: core.LearnResolvent, NoRecord: true}), scale)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("d3c n=40 redundant generations: rec=%.1f norec=%.1f", rec.Redundant, norec.Redundant)
	if norec.Redundant <= rec.Redundant {
		t.Errorf("norec redundancy %.1f not above rec %.1f", norec.Redundant, rec.Redundant)
	}
}

func TestTableDispatchAndFormatting(t *testing.T) {
	scale := Scale{Ns: []int{20}, Instances: 1, Inits: 1, MaxCycles: 2000}
	for num := 1; num <= 10; num++ {
		tbl, err := Tables(num, scale)
		if err != nil {
			t.Fatalf("table %d: %v", num, err)
		}
		if tbl.Number != num || len(tbl.Rows) == 0 || len(tbl.Cells) == 0 {
			t.Errorf("table %d malformed: %d rows %d cells", num, len(tbl.Rows), len(tbl.Cells))
		}
		var sb strings.Builder
		if err := tbl.Fprint(&sb); err != nil {
			t.Fatalf("table %d print: %v", num, err)
		}
		out := sb.String()
		if !strings.Contains(out, "Table") || !strings.Contains(out, tbl.Header[0]) {
			t.Errorf("table %d output missing header:\n%s", num, out)
		}
	}
	if _, err := Tables(11, scale); err == nil {
		t.Error("table 11 accepted")
	}
}

func TestBestLearningMatchesPaper(t *testing.T) {
	if l := BestLearning(D3C); l.SizeBound != 3 {
		t.Errorf("d3c best k = %d, want 3", l.SizeBound)
	}
	if l := BestLearning(D3S); l.SizeBound != 5 {
		t.Errorf("d3s best k = %d, want 5", l.SizeBound)
	}
	if l := BestLearning(D3S1); l.SizeBound != 4 {
		t.Errorf("d3s1 best k = %d, want 4", l.SizeBound)
	}
}

func TestFigure2(t *testing.T) {
	scale := Scale{Instances: 2, Inits: 2, MaxCycles: 5000}
	fig, err := Figure2(D3S1, 20, nil, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Delays) != len(fig.AWCTime) || len(fig.Delays) != len(fig.DBTime) {
		t.Fatalf("series lengths mismatch")
	}
	for i, d := range fig.Delays {
		wantAWC := fig.AWCMaxCCK + fig.AWCCycle*d
		if math.Abs(fig.AWCTime[i]-wantAWC) > 1e-9 {
			t.Errorf("AWC time at delay %v = %v, want %v", d, fig.AWCTime[i], wantAWC)
		}
	}
	// AWC wins on cycle, loses on maxcck → a finite positive crossover.
	if fig.AWCCycle < fig.DBCycle && fig.AWCMaxCCK > fig.DBMaxCCK {
		if math.IsInf(fig.Crossover, 1) || fig.Crossover <= 0 {
			t.Errorf("crossover = %v with AWC faster+costlier", fig.Crossover)
		}
	}
	var sb strings.Builder
	if err := fig.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "crossover") {
		t.Errorf("figure output missing crossover line:\n%s", sb.String())
	}
}

func TestCrossoverCases(t *testing.T) {
	tests := []struct {
		name                                   string
		awcMaxcck, awcCycle, dbMaxcck, dbCycle float64
		want                                   float64
	}{
		{"standard", 1000, 10, 400, 40, 20},
		{"awc dominates", 100, 10, 400, 40, 0},
		{"db dominates", 1000, 50, 400, 40, math.Inf(1)},
		{"equal slopes db cheaper", 1000, 10, 400, 10, math.Inf(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := crossover(tt.awcMaxcck, tt.awcCycle, tt.dbMaxcck, tt.dbCycle)
			if math.IsInf(tt.want, 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("crossover = %v, want +Inf", got)
				}
				return
			}
			if math.Abs(got-tt.want) > 1e-9 {
				t.Errorf("crossover = %v, want %v", got, tt.want)
			}
		})
	}
}

// TestAWCCompletenessAgainstOracle: AWC with unrestricted resolvent
// learning must prove tiny insoluble problems insoluble and solve tiny
// soluble ones, mirroring the centralized oracle.
func TestAWCCompletenessAgainstOracle(t *testing.T) {
	// Soluble: path over 2 values.
	p := csp.NewProblemUniform(3, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNotEqual(1, 2); err != nil {
		t.Fatal(err)
	}
	res, err := RunAWC(p, csp.SliceAssignment{0, 0, 0}, core.Learning{Kind: core.LearnResolvent}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Errorf("soluble path unsolved")
	}

	// Insoluble: triangle over 2 values.
	tri := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := tri.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err = RunAWC(tri, csp.SliceAssignment{0, 0, 0}, core.Learning{Kind: core.LearnResolvent}, sim.Options{MaxCycles: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solved {
		t.Errorf("insoluble triangle 'solved'")
	}
	if !res.Insoluble {
		t.Errorf("AWC+Rslv did not derive insolubility: %+v", res.Result)
	}
}

// TestAWCSolvesUniqueInstances: the hardest family for non-systematic
// search; AWC with learning must still find the single solution.
func TestAWCSolvesUniqueInstances(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		inst, err := gen.UniqueSAT3(25, 85, seed)
		if err != nil {
			t.Fatal(err)
		}
		init := gen.RandomInitial(inst.Problem, seed+30)
		res, err := RunAWC(inst.Problem, init, core.Learning{Kind: core.LearnResolvent, SizeBound: 4}, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Solved {
			t.Errorf("seed %d: unsolved", seed)
			continue
		}
		// The found solution must be the planted one (uniqueness).
		for v := 0; v < inst.Problem.NumVars(); v++ {
			got, _ := res.Assignment.Lookup(csp.Var(v))
			if got != inst.Hidden[v] {
				t.Errorf("seed %d: x%d = %d, want %d (unique solution)", seed, v, got, inst.Hidden[v])
				break
			}
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	scale := Scale{Ns: []int{20}, Instances: 1, Inits: 1, MaxCycles: 2000}
	tbl, err := Table1(scale)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := tbl.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "**Table 1.**") || !strings.Contains(out, "| n | learn |") {
		t.Errorf("markdown output malformed:\n%s", out)
	}
	fig, err := Figure2(D3S1, 20, nil, Scale{Instances: 1, Inits: 1, MaxCycles: 2000})
	if err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := fig.Markdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "**Figure 2.**") || !strings.Contains(sb.String(), "Crossover") {
		t.Errorf("figure markdown malformed:\n%s", sb.String())
	}
}

func TestRatioSweep(t *testing.T) {
	scale := Scale{Instances: 2, Inits: 1, MaxCycles: 3000}
	sweep, err := RatioSweep(D3C, 24, AWC(core.Learning{Kind: core.LearnResolvent}), []float64{1.5, 2.7}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	// Density 2.7 (the paper's hard region) must cost more cycles than the
	// under-constrained 1.5.
	if sweep.Points[1].Cycle <= sweep.Points[0].Cycle {
		t.Errorf("ratio 2.7 cycles %.1f not above ratio 1.5 cycles %.1f",
			sweep.Points[1].Cycle, sweep.Points[0].Cycle)
	}
	if sweep.HardestPoint().Ratio != 2.7 {
		t.Errorf("hardest point at ratio %.1f, want 2.7", sweep.HardestPoint().Ratio)
	}
	var sb strings.Builder
	if err := sweep.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Hardness sweep") {
		t.Errorf("sweep output malformed:\n%s", sb.String())
	}
}

func TestDefaultRatiosIncludePaperRatio(t *testing.T) {
	for _, kind := range []ProblemKind{D3C, D3S, D3S1} {
		found := false
		for _, r := range DefaultRatios(kind) {
			if r == kind.Ratio() {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: default ratios %v miss the paper ratio %v", kind, DefaultRatios(kind), kind.Ratio())
		}
	}
}

func TestBlockSweep(t *testing.T) {
	scale := Scale{Instances: 2, Inits: 1, MaxCycles: 4000}
	sweep, err := BlockSweep(D3C, 18, []int{1, 3}, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("points = %d", len(sweep.Points))
	}
	if sweep.Points[0].Agents != 18 || sweep.Points[1].Agents != 6 {
		t.Errorf("agent counts = %d, %d", sweep.Points[0].Agents, sweep.Points[1].Agents)
	}
	for _, p := range sweep.Points {
		if p.Percent != 100 {
			t.Errorf("block %d solved %.0f%%", p.Block, p.Percent)
		}
	}
	var sb strings.Builder
	if err := sweep.Fprint(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Block-size sweep") {
		t.Errorf("output malformed:\n%s", sb.String())
	}
	if _, err := BlockSweep(D3C, 18, []int{0}, scale); err == nil {
		t.Error("block 0 accepted")
	}
}

func TestCompareRuntimes(t *testing.T) {
	problem, err := MakeInstance(D3C, 20, 77)
	if err != nil {
		t.Fatal(err)
	}
	initial := gen.RandomInitial(problem, 78)
	results, err := CompareRuntimes(problem, initial, core.Learning{Kind: core.LearnResolvent}, 20*time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d, want 3", len(results))
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Runtime] = true
		if !r.Solved {
			t.Errorf("%s runtime failed", r.Runtime)
		}
		if r.Messages == 0 {
			t.Errorf("%s runtime reports no messages", r.Runtime)
		}
	}
	for _, want := range []string{"sync", "async", "tcp"} {
		if !names[want] {
			t.Errorf("missing runtime %q", want)
		}
	}
	var sb strings.Builder
	if err := FprintRuntimes(&sb, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tcp") || !strings.Contains(sb.String(), "retrans") {
		t.Errorf("output malformed:\n%s", sb.String())
	}
}

// TestCompareRuntimesWithFaults pins that the comparison survives an
// adversarial network — including a healing partition window — and that
// the transport counters surface in both renderers.
func TestCompareRuntimesWithFaults(t *testing.T) {
	problem, err := MakeInstance(D3C, 12, 77)
	if err != nil {
		t.Fatal(err)
	}
	initial := gen.RandomInitial(problem, 78)
	fcfg := &faults.Config{
		Seed:       5,
		Drop:       0.05,
		Duplicate:  0.05,
		Partitions: []faults.Partition{{At: 0, Dur: 100 * time.Millisecond}},
	}
	results, err := CompareRuntimes(problem, initial, core.Learning{Kind: core.LearnResolvent}, 30*time.Second, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Solved {
			t.Errorf("%s runtime failed under faults", r.Runtime)
		}
	}
	var sb strings.Builder
	if err := FprintRuntimes(&sb, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "retrans") || !strings.Contains(sb.String(), "partitioned") {
		t.Errorf("fault counters missing from text output:\n%s", sb.String())
	}
	sb.Reset()
	if err := MarkdownRuntimes(&sb, results); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| rt |") || !strings.Contains(sb.String(), "partitioned") {
		t.Errorf("markdown runtimes table malformed:\n%s", sb.String())
	}
}
