package experiments

import (
	"reflect"
	"testing"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// These tests pin the repository's cost-model invariant: the dense
// slice-backed agent representation (the default) and the map-backed
// reference representation (core.Learning.Reference, refpath.go) must be
// observationally identical — same per-cycle traces, same metrics, same
// final assignment, same charged check counts — on every problem family.
// The dense representation is allowed to be faster; it is not allowed to
// differ by a single bit.

// equivalenceInstance is one (problem, initial values) pair.
type equivalenceInstance struct {
	name    string
	problem *csp.Problem
	init    csp.SliceAssignment
}

// equivalenceInstances builds one instance per problem family: the paper's
// three (solvable graph coloring, forced-satisfiable 3SAT, single-solution
// 3SAT) plus a Model B random binary CSP.
func equivalenceInstances(t *testing.T) []equivalenceInstance {
	t.Helper()
	var out []equivalenceInstance

	inst, err := gen.Coloring(30, 81, 3, 401)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, equivalenceInstance{"D3C/n=30", inst.Problem, gen.RandomInitial(inst.Problem, 402)})

	sat, err := gen.ForcedSAT3(25, 90, 403)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, equivalenceInstance{"D3S/n=25", sat.Problem, gen.RandomInitial(sat.Problem, 404)})

	one, err := gen.UniqueSAT3(15, 50, 405)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, equivalenceInstance{"D3S1/n=15", one.Problem, gen.RandomInitial(one.Problem, 406)})

	bin, err := gen.RandomBinaryCSP(gen.BinaryCSPConfig{
		Vars: 20, DomainSize: 4, Density: 0.3, Tightness: 0.3, Force: true,
	}, 407)
	if err != nil {
		t.Fatal(err)
	}
	out = append(out, equivalenceInstance{"BinCSP/n=20", bin.Problem, gen.RandomInitial(bin.Problem, 408)})

	return out
}

// traced runs AWC capturing the per-cycle trace alongside the result.
func traced(t *testing.T, p *csp.Problem, init csp.SliceAssignment, l core.Learning) (TrialResult, []sim.CycleEvent) {
	t.Helper()
	var events []sim.CycleEvent
	opts := sim.Options{
		MaxCycles: 2000,
		Trace:     func(ev sim.CycleEvent) { events = append(events, ev) },
	}
	res, err := RunAWC(p, init, l, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// TestDenseMatchesReference: for every learning configuration on every
// problem family, the dense and reference representations must produce
// bit-identical traces, metric results, and final assignments.
func TestDenseMatchesReference(t *testing.T) {
	learners := []core.Learning{
		{Kind: core.LearnResolvent},
		{Kind: core.LearnMCS},
		{Kind: core.LearnNone},
		{Kind: core.LearnResolvent, SizeBound: 3},
		{Kind: core.LearnResolvent, SubsumptionPruning: true},
		{Kind: core.LearnMCS, MCSRestrictScan: true},
		{Kind: core.LearnResolvent, TieBreak: core.TieBreakRandom, Seed: 17},
	}
	for _, inst := range equivalenceInstances(t) {
		for _, l := range learners {
			ref := l
			ref.Reference = true
			if ref.Name() != l.Name() {
				t.Fatalf("Name() must ignore Reference: %q vs %q", ref.Name(), l.Name())
			}
			t.Run(inst.name+"/"+l.Name(), func(t *testing.T) {
				denseRes, denseTrace := traced(t, inst.problem, inst.init, l)
				refRes, refTrace := traced(t, inst.problem, inst.init, ref)

				if !reflect.DeepEqual(denseRes, refRes) {
					t.Errorf("results diverged:\ndense %+v\nref   %+v", denseRes, refRes)
				}
				if len(denseTrace) != len(refTrace) {
					t.Fatalf("trace lengths diverged: dense %d, ref %d", len(denseTrace), len(refTrace))
				}
				for i := range denseTrace {
					if denseTrace[i] != refTrace[i] {
						t.Fatalf("cycle %d diverged:\ndense %+v\nref   %+v",
							i, denseTrace[i], refTrace[i])
					}
				}
			})
		}
	}
}

// TestDenseMatchesReferenceCell covers the aggregated harness path: a whole
// table cell (multiple instances × initializations, parallel workers) must
// aggregate to identical numbers under both representations.
func TestDenseMatchesReferenceCell(t *testing.T) {
	for _, kind := range []ProblemKind{D3C, D3S} {
		l := core.Learning{Kind: core.LearnResolvent}
		ref := l
		ref.Reference = true

		want, err := RunCell(kind, 30, AWC(ref), QuickScale())
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunCell(kind, 30, AWC(l), QuickScale())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%v cell diverged:\ndense %+v\nref   %+v", kind, got, want)
		}
	}
}
