package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/telemetry"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenResults is a fixed comparison outcome (durations pinned so the
// rendering is byte-stable) exercising both a clean sync row and fault-laden
// network rows.
var goldenResults = []RuntimeResult{
	{Runtime: "sync", Solved: true, Cycles: 42, Messages: 1234, Duration: 1500 * time.Microsecond},
	{Runtime: "async", Solved: true, Messages: 5678, Duration: 2250 * time.Microsecond,
		Transport: telemetry.Transport{Retransmits: 3, DuplicatesSuppressed: 2, Restarts: 1}},
	{Runtime: "tcp", Solved: false, Messages: 9012, Duration: 30 * time.Second,
		Transport: telemetry.Transport{Retransmits: 17, DuplicatesSuppressed: 9, Partitioned: 40, PartitionHeals: 1}},
}

func checkGolden(t *testing.T, name string, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden %s (run with -update-golden to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestFprintRuntimesGolden(t *testing.T) {
	var sb strings.Builder
	if err := FprintRuntimes(&sb, goldenResults); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "runtimes.txt", sb.String())
}

func TestMarkdownRuntimesGolden(t *testing.T) {
	var sb strings.Builder
	if err := MarkdownRuntimes(&sb, goldenResults); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "runtimes.md", sb.String())
}

// TestRuntimeTablesShareTransportColumns pins the consolidation: both
// renderers derive their transport columns from telemetry.TransportColumns,
// so every shared column name must appear in both outputs.
func TestRuntimeTablesShareTransportColumns(t *testing.T) {
	var txt, md strings.Builder
	if err := FprintRuntimes(&txt, goldenResults); err != nil {
		t.Fatal(err)
	}
	if err := MarkdownRuntimes(&md, goldenResults); err != nil {
		t.Fatal(err)
	}
	for _, col := range telemetry.TransportColumns {
		if !strings.Contains(txt.String(), col) {
			t.Errorf("text table missing transport column %q", col)
		}
		if !strings.Contains(md.String(), col) {
			t.Errorf("markdown table missing transport column %q", col)
		}
	}
}
