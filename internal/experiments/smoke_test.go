package experiments

import (
	"testing"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// TestSmokeAWCColoring is the first end-to-end check: AWC with resolvent
// learning must solve a small solvable 3-coloring instance well within the
// cutoff.
func TestSmokeAWCColoring(t *testing.T) {
	inst, err := gen.Coloring(30, 81, 3, 1)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	init := gen.RandomInitial(inst.Problem, 2)
	res, err := RunAWC(inst.Problem, init, core.Learning{Kind: core.LearnResolvent}, sim.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("cycles=%d maxcck=%d solved=%v deadends=%d generated=%d",
		res.Cycles, res.MaxCCK, res.Solved, res.Deadends, res.NogoodsGenerated)
	if !res.Solved {
		t.Fatalf("AWC+Rslv did not solve a 30-node solvable 3-coloring in %d cycles", res.Cycles)
	}
	if !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("reported solution does not satisfy the problem")
	}
}

func TestSmokeAWCSAT(t *testing.T) {
	inst, err := gen.ForcedSAT3(20, 86, 3)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	init := gen.RandomInitial(inst.Problem, 4)
	res, err := RunAWC(inst.Problem, init, core.Learning{Kind: core.LearnResolvent}, sim.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("cycles=%d maxcck=%d solved=%v", res.Cycles, res.MaxCCK, res.Solved)
	if !res.Solved {
		t.Fatalf("AWC+Rslv did not solve a 20-var forced 3SAT in %d cycles", res.Cycles)
	}
}

func TestSmokeDB(t *testing.T) {
	inst, err := gen.Coloring(30, 81, 3, 5)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	init := gen.RandomInitial(inst.Problem, 6)
	res, err := RunDB(inst.Problem, init, sim.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("cycles=%d maxcck=%d solved=%v", res.Cycles, res.MaxCCK, res.Solved)
	if !res.Solved {
		t.Fatalf("DB did not solve a 30-node solvable 3-coloring in %d cycles", res.Cycles)
	}
}

func TestSmokeABT(t *testing.T) {
	inst, err := gen.Coloring(15, 40, 3, 7)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	init := gen.RandomInitial(inst.Problem, 8)
	res, err := RunABT(inst.Problem, init, sim.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	t.Logf("cycles=%d maxcck=%d solved=%v", res.Cycles, res.MaxCCK, res.Solved)
	if !res.Solved {
		t.Fatalf("ABT did not solve a 15-node solvable 3-coloring in %d cycles", res.Cycles)
	}
}
