package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Markdown renders the table as GitHub-flavored Markdown, the format
// EXPERIMENTS.md embeds.
func (t *Table) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "**Table %d.** %s\n\n", t.Number, t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | ")); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(rule, " | ")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// Markdown renders the figure as a Markdown table plus the crossover note.
func (r *Figure2Result) Markdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"**Figure 2.** Estimated efficiency on n=%d of %s (one nogood check = one time-unit)\n\n",
		r.N, r.Kind); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| delay | %s | DB |\n| --- | --- | --- |\n", r.AWCName); err != nil {
		return err
	}
	for i, d := range r.Delays {
		if _, err := fmt.Fprintf(w, "| %.0f | %.0f | %.0f |\n", d, r.AWCTime[i], r.DBTime[i]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w,
		"\nMeasured inputs: %s cycle=%.1f maxcck=%.1f; DB cycle=%.1f maxcck=%.1f. "+
			"Crossover: AWC becomes cheaper beyond delay ≈ %.0f time-units.\n",
		r.AWCName, r.AWCCycle, r.AWCMaxCCK, r.DBCycle, r.DBMaxCCK, r.Crossover)
	return err
}
