package experiments

import (
	"fmt"
	"io"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/multi"
	"github.com/discsp/discsp/internal/sim"
)

// BlockSweepPoint measures one block size of a partitioning sweep.
type BlockSweepPoint struct {
	// Block is the number of variables per agent.
	Block int
	// Agents is the resulting agent count.
	Agents int
	Cycle  float64
	MaxCCK float64
	// Percent of trials finished within the cutoff.
	Percent float64
}

// BlockSweepResult compares the multi-variable AWC extension across block
// sizes on one family at one size — the extension experiment DESIGN.md
// calls out (the paper's Section 5: "all distributed CSPs can be converted
// into this class in principle, [but] such conversion is sometimes
// unreasonable in real-life problems"). Larger blocks trade messages
// (fewer, bigger agents) for local computation (block solver work).
type BlockSweepResult struct {
	Kind   ProblemKind
	N      int
	Points []BlockSweepPoint
}

// BlockSweep runs the sweep, fanning every block size's trial grid across
// scale.Workers goroutines. blocks nil means {1, 2, 3, 5}.
func BlockSweep(kind ProblemKind, n int, blocks []int, scale Scale) (*BlockSweepResult, error) {
	if len(blocks) == 0 {
		blocks = []int{1, 2, 3, 5}
	}
	specs := make([]cellSpec, 0, len(blocks))
	partitions := make([]multi.Partition, 0, len(blocks))
	for _, block := range blocks {
		if block < 1 {
			return nil, fmt.Errorf("experiments: block size %d", block)
		}
		partition := multi.Uniform(n, block)
		partitions = append(partitions, partition)
		alg := Algorithm{
			Name: fmt.Sprintf("multiAWC/block=%d", block),
			Run: func(p *csp.Problem, init csp.SliceAssignment, opts sim.Options) (TrialResult, error) {
				res, _, err := multi.Run(p, partition, init, multi.Options{}, opts)
				if err != nil {
					return TrialResult{}, fmt.Errorf("block sweep %v n=%d block=%d: %w", kind, n, block, err)
				}
				return TrialResult{Result: res.Result}, nil
			},
		}
		specs = append(specs, paperCell(kind, n, alg))
	}
	cells, err := runCells(specs, scale)
	if err != nil {
		return nil, err
	}
	out := &BlockSweepResult{Kind: kind, N: n}
	for i, block := range blocks {
		out.Points = append(out.Points, BlockSweepPoint{
			Block:   block,
			Agents:  len(partitions[i]),
			Cycle:   cells[i].Cycle,
			MaxCCK:  cells[i].MaxCCK,
			Percent: cells[i].Percent,
		})
	}
	return out, nil
}

// Fprint renders the sweep as an aligned table.
func (s *BlockSweepResult) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Block-size sweep: %s n=%d, multi-variable AWC\n", s.Kind, s.N); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-6s %-7s %-10s %-12s %-4s\n", "block", "agents", "cycle", "maxcck", "%"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "  %-6d %-7d %-10.1f %-12.1f %-4.0f\n",
			p.Block, p.Agents, p.Cycle, p.MaxCCK, p.Percent); err != nil {
			return err
		}
	}
	return nil
}
