package experiments

import (
	"fmt"
	"io"

	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/multi"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/stats"
)

// BlockSweepPoint measures one block size of a partitioning sweep.
type BlockSweepPoint struct {
	// Block is the number of variables per agent.
	Block int
	// Agents is the resulting agent count.
	Agents int
	Cycle  float64
	MaxCCK float64
	// Percent of trials finished within the cutoff.
	Percent float64
}

// BlockSweepResult compares the multi-variable AWC extension across block
// sizes on one family at one size — the extension experiment DESIGN.md
// calls out (the paper's Section 5: "all distributed CSPs can be converted
// into this class in principle, [but] such conversion is sometimes
// unreasonable in real-life problems"). Larger blocks trade messages
// (fewer, bigger agents) for local computation (block solver work).
type BlockSweepResult struct {
	Kind   ProblemKind
	N      int
	Points []BlockSweepPoint
}

// BlockSweep runs the sweep. blocks nil means {1, 2, 3, 5}.
func BlockSweep(kind ProblemKind, n int, blocks []int, scale Scale) (*BlockSweepResult, error) {
	if len(blocks) == 0 {
		blocks = []int{1, 2, 3, 5}
	}
	instances, inits := scale.trials(kind)
	maxCycles := scale.MaxCycles
	if maxCycles <= 0 {
		maxCycles = sim.DefaultMaxCycles
	}
	out := &BlockSweepResult{Kind: kind, N: n}
	for _, block := range blocks {
		if block < 1 {
			return nil, fmt.Errorf("experiments: block size %d", block)
		}
		var (
			cycle  stats.Sample
			maxcck stats.Sample
			solved stats.Counter
		)
		partition := multi.Uniform(n, block)
		for i := 0; i < instances; i++ {
			problem, err := MakeInstance(kind, n, instanceSeed(scale.SeedBase, kind, n, i))
			if err != nil {
				return nil, err
			}
			for j := 0; j < inits; j++ {
				init := gen.RandomInitial(problem, initSeed(scale.SeedBase, kind, n, i, j))
				res, _, err := multi.Run(problem, partition, init, multi.Options{}, sim.Options{MaxCycles: maxCycles})
				if err != nil {
					return nil, fmt.Errorf("block sweep %v n=%d block=%d: %w", kind, n, block, err)
				}
				cycle.Add(float64(res.Cycles))
				maxcck.Add(float64(res.MaxCCK))
				solved.Observe(res.Solved)
			}
		}
		out.Points = append(out.Points, BlockSweepPoint{
			Block:   block,
			Agents:  len(partition),
			Cycle:   cycle.Mean(),
			MaxCCK:  maxcck.Mean(),
			Percent: solved.Percent(),
		})
	}
	return out, nil
}

// Fprint renders the sweep as an aligned table.
func (s *BlockSweepResult) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Block-size sweep: %s n=%d, multi-variable AWC\n", s.Kind, s.N); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-6s %-7s %-10s %-12s %-4s\n", "block", "agents", "cycle", "maxcck", "%"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "  %-6d %-7d %-10.1f %-12.1f %-4.0f\n",
			p.Block, p.Agents, p.Cycle, p.MaxCCK, p.Percent); err != nil {
			return err
		}
	}
	return nil
}
