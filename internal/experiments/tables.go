package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/discsp/discsp/internal/core"
)

// Table is a rendered experiment result in the paper's row layout.
type Table struct {
	Number int
	Title  string
	Header []string
	Rows   [][]string
	// Cells holds the raw per-cell measurements backing the rows, for
	// programmatic consumers (tests, EXPERIMENTS.md generation).
	Cells []CellResult
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table %d. %s\n", t.Number, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := printRow(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := printRow(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := printRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func fmtF(v float64) string  { return fmt.Sprintf("%.1f", v) }
func fmtPc(v float64) string { return fmt.Sprintf("%.0f", v) }

// learnerComparison runs Tables 1–3: {Rslv, Mcs, No} over one family.
func learnerComparison(number int, kind ProblemKind, title string, scale Scale) (*Table, error) {
	algs := []Algorithm{
		AWC(core.Learning{Kind: core.LearnResolvent}),
		AWC(core.Learning{Kind: core.LearnMCS}),
		AWC(core.Learning{Kind: core.LearnNone}),
	}
	return runGrid(number, kind, title, "learn", algs, scale)
}

// runGrid runs a (n × algorithm) grid — every cell's trials dispatched
// through one worker pool — and renders the paper's row layout: n,
// algorithm label, cycle, maxcck, %.
func runGrid(number int, kind ProblemKind, title, algColumn string, algs []Algorithm, scale Scale) (*Table, error) {
	t := &Table{
		Number: number,
		Title:  title,
		Header: []string{"n", algColumn, "cycle", "maxcck", "%"},
	}
	var specs []cellSpec
	for _, n := range scale.ns(kind) {
		for _, alg := range algs {
			specs = append(specs, paperCell(kind, n, alg))
		}
	}
	cells, err := runCells(specs, scale)
	if err != nil {
		return nil, err
	}
	for _, cell := range cells {
		t.Cells = append(t.Cells, cell)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", cell.N),
			cell.Algorithm,
			fmtF(cell.Cycle),
			fmtF(cell.MaxCCK),
			fmtPc(cell.Percent),
		})
	}
	return t, nil
}

// Table1 compares learning methods on distributed 3-coloring problems.
func Table1(scale Scale) (*Table, error) {
	return learnerComparison(1, D3C,
		"Comparison with other learning methods on distributed 3-coloring problems", scale)
}

// Table2 compares learning methods on distributed 3SAT problems (3SAT-GEN).
func Table2(scale Scale) (*Table, error) {
	return learnerComparison(2, D3S,
		"Comparison with other learning methods on distributed 3SAT problems by 3SAT-GEN", scale)
}

// Table3 compares learning methods on distributed 3SAT problems
// (3ONESAT-GEN).
func Table3(scale Scale) (*Table, error) {
	return learnerComparison(3, D3S1,
		"Comparison with other learning methods on distributed 3SAT problems by 3ONESAT-GEN", scale)
}

// Table4 measures redundant nogood generation with and without recording
// (Rslv/rec vs Rslv/norec) across all three families.
func Table4(scale Scale) (*Table, error) {
	t := &Table{
		Number: 4,
		Title:  "Total number of redundant nogood generation (mean per trial)",
		Header: []string{"problem", "n", "Rslv/rec", "Rslv/norec"},
	}
	rec := AWC(core.Learning{Kind: core.LearnResolvent})
	norec := AWC(core.Learning{Kind: core.LearnResolvent, NoRecord: true})
	var specs []cellSpec
	for _, kind := range []ProblemKind{D3C, D3S, D3S1} {
		for _, n := range scale.ns(kind) {
			specs = append(specs, paperCell(kind, n, rec), paperCell(kind, n, norec))
		}
	}
	cells, err := runCells(specs, scale)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(cells); i += 2 {
		recCell, norecCell := cells[i], cells[i+1]
		norecCell.Algorithm = "Rslv/norec"
		t.Cells = append(t.Cells, recCell, norecCell)
		t.Rows = append(t.Rows, []string{
			recCell.Kind.String(),
			fmt.Sprintf("%d", recCell.N),
			fmtF(recCell.Redundant),
			fmtF(norecCell.Redundant),
		})
	}
	return t, nil
}

// sizeBounded runs Tables 5–7: unrestricted Rslv against two kthRslv
// variants over one family.
func sizeBounded(number int, kind ProblemKind, title string, ks [2]int, scale Scale) (*Table, error) {
	algs := []Algorithm{
		AWC(core.Learning{Kind: core.LearnResolvent}),
		AWC(core.Learning{Kind: core.LearnResolvent, SizeBound: ks[0]}),
		AWC(core.Learning{Kind: core.LearnResolvent, SizeBound: ks[1]}),
	}
	return runGrid(number, kind, title, "learn", algs, scale)
}

// Table5 evaluates size-bounded resolvent learning on distributed
// 3-coloring problems (Rslv vs 3rdRslv vs 4thRslv).
func Table5(scale Scale) (*Table, error) {
	return sizeBounded(5, D3C,
		"AWC with size-bounded resolvent-based learning on distributed 3-coloring problems",
		[2]int{3, 4}, scale)
}

// Table6 evaluates size-bounded resolvent learning on distributed 3SAT
// problems by 3SAT-GEN (Rslv vs 4thRslv vs 5thRslv).
func Table6(scale Scale) (*Table, error) {
	return sizeBounded(6, D3S,
		"AWC with size-bounded resolvent-based learning on distributed 3SAT problems by 3SAT-GEN",
		[2]int{4, 5}, scale)
}

// Table7 evaluates size-bounded resolvent learning on distributed 3SAT
// problems by 3ONESAT-GEN (Rslv vs 4thRslv vs 5thRslv).
func Table7(scale Scale) (*Table, error) {
	return sizeBounded(7, D3S1,
		"AWC with size-bounded resolvent-based learning on distributed 3SAT problems by 3ONESAT-GEN",
		[2]int{4, 5}, scale)
}

// BestLearning returns the paper's most effective size-bounded
// configuration for a family (Section 4.3: 3rdRslv for d3c, 5thRslv for
// d3s, 4thRslv for d3s1).
func BestLearning(kind ProblemKind) core.Learning {
	switch kind {
	case D3C:
		return core.Learning{Kind: core.LearnResolvent, SizeBound: 3}
	case D3S:
		return core.Learning{Kind: core.LearnResolvent, SizeBound: 5}
	default:
		return core.Learning{Kind: core.LearnResolvent, SizeBound: 4}
	}
}

// dbComparison runs Tables 8–10: AWC+kthRslv against DB over one family.
func dbComparison(number int, kind ProblemKind, title string, scale Scale) (*Table, error) {
	awc := AWC(BestLearning(kind))
	awc.Name = "AWC+" + awc.Name
	return runGrid(number, kind, title, "alg", []Algorithm{awc, DB()}, scale)
}

// Table8 compares AWC+3rdRslv with DB on distributed 3-coloring problems.
func Table8(scale Scale) (*Table, error) {
	return dbComparison(8, D3C,
		"Comparison with distributed breakout algorithm on distributed 3-coloring problems", scale)
}

// Table9 compares AWC+5thRslv with DB on distributed 3SAT problems by
// 3SAT-GEN.
func Table9(scale Scale) (*Table, error) {
	return dbComparison(9, D3S,
		"Comparison with distributed breakout algorithm on distributed 3SAT problems by 3SAT-GEN", scale)
}

// Table10 compares AWC+4thRslv with DB on distributed 3SAT problems by
// 3ONESAT-GEN.
func Table10(scale Scale) (*Table, error) {
	return dbComparison(10, D3S1,
		"Comparison with distributed breakout algorithm on distributed 3SAT problems by 3ONESAT-GEN", scale)
}

// Tables runs the numbered table; it is the dispatch used by cmd/dcspbench.
func Tables(number int, scale Scale) (*Table, error) {
	switch number {
	case 1:
		return Table1(scale)
	case 2:
		return Table2(scale)
	case 3:
		return Table3(scale)
	case 4:
		return Table4(scale)
	case 5:
		return Table5(scale)
	case 6:
		return Table6(scale)
	case 7:
		return Table7(scale)
	case 8:
		return Table8(scale)
	case 9:
		return Table9(scale)
	case 10:
		return Table10(scale)
	default:
		return nil, fmt.Errorf("experiments: no table %d in the paper", number)
	}
}
