package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/discsp/discsp/internal/async"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/netrun"
	"github.com/discsp/discsp/internal/sim"
)

// RuntimeResult is one runtime's outcome on one instance.
type RuntimeResult struct {
	// Runtime names the execution substrate: "sync", "async", or "tcp".
	Runtime string
	Solved  bool
	// Cycles is only meaningful for the synchronous simulator.
	Cycles int
	// Messages counts delivered (sync/async) or routed (tcp) messages.
	Messages int64
	// Duration is the wall-clock time of the run.
	Duration time.Duration

	// Transport counters, populated by the async and tcp runtimes when a
	// fault schedule is active (always zero for sync, which has no
	// network to misbehave).
	Retransmits          int64
	DuplicatesSuppressed int64
	Restarts             int64
	Partitioned          int64
	PartitionHeals       int64
}

// CompareRuntimes runs AWC with the given learning on the same instance and
// initial values across all three runtimes — the Section 5 "other types of
// distributed systems" comparison. Wall-clock durations are inherently
// machine-dependent; the interesting outputs are the solved flags and the
// message counts (the async and TCP runtimes react per message instead of
// per lockstep wave, so they typically exchange more).
//
// fcfg, when non-nil, injects the deterministic fault schedule into the
// async and tcp runtimes (the synchronous simulator has no network, so it
// runs clean either way); the per-runtime transport counters then report
// what the faults cost.
func CompareRuntimes(problem *csp.Problem, initial csp.SliceAssignment, learning core.Learning, timeout time.Duration, fcfg *faults.Config) ([]RuntimeResult, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	makeAgent := func(v csp.Var) sim.Agent {
		return core.NewAgent(v, problem, initial[v], learning)
	}
	var out []RuntimeResult

	start := time.Now()
	syncRes, err := sim.Run(problem, buildSimAgents(problem.NumVars(), makeAgent), sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("sync: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:  "sync",
		Solved:   syncRes.Solved,
		Cycles:   syncRes.Cycles,
		Messages: int64(syncRes.Messages),
		Duration: time.Since(start),
	})

	asyncRes, err := async.Run(problem, makeAgent, async.Options{Timeout: timeout, Faults: fcfg})
	if err != nil {
		return nil, fmt.Errorf("async: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:              "async",
		Solved:               asyncRes.Solved,
		Messages:             asyncRes.Messages,
		Duration:             asyncRes.Duration,
		Retransmits:          asyncRes.Retransmits,
		DuplicatesSuppressed: asyncRes.DuplicatesSuppressed,
		Restarts:             asyncRes.Restarts,
		Partitioned:          asyncRes.Partitioned,
		PartitionHeals:       asyncRes.PartitionHeals,
	})

	tcpRes, err := netrun.Run(problem, makeAgent, netrun.Options{Timeout: timeout, Faults: fcfg})
	if err != nil {
		return nil, fmt.Errorf("tcp: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:              "tcp",
		Solved:               tcpRes.Solved,
		Messages:             tcpRes.Messages,
		Duration:             tcpRes.Duration,
		Retransmits:          tcpRes.Retransmits,
		DuplicatesSuppressed: tcpRes.DuplicatesSuppressed,
		Restarts:             tcpRes.Restarts,
		Partitioned:          tcpRes.Partitioned,
		PartitionHeals:       tcpRes.PartitionHeals,
	})
	return out, nil
}

func buildSimAgents(n int, makeAgent func(csp.Var) sim.Agent) []sim.Agent {
	agents := make([]sim.Agent, n)
	for v := 0; v < n; v++ {
		agents[v] = makeAgent(csp.Var(v))
	}
	return agents
}

// FprintRuntimes renders the comparison as an aligned table, transport
// counters included. The counters are informative even on a clean network:
// the tcp runtime retransmits whenever congestion delays an ack past the
// backoff base, and the dedup layer absorbs the copies.
func FprintRuntimes(w io.Writer, results []RuntimeResult) error {
	if _, err := fmt.Fprintf(w, "  %-6s %-7s %-8s %-10s %-12s %-8s %-8s %-9s %-11s %s\n",
		"rt", "solved", "cycles", "messages", "duration", "retrans", "dups", "restarts", "partitioned", "heals"); err != nil {
		return err
	}
	for _, r := range results {
		cycles := "-"
		if r.Runtime == "sync" {
			cycles = fmt.Sprintf("%d", r.Cycles)
		}
		if _, err := fmt.Fprintf(w, "  %-6s %-7v %-8s %-10d %-12v %-8d %-8d %-9d %-11d %d\n",
			r.Runtime, r.Solved, cycles, r.Messages, r.Duration.Round(time.Microsecond),
			r.Retransmits, r.DuplicatesSuppressed, r.Restarts, r.Partitioned, r.PartitionHeals); err != nil {
			return err
		}
	}
	return nil
}

// MarkdownRuntimes renders the comparison as a GitHub-flavored markdown
// table, transport counters included.
func MarkdownRuntimes(w io.Writer, results []RuntimeResult) error {
	if _, err := fmt.Fprintln(w, "| rt | solved | cycles | messages | duration | retransmits | dups suppressed | restarts | partitioned | heals |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range results {
		cycles := "-"
		if r.Runtime == "sync" {
			cycles = fmt.Sprintf("%d", r.Cycles)
		}
		if _, err := fmt.Fprintf(w, "| %s | %v | %s | %d | %v | %d | %d | %d | %d | %d |\n",
			r.Runtime, r.Solved, cycles, r.Messages, r.Duration.Round(time.Microsecond),
			r.Retransmits, r.DuplicatesSuppressed, r.Restarts, r.Partitioned, r.PartitionHeals); err != nil {
			return err
		}
	}
	return nil
}
