package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/discsp/discsp/internal/async"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/netrun"
	"github.com/discsp/discsp/internal/sim"
)

// RuntimeResult is one runtime's outcome on one instance.
type RuntimeResult struct {
	// Runtime names the execution substrate: "sync", "async", or "tcp".
	Runtime string
	Solved  bool
	// Cycles is only meaningful for the synchronous simulator.
	Cycles int
	// Messages counts delivered (sync/async) or routed (tcp) messages.
	Messages int64
	// Duration is the wall-clock time of the run.
	Duration time.Duration
}

// CompareRuntimes runs AWC with the given learning on the same instance and
// initial values across all three runtimes — the Section 5 "other types of
// distributed systems" comparison. Wall-clock durations are inherently
// machine-dependent; the interesting outputs are the solved flags and the
// message counts (the async and TCP runtimes react per message instead of
// per lockstep wave, so they typically exchange more).
func CompareRuntimes(problem *csp.Problem, initial csp.SliceAssignment, learning core.Learning, timeout time.Duration) ([]RuntimeResult, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	makeAgent := func(v csp.Var) sim.Agent {
		return core.NewAgent(v, problem, initial[v], learning)
	}
	var out []RuntimeResult

	start := time.Now()
	syncRes, err := sim.Run(problem, buildSimAgents(problem.NumVars(), makeAgent), sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("sync: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:  "sync",
		Solved:   syncRes.Solved,
		Cycles:   syncRes.Cycles,
		Messages: int64(syncRes.Messages),
		Duration: time.Since(start),
	})

	asyncRes, err := async.Run(problem, makeAgent, async.Options{Timeout: timeout})
	if err != nil {
		return nil, fmt.Errorf("async: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:  "async",
		Solved:   asyncRes.Solved,
		Messages: asyncRes.Messages,
		Duration: asyncRes.Duration,
	})

	tcpRes, err := netrun.Run(problem, makeAgent, netrun.Options{Timeout: timeout})
	if err != nil {
		return nil, fmt.Errorf("tcp: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:  "tcp",
		Solved:   tcpRes.Solved,
		Messages: tcpRes.Messages,
		Duration: tcpRes.Duration,
	})
	return out, nil
}

func buildSimAgents(n int, makeAgent func(csp.Var) sim.Agent) []sim.Agent {
	agents := make([]sim.Agent, n)
	for v := 0; v < n; v++ {
		agents[v] = makeAgent(csp.Var(v))
	}
	return agents
}

// FprintRuntimes renders the comparison as an aligned table.
func FprintRuntimes(w io.Writer, results []RuntimeResult) error {
	if _, err := fmt.Fprintf(w, "  %-6s %-7s %-8s %-10s %s\n", "rt", "solved", "cycles", "messages", "duration"); err != nil {
		return err
	}
	for _, r := range results {
		cycles := "-"
		if r.Runtime == "sync" {
			cycles = fmt.Sprintf("%d", r.Cycles)
		}
		if _, err := fmt.Fprintf(w, "  %-6s %-7v %-8s %-10d %v\n",
			r.Runtime, r.Solved, cycles, r.Messages, r.Duration.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
