package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/discsp/discsp/internal/async"
	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/netrun"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/wire"
)

// RuntimeResult is one runtime's outcome on one instance.
type RuntimeResult struct {
	// Runtime names the execution substrate: "sync", "async", or "tcp".
	Runtime string
	Solved  bool
	// Cycles is only meaningful for the synchronous simulator.
	Cycles int
	// Messages counts delivered (sync/async) or routed (tcp) messages.
	Messages int64
	// Duration is the wall-clock time of the run.
	Duration time.Duration

	// Transport is the shared reliability-layer counter block, populated by
	// the async and tcp runtimes when a fault schedule is active (always
	// zero for sync, which has no network to misbehave).
	Transport telemetry.Transport
}

// CompareRuntimes runs AWC with the given learning on the same instance and
// initial values across all three runtimes — the Section 5 "other types of
// distributed systems" comparison. Wall-clock durations are inherently
// machine-dependent; the interesting outputs are the solved flags and the
// message counts (the async and TCP runtimes react per message instead of
// per lockstep wave, so they typically exchange more).
//
// fcfg, when non-nil, injects the deterministic fault schedule into the
// async and tcp runtimes (the synchronous simulator has no network, so it
// runs clean either way); the per-runtime transport counters then report
// what the faults cost.
func CompareRuntimes(problem *csp.Problem, initial csp.SliceAssignment, learning core.Learning, timeout time.Duration, fcfg *faults.Config) ([]RuntimeResult, error) {
	return CompareRuntimesWith(problem, initial, learning, timeout, fcfg, TCPOptions{})
}

// TCPOptions carries the tcp leg's wire-scaling knobs: relay shard count,
// wire codec (zero value = binary), and the batching kill-switch. The
// verdict and message count are invariant across all of them; the transport
// byte/batch counters show what each choice costs.
type TCPOptions struct {
	Shards  int
	Codec   wire.Codec
	NoBatch bool
	// Causal, when non-nil, causally traces the tcp leg (the leg whose
	// transit edges cross real sockets) into this stream: meta, the span
	// events, and the leg's end verdict. The sync and async legs run
	// untraced, so the stream holds exactly one traced run.
	Causal *telemetry.Run
}

// CompareRuntimesWith is CompareRuntimes with explicit tcp wire options.
func CompareRuntimesWith(problem *csp.Problem, initial csp.SliceAssignment, learning core.Learning, timeout time.Duration, fcfg *faults.Config, tcp TCPOptions) ([]RuntimeResult, error) {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	makeAgent := func(v csp.Var) sim.Agent {
		return core.NewAgent(v, problem, initial[v], learning)
	}
	var out []RuntimeResult

	start := time.Now()
	syncRes, err := sim.Run(problem, buildSimAgents(problem.NumVars(), makeAgent), sim.Options{})
	if err != nil {
		return nil, fmt.Errorf("sync: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:  "sync",
		Solved:   syncRes.Solved,
		Cycles:   syncRes.Cycles,
		Messages: int64(syncRes.Messages),
		Duration: time.Since(start),
	})

	asyncRes, err := async.Run(problem, makeAgent, async.Options{Timeout: timeout, Faults: fcfg})
	if err != nil {
		return nil, fmt.Errorf("async: %w", err)
	}
	out = append(out, RuntimeResult{
		Runtime:  "async",
		Solved:   asyncRes.Solved,
		Messages: asyncRes.Messages,
		Duration: asyncRes.Duration,
		Transport: telemetry.Transport{
			Retransmits:          asyncRes.Retransmits,
			DuplicatesSuppressed: asyncRes.DuplicatesSuppressed,
			Restarts:             asyncRes.Restarts,
			Partitioned:          asyncRes.Partitioned,
			PartitionHeals:       asyncRes.PartitionHeals,
		},
	})

	tcpAgent := makeAgent
	var tracer *causal.Tracer
	if tcp.Causal != nil {
		tcp.Causal.Emit(telemetry.Event{
			Kind:      telemetry.KindMeta,
			Runtime:   "tcp",
			Algorithm: "AWC-" + learning.Name(),
			Vars:      problem.NumVars(),
			Nogoods:   problem.NumNogoods(),
		})
		tracer = causal.New(tcp.Causal, problem)
		tcpAgent = func(v csp.Var) sim.Agent {
			a := core.NewAgent(v, problem, initial[v], learning)
			a.SetCausal(tracer.Agent(int(v)))
			return a
		}
	}
	tcpRes, err := netrun.Run(problem, tcpAgent, netrun.Options{
		Timeout: timeout,
		Faults:  fcfg,
		Shards:  tcp.Shards,
		Codec:   tcp.Codec,
		NoBatch: tcp.NoBatch,
		Causal:  tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("tcp: %w", err)
	}
	if tcp.Causal != nil {
		tcp.Causal.Emit(telemetry.Event{
			Kind:        telemetry.KindEnd,
			Solved:      tcpRes.Solved,
			Insoluble:   tcpRes.Insoluble,
			TotalChecks: tcpRes.TotalChecks,
			Messages:    tcpRes.Messages,
			DurationUS:  tcpRes.Duration.Microseconds(),
		})
	}
	out = append(out, RuntimeResult{
		Runtime:  "tcp",
		Solved:   tcpRes.Solved,
		Messages: tcpRes.Messages,
		Duration: tcpRes.Duration,
		Transport: telemetry.Transport{
			Retransmits:          tcpRes.Retransmits,
			DuplicatesSuppressed: tcpRes.DuplicatesSuppressed,
			Restarts:             tcpRes.Restarts,
			Partitioned:          tcpRes.Partitioned,
			PartitionHeals:       tcpRes.PartitionHeals,
			Reconnects:           tcpRes.Reconnects,
			HeartbeatTimeouts:    tcpRes.HeartbeatTimeouts,
			CorruptFrames:        tcpRes.CorruptFrames,
			BytesSent:            tcpRes.BytesSent,
			BytesRecv:            tcpRes.BytesRecv,
			BatchedFrames:        tcpRes.BatchedFrames,
		},
	})
	return out, nil
}

func buildSimAgents(n int, makeAgent func(csp.Var) sim.Agent) []sim.Agent {
	agents := make([]sim.Agent, n)
	for v := 0; v < n; v++ {
		agents[v] = makeAgent(csp.Var(v))
	}
	return agents
}

// transportWidths aligns the text table's transport columns; indexed like
// telemetry.TransportColumns.
var transportWidths = []int{8, 8, 9, 11, 6, 10, 11, 7, 10, 10, 0}

// FprintRuntimes renders the comparison as an aligned table, transport
// counters included via the shared telemetry.TransportColumns /
// Transport.Values pairing. The counters are informative even on a clean
// network: the tcp runtime retransmits whenever congestion delays an ack
// past the backoff base, and the dedup layer absorbs the copies.
func FprintRuntimes(w io.Writer, results []RuntimeResult) error {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-6s %-7s %-8s %-10s %-12s", "rt", "solved", "cycles", "messages", "duration")
	for i, col := range telemetry.TransportColumns {
		fmt.Fprintf(&b, " %-*s", transportWidths[i], col)
	}
	b.WriteByte('\n')
	for _, r := range results {
		cycles := "-"
		if r.Runtime == "sync" {
			cycles = fmt.Sprintf("%d", r.Cycles)
		}
		fmt.Fprintf(&b, "  %-6s %-7v %-8s %-10d %-12v",
			r.Runtime, r.Solved, cycles, r.Messages, r.Duration.Round(time.Microsecond))
		for i, v := range r.Transport.Values() {
			fmt.Fprintf(&b, " %-*d", transportWidths[i], v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MarkdownRuntimes renders the comparison as a GitHub-flavored markdown
// table, transport counters included via the same shared column set as
// FprintRuntimes.
func MarkdownRuntimes(w io.Writer, results []RuntimeResult) error {
	var b strings.Builder
	b.WriteString("| rt | solved | cycles | messages | duration |")
	for _, col := range telemetry.TransportColumns {
		fmt.Fprintf(&b, " %s |", col)
	}
	b.WriteString("\n|---|---|---|---|---|")
	for range telemetry.TransportColumns {
		b.WriteString("---|")
	}
	b.WriteByte('\n')
	for _, r := range results {
		cycles := "-"
		if r.Runtime == "sync" {
			cycles = fmt.Sprintf("%d", r.Cycles)
		}
		fmt.Fprintf(&b, "| %s | %v | %s | %d | %v |",
			r.Runtime, r.Solved, cycles, r.Messages, r.Duration.Round(time.Microsecond))
		for _, v := range r.Transport.Values() {
			fmt.Fprintf(&b, " %d |", v)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
