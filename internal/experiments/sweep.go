package experiments

import (
	"fmt"
	"io"
	"math"
)

// SweepPoint is one constraint-density setting of a hardness sweep.
type SweepPoint struct {
	Ratio  float64
	M      int
	Cycle  float64
	MaxCCK float64
	// Percent of trials finished within the cutoff.
	Percent float64
}

// SweepResult is the hardness curve of one family at one size for one
// algorithm: the experimental backdrop for the paper's density choices
// (m = 2.7n for 3-coloring after Cheeseman et al.'s "where the really hard
// problems are"; m = 4.3n for 3SAT after Cha & Iwama).
type SweepResult struct {
	Kind      ProblemKind
	N         int
	Algorithm string
	Points    []SweepPoint
}

// RatioSweep measures alg across constraint/variable ratios on the family
// at size n, fanning every density's trial grid across scale.Workers
// goroutines. ratios nil uses a default band bracketing the family's paper
// ratio. Coloring sweeps are capped at the densest ratio that still admits
// solvable instances.
func RatioSweep(kind ProblemKind, n int, alg Algorithm, ratios []float64, scale Scale) (*SweepResult, error) {
	if len(ratios) == 0 {
		ratios = DefaultRatios(kind)
	}
	specs := make([]cellSpec, 0, len(ratios))
	ms := make([]int, 0, len(ratios))
	for _, ratio := range ratios {
		m := int(math.Round(ratio * float64(n)))
		ms = append(ms, m)
		specs = append(specs, ratioCell(kind, n, m, alg))
	}
	cells, err := runCells(specs, scale)
	if err != nil {
		return nil, fmt.Errorf("sweep %v n=%d: %w", kind, n, err)
	}
	out := &SweepResult{Kind: kind, N: n, Algorithm: alg.Name}
	for i, ratio := range ratios {
		out.Points = append(out.Points, SweepPoint{
			Ratio:   ratio,
			M:       ms[i],
			Cycle:   cells[i].Cycle,
			MaxCCK:  cells[i].MaxCCK,
			Percent: cells[i].Percent,
		})
	}
	return out, nil
}

// DefaultRatios brackets the family's paper ratio.
func DefaultRatios(kind ProblemKind) []float64 {
	switch kind {
	case D3C:
		return []float64{1.5, 2.0, 2.4, 2.7, 3.0, 3.4}
	case D3S:
		return []float64{2.0, 3.0, 3.6, 4.3, 5.0, 6.0}
	default:
		// The unique-solution construction needs m ≥ n+4, i.e. ratio ≳ 1.1.
		return []float64{1.5, 2.0, 2.7, 3.4, 4.0, 5.0}
	}
}

// Fprint renders the sweep as an aligned table.
func (s *SweepResult) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Hardness sweep: %s n=%d, %s\n", s.Kind, s.N, s.Algorithm); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-7s %-6s %-10s %-12s %-4s\n", "m/n", "m", "cycle", "maxcck", "%"); err != nil {
		return err
	}
	for _, p := range s.Points {
		if _, err := fmt.Fprintf(w, "  %-7.2f %-6d %-10.1f %-12.1f %-4.0f\n",
			p.Ratio, p.M, p.Cycle, p.MaxCCK, p.Percent); err != nil {
			return err
		}
	}
	return nil
}

// HardestPoint returns the sweep point with the largest mean cycles.
func (s *SweepResult) HardestPoint() SweepPoint {
	var hardest SweepPoint
	for _, p := range s.Points {
		if p.Cycle > hardest.Cycle {
			hardest = p
		}
	}
	return hardest
}
