package experiments

import (
	"fmt"
	"io"
	"math"
)

// Figure2Result is the paper's Figure 2: estimated total running time of
// AWC+kthRslv and DB as a function of the communication delay between
// cycles, assuming one nogood check costs one time-unit. For each delay d,
// an algorithm's total time is maxcck + cycle·d (its computation serialized
// by the per-cycle maximum plus d time-units of messaging per cycle).
type Figure2Result struct {
	Kind ProblemKind
	N    int
	// AWCName is the AWC configuration label (e.g. "AWC+4thRslv").
	AWCName string
	// AWCCycle/AWCMaxCCK and DBCycle/DBMaxCCK are the measured means the
	// curves are built from (the corresponding Tables 8–10 cell).
	AWCCycle, AWCMaxCCK float64
	DBCycle, DBMaxCCK   float64
	// Delays are the swept communication delays (time-units per cycle).
	Delays []float64
	// AWCTime and DBTime are the estimated totals per delay.
	AWCTime []float64
	DBTime  []float64
	// Crossover is the delay beyond which AWC is estimated cheaper than
	// DB; +Inf when DB never loses, 0 when AWC always wins. The paper
	// reads ≈50 time-units off the figure for d3s1 n=50.
	Crossover float64
}

// Figure2 reproduces the paper's figure for the d3s1 family at n=50; kind
// and n are parameters so the text's companion observations (≈210 for d3s
// n=150, ≈370 for d3c n=150) can be regenerated too.
func Figure2(kind ProblemKind, n int, delays []float64, scale Scale) (*Figure2Result, error) {
	if len(delays) == 0 {
		delays = DefaultDelays()
	}
	awc := AWC(BestLearning(kind))
	cells, err := runCells([]cellSpec{paperCell(kind, n, awc), paperCell(kind, n, DB())}, scale)
	if err != nil {
		return nil, err
	}
	awcCell, dbCell := cells[0], cells[1]
	r := &Figure2Result{
		Kind:      kind,
		N:         n,
		AWCName:   "AWC+" + awc.Name,
		AWCCycle:  awcCell.Cycle,
		AWCMaxCCK: awcCell.MaxCCK,
		DBCycle:   dbCell.Cycle,
		DBMaxCCK:  dbCell.MaxCCK,
		Delays:    delays,
	}
	for _, d := range delays {
		r.AWCTime = append(r.AWCTime, r.AWCMaxCCK+r.AWCCycle*d)
		r.DBTime = append(r.DBTime, r.DBMaxCCK+r.DBCycle*d)
	}
	r.Crossover = crossover(r.AWCMaxCCK, r.AWCCycle, r.DBMaxCCK, r.DBCycle)
	return r, nil
}

// DefaultDelays is the sweep rendered by the figure (the paper's x-axis
// spans roughly 0–200 time-units).
func DefaultDelays() []float64 {
	delays := make([]float64, 0, 9)
	for d := 0.0; d <= 200; d += 25 {
		delays = append(delays, d)
	}
	return delays
}

// crossover solves awcMaxcck + awcCycle·d = dbMaxcck + dbCycle·d for d.
func crossover(awcMaxcck, awcCycle, dbMaxcck, dbCycle float64) float64 {
	slopeGap := dbCycle - awcCycle // AWC wins on cycle, so normally > 0
	interceptGap := awcMaxcck - dbMaxcck
	switch {
	case slopeGap <= 0 && interceptGap >= 0:
		return math.Inf(1) // DB never loses
	case slopeGap <= 0:
		return 0 // AWC cheaper everywhere
	default:
		d := interceptGap / slopeGap
		if d < 0 {
			return 0
		}
		return d
	}
}

// Fprint renders the figure as a delay/time table plus the crossover point.
func (r *Figure2Result) Fprint(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Figure 2. Estimated efficiency on n=%d of %s (one nogood check = one time-unit)\n",
		r.N, r.Kind); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %s: cycle=%.1f maxcck=%.1f\n  DB: cycle=%.1f maxcck=%.1f\n",
		r.AWCName, r.AWCCycle, r.AWCMaxCCK, r.DBCycle, r.DBMaxCCK); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-8s  %14s  %14s\n", "delay", r.AWCName, "DB"); err != nil {
		return err
	}
	for i, d := range r.Delays {
		if _, err := fmt.Fprintf(w, "  %-8.0f  %14.0f  %14.0f\n", d, r.AWCTime[i], r.DBTime[i]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "  crossover: AWC becomes cheaper beyond delay ≈ %.0f time-units\n", r.Crossover)
	return err
}
