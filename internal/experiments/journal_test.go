package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	meta := JournalMeta{SeedBase: 7, MaxCycles: 100}
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	in := TrialResult{Result: sim.Result{Solved: true, Cycles: 42, MaxCCK: 1234}, NogoodsGenerated: 5}
	if err := j.Record("paper/d3c/n20/Rslv/i0/r0", in); err != nil {
		t.Fatal(err)
	}
	if err := j.Record("paper/d3c/n20/Rslv/i0/r1", TrialResult{Result: sim.Result{Cycles: 100}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, meta, true)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if j2.Recovered() != 2 {
		t.Fatalf("recovered %d entries, want 2", j2.Recovered())
	}
	var out TrialResult
	if !j2.Lookup("paper/d3c/n20/Rslv/i0/r0", &out) {
		t.Fatal("journaled trial not found after reopen")
	}
	if !out.Solved || out.Cycles != 42 || out.MaxCCK != 1234 || out.NogoodsGenerated != 5 {
		t.Fatalf("round trip mangled the trial: %+v", out)
	}
	if j2.Lookup("paper/d3c/n20/Rslv/i9/r9", &out) {
		t.Fatal("lookup of unjournaled key succeeded")
	}
}

func TestJournalRefusesExistingWithoutResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	meta := JournalMeta{SeedBase: 1}
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("k", 1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, meta, false); !errors.Is(err, ErrJournalExists) {
		t.Fatalf("reopen without resume: %v, want ErrJournalExists", err)
	}
}

func TestJournalMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j, err := OpenJournal(path, JournalMeta{SeedBase: 1, MaxCycles: 100}, false)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := OpenJournal(path, JournalMeta{SeedBase: 2, MaxCycles: 100}, true); !errors.Is(err, ErrJournalMeta) {
		t.Fatalf("seed mismatch: %v, want ErrJournalMeta", err)
	}
	if _, err := OpenJournal(path, JournalMeta{SeedBase: 1, MaxCycles: 200}, true); !errors.Is(err, ErrJournalMeta) {
		t.Fatalf("cutoff mismatch: %v, want ErrJournalMeta", err)
	}
}

// TestJournalTruncatedTail pins the crash-mid-write contract: a torn final
// line (with or without its newline) is dropped on resume, the file is
// truncated back to the last intact entry, and appending continues cleanly.
func TestJournalTruncatedTail(t *testing.T) {
	for _, tail := range []string{
		`{"k":"paper/d3c/n20/Rslv/i1/r0","v":{"Sol`,            // torn mid-JSON, no newline
		`{"k":"paper/d3c/n20/Rslv/i1/r0","v":{"Solved":true}}`, // intact JSON, newline lost
		"\x00\x00\x00", // raw garbage from a torn page write
	} {
		path := filepath.Join(t.TempDir(), "trials.jsonl")
		meta := JournalMeta{SeedBase: 3}
		j, err := OpenJournal(path, meta, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Record("a", TrialResult{Result: sim.Result{Cycles: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := j.Record("b", TrialResult{Result: sim.Result{Cycles: 2}}); err != nil {
			t.Fatal(err)
		}
		j.Close()
		sizeBefore := fileSize(t, path)
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		j2, err := OpenJournal(path, meta, true)
		if err != nil {
			t.Fatalf("tail %q: resume failed: %v", tail, err)
		}
		if j2.Recovered() != 2 {
			t.Fatalf("tail %q: recovered %d, want 2", tail, j2.Recovered())
		}
		if got := fileSize(t, path); got != sizeBefore {
			t.Fatalf("tail %q: file is %d bytes after resume, want truncation back to %d", tail, got, sizeBefore)
		}
		if err := j2.Record("c", TrialResult{Result: sim.Result{Cycles: 3}}); err != nil {
			t.Fatalf("tail %q: append after truncation: %v", tail, err)
		}
		j2.Close()
		j3, err := OpenJournal(path, meta, true)
		if err != nil {
			t.Fatal(err)
		}
		if j3.Recovered() != 3 {
			t.Fatalf("tail %q: second resume recovered %d, want 3", tail, j3.Recovered())
		}
		j3.Close()
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return st.Size()
}

// TestJournalCorruptMidFileRefused pins that corruption *followed by more
// entries* — not a crash artifact — is an error, never silent data loss.
func TestJournalCorruptMidFileRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	meta := JournalMeta{SeedBase: 3}
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Record("a", 1); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("garbage line\n{\"k\":\"b\",\"v\":2}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := OpenJournal(path, meta, true); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestJournalRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("just some notes\nmore notes\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path, JournalMeta{}, true); err == nil {
		t.Fatal("resumed from a non-journal file")
	}
}

// flakyAlgorithm wraps alg to fail every trial after the first `allow`
// completions — a deterministic stand-in for a run killed partway through.
func flakyAlgorithm(alg Algorithm, allow int64) Algorithm {
	var done atomic.Int64
	return Algorithm{
		Name: alg.Name,
		Run: func(p *csp.Problem, init csp.SliceAssignment, opts sim.Options) (TrialResult, error) {
			if done.Load() >= allow {
				return TrialResult{}, fmt.Errorf("injected interruption")
			}
			tr, err := alg.Run(p, init, opts)
			if err == nil {
				done.Add(1)
			}
			return tr, err
		},
	}
}

// TestResumeCellDeterminism is the kill-and-resume acceptance check at the
// cell level: a grid interrupted partway (trials journaled up to the kill)
// and resumed with -resume semantics produces a CellResult that is
// bit-identical — float equality included — to an uninterrupted run, at
// more than one worker count.
func TestResumeCellDeterminism(t *testing.T) {
	clean := AWC(core.Learning{Kind: core.LearnResolvent})
	for _, workers := range []int{1, 4} {
		scale := Scale{Instances: 3, Inits: 2, Workers: workers, SeedBase: 11}
		meta := JournalMeta{SeedBase: scale.SeedBase, MaxCycles: scale.maxCycles()}

		baseline, err := RunCell(D3C, 20, clean, scale)
		if err != nil {
			t.Fatal(err)
		}

		path := filepath.Join(t.TempDir(), "trials.jsonl")
		j, err := OpenJournal(path, meta, false)
		if err != nil {
			t.Fatal(err)
		}
		interrupted := scale
		interrupted.Journal = j
		if _, err := RunCell(D3C, 20, flakyAlgorithm(clean, 3), interrupted); err == nil {
			t.Fatal("interrupted run did not fail")
		}
		j.Close()

		j2, err := OpenJournal(path, meta, true)
		if err != nil {
			t.Fatal(err)
		}
		if j2.Recovered() == 0 {
			t.Fatal("nothing journaled before the interruption")
		}
		resumed := scale
		resumed.Journal = j2
		got, err := RunCell(D3C, 20, clean, resumed)
		j2.Close()
		if err != nil {
			t.Fatal(err)
		}
		if got != baseline {
			t.Fatalf("workers=%d: resumed cell differs from uninterrupted run:\n got %+v\nwant %+v", workers, got, baseline)
		}
	}
}

// TestResumeTableByteIdentical is the kill-and-resume acceptance check at
// the table level: a journal with a torn tail (the kill ate the final
// write) resumed into a fresh Table run renders byte-identical output to a
// run that was never interrupted.
func TestResumeTableByteIdentical(t *testing.T) {
	scale := Scale{Ns: []int{20}, Instances: 2, Inits: 2, Workers: 4, SeedBase: 3}
	meta := JournalMeta{SeedBase: scale.SeedBase, MaxCycles: scale.maxCycles()}

	baseline, err := Table1(scale)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := baseline.Fprint(&want); err != nil {
		t.Fatal(err)
	}

	// Run once with a journal, then simulate the kill: chop the file
	// mid-entry so the tail is torn and the last trials are lost.
	path := filepath.Join(t.TempDir(), "trials.jsonl")
	j, err := OpenJournal(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	full := scale
	full.Journal = j
	if _, err := Table1(full); err != nil {
		t.Fatal(err)
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-150], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path, meta, true)
	if err != nil {
		t.Fatal(err)
	}
	resumed := scale
	resumed.Journal = j2
	table, err := Table1(resumed)
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := table.Fprint(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("resumed table differs from uninterrupted run:\n--- got ---\n%s--- want ---\n%s", got.String(), want.String())
	}
}
