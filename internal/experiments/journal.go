// Crash-safe trial journal: an append-only JSONL file recording every
// completed trial of a grid run, keyed by (cell, instance, init). A run
// interrupted by a crash, OOM kill, or ^C is resumed by reopening the
// journal — already-journaled trials are skipped and their recorded results
// re-aggregated, which reproduces the uninterrupted run bit-identically
// because aggregation order is a pure function of the grid, never of which
// trials were live versus replayed (see runCells).
//
// Durability model: each entry is one JSON line, fsync'd after the write,
// so the file never holds a torn entry older than the crash itself. The one
// permitted corruption is a truncated final line (the crash interrupted the
// write); loading tolerates it by truncating the file back to the last
// intact line. Anything malformed before that is refused — it means the
// file is not a trial journal, and silently dropping entries would
// silently change results.

package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// journalMagic identifies the file format in the header line.
const journalMagic = "discsp-trials"

// journalVersion is bumped on any incompatible format change.
const journalVersion = 1

// ErrJournalExists is wrapped by OpenJournal when the journal file already
// holds entries and resume was not requested: refusing is what keeps a
// forgotten -journal flag from silently reusing stale results.
var ErrJournalExists = errors.New("experiments: journal already has entries (pass resume to continue it, or remove the file)")

// ErrJournalMeta is wrapped by OpenJournal when a resumed journal was
// written under different run parameters: its recorded trials would not be
// the trials this run is about to skip.
var ErrJournalMeta = errors.New("experiments: journal metadata does not match this run")

// JournalMeta pins the run parameters a journal's entries depend on. Resume
// validates it so a journal recorded under one seed or cutoff is never
// replayed into a run using another.
//
// Format discriminates uses of the journal machinery beyond trial grids:
// the experiment harness leaves it empty (so every pre-existing journal
// still validates), while other subsystems — the dcspd job log — pin their
// own format-and-version string there, which keeps a job log from ever
// being resumed as a trial journal or vice versa.
type JournalMeta struct {
	SeedBase  int64  `json:"seed_base"`
	MaxCycles int    `json:"max_cycles"`
	Format    string `json:"format,omitempty"`
}

type journalHeader struct {
	Journal string      `json:"journal"`
	Version int         `json:"version"`
	Meta    JournalMeta `json:"meta"`
}

type journalEntry struct {
	Key   string          `json:"k"`
	Value json.RawMessage `json:"v"`
}

// Journal is an append-only JSONL record of completed trials. It is safe
// for concurrent use by the worker pool.
type Journal struct {
	mu        sync.Mutex
	f         *os.File
	entries   map[string]json.RawMessage
	recovered int
}

// OpenJournal opens (or creates) the trial journal at path. With resume
// false the file must be absent or empty; with resume true an existing
// journal is loaded — its header meta must equal meta, and a truncated
// final line (a mid-write crash) is dropped by truncating the file back to
// the last intact entry.
func OpenJournal(path string, meta JournalMeta, resume bool) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiments: open journal: %w", err)
	}
	j := &Journal{f: f, entries: make(map[string]json.RawMessage)}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiments: stat journal: %w", err)
	}
	if st.Size() == 0 {
		if err := j.writeHeader(meta); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	}
	if !resume {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrJournalExists, path)
	}
	if err := j.load(meta); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

func (j *Journal) writeHeader(meta JournalMeta) error {
	b, err := json.Marshal(journalHeader{Journal: journalMagic, Version: journalVersion, Meta: meta})
	if err != nil {
		return err
	}
	return j.append(b)
}

// load replays an existing journal, tracking byte offsets explicitly so
// the truncation point after a torn tail is exact. A trailing partial or
// corrupt line — the signature of a crash mid-append — is cut off so the
// next Record continues a well-formed file; corruption *followed by more
// data* is not a crash artifact and is refused.
func (j *Journal) load(meta JournalMeta) error {
	if _, err := j.f.Seek(0, 0); err != nil {
		return err
	}
	data, err := io.ReadAll(j.f)
	if err != nil {
		return fmt.Errorf("experiments: read journal: %w", err)
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return fmt.Errorf("experiments: %s is not a trial journal (no complete header line)", j.f.Name())
	}
	var h journalHeader
	if err := json.Unmarshal(data[:nl], &h); err != nil || h.Journal != journalMagic {
		return fmt.Errorf("experiments: %s is not a trial journal", j.f.Name())
	}
	if h.Version != journalVersion {
		return fmt.Errorf("experiments: journal version %d, this binary writes %d", h.Version, journalVersion)
	}
	if h.Meta != meta {
		return fmt.Errorf("%w: journal has seed_base=%d max_cycles=%d format=%q, run has seed_base=%d max_cycles=%d format=%q",
			ErrJournalMeta, h.Meta.SeedBase, h.Meta.MaxCycles, h.Meta.Format, meta.SeedBase, meta.MaxCycles, meta.Format)
	}
	off := nl + 1
	good := off
	for off < len(data) {
		end := bytes.IndexByte(data[off:], '\n')
		complete := end >= 0
		var line []byte
		if complete {
			line = data[off : off+end]
		} else {
			line = data[off:]
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			if complete && len(bytes.TrimSpace(data[off+end+1:])) > 0 {
				return fmt.Errorf("experiments: journal corrupt mid-file at byte %d", good)
			}
			break // torn tail: drop it, the trial reruns
		}
		if !complete {
			// Intact JSON but no newline: the crash tore the write between
			// payload and terminator. The entry was never durably
			// committed by Record's contract; drop it too.
			break
		}
		j.entries[e.Key] = e.Value
		j.recovered++
		off += end + 1
		good = off
	}
	if err := j.f.Truncate(int64(good)); err != nil {
		return fmt.Errorf("experiments: truncate journal tail: %w", err)
	}
	if _, err := j.f.Seek(int64(good), 0); err != nil {
		return err
	}
	return nil
}

func (j *Journal) append(line []byte) error {
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("experiments: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiments: sync journal: %w", err)
	}
	return nil
}

// Record journals one completed trial under key. The entry is durable (the
// file is fsync'd) when Record returns.
func (j *Journal) Record(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiments: marshal journal entry %q: %w", key, err)
	}
	line, err := json.Marshal(journalEntry{Key: key, Value: raw})
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.append(line); err != nil {
		return err
	}
	j.entries[key] = raw
	return nil
}

// Lookup unmarshals the journaled entry for key into out, reporting whether
// one exists.
func (j *Journal) Lookup(key string, out any) bool {
	j.mu.Lock()
	raw, ok := j.entries[key]
	j.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Has reports whether key is journaled.
func (j *Journal) Has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.entries[key]
	return ok
}

// Keys returns every journaled key in sorted order. Grid runs never need
// it (they probe with Has/Lookup); replay-style consumers like the dcspd
// job log use it to walk everything the crashed process had accepted.
func (j *Journal) Keys() []string {
	j.mu.Lock()
	keys := make([]string, 0, len(j.entries))
	for k := range j.entries {
		keys = append(keys, k)
	}
	j.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Recovered returns the number of entries loaded from disk at open — the
// trials a resumed run will skip.
func (j *Journal) Recovered() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
