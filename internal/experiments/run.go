// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4): it wires generators, agents, and the synchronous
// simulator into trial loops, aggregates cycle / maxcck / % over trials, and
// prints rows in the paper's layout. See DESIGN.md Section 5 for the
// experiment-to-module index and EXPERIMENTS.md for measured-vs-paper
// results.
package experiments

import (
	"fmt"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// TrialResult is one trial's measurements plus algorithm-specific extras.
type TrialResult struct {
	sim.Result
	// RedundantGenerations sums core.Agent redundant nogood generations
	// over all agents (AWC runs only; the Table 4 measure).
	RedundantGenerations int64
	// NogoodsGenerated sums generated nogoods over all agents (AWC only).
	NogoodsGenerated int64
	// Deadends sums deadend hits over all agents (AWC only).
	Deadends int64
}

// RunAWC runs AWC with the given learning configuration on problem from the
// given initial values.
func RunAWC(problem *csp.Problem, initial csp.SliceAssignment, learning core.Learning, opts sim.Options) (TrialResult, error) {
	agents := make([]sim.Agent, problem.NumVars())
	awcAgents := make([]*core.Agent, problem.NumVars())
	for v := 0; v < problem.NumVars(); v++ {
		a := core.NewAgent(csp.Var(v), problem, initial[v], learning)
		awcAgents[v] = a
		agents[v] = a
	}
	res, err := sim.Run(problem, agents, opts)
	if err != nil {
		return TrialResult{}, fmt.Errorf("awc run: %w", err)
	}
	tr := TrialResult{Result: res}
	for _, a := range awcAgents {
		st := a.Stats()
		tr.RedundantGenerations += st.RedundantGenerations
		tr.NogoodsGenerated += st.NogoodsGenerated
		tr.Deadends += st.Deadends
	}
	return tr, nil
}

// RunDB runs the distributed breakout algorithm on problem from the given
// initial values.
func RunDB(problem *csp.Problem, initial csp.SliceAssignment, opts sim.Options) (TrialResult, error) {
	agents := make([]sim.Agent, problem.NumVars())
	for v := 0; v < problem.NumVars(); v++ {
		agents[v] = breakout.NewAgent(csp.Var(v), problem, initial[v])
	}
	res, err := sim.Run(problem, agents, opts)
	if err != nil {
		return TrialResult{}, fmt.Errorf("db run: %w", err)
	}
	return TrialResult{Result: res}, nil
}

// RunABT runs asynchronous backtracking on problem from the given initial
// values.
func RunABT(problem *csp.Problem, initial csp.SliceAssignment, opts sim.Options) (TrialResult, error) {
	return RunABTRetention(problem, initial, nogood.Retention{}, opts)
}

// RunABTRetention runs ABT with every agent's nogood store bounded by the
// given retention policy (the zero value is unbounded).
func RunABTRetention(problem *csp.Problem, initial csp.SliceAssignment, ret nogood.Retention, opts sim.Options) (TrialResult, error) {
	agents := make([]sim.Agent, problem.NumVars())
	for v := 0; v < problem.NumVars(); v++ {
		agents[v] = abt.NewAgentRetention(csp.Var(v), problem, initial[v], ret)
	}
	res, err := sim.Run(problem, agents, opts)
	if err != nil {
		return TrialResult{}, fmt.Errorf("abt run: %w", err)
	}
	return TrialResult{Result: res}, nil
}
