package experiments

import (
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// TestRunsAreDeterministic: the synchronous simulator with any of the
// algorithms must be a pure function of (instance, initial values) — the
// property that makes every table cell reproducible from its seed.
func TestRunsAreDeterministic(t *testing.T) {
	inst, err := gen.Coloring(25, 67, 3, 51)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 52)

	algs := []Algorithm{
		AWC(core.Learning{Kind: core.LearnResolvent}),
		AWC(core.Learning{Kind: core.LearnMCS}),
		AWC(core.Learning{Kind: core.LearnNone}),
		AWC(core.Learning{Kind: core.LearnResolvent, SizeBound: 3}),
		DB(),
		ABT(),
	}
	for _, alg := range algs {
		t.Run(alg.Name, func(t *testing.T) {
			first, err := alg.Run(inst.Problem, init, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				again, err := alg.Run(inst.Problem, init, sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if again.Cycles != first.Cycles || again.MaxCCK != first.MaxCCK ||
					again.Solved != first.Solved || again.Messages != first.Messages ||
					again.TotalChecks != first.TotalChecks {
					t.Fatalf("rep %d diverged: %+v vs %+v", rep, again.Result, first.Result)
				}
				for v := range first.Assignment {
					if first.Assignment[v] != again.Assignment[v] {
						t.Fatalf("rep %d assignment diverged at x%d", rep, v)
					}
				}
			}
		})
	}
}

// TestParallelCellBitIdentical: the worker pool must not change a single
// bit of a cell's aggregates — trials are independently seeded and the
// aggregation order is fixed by trial index, not completion order.
func TestParallelCellBitIdentical(t *testing.T) {
	for _, alg := range []Algorithm{
		AWC(core.Learning{Kind: core.LearnResolvent}),
		DB(),
	} {
		t.Run(alg.Name, func(t *testing.T) {
			serial := QuickScale()
			serial.Workers = 1
			parallel := QuickScale()
			parallel.Workers = 8

			want, err := RunCell(D3C, 60, alg, serial)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunCell(D3C, 60, alg, parallel)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("Workers=8 cell diverged from Workers=1:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestParallelTableBitIdentical covers the grid path: a whole table's
// cells and rendered rows must match between serial and parallel runs.
func TestParallelTableBitIdentical(t *testing.T) {
	serial := Scale{Ns: []int{30}, Instances: 2, Inits: 2, Workers: 1}
	parallel := serial
	parallel.Workers = 8

	want, err := Table1(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Table1(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Cells, want.Cells) {
		t.Fatalf("Workers=8 cells diverged:\n got %+v\nwant %+v", got.Cells, want.Cells)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("Workers=8 rows diverged:\n got %v\nwant %v", got.Rows, want.Rows)
	}
}

// TestParallelSweepBitIdentical covers the explicit-density path.
func TestParallelSweepBitIdentical(t *testing.T) {
	alg := AWC(core.Learning{Kind: core.LearnResolvent})
	ratios := []float64{2.0, 2.7}

	serial := QuickScale()
	serial.Workers = 1
	parallel := QuickScale()
	parallel.Workers = 8

	want, err := RatioSweep(D3C, 30, alg, ratios, serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RatioSweep(D3C, 30, alg, ratios, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Workers=8 sweep diverged:\n got %+v\nwant %+v", got, want)
	}
}

// TestTrialErrorCancelsPool: a failing trial must cancel the pool (only
// in-flight trials finish — here, at most one per worker) and surface the
// lowest-indexed trial's error deterministically.
func TestTrialErrorCancelsPool(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	failing := Algorithm{
		Name: "fail",
		Run: func(*csp.Problem, csp.SliceAssignment, sim.Options) (TrialResult, error) {
			calls.Add(1)
			return TrialResult{}, boom
		},
	}
	const workers = 8
	scale := Scale{Instances: 10, Inits: 10, Workers: workers}
	_, err := RunCell(D3C, 20, failing, scale)
	if err == nil {
		t.Fatal("failing trials produced no error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost the trial error: %v", err)
	}
	if !strings.Contains(err.Error(), "instance 0 init 0") {
		t.Fatalf("surfaced error is not the lowest-indexed trial's: %v", err)
	}
	if got := calls.Load(); got > workers {
		t.Fatalf("pool ran %d trials after the first error (want <= %d in flight)", got, workers)
	}
}
