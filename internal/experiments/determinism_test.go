package experiments

import (
	"testing"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// TestRunsAreDeterministic: the synchronous simulator with any of the
// algorithms must be a pure function of (instance, initial values) — the
// property that makes every table cell reproducible from its seed.
func TestRunsAreDeterministic(t *testing.T) {
	inst, err := gen.Coloring(25, 67, 3, 51)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 52)

	algs := []Algorithm{
		AWC(core.Learning{Kind: core.LearnResolvent}),
		AWC(core.Learning{Kind: core.LearnMCS}),
		AWC(core.Learning{Kind: core.LearnNone}),
		AWC(core.Learning{Kind: core.LearnResolvent, SizeBound: 3}),
		DB(),
		ABT(),
	}
	for _, alg := range algs {
		t.Run(alg.Name, func(t *testing.T) {
			first, err := alg.Run(inst.Problem, init, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 2; rep++ {
				again, err := alg.Run(inst.Problem, init, sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if again.Cycles != first.Cycles || again.MaxCCK != first.MaxCCK ||
					again.Solved != first.Solved || again.Messages != first.Messages ||
					again.TotalChecks != first.TotalChecks {
					t.Fatalf("rep %d diverged: %+v vs %+v", rep, again.Result, first.Result)
				}
				for v := range first.Assignment {
					if first.Assignment[v] != again.Assignment[v] {
						t.Fatalf("rep %d assignment diverged at x%d", rep, v)
					}
				}
			}
		})
	}
}
