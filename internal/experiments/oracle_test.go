package experiments

import (
	"math/rand"
	"testing"

	"github.com/discsp/discsp/internal/central"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

// TestAWCMatchesOracleOnRandomProblems is the completeness stress test:
// on random small problems — soluble or not — AWC with unrestricted
// resolvent learning must agree with the centralized oracle: find a valid
// solution exactly when one exists, and derive insolubility otherwise.
func TestAWCMatchesOracleOnRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	solubleSeen, insolubleSeen := 0, 0
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(4)
		domSize := 2 + rng.Intn(2)
		p := csp.NewProblemUniform(n, domSize)
		m := n + rng.Intn(3*n)
		for i := 0; i < m; i++ {
			arity := 1 + rng.Intn(2)
			vars := rng.Perm(n)[:arity+1]
			lits := make([]csp.Lit, 0, arity+1)
			for _, v := range vars {
				lits = append(lits, csp.Lit{Var: csp.Var(v), Val: csp.Value(rng.Intn(domSize))})
			}
			if err := p.AddNogood(csp.MustNogood(lits...)); err != nil {
				t.Fatal(err)
			}
		}
		_, soluble := central.New(p).Solve()

		init := csp.NewSliceAssignment(n)
		for v := 0; v < n; v++ {
			init[v] = csp.Value(rng.Intn(domSize))
		}
		res, err := RunAWC(p, init, core.Learning{Kind: core.LearnResolvent}, sim.Options{MaxCycles: 20000})
		if err != nil {
			t.Fatal(err)
		}
		if soluble {
			solubleSeen++
			if !res.Solved {
				t.Fatalf("trial %d: oracle-soluble problem unsolved by AWC (res=%+v)", trial, res.Result)
			}
			if !p.IsSolution(res.Assignment) {
				t.Fatalf("trial %d: AWC reported invalid solution", trial)
			}
		} else {
			insolubleSeen++
			if res.Solved {
				t.Fatalf("trial %d: AWC 'solved' an insoluble problem", trial)
			}
			if !res.Insoluble {
				t.Fatalf("trial %d: AWC failed to prove insolubility (cycles=%d)", trial, res.Cycles)
			}
		}
	}
	if solubleSeen == 0 || insolubleSeen == 0 {
		t.Fatalf("unbalanced trial mix: %d soluble, %d insoluble", solubleSeen, insolubleSeen)
	}
}
