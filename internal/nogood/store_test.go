package nogood

import (
	"math/rand"
	"testing"

	"github.com/discsp/discsp/internal/csp"
)

func lit(v csp.Var, val csp.Value) csp.Lit { return csp.Lit{Var: v, Val: val} }

func TestCounter(t *testing.T) {
	var c Counter
	if c.Total() != 0 {
		t.Fatalf("fresh counter total = %d", c.Total())
	}
	c.Add(3)
	c.Add(2)
	if c.Total() != 5 {
		t.Errorf("Total = %d, want 5", c.Total())
	}
	c.Reset()
	if c.Total() != 0 {
		t.Errorf("Total after Reset = %d", c.Total())
	}
}

func TestCheckChargesOne(t *testing.T) {
	var c Counter
	ng := csp.MustNogood(lit(0, 1))
	a := csp.NewMapAssignment(lit(0, 1))
	if !Check(ng, a, &c) {
		t.Errorf("Check = false, want violated")
	}
	if c.Total() != 1 {
		t.Errorf("one Check charged %d", c.Total())
	}
	// nil counter: no accounting, still evaluates.
	if !Check(ng, a, nil) {
		t.Errorf("Check with nil counter mis-evaluated")
	}
}

func TestStoreAddDeduplicates(t *testing.T) {
	s := New()
	ng := csp.MustNogood(lit(0, 1), lit(1, 2))
	if !s.Add(ng) {
		t.Fatalf("first Add returned false")
	}
	if s.Add(csp.MustNogood(lit(1, 2), lit(0, 1))) {
		t.Errorf("duplicate (reordered) Add returned true")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if !s.Contains(ng) {
		t.Errorf("Contains = false")
	}
	if !s.At(0).Equal(ng) {
		t.Errorf("At(0) = %v", s.At(0))
	}
}

func TestStorePreservesInsertionOrder(t *testing.T) {
	s := New()
	ngs := []csp.Nogood{
		csp.MustNogood(lit(3, 0)),
		csp.MustNogood(lit(1, 1)),
		csp.MustNogood(lit(2, 2)),
	}
	for _, ng := range ngs {
		s.Add(ng)
	}
	for i, ng := range ngs {
		if !s.All()[i].Equal(ng) {
			t.Errorf("All()[%d] = %v, want %v", i, s.All()[i], ng)
		}
	}
}

func TestNewFromSlice(t *testing.T) {
	ng := csp.MustNogood(lit(0, 0))
	s := NewFromSlice([]csp.Nogood{ng, ng, csp.MustNogood(lit(1, 1))})
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2 (duplicates collapse)", s.Len())
	}
}

func TestAnyViolatedShortCircuits(t *testing.T) {
	s := New()
	s.Add(csp.MustNogood(lit(0, 0))) // violated
	s.Add(csp.MustNogood(lit(1, 0))) // would also be violated
	a := csp.SliceAssignment{0, 0}
	var c Counter
	if !s.AnyViolated(a, &c) {
		t.Fatalf("AnyViolated = false")
	}
	if c.Total() != 1 {
		t.Errorf("short-circuit charged %d checks, want 1", c.Total())
	}
}

func TestCountViolated(t *testing.T) {
	s := New()
	s.Add(csp.MustNogood(lit(0, 0)))
	s.Add(csp.MustNogood(lit(1, 1)))
	s.Add(csp.MustNogood(lit(0, 0), lit(1, 0)))
	a := csp.SliceAssignment{0, 0}
	var c Counter
	if got := s.CountViolated(a, &c); got != 2 {
		t.Errorf("CountViolated = %d, want 2", got)
	}
	if c.Total() != 3 {
		t.Errorf("full scan charged %d checks, want 3", c.Total())
	}
}

// TestStoreRandomized cross-checks Store against a map-based model.
func TestStoreRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := New()
	model := make(map[string]csp.Nogood)
	for i := 0; i < 5000; i++ {
		n := rng.Intn(4)
		lits := make([]csp.Lit, 0, n)
		seen := make(map[csp.Var]bool, n)
		for len(lits) < n {
			v := csp.Var(rng.Intn(5))
			if seen[v] {
				continue
			}
			seen[v] = true
			lits = append(lits, lit(v, csp.Value(rng.Intn(3))))
		}
		ng := csp.MustNogood(lits...)
		_, dup := model[ng.Key()]
		if added := s.Add(ng); added == dup {
			t.Fatalf("Add(%v) = %v, model dup = %v", ng, added, dup)
		}
		model[ng.Key()] = ng
		if s.Len() != len(model) {
			t.Fatalf("Len = %d, model = %d", s.Len(), len(model))
		}
	}
}

func TestAddPruningKeepsSubsumedInserts(t *testing.T) {
	// A new nogood subsumed by a recorded one is still added: rejecting it
	// would stall AWC's progress (see the AddPruning doc comment).
	s := New()
	small := csp.MustNogood(lit(0, 1))
	big := csp.MustNogood(lit(0, 1), lit(1, 2))
	var c Counter
	if added, _ := s.AddPruning(small, &c); !added {
		t.Fatalf("first insert rejected")
	}
	if added, removed := s.AddPruning(big, &c); !added || removed != 0 {
		t.Fatalf("subsumed insert: added=%v removed=%d, want true,0", added, removed)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d, want 2", s.Len())
	}
	if c.Total() == 0 {
		t.Errorf("subset tests not charged")
	}
}

func TestAddPruningDiscardsSupersets(t *testing.T) {
	s := New()
	s.Add(csp.MustNogood(lit(0, 1), lit(1, 2)))
	s.Add(csp.MustNogood(lit(0, 1), lit(2, 0)))
	s.Add(csp.MustNogood(lit(3, 0)))
	added, removed := s.AddPruning(csp.MustNogood(lit(0, 1)), nil)
	if !added || removed != 2 {
		t.Fatalf("added=%v removed=%d, want true,2", added, removed)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// The survivors: the unrelated nogood and the new subsumer.
	if !s.Contains(csp.MustNogood(lit(3, 0))) || !s.Contains(csp.MustNogood(lit(0, 1))) {
		t.Errorf("wrong survivors: %v", s.All())
	}
	// The index stays consistent after pruning.
	if s.Add(csp.MustNogood(lit(3, 0))) {
		t.Errorf("duplicate accepted after reindex")
	}
}

func TestAddPruningDuplicate(t *testing.T) {
	s := New()
	ng := csp.MustNogood(lit(0, 1))
	s.Add(ng)
	if added, removed := s.AddPruning(ng, nil); added || removed != 0 {
		t.Errorf("duplicate AddPruning: %v %d", added, removed)
	}
}

// TestAddPruningPreservesProhibitions: pruning must never change which
// assignments the store prohibits.
func TestAddPruningPreservesProhibitions(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const vars, vals = 4, 2
	for trial := 0; trial < 200; trial++ {
		plain := New()
		pruned := New()
		for i := 0; i < 12; i++ {
			n := 1 + rng.Intn(3)
			lits := make([]csp.Lit, 0, n)
			seen := map[csp.Var]bool{}
			for len(lits) < n {
				v := csp.Var(rng.Intn(vars))
				if seen[v] {
					continue
				}
				seen[v] = true
				lits = append(lits, lit(v, csp.Value(rng.Intn(vals))))
			}
			ng := csp.MustNogood(lits...)
			plain.Add(ng)
			pruned.AddPruning(ng, nil)
		}
		// Exhaustively compare violation behaviour.
		assign := make(csp.SliceAssignment, vars)
		for code := 0; code < 1<<vars; code++ {
			for v := 0; v < vars; v++ {
				assign[v] = csp.Value(code >> v & 1)
			}
			if plain.AnyViolated(assign, nil) != pruned.AnyViolated(assign, nil) {
				t.Fatalf("trial %d: prohibition changed at %v\nplain: %v\npruned: %v",
					trial, assign, plain.All(), pruned.All())
			}
		}
		if pruned.Len() > plain.Len() {
			t.Fatalf("trial %d: pruned store larger", trial)
		}
	}
}

// TestAddPruningCounterDelta pins the store's cost-model contract: every
// non-duplicate AddPruning charges exactly one check per nogood stored at
// the moment of insertion — the cost of the reference linear subset scan —
// no matter how much wall-clock work the structural indexes saved, and no
// matter whether the insert pruned anything. Duplicates charge nothing.
func TestAddPruningCounterDelta(t *testing.T) {
	s := New()
	var c Counter

	type op struct {
		ng          csp.Nogood
		wantAdded   bool
		wantRemoved int
	}
	ops := []op{
		{csp.MustNogood(lit(0, 1), lit(1, 1), lit(2, 1)), true, 0},
		{csp.MustNogood(lit(0, 1), lit(3, 0)), true, 0},
		// Strict subset of the first: prunes it.
		{csp.MustNogood(lit(0, 1), lit(1, 1)), true, 1},
		// Exact duplicate: rejected before any charge.
		{csp.MustNogood(lit(0, 1), lit(3, 0)), false, 0},
		// Subsumed by an existing nogood: still added, prunes nothing.
		{csp.MustNogood(lit(0, 1), lit(1, 1), lit(4, 0)), true, 0},
		// Subset of two stored supersets at once.
		{csp.MustNogood(lit(0, 1)), true, 3},
		// Empty nogood subsumes everything left.
		{csp.MustNogood(), true, 1},
	}
	for i, o := range ops {
		lenBefore := s.Len()
		before := c.Total()
		added, removed := s.AddPruning(o.ng, &c)
		delta := c.Total() - before
		if added != o.wantAdded || removed != o.wantRemoved {
			t.Fatalf("op %d (%v): added=%v removed=%d, want %v %d",
				i, o.ng, added, removed, o.wantAdded, o.wantRemoved)
		}
		wantDelta := int64(lenBefore)
		if !o.wantAdded {
			wantDelta = 0
		}
		if delta != wantDelta {
			t.Fatalf("op %d (%v): charged %d checks, want %d (store had %d nogoods)",
				i, o.ng, delta, wantDelta, lenBefore)
		}
	}
}

// refPruningStore is the unindexed reference implementation of AddPruning's
// semantics: linear dup scan, linear strict-superset scan, order-preserving
// compaction. The randomized test below drives it in lockstep with Store.
type refPruningStore struct {
	ngs []csp.Nogood
}

func (m *refPruningStore) addPruning(ng csp.Nogood, c *Counter) (bool, int) {
	for _, x := range m.ngs {
		if x.Key() == ng.Key() {
			return false, 0
		}
	}
	if c != nil {
		c.Add(len(m.ngs))
	}
	kept := m.ngs[:0]
	removed := 0
	for _, x := range m.ngs {
		if ng.SubsetOf(x) {
			removed++
			continue
		}
		kept = append(kept, x)
	}
	m.ngs = append(kept, ng)
	return true, removed
}

// TestStoreIndexedMatchesReference drives the indexed store and the
// unindexed reference through the same random operation sequence and
// demands identical contents (order included), identical return values, and
// identical charged checks after every operation.
func TestStoreIndexedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const vars, vals = 5, 2
	for trial := 0; trial < 100; trial++ {
		s := New()
		ref := &refPruningStore{}
		var sc, refc Counter
		for i := 0; i < 60; i++ {
			n := rng.Intn(4)
			lits := make([]csp.Lit, 0, n)
			seen := map[csp.Var]bool{}
			for len(lits) < n {
				v := csp.Var(rng.Intn(vars))
				if seen[v] {
					continue
				}
				seen[v] = true
				lits = append(lits, lit(v, csp.Value(rng.Intn(vals))))
			}
			ng := csp.MustNogood(lits...)
			gotAdded, gotRemoved := s.AddPruning(ng, &sc)
			wantAdded, wantRemoved := ref.addPruning(ng, &refc)
			if gotAdded != wantAdded || gotRemoved != wantRemoved {
				t.Fatalf("trial %d op %d: AddPruning(%v) = %v,%d, reference %v,%d",
					trial, i, ng, gotAdded, gotRemoved, wantAdded, wantRemoved)
			}
			if sc.Total() != refc.Total() {
				t.Fatalf("trial %d op %d: charged %d, reference %d", trial, i, sc.Total(), refc.Total())
			}
			if s.Len() != len(ref.ngs) {
				t.Fatalf("trial %d op %d: Len %d, reference %d", trial, i, s.Len(), len(ref.ngs))
			}
			for j, want := range ref.ngs {
				if !s.At(j).Equal(want) {
					t.Fatalf("trial %d op %d: position %d holds %v, reference %v",
						trial, i, j, s.At(j), want)
				}
				if !s.Contains(want) {
					t.Fatalf("trial %d op %d: Contains(%v) false", trial, i, want)
				}
			}
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	s := New()
	ngs := []csp.Nogood{
		csp.MustNogood(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 1, Val: 2}),
		csp.MustNogood(csp.Lit{Var: 1, Val: 0}),
		csp.MustNogood(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 1, Val: 2}, csp.Lit{Var: 2, Val: 0}),
	}
	for _, ng := range ngs {
		s.Add(ng)
	}
	snap := s.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d nogoods, want 3", len(snap))
	}

	// Mutate past the snapshot: prune (the 2-lit nogood subsumes the 3-lit
	// one) and add.
	s.AddPruning(csp.MustNogood(csp.Lit{Var: 0, Val: 1}), nil)
	s.Add(csp.MustNogood(csp.Lit{Var: 3, Val: 3}))
	for i, ng := range ngs {
		if !snap[i].Equal(ng) {
			t.Fatalf("snapshot aliased store mutations at %d: %v", i, snap[i])
		}
	}
	if s.Contains(ngs[2]) {
		t.Fatal("pruning did not remove the superset")
	}

	s.Restore(snap)
	if s.Len() != 3 {
		t.Fatalf("restored store has %d nogoods, want 3", s.Len())
	}
	for i, ng := range ngs {
		if !s.At(i).Equal(ng) {
			t.Fatalf("restored order wrong at %d: %v", i, s.At(i))
		}
		if !s.Contains(ng) {
			t.Fatalf("restored store lost %v", ng)
		}
	}

	// The rebuilt indexes must still drive pruning correctly: inserting the
	// 1-lit subset now removes both supersets, charging the reference scan.
	var c Counter
	added, removed := s.AddPruning(csp.MustNogood(csp.Lit{Var: 1, Val: 2}), &c)
	if !added || removed != 2 {
		t.Fatalf("AddPruning after restore: added=%v removed=%d, want true, 2", added, removed)
	}
	if c.Total() != 3 {
		t.Fatalf("AddPruning after restore charged %d, want 3", c.Total())
	}
}

// TestRestoreAfterPruningChurn checkpoints a store whose positions and
// posting lists have been shifted by superset pruning, keeps mutating, and
// restores — the crash-recovery path a node takes when the crash lands
// between pruning operations. The restored store must reproduce the
// checkpoint exactly and its rebuilt indexes must keep pruning correctly,
// with no phantom state left from either the pre-restore churn or the
// post-snapshot mutations.
func TestRestoreAfterPruningChurn(t *testing.T) {
	s := New()
	// Three supersets of {x0=1}, interleaved with unrelated nogoods so the
	// pruning removals shift positions in the middle of the slice.
	s.Add(csp.MustNogood(lit(0, 1), lit(1, 0), lit(2, 0)))
	s.Add(csp.MustNogood(lit(4, 2)))
	s.Add(csp.MustNogood(lit(0, 1), lit(3, 1)))
	s.Add(csp.MustNogood(lit(5, 0), lit(6, 1)))
	s.Add(csp.MustNogood(lit(0, 1), lit(6, 2)))

	// Prune: {x0=1} subsumes the three supersets, leaving shifted survivors.
	if _, removed := s.AddPruning(csp.MustNogood(lit(0, 1)), nil); removed != 3 {
		t.Fatalf("setup pruning removed %d, want 3", removed)
	}
	want := s.Snapshot() // {4=2}, {5=0,6=1}, {0=1}

	// Post-snapshot churn: new variables enter the posting lists, another
	// pruning pass removes a survivor, the empty-adjacent case runs.
	s.Add(csp.MustNogood(lit(7, 0), lit(5, 0)))
	if _, removed := s.AddPruning(csp.MustNogood(lit(5, 0)), nil); removed != 2 {
		t.Fatalf("churn pruning removed %d, want 2", removed)
	}

	s.Restore(want)
	if s.Len() != len(want) {
		t.Fatalf("restored Len = %d, want %d", s.Len(), len(want))
	}
	for i, ng := range want {
		if !s.At(i).Equal(ng) || !s.Contains(ng) {
			t.Fatalf("restored position %d holds %v, want %v", i, s.At(i), ng)
		}
	}
	// Post-snapshot state must be gone: no phantom membership, and a scan
	// keyed on the churn-only variable x7 must find nothing.
	if s.Contains(csp.MustNogood(lit(7, 0), lit(5, 0))) || s.Contains(csp.MustNogood(lit(5, 0))) {
		t.Fatal("restore kept post-snapshot nogoods")
	}
	if added, removed := s.AddPruning(csp.MustNogood(lit(7, 0)), nil); !added || removed != 0 {
		t.Fatalf("AddPruning on churn-only variable: added=%v removed=%d, want true, 0", added, removed)
	}

	// The rebuilt indexes must drive pruning over the restored contents:
	// {x5=0} again subsumes the restored {x5=0, x6=1} — exactly once.
	if added, removed := s.AddPruning(csp.MustNogood(lit(5, 0)), nil); !added || removed != 1 {
		t.Fatalf("AddPruning after restore: added=%v removed=%d, want true, 1", added, removed)
	}

	// A snapshot with duplicates restores each nogood once.
	s.Restore([]csp.Nogood{want[0], want[0], want[1]})
	if s.Len() != 2 {
		t.Fatalf("duplicate-bearing snapshot restored %d nogoods, want 2", s.Len())
	}

	// The empty snapshot clears the store and every index.
	s.Restore(nil)
	if s.Len() != 0 {
		t.Fatalf("empty restore left %d nogoods", s.Len())
	}
	if added, removed := s.AddPruning(csp.MustNogood(lit(0, 1)), nil); !added || removed != 0 {
		t.Fatalf("AddPruning into cleared store: added=%v removed=%d, want true, 0", added, removed)
	}
}

func TestCounterRestore(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Restore(99)
	if c.Total() != 99 {
		t.Fatalf("restored counter = %d, want 99", c.Total())
	}
}
