package nogood

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"strings"
	"sync"

	"github.com/discsp/discsp/internal/csp"
)

// Cache is the cross-run nogood cache: learned nogoods harvested from a
// finished run, keyed by the problem's structural signature, reusable to
// warm-start a later run on the same or an incrementally-grown instance.
//
// Soundness is the whole design. A learned nogood is a logical consequence
// of the constraint set it was learned under; seeding it into a different
// problem is sound only if that problem implies at least the same
// constraints. The cache therefore records, per entry, the *constraint key
// set* in force at harvest time, and Seed hands out an entry only when its
// recorded constraint keys are a subset of the target problem's constraint
// keys (admissible for additive mutations: adding constraints keeps every
// cached nogood valid; removing or changing one voids the entry). Variables
// and domains must match exactly — the signature pins them — because a
// literal (var, val) only means anything against the same variable space.
//
// Cache is safe for concurrent use: the dcspd daemon's solver pool seeds
// and harvests one shared cache from many worker goroutines. Mutation is
// append-only under the lock, so the slice Seed hands out stays valid —
// elements below its length are never rewritten.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

type cacheEntry struct {
	constraints map[string]struct{} // constraint keys in force at harvest
	nogoods     []csp.Nogood        // learned nogoods, insertion order
	seen        map[string]struct{} // dedup index over nogoods
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Len returns the total number of cached nogoods across all entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.entries {
		n += len(e.nogoods)
	}
	return n
}

// signature canonically identifies a problem's variable space: variable
// count and every domain, verbatim. Two problems with equal signatures
// interpret every literal identically. The full string is kept (not a
// hash): a hash collision would seed a foreign problem's nogoods, which is
// unsound, and signatures for the instance sizes this repo studies are
// small.
func signature(p *csp.Problem) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n%d", p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		b.WriteByte('|')
		for i, val := range p.Domain(csp.Var(v)) {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", int(val))
		}
	}
	return b.String()
}

// constraintKeys returns the set of the problem's constraint keys.
func constraintKeys(p *csp.Problem) map[string]struct{} {
	keys := make(map[string]struct{}, p.NumNogoods())
	for i := 0; i < p.NumNogoods(); i++ {
		keys[p.Nogood(i).Key()] = struct{}{}
	}
	return keys
}

// Put merges learned nogoods from a finished run on p into the cache.
// The entry's constraint set becomes the union of the previous and current
// constraint sets: every cached nogood is implied by the constraint set it
// was harvested under, so a target problem admitting the union admits each.
func (c *Cache) Put(p *csp.Problem, learned []csp.Nogood) {
	sig := signature(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[sig]
	if e == nil {
		e = &cacheEntry{
			constraints: make(map[string]struct{}),
			seen:        make(map[string]struct{}),
		}
		c.entries[sig] = e
	}
	for k := range constraintKeys(p) {
		e.constraints[k] = struct{}{}
	}
	for _, ng := range learned {
		if ng.Empty() {
			continue // insolubility is not transferable knowledge here
		}
		key := ng.Key()
		if _, dup := e.seen[key]; dup {
			continue
		}
		e.seen[key] = struct{}{}
		e.nogoods = append(e.nogoods, ng)
	}
}

// Seed returns the cached nogoods admissible for p: the entry under p's
// signature, provided every constraint key recorded at harvest time is
// still among p's constraints. Inadmissible or missing entries return nil
// — a cold start, never an unsound one. The returned slice is shared;
// callers must not mutate it.
func (c *Cache) Seed(p *csp.Problem) []csp.Nogood {
	sig := signature(p)
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[sig]
	if e == nil {
		return nil
	}
	have := constraintKeys(p)
	for k := range e.constraints {
		if _, ok := have[k]; !ok {
			return nil
		}
	}
	return e.nogoods
}

// cacheRecord is the JSONL persistence form of one cache entry.
type cacheRecord struct {
	Sig         string      `json:"sig"`
	Constraints []string    `json:"constraints"`
	Nogoods     [][]litJSON `json:"nogoods"`
}

type litJSON struct {
	V int `json:"v"`
	A int `json:"a"`
}

// Save writes the cache as JSONL (one entry per line) to path, atomically
// via a temp-file rename. Entries are written in sorted signature order so
// identical caches serialize to identical bytes.
func (c *Cache) Save(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	c.mu.Lock()
	defer c.mu.Unlock()
	sigs := make([]string, 0, len(c.entries))
	for sig := range c.entries {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		e := c.entries[sig]
		rec := cacheRecord{Sig: sig}
		rec.Constraints = make([]string, 0, len(e.constraints))
		for k := range e.constraints {
			rec.Constraints = append(rec.Constraints, k)
		}
		sort.Strings(rec.Constraints)
		for _, ng := range e.nogoods {
			lits := make([]litJSON, ng.Len())
			for i := 0; i < ng.Len(); i++ {
				l := ng.At(i)
				lits[i] = litJSON{V: int(l.Var), A: int(l.Val)}
			}
			rec.Nogoods = append(rec.Nogoods, lits)
		}
		if err := enc.Encode(rec); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadCache reads a cache previously written by Save. A missing file is an
// empty cache, not an error — the first run of a workflow has nothing to
// warm from.
func LoadCache(path string) (*Cache, error) {
	c := NewCache()
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return c, nil
		}
		return nil, err
	}
	defer f.Close()
	dec := json.NewDecoder(bufio.NewReader(f))
	for {
		var rec cacheRecord
		if err := dec.Decode(&rec); err != nil {
			if errors.Is(err, io.EOF) {
				return c, nil
			}
			return nil, fmt.Errorf("nogood cache %s: %w", path, err)
		}
		e := &cacheEntry{
			constraints: make(map[string]struct{}, len(rec.Constraints)),
			seen:        make(map[string]struct{}, len(rec.Nogoods)),
		}
		for _, k := range rec.Constraints {
			e.constraints[k] = struct{}{}
		}
		for _, lits := range rec.Nogoods {
			cl := make([]csp.Lit, len(lits))
			for i, l := range lits {
				cl[i] = csp.Lit{Var: csp.Var(l.V), Val: csp.Value(l.A)}
			}
			ng, err := csp.NewNogood(cl...)
			if err != nil {
				return nil, fmt.Errorf("nogood cache %s: %w", path, err)
			}
			key := ng.Key()
			if _, dup := e.seen[key]; dup {
				continue
			}
			e.seen[key] = struct{}{}
			e.nogoods = append(e.nogoods, ng)
		}
		c.entries[rec.Sig] = e
	}
}
