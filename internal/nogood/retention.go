package nogood

import (
	"fmt"
	"strconv"
	"strings"
)

// RetentionKind selects the store's forgetting policy. The zero value is
// RetainAll — today's unbounded behavior and the reference the oracle tests
// compare every bounded policy against.
type RetentionKind int

const (
	// RetainAll never evicts: the store grows monotonically, exactly as in
	// the paper's experiments. This is the reference policy.
	RetainAll RetentionKind = iota
	// RetainLRU evicts the least-recently-used learned nogood when the
	// learned population exceeds the cap. "Used" means touched by Bump —
	// i.e. the nogood fired during a consistency check — or inserted.
	RetainLRU
	// RetainActivity evicts by quality score: fewest violation hits first,
	// then longest (least general) nogood, then least recently touched.
	// This is the LBD-flavoured policy: short, frequently-firing resolvents
	// are the most valuable and survive longest.
	RetainActivity
)

// String returns the kind's flag spelling.
func (k RetentionKind) String() string {
	switch k {
	case RetainLRU:
		return "lru"
	case RetainActivity:
		return "activity"
	default:
		return "all"
	}
}

// Retention configures a store's forgetting policy. Cap bounds the number
// of *learned* (unpinned) nogoods; pinned entries — the agent's initial
// constraints — are never evicted and do not count against the cap, so a
// store holds at most pinned+Cap nogoods. Cap is ignored for RetainAll.
//
// Soundness: every learned nogood is a logical consequence of the initial
// constraints, so evicting one can never admit an assignment the problem
// forbids — bounded stores reach the same verdicts as the reference
// (pinned by the retention oracle tests); forgetting only risks re-deriving
// knowledge, which the charged-check metric makes visible.
type Retention struct {
	Kind RetentionKind
	Cap  int
}

// Bounded reports whether the policy ever evicts.
func (r Retention) Bounded() bool { return r.Kind != RetainAll }

// String renders the policy in the -retention flag syntax: "all",
// "lru:512", "activity:512".
func (r Retention) String() string {
	if !r.Bounded() {
		return "all"
	}
	return r.Kind.String() + ":" + strconv.Itoa(r.Cap)
}

// Suffix returns the policy's algorithm-name decoration: "" for the
// reference, "/lru512"-style otherwise. It keeps bounded runs visually
// distinct in tables and journals.
func (r Retention) Suffix() string {
	if !r.Bounded() {
		return ""
	}
	return "/" + r.Kind.String() + strconv.Itoa(r.Cap)
}

// ParseRetention parses the -retention flag syntax: "all" (or ""), or
// "<policy>:<cap>" where policy is "lru" or "activity" and cap is a
// non-negative learned-nogood budget (0 is legal: learn-and-forget).
func ParseRetention(s string) (Retention, error) {
	switch s {
	case "", "all", "unbounded":
		return Retention{}, nil
	}
	kindStr, capStr, ok := strings.Cut(s, ":")
	if !ok {
		return Retention{}, fmt.Errorf("retention %q: want \"all\" or \"<lru|activity>:<cap>\"", s)
	}
	var kind RetentionKind
	switch kindStr {
	case "lru":
		kind = RetainLRU
	case "activity":
		kind = RetainActivity
	default:
		return Retention{}, fmt.Errorf("retention %q: unknown policy %q (want lru or activity)", s, kindStr)
	}
	cap, err := strconv.Atoi(capStr)
	if err != nil || cap < 0 {
		return Retention{}, fmt.Errorf("retention %q: cap must be a non-negative integer", s)
	}
	return Retention{Kind: kind, Cap: cap}, nil
}
