package nogood

import (
	"fmt"
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/telemetry"
)

func TestParseRetention(t *testing.T) {
	cases := []struct {
		in      string
		want    Retention
		wantErr bool
	}{
		{in: "", want: Retention{}},
		{in: "all", want: Retention{}},
		{in: "unbounded", want: Retention{}},
		{in: "lru:512", want: Retention{Kind: RetainLRU, Cap: 512}},
		{in: "activity:64", want: Retention{Kind: RetainActivity, Cap: 64}},
		{in: "lru:0", want: Retention{Kind: RetainLRU, Cap: 0}},
		{in: "lru", wantErr: true},
		{in: "fifo:10", wantErr: true},
		{in: "lru:-1", wantErr: true},
		{in: "lru:x", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseRetention(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseRetention(%q) = %v, want error", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseRetention(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseRetention(%q) = %v, want %v", tc.in, got, tc.want)
		}
		// String round-trips through ParseRetention.
		back, err := ParseRetention(got.String())
		if err != nil || back != got {
			t.Errorf("round-trip %q -> %q -> %v (%v)", tc.in, got.String(), back, err)
		}
	}
}

func TestRetentionSuffix(t *testing.T) {
	if got := (Retention{}).Suffix(); got != "" {
		t.Errorf("unbounded Suffix = %q, want empty", got)
	}
	if got := (Retention{Kind: RetainLRU, Cap: 512}).Suffix(); got != "/lru512" {
		t.Errorf("lru Suffix = %q, want /lru512", got)
	}
	if got := (Retention{Kind: RetainActivity, Cap: 8}).Suffix(); got != "/activity8" {
		t.Errorf("activity Suffix = %q, want /activity8", got)
	}
}

// TestEvictionPolicies pins the victim order of each bounded policy against
// hand-computed expectations, including the cap boundaries: a store at its
// cap holds every entry; one past it evicts exactly one.
func TestEvictionPolicies(t *testing.T) {
	ngA := csp.MustNogood(lit(0, 1))
	ngB := csp.MustNogood(lit(1, 1), lit(2, 1))
	ngC := csp.MustNogood(lit(3, 1))
	ngD := csp.MustNogood(lit(4, 1))

	cases := []struct {
		name string
		ret  Retention
		run  func(s *Store)
		want []csp.Nogood // surviving nogoods in insertion order
	}{
		{
			name: "lru evicts oldest insert",
			ret:  Retention{Kind: RetainLRU, Cap: 2},
			run: func(s *Store) {
				s.Add(ngA)
				s.Add(ngB)
				s.Add(ngC) // over cap: A is least recent
			},
			want: []csp.Nogood{ngB, ngC},
		},
		{
			name: "lru bump refreshes recency",
			ret:  Retention{Kind: RetainLRU, Cap: 2},
			run: func(s *Store) {
				s.Add(ngA)
				s.Add(ngB)
				s.Bump(0)  // touch A: B becomes least recent
				s.Add(ngC) // evicts B
			},
			want: []csp.Nogood{ngA, ngC},
		},
		{
			name: "at cap nothing is evicted",
			ret:  Retention{Kind: RetainLRU, Cap: 2},
			run: func(s *Store) {
				s.Add(ngA)
				s.Add(ngB)
			},
			want: []csp.Nogood{ngA, ngB},
		},
		{
			name: "activity evicts fewest hits",
			ret:  Retention{Kind: RetainActivity, Cap: 2},
			run: func(s *Store) {
				s.Add(ngA)
				s.Add(ngB)
				s.Bump(1) // B has one hit
				s.Bump(1) // ...two
				s.Bump(0) // A has one
				// Zero-hit newcomers lose to entries that have fired: each
				// insert past the cap evicts the newcomer itself.
				s.Add(ngC)
				s.Add(ngD)
			},
			want: []csp.Nogood{ngA, ngB},
		},
		{
			name: "activity hit tie prefers evicting longer",
			ret:  Retention{Kind: RetainActivity, Cap: 1},
			run: func(s *Store) {
				s.Add(ngB) // 2 literals, zero hits
				s.Add(ngC) // 1 literal, zero hits: ngB is less general, goes first
			},
			want: []csp.Nogood{ngC},
		},
		{
			name: "activity full tie falls back to stamp",
			ret:  Retention{Kind: RetainActivity, Cap: 1},
			run: func(s *Store) {
				s.Add(ngA) // same length, same (zero) hits, older stamp
				s.Add(ngC)
			},
			want: []csp.Nogood{ngC},
		},
		{
			name: "cap of one keeps only the newest",
			ret:  Retention{Kind: RetainLRU, Cap: 1},
			run: func(s *Store) {
				s.Add(ngA)
				s.Add(ngB)
				s.Add(ngC)
			},
			want: []csp.Nogood{ngC},
		},
		{
			name: "zero cap is learn-and-forget",
			ret:  Retention{Kind: RetainLRU, Cap: 0},
			run: func(s *Store) {
				if !s.Add(ngA) {
					t.Error("zero-cap Add returned false; the learning event still happened")
				}
				s.Add(ngB)
			},
			want: nil,
		},
		{
			name: "activity cap applies too",
			ret:  Retention{Kind: RetainActivity, Cap: 2},
			run: func(s *Store) {
				s.Add(ngA)
				s.Add(ngB)
				s.Add(ngC)
				s.Add(ngD)
			},
			want: []csp.Nogood{ngC, ngD},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := NewRetention(tc.ret)
			tc.run(s)
			if s.LearnedLen() > tc.ret.Cap {
				t.Fatalf("learned population %d exceeds cap %d", s.LearnedLen(), tc.ret.Cap)
			}
			got := s.Learned()
			if len(got) != len(tc.want) {
				t.Fatalf("surviving = %v, want %v", got, tc.want)
			}
			for i := range got {
				if !got[i].Equal(tc.want[i]) {
					t.Fatalf("survivor %d = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
}

// TestPinnedNeverEvicted pins the cap semantics: pinned entries are exempt
// from the cap and never chosen as victims, so a store holds at most
// pinned+cap nogoods and never fewer pinned than it was seeded with.
func TestPinnedNeverEvicted(t *testing.T) {
	pinnedNGs := []csp.Nogood{
		csp.MustNogood(lit(0, 0), lit(1, 0)),
		csp.MustNogood(lit(1, 1), lit(2, 1)),
		csp.MustNogood(lit(2, 2), lit(3, 2)),
	}
	for _, ret := range []Retention{
		{Kind: RetainLRU, Cap: 2},
		{Kind: RetainActivity, Cap: 2},
		{Kind: RetainLRU, Cap: 0},
	} {
		s := NewFromSliceRetention(pinnedNGs, ret)
		for i := 0; i < 20; i++ {
			s.Add(csp.MustNogood(lit(csp.Var(4+i), 1)))
		}
		if s.PinnedLen() != len(pinnedNGs) {
			t.Fatalf("%v: pinned = %d, want %d", ret, s.PinnedLen(), len(pinnedNGs))
		}
		for _, ng := range pinnedNGs {
			if !s.Contains(ng) {
				t.Fatalf("%v: pinned nogood %v was evicted", ret, ng)
			}
		}
		if s.Len() > len(pinnedNGs)+ret.Cap {
			t.Fatalf("%v: store holds %d, want at most pinned+cap = %d",
				ret, s.Len(), len(pinnedNGs)+ret.Cap)
		}
		if want := int64(20 - ret.Cap); s.Evictions() != want {
			t.Fatalf("%v: evictions = %d, want %d", ret, s.Evictions(), want)
		}
	}
}

// TestAddPinnedPromotesDuplicate pins the seed/learn interleaving: a learned
// entry re-seeded as pinned is promoted in place and stops counting against
// the cap.
func TestAddPinnedPromotesDuplicate(t *testing.T) {
	s := NewRetention(Retention{Kind: RetainLRU, Cap: 1})
	ng := csp.MustNogood(lit(0, 1))
	if !s.Add(ng) {
		t.Fatal("Add returned false")
	}
	if s.AddPinned(ng) {
		t.Fatal("AddPinned of a duplicate returned true")
	}
	if s.PinnedLen() != 1 || s.LearnedLen() != 0 {
		t.Fatalf("after promotion: pinned=%d learned=%d, want 1/0", s.PinnedLen(), s.LearnedLen())
	}
	// The promoted entry no longer occupies the cap: a new learned nogood
	// fits without evicting it.
	s.Add(csp.MustNogood(lit(1, 1)))
	if !s.Contains(ng) || s.Len() != 2 || s.Evictions() != 0 {
		t.Fatalf("promotion did not exempt the entry from the cap: len=%d evictions=%d",
			s.Len(), s.Evictions())
	}
}

// TestEvictionDeterminism pins the tie-breaking contract: identical operation
// sequences produce identical stores, byte for byte, regardless of how many
// times or in what interleaving unrelated stores run — eviction consults
// only per-store logical clocks, never wall time or map order.
func TestEvictionDeterminism(t *testing.T) {
	build := func(ret Retention) string {
		s := NewRetention(ret)
		s.AddPinned(csp.MustNogood(lit(0, 0), lit(1, 0)))
		for i := 0; i < 40; i++ {
			s.Add(csp.MustNogood(lit(csp.Var(i%7), csp.Value(i%3)), lit(csp.Var(7+i%5), 1)))
			s.Bump(i % s.Len())
			if i%11 == 0 {
				s.AddPruning(csp.MustNogood(lit(csp.Var(i%7), csp.Value(i%3))), nil)
			}
		}
		out := ""
		for _, ng := range s.All() {
			out += ng.Key() + ";"
		}
		return fmt.Sprintf("%s ev=%d", out, s.Evictions())
	}
	for _, ret := range []Retention{
		{Kind: RetainLRU, Cap: 5},
		{Kind: RetainActivity, Cap: 5},
	} {
		first := build(ret)
		for rep := 0; rep < 3; rep++ {
			if got := build(ret); got != first {
				t.Fatalf("%v: run %d diverged:\n%s\nvs\n%s", ret, rep, got, first)
			}
		}
	}
}

// TestAddPruningPinnedTransfer pins the soundness rule for subsumption under
// bounded retention: when a learned subset replaces a pinned superset, the
// subset inherits the pin — evicting it later would silently drop the only
// entry prohibiting a problem constraint.
func TestAddPruningPinnedTransfer(t *testing.T) {
	s := NewRetention(Retention{Kind: RetainLRU, Cap: 1})
	super := csp.MustNogood(lit(0, 1), lit(1, 1))
	s.AddPinned(super)

	sub := csp.MustNogood(lit(0, 1))
	added, removed := s.AddPruning(sub, nil)
	if !added || removed != 1 {
		t.Fatalf("AddPruning = (%v, %d), want (true, 1)", added, removed)
	}
	if s.PinnedLen() != 1 || s.LearnedLen() != 0 {
		t.Fatalf("after transfer: pinned=%d learned=%d, want 1/0", s.PinnedLen(), s.LearnedLen())
	}
	// Flood with learned nogoods: the inheriting subset must survive.
	for i := 0; i < 10; i++ {
		s.Add(csp.MustNogood(lit(csp.Var(2+i), 1)))
	}
	if !s.Contains(sub) {
		t.Fatal("pin-inheriting subset was evicted")
	}

	// A subset replacing only learned supersets stays evictable.
	s2 := NewRetention(Retention{Kind: RetainLRU, Cap: 2})
	s2.Add(super)
	s2.AddPruning(sub, nil)
	if s2.PinnedLen() != 0 {
		t.Fatalf("learned-only transfer pinned %d entries, want 0", s2.PinnedLen())
	}
}

// TestGenTracksStructure pins the generation counter agents key their
// higher-priority caches on: any insert or removal changes Gen, and — the
// case a length comparison misses — an evict+insert pair that leaves Len
// unchanged still changes Gen.
func TestGenTracksStructure(t *testing.T) {
	s := NewRetention(Retention{Kind: RetainLRU, Cap: 1})
	g0 := s.Gen()
	s.Add(csp.MustNogood(lit(0, 1)))
	g1 := s.Gen()
	if g1 == g0 {
		t.Fatal("Add did not advance Gen")
	}
	lenBefore := s.Len()
	s.Add(csp.MustNogood(lit(1, 1))) // evict+insert: length unchanged
	if s.Len() != lenBefore {
		t.Fatalf("evict+insert changed Len %d -> %d; test premise broken", lenBefore, s.Len())
	}
	if s.Gen() == g1 {
		t.Fatal("evict+insert left Gen unchanged — stale position caches would survive")
	}
	// Duplicates are not structural changes.
	g2 := s.Gen()
	s.Add(csp.MustNogood(lit(1, 1)))
	if s.Gen() != g2 {
		t.Fatal("duplicate Add advanced Gen")
	}
}

// TestEvictionTelemetry pins the PR-5 surfacing: the size gauge tracks the
// bounded store through eviction churn (never exceeding pinned+cap) and the
// evictions counter matches Store.Evictions.
func TestEvictionTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	size := reg.Gauge("store")
	lens := reg.Histogram("len", telemetry.NogoodLenBuckets)
	evs := reg.Counter("evictions")

	s := NewFromSliceRetention([]csp.Nogood{csp.MustNogood(lit(0, 0), lit(1, 0))},
		Retention{Kind: RetainActivity, Cap: 3})
	s.Instrument(telemetry.StoreMetrics{Size: size, Lengths: lens, Evictions: evs})
	cap := 1 + 3 // pinned + cap
	for i := 0; i < 25; i++ {
		s.Add(csp.MustNogood(lit(csp.Var(i%9), csp.Value(i%4)), lit(csp.Var(9+i%4), 0)))
		if size.Value() != int64(s.Len()) {
			t.Fatalf("step %d: gauge=%d store=%d", i, size.Value(), s.Len())
		}
		if size.Value() > int64(cap) {
			t.Fatalf("step %d: gauge %d exceeds pinned+cap %d", i, size.Value(), cap)
		}
	}
	if evs.Value() != s.Evictions() {
		t.Fatalf("evictions counter=%d, store=%d", evs.Value(), s.Evictions())
	}
	if evs.Value() == 0 {
		t.Fatal("no evictions recorded; test exercised nothing")
	}
}

// TestStateRoundTripRetention pins the checkpoint path for bounded stores:
// State/RestoreState reproduces the retention metadata exactly, so a
// restored store makes the same future eviction decisions as one that never
// crashed.
func TestStateRoundTripRetention(t *testing.T) {
	for _, ret := range []Retention{
		{Kind: RetainLRU, Cap: 3},
		{Kind: RetainActivity, Cap: 3},
	} {
		t.Run(ret.String(), func(t *testing.T) {
			mutate := func(s *Store, from, to int) {
				for i := from; i < to; i++ {
					s.Add(csp.MustNogood(lit(csp.Var(i%8), csp.Value(i%3)), lit(csp.Var(8+i%3), 1)))
					s.Bump(i % s.Len())
				}
			}
			live := NewFromSliceRetention([]csp.Nogood{csp.MustNogood(lit(0, 0), lit(1, 0))}, ret)
			mutate(live, 0, 12)
			st := live.State()

			restored := NewRetention(ret)
			restored.RestoreState(st)

			// Divergence check: drive both stores through the same suffix of
			// operations and require identical contents and eviction counts.
			mutate(live, 12, 30)
			mutate(restored, 12, 30)
			if live.Len() != restored.Len() || live.Evictions() != restored.Evictions() {
				t.Fatalf("diverged: live len=%d ev=%d, restored len=%d ev=%d",
					live.Len(), live.Evictions(), restored.Len(), restored.Evictions())
			}
			for i := 0; i < live.Len(); i++ {
				if !live.At(i).Equal(restored.At(i)) {
					t.Fatalf("position %d: live %v, restored %v", i, live.At(i), restored.At(i))
				}
			}
			if live.PinnedLen() != restored.PinnedLen() {
				t.Fatalf("pinned: live %d, restored %d", live.PinnedLen(), restored.PinnedLen())
			}
		})
	}
}

// TestRestoreAfterEvictionChurn extends TestRestoreAfterPruningChurn to
// bounded stores: a legacy Restore into a store whose positions have been
// shifted by eviction churn must rebuild every index correctly (no drift
// between the nogood slice, the key index, and the posting lists) and pin
// the restored entries, and a State round-trip through the same churn must
// keep the structural indexes driving pruning correctly.
func TestRestoreAfterEvictionChurn(t *testing.T) {
	s := NewRetention(Retention{Kind: RetainLRU, Cap: 4})
	s.AddPinned(csp.MustNogood(lit(0, 1), lit(1, 0), lit(2, 0)))
	for i := 0; i < 12; i++ {
		s.Add(csp.MustNogood(lit(csp.Var(i%6), 1), lit(csp.Var(6+i%4), csp.Value(i%2))))
		s.Bump(i % s.Len())
	}
	if s.Evictions() == 0 {
		t.Fatal("setup produced no evictions")
	}
	snap := s.Snapshot()

	// Churn past the snapshot, then legacy-restore.
	for i := 0; i < 9; i++ {
		s.Add(csp.MustNogood(lit(csp.Var(10+i), 0)))
	}
	s.Restore(snap)
	if s.Len() != len(snap) {
		t.Fatalf("restored Len=%d, want %d", s.Len(), len(snap))
	}
	for i, ng := range snap {
		if !s.At(i).Equal(ng) || !s.Contains(ng) {
			t.Fatalf("restored position %d holds %v, want %v", i, s.At(i), ng)
		}
	}
	// Legacy restore pins conservatively: nothing is evictable, so further
	// adds under the cap never remove restored entries.
	if s.PinnedLen() != s.Len() {
		t.Fatalf("legacy Restore pinned %d of %d", s.PinnedLen(), s.Len())
	}
	s.Add(csp.MustNogood(lit(20, 0)))
	for _, ng := range snap {
		if !s.Contains(ng) {
			t.Fatalf("restored entry %v evicted after legacy Restore", ng)
		}
	}

	// The rebuilt indexes must drive pruning over restored contents: a
	// 1-literal subset of the pinned 3-literal seed removes it and inherits
	// the pin, exactly once, with the reference scan charged.
	var c Counter
	added, removed := s.AddPruning(csp.MustNogood(lit(0, 1)), &c)
	if !added || removed < 1 {
		t.Fatalf("AddPruning after restore: added=%v removed=%d", added, removed)
	}
	if c.Total() != int64(s.Len()+removed-1) {
		t.Fatalf("AddPruning charged %d, want %d (reference scan of pre-insert store)",
			c.Total(), s.Len()+removed-1)
	}
}
