package nogood

import (
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/telemetry"
)

// TestStoreInstrumentTracksSize pins the telemetry hooks: the size gauge
// follows inserts, pruning removals, and restores, and the length histogram
// observes each newly learned nogood exactly once.
func TestStoreInstrumentTracksSize(t *testing.T) {
	reg := telemetry.NewRegistry()
	size := reg.Gauge("store")
	lens := reg.Histogram("len", telemetry.NogoodLenBuckets)

	s := New()
	s.Add(csp.MustNogood(lit(0, 1)))
	s.Instrument(telemetry.StoreMetrics{Size: size, Lengths: lens})
	if size.Value() != 1 {
		t.Fatalf("gauge after Instrument = %d, want 1 (pre-existing nogood)", size.Value())
	}
	if lens.Count() != 0 {
		t.Fatalf("histogram observed %d pre-existing nogoods, want 0", lens.Count())
	}

	s.Add(csp.MustNogood(lit(1, 0), lit(2, 0)))
	if size.Value() != 2 {
		t.Errorf("gauge after Add = %d, want 2", size.Value())
	}
	if lens.Count() != 1 || lens.Sum() != 2 {
		t.Errorf("histogram count=%d sum=%d after one 2-literal add, want 1/2", lens.Count(), lens.Sum())
	}

	// Duplicates do not move either metric.
	s.Add(csp.MustNogood(lit(1, 0), lit(2, 0)))
	if size.Value() != 2 || lens.Count() != 1 {
		t.Errorf("duplicate add moved metrics: gauge=%d histCount=%d", size.Value(), lens.Count())
	}

	// AddPruning drops the 2-literal superset when its 1-literal subset
	// arrives: gauge reflects the net size, histogram the new learning.
	var c Counter
	added, removed := s.AddPruning(csp.MustNogood(lit(1, 0)), &c)
	if !added || removed != 1 {
		t.Fatalf("AddPruning = (%v, %d), want (true, 1)", added, removed)
	}
	if size.Value() != int64(s.Len()) {
		t.Errorf("gauge after pruning = %d, store has %d", size.Value(), s.Len())
	}
	if lens.Count() != 2 {
		t.Errorf("histogram count after pruning add = %d, want 2", lens.Count())
	}
}

// TestStoreRestoreDoesNotDoubleCountLengths pins the crash-restart rule: a
// restored snapshot resets the gauge to the snapshot's size but replayed
// nogoods are not re-observed in the length histogram (they were counted
// when first learned).
func TestStoreRestoreDoesNotDoubleCountLengths(t *testing.T) {
	reg := telemetry.NewRegistry()
	size := reg.Gauge("store")
	lens := reg.Histogram("len", telemetry.NogoodLenBuckets)

	s := New()
	s.Instrument(telemetry.StoreMetrics{Size: size, Lengths: lens})
	s.Add(csp.MustNogood(lit(0, 1)))
	s.Add(csp.MustNogood(lit(1, 0), lit(2, 1)))
	snap := s.Snapshot()
	if lens.Count() != 2 {
		t.Fatalf("histogram count = %d before restore, want 2", lens.Count())
	}

	s.Add(csp.MustNogood(lit(3, 2)))
	s.Restore(snap)
	if size.Value() != 2 {
		t.Errorf("gauge after Restore = %d, want 2", size.Value())
	}
	if lens.Count() != 3 {
		t.Errorf("histogram count after Restore = %d, want 3 (replay must not re-observe)", lens.Count())
	}

	// The hook survives the restore: new learning is observed again.
	s.Add(csp.MustNogood(lit(4, 0)))
	if lens.Count() != 4 {
		t.Errorf("histogram count after post-restore Add = %d, want 4", lens.Count())
	}
	if size.Value() != 3 {
		t.Errorf("gauge after post-restore Add = %d, want 3", size.Value())
	}
}

// TestStoreUninstrumentedIsNilSafe pins the disabled configuration: every
// mutation path runs with nil hooks.
func TestStoreUninstrumentedIsNilSafe(t *testing.T) {
	s := New()
	s.Add(csp.MustNogood(lit(0, 1)))
	var c Counter
	s.AddPruning(csp.MustNogood(lit(1, 0)), &c)
	s.Restore(s.Snapshot())
	if s.Len() != 2 {
		t.Fatalf("store len = %d, want 2", s.Len())
	}
}
