// Package nogood provides the nogood store used by the learning algorithms:
// a deduplicated, insertion-ordered collection of nogoods with explicit
// check accounting.
//
// The paper's computational cost measure is the "nogood check": one
// evaluation of one nogood against an assignment (Section 4, the maxcck
// metric is built from per-cycle maxima of this count). Every evaluation
// path in this repository that models agent computation is therefore routed
// through a Counter so the cost accounting is total and auditable.
//
// The store's cost-model contract: structural indexes (the by-size buckets
// and per-variable posting lists) may make an operation's wall-clock cost
// cheaper, but every operation charges exactly the Counter units its
// unindexed reference implementation would — optimizations never skip or
// add charged checks. TestAddPruningCounterDelta pins this.
package nogood

import (
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/telemetry"
)

// Counter accumulates nogood checks. Agents own one Counter each; the
// simulator snapshots totals around each cycle to compute per-cycle maxima.
// The zero value is ready to use.
type Counter struct {
	total int64
}

// Add charges n checks.
func (c *Counter) Add(n int) { c.total += int64(n) }

// Total returns the number of checks charged so far.
func (c *Counter) Total() int64 { return c.total }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.total = 0 }

// Restore sets the counter to a previously observed total. It exists for
// crash-restart recovery (a restored agent resumes its check accounting
// where the checkpoint left it), not for algorithm code, which must only
// ever charge checks through Check/CheckDense/Add.
func (c *Counter) Restore(total int64) { c.total = total }

// Check evaluates ng against a, charging one check to c. This is the single
// costed evaluation primitive; algorithm code must use it (rather than
// calling Nogood.Violated directly) whenever the evaluation models agent
// computation. A nil counter performs the evaluation without accounting.
func Check(ng csp.Nogood, a csp.Assignment, c *Counter) bool {
	if c != nil {
		c.total++
	}
	return ng.Violated(a)
}

// CheckDense is Check specialized to a dense view: same accounting, but the
// evaluation never constructs an Assignment interface value, so a steady-
// state check performs zero allocations. Agent hot loops use this.
func CheckDense(ng csp.Nogood, d *csp.DenseView, c *Counter) bool {
	if c != nil {
		c.total++
	}
	return ng.ViolatedDense(d)
}

// Store is a deduplicated set of nogoods preserving insertion order. An AWC
// agent keeps one Store holding its initial constraints followed by every
// learned nogood it has recorded. The zero value is not usable; construct
// with New.
//
// Alongside the key index the store maintains two structural indexes,
// updated incrementally on insert and repaired in place (one merge walk per
// posting list) when pruning removes entries:
//
//   - bySize buckets positions by literal count, so AddPruning can prove
//     "no stored nogood can be a strict superset" without touching any
//     nogood;
//   - byVar posting lists map each variable (variables are dense small
//     ints, so the "map" is a slice grown on demand) to the positions of
//     the nogoods mentioning it, so superset candidates are found by
//     scanning one posting list instead of the whole store.
type Store struct {
	nogoods []csp.Nogood
	index   map[string]int
	byVar   [][]int // byVar[v] = positions of nogoods mentioning Var(v)
	bySize  [][]int // bySize[k] = positions of nogoods with Len() == k

	// Telemetry hooks, attached by Instrument. Both are nil in the
	// default (uninstrumented) configuration; the telemetry metric
	// methods no-op on nil receivers, so the store pays one branch per
	// mutation and nothing per check. The gauge is an atomic, which is
	// what lets the async runtimes' monitor goroutine sample store sizes
	// mid-run without racing agent goroutines.
	sizeGauge *telemetry.Gauge
	lenHist   *telemetry.Histogram
}

// Instrument attaches telemetry to the store: size tracks the live nogood
// count across inserts, prunes, and restores; lengths observes the literal
// count of each newly recorded nogood (for AWC, the resolvent-length
// distribution — initial constraints seeded before Instrument are not
// observed). Either argument may be nil.
func (s *Store) Instrument(size *telemetry.Gauge, lengths *telemetry.Histogram) {
	s.sizeGauge = size
	s.lenHist = lengths
	size.Set(int64(len(s.nogoods)))
}

// New returns an empty store.
func New() *Store {
	return &Store{index: make(map[string]int)}
}

// NewFromSlice returns a store seeded with ngs (duplicates collapse).
func NewFromSlice(ngs []csp.Nogood) *Store {
	s := &Store{
		nogoods: make([]csp.Nogood, 0, len(ngs)),
		index:   make(map[string]int, len(ngs)),
	}
	for _, ng := range ngs {
		s.Add(ng)
	}
	return s
}

// insert appends ng and updates every index incrementally. The caller has
// already established that ng is not a duplicate.
func (s *Store) insert(ng csp.Nogood) {
	pos := len(s.nogoods)
	s.nogoods = append(s.nogoods, ng)
	s.index[ng.Key()] = pos
	for i := 0; i < ng.Len(); i++ {
		v := int(ng.At(i).Var)
		for len(s.byVar) <= v {
			s.byVar = append(s.byVar, nil)
		}
		s.byVar[v] = append(s.byVar[v], pos)
	}
	size := ng.Len()
	for len(s.bySize) <= size {
		s.bySize = append(s.bySize, nil)
	}
	s.bySize[size] = append(s.bySize[size], pos)
	s.sizeGauge.Set(int64(len(s.nogoods)))
	s.lenHist.Observe(int64(ng.Len()))
}

// Add records ng unless an identical nogood is already present. It reports
// whether the nogood was newly added.
func (s *Store) Add(ng csp.Nogood) bool {
	if _, ok := s.index[ng.Key()]; ok {
		return false
	}
	s.insert(ng)
	return true
}

// Contains reports whether an identical nogood is present.
func (s *Store) Contains(ng csp.Nogood) bool {
	_, ok := s.index[ng.Key()]
	return ok
}

// Len returns the number of stored nogoods.
func (s *Store) Len() int { return len(s.nogoods) }

// At returns the i-th nogood in insertion order.
func (s *Store) At(i int) csp.Nogood { return s.nogoods[i] }

// All returns the underlying slice. Callers must treat it as read-only; it
// is exposed without copying because the AWC hot loop iterates it every
// cycle and nogoods are immutable.
func (s *Store) All() []csp.Nogood { return s.nogoods }

// Snapshot returns the stored nogoods in insertion order as a freshly
// allocated slice. Nogoods are immutable, so sharing them between the store
// and the snapshot is safe; the slice itself is a copy, so later inserts
// and prunes leave the snapshot untouched. Together with Restore this is
// the durable-state API crash-restart recovery checkpoints through.
func (s *Store) Snapshot() []csp.Nogood {
	cp := make([]csp.Nogood, len(s.nogoods))
	copy(cp, s.nogoods)
	return cp
}

// Restore replaces the store's entire contents with a snapshot, rebuilding
// every index. Charging: none — recovery replays state that was already
// paid for when first learned; re-charging it would double-count the
// paper's check metric across a restart.
func (s *Store) Restore(ngs []csp.Nogood) {
	s.nogoods = s.nogoods[:0]
	s.index = make(map[string]int, len(ngs))
	for i := range s.byVar {
		s.byVar[i] = s.byVar[i][:0]
	}
	for i := range s.bySize {
		s.bySize[i] = s.bySize[i][:0]
	}
	// Replayed nogoods were observed in the length histogram when first
	// learned; re-observing them across a restart would double-count, so
	// the histogram hook is parked for the replay. The size gauge is kept
	// live — it tracks current state, not accumulation.
	hist := s.lenHist
	s.lenHist = nil
	for _, ng := range ngs {
		if _, dup := s.index[ng.Key()]; dup {
			continue
		}
		s.insert(ng)
	}
	s.lenHist = hist
	s.sizeGauge.Set(int64(len(s.nogoods)))
}

// AddPruning inserts ng and discards stored strict supersets of it. It
// returns whether ng was added (false only for an exact duplicate) and how
// many stored nogoods were removed.
//
// Dropping a superset is sound: any assignment violating the superset also
// violates its subset, so the store keeps prohibiting at least the same
// assignments with fewer checks per scan. This implements the optimization
// the paper's Section 4.2 observation invites ("a large nogood is likely to
// become redundant after a smaller nogood is discovered. ... such redundant
// nogoods increase maxcck"); the operation charges one check per stored
// nogood — the cost of the reference linear subset scan — so the
// bookkeeping cost stays visible in the metric (see
// BenchmarkAblationSubsumption). The structural indexes only cut the
// wall-clock work: a strict superset of ng must be longer than ng (bySize
// rules that out wholesale when no longer nogood exists) and must mention
// every variable of ng (so only one posting list needs scanning); the
// charged units are Len() regardless.
//
// Deliberately NOT pruned: a new nogood that is itself subsumed by a
// recorded one. Rejecting those looks sound — the recipient already knows
// something stronger — but it removes the store growth AWC's progress
// argument rests on: a system state that regenerates the same rejected
// nogoods repeats verbatim, and runs livelock in priority-escalation
// cycles (observed on the single-solution family before this was fixed).
func (s *Store) AddPruning(ng csp.Nogood, c *Counter) (added bool, removed int) {
	if _, dup := s.index[ng.Key()]; dup {
		return false, 0
	}
	// Charge the reference scan: one check per stored nogood, exactly what
	// the unindexed implementation paid.
	if c != nil {
		c.Add(len(s.nogoods))
	}

	var doomed []int // positions of strict supersets, ascending
	if ng.Empty() {
		// The empty nogood subsumes everything.
		doomed = make([]int, len(s.nogoods))
		for i := range doomed {
			doomed[i] = i
		}
	} else if s.anyLongerThan(ng.Len()) {
		// Scan the shortest posting list among ng's variables: a strict
		// superset mentions every variable of ng, so any single list
		// contains all candidates. Posting lists are position-sorted, so
		// doomed stays ascending.
		for _, pos := range s.shortestPostingList(ng) {
			stored := s.nogoods[pos]
			if stored.Len() > ng.Len() && ng.SubsetOf(stored) {
				doomed = append(doomed, pos)
			}
		}
	}

	if len(doomed) == 0 {
		s.insert(ng)
		return true, 0
	}
	s.removeAt(doomed)
	s.insert(ng)
	return true, len(doomed)
}

// anyLongerThan reports whether any stored nogood has more than n literals,
// using the size buckets only.
func (s *Store) anyLongerThan(n int) bool {
	for size := n + 1; size < len(s.bySize); size++ {
		if len(s.bySize[size]) > 0 {
			return true
		}
	}
	return false
}

// shortestPostingList returns the positions of the nogoods mentioning the
// variable of ng with the fewest occurrences. ng must be non-empty.
func (s *Store) shortestPostingList(ng csp.Nogood) []int {
	best := s.postingList(ng.At(0).Var)
	for i := 1; i < ng.Len(); i++ {
		if list := s.postingList(ng.At(i).Var); len(list) < len(best) {
			best = list
		}
	}
	return best
}

// postingList returns the positions of the nogoods mentioning v; the slice
// is grown lazily, so a never-seen variable has an empty list.
func (s *Store) postingList(v csp.Var) []int {
	if int(v) >= len(s.byVar) {
		return nil
	}
	return s.byVar[v]
}

// removeAt deletes the nogoods at the given ascending positions, compacting
// the slice in place, and repairs the indexes: removed keys are deleted,
// survivors after the first removal get their shifted position written
// back, and the structural indexes are repaired in place.
func (s *Store) removeAt(doomed []int) {
	for _, pos := range doomed {
		delete(s.index, s.nogoods[pos].Key())
	}
	kept := s.nogoods[:doomed[0]]
	d := 0
	for pos := doomed[0]; pos < len(s.nogoods); pos++ {
		if d < len(doomed) && doomed[d] == pos {
			d++
			continue
		}
		s.index[s.nogoods[pos].Key()] = len(kept)
		kept = append(kept, s.nogoods[pos])
	}
	s.nogoods = kept
	s.repairStructural(doomed)
	s.sizeGauge.Set(int64(len(s.nogoods)))
}

// repairStructural drops the doomed positions (ascending) from every
// posting list and size bucket and shifts the survivors down, reusing each
// list's storage. Both the lists and doomed are position-sorted, so one
// merge walk per list does it — no per-literal map hashing, no
// reallocation; this keeps a pruning insert's uncharged bookkeeping near
// the cost of the compaction itself.
func (s *Store) repairStructural(doomed []int) {
	for v, list := range s.byVar {
		s.byVar[v] = shiftPositions(list, doomed)
	}
	for i, bucket := range s.bySize {
		s.bySize[i] = shiftPositions(bucket, doomed)
	}
}

// shiftPositions filters the ascending position list against the ascending
// doomed list in place: doomed positions drop out, survivors shift down by
// the number of doomed positions before them.
func shiftPositions(list, doomed []int) []int {
	kept := list[:0]
	d := 0
	for _, p := range list {
		for d < len(doomed) && doomed[d] < p {
			d++
		}
		if d < len(doomed) && doomed[d] == p {
			continue
		}
		kept = append(kept, p-d)
	}
	return kept
}

// AnyViolated reports whether any stored nogood is violated under a,
// charging one check per evaluated nogood (short-circuiting on the first
// violation, as an agent implementation would).
func (s *Store) AnyViolated(a csp.Assignment, c *Counter) bool {
	for _, ng := range s.nogoods {
		if Check(ng, a, c) {
			return true
		}
	}
	return false
}

// CountViolated returns how many stored nogoods are violated under a,
// charging one check each.
func (s *Store) CountViolated(a csp.Assignment, c *Counter) int {
	count := 0
	for _, ng := range s.nogoods {
		if Check(ng, a, c) {
			count++
		}
	}
	return count
}
