// Package nogood provides the nogood store used by the learning algorithms:
// a deduplicated, insertion-ordered collection of nogoods with explicit
// check accounting.
//
// The paper's computational cost measure is the "nogood check": one
// evaluation of one nogood against an assignment (Section 4, the maxcck
// metric is built from per-cycle maxima of this count). Every evaluation
// path in this repository that models agent computation is therefore routed
// through a Counter so the cost accounting is total and auditable.
//
// The store's cost-model contract: structural indexes (the by-size buckets
// and per-variable posting lists) may make an operation's wall-clock cost
// cheaper, but every operation charges exactly the Counter units its
// unindexed reference implementation would — optimizations never skip or
// add charged checks. TestAddPruningCounterDelta pins this.
package nogood

import (
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/telemetry"
)

// Counter accumulates nogood checks. Agents own one Counter each; the
// simulator snapshots totals around each cycle to compute per-cycle maxima.
// The zero value is ready to use.
type Counter struct {
	total int64
}

// Add charges n checks.
func (c *Counter) Add(n int) { c.total += int64(n) }

// Total returns the number of checks charged so far.
func (c *Counter) Total() int64 { return c.total }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.total = 0 }

// Restore sets the counter to a previously observed total. It exists for
// crash-restart recovery (a restored agent resumes its check accounting
// where the checkpoint left it), not for algorithm code, which must only
// ever charge checks through Check/CheckDense/Add.
func (c *Counter) Restore(total int64) { c.total = total }

// Check evaluates ng against a, charging one check to c. This is the single
// costed evaluation primitive; algorithm code must use it (rather than
// calling Nogood.Violated directly) whenever the evaluation models agent
// computation. A nil counter performs the evaluation without accounting.
func Check(ng csp.Nogood, a csp.Assignment, c *Counter) bool {
	if c != nil {
		c.total++
	}
	return ng.Violated(a)
}

// CheckDense is Check specialized to a dense view: same accounting, but the
// evaluation never constructs an Assignment interface value, so a steady-
// state check performs zero allocations. Agent hot loops use this.
func CheckDense(ng csp.Nogood, d *csp.DenseView, c *Counter) bool {
	if c != nil {
		c.total++
	}
	return ng.ViolatedDense(d)
}

// Store is a deduplicated set of nogoods preserving insertion order. An AWC
// agent keeps one Store holding its initial constraints followed by every
// learned nogood it has recorded. The zero value is not usable; construct
// with New.
//
// Alongside the key index the store maintains two structural indexes,
// updated incrementally on insert and repaired in place (one merge walk per
// posting list) when pruning removes entries:
//
//   - bySize buckets positions by literal count, so AddPruning can prove
//     "no stored nogood can be a strict superset" without touching any
//     nogood;
//   - byVar posting lists map each variable (variables are dense small
//     ints, so the "map" is a slice grown on demand) to the positions of
//     the nogoods mentioning it, so superset candidates are found by
//     scanning one posting list instead of the whole store.
type Store struct {
	nogoods []csp.Nogood
	index   map[string]int
	byVar   [][]int // byVar[v] = positions of nogoods mentioning Var(v)
	bySize  [][]int // bySize[k] = positions of nogoods with Len() == k

	// Retention state. meta is parallel to nogoods; pinnedLen counts the
	// pinned entries (initial constraints, never evicted, exempt from the
	// cap). clock is a logical timestamp advanced on every insert and Bump
	// — stamps are therefore unique, which is what makes eviction
	// tie-breaking deterministic at any worker count. gen increments on
	// every structural change (insert or removal) so callers caching
	// per-position derived state (the agents' higher-priority bitmaps)
	// can detect staleness; a bare length comparison cannot, because an
	// evict+insert pair leaves the length unchanged.
	ret       Retention
	meta      []entryMeta
	pinnedLen int
	clock     int64
	gen       int64
	evicted   int64

	// Telemetry hooks, attached by Instrument. All are nil in the
	// default (uninstrumented) configuration; the telemetry metric
	// methods no-op on nil receivers, so the store pays one branch per
	// mutation and nothing per check. The gauge is an atomic, which is
	// what lets the async runtimes' monitor goroutine sample store sizes
	// mid-run without racing agent goroutines.
	sizeGauge *telemetry.Gauge
	lenHist   *telemetry.Histogram
	evictCtr  *telemetry.Counter
}

// entryMeta is the per-nogood retention bookkeeping, parallel to
// Store.nogoods. None of it is consulted under RetainAll.
type entryMeta struct {
	pinned bool  // initial constraint: never evicted, exempt from cap
	stamp  int64 // logical time of insert or last Bump (unique)
	hits   int64 // violation hits recorded by Bump
}

// Instrument attaches telemetry to the store: Size tracks the live nogood
// count across inserts, prunes, evictions, and restores; Lengths observes
// the literal count of each newly recorded nogood (for AWC, the
// resolvent-length distribution — initial constraints seeded before
// Instrument are not observed); Evictions counts retention evictions. Any
// field may be nil.
func (s *Store) Instrument(m telemetry.StoreMetrics) {
	s.sizeGauge = m.Size
	s.lenHist = m.Lengths
	s.evictCtr = m.Evictions
	m.Size.Set(int64(len(s.nogoods)))
}

// New returns an empty unbounded store.
func New() *Store {
	return NewRetention(Retention{})
}

// NewRetention returns an empty store with the given retention policy.
func NewRetention(ret Retention) *Store {
	return &Store{index: make(map[string]int), ret: ret}
}

// NewFromSlice returns an unbounded store seeded with ngs (duplicates
// collapse). Seeds are pinned: they are the problem's own constraints.
func NewFromSlice(ngs []csp.Nogood) *Store {
	return NewFromSliceRetention(ngs, Retention{})
}

// NewFromSliceRetention returns a store with the given retention policy,
// seeded with ngs as pinned entries (duplicates collapse). Pinned entries
// are never evicted and do not count against the cap — forgetting an
// initial constraint would change the problem, not the search.
func NewFromSliceRetention(ngs []csp.Nogood, ret Retention) *Store {
	s := &Store{
		nogoods: make([]csp.Nogood, 0, len(ngs)),
		index:   make(map[string]int, len(ngs)),
		ret:     ret,
	}
	for _, ng := range ngs {
		s.AddPinned(ng)
	}
	return s
}

// Retention returns the store's retention policy.
func (s *Store) Retention() Retention { return s.ret }

// Gen returns the structural generation: it changes whenever the mapping
// from positions to nogoods may have changed (any insert or removal).
// Callers holding per-position caches compare generations, not lengths.
func (s *Store) Gen() int64 { return s.gen }

// LearnedLen returns the number of unpinned (learned) entries — the
// population the retention cap bounds.
func (s *Store) LearnedLen() int { return len(s.nogoods) - s.pinnedLen }

// PinnedLen returns the number of pinned entries.
func (s *Store) PinnedLen() int { return s.pinnedLen }

// Evictions returns the total number of retention evictions so far.
func (s *Store) Evictions() int64 { return s.evicted }

// tick advances the logical clock and returns the new stamp.
func (s *Store) tick() int64 {
	s.clock++
	return s.clock
}

// insert appends ng with the given retention metadata and updates every
// index incrementally. The caller has already established that ng is not a
// duplicate and enforces the cap afterwards if the insert was unpinned.
func (s *Store) insert(ng csp.Nogood, m entryMeta) {
	pos := len(s.nogoods)
	s.nogoods = append(s.nogoods, ng)
	s.meta = append(s.meta, m)
	if m.pinned {
		s.pinnedLen++
	}
	s.index[ng.Key()] = pos
	for i := 0; i < ng.Len(); i++ {
		v := int(ng.At(i).Var)
		for len(s.byVar) <= v {
			s.byVar = append(s.byVar, nil)
		}
		s.byVar[v] = append(s.byVar[v], pos)
	}
	size := ng.Len()
	for len(s.bySize) <= size {
		s.bySize = append(s.bySize, nil)
	}
	s.bySize[size] = append(s.bySize[size], pos)
	s.gen++
	s.sizeGauge.Set(int64(len(s.nogoods)))
	s.lenHist.Observe(int64(ng.Len()))
}

// Add records ng as a learned (evictable) nogood unless an identical one is
// already present. It reports whether the nogood was newly added — true
// even if the retention policy evicts it (or, under a zero cap, ng itself)
// immediately: the learning event happened and was observed.
func (s *Store) Add(ng csp.Nogood) bool {
	if _, ok := s.index[ng.Key()]; ok {
		return false
	}
	s.insert(ng, entryMeta{stamp: s.tick()})
	s.enforceCap()
	return true
}

// AddPinned records ng as a pinned entry: never evicted, exempt from the
// retention cap. Initial constraints are seeded this way. If an identical
// nogood is already present it is promoted to pinned and false is
// returned.
func (s *Store) AddPinned(ng csp.Nogood) bool {
	if pos, ok := s.index[ng.Key()]; ok {
		if !s.meta[pos].pinned {
			s.meta[pos].pinned = true
			s.pinnedLen++
		}
		return false
	}
	s.insert(ng, entryMeta{pinned: true, stamp: s.tick()})
	return true
}

// Bump records that the nogood at pos fired during a consistency check:
// it refreshes the entry's recency stamp and increments its hit count,
// feeding the LRU and activity eviction orders. No-op under RetainAll, so
// the reference configuration pays one branch. Bump is uncharged — it is
// bookkeeping about a check that was already charged by Check/CheckDense.
func (s *Store) Bump(pos int) {
	if s.ret.Kind == RetainAll {
		return
	}
	m := &s.meta[pos]
	m.stamp = s.tick()
	m.hits++
}

// enforceCap evicts learned entries until the learned population fits the
// cap. Eviction charges no checks: choosing a victim reads bookkeeping the
// store maintains anyway, and the paper's metric counts constraint
// evaluations, not memory management (DESIGN.md §11 discusses why — the
// *cost* of forgetting shows up as re-derivation checks, which are
// charged). Victim choice is fully deterministic: stamps are unique, and
// the final position tie-break is unreachable in practice but keeps the
// order total.
func (s *Store) enforceCap() {
	if !s.ret.Bounded() {
		return
	}
	for s.LearnedLen() > s.ret.Cap {
		victim := s.chooseVictim()
		if victim < 0 {
			return
		}
		s.removeAt([]int{victim})
		s.evicted++
		s.evictCtr.Inc()
	}
}

// chooseVictim returns the position of the next entry to evict, or -1 if
// every entry is pinned.
func (s *Store) chooseVictim() int {
	best := -1
	for i := range s.meta {
		if s.meta[i].pinned {
			continue
		}
		if best < 0 || s.evictBefore(i, best) {
			best = i
		}
	}
	return best
}

// evictBefore reports whether entry i is a better eviction victim than
// entry j under the store's policy. LRU: smallest stamp (least recently
// inserted or bumped). Activity: fewest hits, then longest nogood (least
// general), then smallest stamp. Stamps are unique so the comparison is a
// total order; the position fallback is belt-and-braces.
func (s *Store) evictBefore(i, j int) bool {
	a, b := s.meta[i], s.meta[j]
	switch s.ret.Kind {
	case RetainActivity:
		if a.hits != b.hits {
			return a.hits < b.hits
		}
		if li, lj := s.nogoods[i].Len(), s.nogoods[j].Len(); li != lj {
			return li > lj
		}
		fallthrough
	default: // RetainLRU
		if a.stamp != b.stamp {
			return a.stamp < b.stamp
		}
	}
	return i < j
}

// Contains reports whether an identical nogood is present.
func (s *Store) Contains(ng csp.Nogood) bool {
	_, ok := s.index[ng.Key()]
	return ok
}

// Len returns the number of stored nogoods.
func (s *Store) Len() int { return len(s.nogoods) }

// At returns the i-th nogood in insertion order.
func (s *Store) At(i int) csp.Nogood { return s.nogoods[i] }

// All returns the underlying slice. Callers must treat it as read-only; it
// is exposed without copying because the AWC hot loop iterates it every
// cycle and nogoods are immutable.
func (s *Store) All() []csp.Nogood { return s.nogoods }

// Learned returns the unpinned (learned) entries in insertion order as a
// fresh slice: the surviving knowledge a warm-start cache harvests after a
// run. Pinned entries are the problem's own constraints and are excluded —
// the target problem supplies its own.
func (s *Store) Learned() []csp.Nogood {
	out := make([]csp.Nogood, 0, s.LearnedLen())
	for i, ng := range s.nogoods {
		if !s.meta[i].pinned {
			out = append(out, ng)
		}
	}
	return out
}

// Snapshot returns the stored nogoods in insertion order as a freshly
// allocated slice. Nogoods are immutable, so sharing them between the store
// and the snapshot is safe; the slice itself is a copy, so later inserts
// and prunes leave the snapshot untouched. Together with Restore this is
// the durable-state API crash-restart recovery checkpoints through.
// Bounded stores should checkpoint through State/RestoreState instead,
// which also carry the retention metadata.
func (s *Store) Snapshot() []csp.Nogood {
	cp := make([]csp.Nogood, len(s.nogoods))
	copy(cp, s.nogoods)
	return cp
}

// Restore replaces the store's entire contents with a snapshot, rebuilding
// every index. Charging: none — recovery replays state that was already
// paid for when first learned; re-charging it would double-count the
// paper's check metric across a restart.
//
// Restored entries are conservatively pinned: a bare nogood slice does not
// say which entries were initial constraints, and evicting an initial
// constraint would be unsound, so a plain Restore trades eviction
// eligibility for safety. Checkpoints that must round-trip retention
// bookkeeping use State/RestoreState.
func (s *Store) Restore(ngs []csp.Nogood) {
	s.reset(len(ngs))
	// Replayed nogoods were observed in the length histogram when first
	// learned; re-observing them across a restart would double-count, so
	// the histogram hook is parked for the replay. The size gauge is kept
	// live — it tracks current state, not accumulation.
	hist := s.lenHist
	s.lenHist = nil
	for _, ng := range ngs {
		if _, dup := s.index[ng.Key()]; dup {
			continue
		}
		s.insert(ng, entryMeta{pinned: true, stamp: s.tick()})
	}
	s.lenHist = hist
	s.sizeGauge.Set(int64(len(s.nogoods)))
}

// reset empties the store in place, keeping allocated index storage.
func (s *Store) reset(sizeHint int) {
	s.nogoods = s.nogoods[:0]
	s.meta = s.meta[:0]
	s.pinnedLen = 0
	s.index = make(map[string]int, sizeHint)
	for i := range s.byVar {
		s.byVar[i] = s.byVar[i][:0]
	}
	for i := range s.bySize {
		s.bySize[i] = s.bySize[i][:0]
	}
	s.gen++
}

// State is the store's complete checkpointable state: the nogoods plus the
// retention metadata needed to resume eviction decisions exactly where the
// checkpoint left them. The parallel slices (Pinned/Stamps/Hits) index
// Nogoods.
type State struct {
	Nogoods []csp.Nogood
	Pinned  []bool
	Stamps  []int64
	Hits    []int64
	Clock   int64
	Evicted int64
}

// State captures the store's full state, including retention metadata.
// Like Snapshot, the returned slices are fresh copies.
func (s *Store) State() State {
	st := State{
		Nogoods: make([]csp.Nogood, len(s.nogoods)),
		Pinned:  make([]bool, len(s.meta)),
		Stamps:  make([]int64, len(s.meta)),
		Hits:    make([]int64, len(s.meta)),
		Clock:   s.clock,
		Evicted: s.evicted,
	}
	copy(st.Nogoods, s.nogoods)
	for i, m := range s.meta {
		st.Pinned[i] = m.pinned
		st.Stamps[i] = m.stamp
		st.Hits[i] = m.hits
	}
	return st
}

// RestoreState replaces the store's contents with a State, rebuilding every
// index and resuming the retention clock. Charging and histogram parking
// follow Restore: recovery replays already-paid-for state. The retention
// policy itself is not part of the state — it belongs to the store (the
// run's configuration), not the checkpoint.
func (s *Store) RestoreState(st State) {
	s.reset(len(st.Nogoods))
	hist := s.lenHist
	s.lenHist = nil
	for i, ng := range st.Nogoods {
		if _, dup := s.index[ng.Key()]; dup {
			continue
		}
		m := entryMeta{}
		if i < len(st.Pinned) {
			m.pinned = st.Pinned[i]
		}
		if i < len(st.Stamps) {
			m.stamp = st.Stamps[i]
		}
		if i < len(st.Hits) {
			m.hits = st.Hits[i]
		}
		s.insert(ng, m)
	}
	s.lenHist = hist
	s.clock = st.Clock
	s.evicted = st.Evicted
	s.sizeGauge.Set(int64(len(s.nogoods)))
}

// AddPruning inserts ng and discards stored strict supersets of it. It
// returns whether ng was added (false only for an exact duplicate) and how
// many stored nogoods were removed.
//
// Dropping a superset is sound: any assignment violating the superset also
// violates its subset, so the store keeps prohibiting at least the same
// assignments with fewer checks per scan. This implements the optimization
// the paper's Section 4.2 observation invites ("a large nogood is likely to
// become redundant after a smaller nogood is discovered. ... such redundant
// nogoods increase maxcck"); the operation charges one check per stored
// nogood — the cost of the reference linear subset scan — so the
// bookkeeping cost stays visible in the metric (see
// BenchmarkAblationSubsumption). The structural indexes only cut the
// wall-clock work: a strict superset of ng must be longer than ng (bySize
// rules that out wholesale when no longer nogood exists) and must mention
// every variable of ng (so only one posting list needs scanning); the
// charged units are Len() regardless.
//
// Deliberately NOT pruned: a new nogood that is itself subsumed by a
// recorded one. Rejecting those looks sound — the recipient already knows
// something stronger — but it removes the store growth AWC's progress
// argument rests on: a system state that regenerates the same rejected
// nogoods repeats verbatim, and runs livelock in priority-escalation
// cycles (observed on the single-solution family before this was fixed).
func (s *Store) AddPruning(ng csp.Nogood, c *Counter) (added bool, removed int) {
	if _, dup := s.index[ng.Key()]; dup {
		return false, 0
	}
	// Charge the reference scan: one check per stored nogood, exactly what
	// the unindexed implementation paid.
	if c != nil {
		c.Add(len(s.nogoods))
	}

	var doomed []int // positions of strict supersets, ascending
	if ng.Empty() {
		// The empty nogood subsumes everything.
		doomed = make([]int, len(s.nogoods))
		for i := range doomed {
			doomed[i] = i
		}
	} else if s.anyLongerThan(ng.Len()) {
		// Scan the shortest posting list among ng's variables: a strict
		// superset mentions every variable of ng, so any single list
		// contains all candidates. Posting lists are position-sorted, so
		// doomed stays ascending.
		for _, pos := range s.shortestPostingList(ng) {
			stored := s.nogoods[pos]
			if stored.Len() > ng.Len() && ng.SubsetOf(stored) {
				doomed = append(doomed, pos)
			}
		}
	}

	if len(doomed) == 0 {
		s.insert(ng, entryMeta{stamp: s.tick()})
		s.enforceCap()
		return true, 0
	}
	// Pinnedness transfers: if any doomed superset was an initial
	// constraint, the subsuming subset inherits its pinned status —
	// otherwise a later eviction of the subset would silently drop a
	// problem constraint, which is unsound (the subset is the only
	// remaining entry prohibiting those assignments).
	pinned := false
	for _, pos := range doomed {
		if s.meta[pos].pinned {
			pinned = true
			break
		}
	}
	s.removeAt(doomed)
	s.insert(ng, entryMeta{pinned: pinned, stamp: s.tick()})
	if !pinned {
		s.enforceCap()
	}
	return true, len(doomed)
}

// anyLongerThan reports whether any stored nogood has more than n literals,
// using the size buckets only.
func (s *Store) anyLongerThan(n int) bool {
	for size := n + 1; size < len(s.bySize); size++ {
		if len(s.bySize[size]) > 0 {
			return true
		}
	}
	return false
}

// shortestPostingList returns the positions of the nogoods mentioning the
// variable of ng with the fewest occurrences. ng must be non-empty.
func (s *Store) shortestPostingList(ng csp.Nogood) []int {
	best := s.postingList(ng.At(0).Var)
	for i := 1; i < ng.Len(); i++ {
		if list := s.postingList(ng.At(i).Var); len(list) < len(best) {
			best = list
		}
	}
	return best
}

// postingList returns the positions of the nogoods mentioning v; the slice
// is grown lazily, so a never-seen variable has an empty list.
func (s *Store) postingList(v csp.Var) []int {
	if int(v) >= len(s.byVar) {
		return nil
	}
	return s.byVar[v]
}

// removeAt deletes the nogoods at the given ascending positions, compacting
// the slice in place, and repairs the indexes: removed keys are deleted,
// survivors after the first removal get their shifted position written
// back, and the structural indexes are repaired in place.
func (s *Store) removeAt(doomed []int) {
	for _, pos := range doomed {
		delete(s.index, s.nogoods[pos].Key())
		if s.meta[pos].pinned {
			s.pinnedLen--
		}
	}
	kept := s.nogoods[:doomed[0]]
	keptMeta := s.meta[:doomed[0]]
	d := 0
	for pos := doomed[0]; pos < len(s.nogoods); pos++ {
		if d < len(doomed) && doomed[d] == pos {
			d++
			continue
		}
		s.index[s.nogoods[pos].Key()] = len(kept)
		kept = append(kept, s.nogoods[pos])
		keptMeta = append(keptMeta, s.meta[pos])
	}
	s.nogoods = kept
	s.meta = keptMeta
	s.repairStructural(doomed)
	s.gen++
	s.sizeGauge.Set(int64(len(s.nogoods)))
}

// repairStructural drops the doomed positions (ascending) from every
// posting list and size bucket and shifts the survivors down, reusing each
// list's storage. Both the lists and doomed are position-sorted, so one
// merge walk per list does it — no per-literal map hashing, no
// reallocation; this keeps a pruning insert's uncharged bookkeeping near
// the cost of the compaction itself.
func (s *Store) repairStructural(doomed []int) {
	for v, list := range s.byVar {
		s.byVar[v] = shiftPositions(list, doomed)
	}
	for i, bucket := range s.bySize {
		s.bySize[i] = shiftPositions(bucket, doomed)
	}
}

// shiftPositions filters the ascending position list against the ascending
// doomed list in place: doomed positions drop out, survivors shift down by
// the number of doomed positions before them.
func shiftPositions(list, doomed []int) []int {
	kept := list[:0]
	d := 0
	for _, p := range list {
		for d < len(doomed) && doomed[d] < p {
			d++
		}
		if d < len(doomed) && doomed[d] == p {
			continue
		}
		kept = append(kept, p-d)
	}
	return kept
}

// AnyViolated reports whether any stored nogood is violated under a,
// charging one check per evaluated nogood (short-circuiting on the first
// violation, as an agent implementation would). A hit bumps the violated
// entry's retention activity.
func (s *Store) AnyViolated(a csp.Assignment, c *Counter) bool {
	for pos, ng := range s.nogoods {
		if Check(ng, a, c) {
			s.Bump(pos)
			return true
		}
	}
	return false
}

// CountViolated returns how many stored nogoods are violated under a,
// charging one check each and bumping each violated entry's retention
// activity.
func (s *Store) CountViolated(a csp.Assignment, c *Counter) int {
	count := 0
	for pos, ng := range s.nogoods {
		if Check(ng, a, c) {
			s.Bump(pos)
			count++
		}
	}
	return count
}
