// Package nogood provides the nogood store used by the learning algorithms:
// a deduplicated, insertion-ordered collection of nogoods with explicit
// check accounting.
//
// The paper's computational cost measure is the "nogood check": one
// evaluation of one nogood against an assignment (Section 4, the maxcck
// metric is built from per-cycle maxima of this count). Every evaluation
// path in this repository that models agent computation is therefore routed
// through a Counter so the cost accounting is total and auditable.
package nogood

import (
	"github.com/discsp/discsp/internal/csp"
)

// Counter accumulates nogood checks. Agents own one Counter each; the
// simulator snapshots totals around each cycle to compute per-cycle maxima.
// The zero value is ready to use.
type Counter struct {
	total int64
}

// Add charges n checks.
func (c *Counter) Add(n int) { c.total += int64(n) }

// Total returns the number of checks charged so far.
func (c *Counter) Total() int64 { return c.total }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.total = 0 }

// Check evaluates ng against a, charging one check to c. This is the single
// costed evaluation primitive; algorithm code must use it (rather than
// calling Nogood.Violated directly) whenever the evaluation models agent
// computation. A nil counter performs the evaluation without accounting.
func Check(ng csp.Nogood, a csp.Assignment, c *Counter) bool {
	if c != nil {
		c.total++
	}
	return ng.Violated(a)
}

// Store is a deduplicated set of nogoods preserving insertion order. An AWC
// agent keeps one Store holding its initial constraints followed by every
// learned nogood it has recorded. The zero value is not usable; construct
// with New.
type Store struct {
	nogoods []csp.Nogood
	index   map[string]int
}

// New returns an empty store.
func New() *Store {
	return &Store{index: make(map[string]int)}
}

// NewFromSlice returns a store seeded with ngs (duplicates collapse).
func NewFromSlice(ngs []csp.Nogood) *Store {
	s := &Store{
		nogoods: make([]csp.Nogood, 0, len(ngs)),
		index:   make(map[string]int, len(ngs)),
	}
	for _, ng := range ngs {
		s.Add(ng)
	}
	return s
}

// Add records ng unless an identical nogood is already present. It reports
// whether the nogood was newly added.
func (s *Store) Add(ng csp.Nogood) bool {
	key := ng.Key()
	if _, ok := s.index[key]; ok {
		return false
	}
	s.index[key] = len(s.nogoods)
	s.nogoods = append(s.nogoods, ng)
	return true
}

// Contains reports whether an identical nogood is present.
func (s *Store) Contains(ng csp.Nogood) bool {
	_, ok := s.index[ng.Key()]
	return ok
}

// Len returns the number of stored nogoods.
func (s *Store) Len() int { return len(s.nogoods) }

// At returns the i-th nogood in insertion order.
func (s *Store) At(i int) csp.Nogood { return s.nogoods[i] }

// All returns the underlying slice. Callers must treat it as read-only; it
// is exposed without copying because the AWC hot loop iterates it every
// cycle and nogoods are immutable.
func (s *Store) All() []csp.Nogood { return s.nogoods }

// AddPruning inserts ng and discards stored strict supersets of it. It
// returns whether ng was added (false only for an exact duplicate) and how
// many stored nogoods were removed.
//
// Dropping a superset is sound: any assignment violating the superset also
// violates its subset, so the store keeps prohibiting at least the same
// assignments with fewer checks per scan. This implements the optimization
// the paper's Section 4.2 observation invites ("a large nogood is likely to
// become redundant after a smaller nogood is discovered. ... such redundant
// nogoods increase maxcck"); each subset test costs one check on c, the
// same unit as an evaluation, so the bookkeeping cost stays visible in the
// metric (see BenchmarkAblationSubsumption).
//
// Deliberately NOT pruned: a new nogood that is itself subsumed by a
// recorded one. Rejecting those looks sound — the recipient already knows
// something stronger — but it removes the store growth AWC's progress
// argument rests on: a system state that regenerates the same rejected
// nogoods repeats verbatim, and runs livelock in priority-escalation
// cycles (observed on the single-solution family before this was fixed).
func (s *Store) AddPruning(ng csp.Nogood, c *Counter) (added bool, removed int) {
	if _, dup := s.index[ng.Key()]; dup {
		return false, 0
	}
	// keep aliases the front of s.nogoods: it only ever writes at or before
	// the scan position, so the unscanned tail stays intact.
	keep := s.nogoods[:0]
	for i := 0; i < len(s.nogoods); i++ {
		stored := s.nogoods[i]
		if c != nil {
			c.total++
		}
		if ng.SubsetOf(stored) {
			removed++
			continue
		}
		keep = append(keep, stored)
	}
	s.nogoods = append(keep, ng)
	s.reindex()
	return true, removed
}

// reindex rebuilds the key index after pruning.
func (s *Store) reindex() {
	for k := range s.index {
		delete(s.index, k)
	}
	for i, ng := range s.nogoods {
		s.index[ng.Key()] = i
	}
}

// AnyViolated reports whether any stored nogood is violated under a,
// charging one check per evaluated nogood (short-circuiting on the first
// violation, as an agent implementation would).
func (s *Store) AnyViolated(a csp.Assignment, c *Counter) bool {
	for _, ng := range s.nogoods {
		if Check(ng, a, c) {
			return true
		}
	}
	return false
}

// CountViolated returns how many stored nogoods are violated under a,
// charging one check each.
func (s *Store) CountViolated(a csp.Assignment, c *Counter) int {
	count := 0
	for _, ng := range s.nogoods {
		if Check(ng, a, c) {
			count++
		}
	}
	return count
}
