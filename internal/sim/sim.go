// Package sim implements the synchronous distributed-system simulator the
// paper runs its experiments on (Section 4): all agents repeatedly execute
// cycles in lockstep, where one cycle consists of reading the messages that
// arrived since the previous cycle, doing local computation, and sending
// messages that will be delivered at the start of the next cycle.
//
// The simulator measures the paper's two costs:
//
//   - cycle: cycles consumed until the global assignment first becomes a
//     solution (communication cost);
//   - maxcck: the sum over cycles of the maximum number of nogood checks any
//     single agent performed in that cycle (computation cost under ideal
//     parallelism).
//
// Solution detection is done out-of-band by the simulator (the distributed
// algorithms themselves do not detect global termination); it is not charged
// to any agent.
package sim

import (
	"fmt"
	"reflect"
	"sort"
	"strings"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
)

// AgentID identifies an agent. In the one-variable-per-agent setting agent i
// owns variable i, so AgentID values coincide with csp.Var values.
type AgentID int

// Message is one unit of communication between agents. Concrete message
// types are defined by each algorithm package (ok?, nogood, request for AWC;
// ok?, improve for DB).
type Message interface {
	// From is the sending agent.
	From() AgentID
	// To is the receiving agent.
	To() AgentID
}

// Agent is a participant in a synchronous run. Implementations must be
// deterministic: the same message batches in the same order must produce the
// same outputs, so that a run is reproducible from its seed.
type Agent interface {
	// ID returns the agent's identifier.
	ID() AgentID
	// Init performs the agent's startup step (initial value selection) and
	// returns its first outgoing messages. Called once, before cycle 1.
	Init() []Message
	// Step processes the batch of messages delivered this cycle and returns
	// outgoing messages. The batch is sorted by (sender, arrival order) and
	// may be empty for agents that received nothing.
	Step(in []Message) []Message
	// CurrentValue returns the agent's current variable value, for the
	// simulator's out-of-band solution check.
	CurrentValue() csp.Value
	// Checks returns the cumulative number of nogood checks this agent has
	// performed. The simulator differences this around each cycle.
	Checks() int64
}

// InsolubleReporter is implemented by agents of complete algorithms that can
// derive global insolubility (the empty nogood). The simulator polls it
// after every cycle and stops the run when any agent reports true.
type InsolubleReporter interface {
	Insoluble() bool
}

// Reannouncer is implemented by agents that can re-send their current
// assignment to one peer on demand. The networked runtime (internal/netrun)
// uses it when a peer's process relaunches with no memory: every frame the
// dead incarnation acknowledged is unrecoverable — both sides' buffers are
// gone — so the only way the fresh agent's empty view converges is for live
// neighbors to announce their values again. Agents that do not implement it
// still work under warm restarts (checkpoint restore and reconnection), but
// a cold peer relaunch can stall their runs.
type Reannouncer interface {
	// Reannounce returns the messages that restate this agent's current
	// assignment to peer, or nil when peer is not an announcement target.
	Reannounce(peer AgentID) []Message
}

// Checkpointer is implemented by agents whose durable state can be saved
// and replayed for crash-restart recovery (internal/faults, and the crash
// handling in internal/async and internal/netrun). Checkpoint returns a
// self-contained snapshot — current value, nogood store contents, check
// counter, agent view, and any protocol-phase state — that shares no
// mutable memory with the agent. Restore loads a snapshot produced by an
// agent of the same algorithm and problem onto the receiver (typically a
// freshly constructed instance standing in for a rebooted node), after
// which the agent must behave exactly as the checkpointed one would.
type Checkpointer interface {
	Checkpoint() any
	Restore(snapshot any) error
}

// DefaultMaxCycles is the paper's cutoff: trials are stopped after 10000
// cycles and their at-cutoff measurements are used (Section 4).
const DefaultMaxCycles = 10000

// Options configures a run.
type Options struct {
	// MaxCycles is the cutoff; 0 means DefaultMaxCycles.
	MaxCycles int
	// Trace, when non-nil, receives one event per cycle after delivery and
	// computation. Intended for debugging and the dcspsolve -v flag.
	Trace func(ev CycleEvent)
	// Causal, when non-nil, records one span per agent activation and
	// stamps every traced outgoing message with its trace ID (see
	// internal/causal). Nil disables tracing with zero overhead: the loop
	// holds nil handles and every tracing call returns immediately.
	Causal *causal.Tracer
}

// CycleEvent describes one completed cycle for tracing.
type CycleEvent struct {
	Cycle         int
	MessagesIn    int
	MessagesOut   int
	MaxChecks     int64
	SolutionFound bool
}

// Result reports a completed run.
type Result struct {
	// Solved reports whether a solution was reached within the cutoff.
	Solved bool
	// Cycles is the number of cycles consumed; at cutoff it equals the
	// cutoff value, mirroring the paper's "use the data at that time".
	Cycles int
	// MaxCCK is the maxcck metric: Σ_cycle max_agent checks(agent, cycle).
	MaxCCK int64
	// TotalChecks is Σ_agent checks(agent) over the whole run; not a paper
	// metric but useful for ablation analysis.
	TotalChecks int64
	// Messages is the total number of messages delivered.
	Messages int
	// MessagesByType breaks deliveries down by concrete message type name
	// (e.g. "core.Ok", "core.NogoodMsg") — the communication-cost profile.
	MessagesByType map[string]int
	// Insoluble reports that some agent derived the empty nogood, proving
	// no solution exists.
	Insoluble bool
	// Assignment is the final global assignment (the solution when Solved).
	Assignment csp.SliceAssignment
}

// Run executes agents against problem until a solution appears or the cutoff
// is hit. Agents must be in one-to-one correspondence with the problem's
// variables (agent i owns variable i); Run returns an error otherwise. For
// agents owning several variables (internal/multi), use RunAgents with a
// custom solved predicate.
func Run(problem *csp.Problem, agents []Agent, opts Options) (Result, error) {
	if len(agents) != problem.NumVars() {
		return Result{}, fmt.Errorf("sim: %d agents for %d variables", len(agents), problem.NumVars())
	}
	assignment := csp.NewSliceAssignment(problem.NumVars())
	res, err := RunAgents(agents, opts, func() bool {
		snapshot(agents, assignment)
		return problem.IsSolution(assignment)
	})
	res.Assignment = assignment
	return res, err
}

// RunAgents is the algorithm-agnostic cycle loop: solved is the out-of-band
// termination predicate, polled after startup and after every cycle. The
// Result's Assignment is left nil; callers reconstruct global state from
// their agents.
func RunAgents(agents []Agent, opts Options, solved func() bool) (Result, error) {
	for i, a := range agents {
		if int(a.ID()) != i {
			return Result{}, fmt.Errorf("sim: agent at index %d has id %d", i, a.ID())
		}
	}
	maxCycles := opts.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}

	var res Result
	prevChecks := make([]int64, len(agents))

	// Startup: every agent selects an initial value and emits its first
	// messages. Startup is not counted as a cycle (the paper counts cycles
	// of the message-driven loop), but its checks do count toward maxcck as
	// a cycle-0 contribution so no computation escapes accounting.
	// Per-agent tracing handles; all nil when tracing is off, so the loop
	// body's tracing calls are no-ops.
	var tracers []*causal.AgentTracer
	if opts.Causal != nil {
		tracers = make([]*causal.AgentTracer, len(agents))
		for i, a := range agents {
			tracers[i] = opts.Causal.Agent(int(a.ID()))
		}
	}
	tracerOf := func(i int) *causal.AgentTracer {
		if tracers == nil {
			return nil
		}
		return tracers[i]
	}

	inbox := make(map[AgentID][]Message)
	var startupMax int64
	for i, a := range agents {
		at := tracerOf(i)
		at.Begin(causal.SpanInit, 0)
		out := a.Init()
		stampBatch(at, out)
		at.End()
		route(inbox, out, len(agents))
		if c := a.Checks(); c > startupMax {
			startupMax = c
		}
	}
	for i, a := range agents {
		prevChecks[i] = a.Checks()
	}
	res.MaxCCK += startupMax

	if solved() {
		res.Solved = true
		finalizeTotals(&res, agents)
		return res, nil
	}
	if anyInsoluble(agents) {
		res.Insoluble = true
		finalizeTotals(&res, agents)
		return res, nil
	}

	for cycle := 1; cycle <= maxCycles; cycle++ {
		res.Cycles = cycle
		next := make(map[AgentID][]Message)
		messagesIn, messagesOut := 0, 0
		var maxDelta int64
		for i, a := range agents {
			in := sortBatch(inbox[a.ID()])
			messagesIn += len(in)
			for _, m := range in {
				if res.MessagesByType == nil {
					res.MessagesByType = make(map[string]int)
				}
				res.MessagesByType[TypeName(m)]++
			}
			at := tracerOf(i)
			at.Begin(causal.SpanStep, cycle)
			causeBatch(at, in)
			out := a.Step(in)
			stampBatch(at, out)
			at.End()
			messagesOut += len(out)
			route(next, out, len(agents))
			delta := a.Checks() - prevChecks[i]
			prevChecks[i] = a.Checks()
			if delta > maxDelta {
				maxDelta = delta
			}
		}
		res.MaxCCK += maxDelta
		res.Messages += messagesIn
		inbox = next

		done := solved()
		if opts.Trace != nil {
			opts.Trace(CycleEvent{
				Cycle:         cycle,
				MessagesIn:    messagesIn,
				MessagesOut:   messagesOut,
				MaxChecks:     maxDelta,
				SolutionFound: done,
			})
		}
		if done {
			res.Solved = true
			break
		}
		if anyInsoluble(agents) {
			res.Insoluble = true
			break
		}
		// Quiescence without a solution: no messages in flight means no
		// agent will ever act again. For a complete algorithm this only
		// happens when insolubility was derived; stop rather than spin to
		// the cutoff.
		if len(inbox) == 0 {
			break
		}
	}
	finalizeTotals(&res, agents)
	return res, nil
}

// route appends each message to its recipient's queue, validating the
// recipient. Panics on an out-of-range recipient: that is a bug in an
// algorithm implementation, not a runtime condition.
func route(inbox map[AgentID][]Message, out []Message, numAgents int) {
	for _, m := range out {
		to := m.To()
		if int(to) < 0 || int(to) >= numAgents {
			panic(fmt.Sprintf("sim: message %T addressed to unknown agent %d", m, to))
		}
		inbox[to] = append(inbox[to], m)
	}
}

// sortBatch orders a delivery batch by sender, preserving per-sender order.
// Agents are stepped in ID order so batches arrive already sender-sorted;
// the stable sort is a cheap determinism safeguard should that change.
func sortBatch(batch []Message) []Message {
	sort.SliceStable(batch, func(i, j int) bool { return batch[i].From() < batch[j].From() })
	return batch
}

// causeBatch records a delivery batch's trace IDs as causes of the open
// span. No-op on a nil handle.
func causeBatch(at *causal.AgentTracer, in []Message) {
	if at == nil {
		return
	}
	for _, m := range in {
		at.Cause(m)
	}
}

// stampBatch assigns trace IDs to an outgoing batch in place, recording
// each emission on the open span. No-op on a nil handle; messages that do
// not implement causal.Traced pass through unchanged.
func stampBatch(at *causal.AgentTracer, out []Message) {
	if at == nil {
		return
	}
	for i, m := range out {
		out[i] = at.Stamp(m, int(m.To()), TypeName(m)).(Message)
	}
}

// TypeName renders a message's concrete type as "pkg.Type" — the key used
// for per-kind delivery counts and causal emission records.
func TypeName(m Message) string {
	t := reflect.TypeOf(m)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if pkg := t.PkgPath(); pkg != "" {
		if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
			pkg = pkg[i+1:]
		}
		return pkg + "." + t.Name()
	}
	return t.String()
}

func anyInsoluble(agents []Agent) bool {
	for _, a := range agents {
		if r, ok := a.(InsolubleReporter); ok && r.Insoluble() {
			return true
		}
	}
	return false
}

func snapshot(agents []Agent, into csp.SliceAssignment) {
	for i, a := range agents {
		into[i] = a.CurrentValue()
	}
}

func finalizeTotals(res *Result, agents []Agent) {
	var total int64
	for _, a := range agents {
		total += a.Checks()
	}
	res.TotalChecks = total
}
