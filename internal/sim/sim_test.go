package sim

import (
	"testing"

	"github.com/discsp/discsp/internal/csp"
)

// testMsg is a minimal message for simulator tests.
type testMsg struct {
	from, to AgentID
	payload  csp.Value
}

func (m testMsg) From() AgentID { return m.from }
func (m testMsg) To() AgentID   { return m.to }

// scriptAgent adopts any payload it receives as its value and relays
// payloads per a script: on cycle c it sends script[c] (if present). It
// charges `charge` checks per Step call.
type scriptAgent struct {
	id        AgentID
	value     csp.Value
	charge    int64
	checks    int64
	sendInit  []Message
	onStep    func(cycle int, in []Message) []Message
	stepCount int
	received  [][]Message
	insoluble bool
}

func (a *scriptAgent) ID() AgentID { return a.id }
func (a *scriptAgent) Init() []Message {
	return a.sendInit
}
func (a *scriptAgent) Step(in []Message) []Message {
	a.stepCount++
	a.checks += a.charge
	cp := make([]Message, len(in))
	copy(cp, in)
	a.received = append(a.received, cp)
	for _, m := range in {
		if tm, ok := m.(testMsg); ok {
			a.value = tm.payload
		}
	}
	if a.onStep != nil {
		return a.onStep(a.stepCount, in)
	}
	return nil
}
func (a *scriptAgent) CurrentValue() csp.Value { return a.value }
func (a *scriptAgent) Checks() int64           { return a.checks }
func (a *scriptAgent) Insoluble() bool         { return a.insoluble }

// pairProblem: two Boolean variables that must be equal.
func pairProblem(t *testing.T) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: 0, Val: 0}, csp.Lit{Var: 1, Val: 1})); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 1, Val: 0})); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunAgentValidation(t *testing.T) {
	p := pairProblem(t)
	if _, err := Run(p, []Agent{&scriptAgent{id: 0}}, Options{}); err == nil {
		t.Error("Run accepted wrong agent count")
	}
	if _, err := Run(p, []Agent{&scriptAgent{id: 0}, &scriptAgent{id: 7}}, Options{}); err == nil {
		t.Error("Run accepted misnumbered agent")
	}
}

func TestRunImmediateSolution(t *testing.T) {
	p := pairProblem(t)
	agents := []Agent{
		&scriptAgent{id: 0, value: 1},
		&scriptAgent{id: 1, value: 1},
	}
	res, err := Run(p, agents, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Solved || res.Cycles != 0 {
		t.Errorf("Solved=%v Cycles=%d, want solved at startup", res.Solved, res.Cycles)
	}
}

func TestRunConvergence(t *testing.T) {
	p := pairProblem(t)
	// Agent 0 tells agent 1 its value at init; agent 1 adopts it on cycle 1.
	agents := []Agent{
		&scriptAgent{id: 0, value: 1, sendInit: []Message{testMsg{from: 0, to: 1, payload: 1}}},
		&scriptAgent{id: 1, value: 0},
	}
	res, err := Run(p, agents, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Solved || res.Cycles != 1 {
		t.Errorf("Solved=%v Cycles=%d, want solved at cycle 1", res.Solved, res.Cycles)
	}
	if res.Messages != 1 {
		t.Errorf("Messages = %d, want 1", res.Messages)
	}
	if v, _ := res.Assignment.Lookup(1); v != 1 {
		t.Errorf("final assignment x1 = %d, want 1", v)
	}
}

func TestRunCutoff(t *testing.T) {
	p := pairProblem(t)
	// Two agents ping-pong forever without ever agreeing: each Step
	// forwards a message and flips nothing.
	mk := func(id, peer AgentID, v csp.Value) *scriptAgent {
		a := &scriptAgent{id: id, value: v}
		a.sendInit = []Message{testMsg{from: id, to: peer, payload: v}}
		a.onStep = func(int, []Message) []Message {
			a.value = v // refuse to adopt
			return []Message{testMsg{from: id, to: peer, payload: v}}
		}
		return a
	}
	agents := []Agent{mk(0, 1, 0), mk(1, 0, 1)}
	res, err := Run(p, agents, Options{MaxCycles: 50})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Solved {
		t.Errorf("Solved = true, want cutoff")
	}
	if res.Cycles != 50 {
		t.Errorf("Cycles = %d, want 50 (cutoff)", res.Cycles)
	}
}

func TestRunQuiescenceStops(t *testing.T) {
	p := pairProblem(t)
	// Conflicting values, nobody ever sends anything: the run must stop at
	// the first empty-inbox cycle, not spin to the cutoff.
	agents := []Agent{
		&scriptAgent{id: 0, value: 0},
		&scriptAgent{id: 1, value: 1},
	}
	res, err := Run(p, agents, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Solved {
		t.Errorf("Solved = true for violated quiescent state")
	}
	if res.Cycles > 1 {
		t.Errorf("Cycles = %d, want quiescence stop at 1", res.Cycles)
	}
}

func TestRunInsolubleStops(t *testing.T) {
	p := pairProblem(t)
	a0 := &scriptAgent{id: 0, value: 0, sendInit: []Message{testMsg{from: 0, to: 1, payload: 0}}}
	a1 := &scriptAgent{id: 1, value: 1}
	// Agent 1 claims insolubility on its first step but keeps traffic
	// flowing so only the insolubility check can stop the run.
	a1.onStep = func(int, []Message) []Message {
		a1.insoluble = true
		a1.value = 1
		return []Message{testMsg{from: 1, to: 0, payload: 1}}
	}
	a0.onStep = func(int, []Message) []Message {
		a0.value = 0
		return []Message{testMsg{from: 0, to: 1, payload: 0}}
	}
	res, err := Run(p, []Agent{a0, a1}, Options{MaxCycles: 100})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Insoluble {
		t.Errorf("Insoluble = false")
	}
	if res.Cycles != 1 {
		t.Errorf("Cycles = %d, want 1", res.Cycles)
	}
}

func TestMaxCCKIsPerCycleMaximum(t *testing.T) {
	p := pairProblem(t)
	// Keep both agents active for exactly 3 cycles; charges 10 and 4 per
	// step. maxcck should add max(10,4)=10 per active cycle, not 14.
	var cycles = 3
	mk := func(id, peer AgentID, charge int64) *scriptAgent {
		a := &scriptAgent{id: id, charge: charge}
		a.sendInit = []Message{testMsg{from: id, to: peer, payload: 0}}
		a.onStep = func(step int, _ []Message) []Message {
			a.value = 1 // never solves: pairProblem needs equality... both become 1
			if step < cycles {
				return []Message{testMsg{from: id, to: peer, payload: 0}}
			}
			return nil
		}
		return a
	}
	// Values: both agents set value 1 → that's actually a solution for the
	// equality problem, stopping at cycle 1. Use conflicting fixed values.
	a0 := mk(0, 1, 10)
	a1 := mk(1, 0, 4)
	a0.value = 0
	a1.value = 1
	a0.onStep = func(step int, _ []Message) []Message {
		a0.value = 0
		if step < cycles {
			return []Message{testMsg{from: 0, to: 1, payload: 0}}
		}
		return nil
	}
	a1.onStep = func(step int, _ []Message) []Message {
		a1.value = 1
		if step < cycles {
			return []Message{testMsg{from: 1, to: 0, payload: 0}}
		}
		return nil
	}
	res, err := Run(p, []Agent{a0, a1}, Options{MaxCycles: 10})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Solved {
		t.Fatalf("unexpectedly solved")
	}
	// 3 active cycles × max(10, 4); startup charges nothing (Init runs no
	// Step).
	if res.MaxCCK != 30 {
		t.Errorf("MaxCCK = %d, want 30", res.MaxCCK)
	}
	if res.TotalChecks != 3*10+3*4 {
		t.Errorf("TotalChecks = %d, want 42", res.TotalChecks)
	}
}

func TestTraceCallback(t *testing.T) {
	p := pairProblem(t)
	agents := []Agent{
		&scriptAgent{id: 0, value: 1, sendInit: []Message{testMsg{from: 0, to: 1, payload: 1}}},
		&scriptAgent{id: 1, value: 0},
	}
	var events []CycleEvent
	_, err := Run(p, agents, Options{Trace: func(ev CycleEvent) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d trace events, want 1", len(events))
	}
	if events[0].Cycle != 1 || events[0].MessagesIn != 1 || !events[0].SolutionFound {
		t.Errorf("event = %+v", events[0])
	}
}

func TestSortBatchOrdersBySender(t *testing.T) {
	batch := []Message{
		testMsg{from: 2, to: 0, payload: 1},
		testMsg{from: 0, to: 0, payload: 2},
		testMsg{from: 2, to: 0, payload: 3},
		testMsg{from: 1, to: 0, payload: 4},
	}
	sorted := sortBatch(batch)
	wantFrom := []AgentID{0, 1, 2, 2}
	wantPayload := []csp.Value{2, 4, 1, 3} // per-sender order preserved
	for i, m := range sorted {
		tm := m.(testMsg)
		if tm.from != wantFrom[i] || tm.payload != wantPayload[i] {
			t.Fatalf("sorted[%d] = %+v", i, tm)
		}
	}
}

func TestMessagesByType(t *testing.T) {
	p := pairProblem(t)
	agents := []Agent{
		&scriptAgent{id: 0, value: 1, sendInit: []Message{testMsg{from: 0, to: 1, payload: 1}}},
		&scriptAgent{id: 1, value: 0},
	}
	res, err := Run(p, agents, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := res.MessagesByType["sim.testMsg"]; got != 1 {
		t.Errorf("MessagesByType = %v, want sim.testMsg:1", res.MessagesByType)
	}
}
