package gen

import (
	"fmt"
	"math/rand"

	"github.com/discsp/discsp/internal/csp"
)

// BinaryCSPInstance is a generated random binary CSP.
type BinaryCSPInstance struct {
	Problem *csp.Problem
	// Hidden is the planted solution when Forced generation was used, nil
	// otherwise.
	Hidden csp.SliceAssignment
	// ConstrainedPairs is the number of variable pairs carrying a
	// constraint.
	ConstrainedPairs int
}

// BinaryCSPConfig parameterizes RandomBinaryCSP following the classic
// Model B of random CSP generation: exactly p1·n(n-1)/2 constrained pairs,
// each prohibiting exactly p2·d² value combinations.
type BinaryCSPConfig struct {
	// Vars is the number of variables.
	Vars int
	// DomainSize is the uniform domain size d.
	DomainSize int
	// Density p1 ∈ (0,1]: fraction of variable pairs constrained.
	Density float64
	// Tightness p2 ∈ (0,1): fraction of value pairs prohibited per
	// constrained pair.
	Tightness float64
	// Force plants a hidden solution: prohibited pairs are drawn only
	// among combinations that do not kill the planted assignment,
	// guaranteeing solubility (the analogue of the paper's solvable
	// instance generation).
	Force bool
}

// RandomBinaryCSP generates a Model B random binary CSP. It complements the
// paper's three benchmark families with the general workload most of the
// CSP literature the paper builds on (Dechter, Frost & Dechter, Bayardo &
// Miranker) evaluates against.
func RandomBinaryCSP(cfg BinaryCSPConfig, seed int64) (*BinaryCSPInstance, error) {
	if cfg.Vars < 2 {
		return nil, fmt.Errorf("gen: binary CSP needs at least 2 variables, got %d", cfg.Vars)
	}
	if cfg.DomainSize < 2 {
		return nil, fmt.Errorf("gen: binary CSP needs domain size at least 2, got %d", cfg.DomainSize)
	}
	if cfg.Density <= 0 || cfg.Density > 1 {
		return nil, fmt.Errorf("gen: density %v outside (0,1]", cfg.Density)
	}
	if cfg.Tightness <= 0 || cfg.Tightness >= 1 {
		return nil, fmt.Errorf("gen: tightness %v outside (0,1)", cfg.Tightness)
	}
	rng := rand.New(rand.NewSource(seed))

	var hidden csp.SliceAssignment
	if cfg.Force {
		hidden = csp.NewSliceAssignment(cfg.Vars)
		for i := range hidden {
			hidden[i] = csp.Value(rng.Intn(cfg.DomainSize))
		}
	}

	// Draw the constrained pairs.
	totalPairs := cfg.Vars * (cfg.Vars - 1) / 2
	wantPairs := int(cfg.Density * float64(totalPairs))
	if wantPairs < 1 {
		wantPairs = 1
	}
	pairs := make([][2]csp.Var, 0, totalPairs)
	for i := 0; i < cfg.Vars; i++ {
		for j := i + 1; j < cfg.Vars; j++ {
			pairs = append(pairs, [2]csp.Var{csp.Var(i), csp.Var(j)})
		}
	}
	rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
	pairs = pairs[:wantPairs]

	// Per constrained pair, prohibit exactly p2·d² combinations.
	d := cfg.DomainSize
	wantNogoods := int(cfg.Tightness * float64(d*d))
	if wantNogoods < 1 {
		wantNogoods = 1
	}
	if cfg.Force && wantNogoods > d*d-1 {
		wantNogoods = d*d - 1
	}

	p := csp.NewProblemUniform(cfg.Vars, d)
	combos := make([][2]csp.Value, 0, d*d)
	for _, pair := range pairs {
		combos = combos[:0]
		for a := 0; a < d; a++ {
			for b := 0; b < d; b++ {
				va, vb := csp.Value(a), csp.Value(b)
				if cfg.Force && hidden[pair[0]] == va && hidden[pair[1]] == vb {
					continue // keep the planted solution alive
				}
				combos = append(combos, [2]csp.Value{va, vb})
			}
		}
		rng.Shuffle(len(combos), func(a, b int) { combos[a], combos[b] = combos[b], combos[a] })
		take := wantNogoods
		if take > len(combos) {
			take = len(combos)
		}
		for _, combo := range combos[:take] {
			ng, err := csp.NewNogood(
				csp.Lit{Var: pair[0], Val: combo[0]},
				csp.Lit{Var: pair[1], Val: combo[1]},
			)
			if err != nil {
				return nil, err
			}
			if err := p.AddNogood(ng); err != nil {
				return nil, err
			}
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cfg.Force && !p.IsSolution(hidden) {
		return nil, fmt.Errorf("gen: planted binary-CSP solution rejected")
	}
	return &BinaryCSPInstance{Problem: p, Hidden: hidden, ConstrainedPairs: wantPairs}, nil
}
