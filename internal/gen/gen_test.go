package gen

import (
	"testing"

	"github.com/discsp/discsp/internal/central"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sat"
)

func TestColoringShape(t *testing.T) {
	inst, err := Coloring(30, 81, 3, 1)
	if err != nil {
		t.Fatalf("Coloring: %v", err)
	}
	if inst.Graph.NumNodes != 30 || len(inst.Graph.Edges) != 81 {
		t.Fatalf("graph shape: %d nodes, %d edges", inst.Graph.NumNodes, len(inst.Graph.Edges))
	}
	if inst.Problem.NumVars() != 30 {
		t.Fatalf("problem vars = %d", inst.Problem.NumVars())
	}
	// Each edge expands to 3 nogoods.
	if inst.Problem.NumNogoods() != 81*3 {
		t.Fatalf("nogoods = %d, want %d", inst.Problem.NumNogoods(), 81*3)
	}
	seen := make(map[[2]int]bool)
	for _, e := range inst.Graph.Edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not normalized", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
		if inst.Hidden[e[0]] == inst.Hidden[e[1]] {
			t.Fatalf("edge %v within a hidden color class", e)
		}
	}
}

func TestColoringPlantedSolutionAndOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		inst, err := Coloring(20, 54, 3, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !inst.Problem.IsSolution(inst.Hidden) {
			t.Fatalf("seed %d: planted coloring not a solution", seed)
		}
		if _, ok := central.New(inst.Problem).Solve(); !ok {
			t.Fatalf("seed %d: oracle cannot solve generated instance", seed)
		}
	}
}

func TestColoringDeterministic(t *testing.T) {
	a, err := Coloring(25, 60, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Coloring(25, 60, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Graph.Edges) != len(b.Graph.Edges) {
		t.Fatalf("edge counts differ")
	}
	for i := range a.Graph.Edges {
		if a.Graph.Edges[i] != b.Graph.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Graph.Edges[i], b.Graph.Edges[i])
		}
	}
	c, err := Coloring(25, 60, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Graph.Edges {
		if a.Graph.Edges[i] != c.Graph.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical graphs")
	}
}

func TestColoringErrors(t *testing.T) {
	if _, err := Coloring(2, 1, 3, 1); err == nil {
		t.Error("accepted n < colors")
	}
	if _, err := Coloring(10, 1, 1, 1); err == nil {
		t.Error("accepted 1 color")
	}
	if _, err := Coloring(6, 1000, 3, 1); err == nil {
		t.Error("accepted impossible edge count")
	}
}

func TestMaxCrossEdges(t *testing.T) {
	// n=6, 3 colors → classes of 2: total 15 pairs − 3 within = 12.
	if got := maxCrossEdges(6, 3); got != 12 {
		t.Errorf("maxCrossEdges(6,3) = %d, want 12", got)
	}
	// n=5, 2 colors → classes 3+2: 10 − (3+1) = 6.
	if got := maxCrossEdges(5, 2); got != 6 {
		t.Errorf("maxCrossEdges(5,2) = %d, want 6", got)
	}
}

func TestForcedSAT3Shape(t *testing.T) {
	inst, err := ForcedSAT3(20, 86, 2)
	if err != nil {
		t.Fatalf("ForcedSAT3: %v", err)
	}
	if inst.CNF.NumVars != 20 || len(inst.CNF.Clauses) != 86 {
		t.Fatalf("cnf shape: %d vars %d clauses", inst.CNF.NumVars, len(inst.CNF.Clauses))
	}
	keys := make(map[string]bool)
	for _, cl := range inst.CNF.Clauses {
		if len(cl) != 3 {
			t.Fatalf("clause %v is not ternary", cl)
		}
		k := clauseKey(cl)
		if keys[k] {
			t.Fatalf("duplicate clause %v", cl)
		}
		keys[k] = true
		if !clauseSatisfied(cl, inst.Hidden) {
			t.Fatalf("clause %v not satisfied by hidden assignment", cl)
		}
	}
	if inst.Unique {
		t.Errorf("forced instance claims uniqueness")
	}
}

func TestForcedSAT3SatisfiableBySolver(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst, err := ForcedSAT3(25, 107, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s, err := sat.New(inst.CNF)
		if err != nil {
			t.Fatal(err)
		}
		model, ok := s.Solve()
		if !ok {
			t.Fatalf("seed %d: DPLL finds forced instance unsatisfiable", seed)
		}
		if !sat.Verify(inst.CNF, model) {
			t.Fatalf("seed %d: DPLL model does not verify", seed)
		}
	}
}

func TestUniqueSAT3ExactlyOneSolution(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst, err := UniqueSAT3(20, 68, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !inst.Unique {
			t.Fatalf("instance not marked unique")
		}
		s, err := sat.New(inst.CNF)
		if err != nil {
			t.Fatal(err)
		}
		models := s.Enumerate(2)
		if len(models) != 1 {
			t.Fatalf("seed %d: %d solutions, want exactly 1", seed, len(models))
		}
		// The one solution is the planted one.
		for v, val := range models[0] {
			want := inst.Hidden[v] == 1
			if val != want {
				t.Fatalf("seed %d: solver model differs from planted at x%d", seed, v)
			}
		}
	}
}

func TestUniqueSAT3OracleAgrees(t *testing.T) {
	inst, err := UniqueSAT3(15, 51, 9)
	if err != nil {
		t.Fatal(err)
	}
	sols := central.New(inst.Problem).Enumerate(2)
	if len(sols) != 1 {
		t.Fatalf("central oracle finds %d solutions, want 1", len(sols))
	}
	if !inst.Problem.IsSolution(sols[0]) {
		t.Fatalf("oracle solution invalid")
	}
}

func TestUniqueSAT3PaperScaleRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale uniqueness verification is slow")
	}
	// The paper's smallest 3ONESAT setting: n=50, m=170.
	inst, err := UniqueSAT3(50, 170, 11)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sat.New(inst.CNF)
	if err != nil {
		t.Fatal(err)
	}
	if models := s.Enumerate(2); len(models) != 1 {
		t.Fatalf("n=50 instance has %d solutions", len(models))
	}
}

func TestUniqueSAT3Errors(t *testing.T) {
	if _, err := UniqueSAT3(3, 20, 1); err == nil {
		t.Error("accepted n < 4")
	}
	if _, err := UniqueSAT3(20, 10, 1); err == nil {
		t.Error("accepted m below the forcing core size")
	}
}

func TestForcedSAT3Errors(t *testing.T) {
	if _, err := ForcedSAT3(2, 5, 1); err == nil {
		t.Error("accepted n < 3")
	}
	// More distinct forced clauses than exist over 4 variables.
	if _, err := ForcedSAT3(4, 1000, 1); err == nil {
		t.Error("accepted impossible clause count")
	}
}

func TestRandomInitialInDomainAndDeterministic(t *testing.T) {
	p := csp.NewProblem()
	p.AddVar(3, 5)
	p.AddVar(0)
	p.AddVar(1, 2, 4)
	a := RandomInitial(p, 42)
	b := RandomInitial(p, 42)
	for v := 0; v < p.NumVars(); v++ {
		if a[v] != b[v] {
			t.Fatalf("not deterministic at x%d", v)
		}
		found := false
		for _, d := range p.Domain(csp.Var(v)) {
			if d == a[v] {
				found = true
			}
		}
		if !found {
			t.Fatalf("x%d initial %d outside domain", v, a[v])
		}
	}
}

func TestTrueLit(t *testing.T) {
	hidden := csp.SliceAssignment{1, 0}
	if got := trueLit(0, hidden); got != 1 {
		t.Errorf("trueLit(0) = %d, want 1", got)
	}
	if got := trueLit(1, hidden); got != -2 {
		t.Errorf("trueLit(1) = %d, want -2", got)
	}
}

func TestClauseKeyCanonical(t *testing.T) {
	if clauseKey([]int{3, -1, 2}) != clauseKey([]int{-1, 2, 3}) {
		t.Errorf("clause key depends on order")
	}
	if clauseKey([]int{1, 2, 3}) == clauseKey([]int{-1, 2, 3}) {
		t.Errorf("clause key ignores polarity")
	}
}

func TestRandomBinaryCSPShape(t *testing.T) {
	cfg := BinaryCSPConfig{Vars: 12, DomainSize: 4, Density: 0.5, Tightness: 0.25, Force: true}
	inst, err := RandomBinaryCSP(cfg, 3)
	if err != nil {
		t.Fatalf("RandomBinaryCSP: %v", err)
	}
	if inst.Problem.NumVars() != 12 {
		t.Errorf("vars = %d", inst.Problem.NumVars())
	}
	wantPairs := int(0.5 * float64(12*11/2))
	if inst.ConstrainedPairs != wantPairs {
		t.Errorf("pairs = %d, want %d", inst.ConstrainedPairs, wantPairs)
	}
	// Exactly p2·d² = 4 nogoods per pair.
	if got, want := inst.Problem.NumNogoods(), wantPairs*4; got != want {
		t.Errorf("nogoods = %d, want %d", got, want)
	}
	if !inst.Problem.IsSolution(inst.Hidden) {
		t.Errorf("planted solution invalid")
	}
}

func TestRandomBinaryCSPForcedSolvableBySolver(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst, err := RandomBinaryCSP(BinaryCSPConfig{
			Vars: 14, DomainSize: 3, Density: 0.4, Tightness: 0.3, Force: true,
		}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := central.New(inst.Problem).Solve(); !ok {
			t.Fatalf("seed %d: forced instance insoluble", seed)
		}
	}
}

func TestRandomBinaryCSPUnforced(t *testing.T) {
	inst, err := RandomBinaryCSP(BinaryCSPConfig{
		Vars: 10, DomainSize: 3, Density: 0.3, Tightness: 0.3,
	}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Hidden != nil {
		t.Errorf("unforced instance carries a hidden solution")
	}
}

func TestRandomBinaryCSPValidation(t *testing.T) {
	base := BinaryCSPConfig{Vars: 10, DomainSize: 3, Density: 0.3, Tightness: 0.3}
	bad := []BinaryCSPConfig{
		{Vars: 1, DomainSize: 3, Density: 0.3, Tightness: 0.3},
		{Vars: 10, DomainSize: 1, Density: 0.3, Tightness: 0.3},
		{Vars: 10, DomainSize: 3, Density: 0, Tightness: 0.3},
		{Vars: 10, DomainSize: 3, Density: 1.5, Tightness: 0.3},
		{Vars: 10, DomainSize: 3, Density: 0.3, Tightness: 0},
		{Vars: 10, DomainSize: 3, Density: 0.3, Tightness: 1},
	}
	if _, err := RandomBinaryCSP(base, 1); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	for i, cfg := range bad {
		if _, err := RandomBinaryCSP(cfg, 1); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRandomBinaryCSPTightForcedCaps(t *testing.T) {
	// Tightness near 1 with Force: per-pair prohibitions are capped at
	// d²-1 so the planted solution survives.
	inst, err := RandomBinaryCSP(BinaryCSPConfig{
		Vars: 6, DomainSize: 2, Density: 1, Tightness: 0.99, Force: true,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.Problem.IsSolution(inst.Hidden) {
		t.Fatalf("planted solution destroyed at high tightness")
	}
}
