// Package gen generates the benchmark problem instances of Section 4:
//
//   - solvable distributed 3-coloring problems with m = 2.7n arcs, generated
//     by the method of Minton et al. (hide a coloring, add arcs only between
//     color classes);
//   - distributed 3SAT problems in the style of 3SAT-GEN (forced satisfiable
//     random 3SAT at a specified clause/variable ratio, m = 4.3n in the
//     paper);
//   - distributed 3SAT problems in the style of 3ONESAT-GEN (exactly one
//     solution, m = 3.4n in the paper).
//
// The paper took its SAT instances from the AIM generators / DIMACS archive,
// which are unavailable offline; the substitutes here preserve the defining
// properties (ratio, guaranteed satisfiability, solution uniqueness) — see
// DESIGN.md Section 4 for the substitution rationale. All generators are
// deterministic functions of their seed.
package gen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"github.com/discsp/discsp/internal/csp"
)

// ColoringInstance is a generated solvable graph-coloring problem.
type ColoringInstance struct {
	Graph   *csp.Graph
	Problem *csp.Problem
	// Hidden is the coloring planted by the generator (a witness solution;
	// instances typically have many others).
	Hidden csp.SliceAssignment
	Colors int
}

// Coloring generates a solvable graph-coloring instance with n nodes, m
// arcs, and the given number of colors, by the method of Minton et al.:
// nodes are split evenly into color classes and arcs are drawn uniformly at
// random between distinct classes, without duplicates. The paper's setting
// is colors=3, m=2.7n ("known to be hard in 3-coloring problems").
func Coloring(n, m, colors int, seed int64) (*ColoringInstance, error) {
	if n < colors {
		return nil, fmt.Errorf("gen: %d nodes cannot use %d colors", n, colors)
	}
	if colors < 2 {
		return nil, fmt.Errorf("gen: need at least 2 colors, got %d", colors)
	}
	rng := rand.New(rand.NewSource(seed))

	// Even hidden partition over a random node order.
	perm := rng.Perm(n)
	hidden := csp.NewSliceAssignment(n)
	for i, node := range perm {
		hidden[node] = csp.Value(i % colors)
	}

	if max := maxCrossEdges(n, colors); m > max {
		return nil, fmt.Errorf("gen: %d arcs requested but only %d cross-class pairs exist", m, max)
	}

	g := &csp.Graph{NumNodes: n, Edges: make([][2]int, 0, m)}
	seen := make(map[[2]int]struct{}, m)
	for len(g.Edges) < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v || hidden[u] == hidden[v] {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		g.Edges = append(g.Edges, key)
	}

	p, err := g.Problem(colors)
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsSolution(hidden) {
		// Cannot happen by construction; guards generator regressions.
		return nil, fmt.Errorf("gen: planted coloring is not a solution")
	}
	return &ColoringInstance{Graph: g, Problem: p, Hidden: hidden, Colors: colors}, nil
}

func maxCrossEdges(n, colors int) int {
	// Class sizes differ by at most one.
	base := n / colors
	extra := n % colors
	total := n * (n - 1) / 2
	within := 0
	for c := 0; c < colors; c++ {
		size := base
		if c < extra {
			size++
		}
		within += size * (size - 1) / 2
	}
	return total - within
}

// SATInstance is a generated satisfiable 3SAT problem.
type SATInstance struct {
	CNF     *csp.CNF
	Problem *csp.Problem
	// Hidden is the planted satisfying assignment (index i is variable i,
	// value 0 or 1).
	Hidden csp.SliceAssignment
	// Unique reports whether the generator guarantees Hidden is the only
	// solution (true for UniqueSAT3).
	Unique bool
}

// ForcedSAT3 generates a satisfiable random 3SAT instance with n variables
// and m clauses in the style of 3SAT-GEN: a hidden assignment is planted and
// random 3-clauses are kept only if the hidden assignment satisfies them.
// Duplicate clauses (up to literal order) are rejected. The paper's setting
// is m = 4.3n.
func ForcedSAT3(n, m int, seed int64) (*SATInstance, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: 3SAT needs at least 3 variables, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	hidden := randomBoolAssignment(n, rng)

	cnf := &csp.CNF{NumVars: n, Clauses: make([][]int, 0, m)}
	seen := make(map[string]struct{}, m)
	attempts := 0
	maxAttempts := 200*m + 10000
	for len(cnf.Clauses) < m {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: could not draw %d distinct forced clauses over %d variables", m, n)
		}
		cl := randomClause(n, rng)
		if !clauseSatisfied(cl, hidden) {
			continue
		}
		key := clauseKey(cl)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		cnf.Clauses = append(cnf.Clauses, cl)
	}
	return finishSAT(cnf, hidden, false)
}

// UniqueSAT3 generates a satisfiable 3SAT instance with exactly one
// solution, in the style of 3ONESAT-GEN (the paper's AIM single-solution
// instances, m = 3.4n). Construction:
//
//  1. Seed core: over 3 seed variables, 7 clauses each killing one of the 7
//     non-hidden assignments of the seed triple, forcing the seeds to their
//     hidden values.
//  2. Implication chain: in a random variable order starting with the
//     seeds, every later variable gets one clause "both parents correct →
//     this variable correct" with two random earlier parents, forcing it by
//     induction.
//  3. Padding: random forced 3-clauses up to m total.
//
// Steps 1–2 make the hidden assignment the unique solution (verified by the
// DPLL substrate in this package's tests); step 3 only removes further
// assignments, which cannot exist. Like the AIM instances, the result is
// "very hard for non-systematic search": a local searcher must traverse the
// chain, while learning algorithms discover the implications as small
// nogoods.
func UniqueSAT3(n, m int, seed int64) (*SATInstance, error) {
	if n < 4 {
		return nil, fmt.Errorf("gen: unique 3SAT needs at least 4 variables, got %d", n)
	}
	minClauses := 7 + (n - 3)
	if m < minClauses {
		return nil, fmt.Errorf("gen: unique 3SAT over %d variables needs at least %d clauses, got %d", n, minClauses, m)
	}
	rng := rand.New(rand.NewSource(seed))
	hidden := randomBoolAssignment(n, rng)
	order := rng.Perm(n)

	cnf := &csp.CNF{NumVars: n, Clauses: make([][]int, 0, m)}
	seen := make(map[string]struct{}, m)
	add := func(cl []int) bool {
		key := clauseKey(cl)
		if _, dup := seen[key]; dup {
			return false
		}
		seen[key] = struct{}{}
		cnf.Clauses = append(cnf.Clauses, cl)
		return true
	}

	// 1. Seed core: kill the 7 wrong assignments of the seed triple.
	seeds := order[:3]
	for wrong := 0; wrong < 8; wrong++ {
		cl := make([]int, 3)
		isHidden := true
		for i, v := range seeds {
			bit := wrong>>i&1 == 1
			if (hidden[v] == 1) != bit {
				isHidden = false
			}
			// The literal must be false under the killed assignment.
			if bit {
				cl[i] = -(v + 1)
			} else {
				cl[i] = v + 1
			}
		}
		if isHidden {
			continue
		}
		add(cl)
	}

	// 2. Implication chain: parents correct → child correct.
	for i := 3; i < n; i++ {
		child := order[i]
		j := rng.Intn(i)
		k := rng.Intn(i)
		for k == j {
			k = rng.Intn(i)
		}
		cl := []int{
			-trueLit(order[j], hidden),
			-trueLit(order[k], hidden),
			trueLit(child, hidden),
		}
		add(cl)
	}

	// 3. Padding with random forced clauses.
	attempts := 0
	maxAttempts := 200*m + 10000
	for len(cnf.Clauses) < m {
		attempts++
		if attempts > maxAttempts {
			return nil, fmt.Errorf("gen: could not pad to %d distinct clauses over %d variables", m, n)
		}
		cl := randomClause(n, rng)
		if !clauseSatisfied(cl, hidden) {
			continue
		}
		add(cl)
	}
	return finishSAT(cnf, hidden, true)
}

// trueLit returns the DIMACS literal over variable v (0-based) that is true
// under hidden.
func trueLit(v int, hidden csp.SliceAssignment) int {
	if hidden[v] == 1 {
		return v + 1
	}
	return -(v + 1)
}

func randomBoolAssignment(n int, rng *rand.Rand) csp.SliceAssignment {
	hidden := csp.NewSliceAssignment(n)
	for i := range hidden {
		hidden[i] = csp.Value(rng.Intn(2))
	}
	return hidden
}

// randomClause draws three distinct variables with random polarities.
func randomClause(n int, rng *rand.Rand) []int {
	vs := make(map[int]struct{}, 3)
	cl := make([]int, 0, 3)
	for len(cl) < 3 {
		v := rng.Intn(n)
		if _, dup := vs[v]; dup {
			continue
		}
		vs[v] = struct{}{}
		lit := v + 1
		if rng.Intn(2) == 1 {
			lit = -lit
		}
		cl = append(cl, lit)
	}
	return cl
}

func clauseSatisfied(cl []int, a csp.SliceAssignment) bool {
	for _, lit := range cl {
		v := lit
		if v < 0 {
			v = -v
		}
		val := a[v-1] == 1
		if (lit > 0) == val {
			return true
		}
	}
	return false
}

// clauseKey canonicalizes a clause (sorted by variable then sign) for
// duplicate detection.
func clauseKey(cl []int) string {
	cp := make([]int, len(cl))
	copy(cp, cl)
	sort.Slice(cp, func(i, j int) bool {
		ai, aj := abs(cp[i]), abs(cp[j])
		if ai != aj {
			return ai < aj
		}
		return cp[i] < cp[j]
	})
	var b strings.Builder
	for _, lit := range cp {
		b.WriteString(strconv.Itoa(lit))
		b.WriteByte(',')
	}
	return b.String()
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func finishSAT(cnf *csp.CNF, hidden csp.SliceAssignment, unique bool) (*SATInstance, error) {
	p, err := cnf.Problem()
	if err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.IsSolution(hidden) {
		return nil, fmt.Errorf("gen: planted assignment is not a solution")
	}
	return &SATInstance{CNF: cnf, Problem: p, Hidden: hidden, Unique: unique}, nil
}

// RandomInitial draws a uniform random initial value for every variable of
// p; the paper generates several such sets per instance to define trials.
func RandomInitial(p *csp.Problem, seed int64) csp.SliceAssignment {
	rng := rand.New(rand.NewSource(seed))
	init := csp.NewSliceAssignment(p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		dom := p.Domain(csp.Var(v))
		init[v] = dom[rng.Intn(len(dom))]
	}
	return init
}
