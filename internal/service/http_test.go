package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/telemetry"
)

func postJob(t *testing.T, srv *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

func TestHTTPSubmitPollCancelStats(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	resp := postJob(t, srv, coloringSpec(t, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" {
		t.Fatalf("submit returned no id: %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		got := decodeStatus(t, r)
		if got.State == StateDone {
			if got.Verdict != VerdictSolved {
				t.Fatalf("verdict = %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Malformed body and malformed spec are both 400s.
	r, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", r.StatusCode)
	}
	bad := coloringSpec(t, 1)
	bad.Runtime = "quantum"
	if r := postJob(t, srv, bad); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed spec status = %d", r.StatusCode)
	} else {
		r.Body.Close()
	}

	// Unknown job: 404 on status, events, and cancel.
	for _, path := range []string{"/v1/jobs/zzz", "/v1/jobs/zzz/events"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status = %d", path, r.StatusCode)
		}
	}

	// Stats and the jobs listing see the completed job.
	r, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var stats Stats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	r.Body.Close()
	if stats.Jobs == 0 || stats.Draining {
		t.Fatalf("stats = %+v", stats)
	}
	r, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET jobs: %v", err)
	}
	var listing struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(r.Body).Decode(&listing); err != nil {
		t.Fatalf("decode listing: %v", err)
	}
	r.Body.Close()
	if len(listing.Jobs) == 0 {
		t.Fatalf("listing empty")
	}
}

func TestHTTPShedsWithRetryAfter(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, MaxQueue: 1, MaxQueuePerTenant: 1,
		RetryAfter: 2 * time.Second})
	started, release := blockWorkers(t, d)
	defer release()
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	// One job occupies the worker, one fills the queue; the third is shed.
	if r := postJob(t, srv, coloringSpec(t, 1)); r.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", r.StatusCode)
	} else {
		r.Body.Close()
	}
	<-started
	if r := postJob(t, srv, coloringSpec(t, 2)); r.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", r.StatusCode)
	} else {
		r.Body.Close()
	}
	r := postJob(t, srv, coloringSpec(t, 3))
	defer r.Body.Close()
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit = %d, want 429", r.StatusCode)
	}
	if ra := r.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(r.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("shed body = %+v (err %v)", e, err)
	}
}

func TestHTTPEventsStreamFollow(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	started, release := blockWorkers(t, d)
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	resp := postJob(t, srv, coloringSpec(t, 1))
	st := decodeStatus(t, resp)
	<-started

	// Follow the stream while the job is still running; release it and the
	// stream must terminate on completion with the full event log.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/jobs/"+st.ID+"/events?follow=1", nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content-type = %q", ct)
	}
	release()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatalf("read events: %v", err)
	}
	lines := bytes.Split(bytes.TrimSpace(data), []byte("\n"))
	var kinds []string
	for _, line := range lines {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad event line %q: %v", line, err)
		}
		kinds = append(kinds, ev.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, "meta") || !strings.Contains(joined, "end") {
		t.Fatalf("stream kinds = %v, want meta…end", kinds)
	}
}

func TestHTTPDrainSurface(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	r, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d before drain", r.StatusCode)
	}
	if err := d.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz = %d after drain, want 503", r.StatusCode)
	}
	sub := postJob(t, srv, coloringSpec(t, 1))
	sub.Body.Close()
	if sub.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", sub.StatusCode)
	}
	if sub.Header.Get("Retry-After") == "" {
		t.Fatalf("drain response missing Retry-After")
	}
}

func TestHTTPMetricsExposition(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	st := decodeStatus(t, postJob(t, srv, coloringSpec(t, 1)))
	waitDone(t, d, st.ID)

	r, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	defer r.Body.Close()
	body, _ := io.ReadAll(r.Body)
	for _, want := range []string{
		"dcspd_jobs_accepted_total 1",
		"dcspd_queue_depth",
		`dcspd_jobs_done_total{tenant="default"} 1`,
		"dcspd_queue_wait_ms",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestHTTPTraceEndpoint: a job submitted with "causal": true serves its
// span stream on /trace as a complete, well-formed single-run trace; a job
// without the flag gets a 404 naming the missing option, as does an unknown
// id.
func TestHTTPTraceEndpoint(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	spec := coloringSpec(t, 1)
	spec.Causal = true
	st := decodeStatus(t, postJob(t, srv, spec))
	done := waitDone(t, d, st.ID)
	if done.Verdict != VerdictSolved {
		t.Fatalf("verdict = %+v", done)
	}
	if done.TraceTruncated {
		t.Fatalf("trace truncated on a small instance: %+v", done)
	}

	r, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("trace status = %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace content-type = %q", ct)
	}
	events, err := telemetry.Read(r.Body)
	if err != nil {
		t.Fatalf("served trace unreadable: %v", err)
	}
	if err := telemetry.CheckComplete(events); err != nil {
		t.Fatalf("served trace incomplete: %v", err)
	}
	g, err := causal.BuildGraph(events)
	if err != nil {
		t.Fatalf("served trace graph: %v", err)
	}
	if dang := g.Dangling(); len(dang) > 0 {
		t.Fatalf("%d dangling cause IDs in served trace", len(dang))
	}

	// A job submitted without the flag has no capture: distinct 404.
	plain := decodeStatus(t, postJob(t, srv, coloringSpec(t, 2)))
	waitDone(t, d, plain.ID)
	r2, err := http.Get(srv.URL + "/v1/jobs/" + plain.ID + "/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	body, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "causal") {
		t.Fatalf("non-causal trace: status=%d body=%q", r2.StatusCode, body)
	}

	r3, err := http.Get(srv.URL + "/v1/jobs/zzz/trace")
	if err != nil {
		t.Fatalf("GET trace: %v", err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace status = %d", r3.StatusCode)
	}
}
