// Job model for the dcspd daemon: the submit body clients POST, the status
// record they poll, and the validation that separates permanent spec errors
// (rejected up front, never retried) from everything the daemon owes a
// durable answer for once it has acknowledged the job.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/discsp/discsp"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued marks an accepted job waiting for a solver slot.
	StateQueued State = "queued"
	// StateRunning marks a job occupying a solver slot.
	StateRunning State = "running"
	// StateDone marks a finished job; Verdict says how it finished.
	StateDone State = "done"
)

// Verdict classifies how a done job finished. Timeouts and failures are
// verdicts, not protocol errors: once a job is accepted (journaled and
// acknowledged), every outcome is reported through its status record.
type Verdict string

const (
	// VerdictSolved: a satisfying assignment was found.
	VerdictSolved Verdict = "solved"
	// VerdictInsoluble: the run proved no solution exists.
	VerdictInsoluble Verdict = "insoluble"
	// VerdictExhausted: the synchronous cycle cutoff was hit without a
	// verdict (the paper's censored-run outcome).
	VerdictExhausted Verdict = "exhausted"
	// VerdictTimeout: the job's wall-clock deadline expired — in the queue
	// or mid-run. Report carries the stall watchdog's diagnosis when the
	// run got far enough to have one.
	VerdictTimeout Verdict = "timeout"
	// VerdictFailed: the job did not produce a verdict. Recoverable says
	// whether resubmitting is sensible (a crashed worker) or pointless (a
	// spec the solver rejects).
	VerdictFailed Verdict = "failed"
	// VerdictCanceled: the client withdrew the job before it finished.
	VerdictCanceled Verdict = "canceled"
)

// JobSpec is the submit body. The zero value of every optional field means
// "daemon default". Problem input rides in one of two forms: Format "json"
// embeds the repo's native problem JSON in Problem; Formats "cnf" and "col"
// carry the DIMACS text in Text.
type JobSpec struct {
	// Tenant attributes the job for quotas, fair-share weighting, and
	// per-tenant metrics; empty means the "default" tenant.
	Tenant string `json:"tenant,omitempty"`
	// Weight is the tenant's fair-share weight (1..16, default 1): a
	// tenant with weight 4 is scheduled four times as often as a tenant
	// with weight 1 when both have jobs queued. The last submitted weight
	// wins for the tenant.
	Weight int `json:"weight,omitempty"`
	// DeadlineMS bounds the job's wall-clock lifetime from acceptance,
	// queue wait included; 0 means the daemon default, and values above
	// the daemon maximum are clamped.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Runtime selects the execution runtime: "sync" (default; the
	// deterministic simulator, cycle-bounded), "async" (goroutine per
	// agent, deadline-bounded), or "tcp" (real sockets, deadline-bounded).
	Runtime string `json:"runtime,omitempty"`
	// Algorithm is "awc" (default), "db", or "abt".
	Algorithm string `json:"algorithm,omitempty"`
	// Learning is AWC's strategy: "rslv" (default), "mcs", or "none".
	Learning string `json:"learning,omitempty"`
	// K bounds learned-nogood size (kthRslv); 0 = unrestricted.
	K int `json:"k,omitempty"`
	// Seed draws random initial values; 0 means first-domain-value start.
	Seed int64 `json:"seed,omitempty"`
	// MaxCycles overrides the sync cutoff; clamped to the daemon cap.
	MaxCycles int `json:"max_cycles,omitempty"`
	// Retention overrides the daemon's nogood retention policy ("all",
	// "lru:512", "activity:512").
	Retention string `json:"retention,omitempty"`
	// FaultProfile injects a deterministic fault schedule (async/tcp
	// runtimes; faults.ProfileSyntax) — the chaos suite as a service.
	FaultProfile string `json:"fault_profile,omitempty"`
	// FaultSeed seeds the fault schedule; 0 means 1.
	FaultSeed int64 `json:"fault_seed,omitempty"`
	// Format names the problem encoding: "json" (default), "cnf", "col".
	Format string `json:"format,omitempty"`
	// Colors is the palette size for "col" problems; 0 means 3.
	Colors int `json:"colors,omitempty"`
	// Problem is the native problem JSON (Format "json").
	Problem json.RawMessage `json:"problem,omitempty"`
	// Text is the DIMACS source (Formats "cnf" and "col").
	Text string `json:"text,omitempty"`
	// SyntheticDelayMS makes the worker sleep before solving — a load- and
	// crash-testing aid (it widens the window in which a job is observably
	// running). Rejected unless the daemon enables synthetic faults.
	SyntheticDelayMS int64 `json:"synthetic_delay_ms,omitempty"`
	// Causal captures the job's causal trace stream (schema-3 span events)
	// into a second bounded buffer served by GET /v1/jobs/{id}/trace —
	// feed it to dcsptrace -critical-path / -provenance / -perfetto. The
	// buffer is memory-only: a restart replays the job's verdict from the
	// journal, not its trace bytes. Tracing is observationally inert; the
	// verdict is identical with it on or off.
	Causal bool `json:"causal,omitempty"`
}

// SpecError marks a permanently malformed submission: the request is
// rejected before acceptance (HTTP 400) and must not be retried as-is.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrf(format string, args ...any) error {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// normalize validates the spec against the daemon's limits and fills
// defaults in place. Every error is a *SpecError — the permanent class.
func (s *JobSpec) normalize(cfg *Config) error {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if len(s.Tenant) > 64 || strings.ContainsAny(s.Tenant, " \t\n/") {
		return specErrf("tenant %q: want a short name without spaces or slashes", s.Tenant)
	}
	if s.Weight == 0 {
		s.Weight = 1
	}
	if s.Weight < 1 || s.Weight > maxTenantWeight {
		return specErrf("weight %d out of range [1,%d]", s.Weight, maxTenantWeight)
	}
	if s.DeadlineMS < 0 {
		return specErrf("deadline_ms %d is negative", s.DeadlineMS)
	}
	if s.DeadlineMS == 0 {
		s.DeadlineMS = cfg.DefaultDeadline.Milliseconds()
	}
	if max := cfg.MaxDeadline.Milliseconds(); s.DeadlineMS > max {
		s.DeadlineMS = max
	}
	switch s.Runtime {
	case "":
		s.Runtime = "sync"
	case "sync", "async", "tcp":
	default:
		return specErrf("runtime %q: want sync, async, or tcp", s.Runtime)
	}
	switch s.Algorithm {
	case "":
		s.Algorithm = "awc"
	case "awc", "db", "abt":
	default:
		return specErrf("algorithm %q: want awc, db, or abt", s.Algorithm)
	}
	switch s.Learning {
	case "":
		s.Learning = "rslv"
	case "rslv", "mcs", "none":
	default:
		return specErrf("learning %q: want rslv, mcs, or none", s.Learning)
	}
	if s.K < 0 {
		return specErrf("k %d is negative", s.K)
	}
	if s.MaxCycles < 0 {
		return specErrf("max_cycles %d is negative", s.MaxCycles)
	}
	if s.MaxCycles == 0 || s.MaxCycles > cfg.MaxCyclesCap {
		s.MaxCycles = cfg.MaxCyclesCap
	}
	if s.Retention != "" {
		if _, err := discsp.ParseRetention(s.Retention); err != nil {
			return specErrf("%v", err)
		}
	}
	if s.FaultProfile != "" {
		if s.Runtime == "sync" {
			return specErrf("fault_profile needs the async or tcp runtime (sync has no network)")
		}
		seed := s.FaultSeed
		if seed == 0 {
			seed = 1
		}
		if _, err := faults.ParseProfile(s.FaultProfile, seed); err != nil {
			return specErrf("%v", err)
		}
	}
	if s.SyntheticDelayMS < 0 {
		return specErrf("synthetic_delay_ms %d is negative", s.SyntheticDelayMS)
	}
	if s.SyntheticDelayMS > 0 && !cfg.AllowSyntheticDelay {
		return specErrf("synthetic_delay_ms requires the daemon's -synthetic-delay flag")
	}
	switch s.Format {
	case "":
		s.Format = "json"
	case "json", "cnf", "col":
	default:
		return specErrf("format %q: want json, cnf, or col", s.Format)
	}
	if s.Colors == 0 {
		s.Colors = 3
	}
	if s.Colors < 2 {
		return specErrf("colors %d: want at least 2", s.Colors)
	}
	// Parse the problem once here so a malformed instance is a permanent
	// 400 at the door, never an accepted job that can only fail.
	p, err := s.problem()
	if err != nil {
		return err
	}
	if n := p.NumVars(); n > cfg.MaxVars {
		return specErrf("problem has %d variables; this daemon caps jobs at %d", n, cfg.MaxVars)
	}
	return nil
}

// problem parses the spec's problem payload. Errors are *SpecError.
func (s *JobSpec) problem() (*csp.Problem, error) {
	switch s.Format {
	case "json":
		if len(s.Problem) == 0 {
			return nil, specErrf("format json needs a problem object")
		}
		p, err := csp.ReadProblemJSON(bytes.NewReader(s.Problem))
		if err != nil {
			return nil, specErrf("%v", err)
		}
		return p, nil
	case "cnf":
		if s.Text == "" {
			return nil, specErrf("format cnf needs the DIMACS text in \"text\"")
		}
		cnf, err := csp.ParseCNF(strings.NewReader(s.Text))
		if err != nil {
			return nil, specErrf("%v", err)
		}
		p, err := cnf.Problem()
		if err != nil {
			return nil, specErrf("%v", err)
		}
		return p, nil
	case "col":
		if s.Text == "" {
			return nil, specErrf("format col needs the DIMACS text in \"text\"")
		}
		g, err := csp.ParseCOL(strings.NewReader(s.Text))
		if err != nil {
			return nil, specErrf("%v", err)
		}
		p, err := g.Problem(s.Colors)
		if err != nil {
			return nil, specErrf("%v", err)
		}
		return p, nil
	default:
		return nil, specErrf("format %q: want json, cnf, or col", s.Format)
	}
}

// options builds the discsp.Options for one attempt. timeout bounds the
// async/tcp runtimes (ignored by sync, whose budget is MaxCycles).
func (s *JobSpec) options(timeout time.Duration, defaultRetention discsp.Retention, cache *discsp.NogoodCache) discsp.Options {
	opts := discsp.Options{
		InitialSeed:       s.Seed,
		MaxCycles:         s.MaxCycles,
		Timeout:           timeout,
		LearningSizeBound: s.K,
		FaultProfile:      s.FaultProfile,
		FaultSeed:         s.FaultSeed,
		Retention:         defaultRetention,
	}
	switch s.Algorithm {
	case "db":
		opts.Algorithm = discsp.DB
	case "abt":
		opts.Algorithm = discsp.ABT
	default:
		opts.Algorithm = discsp.AWC
	}
	switch s.Learning {
	case "mcs":
		opts.Learning = discsp.LearnMCS
	case "none":
		opts.Learning = discsp.LearnNone
	default:
		opts.Learning = discsp.LearnResolvent
	}
	if s.Retention != "" {
		// normalize already vetted the syntax.
		opts.Retention, _ = discsp.ParseRetention(s.Retention)
	}
	// Warm-start only where the harvest loop exists: AWC. The cache keys
	// by instance signature, so repeated tenant instances get cheaper.
	if s.Algorithm == "awc" && s.Runtime == "sync" {
		opts.WarmCache = cache
	}
	return opts
}

// JobStatus is the wire form of a job's state, served by GET /v1/jobs/{id}
// and returned by submit.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// Verdict and its context; set once State is done.
	Verdict     Verdict `json:"verdict,omitempty"`
	Recoverable bool    `json:"recoverable,omitempty"`
	Error       string  `json:"error,omitempty"`
	// Report is the stall watchdog's diagnosis on timeout verdicts —
	// stalled / livelock / converging with per-agent progress — instead of
	// a bare "deadline exceeded".
	Report   string `json:"report,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	// Solver results (meaningful per runtime; zero otherwise).
	Solved      bool  `json:"solved,omitempty"`
	Insoluble   bool  `json:"insoluble,omitempty"`
	Assignment  []int `json:"assignment,omitempty"`
	Cycles      int   `json:"cycles,omitempty"`
	MaxCCK      int64 `json:"maxcck,omitempty"`
	TotalChecks int64 `json:"total_checks,omitempty"`
	Messages    int64 `json:"messages,omitempty"`
	// Timing: queue wait and run time in milliseconds.
	QueueMS int64 `json:"queue_ms"`
	RunMS   int64 `json:"run_ms,omitempty"`
	// FromJournal marks a result served from the job log after a restart —
	// the job was not executed again.
	FromJournal bool `json:"from_journal,omitempty"`
	// EventsTruncated reports that the job's progress-event buffer hit its
	// cap and later events were dropped (the job itself was unaffected).
	EventsTruncated bool `json:"events_truncated,omitempty"`
	// TraceTruncated reports that the job's causal-trace buffer hit its cap;
	// the served trace will fail dcsptrace's completeness check (its closing
	// end event was dropped with the rest of the tail).
	TraceTruncated bool `json:"trace_truncated,omitempty"`
}

// job is the daemon's in-memory record of one accepted submission.
type job struct {
	id        string
	seq       int64
	spec      JobSpec
	problem   *csp.Problem
	submitted time.Time
	deadline  time.Time
	events    *eventLog
	trace     *eventLog // causal trace capture; nil unless spec.Causal

	mu        sync.Mutex
	state     State
	attempts  int
	started   time.Time
	canceled  bool // cancel requested; honored at the next boundary
	status    JobStatus
	done      chan struct{}
	replayed  bool // re-enqueued by journal replay after a restart
	fromCache bool // completed result restored from the journal
}

func newJob(id string, seq int64, spec JobSpec, p *csp.Problem, now time.Time, eventLimit, traceLimit int) *job {
	j := &job{
		id:        id,
		seq:       seq,
		spec:      spec,
		problem:   p,
		submitted: now,
		deadline:  now.Add(time.Duration(spec.DeadlineMS) * time.Millisecond),
		events:    newEventLog(eventLimit),
		state:     StateQueued,
		done:      make(chan struct{}),
	}
	if spec.Causal {
		j.trace = newEventLog(traceLimit)
	}
	return j
}

// snapshot renders the job's current JobStatus.
func (j *job) snapshot(now time.Time) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := j.status
	st.ID = j.id
	st.Tenant = j.spec.Tenant
	st.State = j.state
	st.Attempts = j.attempts
	st.FromJournal = j.fromCache
	st.EventsTruncated = j.events.Truncated()
	if j.trace != nil {
		st.TraceTruncated = j.trace.Truncated()
	}
	switch j.state {
	case StateQueued:
		st.QueueMS = now.Sub(j.submitted).Milliseconds()
	case StateRunning:
		st.QueueMS = j.started.Sub(j.submitted).Milliseconds()
		st.RunMS = now.Sub(j.started).Milliseconds()
	}
	return st
}

// markRunning transitions queued→running; false when a cancel won the race.
func (j *job) markRunning(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// complete finalizes the job with st (the caller fills timing fields). A
// second completion is a programming error; the closed done channel makes
// it loud.
func (j *job) complete(st JobStatus) {
	j.mu.Lock()
	j.state = StateDone
	j.status = st
	j.mu.Unlock()
	j.events.closeLog()
	if j.trace != nil {
		j.trace.closeLog()
	}
	close(j.done)
}

// errDraining is returned by Submit while the daemon is draining.
var errDraining = errors.New("service: daemon is draining; not admitting jobs")
