package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/experiments"
	"github.com/discsp/discsp/internal/gen"
)

// testProblemJSON renders p as the native problem JSON a submit body embeds.
func testProblemJSON(t *testing.T, p *csp.Problem) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := csp.WriteProblemJSON(&buf, p); err != nil {
		t.Fatalf("WriteProblemJSON: %v", err)
	}
	return buf.Bytes()
}

// coloringSpec is a small solvable coloring instance as a submit body.
func coloringSpec(t *testing.T, seed int64) JobSpec {
	t.Helper()
	inst, err := gen.Coloring(8, 16, 3, seed)
	if err != nil {
		t.Fatalf("gen.Coloring: %v", err)
	}
	return JobSpec{Problem: testProblemJSON(t, inst.Problem)}
}

// insolubleProblem is the 1-variable problem whose only two values are both
// forbidden — the smallest instance with a nonexistence proof.
func insolubleProblem() *csp.Problem {
	p := csp.NewProblemUniform(1, 2)
	for val := 0; val < 2; val++ {
		ng, err := csp.NewNogood(csp.Lit{Var: 0, Val: csp.Value(val)})
		if err != nil {
			panic(err)
		}
		if err := p.AddNogood(ng); err != nil {
			panic(err)
		}
	}
	return p
}

func newTestDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func waitDone(t *testing.T, d *Daemon, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := d.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v (status %+v)", id, err, st)
	}
	return st
}

func TestSubmitSolveLifecycle(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2})
	st, err := d.Submit(coloringSpec(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.State != StateQueued && st.State != StateRunning {
		t.Fatalf("submit state = %q", st.State)
	}
	if st.Tenant != "default" {
		t.Fatalf("tenant = %q, want default", st.Tenant)
	}
	fin := waitDone(t, d, st.ID)
	if fin.Verdict != VerdictSolved || !fin.Solved {
		t.Fatalf("verdict = %+v, want solved", fin)
	}
	if len(fin.Assignment) != 8 || fin.Cycles == 0 {
		t.Fatalf("result fields missing: %+v", fin)
	}
	if got, ok := d.Get(st.ID); !ok || got.State != StateDone {
		t.Fatalf("Get after done = %+v ok=%v", got, ok)
	}
	if l := d.List(""); len(l) != 1 || l[0].ID != st.ID {
		t.Fatalf("List = %+v", l)
	}
	if l := d.List("nobody"); len(l) != 0 {
		t.Fatalf("List(nobody) = %+v", l)
	}
}

func TestInsolubleVerdict(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	st, err := d.Submit(JobSpec{Problem: testProblemJSON(t, insolubleProblem())})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if fin := waitDone(t, d, st.ID); fin.Verdict != VerdictInsoluble {
		t.Fatalf("verdict = %+v, want insoluble", fin)
	}
}

func TestSpecErrorsArePermanent(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: -1, MaxVars: 4})
	good := coloringSpec(t, 1)
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"bad runtime", func(s *JobSpec) { s.Runtime = "quantum" }, "runtime"},
		{"bad algorithm", func(s *JobSpec) { s.Algorithm = "dpll" }, "algorithm"},
		{"bad weight", func(s *JobSpec) { s.Weight = 99 }, "weight"},
		{"bad tenant", func(s *JobSpec) { s.Tenant = "a/b" }, "tenant"},
		{"negative deadline", func(s *JobSpec) { s.DeadlineMS = -1 }, "deadline_ms"},
		{"no problem", func(s *JobSpec) { s.Problem = nil }, "problem"},
		{"bad retention", func(s *JobSpec) { s.Retention = "fifo:9" }, "retention"},
		{"faults on sync", func(s *JobSpec) { s.FaultProfile = "drop=0.1" }, "fault_profile"},
		{"too many vars", func(s *JobSpec) {}, "caps jobs at 4"},
		{"synthetic delay gated", func(s *JobSpec) { s.SyntheticDelayMS = 10 }, "synthetic_delay_ms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := good
			tc.mut(&spec)
			_, err := d.Submit(spec)
			var serr *SpecError
			if !errors.As(err, &serr) {
				t.Fatalf("err = %v, want *SpecError", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q does not mention %q", err, tc.want)
			}
		})
	}
	// Nothing was accepted: spec errors are rejected before the journal.
	if l := d.List(""); len(l) != 0 {
		t.Fatalf("rejected specs were admitted: %+v", l)
	}
}

// blockWorkers installs a beforeRun hook that parks every worker attempt on
// a channel, returning the release function. Release is also registered as
// a cleanup so a failing test cannot leave Close waiting on a parked worker.
func blockWorkers(t *testing.T, d *Daemon) (started <-chan string, release func()) {
	t.Helper()
	ch := make(chan string, 64)
	gate := make(chan struct{})
	d.beforeRun = func(id string, attempt int) {
		ch <- id
		<-gate
	}
	var once sync.Once
	release = func() { once.Do(func() { close(gate) }) }
	t.Cleanup(release)
	return ch, release
}

func TestAdmissionControlSheds(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, MaxQueue: 2, MaxQueuePerTenant: 1, MaxRunningPerTenant: 1})
	started, release := blockWorkers(t, d)
	defer release()

	// Occupy the only worker.
	first, err := d.Submit(coloringSpec(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started

	// One queued job per tenant fits; the tenant's second is shed while
	// another tenant is still admitted — per-tenant isolation.
	specA := coloringSpec(t, 2)
	specA.Tenant = "alpha"
	if _, err := d.Submit(specA); err != nil {
		t.Fatalf("first alpha submit: %v", err)
	}
	if _, err := d.Submit(specA); !errors.Is(err, ErrTenantQueueFull) {
		t.Fatalf("second alpha submit err = %v, want ErrTenantQueueFull", err)
	}
	specB := coloringSpec(t, 3)
	specB.Tenant = "beta"
	if _, err := d.Submit(specB); err != nil {
		t.Fatalf("beta submit: %v", err)
	}
	// The global bound is now hit: everyone is shed.
	specC := coloringSpec(t, 4)
	specC.Tenant = "gamma"
	if _, err := d.Submit(specC); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-bound submit err = %v, want ErrQueueFull", err)
	}
	if got := d.Registry().Counter("dcspd_jobs_shed_total").Value(); got != 2 {
		t.Fatalf("shed counter = %d, want 2", got)
	}

	release()
	for _, id := range []string{first.ID} {
		if fin := waitDone(t, d, id); fin.Verdict != VerdictSolved {
			t.Fatalf("job %s verdict = %q", id, fin.Verdict)
		}
	}
}

func TestStrideSchedulerWeightedFairness(t *testing.T) {
	s := newScheduler(64, 64, 8)
	mk := func(tenant string, weight, n int) {
		for i := 0; i < n; i++ {
			spec := JobSpec{Tenant: tenant, Weight: weight, DeadlineMS: 60000}
			j := newJob(tenant+string(rune('0'+i)), int64(i), spec, nil, time.Now(), 0, 0)
			if err := s.enqueue(j); err != nil {
				t.Fatalf("enqueue: %v", err)
			}
		}
	}
	mk("heavy", 4, 8)
	mk("light", 1, 8)
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		j, ok := s.next()
		if !ok {
			t.Fatalf("next returned !ok at %d", i)
		}
		counts[j.spec.Tenant]++
		s.release(j.spec.Tenant)
	}
	// Weight 4 vs 1 → 4:1 service ratio over any window.
	if counts["heavy"] != 8 || counts["light"] != 2 {
		t.Fatalf("dispatch counts = %v, want heavy:8 light:2", counts)
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, MaxQueue: 8})
	started, release := blockWorkers(t, d)

	first, err := d.Submit(coloringSpec(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	doomed, err := d.Submit(JobSpec{Problem: coloringSpec(t, 2).Problem, DeadlineMS: 30})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	time.Sleep(80 * time.Millisecond) // let the queued job's deadline lapse
	release()

	fin := waitDone(t, d, doomed.ID)
	if fin.Verdict != VerdictTimeout {
		t.Fatalf("verdict = %+v, want timeout", fin)
	}
	if !strings.Contains(fin.Report, "in queue") {
		t.Fatalf("report %q does not explain the queue expiry", fin.Report)
	}
	if d.Registry().Counter("dcspd_jobs_deadline_expired_total").Value() != 1 {
		t.Fatalf("expired counter not bumped")
	}
	waitDone(t, d, first.ID)
}

func TestRunTimeoutCarriesWatchdogReport(t *testing.T) {
	// A permanent partition from t=0 means the async run can never reach a
	// verdict (the all-zero initial coloring violates edges, and no message
	// crosses the cut): the deadline must expire mid-run, and the stall
	// watchdog's diagnosis must surface in the job's report.
	d := newTestDaemon(t, Config{Workers: 1})
	st, err := d.Submit(JobSpec{
		Problem:      coloringSpec(t, 1).Problem,
		Runtime:      "async",
		FaultProfile: "partition=0s+never",
		DeadlineMS:   500,
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitDone(t, d, st.ID)
	if fin.Verdict != VerdictTimeout {
		t.Fatalf("verdict = %+v, want timeout", fin)
	}
	if fin.Report == "" {
		t.Fatalf("timeout carried no watchdog report: %+v", fin)
	}
}

func TestTransientCrashIsRetried(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, RetryMax: 2, RetryBackoff: time.Millisecond})
	var calls atomic.Int64
	d.beforeRun = func(id string, attempt int) {
		if calls.Add(1) == 1 {
			panic("injected worker crash")
		}
	}
	st, err := d.Submit(coloringSpec(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitDone(t, d, st.ID)
	if fin.Verdict != VerdictSolved {
		t.Fatalf("verdict = %+v, want solved after retry", fin)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", fin.Attempts)
	}
	if d.Registry().Counter("dcspd_job_retries_total").Value() != 1 {
		t.Fatalf("retry counter not bumped")
	}
}

func TestRetryBudgetExhaustsRecoverably(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, RetryMax: 1, RetryBackoff: time.Millisecond})
	d.beforeRun = func(id string, attempt int) { panic("always crashing") }
	st, err := d.Submit(coloringSpec(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fin := waitDone(t, d, st.ID)
	if fin.Verdict != VerdictFailed || !fin.Recoverable {
		t.Fatalf("verdict = %+v, want recoverable failure", fin)
	}
	if !strings.Contains(fin.Error, "worker crashed") {
		t.Fatalf("error %q does not name the crash", fin.Error)
	}
	if fin.Attempts != 2 {
		t.Fatalf("attempts = %d, want RetryMax+1 = 2", fin.Attempts)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: -1})
	st, err := d.Submit(coloringSpec(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	got, err := d.Cancel(st.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got.State != StateDone || got.Verdict != VerdictCanceled {
		t.Fatalf("after cancel: %+v", got)
	}
	// Canceling again is a no-op returning the same status.
	if again, err := d.Cancel(st.ID); err != nil || again.Verdict != VerdictCanceled {
		t.Fatalf("re-cancel = %+v, %v", again, err)
	}
	if _, err := d.Cancel("j99999999"); err == nil {
		t.Fatalf("cancel of unknown job did not error")
	}
}

func TestDrainFinishesBacklogAndRefusesNewWork(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 2, MaxQueue: 16, MaxQueuePerTenant: 16})
	var ids []string
	for i := int64(0); i < 6; i++ {
		st, err := d.Submit(coloringSpec(t, i+1))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := d.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range ids {
		st, ok := d.Get(id)
		if !ok || st.State != StateDone || st.Verdict != VerdictSolved {
			t.Fatalf("after drain, job %s = %+v", id, st)
		}
	}
	if _, err := d.Submit(coloringSpec(t, 9)); !errors.Is(err, errDraining) {
		t.Fatalf("submit after drain err = %v, want errDraining", err)
	}
	if !d.Draining() {
		t.Fatalf("Draining() = false after Drain")
	}
}

func TestJournalRecoveryAfterCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	spec := coloringSpec(t, 7)

	// Phase 1: a daemon with no workers accepts two jobs — journaled, acked,
	// never executed — then dies (Close is the crash-shaped shutdown).
	d1 := newTestDaemon(t, Config{Workers: -1, JournalPath: path})
	a, err := d1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit a: %v", err)
	}
	b, err := d1.Submit(JobSpec{Problem: testProblemJSON(t, insolubleProblem())})
	if err != nil {
		t.Fatalf("Submit b: %v", err)
	}
	d1.Close()

	// Phase 2: restart replays the log and finishes the interrupted jobs.
	d2 := newTestDaemon(t, Config{Workers: 2, JournalPath: path})
	finA := waitDone(t, d2, a.ID)
	finB := waitDone(t, d2, b.ID)
	if finA.Verdict != VerdictSolved || finB.Verdict != VerdictInsoluble {
		t.Fatalf("replayed verdicts = %q, %q", finA.Verdict, finB.Verdict)
	}
	if d2.Registry().Counter("dcspd_jobs_replayed_total").Value() != 2 {
		t.Fatalf("replayed counter != 2")
	}
	if err := d2.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Phase 3: another restart serves both results from the journal with
	// zero re-execution — the hook counts executions.
	d3 := newTestDaemon(t, Config{Workers: 2, JournalPath: path})
	var executions atomic.Int64
	d3.beforeRun = func(string, int) { executions.Add(1) }
	gotA, ok := d3.Get(a.ID)
	if !ok {
		t.Fatalf("job %s missing after second restart", a.ID)
	}
	gotB, _ := d3.Get(b.ID)
	if gotA.Verdict != VerdictSolved || gotB.Verdict != VerdictInsoluble {
		t.Fatalf("cached verdicts = %q, %q", gotA.Verdict, gotB.Verdict)
	}
	if !gotA.FromJournal || !gotB.FromJournal {
		t.Fatalf("results not marked from_journal: %+v %+v", gotA, gotB)
	}
	// The journaled assignment survives the round trip.
	if len(gotA.Assignment) != 8 {
		t.Fatalf("cached assignment lost: %+v", gotA)
	}
	time.Sleep(50 * time.Millisecond)
	if n := executions.Load(); n != 0 {
		t.Fatalf("restart re-executed %d completed jobs", n)
	}
	if d3.Registry().Counter("dcspd_jobs_cached_total").Value() != 2 {
		t.Fatalf("cached counter != 2")
	}
}

func TestJournalRecoveryOfCancel(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	d1 := newTestDaemon(t, Config{Workers: -1, JournalPath: path})
	st, err := d1.Submit(coloringSpec(t, 3))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := d1.Cancel(st.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	d1.Close()

	d2 := newTestDaemon(t, Config{Workers: 2, JournalPath: path})
	got, ok := d2.Get(st.ID)
	if !ok || got.Verdict != VerdictCanceled || !got.FromJournal {
		t.Fatalf("replayed cancel = %+v ok=%v", got, ok)
	}
}

func TestWarmCacheSharedAcrossJobs(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1, WarmStart: true})
	// Seed 6 is an instance whose solve leaves surviving learned nogoods
	// (verified by the cross-run warm-start bench; seeds like 5 solve too
	// cleanly to learn anything worth caching).
	spec := coloringSpec(t, 6)
	first, err := d.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, d, first.ID)
	if n := d.Stats().WarmNogoods; n == 0 {
		t.Fatalf("warm cache empty after a solved AWC job")
	}
	// A second identical instance still reaches the same verdict when
	// warm-started from the first run's learned nogoods.
	second, err := d.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if fin := waitDone(t, d, second.ID); fin.Verdict != VerdictSolved {
		t.Fatalf("warm-started verdict = %q", fin.Verdict)
	}
}

func TestEventsCaptured(t *testing.T) {
	d := newTestDaemon(t, Config{Workers: 1})
	st, err := d.Submit(coloringSpec(t, 2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone(t, d, st.ID)
	log, ok := d.events(st.ID)
	if !ok {
		t.Fatalf("events log missing")
	}
	chunk, _, closed, _ := log.snapshot(0)
	if !closed {
		t.Fatalf("event log not closed after completion")
	}
	lines := bytes.Split(bytes.TrimSpace(chunk), []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("event stream has %d lines, want meta + end at least", len(lines))
	}
	var meta struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(lines[0], &meta); err != nil || meta.Kind != "meta" {
		t.Fatalf("first event = %s (err %v), want kind meta", lines[0], err)
	}
}

func TestEventLogBounds(t *testing.T) {
	l := newEventLog(32)
	if n, err := l.Write([]byte(strings.Repeat("a", 30) + "\n")); err != nil || n != 31 {
		t.Fatalf("write: %d, %v", n, err)
	}
	// The next event would exceed the cap: dropped whole, no error.
	if _, err := l.Write([]byte("bbbb\n")); err != nil {
		t.Fatalf("over-cap write errored: %v", err)
	}
	if !l.Truncated() {
		t.Fatalf("log not marked truncated")
	}
	chunk, _, _, _ := l.snapshot(0)
	if strings.Contains(string(chunk), "b") {
		t.Fatalf("dropped event leaked into the log: %q", chunk)
	}
}

func TestSubmitAckIsDurable(t *testing.T) {
	// The acknowledgment contract: once Submit returns, the job is in the
	// journal — byte-for-byte recoverable by a fresh jobLog reader.
	path := filepath.Join(t.TempDir(), "jobs.journal")
	d := newTestDaemon(t, Config{Workers: -1, JournalPath: path})
	st, err := d.Submit(coloringSpec(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Read the log via a copy while the daemon still holds its own handle —
	// the record must already be on disk.
	entries := readLogCopy(t, path)
	if len(entries) != 1 || entries[0].accept.ID != st.ID || entries[0].done != nil {
		t.Fatalf("journal after ack = %+v", entries)
	}
	if tenant := entries[0].accept.Spec.Tenant; tenant != "default" {
		t.Fatalf("journaled spec lost normalization: tenant %q", tenant)
	}
	d.Close()
}

// readLogCopy replays a journal file via a copy, so the daemon's own handle
// stays untouched.
func readLogCopy(t *testing.T, path string) []replayEntry {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	copyPath := filepath.Join(t.TempDir(), "copy.journal")
	if err := os.WriteFile(copyPath, data, 0o644); err != nil {
		t.Fatalf("write copy: %v", err)
	}
	l, err := openJobLog(copyPath)
	if err != nil {
		t.Fatalf("open copy: %v", err)
	}
	defer l.close()
	entries, err := l.replay()
	if err != nil {
		t.Fatalf("replay copy: %v", err)
	}
	return entries
}

func TestJobLogRejectsTrialJournal(t *testing.T) {
	// A PR-4 trial journal and a job log must never be confused: the format
	// pin in the header makes opening the wrong kind an error.
	path := filepath.Join(t.TempDir(), "trials.journal")
	trial, err := experiments.OpenJournal(path, experiments.JournalMeta{SeedBase: 1, MaxCycles: 100}, true)
	if err != nil {
		t.Fatalf("open trial journal: %v", err)
	}
	trial.Close()
	if _, err := openJobLog(path); err == nil {
		t.Fatalf("job log opened a trial journal")
	}
}
