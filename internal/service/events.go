// Per-job progress-event capture: each job's schema-2 telemetry stream is
// recorded into a bounded in-memory log that GET /v1/jobs/{id}/events can
// replay and follow live. The bound is part of the robustness story — a
// pathological run cannot grow daemon memory through its own telemetry;
// once the cap is hit, later events are dropped and the job's status
// reports events_truncated (the run itself is unaffected: telemetry is
// observationally inert).
package service

import "sync"

// defaultEventLimit bounds one job's captured event bytes.
const defaultEventLimit = 256 << 10

// defaultTraceLimit bounds one job's captured causal-trace bytes. Span
// streams record every activation and message emission, so they run far
// larger than progress events.
const defaultTraceLimit = 4 << 20

// eventLog is an append-only byte log with follow semantics. It implements
// io.Writer so a telemetry Recorder can write JSONL into it directly.
type eventLog struct {
	mu        sync.Mutex
	buf       []byte
	limit     int
	truncated bool
	closed    bool
	change    chan struct{} // closed-and-replaced on every append/close
}

func newEventLog(limit int) *eventLog {
	if limit <= 0 {
		limit = defaultEventLimit
	}
	return &eventLog{limit: limit, change: make(chan struct{})}
}

// Write appends p, dropping it (without error — telemetry must never fail a
// job) once the log is closed or the cap is reached. Events are dropped
// whole, never split, so the log stays valid JSONL.
func (l *eventLog) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.truncated {
		return len(p), nil
	}
	if len(l.buf)+len(p) > l.limit {
		l.truncated = true
		return len(p), nil
	}
	l.buf = append(l.buf, p...)
	l.signalLocked()
	return len(p), nil
}

// reset discards everything captured so far so a retried attempt starts a
// fresh stream — a causal trace must hold exactly one traced run, and the
// crashed attempt's torn tail is noise. Followers mid-stream see their
// offset rewind and re-read from the top.
func (l *eventLog) reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.buf = nil
	l.truncated = false
	l.signalLocked()
}

// closeLog marks the stream complete and wakes followers.
func (l *eventLog) closeLog() {
	l.mu.Lock()
	l.closed = true
	l.signalLocked()
	l.mu.Unlock()
}

func (l *eventLog) signalLocked() {
	close(l.change)
	l.change = make(chan struct{})
}

// Truncated reports whether the cap dropped any events.
func (l *eventLog) Truncated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// snapshot returns the bytes past off, the new offset, whether the log is
// complete, and a channel that closes on the next change — everything a
// follower needs to stream without polling.
func (l *eventLog) snapshot(off int) (chunk []byte, next int, closed bool, change <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if off < len(l.buf) {
		chunk = append([]byte(nil), l.buf[off:]...)
	}
	return chunk, len(l.buf), l.closed, l.change
}
