// The HTTP surface: a small JSON API over the Daemon, plus the PR-5
// telemetry mux mounted under the same listener. Error mapping is the
// admission-control contract made visible:
//
//	400  *SpecError            permanent — fix the request
//	429  ErrQueueFull / tenant  shed — back off Retry-After seconds, resubmit
//	503  errDraining            the daemon is shutting down — find another
//	                            instance or wait for the restart
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/discsp/discsp/internal/telemetry"
)

// Handler mounts the service API on a fresh mux:
//
//	POST   /v1/jobs            submit → 202 + JobStatus
//	GET    /v1/jobs            list (optional ?tenant=)
//	GET    /v1/jobs/{id}       status
//	GET    /v1/jobs/{id}/events  stream the job's JSONL progress events
//	                             (?follow=1 keeps the stream open until done)
//	GET    /v1/jobs/{id}/trace   stream the job's causal trace (jobs
//	                             submitted with "causal": true; same ?follow=1)
//	DELETE /v1/jobs/{id}       cancel
//	GET    /v1/stats           queue shape
//	GET    /healthz            200 serving / 503 draining
//	/metrics, /metrics.json, /debug/vars, /debug/pprof/*  (telemetry mux)
func Handler(d *Daemon) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec JobSpec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad submit body: %v", err))
			return
		}
		st, err := d.Submit(spec)
		if err != nil {
			submitError(w, d, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{d.List(r.URL.Query().Get("tenant"))})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := d.Get(r.PathValue("id"))
		if !ok {
			httpError(w, http.StatusNotFound, "no such job")
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		serveEvents(d, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		serveTrace(d, w, r)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := d.Cancel(r.PathValue("id"))
		if err != nil {
			httpError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, d.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if d.Draining() {
			httpError(w, http.StatusServiceUnavailable, "draining")
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	// The PR-5 observability surface rides the same listener.
	mux.Handle("/metrics", telemetry.NewMux(d.Registry()))
	mux.Handle("/metrics.json", telemetry.NewMux(d.Registry()))
	mux.Handle("/debug/", telemetry.NewMux(d.Registry()))
	return mux
}

// serveEvents streams a job's captured schema-2 JSONL events.
func serveEvents(d *Daemon, w http.ResponseWriter, r *http.Request) {
	log, ok := d.events(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	serveLog(log, "X-Events-Truncated", w, r)
}

// serveTrace streams a job's captured causal trace — the schema-3 span
// stream dcsptrace's -critical-path / -provenance / -perfetto analyses
// read. 404 for jobs not submitted with "causal": true: absence of capture
// is a submit-time choice, not an empty stream.
func serveTrace(d *Daemon, w http.ResponseWriter, r *http.Request) {
	log, ok := d.trace(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	if log == nil {
		httpError(w, http.StatusNotFound, `job was not submitted with "causal": true`)
		return
	}
	serveLog(log, "X-Trace-Truncated", w, r)
}

// serveLog streams one bounded JSONL log. Without ?follow=1 it returns the
// buffer as-is; with it, the response stays open and flushes new events
// until the job completes or the client goes away.
func serveLog(log *eventLog, truncHeader string, w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/x-ndjson")
	if log.Truncated() {
		w.Header().Set(truncHeader, "true")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out now: a follower of a job with no events yet
		// must see the 200 immediately, not when the first event lands.
		flusher.Flush()
	}
	off := 0
	for {
		chunk, next, closed, change := log.snapshot(off)
		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		off = next
		if !follow || closed {
			return
		}
		select {
		case <-change:
		case <-r.Context().Done():
			return
		}
	}
}

// submitError maps a Submit failure to its status code and backoff hint.
func submitError(w http.ResponseWriter, d *Daemon, err error) {
	var spec *SpecError
	switch {
	case errors.As(err, &spec):
		httpError(w, http.StatusBadRequest, err.Error())
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTenantQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d.RetryAfter())))
		httpError(w, http.StatusTooManyRequests, err.Error())
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(d.RetryAfter())))
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// retryAfterSeconds renders a backoff hint in whole seconds, minimum 1 (a
// Retry-After of 0 reads as "immediately", which defeats the point).
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{msg})
}
