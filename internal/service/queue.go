// Admission and scheduling: a bounded, weighted-fair, per-tenant queue.
//
// Admission is load shedding by construction — the global and per-tenant
// bounds are checked at enqueue and an over-limit submission fails
// immediately (the HTTP layer turns that into 429 + Retry-After), so queue
// depth can never grow without bound no matter how fast clients submit.
//
// Dispatch is stride scheduling: each tenant holds a pass value advanced by
// stride = strideScale/weight per dispatched job, and the dispatcher picks
// the backlogged tenant with the smallest pass (ties broken by tenant name,
// so the schedule is deterministic given the submission sequence). A tenant
// at its concurrency quota is skipped without advancing its pass — the
// quota caps a tenant's parallelism, fair share decides who goes next among
// those under it. New or returning tenants join at the current virtual
// time, which prevents both banked credit and starvation.
package service

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// strideScale is the stride numerator; weight w gives stride strideScale/w.
const strideScale = 1 << 16

// maxTenantWeight caps fair-share weights (and keeps strides non-zero).
const maxTenantWeight = 16

// ErrQueueFull is returned by Submit when the global queue bound is hit;
// the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("service: queue full")

// ErrTenantQueueFull is the per-tenant flavor of ErrQueueFull: one tenant
// has hit its backlog bound while the global queue still has room, so other
// tenants keep being admitted.
var ErrTenantQueueFull = errors.New("service: tenant queue full")

type tenantQ struct {
	name    string
	weight  int
	stride  int64
	pass    int64
	fifo    []*job
	running int
}

// scheduler is the daemon's run queue. All methods are safe for concurrent
// use; next blocks until a job is dispatchable.
type scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond

	maxQueue       int // global backlog bound
	maxTenantQueue int // per-tenant backlog bound
	tenantSlots    int // per-tenant concurrency quota

	tenants  map[string]*tenantQ
	queued   int
	running  int
	vtime    int64
	draining bool // next returns false once the backlog is empty
	stopped  bool // next returns false immediately (abandon)
}

func newScheduler(maxQueue, maxTenantQueue, tenantSlots int) *scheduler {
	s := &scheduler{
		maxQueue:       maxQueue,
		maxTenantQueue: maxTenantQueue,
		tenantSlots:    tenantSlots,
		tenants:        make(map[string]*tenantQ),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// enqueue admits j or fails with ErrQueueFull / ErrTenantQueueFull. The
// tenant's weight is refreshed from the spec (last submission wins).
func (s *scheduler) enqueue(j *job) error { return s.add(j, false) }

// enqueueReplay re-queues a journaled job, bypassing the admission bounds:
// they cap new submissions, and this job was already admitted by a previous
// process (a crash can leave queued + running > maxQueue, since running
// jobs rejoin the queue on replay).
func (s *scheduler) enqueueReplay(j *job) { s.add(j, true) }

func (s *scheduler) add(j *job, replay bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !replay && s.queued >= s.maxQueue {
		return fmt.Errorf("%w: %d jobs queued (bound %d)", ErrQueueFull, s.queued, s.maxQueue)
	}
	t := s.tenant(j.spec.Tenant)
	if !replay && len(t.fifo) >= s.maxTenantQueue {
		return fmt.Errorf("%w: tenant %q has %d jobs queued (bound %d)", ErrTenantQueueFull, t.name, len(t.fifo), s.maxTenantQueue)
	}
	if j.spec.Weight != t.weight {
		t.weight = j.spec.Weight
		t.stride = strideScale / int64(t.weight)
	}
	t.fifo = append(t.fifo, j)
	s.queued++
	s.cond.Signal()
	return nil
}

// tenant returns (creating if needed) the tenant's queue state. A tenant
// with no backlog and no running jobs re-joins at the current virtual time.
func (s *scheduler) tenant(name string) *tenantQ {
	t, ok := s.tenants[name]
	if !ok {
		t = &tenantQ{name: name, weight: 1, stride: strideScale, pass: s.vtime}
		s.tenants[name] = t
		return t
	}
	if len(t.fifo) == 0 && t.running == 0 && t.pass < s.vtime {
		t.pass = s.vtime
	}
	return t
}

// next blocks until a job is dispatchable and claims it (the tenant's
// running count is incremented; the worker must pair it with release). It
// returns false when the scheduler is stopped, or is draining with an empty
// backlog — the worker-exit signal.
func (s *scheduler) next() (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.stopped {
			return nil, false
		}
		if best := s.pick(); best != nil {
			j := best.fifo[0]
			best.fifo = best.fifo[:copy(best.fifo, best.fifo[1:])]
			s.queued--
			best.running++
			s.running++
			s.vtime = best.pass
			best.pass += best.stride
			return j, true
		}
		if s.draining && s.queued == 0 {
			return nil, false
		}
		s.cond.Wait()
	}
}

// pick selects the minimum-pass tenant with backlog and a free quota slot.
func (s *scheduler) pick() *tenantQ {
	var best *tenantQ
	for _, t := range s.tenants {
		if len(t.fifo) == 0 || t.running >= s.tenantSlots {
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
			best = t
		}
	}
	return best
}

// release returns a tenant's concurrency slot after a job finishes.
func (s *scheduler) release(tenant string) {
	s.mu.Lock()
	if t, ok := s.tenants[tenant]; ok && t.running > 0 {
		t.running--
		s.running--
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// remove withdraws a queued job (cancel); false when it is not queued here
// (already dispatched or unknown).
func (s *scheduler) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tenants {
		for i, j := range t.fifo {
			if j.id == id {
				t.fifo = append(t.fifo[:i], t.fifo[i+1:]...)
				s.queued--
				return true
			}
		}
	}
	return false
}

// drain flips the scheduler into drain mode: next keeps dispatching the
// backlog but returns false once it is empty.
func (s *scheduler) drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// stop abandons the backlog: next returns false immediately. Queued jobs
// stay journaled as accepted, so a restart re-runs them — stop is the
// crash-shaped shutdown, drain the graceful one.
func (s *scheduler) stop() {
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// depth reports the global backlog and the running count.
func (s *scheduler) depth() (queued, running int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.running
}

// tenantDepths reports per-tenant backlog sizes (omitting idle tenants).
func (s *scheduler) tenantDepths() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int)
	for name, t := range s.tenants {
		if len(t.fifo) > 0 {
			out[name] = len(t.fifo)
		}
	}
	return out
}

// oldestAge returns how long the oldest queued job has been waiting as of
// now; zero when the backlog is empty.
func (s *scheduler) oldestAge(now time.Time) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldest time.Time
	for _, t := range s.tenants {
		if len(t.fifo) > 0 {
			if oldest.IsZero() || t.fifo[0].submitted.Before(oldest) {
				oldest = t.fifo[0].submitted
			}
		}
	}
	if oldest.IsZero() {
		return 0
	}
	return now.Sub(oldest)
}
