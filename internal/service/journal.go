// The durable job log: dcspd's crash-survivability rides on the PR-4
// journal machinery (internal/experiments) — an append-only JSONL file with
// fsync-per-record durability, exact torn-tail truncation, and refusal of
// mid-file corruption. The service pins its own JournalMeta.Format so a job
// log and a trial journal can never be mistaken for each other.
//
// Three record classes, all keyed by job id:
//
//	accept/<id>  the full spec — written and fsync'd BEFORE the submit is
//	             acknowledged, so an accepted job survives any crash
//	done/<id>    the final status — written before the job is reported done
//	cancel/<id>  a withdrawal of a still-queued job
//
// Restart replays the log: accept+done serves the cached result with no
// re-execution; accept+cancel stays canceled; accept alone re-enqueues the
// job, which re-runs deterministically (same spec, same seed).
package service

import (
	"fmt"
	"strings"

	"github.com/discsp/discsp/internal/experiments"
)

// jobLogFormat is the JournalMeta.Format pin; bump the suffix on any
// incompatible record change.
const jobLogFormat = "dcspd-jobs/1"

// acceptRecord is the journaled form of an accepted submission.
type acceptRecord struct {
	ID   string  `json:"id"`
	Seq  int64   `json:"seq"`
	Spec JobSpec `json:"spec"`
}

// doneRecord is the journaled form of a final status. It is the JobStatus
// minus the fields that are recomputed per process (state, from_journal).
type doneRecord struct {
	Verdict     Verdict `json:"verdict"`
	Recoverable bool    `json:"recoverable,omitempty"`
	Error       string  `json:"error,omitempty"`
	Report      string  `json:"report,omitempty"`
	Attempts    int     `json:"attempts"`
	Solved      bool    `json:"solved,omitempty"`
	Insoluble   bool    `json:"insoluble,omitempty"`
	Assignment  []int   `json:"assignment,omitempty"`
	Cycles      int     `json:"cycles,omitempty"`
	MaxCCK      int64   `json:"maxcck,omitempty"`
	TotalChecks int64   `json:"total_checks,omitempty"`
	Messages    int64   `json:"messages,omitempty"`
	QueueMS     int64   `json:"queue_ms"`
	RunMS       int64   `json:"run_ms,omitempty"`
}

func (r doneRecord) status() JobStatus {
	return JobStatus{
		Verdict: r.Verdict, Recoverable: r.Recoverable, Error: r.Error,
		Report: r.Report, Attempts: r.Attempts, Solved: r.Solved,
		Insoluble: r.Insoluble, Assignment: r.Assignment, Cycles: r.Cycles,
		MaxCCK: r.MaxCCK, TotalChecks: r.TotalChecks, Messages: r.Messages,
		QueueMS: r.QueueMS, RunMS: r.RunMS,
	}
}

func toDoneRecord(st JobStatus) doneRecord {
	return doneRecord{
		Verdict: st.Verdict, Recoverable: st.Recoverable, Error: st.Error,
		Report: st.Report, Attempts: st.Attempts, Solved: st.Solved,
		Insoluble: st.Insoluble, Assignment: st.Assignment, Cycles: st.Cycles,
		MaxCCK: st.MaxCCK, TotalChecks: st.TotalChecks, Messages: st.Messages,
		QueueMS: st.QueueMS, RunMS: st.RunMS,
	}
}

// jobLog wraps the experiments journal with the service's key scheme. A nil
// jobLog is the no-durability configuration; every method no-ops.
type jobLog struct {
	j *experiments.Journal
}

// openJobLog opens (or creates) the job log at path. An existing file is
// always resumed — that is the point of a job log.
func openJobLog(path string) (*jobLog, error) {
	j, err := experiments.OpenJournal(path, experiments.JournalMeta{Format: jobLogFormat}, true)
	if err != nil {
		return nil, fmt.Errorf("service: job log: %w", err)
	}
	return &jobLog{j: j}, nil
}

func (l *jobLog) recordAccept(rec acceptRecord) error {
	if l == nil {
		return nil
	}
	return l.j.Record("accept/"+rec.ID, rec)
}

func (l *jobLog) recordDone(id string, rec doneRecord) error {
	if l == nil {
		return nil
	}
	return l.j.Record("done/"+id, rec)
}

func (l *jobLog) recordCancel(id string) error {
	if l == nil {
		return nil
	}
	return l.j.Record("cancel/"+id, struct{}{})
}

// replayEntry is one accepted job recovered from the log.
type replayEntry struct {
	accept   acceptRecord
	done     *doneRecord // nil: the job never finished — re-run it
	canceled bool
}

// replay walks the log and reconstructs every accepted job, in submission
// (seq) order courtesy of Keys' sort over the zero-padded ids.
func (l *jobLog) replay() ([]replayEntry, error) {
	if l == nil {
		return nil, nil
	}
	var out []replayEntry
	for _, key := range l.j.Keys() {
		id, ok := strings.CutPrefix(key, "accept/")
		if !ok {
			continue
		}
		var e replayEntry
		if !l.j.Lookup(key, &e.accept) {
			return nil, fmt.Errorf("service: job log: accept record for %s is malformed", id)
		}
		var d doneRecord
		if l.j.Lookup("done/"+id, &d) {
			e.done = &d
		}
		e.canceled = l.j.Has("cancel/" + id)
		out = append(out, e)
	}
	return out, nil
}

func (l *jobLog) close() error {
	if l == nil {
		return nil
	}
	return l.j.Close()
}
