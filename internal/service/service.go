// Package service implements dcspd's core: a long-lived, multi-tenant,
// crash-survivable DisCSP solver daemon.
//
// Robustness is the design axis, in five mechanisms:
//
//   - Admission control: the run queue is bounded globally and per tenant;
//     an over-limit submission is shed immediately (HTTP 429 + Retry-After)
//     instead of growing memory. Weighted-fair stride scheduling plus
//     per-tenant concurrency quotas keep one tenant from starving the rest
//     (queue.go).
//   - Deadlines: every job carries a wall-clock deadline from acceptance.
//     A job whose deadline expires in the queue is failed fast with a
//     queue-expiry report; a run that hits its deadline on the async/tcp
//     runtimes surfaces the stall watchdog's diagnosis (stalled / livelock
//     / converging, per-agent progress) instead of a bare timeout.
//   - Failure classification: a worker that panics mid-solve fails the
//     attempt with a *recoverable* verdict and is retried with exponential
//     backoff; a malformed instance is rejected at the door (HTTP 400) and
//     never accepted at all. Accepted jobs always reach a verdict.
//   - Durability: accepted jobs are fsync'd to an append-only job log
//     before the submit is acknowledged (journal.go, riding the PR-4
//     machinery). On restart the log is replayed: finished jobs serve
//     their recorded results without re-execution; interrupted jobs are
//     re-enqueued and re-run deterministically.
//   - Graceful drain: SIGTERM stops admission (HTTP 503), lets the backlog
//     and in-flight jobs finish, persists the warm-start cache, and exits
//     0 with zero lost accepted jobs. A hard kill loses nothing either —
//     that is what the journal is for.
//
// Long-lived learning: the daemon shares one nogood warm-start cache and a
// default retention policy across all jobs (PR-6), so repeated tenant
// instances get cheaper over the daemon's lifetime while every store stays
// bounded.
package service

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/discsp/discsp"
	backoffpkg "github.com/discsp/discsp/internal/backoff"
	"github.com/discsp/discsp/internal/telemetry"
)

// Config tunes a Daemon. The zero value of each field selects the
// documented default.
type Config struct {
	// Workers is the solver-pool size; default GOMAXPROCS. Negative runs
	// no workers at all — jobs are accepted and journaled but never
	// executed, the accept-only half the recovery tests freeze a daemon in.
	Workers int
	// MaxQueue bounds the global backlog; default 64.
	MaxQueue int
	// MaxQueuePerTenant bounds one tenant's backlog; default MaxQueue/4.
	MaxQueuePerTenant int
	// MaxRunningPerTenant is the per-tenant concurrency quota; default
	// max(1, Workers/2).
	MaxRunningPerTenant int
	// DefaultDeadline applies when a spec carries none; default 30s.
	DefaultDeadline time.Duration
	// MaxDeadline clamps requested deadlines; default 5m.
	MaxDeadline time.Duration
	// MaxCyclesCap clamps a spec's sync cutoff; default 100000.
	MaxCyclesCap int
	// MaxVars rejects instances larger than the daemon wants to host;
	// default 4096.
	MaxVars int
	// RetryMax is how many times a transient failure (worker panic) is
	// retried before the job fails recoverably; default 2.
	RetryMax int
	// RetryBackoff is the first retry delay, doubling per attempt;
	// default 50ms.
	RetryBackoff time.Duration
	// RetryAfter is the client backoff hint on shed and drain responses;
	// default 1s.
	RetryAfter time.Duration
	// Retention is the default nogood retention policy for every job
	// (overridable per spec) — a resident process must bound its stores.
	Retention discsp.Retention
	// WarmStart enables the shared cross-job nogood cache.
	WarmStart bool
	// WarmCachePath persists the warm cache across restarts (loaded at
	// start, saved at drain). Implies WarmStart.
	WarmCachePath string
	// JournalPath enables the durable job log; empty runs memory-only.
	JournalPath string
	// Registry receives the daemon's metrics; nil mints a fresh one.
	Registry *discsp.MetricsRegistry
	// EventBufLimit bounds one job's captured progress events; default
	// 256 KiB.
	EventBufLimit int
	// TraceBufLimit bounds one job's captured causal-trace bytes (jobs
	// submitted with "causal": true); default 4 MiB.
	TraceBufLimit int
	// AllowSyntheticDelay accepts specs with synthetic_delay_ms — the
	// load/crash-testing knob. Off by default.
	AllowSyntheticDelay bool
	// Logf logs operational events; default log.Printf. Tests silence it.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	} else if c.Workers < 0 {
		c.Workers = 0
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueuePerTenant <= 0 {
		c.MaxQueuePerTenant = (c.MaxQueue + 3) / 4
	}
	if c.MaxRunningPerTenant <= 0 {
		c.MaxRunningPerTenant = max(1, c.Workers/2)
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.MaxCyclesCap <= 0 {
		c.MaxCyclesCap = 100000
	}
	if c.MaxVars <= 0 {
		c.MaxVars = 4096
	}
	if c.RetryMax < 0 {
		c.RetryMax = 0
	} else if c.RetryMax == 0 {
		c.RetryMax = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.WarmCachePath != "" {
		c.WarmStart = true
	}
	if c.EventBufLimit <= 0 {
		c.EventBufLimit = defaultEventLimit
	}
	if c.TraceBufLimit <= 0 {
		c.TraceBufLimit = defaultTraceLimit
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

// durationMSBuckets sizes queue-wait and run-time histograms (milliseconds).
var durationMSBuckets = []int64{1, 3, 10, 30, 100, 300, 1_000, 3_000, 10_000, 30_000, 60_000, 300_000}

// Daemon is a running solver service. Construct with New; shut down with
// Drain (graceful) or Close (abandon).
type Daemon struct {
	cfg   Config
	reg   *discsp.MetricsRegistry
	log   *jobLog
	cache *discsp.NogoodCache
	sched *scheduler

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string // submission order, for List
	seq      int64
	draining bool
	logMu    sync.Mutex // serializes log writes that must pair with state

	wg     sync.WaitGroup
	stopCh chan struct{}

	m struct {
		accepted, shed, completed, failed, canceled *telemetry.Counter
		retries, replayed, cached, expired          *telemetry.Counter
		queueDepth, running, oldestAgeUS            *telemetry.Gauge
	}

	// beforeRun, when non-nil, observes every execution attempt before the
	// solver starts — the tests' execution counter and fault hook.
	beforeRun func(id string, attempt int)
}

// New builds the daemon: it opens and replays the job log, loads the warm
// cache, and starts the solver pool. The returned daemon is serving (its
// Handler can be mounted) once New returns.
func New(cfg Config) (*Daemon, error) {
	cfg.fill()
	d := &Daemon{
		cfg:    cfg,
		reg:    cfg.Registry,
		jobs:   make(map[string]*job),
		sched:  newScheduler(cfg.MaxQueue, cfg.MaxQueuePerTenant, cfg.MaxRunningPerTenant),
		stopCh: make(chan struct{}),
	}
	if d.reg == nil {
		d.reg = discsp.NewMetricsRegistry()
	}
	d.m.accepted = d.reg.Counter("dcspd_jobs_accepted_total")
	d.m.shed = d.reg.Counter("dcspd_jobs_shed_total")
	d.m.completed = d.reg.Counter("dcspd_jobs_completed_total")
	d.m.failed = d.reg.Counter("dcspd_jobs_failed_total")
	d.m.canceled = d.reg.Counter("dcspd_jobs_canceled_total")
	d.m.retries = d.reg.Counter("dcspd_job_retries_total")
	d.m.replayed = d.reg.Counter("dcspd_jobs_replayed_total")
	d.m.cached = d.reg.Counter("dcspd_jobs_cached_total")
	d.m.expired = d.reg.Counter("dcspd_jobs_deadline_expired_total")
	d.m.queueDepth = d.reg.Gauge("dcspd_queue_depth")
	d.m.running = d.reg.Gauge("dcspd_running")
	d.m.oldestAgeUS = d.reg.Gauge("dcspd_queue_oldest_age_us")

	if cfg.WarmStart {
		if cfg.WarmCachePath != "" {
			cache, err := discsp.LoadNogoodCache(cfg.WarmCachePath)
			if err != nil {
				return nil, fmt.Errorf("service: warm cache: %w", err)
			}
			d.cache = cache
		} else {
			d.cache = discsp.NewNogoodCache()
		}
	}
	if cfg.JournalPath != "" {
		l, err := openJobLog(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		d.log = l
		if err := d.replay(); err != nil {
			l.close()
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// replay rebuilds state from the job log: done jobs become cached results,
// canceled jobs stay canceled, and accepted-but-unfinished jobs re-enter
// the queue (with fresh deadlines — the wall clock they were accepted under
// died with the old process; the verdict they reach does not depend on it
// for sync jobs, which re-run deterministically).
func (d *Daemon) replay() error {
	entries, err := d.log.replay()
	if err != nil {
		return err
	}
	sort.Slice(entries, func(i, k int) bool { return entries[i].accept.Seq < entries[k].accept.Seq })
	now := time.Now()
	for _, e := range entries {
		spec := e.accept.Spec
		p, perr := spec.problem()
		if perr != nil {
			// The spec was validated at accept; a parse failure here means
			// the daemon's caps changed between runs. Fail it permanently
			// rather than refusing to start.
			p = nil
		}
		j := newJob(e.accept.ID, e.accept.Seq, spec, p, now, d.cfg.EventBufLimit, d.cfg.TraceBufLimit)
		j.replayed = true
		if e.accept.Seq > d.seq {
			d.seq = e.accept.Seq
		}
		d.jobs[j.id] = j
		d.order = append(d.order, j.id)
		switch {
		case e.done != nil:
			j.fromCache = true
			j.complete(e.done.status())
			d.m.cached.Inc()
		case e.canceled:
			j.fromCache = true
			j.complete(JobStatus{Verdict: VerdictCanceled})
			d.m.cached.Inc()
		case perr != nil:
			d.finish(j, JobStatus{Verdict: VerdictFailed, Error: perr.Error()})
		default:
			// Re-queue past the admission bounds: this job was admitted by
			// the previous process, and an acknowledged job is never shed.
			d.m.replayed.Inc()
			d.sched.enqueueReplay(j)
		}
	}
	if n := len(entries); n > 0 {
		d.cfg.Logf("dcspd: job log replayed %d jobs (%d already finished)", n, d.m.cached.Value())
	}
	d.refreshGauges()
	return nil
}

// Submit validates, journals, and enqueues one job. The returned status is
// the acknowledgment: when it is non-nil the job is durably accepted (the
// journal was fsync'd). Errors: *SpecError (permanent, HTTP 400),
// ErrQueueFull / ErrTenantQueueFull (shed, HTTP 429), errDraining (503).
func (d *Daemon) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.normalize(&d.cfg); err != nil {
		return JobStatus{}, err
	}
	p, err := spec.problem()
	if err != nil {
		return JobStatus{}, err
	}
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return JobStatus{}, errDraining
	}
	d.seq++
	id := fmt.Sprintf("j%08d", d.seq)
	j := newJob(id, d.seq, spec, p, time.Now(), d.cfg.EventBufLimit, d.cfg.TraceBufLimit)
	d.mu.Unlock()

	// Enqueue before journaling would admit a job that a crash forgets;
	// journal before enqueue means a full queue sheds an already-durable
	// job. Neither is acceptable: probe the queue first (enqueue), and on
	// journal failure withdraw the probe. The accepted invariant holds:
	// acknowledged ⇒ journaled ⇒ survives any crash after this returns.
	if err := d.sched.enqueue(j); err != nil {
		d.m.shed.Inc()
		return JobStatus{}, err
	}
	if err := d.log.recordAccept(acceptRecord{ID: id, Seq: j.seq, Spec: spec}); err != nil {
		d.sched.remove(id)
		return JobStatus{}, fmt.Errorf("service: journal accept: %w", err)
	}
	d.mu.Lock()
	d.jobs[id] = j
	d.order = append(d.order, id)
	d.mu.Unlock()
	d.m.accepted.Inc()
	d.refreshGauges()
	return j.snapshot(time.Now()), nil
}

// Get returns a job's status.
func (d *Daemon) Get(id string) (JobStatus, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	return j.snapshot(time.Now()), true
}

// events returns a job's event log for streaming.
func (d *Daemon) events(id string) (*eventLog, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.events, true
}

// trace returns a job's causal-trace log for streaming. The bool reports
// whether the job exists; the log is nil when the job was not submitted
// with causal capture.
func (d *Daemon) trace(id string) (*eventLog, bool) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return nil, false
	}
	return j.trace, true
}

// Wait blocks until the job completes or ctx expires, then returns its
// status.
func (d *Daemon) Wait(ctx context.Context, id string) (JobStatus, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	select {
	case <-j.done:
		return j.snapshot(time.Now()), nil
	case <-ctx.Done():
		return j.snapshot(time.Now()), ctx.Err()
	}
}

// List returns every job's status in submission order, optionally filtered
// by tenant.
func (d *Daemon) List(tenant string) []JobStatus {
	d.mu.Lock()
	ids := append([]string(nil), d.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, d.jobs[id])
	}
	d.mu.Unlock()
	now := time.Now()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		if tenant != "" && j.spec.Tenant != tenant {
			continue
		}
		out = append(out, j.snapshot(now))
	}
	return out
}

// Cancel withdraws a job. A queued job is canceled immediately; a running
// job is marked so the cancel is honored at the next boundary (the solver
// runtimes are not preemptible mid-run — graceful degradation, not a lie
// about having stopped work already spent). Canceling a done job is a
// no-op that returns its status.
func (d *Daemon) Cancel(id string) (JobStatus, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return JobStatus{}, fmt.Errorf("service: unknown job %q", id)
	}
	j.mu.Lock()
	switch j.state {
	case StateDone:
		j.mu.Unlock()
		return j.snapshot(time.Now()), nil
	case StateRunning:
		j.canceled = true
		j.mu.Unlock()
		return j.snapshot(time.Now()), nil
	}
	j.canceled = true
	j.mu.Unlock()
	if d.sched.remove(id) {
		if err := d.log.recordCancel(id); err != nil {
			d.cfg.Logf("dcspd: journal cancel %s: %v", id, err)
		}
		now := time.Now()
		j.complete(JobStatus{Verdict: VerdictCanceled, QueueMS: now.Sub(j.submitted).Milliseconds()})
		d.m.canceled.Inc()
		d.refreshGauges()
	}
	return j.snapshot(time.Now()), nil
}

// worker is one solver-pool goroutine: claim, run, release, repeat, until
// the scheduler reports drained or stopped.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		j, ok := d.sched.next()
		if !ok {
			return
		}
		d.refreshGauges()
		d.runJob(j)
		d.sched.release(j.spec.Tenant)
		d.refreshGauges()
	}
}

// finish journals and applies a final status. Journal-before-expose is the
// ordering that makes "done" durable: a crash between the two replays the
// recorded result instead of re-running. A journal write failure downgrades
// durability, not availability — the result is still served, loudly.
func (d *Daemon) finish(j *job, st JobStatus) {
	if err := d.log.recordDone(j.id, toDoneRecord(st)); err != nil {
		d.cfg.Logf("dcspd: journal done %s: %v (result served from memory only)", j.id, err)
	}
	j.complete(st)
	switch st.Verdict {
	case VerdictFailed, VerdictTimeout:
		d.m.failed.Inc()
	case VerdictCanceled:
		d.m.canceled.Inc()
	default:
		d.m.completed.Inc()
	}
	d.observeJob(j, st)
}

// runJob executes one job to a verdict, with deadline enforcement, cancel
// checks, and transient-failure retries.
func (d *Daemon) runJob(j *job) {
	now := time.Now()
	if !j.markRunning(now) {
		// Cancel won the race between dequeue and start.
		if err := d.log.recordCancel(j.id); err != nil {
			d.cfg.Logf("dcspd: journal cancel %s: %v", j.id, err)
		}
		d.finish(j, JobStatus{Verdict: VerdictCanceled, QueueMS: now.Sub(j.submitted).Milliseconds()})
		return
	}
	queueMS := now.Sub(j.submitted).Milliseconds()
	if now.After(j.deadline) {
		// The deadline died in the queue: shed the work, keep the verdict
		// informative — this is the overload signal clients should widen
		// deadlines (or the operator should widen the pool) on.
		d.m.expired.Inc()
		queued, running := d.sched.depth()
		d.finish(j, JobStatus{
			Verdict: VerdictTimeout,
			Report: fmt.Sprintf("deadline expired after %dms in queue, before the job started (queue depth %d, running %d)",
				queueMS, queued, running),
			QueueMS: queueMS,
		})
		return
	}

	for attempt := 1; ; attempt++ {
		j.mu.Lock()
		j.attempts = attempt
		canceled := j.canceled
		j.mu.Unlock()
		if canceled {
			d.finish(j, JobStatus{Verdict: VerdictCanceled, Attempts: attempt - 1, QueueMS: queueMS})
			return
		}
		start := time.Now()
		st, transient := d.attempt(j, attempt, start)
		st.Attempts = attempt
		st.QueueMS = queueMS
		st.RunMS = time.Since(start).Milliseconds()
		if !transient {
			d.finish(j, st)
			return
		}
		// Transient failure: a crashed worker goroutine. Retry with
		// exponential backoff while the deadline and retry budget allow.
		d.m.retries.Inc()
		backoff := backoffpkg.Policy{Base: d.cfg.RetryBackoff}.Delay(attempt - 1)
		if attempt > d.cfg.RetryMax || time.Now().Add(backoff).After(j.deadline) {
			st.Verdict = VerdictFailed
			st.Recoverable = true
			d.finish(j, st)
			return
		}
		d.cfg.Logf("dcspd: job %s attempt %d crashed (%s); retrying in %v", j.id, attempt, st.Error, backoff)
		select {
		case <-time.After(backoff):
		case <-d.stopCh:
			// Abandon-style shutdown mid-retry: leave the job accepted in
			// the journal; the next process re-runs it.
			return
		}
	}
}

// attempt runs the solver once. transient=true marks a crashed worker (the
// recoverable class); the returned status is final otherwise.
func (d *Daemon) attempt(j *job, attempt int, start time.Time) (st JobStatus, transient bool) {
	defer func() {
		if r := recover(); r != nil {
			st = JobStatus{
				Verdict:     VerdictFailed,
				Recoverable: true,
				Error:       fmt.Sprintf("worker crashed: %v", r),
			}
			transient = true
		}
	}()
	// Inside the recover scope on purpose: a panicking hook is the tests'
	// stand-in for a worker goroutine crashing mid-solve.
	if d.beforeRun != nil {
		d.beforeRun(j.id, attempt)
	}
	if j.spec.SyntheticDelayMS > 0 {
		time.Sleep(time.Duration(j.spec.SyntheticDelayMS) * time.Millisecond)
	}
	remaining := time.Until(j.deadline)
	if remaining <= 0 {
		return JobStatus{Verdict: VerdictTimeout,
			Report: fmt.Sprintf("deadline expired before attempt %d started", attempt)}, false
	}
	tel := discsp.NewTelemetry(d.reg, j.events)
	opts := j.spec.options(remaining, d.cfg.Retention, d.cache)
	opts.Telemetry = tel
	if j.spec.Causal {
		// Each attempt restarts the trace stream: a causal trace holds
		// exactly one traced run, and a crashed attempt leaves a torn tail
		// the completeness check would (rightly) refuse.
		j.trace.reset()
		opts.Causal = discsp.NewTelemetry(nil, j.trace)
	}
	var res discsp.Result
	var err error
	switch j.spec.Runtime {
	case "async":
		res, err = discsp.SolveAsync(j.problem, opts)
	case "tcp":
		res, err = discsp.SolveTCP(j.problem, opts)
	default:
		res, err = discsp.Solve(j.problem, opts)
	}
	if ferr := tel.Flush(); ferr != nil {
		d.cfg.Logf("dcspd: job %s: event stream: %v", j.id, ferr)
	}
	if opts.Causal != nil {
		if ferr := opts.Causal.Flush(); ferr != nil {
			d.cfg.Logf("dcspd: job %s: causal trace stream: %v", j.id, ferr)
		}
	}
	st = JobStatus{
		Solved:      res.Solved,
		Insoluble:   res.Insoluble,
		Cycles:      res.Cycles,
		MaxCCK:      res.MaxCCK,
		TotalChecks: res.TotalChecks,
		Messages:    res.Messages,
	}
	if res.Solved {
		st.Assignment = make([]int, len(res.Assignment))
		for i, v := range res.Assignment {
			st.Assignment[i] = int(v)
		}
	}
	switch {
	case err != nil && discsp.IsTimeout(err):
		// The deadline expired mid-run. The stall watchdog's report is the
		// difference between "timed out" and a diagnosis.
		st.Verdict = VerdictTimeout
		if rep, ok := discsp.TimeoutReport(err); ok {
			st.Report = rep
		} else {
			st.Error = err.Error()
		}
	case err != nil:
		st.Verdict = VerdictFailed
		st.Error = err.Error()
	case res.Solved:
		st.Verdict = VerdictSolved
	case res.Insoluble:
		st.Verdict = VerdictInsoluble
	default:
		st.Verdict = VerdictExhausted
	}
	return st, false
}

// observeJob records per-tenant timing histograms and shared counters.
func (d *Daemon) observeJob(j *job, st JobStatus) {
	t := j.spec.Tenant
	d.reg.Histogram(telemetry.Name("dcspd_queue_wait_ms", "tenant", t), durationMSBuckets).Observe(st.QueueMS)
	if st.RunMS > 0 || st.Verdict == VerdictSolved || st.Verdict == VerdictInsoluble || st.Verdict == VerdictExhausted {
		d.reg.Histogram(telemetry.Name("dcspd_job_run_ms", "tenant", t), durationMSBuckets).Observe(st.RunMS)
	}
	d.reg.Counter(telemetry.Name("dcspd_jobs_done_total", "tenant", t)).Inc()
}

// refreshGauges recomputes the queue-shape gauges.
func (d *Daemon) refreshGauges() {
	queued, running := d.sched.depth()
	d.m.queueDepth.Set(int64(queued))
	d.m.running.Set(int64(running))
	d.m.oldestAgeUS.Set(d.sched.oldestAge(time.Now()).Microseconds())
}

// Draining reports whether the daemon has stopped admitting jobs.
func (d *Daemon) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// RetryAfter is the client backoff hint for shed and drain responses.
func (d *Daemon) RetryAfter() time.Duration { return d.cfg.RetryAfter }

// Registry exposes the daemon's metrics registry (for serving /metrics).
func (d *Daemon) Registry() *discsp.MetricsRegistry { return d.reg }

// Drain shuts down gracefully: stop admitting, let the backlog and
// in-flight jobs finish, persist the warm cache, close the job log. It
// returns nil when every accepted job reached a durable verdict; ctx
// expiry abandons the remainder (they stay journaled as accepted, so a
// restart finishes them — interrupted, not lost).
func (d *Daemon) Drain(ctx context.Context) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return fmt.Errorf("service: already draining")
	}
	d.draining = true
	d.mu.Unlock()
	d.sched.drain()

	workersDone := make(chan struct{})
	go func() {
		d.wg.Wait()
		close(workersDone)
	}()
	var drainErr error
	select {
	case <-workersDone:
	case <-ctx.Done():
		close(d.stopCh)
		d.sched.stop()
		<-workersDone
		queued, running := d.sched.depth()
		drainErr = fmt.Errorf("service: drain deadline expired with %d queued and %d running jobs (journaled as accepted; a restart resumes them)", queued, running)
	}
	d.shutdownState()
	return drainErr
}

// Close abandons the daemon without draining: workers stop after their
// current job, the backlog stays journaled as accepted. It is the
// crash-shaped shutdown tests use to exercise replay.
func (d *Daemon) Close() error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	d.mu.Unlock()
	select {
	case <-d.stopCh:
	default:
		close(d.stopCh)
	}
	d.sched.stop()
	d.wg.Wait()
	d.shutdownState()
	return nil
}

func (d *Daemon) shutdownState() {
	if d.cache != nil && d.cfg.WarmCachePath != "" {
		if err := d.cache.Save(d.cfg.WarmCachePath); err != nil {
			d.cfg.Logf("dcspd: save warm cache: %v", err)
		}
	}
	if err := d.log.close(); err != nil {
		d.cfg.Logf("dcspd: close job log: %v", err)
	}
}

// TenantStats is one tenant's slice of Stats.
type TenantStats struct {
	Queued int `json:"queued"`
}

// Stats is the service-shape snapshot served by GET /v1/stats.
type Stats struct {
	Queued         int                    `json:"queued"`
	Running        int                    `json:"running"`
	Jobs           int                    `json:"jobs"`
	Draining       bool                   `json:"draining"`
	OldestQueuedMS int64                  `json:"oldest_queued_ms,omitempty"`
	Tenants        map[string]TenantStats `json:"tenants,omitempty"`
	WarmNogoods    int                    `json:"warm_nogoods,omitempty"`
}

// Stats snapshots the daemon's shape.
func (d *Daemon) Stats() Stats {
	queued, running := d.sched.depth()
	d.mu.Lock()
	jobs := len(d.jobs)
	draining := d.draining
	d.mu.Unlock()
	st := Stats{
		Queued:         queued,
		Running:        running,
		Jobs:           jobs,
		Draining:       draining,
		OldestQueuedMS: d.sched.oldestAge(time.Now()).Milliseconds(),
	}
	depths := d.sched.tenantDepths()
	if len(depths) > 0 {
		st.Tenants = make(map[string]TenantStats, len(depths))
		for name, n := range depths {
			st.Tenants[name] = TenantStats{Queued: n}
		}
	}
	if d.cache != nil {
		st.WarmNogoods = d.cache.Len()
	}
	return st
}
