package wire

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"unicode/utf8"
)

// sampleEnvelopes covers every frame type in the binary code table with
// representative field values, including negatives (zigzag paths) and
// literal lists.
func sampleEnvelopes() []Envelope {
	return []Envelope{
		{Type: TypeCoreOk, From: 1, To: 2, Value: 3, Priority: 7, Seq: 41},
		{Type: TypeCoreNogood, From: 2, To: 1, Lits: []Lit{{Var: 0, Val: 2}, {Var: 3, Val: 1}}, Seq: 5},
		{Type: TypeCoreRequest, From: 4, To: 0, Seq: 1},
		{Type: TypeABTOk, From: 0, To: 9, Value: -1, Seq: 1000000},
		{Type: TypeABTNogood, From: 9, To: 0, Lits: []Lit{{Var: 1, Val: 0}}},
		{Type: TypeABTRequest, From: 3, To: 4},
		{Type: TypeDBOk, From: 5, To: 6, Value: 2, Seq: 17},
		{Type: TypeDBImprove, From: 6, To: 5, Improve: -3, Eval: 11, Seq: 18},
		{Type: TypeMultiOk, From: 7, To: 8, Priority: -2, Values: []Lit{{Var: 10, Val: -4}, {Var: 11, Val: 0}}},
		{Type: TypeMultiNogood, From: 8, To: 7, Lits: []Lit{{Var: 2, Val: 2}}},
		{Type: TypeMultiRequest, From: 1, To: 3},
		{Type: TypeAck, From: 2, To: 3, Ack: 99},
		{Type: TypeHello, From: 12, To: -1, Codec: "binary"},
		{Type: TypeWelcome, From: -1, To: 12, Codec: "json"},
		{Type: TypeHello, From: 13, To: -1, Codec: "binary", Causal: true},
		{Type: TypeWelcome, From: -1, To: 13, Codec: "binary", Crc: true, Causal: true},
		{Type: TypeCoreOk, From: 3, To: 5, Value: 1, Priority: 2, Seq: 7, TSeq: 42},
		{Type: TypeCoreNogood, From: 5, To: 3, Lits: []Lit{{Var: 4, Val: 1}}, Seq: 8, TSeq: 1 << 40},
		{Type: TypeState, From: 4, To: -1, Value: 1, Insoluble: true, Processed: 12345},
		{Type: TypeStop, From: -1, To: 4},
	}
}

func TestBinaryRoundTripAllTypes(t *testing.T) {
	var dec Decoder
	for _, e := range sampleEnvelopes() {
		buf, err := e.AppendTo(nil, CodecBinary)
		if err != nil {
			t.Fatalf("%s: encode: %v", e.Type, err)
		}
		got, n, err := dec.Decode(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", e.Type, err)
		}
		if n != len(buf) {
			t.Fatalf("%s: consumed %d of %d bytes", e.Type, n, len(buf))
		}
		got.Detach()
		if !reflect.DeepEqual(got, e) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", e.Type, got, e)
		}
	}
}

// TestJSONMatchesEncodingJSON pins appendJSON to encoding/json byte for
// byte, so the hand-rolled encoder cannot drift from the wire format the
// pre-binary transport shipped.
func TestJSONMatchesEncodingJSON(t *testing.T) {
	samples := sampleEnvelopes()
	samples = append(samples,
		Envelope{Type: `we"ird<&>` + "\n\t\x01", From: 1, To: 2, Codec: "  \xff\xfe end"},
		Envelope{Type: "unicode-✓", From: -5, To: -6, Value: -7, Seq: -8, Ack: -9, Processed: -10},
	)
	for _, e := range samples {
		got := e.appendJSON(nil)
		want, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("%s: json.Marshal: %v", e.Type, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("appendJSON drifts from encoding/json:\n got %s\nwant %s", got, want)
		}
	}
}

// TestCrossCodecEquality decodes the same envelope through both codecs and
// requires identical results.
func TestCrossCodecEquality(t *testing.T) {
	var dec Decoder
	for _, e := range sampleEnvelopes() {
		jbuf, err := Marshal(e)
		if err != nil {
			t.Fatalf("%s: Marshal: %v", e.Type, err)
		}
		fromJSON, err := Unmarshal(jbuf)
		if err != nil {
			t.Fatalf("%s: Unmarshal: %v", e.Type, err)
		}
		bbuf, err := e.AppendTo(nil, CodecBinary)
		if err != nil {
			t.Fatalf("%s: binary encode: %v", e.Type, err)
		}
		fromBinary, _, err := dec.Decode(bbuf)
		if err != nil {
			t.Fatalf("%s: binary decode: %v", e.Type, err)
		}
		fromBinary.Detach()
		if !reflect.DeepEqual(fromJSON, fromBinary) {
			t.Errorf("%s: codecs disagree:\n json   %+v\n binary %+v", e.Type, fromJSON, fromBinary)
		}
	}
}

func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"", CodecBinary, true},
		{"binary", CodecBinary, true},
		{"json", CodecJSON, true},
		{"msgpack", CodecBinary, false},
	} {
		got, err := ParseCodec(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCodec(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if CodecBinary.String() != "binary" || CodecJSON.String() != "json" {
		t.Errorf("codec names: %q, %q", CodecBinary, CodecJSON)
	}
}

func TestBinaryRejectsUnknownType(t *testing.T) {
	e := Envelope{Type: "no.such.type"}
	if _, err := e.AppendTo(nil, CodecBinary); err == nil {
		t.Fatal("binary encode of unknown type succeeded")
	}
	if _, err := e.AppendTo(nil, CodecJSON); err != nil {
		t.Fatalf("JSON must carry unknown types (the fallback property): %v", err)
	}
}

// TestDecodeTruncated feeds every strict prefix of every sample encoding to
// the decoder: all must error cleanly, never panic or succeed.
func TestDecodeTruncated(t *testing.T) {
	var dec Decoder
	for _, e := range sampleEnvelopes() {
		buf, err := e.AppendTo(nil, CodecBinary)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := dec.Decode(buf[:cut]); err == nil {
				t.Errorf("%s: decode of %d/%d-byte prefix succeeded", e.Type, cut, len(buf))
			}
		}
	}
}

// TestDecodeHostileCount checks that a frame claiming a huge literal count
// fails fast instead of allocating.
func TestDecodeHostileCount(t *testing.T) {
	e := Envelope{Type: TypeCoreRequest, From: 1, To: 2}
	buf, err := e.AppendTo(nil, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	// The encoding ends [Lits count=0][Values count=0]. Replace both with a
	// count field claiming 2^40 literals and no payload behind it.
	hostile := append([]byte{}, buf[:len(buf)-2]...)
	hostile = append(hostile, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20)
	var dec Decoder
	if _, _, err := dec.Decode(hostile); err == nil {
		t.Fatal("hostile literal count decoded without error")
	}
}

// TestDecoderScratchAndDetach documents the aliasing contract: envelopes
// alias decoder scratch until the next Decode, and Detach makes them safe
// to keep.
func TestDecoderScratchAndDetach(t *testing.T) {
	a := Envelope{Type: TypeCoreNogood, From: 1, To: 2, Lits: []Lit{{Var: 7, Val: 7}}}
	b := Envelope{Type: TypeABTNogood, From: 2, To: 1, Lits: []Lit{{Var: 9, Val: 9}}}
	abuf, _ := a.AppendTo(nil, CodecBinary)
	bbuf, _ := b.AppendTo(nil, CodecBinary)

	var dec Decoder
	gotA, _, err := dec.Decode(abuf)
	if err != nil {
		t.Fatal(err)
	}
	gotA.Detach()
	if _, _, err := dec.Decode(bbuf); err != nil {
		t.Fatal(err)
	}
	if gotA.Lits[0].Var != 7 {
		t.Fatalf("detached envelope clobbered by later decode: %+v", gotA.Lits)
	}
}

func TestMarshalStillNewlineFramed(t *testing.T) {
	b, err := Marshal(Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != '\n' || bytes.ContainsRune(b[:len(b)-1], '\n') {
		t.Fatalf("Marshal framing broken: %q", b)
	}
	if !utf8.Valid(b) {
		t.Fatalf("Marshal produced invalid UTF-8: %q", b)
	}
}
