package wire

import (
	"net"
	"testing"
)

// The encode/decode micro-benchmarks pin the zero-alloc claim: the
// steady-state frame kinds carry no slices, so with a reused buffer both
// encoders and the binary decoder run at 0 allocs/op (the bench gate
// enforces it on the binary pair).

func BenchmarkWireEncode(b *testing.B) {
	e := Envelope{Type: TypeCoreOk, From: 12, To: 34, Value: 5, Priority: 2, Seq: 1234567}
	for _, c := range []Codec{CodecBinary, CodecJSON} {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			buf := make([]byte, 0, 256)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = e.AppendTo(buf[:0], c)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkWireDecode(b *testing.B) {
	e := Envelope{Type: TypeCoreOk, From: 12, To: 34, Value: 5, Priority: 2, Seq: 1234567}
	b.Run("binary", func(b *testing.B) {
		enc, err := e.AppendTo(nil, CodecBinary)
		if err != nil {
			b.Fatal(err)
		}
		var dec Decoder
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := dec.Decode(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("json", func(b *testing.B) {
		enc, err := Marshal(e)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Unmarshal(enc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWireThroughput measures end-to-end messages through a real TCP
// loopback socket: a writer pumping the netrun steady-state mix (four data
// frames per ack) against a reader draining it. The *_plain variants flush
// per frame — the pre-batching transport's behavior — and the *_batch
// variants let size-bounded batches drive the flushing. The _crc variant
// adds the negotiated CRC32C frame trailer on top of the batched binary
// path. The bench gate compares json_plain (the old wire path) against
// binary_batch (the new default) and requires ≥2x, with the same floor on
// the checksummed leg so integrity stays effectively free.
func BenchmarkWireThroughput(b *testing.B) {
	for _, bc := range []struct {
		name  string
		codec Codec
		batch bool
		crc   bool
	}{
		{"json_plain", CodecJSON, false, false},
		{"json_batch", CodecJSON, true, false},
		{"binary_plain", CodecBinary, false, false},
		{"binary_batch", CodecBinary, true, false},
		{"binary_batch_crc", CodecBinary, true, true},
	} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			benchmarkThroughput(b, bc.codec, bc.batch, bc.crc)
		})
	}
}

func benchmarkThroughput(b *testing.B, codec Codec, batch, crc bool) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	done := make(chan int64, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- -1
			return
		}
		defer conn.Close()
		fr := NewFrameReader(conn)
		fr.SetCodec(codec)
		if crc {
			fr.EnableChecksum()
		}
		var n int64
		for {
			e, err := fr.Next()
			if err != nil || e.Type == TypeStop {
				done <- n
				return
			}
			n++
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	fw := NewFrameWriter(conn)
	if err := fw.SetCodec(codec); err != nil {
		b.Fatal(err)
	}
	if crc {
		fw.EnableChecksum()
	}
	if batch {
		fw.EnableBatching(32, 32<<10)
	}
	env := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 3, Priority: 1}
	ack := Envelope{Type: TypeAck, From: 2, To: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env.Seq = int64(i + 1)
		if err := fw.Send(&env); err != nil {
			b.Fatal(err)
		}
		if i%4 == 3 {
			ack.Ack = int64(i + 1)
			if err := fw.Send(&ack); err != nil {
				b.Fatal(err)
			}
		}
		if !batch {
			if err := fw.Flush(); err != nil {
				b.Fatal(err)
			}
		}
	}
	stop := Envelope{Type: TypeStop}
	if err := fw.Send(&stop); err != nil {
		b.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		b.Fatal(err)
	}
	if n := <-done; n < int64(b.N) {
		b.Fatalf("reader saw %d of %d data frames", n, b.N)
	}
	b.StopTimer()
}
