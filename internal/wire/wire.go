// Package wire serializes the algorithms' messages for transport across
// process or machine boundaries (the internal/netrun TCP runtime). Every
// message type of the AWC, ABT, DB, and multi agents has a stable JSON
// envelope representation; Encode and Decode round-trip them exactly.
//
// Two codecs share the envelope: the legacy newline-delimited JSON encoding
// (the negotiated fallback, and the handshake encoding) and a
// length-prefixed binary encoding built for zero allocations on the
// steady-state encode and decode paths (see binary.go). FrameReader and
// FrameWriter (stream.go) speak both over one connection and can coalesce
// frames into ack-carrying batches (batch.go).
package wire

import (
	"encoding/json"
	"fmt"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/multi"
	"github.com/discsp/discsp/internal/sim"
)

// Message type tags. They are part of the wire format; do not renumber.
const (
	TypeCoreOk       = "core.ok"
	TypeCoreNogood   = "core.nogood"
	TypeCoreRequest  = "core.request"
	TypeABTOk        = "abt.ok"
	TypeABTNogood    = "abt.nogood"
	TypeABTRequest   = "abt.request"
	TypeDBOk         = "db.ok"
	TypeDBImprove    = "db.improve"
	TypeMultiOk      = "multi.ok"
	TypeMultiNogood  = "multi.nogood"
	TypeMultiRequest = "multi.request"
)

// Lit is the wire form of a variable-value pair.
type Lit struct {
	Var int `json:"var"`
	Val int `json:"val"`
}

// TypeAck is the reliable-transport control frame type: a cumulative
// acknowledgement for one directed link, carried in Envelope.Ack. It is
// part of the wire format alongside the algorithm message types.
const TypeAck = "rel.ack"

// Control frame types used by the netrun hub/node protocol. They live here,
// next to the algorithm types, because the binary codec's type table must
// cover every frame that crosses a socket.
const (
	// TypeHello is a node's registration frame; its Codec field names the
	// wire codec the node requests.
	TypeHello = "ctl.hello"
	// TypeWelcome is the hub's handshake reply; its Codec field names the
	// negotiated codec both directions switch to after this frame.
	TypeWelcome = "ctl.welcome"
	// TypeState is a node's post-step state report (value, insolubility,
	// processed count).
	TypeState = "ctl.state"
	// TypeStop is the hub's shutdown broadcast.
	TypeStop = "ctl.stop"
	// TypeHeartbeat is the liveness probe both hub and nodes emit on an
	// otherwise idle link. It carries no payload and never enters the
	// reliable stream (Seq 0): its only meaning is "this peer was alive when
	// it sent this".
	TypeHeartbeat = "ctl.beat"
	// TypeReset announces that the node named in From restarted from scratch
	// (a relaunched worker process with no in-memory transport state). The
	// hub broadcasts it to every other node, which resets both halves of its
	// reliable link with From (RecvLink.Reset, SendLink.Reset) and echoes
	// the frame back (From: itself, To: the restarted node) so the hub knows
	// exactly where the pre-reset traffic on that connection ends.
	TypeReset = "ctl.reset"
)

// Envelope is the wire form of one message. Algorithm messages use the
// message fields; the reliable transport and the netrun control plane
// piggyback on the same struct so one codec covers every frame on a socket.
type Envelope struct {
	Type     string `json:"type"`
	From     int    `json:"from"`
	To       int    `json:"to"`
	Value    int    `json:"value,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Improve  int    `json:"improve,omitempty"`
	Eval     int    `json:"eval,omitempty"`
	Lits     []Lit  `json:"lits,omitempty"`
	Values   []Lit  `json:"values,omitempty"`

	// Seq is the reliable transport's per-link sequence number, stamped by
	// SendLink starting at 1; 0 marks a frame outside the reliable stream
	// (control frames). Ack is the cumulative acknowledgement on TypeAck
	// frames: every seq ≤ Ack has been durably received.
	Seq int64 `json:"seq,omitempty"`
	Ack int64 `json:"ack,omitempty"`

	// Control-plane fields (TypeHello/TypeWelcome/TypeState), carried on the
	// envelope so control frames share the codecs with the data plane.
	// Insoluble and Processed are a TypeState report's payload; Codec is the
	// handshake's requested (hello) or negotiated (welcome) codec name.
	Insoluble bool   `json:"insoluble,omitempty"`
	Processed int    `json:"processed,omitempty"`
	Codec     string `json:"codec,omitempty"`

	// Crc is the checksum half of the handshake: a hello sets it to request
	// the CRC32C frame trailer, the welcome sets it to confirm. Both sides
	// enable the trailer only after a confirming welcome on a binary
	// connection (the JSON codec has no trailer slot).
	Crc bool `json:"crc,omitempty"`
	// Resume distinguishes a re-hello from a node that kept its in-memory
	// transport state (a worker redialing after connection loss, or an
	// in-process crash restart replaying its checkpoint) from a fresh-start
	// registration. A repeat hello with Resume false means the process was
	// relaunched cold, and the hub triggers the TypeReset link-renumbering
	// protocol.
	Resume bool `json:"resume,omitempty"`

	// Causal is the tracing half of the handshake, negotiated exactly like
	// Crc: a hello sets it to request causal trace-ID propagation, the
	// welcome sets it to confirm. Only after a confirming welcome does
	// either side emit TSeq on data frames, so mixed fleets with untraced
	// peers degrade gracefully (their messages simply carry no trace ID).
	Causal bool `json:"causal,omitempty"`
	// TSeq is the message's causal trace-ID sequence number (the Seq half
	// of a causal.ID; the Agent half is From). 0 means untraced. Unlike
	// Seq, TSeq is assigned by the sending agent's tracer and survives the
	// TypeReset link renumbering — trace IDs stay stable across cold
	// reconnections.
	TSeq int64 `json:"tseq,omitempty"`
}

// Detach deep-copies the envelope's slice fields so it no longer aliases a
// decoder's reusable scratch buffers. Frames that outlive the next decode
// (queued, delayed, or checkpointed frames) must be detached first; the
// steady-state frame kinds (ok?, ack, state) carry no slices and detach for
// free.
func (e *Envelope) Detach() {
	if len(e.Lits) > 0 {
		e.Lits = append([]Lit(nil), e.Lits...)
	}
	if len(e.Values) > 0 {
		e.Values = append([]Lit(nil), e.Values...)
	}
}

func litsOut(ng csp.Nogood) []Lit {
	out := make([]Lit, 0, ng.Len())
	for i := 0; i < ng.Len(); i++ {
		l := ng.At(i)
		out = append(out, Lit{Var: int(l.Var), Val: int(l.Val)})
	}
	return out
}

func litsIn(lits []Lit) ([]csp.Lit, error) {
	out := make([]csp.Lit, 0, len(lits))
	for _, l := range lits {
		if l.Var < 0 {
			return nil, fmt.Errorf("wire: negative variable %d", l.Var)
		}
		out = append(out, csp.Lit{Var: csp.Var(l.Var), Val: csp.Value(l.Val)})
	}
	return out, nil
}

// Encode converts a message into its envelope. It fails on message types
// outside the four algorithm packages. A message carrying a causal trace ID
// (causal.Traced with a nonzero ID) lands in the envelope's TSeq field; the
// ID's agent half is redundant with From and is not sent.
func Encode(m sim.Message) (Envelope, error) {
	e, err := encode(m)
	if err != nil {
		return e, err
	}
	if tm, ok := m.(causal.Traced); ok {
		e.TSeq = tm.CausalID().Seq
	}
	return e, nil
}

func encode(m sim.Message) (Envelope, error) {
	switch msg := m.(type) {
	case core.Ok:
		return Envelope{Type: TypeCoreOk, From: int(msg.Sender), To: int(msg.Receiver),
			Value: int(msg.Value), Priority: msg.Priority}, nil
	case core.NogoodMsg:
		return Envelope{Type: TypeCoreNogood, From: int(msg.Sender), To: int(msg.Receiver),
			Lits: litsOut(msg.Nogood)}, nil
	case core.Request:
		return Envelope{Type: TypeCoreRequest, From: int(msg.Sender), To: int(msg.Receiver)}, nil
	case abt.Ok:
		return Envelope{Type: TypeABTOk, From: int(msg.Sender), To: int(msg.Receiver),
			Value: int(msg.Value)}, nil
	case abt.NogoodMsg:
		return Envelope{Type: TypeABTNogood, From: int(msg.Sender), To: int(msg.Receiver),
			Lits: litsOut(msg.Nogood)}, nil
	case abt.Request:
		return Envelope{Type: TypeABTRequest, From: int(msg.Sender), To: int(msg.Receiver)}, nil
	case breakout.Ok:
		return Envelope{Type: TypeDBOk, From: int(msg.Sender), To: int(msg.Receiver),
			Value: int(msg.Value)}, nil
	case breakout.Improve:
		return Envelope{Type: TypeDBImprove, From: int(msg.Sender), To: int(msg.Receiver),
			Improve: msg.Improve, Eval: msg.Eval}, nil
	case multi.Ok:
		vals := make([]Lit, 0, len(msg.Values))
		for _, l := range msg.Values {
			vals = append(vals, Lit{Var: int(l.Var), Val: int(l.Val)})
		}
		return Envelope{Type: TypeMultiOk, From: int(msg.Sender), To: int(msg.Receiver),
			Priority: msg.Priority, Values: vals}, nil
	case multi.NogoodMsg:
		return Envelope{Type: TypeMultiNogood, From: int(msg.Sender), To: int(msg.Receiver),
			Lits: litsOut(msg.Nogood)}, nil
	case multi.Request:
		return Envelope{Type: TypeMultiRequest, From: int(msg.Sender), To: int(msg.Receiver)}, nil
	default:
		return Envelope{}, fmt.Errorf("wire: unsupported message type %T", m)
	}
}

// Decode converts an envelope back into the concrete message, restoring the
// causal trace ID from (From, TSeq) when the envelope carries one.
func Decode(e Envelope) (sim.Message, error) {
	m, err := decode(e)
	if err != nil || e.TSeq == 0 {
		return m, err
	}
	if tm, ok := m.(causal.Traced); ok {
		m = tm.WithCausalID(causal.ID{Agent: int32(e.From), Seq: e.TSeq}).(sim.Message)
	}
	return m, nil
}

func decode(e Envelope) (sim.Message, error) {
	from, to := sim.AgentID(e.From), sim.AgentID(e.To)
	switch e.Type {
	case TypeCoreOk:
		return core.Ok{Sender: from, Receiver: to, Value: csp.Value(e.Value), Priority: e.Priority}, nil
	case TypeCoreNogood:
		ng, err := nogoodIn(e.Lits)
		if err != nil {
			return nil, err
		}
		return core.NogoodMsg{Sender: from, Receiver: to, Nogood: ng}, nil
	case TypeCoreRequest:
		return core.Request{Sender: from, Receiver: to}, nil
	case TypeABTOk:
		return abt.Ok{Sender: from, Receiver: to, Value: csp.Value(e.Value)}, nil
	case TypeABTNogood:
		ng, err := nogoodIn(e.Lits)
		if err != nil {
			return nil, err
		}
		return abt.NogoodMsg{Sender: from, Receiver: to, Nogood: ng}, nil
	case TypeABTRequest:
		return abt.Request{Sender: from, Receiver: to}, nil
	case TypeDBOk:
		return breakout.Ok{Sender: from, Receiver: to, Value: csp.Value(e.Value)}, nil
	case TypeDBImprove:
		return breakout.Improve{Sender: from, Receiver: to, Improve: e.Improve, Eval: e.Eval}, nil
	case TypeMultiOk:
		lits, err := litsIn(e.Values)
		if err != nil {
			return nil, err
		}
		return multi.Ok{Sender: from, Receiver: to, Priority: e.Priority, Values: lits}, nil
	case TypeMultiNogood:
		ng, err := nogoodIn(e.Lits)
		if err != nil {
			return nil, err
		}
		return multi.NogoodMsg{Sender: from, Receiver: to, Nogood: ng}, nil
	case TypeMultiRequest:
		return multi.Request{Sender: from, Receiver: to}, nil
	default:
		return nil, fmt.Errorf("wire: unknown envelope type %q", e.Type)
	}
}

func nogoodIn(lits []Lit) (csp.Nogood, error) {
	cl, err := litsIn(lits)
	if err != nil {
		return csp.Nogood{}, err
	}
	return csp.NewNogood(cl...)
}

// Marshal renders the envelope as one newline-terminated JSON line, the
// framing used on the TCP transport's JSON fallback. It allocates a fresh
// buffer per call; hot paths append into a reusable buffer with AppendTo
// instead.
func Marshal(e Envelope) ([]byte, error) {
	b, err := e.AppendTo(nil, CodecJSON)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Unmarshal parses one JSON line.
func Unmarshal(line []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(line, &e); err != nil {
		return Envelope{}, fmt.Errorf("wire: %w", err)
	}
	if e.Type == "" {
		return Envelope{}, fmt.Errorf("wire: missing type")
	}
	return e, nil
}
