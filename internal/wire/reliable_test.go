package wire

import (
	"reflect"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/faults"
)

var t0 = time.Unix(1000, 0)

func TestSendLinkStampAndAck(t *testing.T) {
	l := NewSendLink(2*time.Millisecond, 64*time.Millisecond)
	for i := 1; i <= 3; i++ {
		e := l.Stamp(Envelope{Type: TypeCoreOk, From: 0, To: 1, Value: i}, t0)
		if e.Seq != int64(i) {
			t.Fatalf("stamp %d: seq %d", i, e.Seq)
		}
	}
	if l.Pending() != 3 {
		t.Fatalf("pending = %d", l.Pending())
	}
	if n := l.Ack(2, t0); n != 2 {
		t.Fatalf("ack released %d, want 2", n)
	}
	if n := l.Ack(2, t0); n != 0 {
		t.Fatalf("duplicate ack released %d", n)
	}
	if n := l.Ack(99, t0); n != 1 || l.Pending() != 0 {
		t.Fatalf("final ack: released %d pending %d", n, l.Pending())
	}
}

func TestSendLinkRetransmitBackoff(t *testing.T) {
	base, cap := 2*time.Millisecond, 8*time.Millisecond
	l := NewSendLink(base, cap)
	l.Stamp(Envelope{Type: TypeCoreOk}, t0)
	l.Stamp(Envelope{Type: TypeCoreOk}, t0)

	if got := l.Due(t0.Add(base - time.Microsecond)); got != nil {
		t.Fatalf("retransmitted before deadline: %v", got)
	}
	// First firing: both frames, next deadline 2*base later.
	now := t0.Add(base)
	if got := l.Due(now); len(got) != 2 {
		t.Fatalf("first retransmit sent %d frames", len(got))
	}
	if got := l.Due(now.Add(2*base - time.Microsecond)); got != nil {
		t.Fatal("backoff did not double")
	}
	now = now.Add(2 * base)
	if got := l.Due(now); len(got) != 2 {
		t.Fatal("second retransmit missing")
	}
	// Backoff is capped.
	now = now.Add(cap)
	if got := l.Due(now); len(got) != 2 {
		t.Fatal("capped retransmit missing")
	}
	if l.Retransmits() != 6 {
		t.Fatalf("retransmits = %d, want 6", l.Retransmits())
	}
	// Ack resets the backoff for the next frame.
	l.Ack(2, now)
	l.Stamp(Envelope{Type: TypeCoreOk}, now)
	if got := l.Due(now.Add(base)); len(got) != 1 {
		t.Fatal("backoff not reset after ack")
	}
}

func TestRecvLinkInOrder(t *testing.T) {
	l := NewRecvLink()
	for seq := int64(1); seq <= 5; seq++ {
		got, dup := l.Accept(Envelope{Seq: seq, Value: int(seq)})
		if dup || len(got) != 1 || got[0].Seq != seq {
			t.Fatalf("seq %d: got %v dup %v", seq, got, dup)
		}
	}
	if l.CumAck() != 5 || l.Buffered() != 0 || l.Dups() != 0 {
		t.Fatalf("state after in-order run: ack=%d buf=%d dups=%d", l.CumAck(), l.Buffered(), l.Dups())
	}
}

func TestRecvLinkReorderAndDedup(t *testing.T) {
	l := NewRecvLink()
	// 3 and 2 arrive before 1; duplicates of delivered and buffered frames
	// are suppressed.
	if got, dup := l.Accept(Envelope{Seq: 3}); got != nil || dup {
		t.Fatalf("seq 3 first: %v %v", got, dup)
	}
	if got, dup := l.Accept(Envelope{Seq: 2}); got != nil || dup {
		t.Fatalf("seq 2: %v %v", got, dup)
	}
	if _, dup := l.Accept(Envelope{Seq: 3}); !dup {
		t.Fatal("buffered duplicate not suppressed")
	}
	got, dup := l.Accept(Envelope{Seq: 1})
	if dup || len(got) != 3 {
		t.Fatalf("gap fill released %d frames", len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i+1) {
			t.Fatalf("release out of order: %v", got)
		}
	}
	if _, dup := l.Accept(Envelope{Seq: 2}); !dup {
		t.Fatal("delivered duplicate not suppressed")
	}
	if l.CumAck() != 3 || l.Dups() != 2 {
		t.Fatalf("ack=%d dups=%d", l.CumAck(), l.Dups())
	}
	// Control frames (no seq) pass through.
	if got, _ := l.Accept(Envelope{Type: TypeAck}); len(got) != 1 {
		t.Fatal("seqless frame not passed through")
	}
}

func TestLinkStateRoundTrip(t *testing.T) {
	s := NewSendLink(2*time.Millisecond, 8*time.Millisecond)
	s.Stamp(Envelope{Type: TypeCoreOk, Value: 1}, t0)
	s.Stamp(Envelope{Type: TypeCoreOk, Value: 2}, t0)
	s.Ack(1, t0)
	st := s.SnapshotState()
	if st.NextSeq != 3 || len(st.Unacked) != 1 || st.Unacked[0].Seq != 2 {
		t.Fatalf("send state %+v", st)
	}
	s.Stamp(Envelope{Type: TypeCoreOk, Value: 3}, t0)
	if len(st.Unacked) != 1 {
		t.Fatal("snapshot aliased live link")
	}

	r := RestoreSendLink(st, 2*time.Millisecond, 8*time.Millisecond, t0)
	if r.Pending() != 1 {
		t.Fatalf("restored pending = %d", r.Pending())
	}
	// A restored link is immediately due: the crash may have eaten the wire.
	if got := r.Due(t0); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("restored link not due: %v", got)
	}
	if e := r.Stamp(Envelope{Type: TypeCoreOk}, t0); e.Seq != 3 {
		t.Fatalf("restored link stamped seq %d, want 3", e.Seq)
	}

	rl := NewRecvLink()
	rl.Accept(Envelope{Seq: 1})
	rl.Accept(Envelope{Seq: 2})
	rl.Accept(Envelope{Seq: 4}) // buffered, not durable
	rst := rl.SnapshotState()
	if rst.Next != 3 {
		t.Fatalf("recv state %+v", rst)
	}
	rr := RestoreRecvLink(rst)
	if rr.CumAck() != 2 {
		t.Fatalf("restored recv ack = %d", rr.CumAck())
	}
	// The buffered frame was lost with the crash; its retransmission must
	// be accepted as new, then the gap fill works as usual.
	if got, dup := rr.Accept(Envelope{Seq: 4}); dup || got != nil {
		t.Fatalf("retransmitted 4 after restore: %v %v", got, dup)
	}
	if got, _ := rr.Accept(Envelope{Seq: 3}); len(got) != 2 {
		t.Fatalf("gap fill after restore released %d", len(got))
	}
}

// TestReliableLinkUnderFaultSchedule drives a send/recv pair through a
// deterministic lossy channel (drop, duplicate, reorder via delay) and
// asserts exactly-once, in-order delivery of every message — the property
// the runtimes build on.
func TestReliableLinkUnderFaultSchedule(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 11, Drop: 0.3, Duplicate: 0.3, MaxDelay: 4 * time.Millisecond})
	s := NewSendLink(2*time.Millisecond, 16*time.Millisecond)
	r := NewRecvLink()

	type flight struct {
		at time.Time
		e  Envelope
	}
	var wireQueue []flight
	now := t0
	send := func(e Envelope, attempt int) {
		if inj.Dropped(0, 1, e.Seq, attempt) {
			return
		}
		wireQueue = append(wireQueue, flight{at: now.Add(inj.Delay(0, 1, e.Seq, 0)), e: e})
		if attempt == 0 && inj.Duplicated(0, 1, e.Seq) {
			wireQueue = append(wireQueue, flight{at: now.Add(inj.Delay(0, 1, e.Seq, 1)), e: e})
		}
	}

	const total = 200
	var delivered []Envelope
	attempts := make(map[int64]int)
	for i := 0; i < total; i++ {
		send(s.Stamp(Envelope{Type: TypeCoreOk, Value: i}, now), 0)
	}
	for tick := 0; tick < 10000 && (len(delivered) < total || s.Pending() > 0); tick++ {
		now = now.Add(time.Millisecond)
		// Deliver everything that has arrived by now.
		var rest []flight
		for _, f := range wireQueue {
			if f.at.After(now) {
				rest = append(rest, f)
				continue
			}
			got, _ := r.Accept(f.e)
			delivered = append(delivered, got...)
		}
		wireQueue = rest
		// The receiver acks; acks are lossy too but cumulative.
		if !inj.Dropped(1, 0, int64(tick), 0) {
			s.Ack(r.CumAck(), now)
		}
		for _, e := range s.Due(now) {
			attempts[e.Seq]++
			send(e, attempts[e.Seq])
		}
	}
	if len(delivered) != total {
		t.Fatalf("delivered %d of %d", len(delivered), total)
	}
	for i, e := range delivered {
		if e.Seq != int64(i+1) || e.Value != i {
			t.Fatalf("delivery %d out of order or corrupted: %+v", i, e)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("sender still holds %d frames", s.Pending())
	}
}

func TestAckEnvelopeRoundTrip(t *testing.T) {
	e := Envelope{Type: TypeAck, From: 3, To: 5, Ack: 17}
	b, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b[:len(b)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
}
