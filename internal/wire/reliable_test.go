package wire

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/faults"
)

var t0 = time.Unix(1000, 0)

// mustStamp / mustAccept keep the happy-path tests readable; cap behavior
// has its own tests below.
func mustStamp(t *testing.T, l *SendLink, e Envelope, now time.Time) Envelope {
	t.Helper()
	out, err := l.Stamp(e, now)
	if err != nil {
		t.Fatalf("Stamp(%+v): %v", e, err)
	}
	return out
}

func mustAccept(t *testing.T, l *RecvLink, e Envelope) ([]Envelope, bool) {
	t.Helper()
	got, dup, err := l.Accept(e)
	if err != nil {
		t.Fatalf("Accept(%+v): %v", e, err)
	}
	return got, dup
}

func TestSendLinkStampAndAck(t *testing.T) {
	l := NewSendLink(2*time.Millisecond, 64*time.Millisecond)
	for i := 1; i <= 3; i++ {
		e := mustStamp(t, l, Envelope{Type: TypeCoreOk, From: 0, To: 1, Value: i}, t0)
		if e.Seq != int64(i) {
			t.Fatalf("stamp %d: seq %d", i, e.Seq)
		}
	}
	if l.Pending() != 3 {
		t.Fatalf("pending = %d", l.Pending())
	}
	if n := l.Ack(2, t0); n != 2 {
		t.Fatalf("ack released %d, want 2", n)
	}
	if n := l.Ack(2, t0); n != 0 {
		t.Fatalf("duplicate ack released %d", n)
	}
	if n := l.Ack(99, t0); n != 1 || l.Pending() != 0 {
		t.Fatalf("final ack: released %d pending %d", n, l.Pending())
	}
}

func TestSendLinkRetransmitBackoff(t *testing.T) {
	base, cap := 2*time.Millisecond, 8*time.Millisecond
	l := NewSendLink(base, cap)
	mustStamp(t, l, Envelope{Type: TypeCoreOk}, t0)
	mustStamp(t, l, Envelope{Type: TypeCoreOk}, t0)

	if got := l.Due(t0.Add(base - time.Microsecond)); got != nil {
		t.Fatalf("retransmitted before deadline: %v", got)
	}
	// First firing: both frames, next deadline 2*base later.
	now := t0.Add(base)
	if got := l.Due(now); len(got) != 2 {
		t.Fatalf("first retransmit sent %d frames", len(got))
	}
	if got := l.Due(now.Add(2*base - time.Microsecond)); got != nil {
		t.Fatal("backoff did not double")
	}
	now = now.Add(2 * base)
	if got := l.Due(now); len(got) != 2 {
		t.Fatal("second retransmit missing")
	}
	// Backoff is capped.
	now = now.Add(cap)
	if got := l.Due(now); len(got) != 2 {
		t.Fatal("capped retransmit missing")
	}
	if l.Retransmits() != 6 {
		t.Fatalf("retransmits = %d, want 6", l.Retransmits())
	}
	// Ack resets the backoff for the next frame.
	l.Ack(2, now)
	mustStamp(t, l, Envelope{Type: TypeCoreOk}, now)
	if got := l.Due(now.Add(base)); len(got) != 1 {
		t.Fatal("backoff not reset after ack")
	}
}

func TestRecvLinkInOrder(t *testing.T) {
	l := NewRecvLink()
	for seq := int64(1); seq <= 5; seq++ {
		got, dup := mustAccept(t, l, Envelope{Seq: seq, Value: int(seq)})
		if dup || len(got) != 1 || got[0].Seq != seq {
			t.Fatalf("seq %d: got %v dup %v", seq, got, dup)
		}
	}
	if l.CumAck() != 5 || l.Buffered() != 0 || l.Dups() != 0 {
		t.Fatalf("state after in-order run: ack=%d buf=%d dups=%d", l.CumAck(), l.Buffered(), l.Dups())
	}
}

func TestRecvLinkReorderAndDedup(t *testing.T) {
	l := NewRecvLink()
	// 3 and 2 arrive before 1; duplicates of delivered and buffered frames
	// are suppressed.
	if got, dup := mustAccept(t, l, Envelope{Seq: 3}); got != nil || dup {
		t.Fatalf("seq 3 first: %v %v", got, dup)
	}
	if got, dup := mustAccept(t, l, Envelope{Seq: 2}); got != nil || dup {
		t.Fatalf("seq 2: %v %v", got, dup)
	}
	if _, dup := mustAccept(t, l, Envelope{Seq: 3}); !dup {
		t.Fatal("buffered duplicate not suppressed")
	}
	got, dup := mustAccept(t, l, Envelope{Seq: 1})
	if dup || len(got) != 3 {
		t.Fatalf("gap fill released %d frames", len(got))
	}
	for i, e := range got {
		if e.Seq != int64(i+1) {
			t.Fatalf("release out of order: %v", got)
		}
	}
	if _, dup := mustAccept(t, l, Envelope{Seq: 2}); !dup {
		t.Fatal("delivered duplicate not suppressed")
	}
	if l.CumAck() != 3 || l.Dups() != 2 {
		t.Fatalf("ack=%d dups=%d", l.CumAck(), l.Dups())
	}
	// Control frames (no seq) pass through.
	if got, _ := mustAccept(t, l, Envelope{Type: TypeAck}); len(got) != 1 {
		t.Fatal("seqless frame not passed through")
	}
}

func TestLinkStateRoundTrip(t *testing.T) {
	s := NewSendLink(2*time.Millisecond, 8*time.Millisecond)
	mustStamp(t, s, Envelope{Type: TypeCoreOk, Value: 1}, t0)
	mustStamp(t, s, Envelope{Type: TypeCoreOk, Value: 2}, t0)
	s.Ack(1, t0)
	st := s.SnapshotState()
	if st.NextSeq != 3 || len(st.Unacked) != 1 || st.Unacked[0].Seq != 2 {
		t.Fatalf("send state %+v", st)
	}
	mustStamp(t, s, Envelope{Type: TypeCoreOk, Value: 3}, t0)
	if len(st.Unacked) != 1 {
		t.Fatal("snapshot aliased live link")
	}

	r := RestoreSendLink(st, 2*time.Millisecond, 8*time.Millisecond, t0)
	if r.Pending() != 1 {
		t.Fatalf("restored pending = %d", r.Pending())
	}
	// A restored link is immediately due: the crash may have eaten the wire.
	if got := r.Due(t0); len(got) != 1 || got[0].Seq != 2 {
		t.Fatalf("restored link not due: %v", got)
	}
	if e := mustStamp(t, r, Envelope{Type: TypeCoreOk}, t0); e.Seq != 3 {
		t.Fatalf("restored link stamped seq %d, want 3", e.Seq)
	}

	rl := NewRecvLink()
	mustAccept(t, rl, Envelope{Seq: 1})
	mustAccept(t, rl, Envelope{Seq: 2})
	mustAccept(t, rl, Envelope{Seq: 4}) // buffered, not durable
	rst := rl.SnapshotState()
	if rst.Next != 3 {
		t.Fatalf("recv state %+v", rst)
	}
	rr := RestoreRecvLink(rst)
	if rr.CumAck() != 2 {
		t.Fatalf("restored recv ack = %d", rr.CumAck())
	}
	// The buffered frame was lost with the crash; its retransmission must
	// be accepted as new, then the gap fill works as usual.
	if got, dup := mustAccept(t, rr, Envelope{Seq: 4}); dup || got != nil {
		t.Fatalf("retransmitted 4 after restore: %v %v", got, dup)
	}
	if got, _ := mustAccept(t, rr, Envelope{Seq: 3}); len(got) != 2 {
		t.Fatalf("gap fill after restore released %d", len(got))
	}
}

// TestReliableLinkUnderFaultSchedule drives a send/recv pair through a
// deterministic lossy channel (drop, duplicate, reorder via delay) and
// asserts exactly-once, in-order delivery of every message — the property
// the runtimes build on.
func TestReliableLinkUnderFaultSchedule(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 11, Drop: 0.3, Duplicate: 0.3, MaxDelay: 4 * time.Millisecond})
	s := NewSendLink(2*time.Millisecond, 16*time.Millisecond)
	r := NewRecvLink()

	type flight struct {
		at time.Time
		e  Envelope
	}
	var wireQueue []flight
	now := t0
	send := func(e Envelope, attempt int) {
		if inj.Dropped(0, 1, e.Seq, attempt) {
			return
		}
		wireQueue = append(wireQueue, flight{at: now.Add(inj.Delay(0, 1, e.Seq, 0)), e: e})
		if attempt == 0 && inj.Duplicated(0, 1, e.Seq) {
			wireQueue = append(wireQueue, flight{at: now.Add(inj.Delay(0, 1, e.Seq, 1)), e: e})
		}
	}

	const total = 200
	var delivered []Envelope
	attempts := make(map[int64]int)
	for i := 0; i < total; i++ {
		send(mustStamp(t, s, Envelope{Type: TypeCoreOk, Value: i}, now), 0)
	}
	for tick := 0; tick < 10000 && (len(delivered) < total || s.Pending() > 0); tick++ {
		now = now.Add(time.Millisecond)
		// Deliver everything that has arrived by now.
		var rest []flight
		for _, f := range wireQueue {
			if f.at.After(now) {
				rest = append(rest, f)
				continue
			}
			got, _ := mustAccept(t, r, f.e)
			delivered = append(delivered, got...)
		}
		wireQueue = rest
		// The receiver acks; acks are lossy too but cumulative.
		if !inj.Dropped(1, 0, int64(tick), 0) {
			s.Ack(r.CumAck(), now)
		}
		for _, e := range s.Due(now) {
			attempts[e.Seq]++
			send(e, attempts[e.Seq])
		}
	}
	if len(delivered) != total {
		t.Fatalf("delivered %d of %d", len(delivered), total)
	}
	for i, e := range delivered {
		if e.Seq != int64(i+1) || e.Value != i {
			t.Fatalf("delivery %d out of order or corrupted: %+v", i, e)
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("sender still holds %d frames", s.Pending())
	}
}

// TestSendLinkCap pins the unacked-buffer cap: stamping past the limit is a
// hard error wrapping ErrSendBufferFull, consumes no sequence number, and
// acking frees capacity again.
func TestSendLinkCap(t *testing.T) {
	l := NewSendLink(2*time.Millisecond, 8*time.Millisecond)
	l.SetLimit(3)
	for i := 0; i < 3; i++ {
		mustStamp(t, l, Envelope{Type: TypeCoreOk, To: 1, Value: i}, t0)
	}
	if _, err := l.Stamp(Envelope{Type: TypeCoreOk, To: 1, Value: 3}, t0); !errors.Is(err, ErrSendBufferFull) {
		t.Fatalf("stamp over cap: err = %v, want ErrSendBufferFull", err)
	}
	if l.Pending() != 3 {
		t.Fatalf("failed stamp changed pending: %d", l.Pending())
	}
	// Ack one frame; the next stamp must succeed and continue the seq stream
	// (the failed attempt consumed nothing).
	l.Ack(1, t0)
	e := mustStamp(t, l, Envelope{Type: TypeCoreOk, To: 1, Value: 3}, t0)
	if e.Seq != 4 {
		t.Fatalf("seq after failed stamp = %d, want 4", e.Seq)
	}
	// SetLimit(0) restores the default.
	l.SetLimit(0)
	if l.limit != DefaultMaxUnacked {
		t.Fatalf("SetLimit(0) left limit %d", l.limit)
	}
}

// TestRecvLinkCap pins the reorder-buffer cap: buffering a new out-of-order
// frame past the limit is a hard error wrapping ErrReorderBufferFull, while
// duplicates and the gap-filling in-order frame still succeed.
func TestRecvLinkCap(t *testing.T) {
	l := NewRecvLink()
	l.SetLimit(2)
	mustAccept(t, l, Envelope{Seq: 3})
	mustAccept(t, l, Envelope{Seq: 4})
	if _, _, err := l.Accept(Envelope{From: 7, Seq: 5}); !errors.Is(err, ErrReorderBufferFull) {
		t.Fatalf("accept over cap: err = %v, want ErrReorderBufferFull", err)
	}
	if l.Buffered() != 2 {
		t.Fatalf("failed accept changed buffer: %d", l.Buffered())
	}
	// Duplicates of buffered frames are still suppressed, not errors.
	if _, dup := mustAccept(t, l, Envelope{Seq: 3}); !dup {
		t.Fatal("duplicate at cap not suppressed")
	}
	// Seqless control frames pass through regardless.
	if got, _ := mustAccept(t, l, Envelope{Type: TypeAck}); len(got) != 1 {
		t.Fatal("seqless frame blocked at cap")
	}
	// The gap fill drains the buffer; afterwards there is room again.
	if got, _ := mustAccept(t, l, Envelope{Seq: 1}); len(got) != 1 {
		t.Fatalf("gap fill at cap released %d", len(got))
	}
	if got, _ := mustAccept(t, l, Envelope{Seq: 2}); len(got) != 3 {
		t.Fatalf("drain released %d frames, want 3", len(got))
	}
	mustAccept(t, l, Envelope{Seq: 6})
	if l.Buffered() != 1 {
		t.Fatalf("buffer after drain = %d", l.Buffered())
	}
}

func TestAckEnvelopeRoundTrip(t *testing.T) {
	e := Envelope{Type: TypeAck, From: 3, To: 5, Ack: 17}
	b, err := Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b[:len(b)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: %+v != %+v", got, e)
	}
}
