package wire

import (
	"reflect"
	"testing"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/multi"
	"github.com/discsp/discsp/internal/sim"
)

func sampleNogood() csp.Nogood {
	return csp.MustNogood(
		csp.Lit{Var: 1, Val: 2},
		csp.Lit{Var: 4, Val: 0},
		csp.Lit{Var: 7, Val: 1},
	)
}

// TestRoundTripAllTypes: Encode → Marshal → Unmarshal → Decode must
// reproduce every supported message exactly.
func TestRoundTripAllTypes(t *testing.T) {
	msgs := []sim.Message{
		core.Ok{Sender: 3, Receiver: 5, Value: 2, Priority: 7},
		core.NogoodMsg{Sender: 1, Receiver: 4, Nogood: sampleNogood()},
		core.Request{Sender: 9, Receiver: 2},
		abt.Ok{Sender: 0, Receiver: 1, Value: 1},
		abt.NogoodMsg{Sender: 2, Receiver: 0, Nogood: sampleNogood()},
		abt.Request{Sender: 5, Receiver: 6},
		breakout.Ok{Sender: 4, Receiver: 3, Value: 0},
		breakout.Improve{Sender: 2, Receiver: 7, Improve: 3, Eval: 9},
		multi.Ok{Sender: 1, Receiver: 2, Priority: 4, Values: []csp.Lit{{Var: 2, Val: 1}, {Var: 3, Val: 0}}},
		multi.NogoodMsg{Sender: 0, Receiver: 1, Nogood: sampleNogood()},
		multi.Request{Sender: 3, Receiver: 0},
	}
	for _, m := range msgs {
		env, err := Encode(m)
		if err != nil {
			t.Fatalf("Encode(%T): %v", m, err)
		}
		line, err := Marshal(env)
		if err != nil {
			t.Fatalf("Marshal(%T): %v", m, err)
		}
		if line[len(line)-1] != '\n' {
			t.Fatalf("Marshal(%T) missing newline framing", m)
		}
		back, err := Unmarshal(line[:len(line)-1])
		if err != nil {
			t.Fatalf("Unmarshal(%T): %v", m, err)
		}
		got, err := Decode(back)
		if err != nil {
			t.Fatalf("Decode(%T): %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip changed %T:\n got  %#v\n want %#v", m, got, m)
		}
	}
}

func TestEncodeRejectsUnknown(t *testing.T) {
	type alien struct{ sim.Message }
	if _, err := Encode(alien{}); err == nil {
		t.Fatal("unknown type encoded")
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	if _, err := Decode(Envelope{Type: "martian"}); err == nil {
		t.Fatal("unknown envelope decoded")
	}
}

func TestDecodeRejectsNegativeVariable(t *testing.T) {
	if _, err := Decode(Envelope{Type: TypeCoreNogood, Lits: []Lit{{Var: -1, Val: 0}}}); err == nil {
		t.Fatal("negative variable decoded")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not json")); err == nil {
		t.Fatal("garbage unmarshaled")
	}
	if _, err := Unmarshal([]byte(`{"from":1}`)); err == nil {
		t.Fatal("missing type accepted")
	}
}

func TestMessageInterfacesPreserved(t *testing.T) {
	env, err := Encode(core.Ok{Sender: 3, Receiver: 5})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(env)
	if err != nil {
		t.Fatal(err)
	}
	if m.From() != 3 || m.To() != 5 {
		t.Errorf("From/To = %d/%d", m.From(), m.To())
	}
}
