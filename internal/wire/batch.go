// Frame batching: many envelopes coalesced into one wire frame per link
// flush, with per-link acknowledgements collapsed to a single cumulative
// watermark each. Batching changes how bytes are grouped on the socket and
// nothing else — the receiver expands a batch back into the identical
// envelope sequence (acks first, then data frames in enqueue order), so the
// reliable-delivery state machines and the fault injector keep operating on
// logical per-link frames.
//
// Collapsing acks to the per-link maximum is sound because acks are
// cumulative: an ack for seq n acknowledges every seq ≤ n, so delivering
// only the watermark is indistinguishable from delivering every
// intermediate ack. Data frames are never reordered, dropped, or merged.
package wire

// TypeBatch tags the JSON form of a coalesced frame batch. It is part of
// the wire format. (The binary form is a distinct frame kind, see
// stream.go, and never carries this string.)
const TypeBatch = "wire.batch"

// AckWatermark is one directed link's cumulative acknowledgement inside a
// batch: every seq ≤ Ack on the From→To link has been durably received.
type AckWatermark struct {
	From int   `json:"from"`
	To   int   `json:"to"`
	Ack  int64 `json:"ack"`
}

// Envelope returns the watermark as the synthetic TypeAck envelope the
// receiver delivers, identical to the unbatched ack frame it replaces.
func (a AckWatermark) Envelope() Envelope {
	return Envelope{Type: TypeAck, From: a.From, To: a.To, Ack: a.Ack}
}

// Batch is the JSON wire form of a coalesced frame batch. The binary codec
// encodes the same payload as a frameBatch frame without this wrapper.
type Batch struct {
	Type   string         `json:"type"`
	Acks   []AckWatermark `json:"acks,omitempty"`
	Frames []Envelope     `json:"frames,omitempty"`
}
