// Hand-rolled JSON encoding for Envelope and Batch. The output is
// byte-identical to encoding/json's for the same values (field order,
// omitempty behaviour, string escaping including the HTML escapes), which
// the tests pin — but it appends into a caller-owned buffer instead of
// allocating one per message, closing the per-frame allocation that made
// the old wire.Marshal the transport's hottest allocation site.
package wire

import (
	"strconv"
	"unicode/utf8"
)

func (e *Envelope) appendJSON(buf []byte) []byte {
	buf = append(buf, `{"type":`...)
	buf = appendJSONString(buf, e.Type)
	buf = append(buf, `,"from":`...)
	buf = strconv.AppendInt(buf, int64(e.From), 10)
	buf = append(buf, `,"to":`...)
	buf = strconv.AppendInt(buf, int64(e.To), 10)
	buf = appendIntField(buf, `,"value":`, int64(e.Value))
	buf = appendIntField(buf, `,"priority":`, int64(e.Priority))
	buf = appendIntField(buf, `,"improve":`, int64(e.Improve))
	buf = appendIntField(buf, `,"eval":`, int64(e.Eval))
	buf = appendLitsField(buf, `,"lits":`, e.Lits)
	buf = appendLitsField(buf, `,"values":`, e.Values)
	buf = appendIntField(buf, `,"seq":`, e.Seq)
	buf = appendIntField(buf, `,"ack":`, e.Ack)
	if e.Insoluble {
		buf = append(buf, `,"insoluble":true`...)
	}
	buf = appendIntField(buf, `,"processed":`, int64(e.Processed))
	if e.Codec != "" {
		buf = append(buf, `,"codec":`...)
		buf = appendJSONString(buf, e.Codec)
	}
	if e.Crc {
		buf = append(buf, `,"crc":true`...)
	}
	if e.Resume {
		buf = append(buf, `,"resume":true`...)
	}
	if e.Causal {
		buf = append(buf, `,"causal":true`...)
	}
	buf = appendIntField(buf, `,"tseq":`, e.TSeq)
	return append(buf, '}')
}

func appendInt(buf []byte, v int64) []byte { return strconv.AppendInt(buf, v, 10) }

func appendIntField(buf []byte, prefix string, v int64) []byte {
	if v == 0 {
		return buf
	}
	buf = append(buf, prefix...)
	return strconv.AppendInt(buf, v, 10)
}

func appendLitsField(buf []byte, prefix string, lits []Lit) []byte {
	if len(lits) == 0 {
		return buf
	}
	buf = append(buf, prefix...)
	buf = append(buf, '[')
	for i, l := range lits {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `{"var":`...)
		buf = strconv.AppendInt(buf, int64(l.Var), 10)
		buf = append(buf, `,"val":`...)
		buf = strconv.AppendInt(buf, int64(l.Val), 10)
		buf = append(buf, '}')
	}
	return append(buf, ']')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal with encoding/json's
// escaping rules: two-character escapes for quote, backslash, newline,
// carriage return, tab, backspace, and form feed (the \b and \f forms Go
// 1.24 standardized on); \u00xx for other control characters; the
// HTML-safe escapes for < > & and U+2028/U+2029; and \ufffd for invalid
// UTF-8. Wire type and codec names never trigger any of it, so the common
// path is one copy.
func appendJSONString(buf []byte, s string) []byte {
	buf = append(buf, '"')
	start := 0
	for i := 0; i < len(s); {
		b := s[i]
		if b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			buf = append(buf, s[start:i]...)
			switch b {
			case '"', '\\':
				buf = append(buf, '\\', b)
			case '\n':
				buf = append(buf, '\\', 'n')
			case '\r':
				buf = append(buf, '\\', 'r')
			case '\t':
				buf = append(buf, '\\', 't')
			case '\b':
				buf = append(buf, '\\', 'b')
			case '\f':
				buf = append(buf, '\\', 'f')
			default:
				buf = append(buf, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			buf = append(buf, s[start:i]...)
			buf = append(buf, '\\', 'u', '2', '0', '2', hexDigits[r&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	buf = append(buf, s[start:]...)
	return append(buf, '"')
}
