// Reliable delivery over lossy links: per-link sequence numbers, cumulative
// acks, retransmission with exponential backoff, and a receiver-side
// dedup/reorder buffer. SendLink and RecvLink are pure state machines — no
// goroutines, no timers of their own — driven by the transport that owns
// them (the netrun node loops), which makes them directly unit-testable
// under deterministic fault schedules.
//
// Together they restore the two transport guarantees the algorithms'
// correctness model (Yokoo et al.) assumes and a faulty network breaks:
// every message is eventually delivered exactly once, and deliveries on one
// directed link arrive in send order (FIFO per link).
package wire

import (
	"errors"
	"fmt"
	"time"

	"github.com/discsp/discsp/internal/backoff"
)

// Buffer caps. Both halves of a reliable link hold memory proportional to
// how far the peer has fallen behind — the sender's unacked window, the
// receiver's out-of-order buffer. Under a long partition that growth is
// unbounded, so both are capped: hitting a cap is a hard, diagnosable
// error (wrapping ErrSendBufferFull / ErrReorderBufferFull), never silent
// growth. The receiver's buffer can in fact never legitimately outgrow the
// sender's window — an overflow there is a protocol violation, not load.
const (
	// DefaultMaxUnacked is the sender-side cap on buffered unacked frames.
	DefaultMaxUnacked = 4096
	// DefaultMaxReorder is the receiver-side cap on buffered out-of-order
	// frames.
	DefaultMaxReorder = 4096
)

// ErrSendBufferFull is wrapped by Stamp when the unacked buffer is at its
// cap: the receiver has not acked for so long (dead peer, never-healing
// partition) that buffering more would grow without bound.
var ErrSendBufferFull = errors.New("wire: send buffer full")

// ErrReorderBufferFull is wrapped by Accept when the out-of-order buffer is
// at its cap. A well-behaved sender's unacked window can never outrun it,
// so this marks a protocol violation.
var ErrReorderBufferFull = errors.New("wire: reorder buffer full")

// SendLink is the sender half of one directed reliable link: it stamps
// outgoing envelopes with consecutive sequence numbers and retains them
// until the receiver's cumulative ack covers them, retransmitting on an
// exponential-backoff schedule while any frame is outstanding.
type SendLink struct {
	nextSeq int64
	unacked []Envelope // seq-ascending
	limit   int

	policy      backoff.Policy
	attempt     int       // consecutive retransmission rounds without progress
	deadline    time.Time // when the oldest unacked frame is due again
	retransmits int64
}

// NewSendLink builds a sender link with the given backoff bounds. base and
// cap must be positive; the first retransmission fires base after the
// original send, doubling per round up to cap until acked. The unacked
// buffer is capped at DefaultMaxUnacked; SetLimit overrides.
func NewSendLink(base, cap time.Duration) *SendLink {
	return &SendLink{nextSeq: 1, limit: DefaultMaxUnacked, policy: backoff.Policy{Base: base, Cap: cap}}
}

// SetLimit overrides the unacked-buffer cap; n <= 0 restores the default.
func (l *SendLink) SetLimit(n int) {
	if n <= 0 {
		n = DefaultMaxUnacked
	}
	l.limit = n
}

// Stamp assigns the next sequence number to e, buffers the stamped frame
// for retransmission, and returns it for transmission. now anchors the
// retransmission deadline. It fails, without consuming a sequence number,
// when the unacked buffer is at its cap (the error wraps
// ErrSendBufferFull).
func (l *SendLink) Stamp(e Envelope, now time.Time) (Envelope, error) {
	if len(l.unacked) >= l.limit {
		return Envelope{}, fmt.Errorf("%w: %d frames to node %d unacked (oldest seq %d): peer dead or partitioned beyond the buffer cap",
			ErrSendBufferFull, len(l.unacked), e.To, l.unacked[0].Seq)
	}
	e.Seq = l.nextSeq
	l.nextSeq++
	if len(l.unacked) == 0 {
		l.attempt = 0
		l.deadline = now.Add(l.policy.Delay(0))
	}
	l.unacked = append(l.unacked, e)
	return e, nil
}

// Ack drops every buffered frame with seq ≤ cum and reports how many were
// released. Progress resets the backoff; a stale or duplicate ack changes
// nothing.
func (l *SendLink) Ack(cum int64, now time.Time) int {
	n := 0
	for n < len(l.unacked) && l.unacked[n].Seq <= cum {
		n++
	}
	if n == 0 {
		return 0
	}
	l.unacked = append(l.unacked[:0], l.unacked[n:]...)
	l.attempt = 0
	l.deadline = now.Add(l.policy.Delay(0))
	return n
}

// Due returns the frames to retransmit: every unacked frame, when now has
// reached the retransmission deadline; nil otherwise. Each firing doubles
// the backoff up to the cap, so a dead receiver costs bounded bandwidth.
// The caller transmits the returned frames.
func (l *SendLink) Due(now time.Time) []Envelope {
	if len(l.unacked) == 0 || now.Before(l.deadline) {
		return nil
	}
	l.attempt++
	l.deadline = now.Add(l.policy.Delay(l.attempt))
	l.retransmits += int64(len(l.unacked))
	out := make([]Envelope, len(l.unacked))
	copy(out, l.unacked)
	return out
}

// MarkDue makes every unacked frame immediately due for retransmission
// without advancing the backoff round — used when the owning node has just
// re-established its connection and the in-flight window must be replayed
// at once rather than on the next scheduled deadline.
func (l *SendLink) MarkDue(now time.Time) {
	if len(l.unacked) > 0 {
		l.attempt = 0
		l.deadline = now
	}
}

// Reset renumbers the link for a peer that restarted from scratch (a
// relaunched worker process with no durable checkpoint): the unacked window
// is restamped from seq 1 in order, the next fresh frame follows it, and
// everything is immediately due — so the fresh peer's receive frontier
// (expecting seq 1) lines up with this sender's stream and no frame in the
// window is lost.
func (l *SendLink) Reset(now time.Time) {
	for i := range l.unacked {
		l.unacked[i].Seq = int64(i + 1)
	}
	l.nextSeq = int64(len(l.unacked)) + 1
	l.attempt = 0
	if len(l.unacked) > 0 {
		l.deadline = now
	}
}

// Pending returns the number of unacked frames.
func (l *SendLink) Pending() int { return len(l.unacked) }

// Retransmits returns the cumulative number of frames retransmitted.
func (l *SendLink) Retransmits() int64 { return l.retransmits }

// SendLinkState is a SendLink's durable state: everything a restarted node
// needs to keep its outgoing seq stream consistent and resume
// retransmitting what the receiver never acknowledged.
type SendLinkState struct {
	NextSeq int64
	Unacked []Envelope
}

// SnapshotState captures the link's durable state (deep enough: envelopes
// are value types and the slice is copied).
func (l *SendLink) SnapshotState() SendLinkState {
	st := SendLinkState{NextSeq: l.nextSeq}
	if len(l.unacked) > 0 {
		st.Unacked = make([]Envelope, len(l.unacked))
		copy(st.Unacked, l.unacked)
	}
	return st
}

// RestoreSendLink rebuilds a sender link from a checkpoint. The restored
// link is immediately due for retransmission: the crash may have eaten the
// original transmissions, and a spurious resend is harmless (the receiver
// dedups).
func RestoreSendLink(st SendLinkState, base, cap time.Duration, now time.Time) *SendLink {
	l := NewSendLink(base, cap)
	if st.NextSeq > 0 {
		l.nextSeq = st.NextSeq
	}
	if len(st.Unacked) > 0 {
		l.unacked = make([]Envelope, len(st.Unacked))
		copy(l.unacked, st.Unacked)
		l.deadline = now // due now
	}
	return l
}

// RecvLink is the receiver half of one directed reliable link: it discards
// duplicates, buffers out-of-order arrivals, and releases frames in exact
// sequence order, restoring the FIFO-per-link guarantee.
type RecvLink struct {
	next  int64 // lowest seq not yet delivered
	buf   map[int64]Envelope
	limit int
	dups  int64
}

// NewRecvLink builds a receiver link expecting seq 1 first. The
// out-of-order buffer is capped at DefaultMaxReorder; SetLimit overrides.
func NewRecvLink() *RecvLink {
	return &RecvLink{next: 1, limit: DefaultMaxReorder}
}

// SetLimit overrides the reorder-buffer cap; n <= 0 restores the default.
func (l *RecvLink) SetLimit(n int) {
	if n <= 0 {
		n = DefaultMaxReorder
	}
	l.limit = n
}

// Accept feeds one arriving frame through the dedup/reorder buffer. It
// returns the frames released for in-order processing (possibly none, when
// e fills no gap) and whether e itself was a duplicate. Frames without a
// sequence number are passed through untouched. Buffering a new
// out-of-order frame past the cap fails (the error wraps
// ErrReorderBufferFull); duplicates and in-order frames never fail.
func (l *RecvLink) Accept(e Envelope) (deliver []Envelope, dup bool, err error) {
	if e.Seq == 0 {
		return []Envelope{e}, false, nil
	}
	if e.Seq < l.next {
		l.dups++
		return nil, true, nil
	}
	if e.Seq > l.next {
		if l.buf == nil {
			l.buf = make(map[int64]Envelope)
		}
		if _, exists := l.buf[e.Seq]; exists {
			l.dups++
			return nil, true, nil
		}
		if len(l.buf) >= l.limit {
			return nil, false, fmt.Errorf("%w: %d frames buffered from node %d waiting for seq %d (got seq %d)",
				ErrReorderBufferFull, len(l.buf), e.From, l.next, e.Seq)
		}
		l.buf[e.Seq] = e
		return nil, false, nil
	}
	deliver = append(deliver, e)
	l.next++
	for {
		nxt, ok := l.buf[l.next]
		if !ok {
			break
		}
		delete(l.buf, l.next)
		deliver = append(deliver, nxt)
		l.next++
	}
	return deliver, false, nil
}

// Reset rewinds the link for a peer that restarted from scratch: the
// frontier returns to seq 1 and every buffered out-of-order frame from the
// peer's previous incarnation is discarded (the peer renumbers and resends
// its window, so stale high-seq frames must not squat on slots the new
// stream will reach). The duplicate counter survives — it is cumulative
// accounting, not link state.
func (l *RecvLink) Reset() {
	l.next = 1
	l.buf = nil
}

// CumAck returns the cumulative acknowledgement: every seq ≤ CumAck has
// been released in order.
func (l *RecvLink) CumAck() int64 { return l.next - 1 }

// Buffered returns the number of out-of-order frames awaiting a gap fill.
func (l *RecvLink) Buffered() int { return len(l.buf) }

// Dups returns the cumulative number of duplicate frames suppressed.
func (l *RecvLink) Dups() int64 { return l.dups }

// RecvLinkState is a RecvLink's durable state. Only the in-order frontier
// is durable: buffered out-of-order frames die with a crash and are
// recovered by sender retransmission, which is why the frontier must never
// be advanced past what the owner has durably processed.
type RecvLinkState struct {
	Next int64
}

// SnapshotState captures the link's durable state.
func (l *RecvLink) SnapshotState() RecvLinkState {
	return RecvLinkState{Next: l.next}
}

// RestoreRecvLink rebuilds a receiver link from a checkpoint.
func RestoreRecvLink(st RecvLinkState) *RecvLink {
	l := NewRecvLink()
	if st.Next > 0 {
		l.next = st.Next
	}
	return l
}
