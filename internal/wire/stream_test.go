package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
)

// pump writes every envelope through a FrameWriter configured with (codec,
// batching), flushes, and reads the stream back with a FrameReader.
func pump(t *testing.T, codec Codec, batch bool, envs []Envelope) []Envelope {
	t.Helper()
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	if err := fw.SetCodec(codec); err != nil {
		t.Fatal(err)
	}
	// pump models a fully-negotiated link, causal tracing included, so
	// sample envelopes carrying TSeq survive; TestSendStripsTSeqUntilCausal
	// pins the un-negotiated strip path.
	fw.EnableCausal()
	if batch {
		fw.EnableBatching(8, 4<<10)
	}
	for i := range envs {
		if err := fw.Send(&envs[i]); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&sock)
	fr.SetCodec(codec)
	var got []Envelope
	for {
		e, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			t.Fatalf("next after %d frames: %v", len(got), err)
		}
		e.Detach()
		got = append(got, e)
	}
	if fr.BytesRead != fw.BytesWritten {
		t.Fatalf("reader consumed %d bytes, writer produced %d", fr.BytesRead, fw.BytesWritten)
	}
	return got
}

func TestStreamRoundTrip(t *testing.T) {
	envs := sampleEnvelopes()
	// Batching moves a batch's acks ahead of its data frames (sound: acks
	// are cumulative and link-independent), so the order-exact check uses
	// the ack-free subset when batching; TestAckCoalescing pins the ack
	// behavior.
	var noAcks []Envelope
	for _, e := range envs {
		if e.Type != TypeAck {
			noAcks = append(noAcks, e)
		}
	}
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		for _, batch := range []bool{false, true} {
			want := envs
			if batch {
				want = noAcks
			}
			got := pump(t, codec, batch, want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v batch=%v: stream round trip mismatch\n got %+v\nwant %+v", codec, batch, got, want)
			}
		}
	}
}

// TestSendStripsTSeqUntilCausal: a writer whose peer did not negotiate
// causal tracing strips trace IDs rather than ship an extended layout the
// peer cannot parse — and the strip clones, leaving the caller's envelope
// (possibly queued for retransmission to a traced peer) intact.
func TestSendStripsTSeqUntilCausal(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		var sock bytes.Buffer
		fw := NewFrameWriter(&sock)
		if err := fw.SetCodec(codec); err != nil {
			t.Fatal(err)
		}
		env := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 3, Seq: 1, TSeq: 99}
		if err := fw.Send(&env); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		if env.TSeq != 99 {
			t.Errorf("%v: Send mutated the caller's envelope: TSeq=%d", codec, env.TSeq)
		}
		fr := NewFrameReader(&sock)
		fr.SetCodec(codec)
		got, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.TSeq != 0 {
			t.Errorf("%v: un-negotiated link leaked TSeq=%d", codec, got.TSeq)
		}

		// After negotiation the same envelope keeps its trace ID.
		sock.Reset()
		fw = NewFrameWriter(&sock)
		if err := fw.SetCodec(codec); err != nil {
			t.Fatal(err)
		}
		fw.EnableCausal()
		if err := fw.Send(&env); err != nil {
			t.Fatal(err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		fr = NewFrameReader(&sock)
		fr.SetCodec(codec)
		got, err = fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.TSeq != 99 {
			t.Errorf("%v: negotiated link lost TSeq: got %d", codec, got.TSeq)
		}
	}
}

// TestAckCoalescing: repeated acks on one link collapse to a single
// watermark at the link's maximum, delivered as a synthetic ack frame.
func TestAckCoalescing(t *testing.T) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		envs := []Envelope{
			{Type: TypeAck, From: 1, To: 2, Ack: 3},
			{Type: TypeCoreOk, From: 1, To: 2, Value: 5, Seq: 4},
			{Type: TypeAck, From: 1, To: 2, Ack: 7},
			{Type: TypeAck, From: 2, To: 1, Ack: 1},
			{Type: TypeAck, From: 1, To: 2, Ack: 6}, // stale: below the watermark
		}
		got := pump(t, codec, true, envs)
		want := []Envelope{
			{Type: TypeAck, From: 1, To: 2, Ack: 7},
			{Type: TypeAck, From: 2, To: 1, Ack: 1},
			{Type: TypeCoreOk, From: 1, To: 2, Value: 5, Seq: 4},
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: coalesced stream\n got %+v\nwant %+v", codec, got, want)
		}
	}
}

// TestCodecSwitchMidStream writes a JSON handshake followed by binary
// frames into one buffer and reads both back through a single FrameReader,
// the property that makes hello/welcome negotiation safe.
func TestCodecSwitchMidStream(t *testing.T) {
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	hello := Envelope{Type: TypeHello, From: 3, Codec: "binary"}
	if err := fw.Send(&hello); err != nil {
		t.Fatal(err)
	}
	if err := fw.SetCodec(CodecBinary); err != nil {
		t.Fatal(err)
	}
	data := Envelope{Type: TypeCoreOk, From: 3, To: 4, Value: 1, Seq: 1}
	if err := fw.Send(&data); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	fr := NewFrameReader(&sock)
	got, err := fr.Next()
	if err != nil || got.Type != TypeHello {
		t.Fatalf("handshake read: %+v, %v", got, err)
	}
	fr.SetCodec(CodecBinary)
	got, err = fr.Next()
	if err != nil || !reflect.DeepEqual(got, data) {
		t.Fatalf("post-switch read: %+v, %v", got, err)
	}
}

// TestJSONBatchShape: the JSON batch frame is a plain JSON object that
// encoding/json can parse into Batch — the cross-implementation contract.
func TestJSONBatchShape(t *testing.T) {
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	fw.EnableBatching(64, 1<<20)
	envs := []Envelope{
		{Type: TypeAck, From: 1, To: 2, Ack: 9},
		{Type: TypeCoreOk, From: 2, To: 1, Value: 4, Seq: 2},
		{Type: TypeCoreNogood, From: 2, To: 1, Lits: []Lit{{Var: 1, Val: 0}}, Seq: 3},
	}
	for i := range envs {
		if err := fw.Send(&envs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	var b Batch
	if err := json.Unmarshal(sock.Bytes(), &b); err != nil {
		t.Fatalf("batch is not one JSON object: %v\n%s", err, sock.Bytes())
	}
	if b.Type != TypeBatch || len(b.Acks) != 1 || len(b.Frames) != 2 {
		t.Fatalf("batch shape: %+v", b)
	}
	if fw.Batches != 1 || fw.BatchedFrames != 3 {
		t.Fatalf("writer counters: batches=%d batched=%d", fw.Batches, fw.BatchedFrames)
	}
}

// TestBatchSizeFlush: the batch flushes itself once maxFrames accumulate,
// before any explicit Flush.
func TestBatchSizeFlush(t *testing.T) {
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	if err := fw.SetCodec(CodecBinary); err != nil {
		t.Fatal(err)
	}
	fw.EnableBatching(4, 1<<20)
	e := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 1}
	for i := 0; i < 4; i++ {
		e.Seq = int64(i + 1)
		if err := fw.Send(&e); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Batches != 1 {
		t.Fatalf("size-bounded flush did not fire: batches=%d", fw.Batches)
	}
}

// TestBatchedFramesCounters: reader-side BatchedFrames matches writer-side.
func TestBatchedFramesCounters(t *testing.T) {
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	if err := fw.SetCodec(CodecBinary); err != nil {
		t.Fatal(err)
	}
	fw.EnableBatching(8, 4<<10)
	for i := 0; i < 10; i++ {
		e := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: i, Seq: int64(i + 1)}
		if err := fw.Send(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&sock)
	fr.SetCodec(CodecBinary)
	n := 0
	for {
		if _, err := fr.Next(); err != nil {
			break
		}
		n++
	}
	if n != 10 || fr.BatchedFrames != fw.BatchedFrames || fr.BatchedFrames != 10 {
		t.Fatalf("frames=%d, reader batched=%d, writer batched=%d", n, fr.BatchedFrames, fw.BatchedFrames)
	}
}

// TestSteadyStateZeroAlloc is the tentpole's core claim: encoding and
// decoding a steady-state frame (no literal lists) through reused buffers
// allocates nothing, in both codecs for encode and in binary for decode.
func TestSteadyStateZeroAlloc(t *testing.T) {
	e := Envelope{Type: TypeCoreOk, From: 12, To: 34, Value: 5, Priority: 2, Seq: 777, Ack: 0}
	buf := make([]byte, 0, 256)
	for _, codec := range []Codec{CodecBinary, CodecJSON} {
		codec := codec
		n := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = e.AppendTo(buf[:0], codec)
			if err != nil {
				t.Fatal(err)
			}
		})
		if n != 0 {
			t.Errorf("%v encode: %v allocs/op, want 0", codec, n)
		}
	}
	enc, err := e.AppendTo(nil, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	if _, _, err := dec.Decode(enc); err != nil { // warm the scratch
		t.Fatal(err)
	}
	n := testing.AllocsPerRun(200, func() {
		if _, _, err := dec.Decode(enc); err != nil {
			t.Fatal(err)
		}
	})
	if n != 0 {
		t.Errorf("binary decode: %v allocs/op, want 0", n)
	}
}
