package wire

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

func crcPipe(batch bool) (*FrameWriter, *bytes.Buffer) {
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	fw.SetCodec(CodecBinary)
	fw.EnableChecksum()
	if batch {
		fw.EnableBatching(8, 1<<10)
	}
	return fw, &sock
}

func crcReader(sock *bytes.Buffer) *FrameReader {
	fr := NewFrameReader(sock)
	fr.SetCodec(CodecBinary)
	fr.EnableChecksum()
	return fr
}

func TestChecksumRoundTrip(t *testing.T) {
	for _, batch := range []bool{false, true} {
		fw, sock := crcPipe(batch)
		envs := []Envelope{
			{Type: TypeCoreOk, From: 1, To: 2, Value: 5, Seq: 1},
			{Type: TypeCoreNogood, From: 2, To: 1, Lits: []Lit{{Var: 3, Val: 1}}, Seq: 2},
			{Type: TypeHeartbeat, From: 4, To: -1},
			{Type: TypeState, From: 2, To: -1, Value: 1, Processed: 3},
		}
		for i := range envs {
			if err := fw.Send(&envs[i]); err != nil {
				t.Fatalf("batch=%v send: %v", batch, err)
			}
		}
		if err := fw.Flush(); err != nil {
			t.Fatal(err)
		}
		fr := crcReader(sock)
		for i := range envs {
			got, err := fr.Next()
			if err != nil {
				t.Fatalf("batch=%v frame %d: %v", batch, i, err)
			}
			got.Detach()
			if !reflect.DeepEqual(got, envs[i]) {
				t.Fatalf("batch=%v frame %d:\n got %+v\nwant %+v", batch, i, got, envs[i])
			}
		}
		if fr.CorruptFrames != 0 {
			t.Fatalf("clean stream counted %d corrupt frames", fr.CorruptFrames)
		}
	}
}

// Every single-bit flip anywhere in a checksummed frame's payload or
// trailer must be detected, and the reader must deliver the following frame
// untouched — detection plus containment, which is what lets the reliable
// layer treat corruption as loss.
func TestChecksumDetectsEveryBitFlip(t *testing.T) {
	fw, sock := crcPipe(false)
	poisoned := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 7, Seq: 9}
	follow := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 8, Seq: 10}
	if err := fw.Send(&poisoned); err != nil {
		t.Fatal(err)
	}
	mark := sock.Len()
	if err := fw.Send(&follow); err != nil {
		t.Fatal(err)
	}
	fw.Flush()
	clean := append([]byte{}, sock.Bytes()...)

	// Flip every bit after the first frame's length prefix (flipping the
	// prefix itself desynchronizes framing — that is the terminal-error
	// path, covered below).
	prefixLen := 1 // frames here are < 128 bytes: one-byte uvarint
	for bit := prefixLen * 8; bit < mark*8; bit++ {
		data := append([]byte{}, clean...)
		data[bit/8] ^= 1 << (bit % 8)
		fr := crcReader(bytes.NewBuffer(data))
		_, err := fr.Next()
		if !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("bit %d: corruption not detected (err=%v)", bit, err)
		}
		if fr.CorruptFrames != 1 {
			t.Fatalf("bit %d: CorruptFrames=%d", bit, fr.CorruptFrames)
		}
		got, err := fr.Next()
		if err != nil {
			t.Fatalf("bit %d: stream not recovered: %v", bit, err)
		}
		if !reflect.DeepEqual(got, follow) {
			t.Fatalf("bit %d: following frame damaged: %+v", bit, got)
		}
	}
}

func TestWriteCorruptedIsDetectedAndSkipped(t *testing.T) {
	fw, sock := crcPipe(true)
	good1 := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 1, Seq: 1}
	bad := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 2, Seq: 2}
	good2 := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 3, Seq: 3}
	if err := fw.Send(&good1); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteCorrupted(&bad); err != nil {
		t.Fatal(err)
	}
	if err := fw.Send(&good2); err != nil {
		t.Fatal(err)
	}
	fw.Flush()

	fr := crcReader(sock)
	first, err := fr.Next()
	if err != nil {
		t.Fatalf("first frame: %v", err)
	}
	if !reflect.DeepEqual(first, good1) {
		t.Fatalf("first frame %+v", first)
	}
	if _, err := fr.Next(); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("poisoned frame passed the checksum (err=%v)", err)
	}
	last, err := fr.Next()
	if err != nil {
		t.Fatalf("frame after corruption: %v", err)
	}
	if !reflect.DeepEqual(last, good2) {
		t.Fatalf("frame after corruption %+v", last)
	}
	if fr.CorruptFrames != 1 {
		t.Fatalf("CorruptFrames = %d, want 1", fr.CorruptFrames)
	}
}

func TestWriteCorruptedRequiresChecksummedBinary(t *testing.T) {
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	fw.SetCodec(CodecBinary)
	e := Envelope{Type: TypeCoreOk, From: 1, To: 2, Seq: 1}
	if err := fw.WriteCorrupted(&e); err == nil {
		t.Fatal("WriteCorrupted without checksum negotiation must refuse")
	}
}

// Truncated frames — a peer dying mid-write — must yield a clean
// ErrUnexpectedEOF-style error, never a panic, in both checksummed and
// plain framing.
func TestTruncatedFramesFailCleanly(t *testing.T) {
	for _, crc := range []bool{false, true} {
		var sock bytes.Buffer
		fw := NewFrameWriter(&sock)
		fw.SetCodec(CodecBinary)
		if crc {
			fw.EnableChecksum()
		}
		e := Envelope{Type: TypeCoreNogood, From: 1, To: 2, Seq: 4,
			Lits: []Lit{{Var: 1, Val: 2}, {Var: 3, Val: 4}}}
		fw.Send(&e)
		fw.Flush()
		whole := sock.Bytes()
		for cut := 1; cut < len(whole); cut++ {
			fr := NewFrameReader(bytes.NewReader(whole[:cut]))
			fr.SetCodec(CodecBinary)
			if crc {
				fr.EnableChecksum()
			}
			if _, err := fr.Next(); err == nil {
				t.Fatalf("crc=%v cut=%d: truncated frame decoded", crc, cut)
			}
		}
	}
}

// The steady-state cost of the trailer: the checksummed binary batch path
// must stay allocation-free per op once buffers are warm, preserving the
// PR-7 invariant the bench gate pins.
func TestChecksumPathAllocationFree(t *testing.T) {
	fw := NewFrameWriter(io.Discard)
	fw.SetCodec(CodecBinary)
	fw.EnableChecksum()
	fw.EnableBatching(8, 1<<10)
	e := Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: 5, Seq: 1}
	// Warm the scratch buffers.
	for i := 0; i < 4; i++ {
		fw.Send(&e)
	}
	fw.Flush()
	allocs := testing.AllocsPerRun(100, func() {
		fw.Send(&e)
		fw.Send(&e)
		fw.Flush()
	})
	if allocs != 0 {
		t.Fatalf("checksummed batch write path allocates %.1f/op", allocs)
	}
}

// Decoding a corrupt frame must not balloon memory: the reader rejects the
// frame on the CRC before any count field is trusted, and even without
// checksums the decoder's count guards bound what a hostile length can
// allocate.
func TestCorruptFrameAllocationBounded(t *testing.T) {
	fw, sock := crcPipe(false)
	e := Envelope{Type: TypeCoreNogood, From: 1, To: 2, Seq: 1,
		Lits: []Lit{{Var: 1, Val: 2}}}
	fw.Send(&e)
	fw.Flush()
	data := append([]byte{}, sock.Bytes()...)
	data[len(data)-6] ^= 0xff // damage the payload, keep the length prefix
	allocs := testing.AllocsPerRun(20, func() {
		fr := crcReader(bytes.NewBuffer(append([]byte{}, data...)))
		if _, err := fr.Next(); !errors.Is(err, ErrCorruptFrame) {
			t.Fatalf("want ErrCorruptFrame, got %v", err)
		}
	})
	// One buffer + reader construction per run is fine; what must not
	// happen is an allocation proportional to a forged count field.
	if allocs > 20 {
		t.Fatalf("corrupt-frame rejection allocates %.1f/op", allocs)
	}
}

func TestSendLinkReset(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewSendLink(10*time.Millisecond, 160*time.Millisecond)
	for i := 0; i < 5; i++ {
		if _, err := l.Stamp(Envelope{Type: TypeCoreOk, From: 1, To: 2, Value: i}, now); err != nil {
			t.Fatal(err)
		}
	}
	l.Ack(2, now) // peer durably received 1-2 before its incarnation died
	l.Reset(now)
	due := l.Due(now)
	if len(due) != 3 {
		t.Fatalf("reset window: %d frames, want 3", len(due))
	}
	for i, e := range due {
		if e.Seq != int64(i+1) {
			t.Fatalf("frame %d renumbered to seq %d, want %d", i, e.Seq, i+1)
		}
		if e.Value != i+2 {
			t.Fatalf("frame %d payload reordered: value %d", i, e.Value)
		}
	}
	stamped, err := l.Stamp(Envelope{Type: TypeCoreOk, From: 1, To: 2}, now)
	if err != nil {
		t.Fatal(err)
	}
	if stamped.Seq != 4 {
		t.Fatalf("fresh frame after reset got seq %d, want 4", stamped.Seq)
	}
}

func TestSendLinkResetEmpty(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewSendLink(10*time.Millisecond, 160*time.Millisecond)
	if _, err := l.Stamp(Envelope{Type: TypeCoreOk}, now); err != nil {
		t.Fatal(err)
	}
	l.Ack(1, now)
	l.Reset(now)
	if got := l.Due(now.Add(time.Second)); got != nil {
		t.Fatalf("empty reset link retransmitted %d frames", len(got))
	}
	stamped, _ := l.Stamp(Envelope{Type: TypeCoreOk}, now)
	if stamped.Seq != 1 {
		t.Fatalf("first frame after empty reset got seq %d, want 1", stamped.Seq)
	}
}

func TestSendLinkMarkDue(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewSendLink(10*time.Millisecond, 160*time.Millisecond)
	if _, err := l.Stamp(Envelope{Type: TypeCoreOk}, now); err != nil {
		t.Fatal(err)
	}
	if got := l.Due(now); got != nil {
		t.Fatal("frame due before its deadline")
	}
	l.MarkDue(now)
	if got := l.Due(now); len(got) != 1 {
		t.Fatalf("MarkDue did not make the window due (got %d frames)", len(got))
	}
}

func TestRecvLinkReset(t *testing.T) {
	l := NewRecvLink()
	for seq := int64(1); seq <= 3; seq++ {
		if _, _, err := l.Accept(Envelope{Type: TypeCoreOk, Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	// An out-of-order frame from the old incarnation squats in the buffer.
	if _, _, err := l.Accept(Envelope{Type: TypeCoreOk, Seq: 9, Value: 99}); err != nil {
		t.Fatal(err)
	}
	l.Reset()
	if l.CumAck() != 0 {
		t.Fatalf("reset frontier: CumAck %d, want 0", l.CumAck())
	}
	if l.Buffered() != 0 {
		t.Fatalf("reset kept %d stale buffered frames", l.Buffered())
	}
	// The renumbered stream reaches seq 9: it must deliver the new payload,
	// not the stale squatter.
	for seq := int64(1); seq <= 9; seq++ {
		deliver, dup, err := l.Accept(Envelope{Type: TypeCoreOk, Seq: seq, Value: int(seq)})
		if err != nil || dup {
			t.Fatalf("seq %d after reset: dup=%v err=%v", seq, dup, err)
		}
		if len(deliver) != 1 || deliver[0].Value != int(seq) {
			t.Fatalf("seq %d after reset delivered %+v", seq, deliver)
		}
	}
}
