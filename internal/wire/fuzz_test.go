package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"unicode/utf8"
)

var fuzzTypes = []string{
	TypeCoreOk, TypeCoreNogood, TypeCoreRequest,
	TypeABTOk, TypeABTNogood, TypeABTRequest,
	TypeDBOk, TypeDBImprove,
	TypeMultiOk, TypeMultiNogood, TypeMultiRequest,
	TypeAck, TypeHello, TypeWelcome, TypeState, TypeStop,
	TypeHeartbeat, TypeReset,
}

// litsFrom turns fuzz bytes into a literal list (pairs of signed bytes), so
// the fuzzer controls list length and values without a structured input.
func litsFrom(raw []byte) []Lit {
	if len(raw) < 2 {
		return nil
	}
	lits := make([]Lit, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		lits = append(lits, Lit{Var: int(int8(raw[i])), Val: int(int8(raw[i+1]))})
	}
	return lits
}

// FuzzEnvelopeRoundTrip checks, for arbitrary envelope contents: the
// hand-rolled JSON encoder is byte-identical to encoding/json; the binary
// codec round-trips exactly; and both codecs decode to the same envelope
// (cross-decode equality), which is what lets a binary hub interoperate
// with a JSON-only peer.
func FuzzEnvelopeRoundTrip(f *testing.F) {
	f.Add(uint8(0), 1, 2, 3, 0, 0, 0, 0, int64(9), int64(0), false, false, false, "", []byte{})
	f.Add(uint8(1), 2, 1, 0, 0, 0, 0, 0, int64(5), int64(0), false, false, false, "", []byte{1, 2, 3, 4})
	f.Add(uint8(12), 7, -1, 0, 0, 0, 0, 0, int64(0), int64(0), false, true, false, "binary", []byte{})
	f.Add(uint8(14), 4, -1, 1, 0, 0, 0, 12345, int64(0), int64(0), true, false, false, "", []byte{})
	f.Add(uint8(11), 2, 3, 0, 0, 0, 0, 0, int64(0), int64(99), false, false, false, "we\"ird\x00<&>\xff", []byte{255, 0})
	f.Add(uint8(12), 5, -1, 0, 0, 0, 0, 0, int64(0), int64(0), false, true, true, "binary", []byte{})
	f.Add(uint8(17), 3, 9, 0, 0, 0, 0, 0, int64(0), int64(0), false, false, false, "", []byte{})
	f.Fuzz(func(t *testing.T, ti uint8, from, to, value, priority, improve, eval, processed int,
		seq, ack int64, insoluble, crc, resume bool, codec string, raw []byte) {
		e := Envelope{
			Type: fuzzTypes[int(ti)%len(fuzzTypes)],
			From: from, To: to, Value: value, Priority: priority,
			Improve: improve, Eval: eval, Processed: processed,
			Seq: seq, Ack: ack, Insoluble: insoluble, Codec: codec,
			Crc: crc, Resume: resume,
		}
		lits := litsFrom(raw)
		if e.Type == TypeMultiOk {
			e.Values = lits
		} else {
			e.Lits = lits
		}

		// JSON: hand-rolled encoder must match encoding/json byte for byte.
		// The one divergence across toolchains is \b and \f, which Go
		// ≥ 1.24 escapes as two characters and older Go as \u00xx; strings
		// containing them are checked semantically instead.
		gotJSON := e.appendJSON(nil)
		wantJSON, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		if strings.ContainsAny(codec, "\b\f") {
			var a, bb Envelope
			if err := json.Unmarshal(gotJSON, &a); err != nil {
				t.Fatalf("appendJSON output invalid: %v\n%q", err, gotJSON)
			}
			if err := json.Unmarshal(wantJSON, &bb); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, bb) {
				t.Fatalf("appendJSON semantic drift:\n got %q\nwant %q", gotJSON, wantJSON)
			}
		} else if !bytes.Equal(gotJSON, wantJSON) {
			t.Fatalf("appendJSON drift:\n got %q\nwant %q", gotJSON, wantJSON)
		}

		// Binary: exact round trip, including non-UTF-8 codec strings.
		bbuf, err := e.AppendTo(nil, CodecBinary)
		if err != nil {
			t.Fatalf("binary encode: %v", err)
		}
		var dec Decoder
		fromBinary, n, err := dec.Decode(bbuf)
		if err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		if n != len(bbuf) {
			t.Fatalf("binary decode consumed %d of %d", n, len(bbuf))
		}
		fromBinary.Detach()
		if !reflect.DeepEqual(fromBinary, e) {
			t.Fatalf("binary round trip:\n got %+v\nwant %+v", fromBinary, e)
		}

		// Cross-decode equality. JSON strings are lossy for invalid UTF-8
		// (encoding/json substitutes U+FFFD), so the comparison needs a
		// valid codec string; everything else is exact either way.
		if utf8.ValidString(codec) {
			fromJSON, err := Unmarshal(gotJSON)
			if err != nil {
				t.Fatalf("json decode: %v", err)
			}
			if !reflect.DeepEqual(fromJSON, fromBinary) {
				t.Fatalf("codecs disagree:\n json   %+v\n binary %+v", fromJSON, fromBinary)
			}
		}
	})
}

// fuzzStream renders a small frame sequence so the fuzzer starts from
// well-formed batch bytes it can mutate.
func fuzzStream(codec Codec, batch bool) []byte {
	return fuzzStreamCrc(codec, batch, false)
}

func fuzzStreamCrc(codec Codec, batch, crc bool) []byte {
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	fw.SetCodec(codec)
	if crc {
		fw.EnableChecksum()
	}
	if batch {
		fw.EnableBatching(4, 1<<10)
	}
	envs := []Envelope{
		{Type: TypeAck, From: 1, To: 2, Ack: 3},
		{Type: TypeCoreOk, From: 1, To: 2, Value: 5, Seq: 4},
		{Type: TypeCoreNogood, From: 2, To: 1, Lits: []Lit{{Var: 1, Val: 0}, {Var: 0, Val: 2}}, Seq: 2},
		{Type: TypeAck, From: 1, To: 2, Ack: 9},
		{Type: TypeState, From: 2, To: -1, Value: 1, Processed: 7},
	}
	for i := range envs {
		fw.Send(&envs[i])
	}
	fw.Flush()
	return sock.Bytes()
}

// chunkedReader yields its parts one Read each, simulating arbitrary TCP
// segmentation.
type chunkedReader struct{ parts [][]byte }

func (c *chunkedReader) Read(p []byte) (int, error) {
	for len(c.parts) > 0 && len(c.parts[0]) == 0 {
		c.parts = c.parts[1:]
	}
	if len(c.parts) == 0 {
		return 0, io.EOF
	}
	n := copy(p, c.parts[0])
	c.parts[0] = c.parts[0][n:]
	return n, nil
}

// drainStream reads every envelope it can, returning the decoded sequence
// and the terminal error text. With checksums armed, corrupt frames are
// skipped the way the runtime's readers skip them — they consume input but
// never terminate the stream — so the fuzzer exercises recovery, not just
// detection.
func drainStream(r io.Reader, codec Codec, crc bool) ([]Envelope, string) {
	fr := NewFrameReader(r)
	fr.SetCodec(codec)
	if crc {
		fr.EnableChecksum()
	}
	var out []Envelope
	for len(out)+int(fr.CorruptFrames) < 4096 {
		e, err := fr.Next()
		if errors.Is(err, ErrCorruptFrame) {
			continue
		}
		if err != nil {
			return out, err.Error()
		}
		e.Detach()
		out = append(out, e)
	}
	return out, "frame limit"
}

// FuzzBatchSplit feeds arbitrary bytes — seeded with real batch streams —
// to the frame reader whole and torn at an arbitrary boundary (TCP
// segmentation), in both codecs. Decoding must never panic, and the torn
// read must produce exactly the same envelope sequence and terminal error
// as the contiguous read. Concatenated inputs (seed corpus doubles) cover
// back-to-back batches.
func FuzzBatchSplit(f *testing.F) {
	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		for _, batch := range []bool{false, true} {
			s := fuzzStream(codec, batch)
			f.Add(s, uint16(0), codec == CodecBinary, false)
			f.Add(append(append([]byte{}, s...), s...), uint16(len(s)/2), codec == CodecBinary, false)
			f.Add(s[:len(s)/2], uint16(3), codec == CodecBinary, false)
		}
	}
	// Corruption seeds: checksummed binary streams, clean and with single
	// bit flips landing in a payload (CRC must reject the frame and the
	// reader must keep going) and in a length prefix (framing damage is a
	// terminal error, identically whole or torn).
	for _, batch := range []bool{false, true} {
		s := fuzzStreamCrc(CodecBinary, batch, true)
		f.Add(s, uint16(0), true, true)
		for _, bit := range []int{9, 20, len(s) - 3} {
			flipped := append([]byte{}, s...)
			flipped[bit/8] ^= 1 << (bit % 8)
			f.Add(flipped, uint16(7), true, true)
		}
		truncated := append([]byte{}, s[:len(s)-5]...)
		f.Add(truncated, uint16(2), true, true)
	}
	f.Fuzz(func(t *testing.T, data []byte, split uint16, binaryCodec, crc bool) {
		codec := CodecJSON
		if binaryCodec {
			codec = CodecBinary
		}
		whole, wholeErr := drainStream(bytes.NewReader(data), codec, crc)
		cut := 0
		if len(data) > 0 {
			cut = int(split) % len(data)
		}
		torn, tornErr := drainStream(&chunkedReader{parts: [][]byte{
			append([]byte{}, data[:cut]...),
			append([]byte{}, data[cut:]...),
		}}, codec, crc)
		if wholeErr != tornErr {
			t.Fatalf("terminal error differs: whole=%q torn=%q", wholeErr, tornErr)
		}
		if !reflect.DeepEqual(whole, torn) {
			t.Fatalf("torn read diverges after %d/%d frames", len(torn), len(whole))
		}
	})
}
