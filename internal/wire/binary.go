// The binary wire codec: a length-prefixed frame encoding built so the
// steady-state encode and decode paths allocate nothing. Envelopes append
// themselves into caller-owned buffers (AppendTo) and decode out of them
// through a Decoder whose scratch slices are reused across calls; the only
// frames that cost an allocation end-to-end are the minority that carry
// nogood literal lists, which must be detached from the scratch before they
// outlive the next decode.
//
// Payload layout (after the stream framing's uvarint length prefix and the
// frame-kind byte, see stream.go):
//
//	[type code: 1 byte]
//	[flags: 1 byte]            bit0 = Insoluble
//	zigzag varints:            From, To, Value, Priority, Improve, Eval,
//	                           Seq, Ack, Processed
//	[uvarint len][bytes]       Codec
//	[uvarint n] n×(zig,zig)    Lits   (Var, Val)
//	[uvarint n] n×(zig,zig)    Values (Var, Val)
//	[zigzag TSeq]              only when bit4 (flagTSeq) is set
//
// Every integer field is zigzag-encoded so the codec is total over the
// envelope's value space; the type string is the one field compressed to a
// table code, and an envelope whose Type is outside the table cannot be
// binary-encoded (the JSON fallback still carries it). The layout is part
// of the wire format: append new fields at the end, never reorder.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Codec identifies a wire encoding negotiated per connection.
type Codec uint8

const (
	// CodecBinary is the length-prefixed binary codec (the default).
	CodecBinary Codec = iota
	// CodecJSON is the newline-delimited JSON codec, retained as the
	// negotiated fallback and the handshake encoding.
	CodecJSON
)

// String returns the codec's negotiation name.
func (c Codec) String() string {
	if c == CodecJSON {
		return "json"
	}
	return "binary"
}

// ParseCodec parses a negotiation name; "" means the binary default.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "binary":
		return CodecBinary, nil
	case "json":
		return CodecJSON, nil
	default:
		return CodecBinary, fmt.Errorf("wire: unknown codec %q (want binary or json)", s)
	}
}

// Binary type codes. They are part of the wire format; do not renumber.
const (
	codeCoreOk byte = iota + 1
	codeCoreNogood
	codeCoreRequest
	codeABTOk
	codeABTNogood
	codeABTRequest
	codeDBOk
	codeDBImprove
	codeMultiOk
	codeMultiNogood
	codeMultiRequest
	codeAck
	codeHello
	codeWelcome
	codeState
	codeStop
	codeHeartbeat
	codeReset
)

var typeCodes = map[string]byte{
	TypeCoreOk:       codeCoreOk,
	TypeCoreNogood:   codeCoreNogood,
	TypeCoreRequest:  codeCoreRequest,
	TypeABTOk:        codeABTOk,
	TypeABTNogood:    codeABTNogood,
	TypeABTRequest:   codeABTRequest,
	TypeDBOk:         codeDBOk,
	TypeDBImprove:    codeDBImprove,
	TypeMultiOk:      codeMultiOk,
	TypeMultiNogood:  codeMultiNogood,
	TypeMultiRequest: codeMultiRequest,
	TypeAck:          codeAck,
	TypeHello:        codeHello,
	TypeWelcome:      codeWelcome,
	TypeState:        codeState,
	TypeStop:         codeStop,
	TypeHeartbeat:    codeHeartbeat,
	TypeReset:        codeReset,
}

var typeNames = func() map[byte]string {
	m := make(map[byte]string, len(typeCodes))
	for name, code := range typeCodes {
		m[code] = name
	}
	return m
}()

// Envelope flag bits. Part of the wire format; new boolean fields claim the
// next free bit rather than growing the layout.
const (
	flagInsoluble = 1 << 0
	flagCrc       = 1 << 1
	flagResume    = 1 << 2
	flagCausal    = 1 << 3
	// flagTSeq marks a frame whose layout is extended by a trailing zigzag
	// TSeq. The flag (not the field) is what old decoders would trip over as
	// trailing bytes, which is why FrameWriter strips TSeq unless the peer
	// negotiated causal tracing (EnableCausal).
	flagTSeq = 1 << 4
)

// appendZig appends v as a zigzag-encoded uvarint.
func appendZig(buf []byte, v int64) []byte {
	return binary.AppendUvarint(buf, uint64(v<<1)^uint64(v>>63))
}

// AppendTo appends the envelope's encoding under codec c to buf and returns
// the extended buffer, without any stream framing. It is the shared
// serialization entry for both codecs: with a reused buffer neither path
// allocates. Binary encoding fails only on a Type outside the code table.
func (e *Envelope) AppendTo(buf []byte, c Codec) ([]byte, error) {
	if c == CodecJSON {
		return e.appendJSON(buf), nil
	}
	return e.appendBinary(buf)
}

func (e *Envelope) appendBinary(buf []byte) ([]byte, error) {
	code, ok := typeCodes[e.Type]
	if !ok {
		return buf, fmt.Errorf("wire: type %q has no binary code", e.Type)
	}
	buf = append(buf, code)
	var flags byte
	if e.Insoluble {
		flags |= flagInsoluble
	}
	if e.Crc {
		flags |= flagCrc
	}
	if e.Resume {
		flags |= flagResume
	}
	if e.Causal {
		flags |= flagCausal
	}
	if e.TSeq != 0 {
		flags |= flagTSeq
	}
	buf = append(buf, flags)
	buf = appendZig(buf, int64(e.From))
	buf = appendZig(buf, int64(e.To))
	buf = appendZig(buf, int64(e.Value))
	buf = appendZig(buf, int64(e.Priority))
	buf = appendZig(buf, int64(e.Improve))
	buf = appendZig(buf, int64(e.Eval))
	buf = appendZig(buf, e.Seq)
	buf = appendZig(buf, e.Ack)
	buf = appendZig(buf, int64(e.Processed))
	buf = binary.AppendUvarint(buf, uint64(len(e.Codec)))
	buf = append(buf, e.Codec...)
	buf = binary.AppendUvarint(buf, uint64(len(e.Lits)))
	for _, l := range e.Lits {
		buf = appendZig(buf, int64(l.Var))
		buf = appendZig(buf, int64(l.Val))
	}
	buf = binary.AppendUvarint(buf, uint64(len(e.Values)))
	for _, l := range e.Values {
		buf = appendZig(buf, int64(l.Var))
		buf = appendZig(buf, int64(l.Val))
	}
	if e.TSeq != 0 {
		buf = appendZig(buf, e.TSeq)
	}
	return buf, nil
}

// Decoder parses binary envelopes out of byte slices. Its literal scratch
// buffer is reused across calls, so a decoded envelope's Lits/Values alias
// the decoder until the next Decode: callers that keep an envelope past
// that point must Detach it first. A zero Decoder is ready to use.
type Decoder struct {
	lits []Lit
}

// reader walks a byte slice with explicit error state, so the field-by-field
// decode reads linearly.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.err = fmt.Errorf("wire: truncated varint at offset %d", r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *reader) zig() int64 {
	u := r.uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

func (r *reader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.err = fmt.Errorf("wire: truncated frame at offset %d", r.off)
		return 0
	}
	c := r.b[r.off]
	r.off++
	return c
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.err = fmt.Errorf("wire: %d-byte field overruns frame at offset %d", n, r.off)
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

// count reads a collection length and guards it against the remaining
// payload (each element costs at least perElem bytes), so corrupt or
// adversarial counts cannot force a huge allocation.
func (r *reader) count(perElem int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if int(n) < 0 || int(n)*perElem > len(r.b)-r.off {
		r.err = fmt.Errorf("wire: count %d overruns %d-byte remainder", n, len(r.b)-r.off)
		return 0
	}
	return int(n)
}

// Decode parses one binary envelope from the front of b and returns it with
// the number of bytes consumed. The envelope's Lits/Values alias the
// decoder's scratch (see the type comment).
func (d *Decoder) Decode(b []byte) (Envelope, int, error) {
	var e Envelope
	r := reader{b: b}
	code := r.byte()
	flags := r.byte()
	if r.err == nil {
		name, ok := typeNames[code]
		if !ok {
			return Envelope{}, 0, fmt.Errorf("wire: unknown binary type code %d", code)
		}
		e.Type = name
	}
	e.Insoluble = flags&flagInsoluble != 0
	e.Crc = flags&flagCrc != 0
	e.Resume = flags&flagResume != 0
	e.Causal = flags&flagCausal != 0
	e.From = int(r.zig())
	e.To = int(r.zig())
	e.Value = int(r.zig())
	e.Priority = int(r.zig())
	e.Improve = int(r.zig())
	e.Eval = int(r.zig())
	e.Seq = r.zig()
	e.Ack = r.zig()
	e.Processed = int(r.zig())
	if n := r.count(1); n > 0 {
		e.Codec = string(r.bytes(n))
	}
	d.lits = d.lits[:0]
	nl := r.count(2)
	for i := 0; i < nl; i++ {
		d.lits = append(d.lits, Lit{Var: int(r.zig()), Val: int(r.zig())})
	}
	nv := r.count(2)
	for i := 0; i < nv; i++ {
		d.lits = append(d.lits, Lit{Var: int(r.zig()), Val: int(r.zig())})
	}
	if flags&flagTSeq != 0 {
		e.TSeq = r.zig()
	}
	if r.err != nil {
		return Envelope{}, 0, r.err
	}
	if nl > 0 {
		e.Lits = d.lits[:nl:nl]
	}
	if nv > 0 {
		e.Values = d.lits[nl : nl+nv : nl+nv]
	}
	return e, r.off, nil
}
