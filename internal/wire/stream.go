// Stream framing: FrameReader and FrameWriter carry envelopes and batches
// over a byte stream in either codec, switching codecs mid-stream after the
// hello/welcome negotiation.
//
// JSON framing is one object per newline-terminated line (the pre-binary
// wire format, byte-for-byte). Binary framing is
//
//	[uvarint payload length][payload]
//	payload = [kind: 1 byte][body]
//
// with kind frameEnvelope (one envelope, body as in binary.go) or
// frameBatch (body = [uvarint nAcks] nAcks×(zig From, zig To, zig Ack)
// [uvarint nFrames] nFrames envelope bodies back-to-back).
//
// Both sides of a connection must funnel all reads through one FrameReader:
// it owns the only buffered reader, so bytes buffered before a codec switch
// are not lost. The reader expands batches transparently — Next returns the
// batch's acks as synthetic TypeAck envelopes, then its data frames in
// order — so callers never see a batch. Envelopes returned by Next may
// alias internal scratch until the next Next call; callers that keep one
// longer must Detach it.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrCorruptFrame marks a binary frame whose CRC32C trailer failed
// verification. The reader has already consumed the frame's bytes, so the
// stream stays parseable: callers drop the frame (counting it) and let the
// reliable layer's retransmission recover the payload. Match with
// errors.Is.
var ErrCorruptFrame = errors.New("wire: frame failed checksum")

// castagnoli is the CRC32C polynomial table. Castagnoli rather than IEEE
// because it is the stronger polynomial for short frames and is
// hardware-accelerated (SSE4.2 / ARMv8 CRC instructions) on every platform
// this runs on.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Binary frame kinds. Part of the wire format; do not renumber.
const (
	frameEnvelope byte = 1
	frameBatch    byte = 2
)

// maxFrameBytes bounds a single binary frame (envelope or whole batch), so
// a corrupt length prefix cannot force a huge allocation.
const maxFrameBytes = 1 << 24

const streamBufSize = 64 << 10

// FrameReader reads envelopes from a stream in either codec.
type FrameReader struct {
	r     *bufio.Reader
	codec Codec
	crc   bool
	dec   Decoder
	buf   []byte

	// Pending batch contents, drained by Next before the stream is read
	// again: ack watermarks first, then data frames (binary bodies decoded
	// lazily out of buf, or JSON envelopes already parsed).
	acks    []AckWatermark
	ackIdx  int
	body    []byte
	bframes int
	jframes []Envelope
	jIdx    int

	// BytesRead counts every wire byte consumed, including framing.
	// BatchedFrames counts envelopes (acks and data) that arrived inside
	// batch frames. CorruptFrames counts frames dropped for a failed
	// checksum (each also surfaced as an ErrCorruptFrame from Next).
	BytesRead     int64
	Frames        int64
	BatchedFrames int64
	CorruptFrames int64
}

// NewFrameReader wraps r. The reader starts in the JSON codec — the
// handshake encoding — until SetCodec switches it.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, streamBufSize), codec: CodecJSON}
}

// SetCodec switches the codec for subsequent frames. Safe mid-stream: the
// reader's single buffered reader keeps bytes that arrived before the
// switch.
func (f *FrameReader) SetCodec(c Codec) { f.codec = c }

// EnableChecksum arms CRC32C verification for subsequent binary frames:
// each frame's payload must carry the 4-byte little-endian trailer the
// peer's FrameWriter appends after the matching negotiation. The trailer is
// a binary-framing extension; the JSON codec has no slot for it, which is
// why the handshake only negotiates checksums onto binary connections.
func (f *FrameReader) EnableChecksum() { f.crc = true }

// Next returns the next envelope, expanding batches transparently. The
// returned envelope's slices may alias reader scratch until the next call;
// Detach to keep it longer. Returns io.EOF at a clean end of stream.
func (f *FrameReader) Next() (Envelope, error) {
	for {
		if f.ackIdx < len(f.acks) {
			a := f.acks[f.ackIdx]
			f.ackIdx++
			f.Frames++
			f.BatchedFrames++
			return a.Envelope(), nil
		}
		if f.bframes > 0 {
			e, n, err := f.dec.Decode(f.body)
			if err != nil {
				return Envelope{}, err
			}
			f.body = f.body[n:]
			f.bframes--
			if f.bframes == 0 && len(f.body) != 0 {
				return Envelope{}, fmt.Errorf("wire: %d trailing bytes after batch frames", len(f.body))
			}
			f.Frames++
			f.BatchedFrames++
			return e, nil
		}
		if f.jIdx < len(f.jframes) {
			e := f.jframes[f.jIdx]
			f.jIdx++
			f.Frames++
			f.BatchedFrames++
			return e, nil
		}
		var (
			e    Envelope
			more bool
			err  error
		)
		if f.codec == CodecJSON {
			e, more, err = f.nextJSON()
		} else {
			e, more, err = f.nextBinary()
		}
		if err != nil {
			return Envelope{}, err
		}
		if more {
			continue // a batch was unpacked into the pending state
		}
		f.Frames++
		return e, nil
	}
}

// nextJSON reads one JSON line; more=true means it was a batch and the
// pending state was loaded instead.
func (f *FrameReader) nextJSON() (Envelope, bool, error) {
	line, err := f.readLine()
	if err != nil {
		return Envelope{}, false, err
	}
	e, err := Unmarshal(line)
	if err != nil {
		return Envelope{}, false, err
	}
	if e.Type != TypeBatch {
		return e, false, nil
	}
	var b Batch
	if err := json.Unmarshal(line, &b); err != nil {
		return Envelope{}, false, fmt.Errorf("wire: bad batch: %w", err)
	}
	f.acks, f.ackIdx = b.Acks, 0
	f.jframes, f.jIdx = b.Frames, 0
	return Envelope{}, true, nil
}

// readLine reads one newline-terminated line into the reusable buffer,
// handling lines longer than the bufio buffer.
func (f *FrameReader) readLine() ([]byte, error) {
	f.buf = f.buf[:0]
	for {
		chunk, err := f.r.ReadSlice('\n')
		f.buf = append(f.buf, chunk...)
		f.BytesRead += int64(len(chunk))
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			if err == io.EOF && len(f.buf) > 0 {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		return f.buf, nil
	}
}

func (f *FrameReader) nextBinary() (Envelope, bool, error) {
	n, err := f.readUvarint()
	if err != nil {
		return Envelope{}, false, err
	}
	if n == 0 || n > maxFrameBytes {
		return Envelope{}, false, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if uint64(cap(f.buf)) < n {
		f.buf = make([]byte, n)
	}
	f.buf = f.buf[:n]
	if _, err := io.ReadFull(f.r, f.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Envelope{}, false, err
	}
	f.BytesRead += int64(n)
	payload := f.buf
	if f.crc {
		// The frame's bytes are fully consumed before verification, so a
		// corrupt frame costs exactly one frame: the stream stays framed and
		// the next read starts at the next length prefix.
		if n < 5 {
			f.CorruptFrames++
			return Envelope{}, false, fmt.Errorf("%w: %d-byte frame shorter than its trailer", ErrCorruptFrame, n)
		}
		body, trailer := payload[:n-4], payload[n-4:]
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer) {
			f.CorruptFrames++
			return Envelope{}, false, fmt.Errorf("%w: %d-byte frame", ErrCorruptFrame, n)
		}
		payload = body
	}
	kind, body := payload[0], payload[1:]
	switch kind {
	case frameEnvelope:
		e, used, err := f.dec.Decode(body)
		if err != nil {
			return Envelope{}, false, err
		}
		if used != len(body) {
			return Envelope{}, false, fmt.Errorf("wire: %d trailing bytes after envelope", len(body)-used)
		}
		return e, false, nil
	case frameBatch:
		r := reader{b: body}
		f.acks = f.acks[:0]
		f.ackIdx = 0
		na := r.count(3)
		for i := 0; i < na; i++ {
			f.acks = append(f.acks, AckWatermark{From: int(r.zig()), To: int(r.zig()), Ack: r.zig()})
		}
		nf := r.count(1)
		if r.err != nil {
			return Envelope{}, false, r.err
		}
		f.body = body[r.off:]
		f.bframes = nf
		if nf == 0 && len(f.body) != 0 {
			return Envelope{}, false, fmt.Errorf("wire: %d trailing bytes after empty batch", len(f.body))
		}
		return Envelope{}, true, nil
	default:
		return Envelope{}, false, fmt.Errorf("wire: unknown frame kind %d", kind)
	}
}

// readUvarint reads a length prefix byte-by-byte so BytesRead stays exact.
func (f *FrameReader) readUvarint() (uint64, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := f.r.ReadByte()
		if err != nil {
			if i > 0 && err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		f.BytesRead++
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				break
			}
			return x | uint64(b)<<s, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, fmt.Errorf("wire: frame length varint overflows")
}

// FrameWriter writes envelopes to a stream in either codec, optionally
// coalescing them into batches. It is not safe for concurrent use; netrun
// gives each connection one writer goroutine.
type FrameWriter struct {
	w      *bufio.Writer
	codec  Codec
	crc    bool
	causal bool
	batch  bool

	maxFrames int
	maxBytes  int

	acks    []AckWatermark
	pframes int
	fbuf    []byte // encoded pending data frames (binary bodies, or JSON objects joined by commas)
	buf     []byte // per-write scratch
	// lenb is the length-prefix scratch. A field rather than a local so the
	// slice handed to the io.Writer interface never escapes to the heap —
	// a stack array here costs one allocation per frame.
	lenb [binary.MaxVarintLen64]byte

	// BytesWritten counts every wire byte produced, including framing.
	// FramesWritten counts envelopes submitted (coalesced-away acks
	// included). BatchedFrames counts envelopes and watermarks that left
	// inside batch frames; Batches counts the batch frames themselves.
	BytesWritten  int64
	FramesWritten int64
	BatchedFrames int64
	Batches       int64
}

// NewFrameWriter wraps w. The writer starts in the JSON codec — the
// handshake encoding — with batching off.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: bufio.NewWriterSize(w, streamBufSize), codec: CodecJSON}
}

// SetCodec switches the codec for subsequent frames, flushing any pending
// batch in the old codec first.
func (f *FrameWriter) SetCodec(c Codec) error {
	if err := f.flushBatch(); err != nil {
		return err
	}
	f.codec = c
	return nil
}

// EnableChecksum arms the CRC32C trailer on subsequent binary frames: each
// length-prefixed frame carries crc32c(payload) as 4 little-endian bytes
// inside the prefixed length. Call only after negotiating it with the peer
// (hello/welcome Crc) on a binary connection.
func (f *FrameWriter) EnableChecksum() { f.crc = true }

// EnableCausal lets subsequent frames carry the causal trace-ID field
// (Envelope.TSeq). Until called, Send strips TSeq: a peer that did not
// negotiate causal tracing (hello/welcome Causal) never sees the extended
// binary layout, so mixed fleets of traced and untraced processes
// interoperate — untraced links just lose the IDs.
func (f *FrameWriter) EnableCausal() { f.causal = true }

// EnableBatching turns on frame coalescing: pending frames are flushed as
// one batch once maxFrames envelopes or maxBytes encoded bytes accumulate,
// or on the next Flush (the caller's deadline bound).
func (f *FrameWriter) EnableBatching(maxFrames, maxBytes int) {
	f.batch = true
	f.maxFrames = maxFrames
	f.maxBytes = maxBytes
}

// Send submits one envelope. With batching off it writes through
// immediately; with batching on it joins the pending batch (acks coalesce
// to their link's watermark) and may trigger a size-bounded flush. Bytes
// reach the socket no later than the next Flush.
func (f *FrameWriter) Send(e *Envelope) error {
	f.FramesWritten++
	if e.TSeq != 0 && !f.causal {
		// The peer did not negotiate causal tracing; drop the trace ID
		// rather than send a layout it cannot parse. Copy so the caller's
		// envelope (which may be queued for retransmission to a traced
		// peer) keeps its ID.
		clone := *e
		clone.TSeq = 0
		e = &clone
	}
	if !f.batch {
		return f.writeFrame(e)
	}
	if e.Type == TypeAck {
		for i := range f.acks {
			if f.acks[i].From == e.From && f.acks[i].To == e.To {
				if e.Ack > f.acks[i].Ack {
					f.acks[i].Ack = e.Ack
				}
				return nil
			}
		}
		f.acks = append(f.acks, AckWatermark{From: e.From, To: e.To, Ack: e.Ack})
		return f.maybeFlushBatch()
	}
	var err error
	if f.codec == CodecBinary {
		f.fbuf, err = e.appendBinary(f.fbuf)
		if err != nil {
			return err
		}
	} else {
		if f.pframes > 0 {
			f.fbuf = append(f.fbuf, ',')
		}
		f.fbuf = e.appendJSON(f.fbuf)
	}
	f.pframes++
	return f.maybeFlushBatch()
}

func (f *FrameWriter) maybeFlushBatch() error {
	if f.pframes+len(f.acks) >= f.maxFrames || len(f.fbuf) >= f.maxBytes {
		return f.flushBatch()
	}
	return nil
}

// writeFrame writes one unbatched envelope, flushing any pending batch
// first so frames are never reordered across it.
func (f *FrameWriter) writeFrame(e *Envelope) error {
	if err := f.flushBatch(); err != nil {
		return err
	}
	if f.codec == CodecJSON {
		f.buf = e.appendJSON(f.buf[:0])
		f.buf = append(f.buf, '\n')
		n, err := f.w.Write(f.buf)
		f.BytesWritten += int64(n)
		return err
	}
	f.buf = append(f.buf[:0], frameEnvelope)
	var err error
	f.buf, err = e.appendBinary(f.buf)
	if err != nil {
		return err
	}
	return f.writeFramed()
}

// writeFramed writes the scratch buffer f.buf as one binary frame with its
// uvarint length prefix, appending the CRC32C trailer first when checksums
// are armed. The trailer grows through f.buf so its capacity persists
// across calls and the steady state stays allocation-free.
func (f *FrameWriter) writeFramed() error {
	if f.crc {
		f.buf = binary.LittleEndian.AppendUint32(f.buf, crc32.Checksum(f.buf, castagnoli))
	}
	payload := f.buf
	n := binary.PutUvarint(f.lenb[:], uint64(len(payload)))
	m, err := f.w.Write(f.lenb[:n])
	f.BytesWritten += int64(m)
	if err != nil {
		return err
	}
	m, err = f.w.Write(payload)
	f.BytesWritten += int64(m)
	return err
}

// WriteCorrupted writes e as a standalone checksummed binary frame with one
// payload bit deliberately flipped after the trailer was computed, so the
// receiver's CRC check must reject it. It exists for the fault injector's
// corrupt fault: the frame is framed correctly (the stream stays
// parseable), only its payload lies. Any pending batch is flushed first so
// no healthy frame shares the poisoned write.
func (f *FrameWriter) WriteCorrupted(e *Envelope) error {
	if f.codec != CodecBinary || !f.crc {
		return fmt.Errorf("wire: WriteCorrupted needs a checksummed binary connection")
	}
	if err := f.flushBatch(); err != nil {
		return err
	}
	f.FramesWritten++
	f.buf = append(f.buf[:0], frameEnvelope)
	var err error
	f.buf, err = e.appendBinary(f.buf)
	if err != nil {
		return err
	}
	payload := binary.LittleEndian.AppendUint32(f.buf, crc32.Checksum(f.buf, castagnoli))
	payload[len(payload)-5] ^= 0x40 // flip a bit in the last payload byte, not the trailer
	n := binary.PutUvarint(f.lenb[:], uint64(len(payload)))
	m, werr := f.w.Write(f.lenb[:n])
	f.BytesWritten += int64(m)
	if werr != nil {
		return werr
	}
	m, werr = f.w.Write(payload)
	f.BytesWritten += int64(m)
	return werr
}

// flushBatch writes the pending batch, if any, as one frame.
func (f *FrameWriter) flushBatch() error {
	if !f.batch || (len(f.acks) == 0 && f.pframes == 0) {
		return nil
	}
	f.Batches++
	f.BatchedFrames += int64(f.pframes + len(f.acks))
	var err error
	if f.codec == CodecBinary {
		f.buf = append(f.buf[:0], frameBatch)
		f.buf = binary.AppendUvarint(f.buf, uint64(len(f.acks)))
		for _, a := range f.acks {
			f.buf = appendZig(f.buf, int64(a.From))
			f.buf = appendZig(f.buf, int64(a.To))
			f.buf = appendZig(f.buf, a.Ack)
		}
		f.buf = binary.AppendUvarint(f.buf, uint64(f.pframes))
		f.buf = append(f.buf, f.fbuf...)
		err = f.writeFramed()
	} else {
		f.buf = append(f.buf[:0], `{"type":"wire.batch"`...)
		if len(f.acks) > 0 {
			f.buf = append(f.buf, `,"acks":[`...)
			for i, a := range f.acks {
				if i > 0 {
					f.buf = append(f.buf, ',')
				}
				f.buf = append(f.buf, `{"from":`...)
				f.buf = appendInt(f.buf, int64(a.From))
				f.buf = append(f.buf, `,"to":`...)
				f.buf = appendInt(f.buf, int64(a.To))
				f.buf = append(f.buf, `,"ack":`...)
				f.buf = appendInt(f.buf, a.Ack)
				f.buf = append(f.buf, '}')
			}
			f.buf = append(f.buf, ']')
		}
		if f.pframes > 0 {
			f.buf = append(f.buf, `,"frames":[`...)
			f.buf = append(f.buf, f.fbuf...)
			f.buf = append(f.buf, ']')
		}
		f.buf = append(f.buf, '}', '\n')
		var n int
		n, err = f.w.Write(f.buf)
		f.BytesWritten += int64(n)
	}
	f.acks = f.acks[:0]
	f.fbuf = f.fbuf[:0]
	f.pframes = 0
	return err
}

// Flush writes any pending batch and flushes the buffered writer to the
// socket. Callers flush whenever their send queue drains, which is the
// batching deadline bound.
func (f *FrameWriter) Flush() error {
	if err := f.flushBatch(); err != nil {
		return err
	}
	return f.w.Flush()
}

// Pending reports whether any bytes or batched frames are waiting for a
// Flush.
func (f *FrameWriter) Pending() bool {
	return f.pframes > 0 || len(f.acks) > 0 || f.w.Buffered() > 0
}
