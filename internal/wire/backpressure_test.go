package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// Backpressure error paths at the seams the plain cap tests don't cross:
// the buffer caps firing while frames sit in an unflushed batch, and one
// shard's full link erroring without disturbing its neighbors. The
// invariant under test throughout: a failed Stamp consumes no sequence
// number, so the stream the receiver reassembles stays gapless.

// drain reads every frame out of sock in the binary codec.
func drain(t *testing.T, sock *bytes.Buffer) []Envelope {
	t.Helper()
	fr := NewFrameReader(sock)
	fr.SetCodec(CodecBinary)
	var out []Envelope
	for {
		e, err := fr.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return out
			}
			t.Fatalf("Next: %v", err)
		}
		e.Detach()
		out = append(out, e)
	}
}

// TestSendCapUnderBatching hits the unacked cap while earlier stamped
// frames are still coalescing in an unflushed batch. The failed Stamp must
// consume no seq and must not disturb the pending batch; after an ack the
// stream resumes exactly where it left off, and the receiver releases a
// gapless sequence.
func TestSendCapUnderBatching(t *testing.T) {
	sl := NewSendLink(time.Millisecond, 8*time.Millisecond)
	sl.SetLimit(3)
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	if err := fw.SetCodec(CodecBinary); err != nil {
		t.Fatal(err)
	}
	fw.EnableBatching(64, 1<<20) // large bounds: nothing auto-flushes

	for i := 0; i < 3; i++ {
		e := mustStamp(t, sl, Envelope{Type: TypeCoreOk, From: 0, To: 1, Value: i}, t0)
		if err := fw.Send(&e); err != nil {
			t.Fatal(err)
		}
	}
	if !fw.Pending() {
		t.Fatal("batch flushed early; test needs frames in flight")
	}

	if _, err := sl.Stamp(Envelope{Type: TypeCoreOk, From: 0, To: 1, Value: 99}, t0); !errors.Is(err, ErrSendBufferFull) {
		t.Fatalf("over-cap stamp: err = %v, want ErrSendBufferFull", err)
	}
	if sl.Pending() != 3 {
		t.Fatalf("failed stamp changed pending: %d", sl.Pending())
	}

	// The ack releases capacity; the next stamp must get seq 4 — the
	// failed attempt burned nothing even with a batch open.
	sl.Ack(1, t0)
	e := mustStamp(t, sl, Envelope{Type: TypeCoreOk, From: 0, To: 1, Value: 3}, t0)
	if e.Seq != 4 {
		t.Fatalf("post-ack seq = %d, want 4", e.Seq)
	}
	if err := fw.Send(&e); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if fw.Batches != 1 || fw.BatchedFrames != 4 {
		t.Fatalf("batch counters = %d/%d, want 1 batch of 4", fw.Batches, fw.BatchedFrames)
	}

	rl := NewRecvLink()
	var released []int64
	for _, e := range drain(t, &sock) {
		got, dup, err := rl.Accept(e)
		if err != nil || dup {
			t.Fatalf("Accept(seq %d): dup=%v err=%v", e.Seq, dup, err)
		}
		for _, d := range got {
			released = append(released, d.Seq)
		}
	}
	for i, seq := range released {
		if seq != int64(i+1) {
			t.Fatalf("released seqs %v: gap or reorder at %d", released, i)
		}
	}
	if len(released) != 4 || rl.CumAck() != 4 {
		t.Fatalf("released %d frames, cumack %d, want 4/4", len(released), rl.CumAck())
	}
}

// TestReorderCapUnderBatchedDelivery loses the head of a batched burst so
// every following frame is out of order. The receiver buffers up to its
// cap, rejects the overflow with ErrReorderBufferFull without advancing
// the frontier, and recovers losslessly once retransmission fills the gap:
// the overflow frame is simply retransmitted too, like any unacked frame.
func TestReorderCapUnderBatchedDelivery(t *testing.T) {
	sl := NewSendLink(time.Millisecond, 8*time.Millisecond)
	var sock bytes.Buffer
	fw := NewFrameWriter(&sock)
	if err := fw.SetCodec(CodecBinary); err != nil {
		t.Fatal(err)
	}
	fw.EnableBatching(8, 1<<20)

	var stamped []Envelope
	for i := 0; i < 5; i++ {
		stamped = append(stamped, mustStamp(t, sl, Envelope{Type: TypeCoreOk, From: 0, To: 1, Value: i}, t0))
	}
	// Transmit the batch minus its head: seq 1 is lost on the wire.
	for _, e := range stamped[1:] {
		if err := fw.Send(&e); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}

	rl := NewRecvLink()
	rl.SetLimit(3)
	arrived := drain(t, &sock)
	var overflow []Envelope
	for _, e := range arrived {
		got, dup, err := rl.Accept(e)
		if err != nil {
			if !errors.Is(err, ErrReorderBufferFull) {
				t.Fatalf("Accept(seq %d): %v", e.Seq, err)
			}
			overflow = append(overflow, e)
			continue
		}
		if dup || len(got) != 0 {
			t.Fatalf("Accept(seq %d) with seq 1 missing: released %d, dup=%v", e.Seq, len(got), dup)
		}
	}
	if len(overflow) != 1 || overflow[0].Seq != 5 {
		t.Fatalf("overflow = %+v, want exactly seq 5", overflow)
	}
	if rl.Buffered() != 3 || rl.CumAck() != 0 {
		t.Fatalf("buffered %d cumack %d after overflow, want 3/0", rl.Buffered(), rl.CumAck())
	}

	// Nothing was acked, so retransmission re-offers the whole window —
	// the gap filler and the overflowed frame alike.
	due := sl.Due(t0.Add(10 * time.Millisecond))
	if len(due) != 5 {
		t.Fatalf("retransmit window = %d frames, want 5", len(due))
	}
	var released []int64
	dups := 0
	for _, e := range due {
		got, dup, err := rl.Accept(e)
		if err != nil {
			t.Fatalf("Accept(retransmit seq %d): %v", e.Seq, err)
		}
		if dup {
			dups++
		}
		for _, d := range got {
			released = append(released, d.Seq)
		}
	}
	for i, seq := range released {
		if seq != int64(i+1) {
			t.Fatalf("released seqs %v: gap or reorder at %d", released, i)
		}
	}
	if len(released) != 5 || rl.CumAck() != 5 || rl.Buffered() != 0 {
		t.Fatalf("after recovery: released %d cumack %d buffered %d, want 5/5/0", len(released), rl.CumAck(), rl.Buffered())
	}
	if dups != 3 {
		t.Fatalf("dedup suppressed %d retransmits, want the 3 already buffered", dups)
	}
}

// TestShardBoundaryBackpressureIsolation runs two directed links side by
// side, one per shard, each with its own batching writer — the layout the
// sharded hub gives a node whose peers hash to different relays. Filling
// shard 0 to its cap must error on that link only: shard 1 keeps stamping,
// and shard 0's own seq stream continues contiguously once acked, proving
// the failed stamps consumed nothing on either link.
func TestShardBoundaryBackpressureIsolation(t *testing.T) {
	const nShards = 2
	links := [nShards]*SendLink{}
	socks := [nShards]*bytes.Buffer{}
	writers := [nShards]*FrameWriter{}
	for s := range links {
		links[s] = NewSendLink(time.Millisecond, 8*time.Millisecond)
		links[s].SetLimit(2)
		socks[s] = &bytes.Buffer{}
		writers[s] = NewFrameWriter(socks[s])
		if err := writers[s].SetCodec(CodecBinary); err != nil {
			t.Fatal(err)
		}
		writers[s].EnableBatching(8, 1<<20)
	}
	// Destination nodes 0..3 shard by parity, as shardOf does in netrun.
	send := func(to int) (Envelope, error) {
		s := to % nShards
		e, err := links[s].Stamp(Envelope{Type: TypeCoreOk, From: 9, To: to}, t0)
		if err != nil {
			return Envelope{}, err
		}
		return e, writers[s].Send(&e)
	}

	// Fill shard 0 (nodes 0 and 2) to its cap, then overflow it twice.
	for _, to := range []int{0, 2} {
		if _, err := send(to); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := send(0); !errors.Is(err, ErrSendBufferFull) {
			t.Fatalf("overflow %d on shard 0: err = %v, want ErrSendBufferFull", i, err)
		}
	}

	// Shard 1 is an independent link: its stream starts at 1 and keeps
	// flowing while its neighbor is wedged.
	for i := 1; i <= 2; i++ {
		e, err := send(1)
		if err != nil {
			t.Fatalf("shard 1 send %d: %v", i, err)
		}
		if e.Seq != int64(i) {
			t.Fatalf("shard 1 seq = %d, want %d", e.Seq, i)
		}
	}
	if links[0].Pending() != 2 || links[1].Pending() != 2 {
		t.Fatalf("pending = %d/%d, want 2/2", links[0].Pending(), links[1].Pending())
	}

	// Ack shard 0 and resume: the two failed stamps left no hole, so the
	// next frame is seq 3 on that link.
	links[0].Ack(2, t0)
	e, err := send(2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 3 {
		t.Fatalf("shard 0 post-ack seq = %d, want 3", e.Seq)
	}

	// Each shard's receiver reassembles its own gapless stream.
	for s := range links {
		if err := writers[s].Flush(); err != nil {
			t.Fatal(err)
		}
		rl := NewRecvLink()
		for _, e := range drain(t, socks[s]) {
			if _, dup, err := rl.Accept(e); err != nil || dup {
				t.Fatalf("shard %d Accept(seq %d): dup=%v err=%v", s, e.Seq, dup, err)
			}
		}
		want := int64(3 - s) // shard 0 sent 3 frames, shard 1 sent 2
		if rl.CumAck() != want {
			t.Fatalf("shard %d cumack = %d, want %d", s, rl.CumAck(), want)
		}
	}
}
