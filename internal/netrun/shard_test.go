package netrun

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/wire"
)

// ringProblem builds an even-length not-equal ring with an alternating
// (consistent) initial assignment. The instance is already solved, so no
// agent ever changes value: the run's unique-message count is exactly the
// init fan-out, making Messages and the final assignment deterministic
// across codecs, shard counts, and batching — the metric-identity fixture.
func ringProblem(t *testing.T, n int) (*csp.Problem, csp.SliceAssignment) {
	t.Helper()
	if n%2 != 0 {
		t.Fatalf("ring length %d must be even", n)
	}
	p := csp.NewProblemUniform(n, 2)
	init := make(csp.SliceAssignment, n)
	for i := 0; i < n; i++ {
		if err := p.AddNotEqual(csp.Var(i), csp.Var((i+1)%n)); err != nil {
			t.Fatal(err)
		}
		init[i] = csp.Value(i % 2)
	}
	return p, init
}

func awcMaker(p *csp.Problem, init csp.SliceAssignment) func(csp.Var) sim.Agent {
	return func(v csp.Var) sim.Agent {
		return core.NewAgent(v, p, init[v], core.Learning{Kind: core.LearnResolvent})
	}
}

// matrixConfig is one (codec, shards) cell of the equivalence matrix.
type matrixConfig struct {
	name   string
	codec  wire.Codec
	shards int
}

func codecShardMatrix() []matrixConfig {
	var out []matrixConfig
	for _, c := range []struct {
		name  string
		codec wire.Codec
	}{{"binary", wire.CodecBinary}, {"json", wire.CodecJSON}} {
		for _, s := range []int{1, 2, 4} {
			out = append(out, matrixConfig{
				name:   fmt.Sprintf("%s/shards=%d", c.name, s),
				codec:  c.codec,
				shards: s,
			})
		}
	}
	return out
}

// TestShardCodecMatrixConsistentStart runs the deterministic ring fixture
// across {binary, json} x {1, 2, 4 shards} and demands metric-identical
// results: same verdict, same assignment, same unique-message count. The
// Messages equality at 4 shards is the no-double-count assertion for
// inter-shard forwarding — a forwarded frame counted on both its arrival
// and destination shard would inflate Messages (or the hub's per-link
// retransmit counters) relative to the single-shard baseline.
func TestShardCodecMatrixConsistentStart(t *testing.T) {
	const n = 12
	p, init := ringProblem(t, n)
	var baseMessages int64 = -1
	var baseAssign csp.SliceAssignment
	for _, cfg := range codecShardMatrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			res, err := Run(p, awcMaker(p, init), Options{
				Timeout: 30 * time.Second,
				Codec:   cfg.codec,
				Shards:  cfg.shards,
			})
			if err != nil {
				t.Fatalf("run: %v (res=%+v)", err, res)
			}
			if !res.Solved {
				t.Fatalf("consistent ring not solved: %+v", res)
			}
			if !p.IsSolution(res.Assignment) {
				t.Fatalf("snapshot is not a solution: %v", res.Assignment)
			}
			if res.Messages == 0 {
				t.Fatal("no messages routed")
			}
			if baseMessages < 0 {
				baseMessages = res.Messages
				baseAssign = res.Assignment
			} else {
				if res.Messages != baseMessages {
					t.Errorf("Messages = %d, want %d (codec/shard choice changed the count)",
						res.Messages, baseMessages)
				}
				for i := range baseAssign {
					if res.Assignment[i] != baseAssign[i] {
						t.Errorf("assignment[%d] = %d, want %d", i, res.Assignment[i], baseAssign[i])
						break
					}
				}
			}
			wantBinary := int64(0)
			if cfg.codec == wire.CodecBinary {
				wantBinary = n
			}
			if res.BinaryConns != wantBinary {
				t.Errorf("BinaryConns = %d, want %d", res.BinaryConns, wantBinary)
			}
			if res.BytesSent == 0 || res.BytesRecv == 0 {
				t.Errorf("byte counters not populated: sent=%d recv=%d", res.BytesSent, res.BytesRecv)
			}
			// Batching is codec-independent: both wire formats coalesce.
			if res.BatchedFrames == 0 {
				t.Errorf("no frames batched with batching enabled")
			}
			if res.Restarts != 0 || res.Partitioned != 0 {
				t.Errorf("clean run reported faults: %+v", res)
			}
		})
	}
}

// TestShardTelemetryEvents attaches a telemetry stream to a 4-shard run and
// checks the per-shard relay events: one per shard, with inter-shard
// forwarding observed (a 12-ring has cross-shard edges at every other hop)
// and the frame/byte totals populated.
func TestShardTelemetryEvents(t *testing.T) {
	p, init := ringProblem(t, 12)
	var buf bytes.Buffer
	tel := telemetry.NewRun(telemetry.NewRegistry(), &buf)
	res, err := Run(p, awcMaker(p, init), Options{
		Timeout:   30 * time.Second,
		Shards:    4,
		Telemetry: tel,
	})
	if err != nil || !res.Solved {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if err := tel.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var shards []telemetry.Event
	for _, ev := range events {
		if ev.Kind == telemetry.KindShard {
			shards = append(shards, ev)
		}
	}
	if len(shards) != 4 {
		t.Fatalf("shard events = %d, want 4", len(shards))
	}
	var framesIn, forwarded, bytesIn, bytesOut int64
	for i, ev := range shards {
		if ev.Shard != i {
			t.Errorf("shard event %d has Shard=%d", i, ev.Shard)
		}
		framesIn += ev.FramesIn
		forwarded += ev.Forwarded
		bytesIn += ev.BytesIn
		bytesOut += ev.BytesOut
	}
	if framesIn == 0 || bytesIn == 0 || bytesOut == 0 {
		t.Errorf("shard totals not populated: frames=%d in=%d out=%d", framesIn, bytesIn, bytesOut)
	}
	if forwarded == 0 {
		t.Errorf("no inter-shard forwards observed on a 4-shard ring")
	}
}

// TestShardCodecMatrixChaosRing replays the ring fixture under the
// drop+duplicate schedule (no delay: injected delay reorders step batches,
// which legitimately perturbs check grouping). The fault schedule is keyed
// on logical (from, to, seq, attempt), so it is invariant under sharding
// and codec choice — Messages counts unique (link, seq) before the drop
// decision and must stay identical across the matrix.
func TestShardCodecMatrixChaosRing(t *testing.T) {
	p, init := ringProblem(t, 12)
	fcfg := &faults.Config{Seed: 9, Drop: 0.3, Duplicate: 0.3}
	var baseMessages int64 = -1
	for _, cfg := range codecShardMatrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			res, err := Run(p, awcMaker(p, init), Options{
				Timeout: 30 * time.Second,
				Codec:   cfg.codec,
				Shards:  cfg.shards,
				Faults:  fcfg,
			})
			if err != nil {
				t.Fatalf("run: %v (res=%+v)", err, res)
			}
			if !res.Solved {
				t.Fatalf("ring under chaos not solved: %+v", res)
			}
			if baseMessages < 0 {
				baseMessages = res.Messages
			} else if res.Messages != baseMessages {
				t.Errorf("Messages = %d, want %d (chaos schedule not shard/codec-invariant)",
					res.Messages, baseMessages)
			}
		})
	}
}

// TestShardCodecMatrixChaosColoring runs the PR-3 chaos profile (drop,
// duplicate, and delay) on a real search instance across the matrix. Delay
// injection perturbs step batching, so message counts legitimately differ;
// the invariant is the verdict and solution validity in every cell.
func TestShardCodecMatrixChaosColoring(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 71)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 72)
	fcfg := &faults.Config{Seed: 4, Drop: 0.1, Duplicate: 0.3, MaxDelay: 2 * time.Millisecond}
	for _, cfg := range codecShardMatrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			res, err := Run(inst.Problem, awcMaker(inst.Problem, init), Options{
				Timeout: 30 * time.Second,
				Codec:   cfg.codec,
				Shards:  cfg.shards,
				Faults:  fcfg,
			})
			if err != nil {
				t.Fatalf("run: %v (res=%+v)", err, res)
			}
			if !res.Solved || !inst.Problem.IsSolution(res.Assignment) {
				t.Fatalf("chaos coloring not solved: %+v", res)
			}
		})
	}
}

// TestShardCodecMatrixPartitionWindow runs a PR-4 partition window (a cut
// over the first 150ms that then heals) across codecs and shard counts. The
// cut is seeded on agent ids, so which frames it intercepts is independent
// of the socket plane; every cell must solve after the heal and observe the
// window.
func TestShardCodecMatrixPartitionWindow(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 71)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 72)
	fcfg := &faults.Config{Seed: 11, Partitions: []faults.Partition{
		{At: 0, Dur: 150 * time.Millisecond},
	}}
	for _, cfg := range []matrixConfig{
		{"binary/shards=1", wire.CodecBinary, 1},
		{"binary/shards=4", wire.CodecBinary, 4},
		{"json/shards=4", wire.CodecJSON, 4},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			res, err := Run(inst.Problem, awcMaker(inst.Problem, init), Options{
				Timeout: 30 * time.Second,
				Codec:   cfg.codec,
				Shards:  cfg.shards,
				Faults:  fcfg,
			})
			if err != nil {
				t.Fatalf("run: %v (res=%+v)", err, res)
			}
			if !res.Solved || !inst.Problem.IsSolution(res.Assignment) {
				t.Fatalf("partitioned coloring not solved: %+v", res)
			}
			if res.Partitioned == 0 {
				t.Errorf("partition window intercepted no frames")
			}
			if res.PartitionHeals != 1 {
				t.Errorf("PartitionHeals = %d, want 1", res.PartitionHeals)
			}
		})
	}
}

// TestShardCodecMatrixCrashRestart replays the PR-3 crash-restart profile
// across the matrix: agent 2 dies before its first step and rejoins from
// its checkpoint, on every codec and shard count.
func TestShardCodecMatrixCrashRestart(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 73)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 74)
	fcfg := &faults.Config{Seed: 5, Crashes: []faults.Crash{
		{Agent: 2, AfterSteps: 0, Restart: true},
	}}
	for _, cfg := range []matrixConfig{
		{"binary/shards=1", wire.CodecBinary, 1},
		{"binary/shards=4", wire.CodecBinary, 4},
		{"json/shards=4", wire.CodecJSON, 4},
	} {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			res, err := Run(inst.Problem, awcMaker(inst.Problem, init), Options{
				Timeout: 30 * time.Second,
				Codec:   cfg.codec,
				Shards:  cfg.shards,
				Faults:  fcfg,
			})
			if err != nil {
				t.Fatalf("run: %v (res=%+v)", err, res)
			}
			if !res.Solved || !inst.Problem.IsSolution(res.Assignment) {
				t.Fatalf("crash-restart coloring not solved: %+v", res)
			}
			// The crash schedule is deterministic, but whether the restart
			// beats termination is not: a sharded run may solve before the
			// crashed node rejoins. Pin the exact count only on the
			// single-shard baseline (which TestNetrunCrashRestartAWC already
			// holds stable); elsewhere the verdict is the invariant.
			if cfg.shards == 1 && res.Restarts != 1 {
				t.Errorf("Restarts = %d, want 1", res.Restarts)
			}
			if res.Restarts > 1 {
				t.Errorf("Restarts = %d, want at most 1", res.Restarts)
			}
		})
	}
}

// TestCodecNegotiationFallback pins the negotiation contract: a JSON hub
// forces every connection to the fallback even when nodes request binary
// (the hub-side half), and the default run negotiates binary everywhere.
func TestCodecNegotiationFallback(t *testing.T) {
	p, init := ringProblem(t, 6)
	// Hub offers JSON; in-process nodes inherit the option and the welcome
	// decides — every connection must land on the fallback.
	res, err := Run(p, awcMaker(p, init), Options{
		Timeout: 30 * time.Second,
		Codec:   wire.CodecJSON,
	})
	if err != nil || !res.Solved {
		t.Fatalf("json run: %v (res=%+v)", err, res)
	}
	if res.BinaryConns != 0 {
		t.Errorf("json hub negotiated %d binary conns, want 0", res.BinaryConns)
	}
	res, err = Run(p, awcMaker(p, init), Options{Timeout: 30 * time.Second})
	if err != nil || !res.Solved {
		t.Fatalf("default run: %v (res=%+v)", err, res)
	}
	if res.BinaryConns != 6 {
		t.Errorf("default run negotiated %d binary conns, want 6", res.BinaryConns)
	}
}

// TestExternalWorkersSharded runs the hub with External nodes: two worker
// "processes" (goroutine stand-ins for cmd/dcspnode) split the variables by
// parity — which is exactly the shard assignment, so worker A talks only to
// relay 0 and worker B only to relay 1. Worker B requests the JSON codec
// against the binary hub, exercising mixed-codec negotiation: per-connection
// fallback, binary everywhere else.
func TestExternalWorkersSharded(t *testing.T) {
	inst, err := gen.Coloring(10, 20, 3, 81)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 82)
	maker := awcMaker(inst.Problem, init)

	var evens, odds []int
	for v := 0; v < 10; v++ {
		if v%2 == 0 {
			evens = append(evens, v)
		} else {
			odds = append(odds, v)
		}
	}
	addrsCh := make(chan []string, 1)
	var wg sync.WaitGroup
	workerErrs := make(chan error, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		addrs := <-addrsCh
		var inner sync.WaitGroup
		for _, w := range []struct {
			vars  []int
			codec wire.Codec
		}{{evens, wire.CodecBinary}, {odds, wire.CodecJSON}} {
			inner.Add(1)
			go func(vars []int, codec wire.Codec) {
				defer inner.Done()
				if _, err := RunWorker(inst.Problem, maker, WorkerOptions{
					Addrs: addrs,
					Vars:  vars,
					Codec: codec,
					// A non-default drain window must plumb through without
					// changing a clean run.
					DrainWindow: 250 * time.Millisecond,
				}); err != nil {
					workerErrs <- err
				}
			}(w.vars, w.codec)
		}
		inner.Wait()
	}()

	res, err := Run(inst.Problem, maker, Options{
		Timeout:  30 * time.Second,
		Shards:   2,
		External: true,
		OnListen: func(addrs []string) { addrsCh <- addrs },
	})
	wg.Wait()
	close(workerErrs)
	for werr := range workerErrs {
		t.Errorf("worker: %v", werr)
	}
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved || !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("external run not solved: %+v", res)
	}
	if res.TotalChecks != 0 {
		t.Errorf("TotalChecks = %d, want 0 (external workers own the agents)", res.TotalChecks)
	}
	if res.BinaryConns != int64(len(evens)) {
		t.Errorf("BinaryConns = %d, want %d (odd nodes requested the JSON fallback)",
			res.BinaryConns, len(evens))
	}
	if res.BytesRecv == 0 || res.BytesSent == 0 {
		t.Errorf("byte counters not populated: %+v", res)
	}
}

// TestDrainWindowResolution pins the write-error classifier's inbound-drain
// bound: configurable per node, 1s when unset.
func TestDrainWindowResolution(t *testing.T) {
	if got := (nodeConfig{}).drainWindowOrDefault(); got != time.Second {
		t.Fatalf("default drain window = %v, want 1s", got)
	}
	if got := (nodeConfig{drainWindow: 5 * time.Second}).drainWindowOrDefault(); got != 5*time.Second {
		t.Fatalf("configured drain window = %v, want 5s", got)
	}
	if got := (nodeConfig{drainWindow: -1}).drainWindowOrDefault(); got != time.Second {
		t.Fatalf("negative drain window = %v, want the 1s default", got)
	}
}

// TestWorkerOptionValidation pins RunWorker's argument checks.
func TestWorkerOptionValidation(t *testing.T) {
	p, init := ringProblem(t, 4)
	maker := awcMaker(p, init)
	if _, err := RunWorker(p, maker, WorkerOptions{Vars: []int{0}}); err == nil {
		t.Error("no addresses accepted")
	}
	if _, err := RunWorker(p, maker, WorkerOptions{Addrs: []string{"127.0.0.1:1"}}); err == nil {
		t.Error("no variables accepted")
	}
	if _, err := RunWorker(p, maker, WorkerOptions{Addrs: []string{"127.0.0.1:1"}, Vars: []int{9}}); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

// TestListenShardMismatch pins the Options cross-check: an explicit Shards
// count that disagrees with the Listen list is a configuration error.
func TestListenShardMismatch(t *testing.T) {
	p, init := ringProblem(t, 4)
	_, err := Run(p, awcMaker(p, init), Options{
		Shards: 3,
		Listen: []string{"127.0.0.1:0", "127.0.0.1:0"},
	})
	if err == nil {
		t.Fatal("mismatched Shards/Listen accepted")
	}
}

// TestNoBatchDisablesBatching checks the batching kill-switch: with NoBatch
// every frame crosses the sockets individually and the batched-frame
// counter stays zero, without changing the verdict or message count.
func TestNoBatchDisablesBatching(t *testing.T) {
	p, init := ringProblem(t, 8)
	batched, err := Run(p, awcMaker(p, init), Options{Timeout: 30 * time.Second})
	if err != nil || !batched.Solved {
		t.Fatalf("batched run: %v (res=%+v)", err, batched)
	}
	plain, err := Run(p, awcMaker(p, init), Options{Timeout: 30 * time.Second, NoBatch: true})
	if err != nil || !plain.Solved {
		t.Fatalf("nobatch run: %v (res=%+v)", err, plain)
	}
	if batched.BatchedFrames == 0 {
		t.Errorf("default run batched no frames")
	}
	if plain.BatchedFrames != 0 {
		t.Errorf("NoBatch run batched %d frames", plain.BatchedFrames)
	}
	if batched.Messages != plain.Messages {
		t.Errorf("batching changed Messages: %d vs %d", batched.Messages, plain.Messages)
	}
}
