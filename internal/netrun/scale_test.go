package netrun

import (
	"os"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/csp"
)

// TestScaleSmoke1k is the CI scale-smoke job's 1k-agent solve: a
// 1024-agent 3-colorable ring started from the all-zero assignment (every
// edge violated), solved over 4 sharded relays with the binary codec and
// batching. Gated behind SCALE_SMOKE=1 because it opens ~2k real TCP
// connections and is sized for the dedicated CI job, not `go test ./...`.
func TestScaleSmoke1k(t *testing.T) {
	if os.Getenv("SCALE_SMOKE") == "" {
		t.Skip("set SCALE_SMOKE=1 to run the 1k-agent sharded smoke")
	}
	const n = 1024
	p := csp.NewProblemUniform(n, 3)
	init := make(csp.SliceAssignment, n)
	for i := 0; i < n; i++ {
		if err := p.AddNotEqual(csp.Var(i), csp.Var((i+1)%n)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(p, awcMaker(p, init), Options{Timeout: 5 * time.Minute, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Solved {
		t.Fatalf("1k ring not solved: insoluble=%v quiescent=%v", res.Insoluble, res.Quiescent)
	}
	if res.BinaryConns != n {
		t.Errorf("BinaryConns = %d, want %d (all nodes negotiate binary)", res.BinaryConns, n)
	}
	if res.BatchedFrames == 0 {
		t.Error("BatchedFrames = 0, want batching active at this scale")
	}
	t.Logf("1k smoke: messages=%d duration=%v bytes_out=%d bytes_in=%d batched=%d",
		res.Messages, res.Duration, res.BytesSent, res.BytesRecv, res.BatchedFrames)
}
