// Sharded relays: the hub's socket plane. Each relay owns one listener and
// the read loops of the connections it accepted; everything a relay decodes
// funnels into the hub's single route loop, which owns all routing, fault,
// and accounting decisions. Sharding therefore scales accept/read/decode
// across cores without perturbing a single routing decision — the
// determinism argument DESIGN.md §12 spells out.
package netrun

import (
	"errors"
	"net"
	"sync"

	"github.com/discsp/discsp/internal/wire"
)

// relay is one shard of the hub's listening plane.
type relay struct {
	index int
	ln    net.Listener
}

// shardOf is the consistent agent→shard assignment shared by the hub, the
// in-process nodes, and external workers (cmd/dcspnode): node v belongs to
// shard v mod nShards.
func shardOf(v, nShards int) int {
	if nShards <= 1 {
		return 0
	}
	return v % nShards
}

// relayConn is the hub's handle on one accepted connection. The read side
// (fr) belongs to the shard's read-loop goroutine; the write side (fw) and
// the node/dirty bookkeeping belong to the route loop, which serializes
// every write — so neither side needs a lock.
type relayConn struct {
	conn  net.Conn
	shard int
	fw    *wire.FrameWriter
	fr    *wire.FrameReader
	node  int  // registered node id; -1 until the hello is processed
	dirty bool // buffered writes awaiting the route loop's idle flush
	crcOn bool // CRC32C trailer negotiated on this connection
}

// acceptLoop accepts connections on one relay until its listener closes,
// spawning a read loop per connection.
func (h *hub) acceptLoop(r *relay, readWG *sync.WaitGroup) {
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			return // listener closed at shutdown
		}
		rc := &relayConn{
			conn:  conn,
			shard: r.index,
			fw:    wire.NewFrameWriter(conn),
			fr:    wire.NewFrameReader(conn),
			node:  -1,
		}
		h.connMu.Lock()
		h.allConns = append(h.allConns, rc)
		h.connMu.Unlock()
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			h.readLoop(rc)
		}()
	}
}

// readLoop decodes frames from one connection into the hub channel. All
// frames — including hello — go through the channel so that connection
// registration happens on the single-threaded route loop. The one thing
// decided here is codec negotiation: the reader must switch before the next
// read, and the node sends nothing after its hello until the welcome
// arrives, so the switch point is unambiguous. The negotiated name rides to
// the route loop on the hello's Codec field.
func (h *hub) readLoop(rc *relayConn) {
	for {
		env, err := rc.fr.Next()
		if err != nil {
			if errors.Is(err, wire.ErrCorruptFrame) {
				// A checksum-rejected frame is consumed and counted; the
				// stream stays aligned and the sender retransmits.
				continue
			}
			return // node-side close or framing damage: drop the connection
		}
		if env.Type == wire.TypeHello {
			neg := negotiate(h.codec, env.Codec)
			rc.fr.SetCodec(neg)
			if h.checksum && env.Crc && neg == wire.CodecBinary {
				// The node sends nothing after its hello until the welcome
				// confirms the trailer, so arming the reader here is safe —
				// exactly like the codec switch above.
				rc.fr.EnableChecksum()
			}
			env.Codec = neg.String()
		}
		// Frames outlive the next Next call (queues, delays, checkpoints):
		// unalias the reader's scratch.
		env.Detach()
		select {
		case h.frames <- inFrame{env: env, src: rc}:
		case <-h.stop:
			return
		}
	}
}

// negotiate picks one connection's codec: binary unless either side asks
// for the JSON fallback. An unrecognized request also falls back to JSON —
// the handshake already proved the peer speaks it.
func negotiate(hub wire.Codec, requested string) wire.Codec {
	req, err := wire.ParseCodec(requested)
	if err != nil || hub == wire.CodecJSON || req == wire.CodecJSON {
		return wire.CodecJSON
	}
	return wire.CodecBinary
}
