// The node side of the transport: one goroutine (or worker process) per
// agent, dialing its shard's relay, negotiating a codec, and running the
// agent against the socket with reliable links and crash checkpoints.
package netrun

import (
	"fmt"
	"net"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/wire"
)

// nodeConfig carries one node's invariant wiring across incarnations.
type nodeConfig struct {
	addr      string // the node's shard relay address
	v         csp.Var
	makeAgent func(v csp.Var) sim.Agent
	codec     wire.Codec // requested in the hello; the welcome decides
	noBatch   bool
	inj       *faults.Injector
	ckpts     *faults.Checkpoints
	ctr       *nodeCounters
	done      <-chan struct{}
	// onStop, when non-nil, runs when the hub's stop frame arrives —
	// workers use it to classify their sibling nodes' subsequent socket
	// errors as a clean shutdown.
	onStop func()
	// drainWindow bounds how long a node whose write failed keeps draining
	// inbound frames looking for the hub's stop (the clean-shutdown race in
	// failRW); 0 means defaultDrainWindow. Workers on slow or contended
	// links raise it to avoid misclassifying a shutdown as a hub death.
	drainWindow time.Duration
}

// defaultDrainWindow is the write-error classifier's inbound-drain bound.
const defaultDrainWindow = time.Second

// drainWindowOrDefault resolves the configured drain window.
func (cfg nodeConfig) drainWindowOrDefault() time.Duration {
	if cfg.drainWindow > 0 {
		return cfg.drainWindow
	}
	return defaultDrainWindow
}

// nodeCheckpoint is the durable state a node persists before acknowledging
// a step: the agent snapshot plus both halves of every reliable link, so a
// restarted incarnation resumes the seq streams exactly where the crashed
// one durably left them.
type nodeCheckpoint struct {
	agent any
	send  map[int]wire.SendLinkState
	recv  map[int]wire.RecvLinkState
	steps int
	// pendingReport is the processed count of the checkpointed step whose
	// state frame may never have reached the hub; the restarted node
	// re-reports it so the hub's in-flight accounting stays exact.
	pendingReport int
}

// runNode dials the hub and runs one agent against the socket. It returns
// crashed=true when the fault schedule killed this incarnation (the
// supervisor decides whether to restart it); a nil error otherwise means a
// clean stop.
func runNode(cfg nodeConfig, incarnation int) (bool, error) {
	v := cfg.v
	conn, err := net.Dial("tcp", cfg.addr)
	if err != nil {
		select {
		case <-cfg.done:
			return false, nil // run over; the listener is gone
		default:
			return false, err
		}
	}
	defer conn.Close()
	agent := cfg.makeAgent(v)
	if int(agent.ID()) != int(v) {
		return false, fmt.Errorf("agent for variable %d has id %d", v, agent.ID())
	}

	sendLinks := make(map[int]*wire.SendLink)
	recvLinks := make(map[int]*wire.RecvLink)
	ctr := cfg.ctr
	defer func() {
		var rt, dp int64
		for _, sl := range sendLinks {
			rt += sl.Retransmits()
		}
		for _, rl := range recvLinks {
			dp += rl.Dups()
		}
		ctr.retransmits.Add(rt)
		ctr.dups.Add(dp)
		// Final incarnation wins: a restarted agent restored its counter
		// from the checkpoint, so its total is cumulative.
		if int(v) < len(ctr.checks) {
			ctr.checks[int(v)].Store(agent.Checks())
		}
		if ctr.stores != nil && int(v) < len(ctr.stores) {
			if ss, ok := agent.(storeSizer); ok {
				ctr.stores[int(v)].Store(int64(ss.StoreSize()))
			}
		}
	}()
	sendLink := func(to int) *wire.SendLink {
		sl, ok := sendLinks[to]
		if !ok {
			sl = wire.NewSendLink(retransmitBase, retransmitCap)
			sendLinks[to] = sl
		}
		return sl
	}
	recvLink := func(from int) *wire.RecvLink {
		rl, ok := recvLinks[from]
		if !ok {
			rl = wire.NewRecvLink()
			recvLinks[from] = rl
		}
		return rl
	}

	steps := 0
	pendingReport := 0
	restored := false
	if incarnation > 0 {
		if snap, ok := cfg.ckpts.Load(int(v)); ok {
			cp := snap.(nodeCheckpoint)
			if cp.agent != nil {
				c, can := agent.(sim.Checkpointer)
				if !can {
					return false, fmt.Errorf("agent %d cannot restore a checkpoint", v)
				}
				if err := c.Restore(cp.agent); err != nil {
					return false, fmt.Errorf("restore checkpoint: %w", err)
				}
			}
			now := time.Now()
			for peer, st := range cp.send {
				sendLinks[peer] = wire.RestoreSendLink(st, retransmitBase, retransmitCap, now)
			}
			for peer, st := range cp.recv {
				recvLinks[peer] = wire.RestoreRecvLink(st)
			}
			steps = cp.steps
			pendingReport = cp.pendingReport
			restored = true
		}
	}

	// fail classifies an I/O error: once the run is over (done closed), the
	// hub tears sockets down mid-write and a broken pipe is a clean exit,
	// not a node failure.
	fail := func(err error) (bool, error) {
		select {
		case <-cfg.done:
			return false, nil
		default:
			return false, err
		}
	}

	// One writer and one reader own the socket. Both start in JSON (the
	// handshake encoding) and switch together once the welcome names the
	// negotiated codec. Every write group below ends with a Flush — that is
	// the batch boundary: a step's outputs, ack, and state report coalesce
	// into one batch frame.
	fw := wire.NewFrameWriter(conn)
	fr := wire.NewFrameReader(conn)
	send := func(e wire.Envelope) error { return fw.Send(&e) }
	writeState := func(processed int) error {
		state := wire.Envelope{Type: wire.TypeState, From: int(v), Value: int(agent.CurrentValue()), Processed: processed}
		if r, ok := agent.(sim.InsolubleReporter); ok && r.Insoluble() {
			state.Insoluble = true
		}
		return send(state)
	}

	// Crash schedule: only the first incarnation crashes (the schedule is
	// one crash per agent), and only agents that will restart pay for
	// checkpointing.
	var cr faults.Crash
	hasCrash := false
	if incarnation == 0 {
		cr, hasCrash = cfg.inj.Crash(int(v))
	}
	willRestart := cfg.inj.WillRestart(int(v))
	saveCheckpoint := func() {
		if !willRestart || cfg.ckpts == nil {
			return
		}
		cp := nodeCheckpoint{
			send:          make(map[int]wire.SendLinkState, len(sendLinks)),
			recv:          make(map[int]wire.RecvLinkState, len(recvLinks)),
			steps:         steps,
			pendingReport: pendingReport,
		}
		if c, ok := agent.(sim.Checkpointer); ok {
			cp.agent = c.Checkpoint()
		}
		for peer, sl := range sendLinks {
			cp.send[peer] = sl.SnapshotState()
		}
		for peer, rl := range recvLinks {
			cp.recv[peer] = rl.SnapshotState()
		}
		cfg.ckpts.Save(int(v), cp)
	}

	// Handshake: hello (with the requested codec), then block on the
	// welcome before anything else crosses the socket, so the codec switch
	// point is unambiguous on both sides.
	if err := send(wire.Envelope{Type: wire.TypeHello, From: int(v), Codec: cfg.codec.String()}); err != nil {
		return fail(err)
	}
	if err := fw.Flush(); err != nil {
		return fail(err)
	}
	welcome, err := fr.Next()
	if err != nil {
		return fail(err)
	}
	switch welcome.Type {
	case wire.TypeWelcome:
	case wire.TypeStop:
		if cfg.onStop != nil {
			cfg.onStop()
		}
		return false, nil
	default:
		return false, fmt.Errorf("node %d: expected welcome, got %q", v, welcome.Type)
	}
	neg, err := wire.ParseCodec(welcome.Codec)
	if err != nil {
		return false, fmt.Errorf("node %d: welcome names unknown codec: %w", v, err)
	}
	fr.SetCodec(neg)
	if err := fw.SetCodec(neg); err != nil {
		return fail(err)
	}
	if !cfg.noBatch {
		fw.EnableBatching(batchMaxFrames, batchMaxBytes)
	}

	now := time.Now()
	if restored {
		// The crash may have eaten anything not yet acked: retransmit the
		// whole unacked window, then re-report the step whose state frame
		// the crash swallowed.
		for _, sl := range sendLinks {
			for _, e := range sl.Due(now) {
				if err := send(e); err != nil {
					return fail(err)
				}
			}
		}
		if err := writeState(pendingReport); err != nil {
			return fail(err)
		}
		pendingReport = 0
	} else {
		for _, m := range agent.Init() {
			env, err := wire.Encode(m)
			if err != nil {
				return false, err
			}
			env, err = sendLink(env.To).Stamp(env, now)
			if err != nil {
				return false, err
			}
			if err := send(env); err != nil {
				return fail(err)
			}
		}
		if err := writeState(0); err != nil {
			return fail(err)
		}
	}
	if err := fw.Flush(); err != nil {
		return fail(err)
	}

	// Reader goroutine: the main loop must also wake for retransmission
	// ticks, so reads go through a channel. Envelopes are detached — they
	// sit in the channel (and the reorder buffer) past the next read.
	inbound := make(chan wire.Envelope, 128)
	readerQuit := make(chan struct{})
	defer close(readerQuit)
	go func() {
		defer close(inbound)
		for {
			e, err := fr.Next()
			if err != nil {
				return
			}
			e.Detach()
			select {
			case inbound <- e:
			case <-readerQuit:
				return
			}
		}
	}()

	// failRW classifies a write error once the reader is running. A write
	// failure races with the hub's shutdown: the stop frame — or the
	// hub-side close — may already be in flight on the read side while this
	// node was mid-write (external workers hit this, having no other
	// shutdown signal). Drain the inbound side briefly before declaring the
	// hub dead.
	failRW := func(err error) (bool, error) {
		select {
		case <-cfg.done:
			return false, nil
		default:
		}
		deadline := time.NewTimer(cfg.drainWindowOrDefault())
		defer deadline.Stop()
		for {
			select {
			case e, ok := <-inbound:
				if !ok {
					return false, nil // EOF: the hub tore the socket down
				}
				if e.Type == wire.TypeStop {
					if cfg.onStop != nil {
						cfg.onStop()
					}
					return false, nil
				}
				// Any other frame is abandoned: this node is exiting either
				// way, and the sender's retransmission covers a restart.
			case <-cfg.done:
				return false, nil
			case <-deadline.C:
				return false, err
			}
		}
	}

	ticker := time.NewTicker(retransmitTick)
	defer ticker.Stop()
	for {
		select {
		case e, ok := <-inbound:
			if !ok {
				// EOF without ctl.stop: the hub tore the socket down.
				return false, nil
			}
			switch e.Type {
			case wire.TypeStop:
				if cfg.onStop != nil {
					cfg.onStop()
				}
				return false, nil
			case wire.TypeAck:
				if sl, ok := sendLinks[e.From]; ok {
					sl.Ack(e.Ack, time.Now())
				}
				continue
			}
			rl := recvLink(e.From)
			released, _, err := rl.Accept(e)
			if err != nil {
				return false, err
			}
			now := time.Now()
			if len(released) == 0 {
				// Duplicate or gap: re-ack so a sender whose ack was lost
				// stops retransmitting.
				if err := send(wire.Envelope{Type: wire.TypeAck, From: int(v), To: e.From, Ack: rl.CumAck()}); err != nil {
					return failRW(err)
				}
				if err := fw.Flush(); err != nil {
					return failRW(err)
				}
				continue
			}
			batch := make([]sim.Message, 0, len(released))
			for _, env := range released {
				msg, err := wire.Decode(env)
				if err != nil {
					return false, err
				}
				batch = append(batch, msg)
			}
			out := agent.Step(batch)
			steps++
			// Stamp the output into the send links BEFORE checkpointing:
			// if the crash hits after the checkpoint, the output survives
			// in the unacked buffers and the restart retransmits it.
			outFrames := make([]wire.Envelope, 0, len(out))
			for _, m := range out {
				env, err := wire.Encode(m)
				if err != nil {
					return false, err
				}
				env, err = sendLink(env.To).Stamp(env, now)
				if err != nil {
					return false, err
				}
				outFrames = append(outFrames, env)
			}
			// Checkpoint before acknowledging anything: acked must mean
			// durable. The ack and state report for this step may then be
			// lost to a crash; the restart re-reports them.
			pendingReport = len(released)
			saveCheckpoint()
			if hasCrash && steps > cr.AfterSteps {
				// Scheduled crash: the process dies before acking the
				// step. Everything since the checkpoint is lost; senders
				// retransmit, the restart replays the checkpoint.
				return true, nil
			}
			for _, of := range outFrames {
				if err := send(of); err != nil {
					return failRW(err)
				}
			}
			if err := send(wire.Envelope{Type: wire.TypeAck, From: int(v), To: e.From, Ack: rl.CumAck()}); err != nil {
				return failRW(err)
			}
			if err := writeState(len(released)); err != nil {
				return failRW(err)
			}
			if err := fw.Flush(); err != nil {
				return failRW(err)
			}
			pendingReport = 0
		case <-ticker.C:
			now := time.Now()
			wrote := false
			for _, sl := range sendLinks {
				for _, e := range sl.Due(now) {
					if err := send(e); err != nil {
						return failRW(err)
					}
					wrote = true
				}
			}
			if wrote {
				if err := fw.Flush(); err != nil {
					return failRW(err)
				}
			}
		}
	}
}
