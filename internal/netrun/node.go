// The node side of the transport: one goroutine (or worker process) per
// agent, dialing its shard's relay, negotiating a codec (and optionally the
// CRC32C frame trailer), and running the agent against the socket with
// reliable links, crash checkpoints, and — for external workers —
// reconnection: a node that loses its connection mid-solve redials on
// jittered backoff, re-hellos with the resume flag, and replays its unacked
// window, exactly like the in-process crash-restart path but with the state
// still in memory.
package netrun

import (
	"errors"
	"fmt"
	"net"
	"time"

	"github.com/discsp/discsp/internal/backoff"
	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/wire"
)

// nodeConfig carries one node's invariant wiring across incarnations.
type nodeConfig struct {
	addr      string // the node's shard relay address
	v         csp.Var
	makeAgent func(v csp.Var) sim.Agent
	codec     wire.Codec // requested in the hello; the welcome decides
	noBatch   bool
	crc       bool           // request the CRC32C frame trailer in the hello
	causal    *causal.Tracer // non-nil requests causal tracing in the hello
	hb        time.Duration  // idle-link heartbeat period; 0 disables
	inj       *faults.Injector
	ckpts     *faults.Checkpoints
	ctr       *nodeCounters
	done      <-chan struct{}
	// onStop, when non-nil, runs when the hub's stop frame arrives —
	// workers use it to classify their sibling nodes' subsequent socket
	// errors as a clean shutdown.
	onStop func()
	// drainWindow bounds how long a node whose write failed keeps draining
	// inbound frames looking for the hub's stop (the clean-shutdown race in
	// failRW); 0 means defaultDrainWindow. Workers on slow or contended
	// links raise it to avoid misclassifying a shutdown as a hub death.
	drainWindow time.Duration
	// reconnect makes connection loss survivable: the node redials (with
	// jittered backoff, bounded by connectTimeout), re-hellos with the
	// resume flag, and replays its unacked window. External workers set it;
	// in-process nodes rely on the crash-restart supervisor instead.
	reconnect bool
	// connectTimeout bounds each dial-with-retry loop (startup and
	// reconnection) when reconnect is set; 0 means defaultConnectTimeout.
	connectTimeout time.Duration
	// deadPeer is the node-side hub-silence bound: a reconnect-enabled
	// node that hears nothing (not even a heartbeat) for this long
	// abandons its connection and redials. 0 disables.
	deadPeer time.Duration
}

// defaultDrainWindow is the write-error classifier's inbound-drain bound.
const defaultDrainWindow = time.Second

// causeIn records the released batch as the open span's cause set; no-op
// when tracing is off.
func causeIn(at *causal.AgentTracer, in []sim.Message) {
	if at == nil {
		return
	}
	for _, m := range in {
		at.Cause(m)
	}
}

// stampOut assigns trace IDs to outgoing messages in place; no-op when
// tracing is off.
func stampOut(at *causal.AgentTracer, out []sim.Message) {
	if at == nil {
		return
	}
	for i, m := range out {
		out[i] = at.Stamp(m, int(m.To()), sim.TypeName(m)).(sim.Message)
	}
}

// defaultConnectTimeout bounds a worker node's dial-with-retry loop: long
// enough to ride out a hub that launches after the worker or rebinds after
// a restart, short enough that a genuinely absent hub fails the worker.
const defaultConnectTimeout = 15 * time.Second

// drainWindowOrDefault resolves the configured drain window.
func (cfg nodeConfig) drainWindowOrDefault() time.Duration {
	if cfg.drainWindow > 0 {
		return cfg.drainWindow
	}
	return defaultDrainWindow
}

func (cfg nodeConfig) connectTimeoutOrDefault() time.Duration {
	if cfg.connectTimeout > 0 {
		return cfg.connectTimeout
	}
	return defaultConnectTimeout
}

// nodeCheckpoint is the durable state a node persists before acknowledging
// a step: the agent snapshot plus both halves of every reliable link, so a
// restarted incarnation resumes the seq streams exactly where the crashed
// one durably left them.
type nodeCheckpoint struct {
	agent any
	send  map[int]wire.SendLinkState
	recv  map[int]wire.RecvLinkState
	steps int
	// pendingReport is the processed count of the checkpointed step whose
	// state frame may never have reached the hub; the restarted node
	// re-reports it so the hub's in-flight accounting stays exact.
	pendingReport int
}

// nodeState is the state that survives a session: the agent, both halves of
// every reliable link, and the step/report bookkeeping. A reconnecting
// node carries it across sockets; a crash-restarted node rebuilds it from
// the checkpoint.
type nodeState struct {
	agent         sim.Agent
	sendLinks     map[int]*wire.SendLink
	recvLinks     map[int]*wire.RecvLink
	steps         int
	pendingReport int
	restored      bool  // a checkpoint was replayed into this state
	corrupt       int64 // CRC-rejected inbound frames, summed across sessions
}

// sessionEnd classifies how one socket session finished.
type sessionEnd int

const (
	endStop    sessionEnd = iota // clean: stop frame, run over, or hub teardown
	endCrashed                   // the fault schedule killed this incarnation
	endLost                      // connection failed; redial and resume
)

// errRunOver marks a dial abandoned because the run already ended.
var errRunOver = errors.New("netrun: run over")

// dialNode connects to the node's relay. Reconnect-enabled nodes retry
// refused dials on jittered backoff until connectTimeout — both at startup,
// where a worker process may launch before the hub listens, and on
// reconnection, where the hub may still be tearing down the old socket.
// In-process nodes dial once: their hub listens before any node starts.
func dialNode(cfg nodeConfig) (net.Conn, error) {
	pol := backoff.Policy{Base: 25 * time.Millisecond, Cap: time.Second}
	deadline := time.Now().Add(cfg.connectTimeoutOrDefault())
	for attempt := 0; ; attempt++ {
		conn, err := net.Dial("tcp", cfg.addr)
		if err == nil {
			return conn, nil
		}
		select {
		case <-cfg.done:
			return nil, errRunOver
		default:
		}
		if !cfg.reconnect {
			return nil, err
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("netrun: connect %s: %w", cfg.addr, err)
		}
		select {
		case <-time.After(pol.Jittered(attempt, int64(cfg.v)+1)):
		case <-cfg.done:
			return nil, errRunOver
		}
	}
}

// runNode runs one agent across one or more socket sessions. It returns
// crashed=true when the fault schedule killed this incarnation (the
// supervisor decides whether to restart it); a nil error otherwise means a
// clean stop.
func runNode(cfg nodeConfig, incarnation int) (bool, error) {
	v := cfg.v
	agent := cfg.makeAgent(v)
	if int(agent.ID()) != int(v) {
		return false, fmt.Errorf("agent for variable %d has id %d", v, agent.ID())
	}
	st := &nodeState{
		agent:     agent,
		sendLinks: make(map[int]*wire.SendLink),
		recvLinks: make(map[int]*wire.RecvLink),
	}
	ctr := cfg.ctr
	defer func() {
		var rt, dp int64
		for _, sl := range st.sendLinks {
			rt += sl.Retransmits()
		}
		for _, rl := range st.recvLinks {
			dp += rl.Dups()
		}
		ctr.retransmits.Add(rt)
		ctr.dups.Add(dp)
		ctr.corrupt.Add(st.corrupt)
		// Final incarnation wins: a restarted agent restored its counter
		// from the checkpoint, so its total is cumulative.
		if int(v) < len(ctr.checks) {
			ctr.checks[int(v)].Store(agent.Checks())
		}
		if ctr.stores != nil && int(v) < len(ctr.stores) {
			if ss, ok := agent.(storeSizer); ok {
				ctr.stores[int(v)].Store(int64(ss.StoreSize()))
			}
		}
	}()

	if incarnation > 0 {
		if snap, ok := cfg.ckpts.Load(int(v)); ok {
			cp := snap.(nodeCheckpoint)
			if cp.agent != nil {
				c, can := agent.(sim.Checkpointer)
				if !can {
					return false, fmt.Errorf("agent %d cannot restore a checkpoint", v)
				}
				if err := c.Restore(cp.agent); err != nil {
					return false, fmt.Errorf("restore checkpoint: %w", err)
				}
			}
			now := time.Now()
			for peer, lst := range cp.send {
				st.sendLinks[peer] = wire.RestoreSendLink(lst, retransmitBase, retransmitCap, now)
			}
			for peer, lst := range cp.recv {
				st.recvLinks[peer] = wire.RestoreRecvLink(lst)
			}
			st.steps = cp.steps
			st.pendingReport = cp.pendingReport
			st.restored = true
		}
	}

	for session := 0; ; session++ {
		conn, err := dialNode(cfg)
		if err != nil {
			if errors.Is(err, errRunOver) {
				return false, nil
			}
			return false, err
		}
		end, err := runSession(cfg, st, conn, incarnation, session)
		conn.Close()
		if err != nil {
			return false, err
		}
		switch end {
		case endStop:
			return false, nil
		case endCrashed:
			return true, nil
		}
		// endLost: the link died mid-solve. Redial and resume — the links
		// keep their numbering, so the hub treats the re-hello like a
		// checkpoint restart with the state still warm.
		ctr.reconnects.Add(1)
	}
}

// runSession drives one socket's lifetime: handshake, replay (after a
// restore or reconnect), then the step loop until stop, crash, or
// connection loss.
func runSession(cfg nodeConfig, st *nodeState, conn net.Conn, incarnation, session int) (sessionEnd, error) {
	v := cfg.v
	agent := st.agent
	sendLink := func(to int) *wire.SendLink {
		sl, ok := st.sendLinks[to]
		if !ok {
			sl = wire.NewSendLink(retransmitBase, retransmitCap)
			st.sendLinks[to] = sl
		}
		return sl
	}
	recvLink := func(from int) *wire.RecvLink {
		rl, ok := st.recvLinks[from]
		if !ok {
			rl = wire.NewRecvLink()
			st.recvLinks[from] = rl
		}
		return rl
	}

	// fail classifies an I/O error before the reader goroutine exists: the
	// run being over makes it a clean exit; a reconnect-enabled node treats
	// it as a lost connection and redials; in-process nodes report it.
	fail := func(err error) (sessionEnd, error) {
		select {
		case <-cfg.done:
			return endStop, nil
		default:
		}
		if cfg.reconnect {
			return endLost, nil
		}
		return endStop, err
	}

	// One writer and one reader own the socket. Both start in JSON (the
	// handshake encoding) and switch together once the welcome names the
	// negotiated codec. Every write group below ends with a Flush — that is
	// the batch boundary: a step's outputs, ack, and state report coalesce
	// into one batch frame.
	fw := wire.NewFrameWriter(conn)
	fr := wire.NewFrameReader(conn)
	send := func(e wire.Envelope) error { return fw.Send(&e) }
	writeState := func(processed int) error {
		state := wire.Envelope{Type: wire.TypeState, From: int(v), Value: int(agent.CurrentValue()), Processed: processed}
		if r, ok := agent.(sim.InsolubleReporter); ok && r.Insoluble() {
			state.Insoluble = true
		}
		return send(state)
	}

	// Crash schedule: only the first incarnation crashes (the schedule is
	// one crash per agent), and only agents that will restart pay for
	// checkpointing.
	var cr faults.Crash
	hasCrash := false
	if incarnation == 0 {
		cr, hasCrash = cfg.inj.Crash(int(v))
	}
	willRestart := cfg.inj.WillRestart(int(v))
	saveCheckpoint := func() {
		if !willRestart || cfg.ckpts == nil {
			return
		}
		cp := nodeCheckpoint{
			send:          make(map[int]wire.SendLinkState, len(st.sendLinks)),
			recv:          make(map[int]wire.RecvLinkState, len(st.recvLinks)),
			steps:         st.steps,
			pendingReport: st.pendingReport,
		}
		if c, ok := agent.(sim.Checkpointer); ok {
			cp.agent = c.Checkpoint()
		}
		for peer, sl := range st.sendLinks {
			cp.send[peer] = sl.SnapshotState()
		}
		for peer, rl := range st.recvLinks {
			cp.recv[peer] = rl.SnapshotState()
		}
		cfg.ckpts.Save(int(v), cp)
	}

	// Handshake: hello (with the requested codec, checksum bid, and — when
	// this node carries live state from a checkpoint or a previous session
	// — the resume flag), then block on the welcome before anything else
	// crosses the socket, so the codec and checksum switch points are
	// unambiguous on both sides. A hello without resume after a previous
	// registration tells the hub this is a cold relaunch: it resets the
	// node's links everywhere.
	resume := st.restored || session > 0
	hello := wire.Envelope{Type: wire.TypeHello, From: int(v), Codec: cfg.codec.String(),
		Crc: cfg.crc, Causal: cfg.causal != nil, Resume: resume}
	if err := send(hello); err != nil {
		return fail(err)
	}
	if err := fw.Flush(); err != nil {
		return fail(err)
	}
	welcome, err := fr.Next()
	if err != nil {
		return fail(err)
	}
	switch welcome.Type {
	case wire.TypeWelcome:
	case wire.TypeStop:
		if cfg.onStop != nil {
			cfg.onStop()
		}
		return endStop, nil
	default:
		return endStop, fmt.Errorf("node %d: expected welcome, got %q", v, welcome.Type)
	}
	neg, err := wire.ParseCodec(welcome.Codec)
	if err != nil {
		return endStop, fmt.Errorf("node %d: welcome names unknown codec: %w", v, err)
	}
	fr.SetCodec(neg)
	if err := fw.SetCodec(neg); err != nil {
		return fail(err)
	}
	if welcome.Crc {
		fr.EnableChecksum()
		fw.EnableChecksum()
	}
	// The node's tracer handle. It survives sessions and incarnations (the
	// Tracer keeps one handle per variable), so trace-ID counters continue
	// across reconnections and crash-restarts — cause IDs stay stable even
	// through a TypeReset link renumbering, which renumbers Seq, not TSeq.
	// IDs are only emitted onto the socket when the welcome confirmed the
	// negotiation; the spans themselves are still recorded so a trace of a
	// mixed fleet keeps this node's side of the story.
	at := cfg.causal.Agent(int(v))
	if welcome.Causal {
		fw.EnableCausal()
	}
	if !cfg.noBatch {
		fw.EnableBatching(batchMaxFrames, batchMaxBytes)
	}

	now := time.Now()
	if resume {
		// The crash or disconnect may have eaten anything not yet acked:
		// retransmit the whole unacked window, then re-report the step
		// whose state frame may have been swallowed.
		for _, sl := range st.sendLinks {
			sl.MarkDue(now)
			for _, e := range sl.Due(now) {
				if err := send(e); err != nil {
					return fail(err)
				}
			}
		}
		if err := writeState(st.pendingReport); err != nil {
			return fail(err)
		}
		st.pendingReport = 0
	} else {
		at.Begin(causal.SpanInit, 0)
		out := agent.Init()
		stampOut(at, out)
		at.End()
		for _, m := range out {
			env, err := wire.Encode(m)
			if err != nil {
				return endStop, err
			}
			env, err = sendLink(env.To).Stamp(env, now)
			if err != nil {
				return endStop, err
			}
			if err := send(env); err != nil {
				return fail(err)
			}
		}
		if err := writeState(0); err != nil {
			return fail(err)
		}
	}
	if err := fw.Flush(); err != nil {
		return fail(err)
	}
	lastWrite := time.Now()
	lastRecv := lastWrite

	// Reader goroutine: the main loop must also wake for retransmission
	// ticks, so reads go through a channel. Envelopes are detached — they
	// sit in the channel (and the reorder buffer) past the next read. A
	// checksum-rejected frame is consumed, counted, and skipped; the
	// sender's retransmission recovers it.
	inbound := make(chan wire.Envelope, 128)
	readerQuit := make(chan struct{})
	defer func() {
		close(readerQuit)
		st.corrupt += fr.CorruptFrames
	}()
	go func() {
		defer close(inbound)
		for {
			e, err := fr.Next()
			if err != nil {
				if errors.Is(err, wire.ErrCorruptFrame) {
					continue
				}
				return
			}
			e.Detach()
			select {
			case inbound <- e:
			case <-readerQuit:
				return
			}
		}
	}()

	// failRW classifies a write error once the reader is running. A write
	// failure races with the hub's shutdown: the stop frame — or the
	// hub-side close — may already be in flight on the read side while this
	// node was mid-write (external workers hit this, having no other
	// shutdown signal). Drain the inbound side briefly before classifying.
	failRW := func(err error) (sessionEnd, error) {
		select {
		case <-cfg.done:
			return endStop, nil
		default:
		}
		deadline := time.NewTimer(cfg.drainWindowOrDefault())
		defer deadline.Stop()
		for {
			select {
			case e, ok := <-inbound:
				if !ok {
					// EOF. For a reconnect-enabled node the hub may still be
					// alive (a severed socket looks the same); redial. For an
					// in-process node the hub tore the socket down: run over.
					if cfg.reconnect {
						return endLost, nil
					}
					return endStop, nil
				}
				if e.Type == wire.TypeStop {
					if cfg.onStop != nil {
						cfg.onStop()
					}
					return endStop, nil
				}
				// Any other frame is abandoned: this session is ending
				// either way, and retransmission covers a resumed one.
			case <-cfg.done:
				return endStop, nil
			case <-deadline.C:
				return fail(err)
			}
		}
	}

	ticker := time.NewTicker(retransmitTick)
	defer ticker.Stop()
	for {
		select {
		case e, ok := <-inbound:
			if !ok {
				// EOF without ctl.stop: severed connection or hub teardown.
				select {
				case <-cfg.done:
					return endStop, nil
				default:
				}
				if cfg.reconnect {
					return endLost, nil
				}
				return endStop, nil
			}
			lastRecv = time.Now()
			switch e.Type {
			case wire.TypeStop:
				if cfg.onStop != nil {
					cfg.onStop()
				}
				return endStop, nil
			case wire.TypeHeartbeat:
				// Pure liveness: the hub is up; lastRecv just advanced.
				continue
			case wire.TypeReset:
				// A peer relaunched cold: renumber the unacked window
				// toward it from 1, rewind the receive frontier, and echo
				// so the hub lifts its hold on our frames toward the peer.
				b := e.From
				now := time.Now()
				if sl, ok := st.sendLinks[b]; ok {
					sl.Reset(now)
				}
				if rl, ok := st.recvLinks[b]; ok {
					rl.Reset()
				}
				if err := send(wire.Envelope{Type: wire.TypeReset, From: int(v), To: b}); err != nil {
					return failRW(err)
				}
				// The relaunched peer lost its agent_view with its process,
				// and every frame its dead incarnation acknowledged is gone
				// from both sides' buffers — retransmission cannot restate
				// this node's value. Re-announce it explicitly (stamped into
				// the renumbered link, after the echo so the hub has lifted
				// its hold); without this, both sides idle believing they
				// are mutually consistent and the run stalls to timeout.
				if ra, ok := agent.(sim.Reannouncer); ok {
					ms := ra.Reannounce(sim.AgentID(b))
					at.Begin(causal.SpanStep, st.steps)
					stampOut(at, ms)
					at.End()
					for _, m := range ms {
						env, err := wire.Encode(m)
						if err != nil {
							return endStop, err
						}
						env, err = sendLink(env.To).Stamp(env, now)
						if err != nil {
							return endStop, err
						}
						if err := send(env); err != nil {
							return failRW(err)
						}
					}
				}
				if err := fw.Flush(); err != nil {
					return failRW(err)
				}
				lastWrite = now
				continue
			case wire.TypeAck:
				if sl, ok := st.sendLinks[e.From]; ok {
					sl.Ack(e.Ack, time.Now())
				}
				continue
			}
			rl := recvLink(e.From)
			released, _, err := rl.Accept(e)
			if err != nil {
				return endStop, err
			}
			now := time.Now()
			if len(released) == 0 {
				// Duplicate or gap: re-ack so a sender whose ack was lost
				// stops retransmitting.
				if err := send(wire.Envelope{Type: wire.TypeAck, From: int(v), To: e.From, Ack: rl.CumAck()}); err != nil {
					return failRW(err)
				}
				if err := fw.Flush(); err != nil {
					return failRW(err)
				}
				lastWrite = now
				continue
			}
			batch := make([]sim.Message, 0, len(released))
			for _, env := range released {
				msg, err := wire.Decode(env)
				if err != nil {
					return endStop, err
				}
				batch = append(batch, msg)
			}
			at.Begin(causal.SpanStep, st.steps)
			causeIn(at, batch)
			out := agent.Step(batch)
			stampOut(at, out)
			at.End()
			st.steps++
			// Stamp the output into the send links BEFORE checkpointing:
			// if the crash hits after the checkpoint, the output survives
			// in the unacked buffers and the restart retransmits it.
			outFrames := make([]wire.Envelope, 0, len(out))
			for _, m := range out {
				env, err := wire.Encode(m)
				if err != nil {
					return endStop, err
				}
				env, err = sendLink(env.To).Stamp(env, now)
				if err != nil {
					return endStop, err
				}
				outFrames = append(outFrames, env)
			}
			// Checkpoint before acknowledging anything: acked must mean
			// durable. The ack and state report for this step may then be
			// lost to a crash; the restart re-reports them.
			st.pendingReport = len(released)
			saveCheckpoint()
			if hasCrash && st.steps > cr.AfterSteps {
				// Scheduled crash: the process dies before acking the
				// step. Everything since the checkpoint is lost; senders
				// retransmit, the restart replays the checkpoint.
				return endCrashed, nil
			}
			for _, of := range outFrames {
				if err := send(of); err != nil {
					return failRW(err)
				}
			}
			if err := send(wire.Envelope{Type: wire.TypeAck, From: int(v), To: e.From, Ack: rl.CumAck()}); err != nil {
				return failRW(err)
			}
			if err := writeState(len(released)); err != nil {
				return failRW(err)
			}
			if err := fw.Flush(); err != nil {
				return failRW(err)
			}
			lastWrite = time.Now()
			st.pendingReport = 0
		case <-ticker.C:
			now := time.Now()
			wrote := false
			for _, sl := range st.sendLinks {
				for _, e := range sl.Due(now) {
					if err := send(e); err != nil {
						return failRW(err)
					}
					wrote = true
				}
			}
			if !wrote && cfg.hb > 0 && now.Sub(lastWrite) >= cfg.hb {
				// Idle link: beat it so the hub's dead-peer detector knows
				// this node is alive, not gone.
				if err := send(wire.Envelope{Type: wire.TypeHeartbeat, From: int(v), To: -1}); err != nil {
					return failRW(err)
				}
				wrote = true
			}
			if wrote {
				if err := fw.Flush(); err != nil {
					return failRW(err)
				}
				lastWrite = now
			}
			if cfg.reconnect && cfg.deadPeer > 0 && now.Sub(lastRecv) > cfg.deadPeer {
				// Hub silence past the dead-peer bound: the connection is
				// a black hole (the hub beats every registered link, so a
				// healthy one is never this quiet). Abandon it and redial.
				return endLost, nil
			}
		}
	}
}
