// Package netrun executes the distributed algorithms over an actual TCP
// network: a hub routes wire-encoded frames between agent nodes, each of
// which owns one agent and one TCP connection. It is the strongest form of
// the paper's portability claim exercised in this repository — the same
// Agent implementations that run on the synchronous simulator and the
// in-process asynchronous runtime here cross a real socket boundary, with
// the hub playing the network.
//
// The hub's listening plane is sharded: Options.Shards (or Options.Listen)
// splits the accept/read load across N relay listeners, with the consistent
// assignment node v → shard v mod N. All routing, fault injection, and
// accounting still serialize through one coordinator loop, so a sharded run
// is frame-for-frame identical to a single-shard run — the shards
// parallelize socket I/O and decoding, not decisions. Nodes may live in the
// hub process (the default) or in external worker processes (RunWorker,
// cmd/dcspnode) that dial the relay addresses.
//
// Frames travel in a negotiated codec: each node's hello names the codec it
// wants, the hub's welcome names the result (binary unless either side asks
// for the JSON fallback), and both directions switch after the JSON
// handshake. Steady-state frames are batched: writers coalesce frames into
// size-bounded batch frames carrying one cumulative-ack watermark per link,
// flushed whenever the sender's queue drains (see internal/wire).
//
// The transport is reliable end-to-end: nodes stamp per-link sequence
// numbers (wire.SendLink), retransmit on exponential backoff until the
// receiver's cumulative ack covers them, and dedup/reorder on arrival
// (wire.RecvLink), restoring the FIFO-per-link, exactly-once delivery the
// algorithms' correctness model (Yokoo et al.) assumes. The hub can play an
// adversarial network (Options.Faults): deterministic drop, duplication,
// and delay of algorithm frames, plus scheduled node crashes. The fault
// schedule is keyed on logical links (from, to, seq, attempt), so it is
// invariant under sharding and codec choice. A crash-scheduled node
// checkpoints its durable state (agent snapshot, both halves of every
// reliable link) before acknowledging each step, so a restarted node
// re-registers with the hub, replays the checkpoint, and the run completes
// exactly as on a clean network.
//
// Partition windows sever node-to-node traffic (algorithm frames and acks
// both) across a seeded two-sided split: frames crossing an open cut are
// held at the hub and drained when the window heals, with the nodes' dedup
// layer absorbing the retransmitted copies. A partitioned node is *not* a
// dead node — its socket stays up and it keeps retransmitting — so
// partition traffic never takes the ErrNodeDown fail-fast path; a
// never-healing cut instead strands messages in flight until the deadline,
// which reports the stall watchdog's per-agent progress diagnosis.
//
// The hub detects termination out-of-band, like the other runtimes: nodes
// attach a state report (current value, insolubility flag, processed
// count) after every step, letting the hub check for a solution snapshot,
// an insolubility proof, or quiescence (no messages in flight).
package netrun

import (
	"container/heap"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/progress"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/wire"
)

// ErrTimeout is returned when the deadline expires before a terminal state.
// The concrete error is a *TimeoutError carrying the hub's last snapshot;
// errors.Is(err, ErrTimeout) matches it.
var ErrTimeout = errors.New("netrun: run timed out")

// ErrNodeDown is wrapped into the error returned when the hub cannot reach
// a node that is not scheduled to restart: the run fails fast with a
// diagnostic instead of idling to the timeout.
var ErrNodeDown = errors.New("netrun: node unreachable")

// TimeoutError reports a run that hit its deadline, with the hub's last
// observed state so a stuck run is diagnosable from the error alone. It
// wraps ErrTimeout.
type TimeoutError struct {
	// Timeout is the configured deadline that expired.
	Timeout time.Duration
	// InFlight is the number of unique algorithm messages routed but not
	// yet reported processed by their destination node.
	InFlight int64
	// Messages is the number of unique algorithm messages routed.
	Messages int64
	// Processed is the per-node count of messages processed, indexed by
	// variable.
	Processed []int64
	// Report is the stall watchdog's classification of the stuck run —
	// stalled (no traffic), livelock (traffic without search progress), or
	// converging (slow, not stuck) — with per-agent progress deltas. Nil
	// only when the run died before the watchdog gathered two samples.
	Report *progress.Report
}

func (e *TimeoutError) Error() string {
	s := fmt.Sprintf("netrun: run timed out after %v: %d messages in flight, %d routed, per-node processed %v",
		e.Timeout, e.InFlight, e.Messages, e.Processed)
	if e.Report != nil {
		s += "; " + e.Report.String()
	}
	return s
}

func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// Options configures a run.
type Options struct {
	// Timeout bounds the wall-clock run; 0 means 30s.
	Timeout time.Duration
	// Faults, when non-nil, makes the hub an adversarial network for
	// algorithm frames — deterministic per-link drop, duplication, and
	// bounded delay — and schedules node crashes. Control frames (hello,
	// state, stop) and acks are exempt: faults attack the data plane the
	// reliable protocol defends, not the test harness's instrumentation.
	Faults *faults.Config
	// WatchdogCadence is the stall watchdog's sampling period; 0 means
	// progress.DefaultCadence. Samples also land in the telemetry stream
	// when one is attached.
	WatchdogCadence time.Duration
	// Telemetry, when non-nil, receives the run's event stream (watchdog
	// samples, per-agent totals, per-link seq/ack/retransmit/partition
	// counters and per-shard relay totals observed at the hub) and metrics.
	// Nil disables all instrumentation without any other behavioral
	// difference.
	Telemetry *telemetry.Run
	// Causal, when non-nil, traces the in-process nodes: one span per step,
	// trace IDs on every message (carried across the sockets in
	// Envelope.TSeq, negotiated per connection like Crc). Agent tracer
	// handles survive crash-restarts and reconnections, so cause IDs stay
	// stable across incarnations and link resets. Ignored (hub-side) under
	// External; set CausalRelay there instead.
	Causal *causal.Tracer
	// CausalRelay lets the hub confirm causal negotiation with external
	// workers that request it, so their trace IDs relay through even though
	// the hub itself holds no tracer. Without it (and without Causal) every
	// welcome declines, and traced workers degrade to untraced links.
	CausalRelay bool

	// Shards is the number of relay listeners the hub splits its socket
	// plane across; 0 or 1 means a single listener. Node v connects to
	// shard v mod Shards. Sharding changes no routing decision: the verdict
	// and every message counter are identical across shard counts.
	Shards int
	// Codec is the wire codec the hub offers (zero value = binary). A node
	// requesting JSON always gets it — negotiation falls back per
	// connection — and CodecJSON here forces the fallback hub-wide.
	Codec wire.Codec
	// NoBatch disables frame batching on hub and in-process node writers;
	// every frame is written and flushed individually, the pre-batching
	// behavior.
	NoBatch bool
	// Listen binds each relay to a fixed address ("host:port") instead of a
	// loopback ephemeral port; required for external worker processes on
	// known addresses. When non-empty it determines the shard count, which
	// must match Shards if both are set.
	Listen []string
	// External suppresses the in-process nodes: the hub listens, and
	// external workers (RunWorker / cmd/dcspnode) own the agents. The run
	// then solves only once every variable's worker has dialed in.
	External bool
	// Heartbeat is the liveness beacon period: the hub beats every
	// registered connection and expects some traffic (a beat at minimum)
	// from every node within DeadPeerTimeout. 0 means 500ms; negative
	// disables liveness entirely.
	Heartbeat time.Duration
	// DeadPeerTimeout is how long a registered node may stay silent before
	// the hub declares it dead — severing the connection and starting the
	// reconnect grace clock on external runs, recording a heartbeat timeout
	// for the watchdog either way. 0 means 4× the heartbeat period.
	DeadPeerTimeout time.Duration
	// ReconnectGrace is how long the hub parks an unreachable node's
	// frames awaiting its re-hello before failing the run with ErrNodeDown.
	// 0 means 3s; negative fails immediately on the first failed write
	// (the pre-reconnection behavior). Nodes the fault schedule will
	// restart are exempt — their frames park until the scheduled rejoin.
	ReconnectGrace time.Duration
	// Checksum arms the CRC32C frame trailer on binary connections whose
	// hello requests it: every steady-state frame carries a 4-byte trailer,
	// and a frame damaged in flight is detected, dropped, and recovered by
	// the sender's retransmission instead of corrupting the decode.
	Checksum bool
	// OnListen, when non-nil, is called once with the bound relay addresses
	// in shard order, before any node starts. Tests and in-process callers
	// use it to learn ephemeral addresses; cmd binaries print them.
	OnListen func(addrs []string)
}

// Result reports a completed run.
type Result struct {
	// Solved reports whether the hub observed a solution snapshot.
	Solved bool
	// Insoluble reports that some agent derived the empty nogood.
	Insoluble bool
	// Quiescent reports that no messages were left in flight.
	Quiescent bool
	// Assignment is the last (or solving) snapshot.
	Assignment csp.SliceAssignment
	// Messages counts unique routed algorithm messages (retransmissions,
	// duplicates, and control frames excluded).
	Messages int64
	// TotalChecks sums constraint checks across the in-process nodes' final
	// incarnations. Zero when Options.External (the workers own the
	// agents).
	TotalChecks int64
	// Duration is the wall-clock run time.
	Duration time.Duration

	// Retransmits counts frames the nodes retransmitted because no ack
	// arrived in time.
	Retransmits int64
	// DuplicatesSuppressed counts frames the nodes discarded as duplicates
	// (injected copies and spurious retransmissions).
	DuplicatesSuppressed int64
	// Restarts counts nodes that crashed and rejoined from a checkpoint.
	Restarts int64
	// Reconnects counts re-hellos: node connections the hub replaced
	// mid-run, whether from a checkpoint restart, a worker redial after a
	// severed socket, or a cold process relaunch.
	Reconnects int64
	// HeartbeatTimeouts counts dead-peer declarations: registered nodes
	// that went silent past DeadPeerTimeout.
	HeartbeatTimeouts int64
	// CorruptFrames counts frames rejected by the CRC32C trailer —
	// injected by the fault schedule or damaged in flight — and recovered
	// by retransmission. Sums the hub's readers and the in-process nodes';
	// external workers count their own.
	CorruptFrames int64
	// Partitioned counts frames intercepted at a partition cut (held to the
	// heal, or killed by a never-healing window).
	Partitioned int64
	// PartitionHeals counts scheduled partition windows that healed within
	// the run's duration.
	PartitionHeals int64

	// BytesSent and BytesRecv count wire bytes crossing the hub's sockets
	// (framing included): hub→nodes and nodes→hub respectively.
	BytesSent int64
	BytesRecv int64
	// BatchedFrames counts frames that crossed the hub's sockets inside
	// coalesced batch frames, both directions summed.
	BatchedFrames int64
	// BinaryConns counts node connections whose negotiated codec was
	// binary; the rest fell back to JSON.
	BinaryConns int64
}

// Reliable-transport tuning for the node loops. The base exceeds loopback
// round-trip by orders of magnitude, so retransmissions fire only under
// injected loss (or a genuinely dead peer), not under scheduling noise.
const (
	retransmitBase = 10 * time.Millisecond
	retransmitCap  = 160 * time.Millisecond
	retransmitTick = 5 * time.Millisecond
)

// Liveness defaults: the hub and every node beat their links each
// defaultHeartbeat of idleness, a peer silent for 4 heartbeats is declared
// dead, and a dead external node's frames park for defaultReconnectGrace
// awaiting its re-hello before the run fails with ErrNodeDown.
const (
	defaultHeartbeat      = 500 * time.Millisecond
	defaultReconnectGrace = 3 * time.Second
)

// Frame-batching bounds for hub and node writers. Latency is bounded by
// flush-on-idle (senders flush whenever their queue drains), so the size
// bounds only matter under sustained load.
const (
	batchMaxFrames = 32
	batchMaxBytes  = 16 << 10
)

// inFrame is one envelope arriving at the hub, tagged with the connection
// it came in on (set by the shard read loops, consumed by the route loop to
// register connections and count inter-shard forwards).
type inFrame struct {
	env wire.Envelope
	src *relayConn
}

// nodeCounters aggregates transport statistics across all node goroutines
// and incarnations of one run.
type nodeCounters struct {
	retransmits atomic.Int64
	dups        atomic.Int64
	restarts    atomic.Int64
	reconnects  atomic.Int64
	corrupt     atomic.Int64

	// Per-agent end-of-run totals, written by each node's final incarnation
	// as it exits and read after nodeWG.Wait. checks is always allocated
	// (Result.TotalChecks needs it); stores only when telemetry is on.
	checks []atomic.Int64
	stores []atomic.Int64
}

// instrumented is implemented by agents whose nogood store accepts
// telemetry hooks (core, abt, breakout).
type instrumented interface {
	Instrument(telemetry.StoreMetrics)
}

// storeSizer is implemented by agents exposing their nogood-store size.
type storeSizer interface{ StoreSize() int }

// Run executes one agent node per problem variable against a loopback TCP
// hub. makeAgent builds the algorithm-specific agent per variable; it is
// also how a crashed node's new incarnation is built before its checkpoint
// is restored.
func Run(problem *csp.Problem, makeAgent func(v csp.Var) sim.Agent, opts Options) (Result, error) {
	n := problem.NumVars()
	if n == 0 {
		return Result{Solved: true, Assignment: csp.SliceAssignment{}}, nil
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cadence := opts.WatchdogCadence
	if cadence <= 0 {
		cadence = progress.DefaultCadence
	}
	nShards := opts.Shards
	if len(opts.Listen) > 0 {
		if nShards > 0 && nShards != len(opts.Listen) {
			return Result{}, fmt.Errorf("netrun: %d shards but %d listen addresses", nShards, len(opts.Listen))
		}
		nShards = len(opts.Listen)
	}
	if nShards <= 0 {
		nShards = 1
	}
	if len(opts.Listen) == 0 && nShards > n {
		nShards = n
	}
	var inj *faults.Injector
	var ckpts *faults.Checkpoints
	if opts.Faults != nil {
		inj = faults.New(*opts.Faults)
		ckpts = faults.NewCheckpoints()
	}
	heartbeat := opts.Heartbeat
	if heartbeat == 0 {
		heartbeat = defaultHeartbeat
	}
	if heartbeat < 0 {
		heartbeat = 0 // liveness off
	}
	deadPeer := opts.DeadPeerTimeout
	if deadPeer <= 0 {
		deadPeer = 4 * heartbeat
	}
	grace := opts.ReconnectGrace
	if grace == 0 {
		grace = defaultReconnectGrace
	}

	relays := make([]*relay, nShards)
	addrs := make([]string, nShards)
	for s := range relays {
		bind := "127.0.0.1:0"
		if len(opts.Listen) > 0 {
			bind = opts.Listen[s]
		}
		ln, err := net.Listen("tcp", bind)
		if err != nil {
			for _, r := range relays[:s] {
				r.ln.Close()
			}
			return Result{}, fmt.Errorf("netrun: listen shard %d: %w", s, err)
		}
		relays[s] = &relay{index: s, ln: ln}
		addrs[s] = ln.Addr().String()
	}
	defer func() {
		for _, r := range relays {
			r.ln.Close()
		}
	}()

	hub := &hub{
		problem:   problem,
		values:    csp.NewSliceAssignment(n),
		conns:     make([]*relayConn, n),
		processed: make([]int64, n),
		seqHigh:   make(map[link]int64),
		frames:    make(chan inFrame, n),
		stop:      make(chan struct{}),
		inj:       inj,
		cadence:   cadence,
		tel:       opts.Telemetry,
		codec:     opts.Codec,
		noBatch:   opts.NoBatch,
		nShards:   nShards,
		forwarded: make([]int64, nShards),

		heartbeat:      heartbeat,
		deadPeer:       deadPeer,
		reconnectGrace: grace,
		checksum:       opts.Checksum,
		causalOn:       opts.Causal != nil || opts.CausalRelay,
		external:       opts.External,
		lastSeen:       make([]time.Time, n),
		deadNotified:   make([]bool, n),
		everRegistered: make([]bool, n),
		down:           make(map[int]time.Time),
		resetPending:   make(map[[2]int]bool),
	}
	if inj != nil {
		hub.attempts = make(map[attemptKey]int)
	}
	ctr := nodeCounters{checks: make([]atomic.Int64, n)}
	if hub.tel != nil {
		hub.ackHigh = make(map[link]int64)
		hub.linkRetrans = make(map[link]int64)
		hub.linkPart = make(map[link]int64)
		ctr.stores = make([]atomic.Int64, n)
	}
	if reg := opts.Telemetry.Registry(); reg != nil && !opts.External {
		// The nodes run in-process, so instrumented agents share the hub's
		// registry; the gauges are atomics, letting the route loop sample
		// live store sizes without touching node state. Resolve them up
		// front and wrap makeAgent so restarted incarnations re-attach.
		hub.storeGauges = make([]*telemetry.Gauge, n)
		metrics := make([]telemetry.StoreMetrics, n)
		for v := 0; v < n; v++ {
			label := strconv.Itoa(v)
			hub.storeGauges[v] = reg.Gauge(telemetry.Name("discsp_store_nogoods", "agent", label))
			metrics[v] = telemetry.StoreMetrics{
				Size:      hub.storeGauges[v],
				Lengths:   reg.Histogram(telemetry.Name("discsp_learned_nogood_len", "agent", label), telemetry.NogoodLenBuckets),
				Evictions: reg.Counter(telemetry.Name("discsp_store_evictions", "agent", label)),
			}
		}
		orig := makeAgent
		makeAgent = func(v csp.Var) sim.Agent {
			a := orig(v)
			if ia, ok := a.(instrumented); ok {
				ia.Instrument(metrics[v])
			}
			return a
		}
	}

	// Accept connections for the whole run on every relay: restarted nodes
	// and late external workers dial back in.
	var readWG, acceptWG sync.WaitGroup
	for _, r := range relays {
		acceptWG.Add(1)
		go func(r *relay) {
			defer acceptWG.Done()
			hub.acceptLoop(r, &readWG)
		}(r)
	}
	if opts.OnListen != nil {
		opts.OnListen(addrs)
	}

	// Start the in-process nodes; each supervisor restarts its node per the
	// crash schedule. External runs leave the agents to worker processes.
	runDone := make(chan struct{})
	var nodeWG sync.WaitGroup
	nodeErrs := make(chan error, n)
	if !opts.External {
		for v := 0; v < n; v++ {
			nodeWG.Add(1)
			go func(v int) {
				defer nodeWG.Done()
				cfg := nodeConfig{
					addr:      addrs[shardOf(v, nShards)],
					v:         csp.Var(v),
					makeAgent: makeAgent,
					codec:     opts.Codec,
					noBatch:   opts.NoBatch,
					crc:       opts.Checksum,
					causal:    opts.Causal,
					hb:        heartbeat,
					inj:       inj,
					ckpts:     ckpts,
					ctr:       &ctr,
					done:      runDone,
				}
				for incarnation := 0; ; incarnation++ {
					crashed, err := runNode(cfg, incarnation)
					if err != nil {
						nodeErrs <- fmt.Errorf("node %d: %w", v, err)
						return
					}
					if !crashed {
						return
					}
					cr, _ := inj.Crash(v)
					if !cr.Restart {
						return
					}
					select {
					case <-time.After(cr.RestartDelay):
					case <-runDone:
						return
					}
					ctr.restarts.Add(1)
				}
			}(v)
		}
	}

	start := time.Now()
	hub.start = start
	res, rerr := hub.route(timeout)
	res.Duration = time.Since(start)

	// Shut down: tell every registered node to stop, then close sockets
	// (including accepted-but-unregistered ones, so no node blocks on a
	// read forever).
	close(runDone)
	hub.broadcastStop()
	for _, r := range relays {
		r.ln.Close()
	}
	hub.connMu.Lock()
	for _, rc := range hub.allConns {
		rc.conn.Close()
	}
	hub.connMu.Unlock()
	nodeWG.Wait()
	readWG.Wait()
	acceptWG.Wait()
	close(nodeErrs)

	res.Retransmits = ctr.retransmits.Load()
	res.DuplicatesSuppressed = ctr.dups.Load()
	res.Restarts = ctr.restarts.Load()
	res.Reconnects = hub.reconnects
	res.HeartbeatTimeouts = hub.hbTimeouts
	res.Partitioned = hub.partitioned
	res.PartitionHeals = inj.HealedBy(res.Duration)
	res.BinaryConns = hub.binaryConns
	for v := range ctr.checks {
		res.TotalChecks += ctr.checks[v].Load()
	}
	// Every accept, read, and node goroutine has exited: the per-connection
	// stream counters are quiescent.
	res.CorruptFrames = ctr.corrupt.Load()
	for _, rc := range hub.allConns {
		res.BytesSent += rc.fw.BytesWritten
		res.BytesRecv += rc.fr.BytesRead
		res.BatchedFrames += rc.fw.BatchedFrames + rc.fr.BatchedFrames
		res.CorruptFrames += rc.fr.CorruptFrames
	}
	hub.emitFinal(res, &ctr)
	if res.Solved || res.Insoluble || res.Quiescent {
		return res, nil
	}
	// A node error is the root cause when one exists; otherwise the route
	// loop's own diagnostic (node unreachable or timeout) stands.
	for err := range nodeErrs {
		return res, err
	}
	if rerr == nil {
		rerr = ErrTimeout
	}
	return res, rerr
}

// link identifies one directed node-to-node channel.
type link struct {
	from, to int
}

// attemptKey identifies one delivery attempt stream at the hub.
type attemptKey struct {
	l   link
	seq int64
}

// delayedFrame is a frame the fault schedule holds back until at.
type delayedFrame struct {
	at  time.Time
	seq int64
	env wire.Envelope
}

// frameHeap orders delayed frames by due time, then arrival sequence.
type frameHeap []delayedFrame

func (h frameHeap) Len() int { return len(h) }

func (h frameHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h frameHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *frameHeap) Push(x any) { *h = append(*h, x.(delayedFrame)) }

func (h *frameHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// hub routes frames and watches for termination. Routing, fault injection,
// and every write are owned by the single-threaded route loop; the sharded
// relays only accept, read, and decode.
type hub struct {
	problem   *csp.Problem
	values    csp.SliceAssignment
	conns     []*relayConn
	processed []int64
	pending   map[int][]wire.Envelope
	seqHigh   map[link]int64
	attempts  map[attemptKey]int
	delayq    frameHeap
	delaySeq  int64
	frames    chan inFrame
	stop      chan struct{}
	inFlight  int64
	messages  int64
	inj       *faults.Injector

	// Liveness and reconnection state, all owned by the route loop.
	// heartbeat 0 disables the beacon; reconnectGrace < 0 restores the
	// immediate ErrNodeDown fail-fast.
	heartbeat      time.Duration
	deadPeer       time.Duration
	reconnectGrace time.Duration
	checksum       bool
	causalOn       bool
	external       bool
	lastSeen       []time.Time       // last inbound frame per node
	deadNotified   []bool            // dead-peer already counted (in-process runs)
	everRegistered []bool            // node has completed at least one hello
	down           map[int]time.Time // unreachable nodes: when the grace clock started
	// resetPending[{x, b}] marks that node x has not yet confirmed the
	// link reset for cold-restarted node b; until the echo arrives, x's
	// data and ack frames toward b still carry the old numbering and are
	// dropped (x keeps retransmitting, so nothing is lost).
	resetPending map[[2]int]bool
	reconnects   int64
	hbTimeouts   int64

	codec   wire.Codec
	noBatch bool
	nShards int
	// dirty tracks connections with unflushed writes; the route loop
	// flushes them whenever its queue drains, which is the batching
	// deadline bound.
	dirty []*relayConn
	// forwarded counts frames that arrived on one shard's relay bound for a
	// node homed on another shard, indexed by the arrival shard. The route
	// loop sees every frame exactly once, so a forwarded frame can never be
	// double-counted into messages or the retransmit/duplicate counters.
	forwarded   []int64
	binaryConns int64

	// allConns is every accepted connection (including replaced ones after
	// a crash), appended by the accept loops and swept for byte totals
	// after all I/O goroutines exit.
	connMu   sync.Mutex
	allConns []*relayConn

	start       time.Time // run start; partition windows are offsets from it
	partitioned int64

	cadence     time.Duration
	tel         *telemetry.Run
	storeGauges []*telemetry.Gauge
	// Per-link counters observed at the hub, keyed by the data link
	// (sender → receiver); touched only on the single-threaded route loop
	// and only when telemetry is attached.
	ackHigh     map[link]int64
	linkRetrans map[link]int64
	linkPart    map[link]int64
}

// emitFinal records the run's totals after every node has stopped: one
// agent event per variable (final-incarnation check totals and store
// sizes from the node goroutines, processed counts from the hub), one link
// event per directed link the hub routed, one shard event per relay, and
// the delivery/check/transport counters. No-op without telemetry.
func (h *hub) emitFinal(res Result, ctr *nodeCounters) {
	if h.tel == nil {
		return
	}
	reg := h.tel.Registry()
	for v := range h.processed {
		ev := telemetry.Event{
			Kind:           telemetry.KindAgent,
			Agent:          v,
			AgentProcessed: h.processed[v],
			Checks:         ctr.checks[v].Load(),
		}
		if ctr.stores != nil {
			ev.StoreSize = ctr.stores[v].Load()
		}
		h.tel.Emit(ev)
	}
	links := make([]link, 0, len(h.seqHigh))
	for k := range h.seqHigh {
		links = append(links, k)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].from != links[j].from {
			return links[i].from < links[j].from
		}
		return links[i].to < links[j].to
	})
	for _, k := range links {
		h.tel.Emit(telemetry.Event{
			Kind:        telemetry.KindLink,
			From:        k.from,
			To:          k.to,
			SeqHigh:     h.seqHigh[k],
			AckHigh:     h.ackHigh[k],
			Retransmits: h.linkRetrans[k],
			Partitioned: h.linkPart[k],
		})
	}
	for s := 0; s < h.nShards; s++ {
		ev := telemetry.Event{Kind: telemetry.KindShard, Shard: s, Forwarded: h.forwarded[s]}
		for _, rc := range h.allConns {
			if rc.shard == s {
				ev.FramesIn += rc.fr.Frames
				ev.BytesIn += rc.fr.BytesRead
				ev.BytesOut += rc.fw.BytesWritten
			}
		}
		h.tel.Emit(ev)
	}
	reg.Counter("discsp_deliveries_total").Add(res.Messages)
	reg.Counter("discsp_checks_total").Add(res.TotalChecks)
	telemetry.Transport{
		Retransmits:          res.Retransmits,
		DuplicatesSuppressed: res.DuplicatesSuppressed,
		Restarts:             res.Restarts,
		Partitioned:          res.Partitioned,
		PartitionHeals:       res.PartitionHeals,
		Reconnects:           res.Reconnects,
		HeartbeatTimeouts:    res.HeartbeatTimeouts,
		CorruptFrames:        res.CorruptFrames,
		BytesSent:            res.BytesSent,
		BytesRecv:            res.BytesRecv,
		BatchedFrames:        res.BatchedFrames,
	}.Record(reg)
}

// route is the hub's single-threaded event loop. All timers are managed
// (reused and stopped on every path) rather than per-iteration time.After
// allocations, which leaked a timer per loop when another case fired.
func (h *hub) route(timeout time.Duration) (Result, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	probe := time.NewTimer(time.Hour)
	probe.Stop()
	defer probe.Stop()
	delayT := time.NewTimer(time.Hour)
	delayT.Stop()
	defer delayT.Stop()
	wd := progress.NewWatchdog()
	watch := time.NewTicker(h.cadence)
	defer watch.Stop()
	hbPeriod := h.heartbeat
	if hbPeriod <= 0 {
		hbPeriod = time.Hour // liveness off; the ticker still must exist
	}
	hb := time.NewTicker(hbPeriod)
	defer hb.Stop()

	// Quiescence cannot be declared from in-flight counting alone until
	// every node has reported in at least once.
	reported := make(map[int]bool, len(h.values))
	for {
		// The queue is (about to be) idle: push every buffered write to the
		// sockets. This is the batching deadline bound — batches never wait
		// on a timer, only on the loop having more frames to route.
		if len(h.frames) == 0 && len(h.dirty) > 0 {
			if err := h.flushDirty(); err != nil {
				return Result{Assignment: h.snapshot(), Messages: h.messages}, err
			}
		}
		var delayC <-chan time.Time
		if len(h.delayq) > 0 {
			delayT.Reset(time.Until(h.delayq[0].at))
			delayC = delayT.C
		}
		// Quiescence: all nodes reported, nothing in flight, nothing queued
		// or held back. The probe re-checks after a grace period; a stale
		// timer tick is harmless because the condition is re-evaluated.
		var probeC <-chan time.Time
		if len(reported) == len(h.values) && h.inFlight == 0 && len(h.frames) == 0 && len(h.delayq) == 0 {
			probe.Reset(10 * time.Millisecond)
			probeC = probe.C
		}
		select {
		case f := <-h.frames:
			done, res, err := h.handle(f, reported)
			if err != nil {
				return Result{Assignment: h.snapshot(), Messages: h.messages}, err
			}
			if done {
				return res, nil
			}
		case <-delayC:
			now := time.Now()
			for len(h.delayq) > 0 && !h.delayq[0].at.After(now) {
				df := heap.Pop(&h.delayq).(delayedFrame)
				// A held frame popping mid-window (an injected duplicate, or
				// an overlapping later window) goes back behind the cut.
				if h.partitionHold(df.env) {
					continue
				}
				if err := h.send(df.env); err != nil {
					return Result{Assignment: h.snapshot(), Messages: h.messages}, err
				}
			}
		case <-probeC:
			if h.inFlight == 0 && len(h.frames) == 0 && len(h.delayq) == 0 {
				return Result{Quiescent: true, Assignment: h.snapshot(), Messages: h.messages}, nil
			}
		case now := <-hb.C:
			if err := h.liveness(now); err != nil {
				return Result{Assignment: h.snapshot(), Messages: h.messages}, err
			}
		case now := <-watch.C:
			h.observe(wd, now)
			if err := h.expireGrace(now); err != nil {
				return Result{Assignment: h.snapshot(), Messages: h.messages}, err
			}
		case <-deadline.C:
			now := time.Now()
			h.observe(wd, now) // final sample so the report is current
			rep := wd.Report(now)
			if rep != nil {
				rep.Down = h.downList(now)
			}
			te := &TimeoutError{
				Timeout:   timeout,
				InFlight:  h.inFlight,
				Messages:  h.messages,
				Processed: append([]int64(nil), h.processed...),
				Report:    rep,
			}
			return Result{Assignment: h.snapshot(), Messages: h.messages}, te
		}
		probe.Stop()
		delayT.Stop()
	}
}

// handle processes one frame; done reports a terminal state. A non-nil
// error means a node is unreachable and not coming back.
func (h *hub) handle(f inFrame, reported map[int]bool) (bool, Result, error) {
	e := f.env
	if e.From >= 0 && e.From < len(h.lastSeen) && e.Type != wire.TypeHello {
		h.noteSeen(e.From)
	}
	switch e.Type {
	case wire.TypeHello:
		if e.From >= 0 && e.From < len(h.conns) {
			if err := h.register(f.src, e); err != nil {
				return false, Result{}, err
			}
		}
		return false, Result{}, nil
	case wire.TypeHeartbeat:
		// Pure liveness: the side effect is the noteSeen above.
		return false, Result{}, nil
	case wire.TypeReset:
		// A node confirming it reset its links with a cold-restarted peer;
		// its renumbered frames may flow again. The echo is not forwarded.
		delete(h.resetPending, [2]int{e.From, e.To})
		return false, Result{}, nil
	case wire.TypeState:
		reported[e.From] = true
		if e.From >= 0 && e.From < len(h.values) {
			h.values[e.From] = csp.Value(e.Value)
			h.processed[e.From] += int64(e.Processed)
		}
		h.inFlight -= int64(e.Processed)
		if e.Insoluble {
			return true, Result{Insoluble: true, Assignment: h.snapshot(), Messages: h.messages}, nil
		}
		if h.problem.IsSolution(h.values) {
			return true, Result{Solved: true, Assignment: h.snapshot(), Messages: h.messages}, nil
		}
		return false, Result{}, nil
	case wire.TypeAck:
		// Exempt from drop/dup/delay injection (control plane), but not
		// from a partition: a cut severs acknowledgements like any other
		// node-to-node traffic, which is what keeps the far side
		// retransmitting until the heal.
		h.noteForward(f)
		if h.stale(f) || h.resetPending[[2]int{e.From, e.To}] {
			// A dead incarnation's late ack, or an ack predating a link
			// reset: its cumulative watermark is in the old numbering and
			// would falsely acknowledge the renumbered stream.
			return false, Result{}, nil
		}
		if h.tel != nil {
			// The ack travels receiver → sender; record it against the
			// data link it acknowledges.
			dl := link{from: e.To, to: e.From}
			if e.Ack > h.ackHigh[dl] {
				h.ackHigh[dl] = e.Ack
			}
		}
		if h.partitionHold(e) {
			return false, Result{}, nil
		}
		return false, Result{}, h.send(e)
	}
	// Algorithm frame. Count each unique (link, seq) exactly once — before
	// the drop decision, because a dropped message is still in flight (the
	// sender retransmits it until acked).
	if e.To < 0 || e.To >= len(h.conns) {
		return false, Result{}, nil
	}
	h.noteForward(f)
	if h.stale(f) || h.resetPending[[2]int{e.From, e.To}] {
		// Late frames from a replaced connection, or frames stamped before
		// the sender processed a link reset: the old numbering is
		// meaningless now, and the live connection retransmits anything
		// unacked — drop before any counting.
		return false, Result{}, nil
	}
	k := link{from: e.From, to: e.To}
	if e.Seq > h.seqHigh[k] {
		h.seqHigh[k] = e.Seq
		h.messages++
		h.inFlight++
	} else if h.tel != nil && e.Seq > 0 {
		// A seq at or below the link's high-water mark is a retransmitted
		// (or injected-duplicate) copy arriving at the hub.
		h.linkRetrans[k]++
	}
	if h.partitionHold(e) {
		return false, Result{}, nil
	}
	if h.inj != nil && e.Seq > 0 {
		ak := attemptKey{l: k, seq: e.Seq}
		attempt := h.attempts[ak]
		h.attempts[ak] = attempt + 1
		if h.inj.Dropped(e.From, e.To, e.Seq, attempt) {
			return false, Result{}, nil
		}
		if h.inj.Corrupted(e.From, e.To, e.Seq, attempt) {
			return false, Result{}, h.corruptSend(e)
		}
		if attempt == 0 && h.inj.Duplicated(e.From, e.To, e.Seq) {
			h.schedule(e, time.Now().Add(h.inj.Delay(e.From, e.To, e.Seq, 1)))
		}
		if d := h.inj.Delay(e.From, e.To, e.Seq, 0); d > 0 {
			h.schedule(e, time.Now().Add(d))
			return false, Result{}, nil
		}
	}
	return false, Result{}, h.send(e)
}

// register completes one node's handshake on the route loop: reply with the
// negotiated codec and checksum decision (still in JSON, the handshake
// encoding), switch the writer, enable batching, record the connection, and
// drain any frames that queued while the node was unregistered (the node's
// reorder buffer handles staleness). A re-hello replaces the node's old
// connection; one without the resume flag is a cold process relaunch, which
// additionally resets the node's links everywhere (see coldReset).
func (h *hub) register(rc *relayConn, hello wire.Envelope) error {
	from := hello.From
	neg, err := wire.ParseCodec(hello.Codec)
	if err != nil {
		neg = wire.CodecJSON // unknown request: the safe common ground
	}
	crcOn := h.checksum && hello.Crc && neg == wire.CodecBinary
	causalOn := h.causalOn && hello.Causal
	welcome := wire.Envelope{Type: wire.TypeWelcome, To: from, Codec: neg.String(), Crc: crcOn, Causal: causalOn}
	if err := rc.fw.Send(&welcome); err != nil {
		return h.writeFailed(rc, from, err)
	}
	if err := rc.fw.SetCodec(neg); err != nil {
		return h.writeFailed(rc, from, err)
	}
	if crcOn {
		rc.fw.EnableChecksum()
		rc.crcOn = true
	}
	if causalOn {
		// Trace IDs relay through: frames toward this node keep TSeq.
		rc.fw.EnableCausal()
	}
	if !h.noBatch {
		rc.fw.EnableBatching(batchMaxFrames, batchMaxBytes)
	}
	if neg == wire.CodecBinary {
		h.binaryConns++
	}
	rc.node = from
	old := h.conns[from]
	h.conns[from] = rc
	h.noteSeen(from)
	delete(h.down, from)
	if h.everRegistered[from] {
		h.reconnects++
		if old != nil && old != rc {
			old.conn.Close()
		}
		if !hello.Resume {
			if err := h.coldReset(from); err != nil {
				return err
			}
		}
	}
	h.everRegistered[from] = true
	h.markDirty(rc)
	queued := h.pending[from]
	delete(h.pending, from)
	for _, q := range queued {
		if err := h.send(q); err != nil {
			return err
		}
	}
	return nil
}

// coldReset handles a node rejoining without any in-memory or checkpointed
// state (a relaunched worker process): everything keyed on b's old sequence
// numbering is discarded — parked and delayed frames, seq high-water marks,
// fault attempt counts — and every other registered node is told to reset
// both halves of its links with b (renumbering its unacked frames from 1)
// and echo. Until a peer echoes, its frames toward b are dropped. The
// in-flight ledger keeps whatever b's dead incarnation never processed, so
// quiescence detection is conservatively unavailable after a cold restart;
// solution and insolubility detection are unaffected.
func (h *hub) coldReset(b int) error {
	delete(h.pending, b)
	if len(h.delayq) > 0 {
		kept := h.delayq[:0]
		for _, df := range h.delayq {
			if df.env.From != b && df.env.To != b {
				kept = append(kept, df)
			}
		}
		h.delayq = kept
		heap.Init(&h.delayq)
	}
	for k := range h.seqHigh {
		if k.from == b || k.to == b {
			delete(h.seqHigh, k)
		}
	}
	for k := range h.attempts {
		if k.l.from == b || k.l.to == b {
			delete(h.attempts, k)
		}
	}
	for k := range h.resetPending {
		// b's own links are fresh; any reset it owed a previously restarted
		// peer is moot.
		if k[0] == b {
			delete(h.resetPending, k)
		}
	}
	for x, ever := range h.everRegistered {
		if x == b || !ever {
			continue
		}
		h.resetPending[[2]int{x, b}] = true
		if err := h.send(wire.Envelope{Type: wire.TypeReset, From: b, To: x}); err != nil {
			return err
		}
	}
	return nil
}

// noteSeen records inbound traffic from a node for dead-peer detection.
func (h *hub) noteSeen(node int) {
	h.lastSeen[node] = time.Now()
	h.deadNotified[node] = false
}

// noteDown starts (or continues) a node's reconnect grace clock.
func (h *hub) noteDown(node int) {
	if _, ok := h.down[node]; !ok {
		h.down[node] = time.Now()
	}
}

// downList returns the nodes currently considered unreachable, sorted.
func (h *hub) downList(now time.Time) []int {
	var out []int
	for node := range h.down {
		out = append(out, node)
	}
	if h.deadPeer > 0 {
		for node, rc := range h.conns {
			if rc != nil && !h.lastSeen[node].IsZero() && now.Sub(h.lastSeen[node]) > h.deadPeer {
				out = append(out, node)
			}
		}
	}
	sort.Ints(out)
	return out
}

// stale reports a frame arriving on a connection the hub has already
// replaced — a late read from a dead incarnation's socket. Its sequence
// numbering may predate a link reset, so data and acks from it are dropped;
// the live connection retransmits anything that mattered.
func (h *hub) stale(f inFrame) bool {
	from := f.env.From
	if f.src == nil || from < 0 || from >= len(h.conns) {
		return false
	}
	cur := h.conns[from]
	return cur != nil && cur != f.src
}

// liveness is the heartbeat tick: expire reconnect grace windows, declare
// silent peers dead, and beat every registered connection so the nodes'
// hub-silence detectors stay fed.
func (h *hub) liveness(now time.Time) error {
	if err := h.expireGrace(now); err != nil {
		return err
	}
	for node, rc := range h.conns {
		if rc == nil {
			continue
		}
		if h.deadPeer > 0 && !h.lastSeen[node].IsZero() && now.Sub(h.lastSeen[node]) > h.deadPeer {
			if h.external {
				// A dead worker: sever the socket so its eventual relaunch
				// re-registers cleanly, and start the grace clock.
				h.hbTimeouts++
				rc.conn.Close()
				h.conns[node] = nil
				h.noteDown(node)
				continue
			}
			// In-process nodes share our fate; a silent one is a stuck
			// goroutine worth counting (once) and reporting, not severing.
			if !h.deadNotified[node] {
				h.deadNotified[node] = true
				h.hbTimeouts++
			}
		}
		beat := wire.Envelope{Type: wire.TypeHeartbeat, From: -1, To: node}
		if err := rc.fw.Send(&beat); err != nil {
			if h.survivableDown(node, rc) {
				continue
			}
			return fmt.Errorf("heartbeat to node %d failed: %v: %w", node, err, ErrNodeDown)
		}
		h.markDirty(rc)
	}
	return nil
}

// expireGrace fails the run once an unreachable node has overstayed the
// reconnect grace window.
func (h *hub) expireGrace(now time.Time) error {
	if h.reconnectGrace < 0 {
		return nil
	}
	for node, since := range h.down {
		if now.Sub(since) > h.reconnectGrace {
			return fmt.Errorf("node %d unreachable for %v awaiting reconnection: %w",
				node, now.Sub(since).Round(time.Millisecond), ErrNodeDown)
		}
	}
	return nil
}

// noteForward counts a node-to-node frame whose destination is homed on a
// different shard than the relay it arrived on. Counting happens here, on
// the frame's single pass through the route loop, so inter-shard forwarding
// can never inflate messages, retransmit, or duplicate counters.
func (h *hub) noteForward(f inFrame) {
	if h.nShards > 1 && f.src != nil && f.env.To >= 0 &&
		f.src.shard != shardOf(f.env.To, h.nShards) {
		h.forwarded[f.src.shard]++
	}
}

// schedule holds e back until at.
func (h *hub) schedule(e wire.Envelope, at time.Time) {
	h.delaySeq++
	heap.Push(&h.delayq, delayedFrame{at: at, seq: h.delaySeq, env: e})
}

// observe feeds the stall watchdog one sample of the hub's counters and
// tees the same sample into the telemetry stream, so healthy runs record
// frontier-hash progress too. The frontier hash covers the nodes' published
// values — what the hub can see of search progress.
func (h *hub) observe(wd *progress.Watchdog, now time.Time) {
	words := make([]int64, len(h.values))
	var delivered int64
	for i, v := range h.values {
		words[i] = int64(v)
	}
	for _, p := range h.processed {
		delivered += p
	}
	frontier := progress.Hash64(words...)
	wd.Observe(progress.Sample{
		At:        now,
		Delivered: delivered,
		InFlight:  h.inFlight,
		Processed: h.processed, // Observe copies
		Frontier:  frontier,
	})
	if h.tel == nil {
		return
	}
	var storeTotal int64
	for _, g := range h.storeGauges {
		storeTotal += g.Value()
	}
	h.tel.Emit(telemetry.Event{
		Kind:       telemetry.KindSample,
		ElapsedUS:  now.Sub(h.start).Microseconds(),
		Delivered:  delivered,
		InFlight:   h.inFlight,
		Processed:  append([]int64(nil), h.processed...),
		Frontier:   strconv.FormatUint(frontier, 16),
		StoreTotal: storeTotal,
		QueueDepth: int64(len(h.delayq)),
	})
}

// partitionHold applies the partition schedule to one node-to-node frame.
// A frame crossing an open cut is held at the hub until the window heals
// (the nodes' dedup layer absorbs the retransmitted copies that pile up
// behind it), or killed outright by a never-healing window — the message
// stays in flight, so the run cannot quiesce and the deadline reports the
// stall. It reports whether e was intercepted. This path is distinct from
// a dead node: partitioned traffic never reaches send()'s ErrNodeDown
// fail-fast, because the frame is parked before any socket write.
func (h *hub) partitionHold(e wire.Envelope) bool {
	if !h.inj.AnyPartition() {
		return false
	}
	cut, heal, heals := h.inj.PartitionedAt(e.From, e.To, time.Since(h.start))
	if !cut {
		return false
	}
	h.partitioned++
	if h.tel != nil {
		h.linkPart[link{from: e.From, to: e.To}]++
	}
	if heals {
		h.schedule(e, h.start.Add(heal))
	}
	return true
}

// send forwards a frame to its destination node, queueing it while the
// node is unregistered. A send failure parks the frame and awaits a
// re-hello when something can bring the node back — a scheduled
// crash-restart, or the reconnect grace window; otherwise the run fails
// fast with a diagnostic instead of idling to the timeout.
func (h *hub) send(e wire.Envelope) error {
	if e.To < 0 || e.To >= len(h.conns) {
		return nil
	}
	rc := h.conns[e.To]
	if rc == nil {
		h.queue(e)
		return nil
	}
	if err := rc.fw.Send(&e); err != nil {
		if h.survivableDown(e.To, rc) {
			h.queue(e)
			return nil
		}
		return fmt.Errorf("send of %s frame %d→%d (seq %d) failed: %v: %w",
			e.Type, e.From, e.To, e.Seq, err, ErrNodeDown)
	}
	h.markDirty(rc)
	return nil
}

// survivableDown deregisters a node's failed connection when something can
// bring the node back, and reports whether the run should keep going. A
// node the fault schedule will restart parks frames until its scheduled
// rejoin (no grace clock: the schedule's restart delay governs); otherwise
// a non-negative reconnect grace starts the clock expireGrace enforces.
func (h *hub) survivableDown(node int, rc *relayConn) bool {
	if node >= 0 && node < len(h.conns) && h.conns[node] == rc {
		h.conns[node] = nil
	}
	if h.inj.WillRestart(node) {
		return true
	}
	if h.reconnectGrace >= 0 {
		h.noteDown(node)
		return true
	}
	return false
}

// writeFailed classifies a non-Send write failure (welcome, codec switch,
// flush) on a node's connection: survivable when the node can come back —
// the connection is deregistered, frames queue for the re-hello, and
// anything batched on the dead socket is recovered by sender retransmission
// — fatal otherwise.
func (h *hub) writeFailed(rc *relayConn, node int, err error) error {
	if h.survivableDown(node, rc) {
		return nil
	}
	return fmt.Errorf("write to node %d failed: %v: %w", node, err, ErrNodeDown)
}

// corruptSend delivers a deliberately damaged copy of e: on a checksummed
// connection the frame is written with one payload bit flipped, so the
// receiver's CRC check rejects and counts it; without a trailer the damage
// would be undetectable, so the fault degrades to a drop. Either way the
// message stays in flight and the sender's retransmission recovers it.
func (h *hub) corruptSend(e wire.Envelope) error {
	rc := h.conns[e.To]
	if rc == nil || !rc.crcOn {
		return nil
	}
	if err := rc.fw.WriteCorrupted(&e); err != nil {
		if h.survivableDown(e.To, rc) {
			return nil // not queued: the retransmission re-attempts
		}
		return fmt.Errorf("corrupt delivery to node %d failed: %v: %w", e.To, err, ErrNodeDown)
	}
	h.markDirty(rc)
	return nil
}

// markDirty records that rc has buffered writes awaiting the idle flush.
func (h *hub) markDirty(rc *relayConn) {
	if !rc.dirty {
		rc.dirty = true
		h.dirty = append(h.dirty, rc)
	}
}

// flushDirty pushes every buffered batch and byte to the sockets.
func (h *hub) flushDirty() error {
	var failed error
	for i, rc := range h.dirty {
		h.dirty[i] = nil
		rc.dirty = false
		if err := rc.fw.Flush(); err != nil && failed == nil {
			// Only a connection still registered to a live node matters; a
			// replaced connection from a crashed incarnation flushes into
			// a closed socket harmlessly.
			if rc.node >= 0 && rc.node < len(h.conns) && h.conns[rc.node] == rc {
				failed = h.writeFailed(rc, rc.node, err)
			}
		}
	}
	h.dirty = h.dirty[:0]
	return failed
}

func (h *hub) queue(e wire.Envelope) {
	if h.pending == nil {
		h.pending = make(map[int][]wire.Envelope)
	}
	h.pending[e.To] = append(h.pending[e.To], e)
}

func (h *hub) snapshot() csp.SliceAssignment {
	cp := csp.NewSliceAssignment(len(h.values))
	copy(cp, h.values)
	return cp
}

func (h *hub) broadcastStop() {
	close(h.stop)
	for _, rc := range h.conns {
		if rc != nil {
			stop := wire.Envelope{Type: wire.TypeStop}
			_ = rc.fw.Send(&stop)
			_ = rc.fw.Flush()
		}
	}
}
