// Package netrun executes the distributed algorithms over an actual TCP
// network: one hub process-part routes JSON-framed messages (internal/wire)
// between agent nodes, each of which owns one agent and one TCP connection.
// It is the strongest form of the paper's portability claim exercised in
// this repository — the same Agent implementations that run on the
// synchronous simulator and the in-process asynchronous runtime here cross
// a real socket boundary, with the hub playing the network.
//
// The hub detects termination out-of-band, like the other runtimes: nodes
// attach a state report (current value, insolubility flag, processed
// count) after every step, letting the hub check for a solution snapshot,
// an insolubility proof, or quiescence (no messages in flight).
package netrun

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/wire"
)

// ErrTimeout is returned when the deadline expires before a terminal state.
var ErrTimeout = errors.New("netrun: run timed out")

// Options configures a run.
type Options struct {
	// Timeout bounds the wall-clock run; 0 means 30s.
	Timeout time.Duration
}

// Result reports a completed run.
type Result struct {
	// Solved reports whether the hub observed a solution snapshot.
	Solved bool
	// Insoluble reports that some agent derived the empty nogood.
	Insoluble bool
	// Quiescent reports that no messages were left in flight.
	Quiescent bool
	// Assignment is the last (or solving) snapshot.
	Assignment csp.SliceAssignment
	// Messages counts routed algorithm messages (control frames excluded).
	Messages int64
	// Duration is the wall-clock run time.
	Duration time.Duration
}

// control frame types, alongside the wire message types.
const (
	ctlHello = "ctl.hello"
	ctlState = "ctl.state"
	ctlStop  = "ctl.stop"
)

// frame is the union of wire envelopes and control frames exchanged on the
// sockets. Control fields piggyback on the envelope struct shape.
type frame struct {
	wire.Envelope
	Insoluble bool `json:"insoluble,omitempty"`
	Processed int  `json:"processed,omitempty"`

	// src is the connection the frame arrived on; set by the hub's read
	// loops, never serialized. The single-threaded route loop uses it to
	// register connections on hello frames.
	src *nodeConn `json:"-"`
}

// Run executes one agent node per problem variable against a loopback TCP
// hub. makeAgent builds the algorithm-specific agent per variable.
func Run(problem *csp.Problem, makeAgent func(v csp.Var) sim.Agent, opts Options) (Result, error) {
	n := problem.NumVars()
	if n == 0 {
		return Result{Solved: true, Assignment: csp.SliceAssignment{}}, nil
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, fmt.Errorf("netrun: listen: %w", err)
	}
	defer ln.Close()

	hub := &hub{
		problem: problem,
		values:  csp.NewSliceAssignment(n),
		conns:   make([]*nodeConn, n),
		frames:  make(chan frame, n),
		stop:    make(chan struct{}),
	}

	// Start the nodes; each dials the hub and runs its agent.
	var nodeWG sync.WaitGroup
	nodeErrs := make(chan error, n)
	for v := 0; v < n; v++ {
		nodeWG.Add(1)
		go func(v int) {
			defer nodeWG.Done()
			if err := runNode(ln.Addr().String(), csp.Var(v), makeAgent); err != nil {
				nodeErrs <- fmt.Errorf("node %d: %w", v, err)
			}
		}(v)
	}

	// Accept exactly n connections and attach reader goroutines.
	var readWG sync.WaitGroup
	for i := 0; i < n; i++ {
		conn, err := ln.Accept()
		if err != nil {
			close(hub.stop)
			nodeWG.Wait()
			return Result{}, fmt.Errorf("netrun: accept: %w", err)
		}
		nc := &nodeConn{conn: conn, w: bufio.NewWriter(conn)}
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			hub.readLoop(nc)
		}()
	}

	start := time.Now()
	res := hub.route(timeout)
	res.Duration = time.Since(start)

	// Shut down: tell every registered node to stop, then close sockets.
	hub.broadcastStop()
	for _, nc := range hub.conns {
		if nc != nil {
			nc.conn.Close()
		}
	}
	nodeWG.Wait()
	readWG.Wait()
	close(nodeErrs)
	for err := range nodeErrs {
		// A node error after a terminal state (connection torn down by the
		// shutdown) is expected; report only errors of failed runs.
		if !res.Solved && !res.Insoluble && !res.Quiescent {
			return res, err
		}
	}
	if !res.Solved && !res.Insoluble && !res.Quiescent {
		return res, ErrTimeout
	}
	return res, nil
}

// nodeConn is the hub's handle on one node.
type nodeConn struct {
	conn net.Conn
	mu   sync.Mutex
	w    *bufio.Writer
}

func (nc *nodeConn) send(f frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if _, err := nc.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return nc.w.Flush()
}

// hub routes frames and watches for termination.
type hub struct {
	problem  *csp.Problem
	values   csp.SliceAssignment
	conns    []*nodeConn
	pending  map[int][]frame
	frames   chan frame
	stop     chan struct{}
	inFlight int64
	messages int64
}

// readLoop decodes frames from one connection into the hub channel. All
// frames — including hello — go through the channel so that connection
// registration happens on the single-threaded route loop.
func (h *hub) readLoop(nc *nodeConn) {
	sc := bufio.NewScanner(nc.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var f frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return // node-side close or corruption: drop the connection
		}
		f.src = nc
		select {
		case h.frames <- f:
		case <-h.stop:
			return
		}
	}
}

// route is the hub's single-threaded event loop.
func (h *hub) route(timeout time.Duration) Result {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	// Quiescence cannot be declared from in-flight counting alone until
	// every node has reported in at least once.
	reported := make(map[int]bool, len(h.values))
	for {
		// Quiescence: all nodes live, nothing in flight, nothing queued.
		if len(reported) == len(h.values) && h.inFlight == 0 && len(h.frames) == 0 {
			select {
			case f := <-h.frames:
				if done, res := h.handle(f, reported); done {
					return res
				}
				continue
			case <-time.After(10 * time.Millisecond):
				if h.inFlight == 0 {
					return Result{Quiescent: true, Assignment: h.snapshot(), Messages: h.messages}
				}
				continue
			case <-deadline.C:
				return Result{Assignment: h.snapshot(), Messages: h.messages}
			}
		}
		select {
		case f := <-h.frames:
			if done, res := h.handle(f, reported); done {
				return res
			}
		case <-deadline.C:
			return Result{Assignment: h.snapshot(), Messages: h.messages}
		}
	}
}

// handle processes one frame; done reports a terminal state.
func (h *hub) handle(f frame, reported map[int]bool) (bool, Result) {
	if f.Type == ctlHello {
		if f.From >= 0 && f.From < len(h.conns) {
			h.conns[f.From] = f.src
			// Flush messages that arrived before this node registered.
			for _, queued := range h.pending[f.From] {
				_ = f.src.send(queued)
			}
			delete(h.pending, f.From)
		}
		return false, Result{}
	}
	if f.Type == ctlState {
		reported[f.From] = true
		if f.From >= 0 && f.From < len(h.values) {
			h.values[f.From] = csp.Value(f.Value)
		}
		h.inFlight -= int64(f.Processed)
		if f.Insoluble {
			return true, Result{Insoluble: true, Assignment: h.snapshot(), Messages: h.messages}
		}
		if h.problem.IsSolution(h.values) {
			return true, Result{Solved: true, Assignment: h.snapshot(), Messages: h.messages}
		}
		return false, Result{}
	}
	// Algorithm message: forward to its destination, queueing it when the
	// destination has not said hello yet.
	h.messages++
	h.inFlight++
	if f.To < 0 || f.To >= len(h.conns) {
		return false, Result{}
	}
	if h.conns[f.To] == nil {
		if h.pending == nil {
			h.pending = make(map[int][]frame)
		}
		h.pending[f.To] = append(h.pending[f.To], f)
		return false, Result{}
	}
	// A send failure means the node is gone; the run will end by timeout,
	// which is the honest outcome.
	_ = h.conns[f.To].send(f)
	return false, Result{}
}

func (h *hub) snapshot() csp.SliceAssignment {
	cp := csp.NewSliceAssignment(len(h.values))
	copy(cp, h.values)
	return cp
}

func (h *hub) broadcastStop() {
	close(h.stop)
	for _, nc := range h.conns {
		if nc != nil {
			_ = nc.send(frame{Envelope: wire.Envelope{Type: ctlStop}})
		}
	}
}

// runNode dials the hub and runs one agent against the socket.
func runNode(addr string, v csp.Var, makeAgent func(csp.Var) sim.Agent) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	agent := makeAgent(v)
	if int(agent.ID()) != int(v) {
		return fmt.Errorf("agent for variable %d has id %d", v, agent.ID())
	}
	w := bufio.NewWriter(conn)
	writeFrame := func(f frame) error {
		b, err := json.Marshal(f)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		return w.Flush()
	}
	sendOut := func(out []sim.Message, processed int) error {
		for _, m := range out {
			env, err := wire.Encode(m)
			if err != nil {
				return err
			}
			if err := writeFrame(frame{Envelope: env}); err != nil {
				return err
			}
		}
		state := frame{
			Envelope:  wire.Envelope{Type: ctlState, From: int(v), Value: int(agent.CurrentValue())},
			Processed: processed,
		}
		if r, ok := agent.(sim.InsolubleReporter); ok && r.Insoluble() {
			state.Insoluble = true
		}
		return writeFrame(state)
	}

	if err := writeFrame(frame{Envelope: wire.Envelope{Type: ctlHello, From: int(v)}}); err != nil {
		return err
	}
	if err := sendOut(agent.Init(), 0); err != nil {
		return err
	}

	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var f frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return fmt.Errorf("decode: %w", err)
		}
		if f.Type == ctlStop {
			return nil
		}
		msg, err := wire.Decode(f.Envelope)
		if err != nil {
			return err
		}
		out := agent.Step([]sim.Message{msg})
		if err := sendOut(out, 1); err != nil {
			return err
		}
	}
	// EOF without ctl.stop: the hub tore the socket down at shutdown.
	return nil
}
