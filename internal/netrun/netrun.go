// Package netrun executes the distributed algorithms over an actual TCP
// network: one hub process-part routes JSON-framed messages (internal/wire)
// between agent nodes, each of which owns one agent and one TCP connection.
// It is the strongest form of the paper's portability claim exercised in
// this repository — the same Agent implementations that run on the
// synchronous simulator and the in-process asynchronous runtime here cross
// a real socket boundary, with the hub playing the network.
//
// The transport is reliable end-to-end: nodes stamp per-link sequence
// numbers (wire.SendLink), retransmit on exponential backoff until the
// receiver's cumulative ack covers them, and dedup/reorder on arrival
// (wire.RecvLink), restoring the FIFO-per-link, exactly-once delivery the
// algorithms' correctness model (Yokoo et al.) assumes. The hub can play an
// adversarial network (Options.Faults): deterministic drop, duplication,
// and delay of algorithm frames, plus scheduled node crashes. A
// crash-scheduled node checkpoints its durable state (agent snapshot, both
// halves of every reliable link) before acknowledging each step, so a
// restarted node re-registers with the hub, replays the checkpoint, and the
// run completes exactly as on a clean network.
//
// Partition windows sever node-to-node traffic (algorithm frames and acks
// both) across a seeded two-sided split: frames crossing an open cut are
// held at the hub and drained when the window heals, with the nodes' dedup
// layer absorbing the retransmitted copies. A partitioned node is *not* a
// dead node — its socket stays up and it keeps retransmitting — so
// partition traffic never takes the ErrNodeDown fail-fast path; a
// never-healing cut instead strands messages in flight until the deadline,
// which reports the stall watchdog's per-agent progress diagnosis.
//
// The hub detects termination out-of-band, like the other runtimes: nodes
// attach a state report (current value, insolubility flag, processed
// count) after every step, letting the hub check for a solution snapshot,
// an insolubility proof, or quiescence (no messages in flight).
package netrun

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/progress"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
	"github.com/discsp/discsp/internal/wire"
)

// ErrTimeout is returned when the deadline expires before a terminal state.
// The concrete error is a *TimeoutError carrying the hub's last snapshot;
// errors.Is(err, ErrTimeout) matches it.
var ErrTimeout = errors.New("netrun: run timed out")

// ErrNodeDown is wrapped into the error returned when the hub cannot reach
// a node that is not scheduled to restart: the run fails fast with a
// diagnostic instead of idling to the timeout.
var ErrNodeDown = errors.New("netrun: node unreachable")

// TimeoutError reports a run that hit its deadline, with the hub's last
// observed state so a stuck run is diagnosable from the error alone. It
// wraps ErrTimeout.
type TimeoutError struct {
	// Timeout is the configured deadline that expired.
	Timeout time.Duration
	// InFlight is the number of unique algorithm messages routed but not
	// yet reported processed by their destination node.
	InFlight int64
	// Messages is the number of unique algorithm messages routed.
	Messages int64
	// Processed is the per-node count of messages processed, indexed by
	// variable.
	Processed []int64
	// Report is the stall watchdog's classification of the stuck run —
	// stalled (no traffic), livelock (traffic without search progress), or
	// converging (slow, not stuck) — with per-agent progress deltas. Nil
	// only when the run died before the watchdog gathered two samples.
	Report *progress.Report
}

func (e *TimeoutError) Error() string {
	s := fmt.Sprintf("netrun: run timed out after %v: %d messages in flight, %d routed, per-node processed %v",
		e.Timeout, e.InFlight, e.Messages, e.Processed)
	if e.Report != nil {
		s += "; " + e.Report.String()
	}
	return s
}

func (e *TimeoutError) Unwrap() error { return ErrTimeout }

// Options configures a run.
type Options struct {
	// Timeout bounds the wall-clock run; 0 means 30s.
	Timeout time.Duration
	// Faults, when non-nil, makes the hub an adversarial network for
	// algorithm frames — deterministic per-link drop, duplication, and
	// bounded delay — and schedules node crashes. Control frames (hello,
	// state, stop) and acks are exempt: faults attack the data plane the
	// reliable protocol defends, not the test harness's instrumentation.
	Faults *faults.Config
	// WatchdogCadence is the stall watchdog's sampling period; 0 means
	// progress.DefaultCadence. Samples also land in the telemetry stream
	// when one is attached.
	WatchdogCadence time.Duration
	// Telemetry, when non-nil, receives the run's event stream (watchdog
	// samples, per-agent totals, per-link seq/ack/retransmit/partition
	// counters observed at the hub) and metrics. Nil disables all
	// instrumentation without any other behavioral difference.
	Telemetry *telemetry.Run
}

// Result reports a completed run.
type Result struct {
	// Solved reports whether the hub observed a solution snapshot.
	Solved bool
	// Insoluble reports that some agent derived the empty nogood.
	Insoluble bool
	// Quiescent reports that no messages were left in flight.
	Quiescent bool
	// Assignment is the last (or solving) snapshot.
	Assignment csp.SliceAssignment
	// Messages counts unique routed algorithm messages (retransmissions,
	// duplicates, and control frames excluded).
	Messages int64
	// Duration is the wall-clock run time.
	Duration time.Duration

	// Retransmits counts frames the nodes retransmitted because no ack
	// arrived in time.
	Retransmits int64
	// DuplicatesSuppressed counts frames the nodes discarded as duplicates
	// (injected copies and spurious retransmissions).
	DuplicatesSuppressed int64
	// Restarts counts nodes that crashed and rejoined from a checkpoint.
	Restarts int64
	// Partitioned counts frames intercepted at a partition cut (held to the
	// heal, or killed by a never-healing window).
	Partitioned int64
	// PartitionHeals counts scheduled partition windows that healed within
	// the run's duration.
	PartitionHeals int64
}

// control frame types, alongside the wire message types.
const (
	ctlHello = "ctl.hello"
	ctlState = "ctl.state"
	ctlStop  = "ctl.stop"
)

// Reliable-transport tuning for the node loops. The base exceeds loopback
// round-trip by orders of magnitude, so retransmissions fire only under
// injected loss (or a genuinely dead peer), not under scheduling noise.
const (
	retransmitBase = 10 * time.Millisecond
	retransmitCap  = 160 * time.Millisecond
	retransmitTick = 5 * time.Millisecond
)

// frame is the union of wire envelopes and control frames exchanged on the
// sockets. Control fields piggyback on the envelope struct shape.
type frame struct {
	wire.Envelope
	Insoluble bool `json:"insoluble,omitempty"`
	Processed int  `json:"processed,omitempty"`

	// src is the connection the frame arrived on; set by the hub's read
	// loops, never serialized. The single-threaded route loop uses it to
	// register connections on hello frames.
	src *nodeConn `json:"-"`
}

// nodeCounters aggregates transport statistics across all node goroutines
// and incarnations of one run.
type nodeCounters struct {
	retransmits atomic.Int64
	dups        atomic.Int64
	restarts    atomic.Int64

	// Per-agent end-of-run totals for telemetry, written by each node's
	// final incarnation as it exits and read after nodeWG.Wait. Nil when
	// telemetry is disabled.
	checks []atomic.Int64
	stores []atomic.Int64
}

// instrumented is implemented by agents whose nogood store accepts
// telemetry hooks (core, abt, breakout).
type instrumented interface {
	Instrument(telemetry.StoreMetrics)
}

// storeSizer is implemented by agents exposing their nogood-store size.
type storeSizer interface{ StoreSize() int }

// Run executes one agent node per problem variable against a loopback TCP
// hub. makeAgent builds the algorithm-specific agent per variable; it is
// also how a crashed node's new incarnation is built before its checkpoint
// is restored.
func Run(problem *csp.Problem, makeAgent func(v csp.Var) sim.Agent, opts Options) (Result, error) {
	n := problem.NumVars()
	if n == 0 {
		return Result{Solved: true, Assignment: csp.SliceAssignment{}}, nil
	}
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	cadence := opts.WatchdogCadence
	if cadence <= 0 {
		cadence = progress.DefaultCadence
	}
	var inj *faults.Injector
	var ckpts *faults.Checkpoints
	if opts.Faults != nil {
		inj = faults.New(*opts.Faults)
		ckpts = faults.NewCheckpoints()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return Result{}, fmt.Errorf("netrun: listen: %w", err)
	}
	defer ln.Close()

	hub := &hub{
		problem:   problem,
		values:    csp.NewSliceAssignment(n),
		conns:     make([]*nodeConn, n),
		processed: make([]int64, n),
		seqHigh:   make(map[link]int64),
		frames:    make(chan frame, n),
		stop:      make(chan struct{}),
		inj:       inj,
		cadence:   cadence,
		tel:       opts.Telemetry,
	}
	if inj != nil {
		hub.attempts = make(map[attemptKey]int)
	}
	var ctr nodeCounters
	if hub.tel != nil {
		hub.ackHigh = make(map[link]int64)
		hub.linkRetrans = make(map[link]int64)
		hub.linkPart = make(map[link]int64)
		ctr.checks = make([]atomic.Int64, n)
		ctr.stores = make([]atomic.Int64, n)
	}
	if reg := opts.Telemetry.Registry(); reg != nil {
		// The nodes run in-process, so instrumented agents share the hub's
		// registry; the gauges are atomics, letting the route loop sample
		// live store sizes without touching node state. Resolve them up
		// front and wrap makeAgent so restarted incarnations re-attach.
		hub.storeGauges = make([]*telemetry.Gauge, n)
		metrics := make([]telemetry.StoreMetrics, n)
		for v := 0; v < n; v++ {
			label := strconv.Itoa(v)
			hub.storeGauges[v] = reg.Gauge(telemetry.Name("discsp_store_nogoods", "agent", label))
			metrics[v] = telemetry.StoreMetrics{
				Size:      hub.storeGauges[v],
				Lengths:   reg.Histogram(telemetry.Name("discsp_learned_nogood_len", "agent", label), telemetry.NogoodLenBuckets),
				Evictions: reg.Counter(telemetry.Name("discsp_store_evictions", "agent", label)),
			}
		}
		orig := makeAgent
		makeAgent = func(v csp.Var) sim.Agent {
			a := orig(v)
			if ia, ok := a.(instrumented); ok {
				ia.Instrument(metrics[v])
			}
			return a
		}
	}

	// Accept connections for the whole run: restarted nodes dial back in.
	var readWG sync.WaitGroup
	var connMu sync.Mutex
	var allConns []net.Conn
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			conn, err := ln.Accept()
			if err != nil {
				return // listener closed at shutdown
			}
			connMu.Lock()
			allConns = append(allConns, conn)
			connMu.Unlock()
			nc := &nodeConn{conn: conn, w: bufio.NewWriter(conn)}
			readWG.Add(1)
			go func() {
				defer readWG.Done()
				hub.readLoop(nc)
			}()
		}
	}()

	// Start the nodes; each supervisor restarts its node per the crash
	// schedule.
	runDone := make(chan struct{})
	var nodeWG sync.WaitGroup
	nodeErrs := make(chan error, n)
	for v := 0; v < n; v++ {
		nodeWG.Add(1)
		go func(v int) {
			defer nodeWG.Done()
			for incarnation := 0; ; incarnation++ {
				crashed, err := runNode(ln.Addr().String(), csp.Var(v), makeAgent, inj, ckpts, &ctr, incarnation, runDone)
				if err != nil {
					nodeErrs <- fmt.Errorf("node %d: %w", v, err)
					return
				}
				if !crashed {
					return
				}
				cr, _ := inj.Crash(v)
				if !cr.Restart {
					return
				}
				select {
				case <-time.After(cr.RestartDelay):
				case <-runDone:
					return
				}
				ctr.restarts.Add(1)
			}
		}(v)
	}

	start := time.Now()
	hub.start = start
	res, rerr := hub.route(timeout)
	res.Duration = time.Since(start)

	// Shut down: tell every registered node to stop, then close sockets
	// (including accepted-but-unregistered ones, so no node blocks on a
	// read forever).
	close(runDone)
	hub.broadcastStop()
	ln.Close()
	connMu.Lock()
	for _, c := range allConns {
		c.Close()
	}
	connMu.Unlock()
	nodeWG.Wait()
	readWG.Wait()
	<-acceptDone
	close(nodeErrs)

	res.Retransmits = ctr.retransmits.Load()
	res.DuplicatesSuppressed = ctr.dups.Load()
	res.Restarts = ctr.restarts.Load()
	res.Partitioned = hub.partitioned
	res.PartitionHeals = inj.HealedBy(res.Duration)
	hub.emitFinal(res, &ctr)
	if res.Solved || res.Insoluble || res.Quiescent {
		return res, nil
	}
	// A node error is the root cause when one exists; otherwise the route
	// loop's own diagnostic (node unreachable or timeout) stands.
	for err := range nodeErrs {
		return res, err
	}
	if rerr == nil {
		rerr = ErrTimeout
	}
	return res, rerr
}

// nodeConn is the hub's handle on one node.
type nodeConn struct {
	conn net.Conn
	mu   sync.Mutex
	w    *bufio.Writer
}

func (nc *nodeConn) send(f frame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return err
	}
	nc.mu.Lock()
	defer nc.mu.Unlock()
	if _, err := nc.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return nc.w.Flush()
}

// link identifies one directed node-to-node channel.
type link struct {
	from, to int
}

// attemptKey identifies one delivery attempt stream at the hub.
type attemptKey struct {
	l   link
	seq int64
}

// delayedFrame is a frame the fault schedule holds back until at.
type delayedFrame struct {
	at  time.Time
	seq int64
	f   frame
}

// frameHeap orders delayed frames by due time, then arrival sequence.
type frameHeap []delayedFrame

func (h frameHeap) Len() int { return len(h) }

func (h frameHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h frameHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *frameHeap) Push(x any) { *h = append(*h, x.(delayedFrame)) }

func (h *frameHeap) Pop() any {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// hub routes frames and watches for termination.
type hub struct {
	problem   *csp.Problem
	values    csp.SliceAssignment
	conns     []*nodeConn
	processed []int64
	pending   map[int][]frame
	seqHigh   map[link]int64
	attempts  map[attemptKey]int
	delayq    frameHeap
	delaySeq  int64
	frames    chan frame
	stop      chan struct{}
	inFlight  int64
	messages  int64
	inj       *faults.Injector

	start       time.Time // run start; partition windows are offsets from it
	partitioned int64

	cadence     time.Duration
	tel         *telemetry.Run
	storeGauges []*telemetry.Gauge
	// Per-link counters observed at the hub, keyed by the data link
	// (sender → receiver); touched only on the single-threaded route loop
	// and only when telemetry is attached.
	ackHigh     map[link]int64
	linkRetrans map[link]int64
	linkPart    map[link]int64
}

// emitFinal records the run's totals after every node has stopped: one
// agent event per variable (final-incarnation check totals and store
// sizes from the node goroutines, processed counts from the hub), one link
// event per directed link the hub routed, and the delivery/check/transport
// counters. No-op without telemetry.
func (h *hub) emitFinal(res Result, ctr *nodeCounters) {
	if h.tel == nil {
		return
	}
	reg := h.tel.Registry()
	var totalChecks int64
	for v := range h.processed {
		ev := telemetry.Event{
			Kind:           telemetry.KindAgent,
			Agent:          v,
			AgentProcessed: h.processed[v],
		}
		if ctr.checks != nil {
			ev.Checks = ctr.checks[v].Load()
			ev.StoreSize = ctr.stores[v].Load()
			totalChecks += ev.Checks
		}
		h.tel.Emit(ev)
	}
	links := make([]link, 0, len(h.seqHigh))
	for k := range h.seqHigh {
		links = append(links, k)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].from != links[j].from {
			return links[i].from < links[j].from
		}
		return links[i].to < links[j].to
	})
	for _, k := range links {
		h.tel.Emit(telemetry.Event{
			Kind:        telemetry.KindLink,
			From:        k.from,
			To:          k.to,
			SeqHigh:     h.seqHigh[k],
			AckHigh:     h.ackHigh[k],
			Retransmits: h.linkRetrans[k],
			Partitioned: h.linkPart[k],
		})
	}
	reg.Counter("discsp_deliveries_total").Add(res.Messages)
	reg.Counter("discsp_checks_total").Add(totalChecks)
	telemetry.Transport{
		Retransmits:          res.Retransmits,
		DuplicatesSuppressed: res.DuplicatesSuppressed,
		Restarts:             res.Restarts,
		Partitioned:          res.Partitioned,
		PartitionHeals:       res.PartitionHeals,
	}.Record(reg)
}

// readLoop decodes frames from one connection into the hub channel. All
// frames — including hello — go through the channel so that connection
// registration happens on the single-threaded route loop.
func (h *hub) readLoop(nc *nodeConn) {
	sc := bufio.NewScanner(nc.conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		var f frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			return // node-side close or corruption: drop the connection
		}
		f.src = nc
		select {
		case h.frames <- f:
		case <-h.stop:
			return
		}
	}
}

// route is the hub's single-threaded event loop. All timers are managed
// (reused and stopped on every path) rather than per-iteration time.After
// allocations, which leaked a timer per loop when another case fired.
func (h *hub) route(timeout time.Duration) (Result, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	probe := time.NewTimer(time.Hour)
	probe.Stop()
	defer probe.Stop()
	delayT := time.NewTimer(time.Hour)
	delayT.Stop()
	defer delayT.Stop()
	wd := progress.NewWatchdog()
	watch := time.NewTicker(h.cadence)
	defer watch.Stop()

	// Quiescence cannot be declared from in-flight counting alone until
	// every node has reported in at least once.
	reported := make(map[int]bool, len(h.values))
	for {
		var delayC <-chan time.Time
		if len(h.delayq) > 0 {
			delayT.Reset(time.Until(h.delayq[0].at))
			delayC = delayT.C
		}
		// Quiescence: all nodes reported, nothing in flight, nothing queued
		// or held back. The probe re-checks after a grace period; a stale
		// timer tick is harmless because the condition is re-evaluated.
		var probeC <-chan time.Time
		if len(reported) == len(h.values) && h.inFlight == 0 && len(h.frames) == 0 && len(h.delayq) == 0 {
			probe.Reset(10 * time.Millisecond)
			probeC = probe.C
		}
		select {
		case f := <-h.frames:
			done, res, err := h.handle(f, reported)
			if err != nil {
				return Result{Assignment: h.snapshot(), Messages: h.messages}, err
			}
			if done {
				return res, nil
			}
		case <-delayC:
			now := time.Now()
			for len(h.delayq) > 0 && !h.delayq[0].at.After(now) {
				df := heap.Pop(&h.delayq).(delayedFrame)
				// A held frame popping mid-window (an injected duplicate, or
				// an overlapping later window) goes back behind the cut.
				if h.partitionHold(df.f) {
					continue
				}
				if err := h.send(df.f); err != nil {
					return Result{Assignment: h.snapshot(), Messages: h.messages}, err
				}
			}
		case <-probeC:
			if h.inFlight == 0 && len(h.frames) == 0 && len(h.delayq) == 0 {
				return Result{Quiescent: true, Assignment: h.snapshot(), Messages: h.messages}, nil
			}
		case now := <-watch.C:
			h.observe(wd, now)
		case <-deadline.C:
			now := time.Now()
			h.observe(wd, now) // final sample so the report is current
			te := &TimeoutError{
				Timeout:   timeout,
				InFlight:  h.inFlight,
				Messages:  h.messages,
				Processed: append([]int64(nil), h.processed...),
				Report:    wd.Report(now),
			}
			return Result{Assignment: h.snapshot(), Messages: h.messages}, te
		}
		probe.Stop()
		delayT.Stop()
	}
}

// handle processes one frame; done reports a terminal state. A non-nil
// error means a node is unreachable and not coming back.
func (h *hub) handle(f frame, reported map[int]bool) (bool, Result, error) {
	switch f.Type {
	case ctlHello:
		if f.From >= 0 && f.From < len(h.conns) {
			h.conns[f.From] = f.src
			// Flush messages that arrived before this node (re)registered;
			// the node's reorder buffer handles any staleness.
			queued := h.pending[f.From]
			delete(h.pending, f.From)
			for _, q := range queued {
				if err := h.send(q); err != nil {
					return false, Result{}, err
				}
			}
		}
		return false, Result{}, nil
	case ctlState:
		reported[f.From] = true
		if f.From >= 0 && f.From < len(h.values) {
			h.values[f.From] = csp.Value(f.Value)
			h.processed[f.From] += int64(f.Processed)
		}
		h.inFlight -= int64(f.Processed)
		if f.Insoluble {
			return true, Result{Insoluble: true, Assignment: h.snapshot(), Messages: h.messages}, nil
		}
		if h.problem.IsSolution(h.values) {
			return true, Result{Solved: true, Assignment: h.snapshot(), Messages: h.messages}, nil
		}
		return false, Result{}, nil
	case wire.TypeAck:
		// Exempt from drop/dup/delay injection (control plane), but not
		// from a partition: a cut severs acknowledgements like any other
		// node-to-node traffic, which is what keeps the far side
		// retransmitting until the heal.
		if h.tel != nil {
			// The ack travels receiver → sender; record it against the
			// data link it acknowledges.
			dl := link{from: f.To, to: f.From}
			if f.Ack > h.ackHigh[dl] {
				h.ackHigh[dl] = f.Ack
			}
		}
		if h.partitionHold(f) {
			return false, Result{}, nil
		}
		return false, Result{}, h.send(f)
	}
	// Algorithm frame. Count each unique (link, seq) exactly once — before
	// the drop decision, because a dropped message is still in flight (the
	// sender retransmits it until acked).
	if f.To < 0 || f.To >= len(h.conns) {
		return false, Result{}, nil
	}
	k := link{from: f.From, to: f.To}
	if f.Seq > h.seqHigh[k] {
		h.seqHigh[k] = f.Seq
		h.messages++
		h.inFlight++
	} else if h.tel != nil && f.Seq > 0 {
		// A seq at or below the link's high-water mark is a retransmitted
		// (or injected-duplicate) copy arriving at the hub.
		h.linkRetrans[k]++
	}
	if h.partitionHold(f) {
		return false, Result{}, nil
	}
	if h.inj != nil && f.Seq > 0 {
		ak := attemptKey{l: k, seq: f.Seq}
		attempt := h.attempts[ak]
		h.attempts[ak] = attempt + 1
		if h.inj.Dropped(f.From, f.To, f.Seq, attempt) {
			return false, Result{}, nil
		}
		if attempt == 0 && h.inj.Duplicated(f.From, f.To, f.Seq) {
			h.schedule(f, time.Now().Add(h.inj.Delay(f.From, f.To, f.Seq, 1)))
		}
		if d := h.inj.Delay(f.From, f.To, f.Seq, 0); d > 0 {
			h.schedule(f, time.Now().Add(d))
			return false, Result{}, nil
		}
	}
	return false, Result{}, h.send(f)
}

// schedule holds f back until at.
func (h *hub) schedule(f frame, at time.Time) {
	h.delaySeq++
	heap.Push(&h.delayq, delayedFrame{at: at, seq: h.delaySeq, f: f})
}

// observe feeds the stall watchdog one sample of the hub's counters and
// tees the same sample into the telemetry stream, so healthy runs record
// frontier-hash progress too. The frontier hash covers the nodes' published
// values — what the hub can see of search progress.
func (h *hub) observe(wd *progress.Watchdog, now time.Time) {
	words := make([]int64, len(h.values))
	var delivered int64
	for i, v := range h.values {
		words[i] = int64(v)
	}
	for _, p := range h.processed {
		delivered += p
	}
	frontier := progress.Hash64(words...)
	wd.Observe(progress.Sample{
		At:        now,
		Delivered: delivered,
		InFlight:  h.inFlight,
		Processed: h.processed, // Observe copies
		Frontier:  frontier,
	})
	if h.tel == nil {
		return
	}
	var storeTotal int64
	for _, g := range h.storeGauges {
		storeTotal += g.Value()
	}
	h.tel.Emit(telemetry.Event{
		Kind:       telemetry.KindSample,
		ElapsedUS:  now.Sub(h.start).Microseconds(),
		Delivered:  delivered,
		InFlight:   h.inFlight,
		Processed:  append([]int64(nil), h.processed...),
		Frontier:   strconv.FormatUint(frontier, 16),
		StoreTotal: storeTotal,
		QueueDepth: int64(len(h.delayq)),
	})
}

// partitionHold applies the partition schedule to one node-to-node frame.
// A frame crossing an open cut is held at the hub until the window heals
// (the nodes' dedup layer absorbs the retransmitted copies that pile up
// behind it), or killed outright by a never-healing window — the message
// stays in flight, so the run cannot quiesce and the deadline reports the
// stall. It reports whether f was intercepted. This path is distinct from
// a dead node: partitioned traffic never reaches send()'s ErrNodeDown
// fail-fast, because the frame is parked before any socket write.
func (h *hub) partitionHold(f frame) bool {
	if !h.inj.AnyPartition() {
		return false
	}
	cut, heal, heals := h.inj.PartitionedAt(f.From, f.To, time.Since(h.start))
	if !cut {
		return false
	}
	h.partitioned++
	if h.tel != nil {
		h.linkPart[link{from: f.From, to: f.To}]++
	}
	if heals {
		h.schedule(f, h.start.Add(heal))
	}
	return true
}

// send forwards a frame to its destination node, queueing it while the
// node is unregistered. A send failure to a node that the fault schedule
// will restart parks the frame and awaits the re-hello; any other send
// failure is a dead node — the run fails fast with a diagnostic instead of
// idling to the timeout.
func (h *hub) send(f frame) error {
	if f.To < 0 || f.To >= len(h.conns) {
		return nil
	}
	nc := h.conns[f.To]
	if nc == nil {
		h.queue(f)
		return nil
	}
	if err := nc.send(f); err != nil {
		if h.inj.WillRestart(f.To) {
			h.conns[f.To] = nil
			h.queue(f)
			return nil
		}
		return fmt.Errorf("send of %s frame %d→%d (seq %d) failed: %v: %w",
			f.Type, f.From, f.To, f.Seq, err, ErrNodeDown)
	}
	return nil
}

func (h *hub) queue(f frame) {
	if h.pending == nil {
		h.pending = make(map[int][]frame)
	}
	h.pending[f.To] = append(h.pending[f.To], f)
}

func (h *hub) snapshot() csp.SliceAssignment {
	cp := csp.NewSliceAssignment(len(h.values))
	copy(cp, h.values)
	return cp
}

func (h *hub) broadcastStop() {
	close(h.stop)
	for _, nc := range h.conns {
		if nc != nil {
			_ = nc.send(frame{Envelope: wire.Envelope{Type: ctlStop}})
		}
	}
}

// nodeCheckpoint is the durable state a node persists before acknowledging
// a step: the agent snapshot plus both halves of every reliable link, so a
// restarted incarnation resumes the seq streams exactly where the crashed
// one durably left them.
type nodeCheckpoint struct {
	agent any
	send  map[int]wire.SendLinkState
	recv  map[int]wire.RecvLinkState
	steps int
	// pendingReport is the processed count of the checkpointed step whose
	// state frame may never have reached the hub; the restarted node
	// re-reports it so the hub's in-flight accounting stays exact.
	pendingReport int
}

// runNode dials the hub and runs one agent against the socket. It returns
// crashed=true when the fault schedule killed this incarnation (the
// supervisor decides whether to restart it); a nil error otherwise means a
// clean stop.
func runNode(addr string, v csp.Var, makeAgent func(csp.Var) sim.Agent, inj *faults.Injector,
	ckpts *faults.Checkpoints, ctr *nodeCounters, incarnation int, done <-chan struct{}) (bool, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		select {
		case <-done:
			return false, nil // run over; the listener is gone
		default:
			return false, err
		}
	}
	defer conn.Close()
	agent := makeAgent(v)
	if int(agent.ID()) != int(v) {
		return false, fmt.Errorf("agent for variable %d has id %d", v, agent.ID())
	}

	sendLinks := make(map[int]*wire.SendLink)
	recvLinks := make(map[int]*wire.RecvLink)
	defer func() {
		var rt, dp int64
		for _, sl := range sendLinks {
			rt += sl.Retransmits()
		}
		for _, rl := range recvLinks {
			dp += rl.Dups()
		}
		ctr.retransmits.Add(rt)
		ctr.dups.Add(dp)
		if ctr.checks != nil {
			// Final incarnation wins: a restarted agent restored its
			// counter from the checkpoint, so its total is cumulative.
			ctr.checks[int(v)].Store(agent.Checks())
			if ss, ok := agent.(storeSizer); ok {
				ctr.stores[int(v)].Store(int64(ss.StoreSize()))
			}
		}
	}()
	sendLink := func(to int) *wire.SendLink {
		sl, ok := sendLinks[to]
		if !ok {
			sl = wire.NewSendLink(retransmitBase, retransmitCap)
			sendLinks[to] = sl
		}
		return sl
	}
	recvLink := func(from int) *wire.RecvLink {
		rl, ok := recvLinks[from]
		if !ok {
			rl = wire.NewRecvLink()
			recvLinks[from] = rl
		}
		return rl
	}

	steps := 0
	pendingReport := 0
	restored := false
	if incarnation > 0 {
		if snap, ok := ckpts.Load(int(v)); ok {
			cp := snap.(nodeCheckpoint)
			if cp.agent != nil {
				c, can := agent.(sim.Checkpointer)
				if !can {
					return false, fmt.Errorf("agent %d cannot restore a checkpoint", v)
				}
				if err := c.Restore(cp.agent); err != nil {
					return false, fmt.Errorf("restore checkpoint: %w", err)
				}
			}
			now := time.Now()
			for peer, st := range cp.send {
				sendLinks[peer] = wire.RestoreSendLink(st, retransmitBase, retransmitCap, now)
			}
			for peer, st := range cp.recv {
				recvLinks[peer] = wire.RestoreRecvLink(st)
			}
			steps = cp.steps
			pendingReport = cp.pendingReport
			restored = true
		}
	}

	// fail classifies an I/O error: once the run is over (done closed), the
	// hub tears sockets down mid-write and a broken pipe is a clean exit,
	// not a node failure.
	fail := func(err error) (bool, error) {
		select {
		case <-done:
			return false, nil
		default:
			return false, err
		}
	}

	w := bufio.NewWriter(conn)
	writeFrame := func(f frame) error {
		b, err := json.Marshal(f)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
		return w.Flush()
	}
	writeState := func(processed int) error {
		state := frame{
			Envelope:  wire.Envelope{Type: ctlState, From: int(v), Value: int(agent.CurrentValue())},
			Processed: processed,
		}
		if r, ok := agent.(sim.InsolubleReporter); ok && r.Insoluble() {
			state.Insoluble = true
		}
		return writeFrame(state)
	}

	// Crash schedule: only the first incarnation crashes (the schedule is
	// one crash per agent), and only agents that will restart pay for
	// checkpointing.
	var cr faults.Crash
	hasCrash := false
	if incarnation == 0 {
		cr, hasCrash = inj.Crash(int(v))
	}
	willRestart := inj.WillRestart(int(v))
	saveCheckpoint := func() {
		if !willRestart || ckpts == nil {
			return
		}
		cp := nodeCheckpoint{
			send:          make(map[int]wire.SendLinkState, len(sendLinks)),
			recv:          make(map[int]wire.RecvLinkState, len(recvLinks)),
			steps:         steps,
			pendingReport: pendingReport,
		}
		if c, ok := agent.(sim.Checkpointer); ok {
			cp.agent = c.Checkpoint()
		}
		for peer, sl := range sendLinks {
			cp.send[peer] = sl.SnapshotState()
		}
		for peer, rl := range recvLinks {
			cp.recv[peer] = rl.SnapshotState()
		}
		ckpts.Save(int(v), cp)
	}

	if err := writeFrame(frame{Envelope: wire.Envelope{Type: ctlHello, From: int(v)}}); err != nil {
		return fail(err)
	}
	now := time.Now()
	if restored {
		// The crash may have eaten anything not yet acked: retransmit the
		// whole unacked window, then re-report the step whose state frame
		// the crash swallowed.
		for _, sl := range sendLinks {
			for _, e := range sl.Due(now) {
				if err := writeFrame(frame{Envelope: e}); err != nil {
					return fail(err)
				}
			}
		}
		if err := writeState(pendingReport); err != nil {
			return fail(err)
		}
		pendingReport = 0
	} else {
		for _, m := range agent.Init() {
			env, err := wire.Encode(m)
			if err != nil {
				return false, err
			}
			env, err = sendLink(env.To).Stamp(env, now)
			if err != nil {
				return false, err
			}
			if err := writeFrame(frame{Envelope: env}); err != nil {
				return fail(err)
			}
		}
		if err := writeState(0); err != nil {
			return fail(err)
		}
	}

	// Reader goroutine: the main loop must also wake for retransmission
	// ticks, so reads go through a channel.
	inbound := make(chan frame, 128)
	readerQuit := make(chan struct{})
	defer close(readerQuit)
	go func() {
		defer close(inbound)
		sc := bufio.NewScanner(conn)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			var f frame
			if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
				return
			}
			select {
			case inbound <- f:
			case <-readerQuit:
				return
			}
		}
	}()

	ticker := time.NewTicker(retransmitTick)
	defer ticker.Stop()
	for {
		select {
		case f, ok := <-inbound:
			if !ok {
				// EOF without ctl.stop: the hub tore the socket down.
				return false, nil
			}
			switch f.Type {
			case ctlStop:
				return false, nil
			case wire.TypeAck:
				if sl, ok := sendLinks[f.From]; ok {
					sl.Ack(f.Ack, time.Now())
				}
				continue
			}
			rl := recvLink(f.From)
			released, _, err := rl.Accept(f.Envelope)
			if err != nil {
				return false, err
			}
			now := time.Now()
			if len(released) == 0 {
				// Duplicate or gap: re-ack so a sender whose ack was lost
				// stops retransmitting.
				ack := frame{Envelope: wire.Envelope{Type: wire.TypeAck, From: int(v), To: f.From, Ack: rl.CumAck()}}
				if err := writeFrame(ack); err != nil {
					return fail(err)
				}
				continue
			}
			batch := make([]sim.Message, 0, len(released))
			for _, env := range released {
				msg, err := wire.Decode(env)
				if err != nil {
					return false, err
				}
				batch = append(batch, msg)
			}
			out := agent.Step(batch)
			steps++
			// Stamp the output into the send links BEFORE checkpointing:
			// if the crash hits after the checkpoint, the output survives
			// in the unacked buffers and the restart retransmits it.
			outFrames := make([]frame, 0, len(out))
			for _, m := range out {
				env, err := wire.Encode(m)
				if err != nil {
					return false, err
				}
				env, err = sendLink(env.To).Stamp(env, now)
				if err != nil {
					return false, err
				}
				outFrames = append(outFrames, frame{Envelope: env})
			}
			// Checkpoint before acknowledging anything: acked must mean
			// durable. The ack and state report for this step may then be
			// lost to a crash; the restart re-reports them.
			pendingReport = len(released)
			saveCheckpoint()
			if hasCrash && steps > cr.AfterSteps {
				// Scheduled crash: the process dies before acking the
				// step. Everything since the checkpoint is lost; senders
				// retransmit, the restart replays the checkpoint.
				return true, nil
			}
			for _, of := range outFrames {
				if err := writeFrame(of); err != nil {
					return fail(err)
				}
			}
			ack := frame{Envelope: wire.Envelope{Type: wire.TypeAck, From: int(v), To: f.From, Ack: rl.CumAck()}}
			if err := writeFrame(ack); err != nil {
				return fail(err)
			}
			if err := writeState(len(released)); err != nil {
				return fail(err)
			}
			pendingReport = 0
		case <-ticker.C:
			now := time.Now()
			for _, sl := range sendLinks {
				for _, e := range sl.Due(now) {
					if err := writeFrame(frame{Envelope: e}); err != nil {
						return fail(err)
					}
				}
			}
		}
	}
}
