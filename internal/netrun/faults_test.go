package netrun

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

func insolubleTriangle(t *testing.T) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestNetrunDisconnectFastFail pins the satellite regression: a node that
// dies mid-run without a scheduled restart must surface as a prompt
// diagnostic error from the hub's send path, not as a silent 30-second
// timeout. DB on an insoluble triangle keeps traffic flowing forever, so
// retransmissions to the dead node guarantee a send failure quickly.
func TestNetrunDisconnectFastFail(t *testing.T) {
	p := insolubleTriangle(t)
	init := csp.SliceAssignment{0, 0, 0}
	start := time.Now()
	res, err := Run(p, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, p, init[v])
	}, Options{
		Timeout: 30 * time.Second,
		Faults: &faults.Config{Seed: 1, Crashes: []faults.Crash{
			{Agent: 1, AfterSteps: 2, Restart: false},
		}},
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatalf("dead node produced no error: %+v", res)
	}
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("dead node reported as timeout: %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("fast-fail took %v; the run idled toward the timeout", elapsed)
	}
	if !strings.Contains(err.Error(), "node") {
		t.Errorf("diagnostic %q does not identify the node", err)
	}
}

// TestNetrunTimeoutErrorState pins the satellite contract: a timed-out run
// returns a *TimeoutError carrying the hub's last snapshot.
func TestNetrunTimeoutErrorState(t *testing.T) {
	p := insolubleTriangle(t)
	init := csp.SliceAssignment{0, 0, 0}
	_, err := Run(p, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, p, init[v])
	}, Options{Timeout: 500 * time.Millisecond})
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TimeoutError", err, err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("TimeoutError does not wrap ErrTimeout: %v", err)
	}
	if len(te.Processed) != 3 {
		t.Fatalf("Processed = %v, want 3 entries", te.Processed)
	}
	if te.Messages == 0 {
		t.Errorf("Messages = 0; DB exchanges traffic before the deadline")
	}
	for _, want := range []string{"in flight", "routed", "processed"} {
		if !strings.Contains(te.Error(), want) {
			t.Errorf("error message %q missing %q", te.Error(), want)
		}
	}
}

func TestNetrunAWCUnderDropAndDup(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 71)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 72)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return core.NewAgent(v, inst.Problem, init[v], core.Learning{Kind: core.LearnResolvent})
	}, Options{
		Timeout: 60 * time.Second,
		Faults:  &faults.Config{Seed: 4, Drop: 0.1, Duplicate: 0.3, MaxDelay: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("not solved under drop+dup: %+v", res)
	}
	if !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("assignment is not a solution")
	}
	if res.Retransmits == 0 {
		t.Errorf("no retransmits at 10%% drop: %+v", res)
	}
	if res.DuplicatesSuppressed == 0 {
		t.Errorf("no duplicates suppressed at 30%% dup: %+v", res)
	}
}

func TestNetrunCrashRestartAWC(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 73)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 74)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return core.NewAgent(v, inst.Problem, init[v], core.Learning{Kind: core.LearnResolvent})
	}, Options{
		Timeout: 60 * time.Second,
		Faults: &faults.Config{Seed: 5, Crashes: []faults.Crash{
			{Agent: 2, AfterSteps: 0, Restart: true},
		}},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("not solved across crash-restart: %+v", res)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1: %+v", res.Restarts, res)
	}
}

func TestNetrunCrashRestartABTInsoluble(t *testing.T) {
	// K4 with 3 colors: the insolubility proof must survive a node crash.
	// The restarted node resumes from its checkpoint with its nogood store
	// intact, so no derivation restarts from scratch.
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Run(p, func(v csp.Var) sim.Agent {
		return abt.NewAgent(v, p, 0)
	}, Options{
		Timeout: 60 * time.Second,
		Faults: &faults.Config{Seed: 6, Crashes: []faults.Crash{
			{Agent: 1, AfterSteps: 1, Restart: true},
		}},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Insoluble {
		t.Fatalf("insolubility not proven across restart: %+v", res)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", res.Restarts)
	}
}
