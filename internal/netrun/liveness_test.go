// Tests for the survivability layer: worker dial retry, mid-solve
// reconnection, dead-peer detection, reconnect grace, and CRC-detected
// frame corruption. The network damage is staged through a loopback proxy
// so the hub and workers run unmodified.
package netrun

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

// testProxy is a byte-level TCP proxy between workers and one hub relay. It
// can sever every open pipe (a crashed network path: both sides see a
// socket error) or blackhole them (a wedged path: bytes vanish, sockets
// stay open), while always passing connections dialed afterwards — which is
// exactly what a redialing worker produces.
type testProxy struct {
	ln     net.Listener
	target string

	mu       sync.Mutex
	pipes    []net.Conn
	gen      int // generation stamped on conns at accept
	silenced int // pipes with gen < silenced discard instead of forwarding

	bytes atomic.Int64 // total payload bytes observed, both directions
}

func newTestProxy(t *testing.T, target string) *testProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &testProxy{ln: ln, target: target}
	go p.acceptLoop()
	t.Cleanup(func() {
		ln.Close()
		p.severAll()
	})
	return p
}

func (p *testProxy) addr() string { return p.ln.Addr().String() }

func (p *testProxy) acceptLoop() {
	for {
		down, err := p.ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", p.target)
		if err != nil {
			down.Close()
			continue
		}
		p.mu.Lock()
		gen := p.gen
		p.pipes = append(p.pipes, down, up)
		p.mu.Unlock()
		go p.pump(up, down, gen)
		go p.pump(down, up, gen)
	}
}

func (p *testProxy) pump(dst, src net.Conn, gen int) {
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			p.bytes.Add(int64(n))
			p.mu.Lock()
			hole := gen < p.silenced
			p.mu.Unlock()
			if !hole {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
		}
		if err != nil {
			break
		}
	}
	dst.Close()
	src.Close()
}

// severAll closes every open pipe; connections dialed afterwards pass.
func (p *testProxy) severAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.pipes {
		c.Close()
	}
	p.pipes = nil
}

// silenceExisting blackholes every pipe open right now — bytes are read and
// discarded, sockets stay up — while future connections pass.
func (p *testProxy) silenceExisting() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.gen++
	p.silenced = p.gen
}

// waitBytes blocks until the proxy has carried at least n payload bytes —
// "the run is demonstrably mid-solve" — or the deadline passes.
func (p *testProxy) waitBytes(t *testing.T, n int64, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	for p.bytes.Load() < n {
		if time.Now().After(end) {
			t.Fatalf("proxy carried only %d bytes in %v, want %d", p.bytes.Load(), deadline, n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func allVars(n int) []int {
	vars := make([]int, n)
	for i := range vars {
		vars[i] = i
	}
	return vars
}

// TestWorkerDialRetryBeforeHubListens pins the startup-order satellite: a
// worker launched before the hub binds its relays must retry the dial until
// ConnectTimeout instead of exiting on the first connection refusal.
func TestWorkerDialRetryBeforeHubListens(t *testing.T) {
	p, init := ringProblem(t, 6)
	maker := awcMaker(p, init)

	// Reserve an address the hub will bind later; until then dials to it
	// are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	workerErr := make(chan error, 1)
	go func() {
		_, err := RunWorker(p, maker, WorkerOptions{
			Addrs:          []string{addr},
			Vars:           allVars(6),
			ConnectTimeout: 15 * time.Second,
		})
		workerErr <- err
	}()

	// Let the worker accumulate a few refused dials before the hub exists.
	time.Sleep(300 * time.Millisecond)
	res, err := Run(p, maker, Options{
		Timeout:  30 * time.Second,
		Listen:   []string{addr},
		External: true,
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved || !p.IsSolution(res.Assignment) {
		t.Fatalf("not solved with late-binding hub: %+v", res)
	}
	if werr := <-workerErr; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
}

// TestWorkerReconnectAfterSever severs every worker connection mid-solve
// and requires the run to finish anyway: the workers redial, re-hello with
// the resume flag, replay their unacked windows, and both sides count the
// reconnection.
func TestWorkerReconnectAfterSever(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 78)
	maker := awcMaker(inst.Problem, init)

	addrsCh := make(chan []string, 1)
	type hubOut struct {
		res Result
		err error
	}
	hubCh := make(chan hubOut, 1)
	go func() {
		res, err := Run(inst.Problem, maker, Options{
			Timeout:        30 * time.Second,
			External:       true,
			ReconnectGrace: 10 * time.Second,
			OnListen:       func(addrs []string) { addrsCh <- addrs },
		})
		hubCh <- hubOut{res, err}
	}()
	addrs := <-addrsCh
	px := newTestProxy(t, addrs[0])

	statsCh := make(chan WorkerStats, 1)
	workerErr := make(chan error, 1)
	go func() {
		st, err := RunWorker(inst.Problem, maker, WorkerOptions{
			Addrs:          []string{px.addr()},
			Vars:           allVars(inst.Problem.NumVars()),
			ConnectTimeout: 10 * time.Second,
		})
		statsCh <- st
		workerErr <- err
	}()

	px.waitBytes(t, 4<<10, 20*time.Second)
	px.severAll()

	out := <-hubCh
	if out.err != nil {
		t.Fatalf("run: %v (res=%+v)", out.err, out.res)
	}
	if !out.res.Solved || !inst.Problem.IsSolution(out.res.Assignment) {
		t.Fatalf("not solved across severed connections: %+v", out.res)
	}
	if out.res.Reconnects == 0 {
		t.Errorf("hub counted no reconnects after severing every pipe: %+v", out.res)
	}
	if werr := <-workerErr; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if st := <-statsCh; st.Reconnects == 0 {
		t.Errorf("worker counted no reconnects: %+v", st)
	}
}

// TestDeadPeerDetection blackholes the worker links mid-solve: sockets stay
// up but go silent, so only the heartbeat layer can notice. The hub must
// declare the peers dead (counting heartbeat timeouts), sever them, and
// accept the workers' redials within the reconnect grace.
func TestDeadPeerDetection(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 79)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 80)
	maker := awcMaker(inst.Problem, init)

	addrsCh := make(chan []string, 1)
	type hubOut struct {
		res Result
		err error
	}
	hubCh := make(chan hubOut, 1)
	go func() {
		res, err := Run(inst.Problem, maker, Options{
			Timeout:  30 * time.Second,
			External: true,
			// Fast liveness so the test turns around quickly. The hub's
			// dead-peer bound is deliberately much shorter than the workers'
			// (2s): the hub always detects first and severs, which is the
			// path under test.
			Heartbeat:       25 * time.Millisecond,
			DeadPeerTimeout: 150 * time.Millisecond,
			ReconnectGrace:  10 * time.Second,
			OnListen:        func(addrs []string) { addrsCh <- addrs },
		})
		hubCh <- hubOut{res, err}
	}()
	addrs := <-addrsCh
	px := newTestProxy(t, addrs[0])

	workerErr := make(chan error, 1)
	go func() {
		_, err := RunWorker(inst.Problem, maker, WorkerOptions{
			Addrs:           []string{px.addr()},
			Vars:            allVars(inst.Problem.NumVars()),
			ConnectTimeout:  10 * time.Second,
			Heartbeat:       25 * time.Millisecond,
			DeadPeerTimeout: 2 * time.Second,
		})
		workerErr <- err
	}()

	px.waitBytes(t, 4<<10, 20*time.Second)
	px.silenceExisting()

	out := <-hubCh
	if out.err != nil {
		t.Fatalf("run: %v (res=%+v)", out.err, out.res)
	}
	if !out.res.Solved || !inst.Problem.IsSolution(out.res.Assignment) {
		t.Fatalf("not solved across blackholed links: %+v", out.res)
	}
	if out.res.HeartbeatTimeouts == 0 {
		t.Errorf("hub declared no dead peers under a blackhole: %+v", out.res)
	}
	if out.res.Reconnects == 0 {
		t.Errorf("no reconnects after dead-peer severing: %+v", out.res)
	}
	if werr := <-workerErr; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
}

// TestReconnectGraceExpiry pins the grace window's failure edge: a node
// that dies for good (an unrestarted crash) holds the run in the parked
// state for exactly the grace window, then fails with a diagnostic
// ErrNodeDown naming the wait.
func TestReconnectGraceExpiry(t *testing.T) {
	p := insolubleTriangle(t)
	init := csp.SliceAssignment{0, 0, 0}
	start := time.Now()
	_, err := Run(p, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, p, init[v])
	}, Options{
		Timeout:        30 * time.Second,
		ReconnectGrace: 150 * time.Millisecond,
		Faults: &faults.Config{Seed: 1, Crashes: []faults.Crash{
			{Agent: 1, AfterSteps: 2, Restart: false},
		}},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if !strings.Contains(err.Error(), "unreachable") || !strings.Contains(err.Error(), "awaiting reconnection") {
		t.Errorf("diagnostic %q does not describe the expired grace", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("grace expiry took %v; the run idled toward the timeout", elapsed)
	}
}

// TestNegativeGraceFailsImmediately pins the opt-out: ReconnectGrace < 0
// restores the pre-reconnection behavior — the first failed write to an
// unrestartable node kills the run with no parking.
func TestNegativeGraceFailsImmediately(t *testing.T) {
	p := insolubleTriangle(t)
	init := csp.SliceAssignment{0, 0, 0}
	_, err := Run(p, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, p, init[v])
	}, Options{
		Timeout:        30 * time.Second,
		ReconnectGrace: -1,
		Faults: &faults.Config{Seed: 1, Crashes: []faults.Crash{
			{Agent: 1, AfterSteps: 2, Restart: false},
		}},
	})
	if !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	if strings.Contains(err.Error(), "awaiting reconnection") {
		t.Errorf("negative grace still parked frames: %q", err)
	}
}

// TestCorruptFramesRecoveredByCRC runs AWC under a seeded corruption fault
// with the CRC32C trailer armed: every damaged frame must be detected and
// counted at the receiver, recovered by retransmission, and the run must
// end in a verified solution exactly like a clean network's.
func TestCorruptFramesRecoveredByCRC(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 71)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 72)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return core.NewAgent(v, inst.Problem, init[v], core.Learning{Kind: core.LearnResolvent})
	}, Options{
		Timeout:  60 * time.Second,
		Checksum: true,
		Faults:   &faults.Config{Seed: 9, Corrupt: 0.15},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved || !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("not solved under corruption: %+v", res)
	}
	if res.CorruptFrames == 0 {
		t.Errorf("no corrupt frames detected at 15%% corruption: %+v", res)
	}
	if res.Retransmits == 0 {
		t.Errorf("no retransmits; corrupted frames were not recovered by the transport: %+v", res)
	}
}

// TestCorruptWithoutChecksumDegradesToDrop pins the fault's behavior on
// links without the trailer: undetectable damage is indistinguishable from
// a drop, so the injector withholds the frame instead (the retransmit
// machinery still recovers) and nothing counts as corrupt.
func TestCorruptWithoutChecksumDegradesToDrop(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 71)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 72)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return core.NewAgent(v, inst.Problem, init[v], core.Learning{Kind: core.LearnResolvent})
	}, Options{
		Timeout: 60 * time.Second,
		Faults:  &faults.Config{Seed: 9, Corrupt: 0.15},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved || !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("not solved under degraded corruption: %+v", res)
	}
	if res.CorruptFrames != 0 {
		t.Errorf("CorruptFrames = %d without a CRC trailer to detect them", res.CorruptFrames)
	}
	if res.Retransmits == 0 {
		t.Errorf("no retransmits; degraded drops were not recovered: %+v", res)
	}
}

// TestLivenessDisabled pins the opt-out: Heartbeat < 0 turns the beacon
// layer off entirely and a clean run completes exactly as before.
func TestLivenessDisabled(t *testing.T) {
	p, init := ringProblem(t, 6)
	res, err := Run(p, awcMaker(p, init), Options{
		Timeout:   30 * time.Second,
		Heartbeat: -1,
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved || !p.IsSolution(res.Assignment) {
		t.Fatalf("not solved with liveness disabled: %+v", res)
	}
	if res.HeartbeatTimeouts != 0 || res.Reconnects != 0 {
		t.Errorf("liveness counters nonzero with liveness disabled: %+v", res)
	}
}
