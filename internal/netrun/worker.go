package netrun

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/wire"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Addrs are the hub's relay addresses in shard order. Node v dials
	// Addrs[v mod len(Addrs)] — the same consistent assignment the hub
	// uses, so each node lands on its home shard.
	Addrs []string
	// Vars are the variables this worker owns; each becomes one node.
	Vars []int
	// Codec is the wire codec to request (zero value = binary); the hub's
	// welcome decides per connection.
	Codec wire.Codec
	// NoBatch disables frame batching on the worker's writers.
	NoBatch bool
	// DrainWindow bounds how long a node with a failed write drains inbound
	// frames for the hub's stop before classifying the error as a hub
	// death; 0 means the 1s default. External workers on slow links raise
	// it so a graceful hub shutdown is not mistaken for a crash.
	DrainWindow time.Duration
}

// RunWorker runs agent nodes against an external hub — a Run with
// Options.External on another goroutine, process, or machine (cmd/dcspnode
// is the process form). It blocks until the hub broadcasts stop or tears
// the connections down; once any node observes the stop, its siblings'
// subsequent socket errors count as the same clean shutdown. Faults are
// hub-side configuration, so worker nodes never crash-restart.
func RunWorker(problem *csp.Problem, makeAgent func(v csp.Var) sim.Agent, opts WorkerOptions) error {
	if len(opts.Addrs) == 0 {
		return errors.New("netrun: worker needs at least one relay address")
	}
	if len(opts.Vars) == 0 {
		return errors.New("netrun: worker owns no variables")
	}
	n := problem.NumVars()
	for _, v := range opts.Vars {
		if v < 0 || v >= n {
			return fmt.Errorf("netrun: worker variable %d out of range [0,%d)", v, n)
		}
	}
	ctr := nodeCounters{checks: make([]atomic.Int64, n)}
	done := make(chan struct{})
	var once sync.Once
	stopped := func() { once.Do(func() { close(done) }) }

	var wg sync.WaitGroup
	errs := make(chan error, len(opts.Vars))
	for _, v := range opts.Vars {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			cfg := nodeConfig{
				addr:        opts.Addrs[shardOf(v, len(opts.Addrs))],
				v:           csp.Var(v),
				makeAgent:   makeAgent,
				codec:       opts.Codec,
				noBatch:     opts.NoBatch,
				ctr:         &ctr,
				done:        done,
				onStop:      stopped,
				drainWindow: opts.DrainWindow,
			}
			if _, err := runNode(cfg, 0); err != nil {
				errs <- fmt.Errorf("node %d: %w", v, err)
			}
		}(v)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	return nil
}
