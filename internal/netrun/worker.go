package netrun

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/wire"
)

// WorkerOptions configures RunWorker.
type WorkerOptions struct {
	// Addrs are the hub's relay addresses in shard order. Node v dials
	// Addrs[v mod len(Addrs)] — the same consistent assignment the hub
	// uses, so each node lands on its home shard.
	Addrs []string
	// Vars are the variables this worker owns; each becomes one node.
	Vars []int
	// Codec is the wire codec to request (zero value = binary); the hub's
	// welcome decides per connection.
	Codec wire.Codec
	// NoBatch disables frame batching on the worker's writers.
	NoBatch bool
	// DrainWindow bounds how long a node with a failed write drains inbound
	// frames for the hub's stop before classifying the error as a hub
	// death; 0 means the 1s default. External workers on slow links raise
	// it so a graceful hub shutdown is not mistaken for a crash.
	DrainWindow time.Duration
	// ConnectTimeout bounds each node's dial-with-retry loop — at startup,
	// where the worker may launch before the hub listens, and on
	// reconnection after a severed socket; 0 means 15s.
	ConnectTimeout time.Duration
	// Checksum requests the CRC32C frame trailer in each node's hello; the
	// hub's welcome confirms it per connection (binary codec only, and
	// only when the hub armed checksums too).
	Checksum bool
	// Heartbeat is the idle-link beacon period; 0 means 500ms, negative
	// disables. It should match the hub's setting: the hub declares a node
	// dead after DeadPeerTimeout of silence.
	Heartbeat time.Duration
	// DeadPeerTimeout is the node-side hub-silence bound: hearing nothing
	// (not even a heartbeat) for this long makes a node abandon its
	// connection and redial. 0 means 4× the heartbeat period; it is
	// disabled when heartbeats are.
	DeadPeerTimeout time.Duration
	// Causal, when non-nil, traces this worker's nodes and requests causal
	// trace-ID propagation in each hello; the hub confirms only when its
	// run enabled Causal or CausalRelay. The caller owns the tracer (and
	// its sink), so a worker relaunched with the same tracer keeps its
	// trace-ID counters — cause IDs stay stable across cold reconnections.
	Causal *causal.Tracer
}

// WorkerStats reports one worker's transport totals after RunWorker
// returns: the worker-side view of the counters the hub's Result carries
// for in-process runs.
type WorkerStats struct {
	// Reconnects counts sessions re-established after a severed
	// connection, summed over the worker's nodes.
	Reconnects int64
	// Retransmits counts frames resent past a lost ack.
	Retransmits int64
	// DuplicatesSuppressed counts deliveries absorbed by the dedup layer.
	DuplicatesSuppressed int64
	// CorruptFrames counts inbound frames rejected by the CRC32C trailer
	// and recovered by hub-side retransmission.
	CorruptFrames int64
}

// RunWorker runs agent nodes against an external hub — a Run with
// Options.External on another goroutine, process, or machine (cmd/dcspnode
// is the process form). It blocks until the hub broadcasts stop or tears
// the connections down; once any node observes the stop, its siblings'
// subsequent socket errors count as the same clean shutdown. Faults are
// hub-side configuration, so worker nodes never crash-restart — but they do
// reconnect: a node that loses its socket mid-solve redials and resumes,
// and one that dials before the hub listens retries until ConnectTimeout.
func RunWorker(problem *csp.Problem, makeAgent func(v csp.Var) sim.Agent, opts WorkerOptions) (WorkerStats, error) {
	if len(opts.Addrs) == 0 {
		return WorkerStats{}, errors.New("netrun: worker needs at least one relay address")
	}
	if len(opts.Vars) == 0 {
		return WorkerStats{}, errors.New("netrun: worker owns no variables")
	}
	n := problem.NumVars()
	for _, v := range opts.Vars {
		if v < 0 || v >= n {
			return WorkerStats{}, fmt.Errorf("netrun: worker variable %d out of range [0,%d)", v, n)
		}
	}
	hb := opts.Heartbeat
	if hb == 0 {
		hb = defaultHeartbeat
	}
	if hb < 0 {
		hb = 0
	}
	deadPeer := opts.DeadPeerTimeout
	if deadPeer <= 0 {
		deadPeer = 4 * hb
	}
	ctr := nodeCounters{checks: make([]atomic.Int64, n)}
	done := make(chan struct{})
	var once sync.Once
	stopped := func() { once.Do(func() { close(done) }) }

	var wg sync.WaitGroup
	errs := make(chan error, len(opts.Vars))
	for _, v := range opts.Vars {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			cfg := nodeConfig{
				addr:           opts.Addrs[shardOf(v, len(opts.Addrs))],
				v:              csp.Var(v),
				makeAgent:      makeAgent,
				codec:          opts.Codec,
				noBatch:        opts.NoBatch,
				crc:            opts.Checksum,
				causal:         opts.Causal,
				hb:             hb,
				ctr:            &ctr,
				done:           done,
				onStop:         stopped,
				drainWindow:    opts.DrainWindow,
				reconnect:      true,
				connectTimeout: opts.ConnectTimeout,
				deadPeer:       deadPeer,
			}
			if _, err := runNode(cfg, 0); err != nil {
				errs <- fmt.Errorf("node %d: %w", v, err)
			}
		}(v)
	}
	wg.Wait()
	close(errs)
	stats := WorkerStats{
		Reconnects:           ctr.reconnects.Load(),
		Retransmits:          ctr.retransmits.Load(),
		DuplicatesSuppressed: ctr.dups.Load(),
		CorruptFrames:        ctr.corrupt.Load(),
	}
	for err := range errs {
		return stats, err
	}
	return stats, nil
}
