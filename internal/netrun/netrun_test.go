package netrun

import (
	"testing"
	"time"

	"github.com/discsp/discsp/internal/abt"
	"github.com/discsp/discsp/internal/breakout"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

func TestRunEmptyProblem(t *testing.T) {
	res, err := Run(csp.NewProblem(), nil, Options{})
	if err != nil || !res.Solved {
		t.Fatalf("empty problem: %+v %v", res, err)
	}
}

func TestAWCOverTCPSolvesColoring(t *testing.T) {
	inst, err := gen.Coloring(20, 54, 3, 61)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 62)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return core.NewAgent(v, inst.Problem, init[v], core.Learning{Kind: core.LearnResolvent})
	}, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("not solved over TCP: %+v", res)
	}
	if !inst.Problem.IsSolution(res.Assignment) {
		t.Fatalf("snapshot is not a solution")
	}
	if res.Messages == 0 {
		t.Errorf("no messages routed")
	}
}

func TestDBOverTCPSolvesColoring(t *testing.T) {
	inst, err := gen.Coloring(15, 40, 3, 63)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 64)
	res, err := Run(inst.Problem, func(v csp.Var) sim.Agent {
		return breakout.NewAgent(v, inst.Problem, init[v])
	}, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved {
		t.Fatalf("DB not solved over TCP: %+v", res)
	}
}

func TestABTOverTCPDetectsInsolubility(t *testing.T) {
	p := csp.NewProblemUniform(4, 3) // K4 with 3 colors
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := Run(p, func(v csp.Var) sim.Agent {
		return abt.NewAgent(v, p, 0)
	}, Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Insoluble {
		t.Fatalf("insolubility not detected over TCP: %+v", res)
	}
}

func TestTCPQuiescenceOnUnconstrainedProblem(t *testing.T) {
	// Two variables, one binary constraint, consistent start: the nodes
	// exchange their initial ok?s and everything settles.
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	init := csp.SliceAssignment{0, 1}
	res, err := Run(p, func(v csp.Var) sim.Agent {
		return core.NewAgent(v, p, init[v], core.Learning{Kind: core.LearnResolvent})
	}, Options{Timeout: 10 * time.Second})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !res.Solved {
		t.Fatalf("consistent start not recognized: %+v", res)
	}
}
