// Tests for causal tracing over the TCP runtime's failure paths: the trace
// must stay well-formed — unique IDs, no dangling causes — across a node
// crash-restart (the restarted incarnation continues its predecessor's
// numbering) and across a cold worker reconnection (the resume handshake
// renumbers transport sequence numbers, never trace IDs).
package netrun

import (
	"bytes"
	"testing"
	"time"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/core"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/faults"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
)

// causalRun builds a tracer over a fresh stream and returns the maker
// wrapped to hand each agent its lineage handle, plus a closer that
// finalizes the stream and decodes it.
func causalRun(t *testing.T, p *csp.Problem, maker func(csp.Var) sim.Agent) (*causal.Tracer, func(csp.Var) sim.Agent, func() []telemetry.Event) {
	t.Helper()
	var buf bytes.Buffer
	run := telemetry.NewRun(telemetry.NewRegistry(), &buf)
	run.Emit(telemetry.Event{Kind: telemetry.KindMeta, Runtime: "tcp"})
	tracer := causal.New(run, p)
	wrapped := func(v csp.Var) sim.Agent {
		a := maker(v)
		if ca, ok := a.(interface {
			SetCausal(*causal.AgentTracer)
		}); ok {
			ca.SetCausal(tracer.Agent(int(v)))
		}
		return a
	}
	done := func() []telemetry.Event {
		run.Emit(telemetry.Event{Kind: telemetry.KindEnd})
		if err := run.Flush(); err != nil {
			t.Fatal(err)
		}
		events, err := telemetry.Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return events
	}
	return tracer, wrapped, done
}

// checkTrace builds the graph and pins the well-formedness invariants:
// BuildGraph itself rejects duplicate trace IDs, and no cause may dangle.
func checkTrace(t *testing.T, events []telemetry.Event) *causal.Graph {
	t.Helper()
	g, err := causal.BuildGraph(events)
	if err != nil {
		t.Fatalf("trace graph malformed: %v", err)
	}
	if dang := g.Dangling(); len(dang) > 0 {
		t.Fatalf("%d dangling cause IDs (first %s)", len(dang), dang[0])
	}
	return g
}

// TestCausalSurvivesCrashRestart crash-restarts a traced node mid-solve and
// requires the final trace to be a single well-formed run: the restarted
// incarnation reuses its predecessor's AgentTracer, so no trace ID is ever
// reissued and every nogood it re-announces still resolves.
func TestCausalSurvivesCrashRestart(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 73)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 74)
	tracer, maker, done := causalRun(t, inst.Problem, awcMaker(inst.Problem, init))

	res, err := Run(inst.Problem, maker, Options{
		Timeout: 60 * time.Second,
		Causal:  tracer,
		Faults: &faults.Config{Seed: 5, Crashes: []faults.Crash{
			{Agent: 2, AfterSteps: 0, Restart: true},
		}},
	})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Solved || res.Restarts != 1 {
		t.Fatalf("want solved with 1 restart: %+v", res)
	}

	g := checkTrace(t, done())
	// The crashed agent must have kept tracing after its restart: spans from
	// agent 2 exist on both sides of the crash (AfterSteps: 0 kills it on
	// its first step, so any span from it at all proves the handle survived
	// — require several to show the restarted incarnation kept going).
	spans2 := 0
	for _, id := range g.Order {
		n := g.Nodes[id]
		if n.Agent == 2 && (n.Kind == causal.SpanInit || n.Kind == causal.SpanStep) {
			spans2++
		}
	}
	if spans2 < 2 {
		t.Errorf("restarted agent contributed %d spans, want >= 2", spans2)
	}
}

// TestCausalSurvivesColdReconnect severs every worker connection mid-solve.
// The worker redials, the resume handshake renegotiates causal tracing and
// renumbers the link's transport sequence, and the replayed frames must
// still carry their original trace IDs: the post-reconnect trace builds
// cleanly with no duplicate and no dangling IDs.
func TestCausalSurvivesColdReconnect(t *testing.T) {
	inst, err := gen.Coloring(15, 35, 3, 77)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 78)
	tracer, maker, done := causalRun(t, inst.Problem, awcMaker(inst.Problem, init))

	addrsCh := make(chan []string, 1)
	type hubOut struct {
		res Result
		err error
	}
	hubCh := make(chan hubOut, 1)
	go func() {
		res, err := Run(inst.Problem, awcMaker(inst.Problem, init), Options{
			Timeout:        30 * time.Second,
			External:       true,
			CausalRelay:    true,
			ReconnectGrace: 10 * time.Second,
			OnListen:       func(addrs []string) { addrsCh <- addrs },
		})
		hubCh <- hubOut{res, err}
	}()
	addrs := <-addrsCh
	px := newTestProxy(t, addrs[0])

	statsCh := make(chan WorkerStats, 1)
	workerErr := make(chan error, 1)
	go func() {
		st, err := RunWorker(inst.Problem, maker, WorkerOptions{
			Addrs:          []string{px.addr()},
			Vars:           allVars(inst.Problem.NumVars()),
			ConnectTimeout: 10 * time.Second,
			Causal:         tracer,
		})
		statsCh <- st
		workerErr <- err
	}()

	px.waitBytes(t, 4<<10, 20*time.Second)
	px.severAll()

	out := <-hubCh
	if out.err != nil {
		t.Fatalf("run: %v (res=%+v)", out.err, out.res)
	}
	if !out.res.Solved || !inst.Problem.IsSolution(out.res.Assignment) {
		t.Fatalf("not solved across severed connections: %+v", out.res)
	}
	if werr := <-workerErr; werr != nil {
		t.Fatalf("worker: %v", werr)
	}
	if st := <-statsCh; st.Reconnects == 0 {
		t.Fatalf("worker counted no reconnects; the sever did not bite: %+v", st)
	}

	// All agents live in the one worker, so its stream is the whole trace:
	// every message consumed was also emitted there, and the reconnection
	// must not have torn that closure.
	g := checkTrace(t, done())
	msgs := 0
	for _, id := range g.Order {
		if g.Nodes[id].Kind == causal.KindMessage {
			msgs++
		}
	}
	if msgs == 0 {
		t.Error("trace recorded no messages across the reconnection")
	}
}

// core.Agent must satisfy the SetCausal attachment interface the runtimes
// probe for; a silent signature drift would disable lineage tracing.
var _ interface{ SetCausal(*causal.AgentTracer) } = (*core.Agent)(nil)
