package abt

import (
	"testing"

	"github.com/discsp/discsp/internal/central"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

func run(t *testing.T, p *csp.Problem, initial csp.SliceAssignment, maxCycles int) (sim.Result, []*Agent) {
	t.Helper()
	agents := make([]sim.Agent, p.NumVars())
	abtAgents := make([]*Agent, p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		a := NewAgent(csp.Var(v), p, initial[v])
		agents[v] = a
		abtAgents[v] = a
	}
	res, err := sim.Run(p, agents, sim.Options{MaxCycles: maxCycles})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, abtAgents
}

func TestLowestPriorityVariable(t *testing.T) {
	ng := csp.MustNogood(csp.Lit{Var: 1, Val: 0}, csp.Lit{Var: 5, Val: 1}, csp.Lit{Var: 3, Val: 2})
	if got := lowest(ng); got != 5 {
		t.Errorf("lowest = %d, want 5 (largest id = lowest priority)", got)
	}
}

func TestConstraintOwnership(t *testing.T) {
	// In ABT the lowest-priority (largest-id) participant evaluates each
	// constraint; the other sides keep no copy.
	p := csp.NewProblemUniform(2, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	a0 := NewAgent(0, p, 0)
	a1 := NewAgent(1, p, 0)
	if a0.store.Len() != 0 {
		t.Errorf("higher-priority agent evaluates %d nogoods, want 0", a0.store.Len())
	}
	if a1.store.Len() != 2 {
		t.Errorf("lower-priority agent evaluates %d nogoods, want 2", a1.store.Len())
	}
}

func TestABTSolvesChain(t *testing.T) {
	p := csp.NewProblemUniform(3, 2)
	if err := p.AddNotEqual(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNotEqual(1, 2); err != nil {
		t.Fatal(err)
	}
	res, _ := run(t, p, csp.SliceAssignment{0, 0, 0}, 100)
	if !res.Solved {
		t.Fatalf("ABT did not solve the chain: %+v", res)
	}
}

func TestABTDetectsInsolubility(t *testing.T) {
	// A 2-coloring of a triangle has no solution; ABT is complete and must
	// derive it.
	p := csp.NewProblemUniform(3, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, _ := run(t, p, csp.SliceAssignment{0, 0, 0}, 1000)
	if res.Solved {
		t.Fatalf("solved an insoluble problem")
	}
	if !res.Insoluble {
		t.Fatalf("insolubility not detected: %+v", res)
	}
}

func TestABTUnaryWipeout(t *testing.T) {
	p := csp.NewProblemUniform(1, 2)
	for val := csp.Value(0); val < 2; val++ {
		if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: 0, Val: val})); err != nil {
			t.Fatal(err)
		}
	}
	a := NewAgent(0, p, 0)
	a.Init()
	if !a.Insoluble() {
		t.Errorf("wiped domain not detected as insoluble")
	}
}

func TestABTAgreesWithOracleOnRandomInstances(t *testing.T) {
	// Small solvable coloring instances: ABT must find a solution exactly
	// when the centralized oracle does (here: always).
	for seed := int64(0); seed < 8; seed++ {
		inst, err := gen.Coloring(12, 30, 3, seed)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		if _, ok := central.New(inst.Problem).Solve(); !ok {
			t.Fatalf("oracle rejects a generated-solvable instance")
		}
		init := gen.RandomInitial(inst.Problem, seed+50)
		res, _ := run(t, inst.Problem, init, 10000)
		if !res.Solved {
			t.Errorf("seed %d: ABT failed on a solvable instance", seed)
		}
		if !inst.Problem.IsSolution(res.Assignment) {
			t.Errorf("seed %d: reported non-solution", seed)
		}
	}
}

func TestABTInsolubleRandomInstances(t *testing.T) {
	// 4-cliques are 3-colorable-insoluble when restricted to 3 colors?
	// No — K4 needs 4 colors, so 3-coloring K4 is insoluble. ABT must
	// prove it.
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := central.New(p).Solve(); ok {
		t.Fatalf("oracle solved K4 with 3 colors")
	}
	res, _ := run(t, p, csp.SliceAssignment{0, 0, 0, 0}, 10000)
	if !res.Insoluble {
		t.Fatalf("ABT did not prove K4 3-coloring insoluble: %+v", res)
	}
}

func TestABTStatsPopulated(t *testing.T) {
	inst, err := gen.Coloring(12, 30, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 4)
	res, agents := run(t, inst.Problem, init, 10000)
	if !res.Solved {
		t.Fatalf("not solved")
	}
	var changes int64
	for _, a := range agents {
		changes += a.Stats().ValueChanges
	}
	if changes == 0 {
		t.Errorf("no value changes recorded on a random start")
	}
}
