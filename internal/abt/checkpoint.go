package abt

import (
	"fmt"
	"sort"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// Snapshot is an ABT agent's durable state for crash-restart recovery. View
// entries and links are canonically sorted by variable.
type Snapshot struct {
	Value csp.Value
	// Nogoods is the full store in insertion order (initial constraints the
	// agent evaluates plus recorded nogoods). Kept alongside Store for
	// older consumers; Store is authoritative when populated.
	Nogoods []csp.Nogood
	// Store carries the retention metadata (pinned flags, stamps, hits) so
	// bounded-store runs resume eviction decisions exactly.
	Store    nogood.State
	Checks   int64
	ViewVars []csp.Var
	ViewVals []csp.Value
	// OutLinks are the lower-priority ok? targets, sorted.
	OutLinks  []csp.Var
	Insoluble bool
	Stats     Stats
}

var _ sim.Checkpointer = (*Agent)(nil)

// Checkpoint implements sim.Checkpointer.
func (a *Agent) Checkpoint() any {
	s := &Snapshot{
		Value:     a.value,
		Nogoods:   a.store.Snapshot(),
		Store:     a.store.State(),
		Checks:    a.counter.Total(),
		Insoluble: a.insoluble,
		Stats:     a.stats,
	}
	vars := make([]csp.Var, 0, len(a.view))
	for v := range a.view {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	for _, v := range vars {
		s.ViewVars = append(s.ViewVars, v)
		s.ViewVals = append(s.ViewVals, a.view[v])
	}
	s.OutLinks = make([]csp.Var, 0, len(a.outLinks))
	for v := range a.outLinks {
		s.OutLinks = append(s.OutLinks, v)
	}
	sort.Slice(s.OutLinks, func(i, j int) bool { return s.OutLinks[i] < s.OutLinks[j] })
	return s
}

// Restore implements sim.Checkpointer.
func (a *Agent) Restore(snapshot any) error {
	s, ok := snapshot.(*Snapshot)
	if !ok {
		return fmt.Errorf("abt: cannot restore %T into an ABT agent", snapshot)
	}
	if len(s.ViewVars) != len(s.ViewVals) {
		return fmt.Errorf("abt: corrupt snapshot: view slices of unequal length")
	}
	a.value = s.Value
	if s.Store.Nogoods != nil {
		a.store.RestoreState(s.Store)
	} else {
		a.store.Restore(s.Nogoods)
	}
	a.counter.Restore(s.Checks)
	a.insoluble = s.Insoluble
	a.stats = s.Stats
	a.view = make(map[csp.Var]csp.Value, len(s.ViewVars))
	for i, v := range s.ViewVars {
		a.view[v] = s.ViewVals[i]
	}
	a.outLinks = make(map[csp.Var]struct{}, len(s.OutLinks))
	for _, v := range s.OutLinks {
		a.outLinks[v] = struct{}{}
	}
	return nil
}
