// Package abt implements asynchronous backtracking (ABT, Yokoo et al.,
// ICDCS-92 / TKDE-98), the ancestor of AWC cited in Section 1 of the paper.
// Agent priorities are fixed by variable id (smaller id = higher priority)
// and the learning method is the cheapest one the paper surveys: "an agent
// uses an agent_view itself as a nogood. The cost of this method is
// virtually zero ... However, the obtained nogood is not so effective."
//
// ABT is included as a comparison point and because it is complete: it
// detects insolubility by deriving the empty nogood, which the test suite
// exercises against the centralized oracle.
package abt

import (
	"fmt"
	"sort"

	"github.com/discsp/discsp/internal/causal"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
	"github.com/discsp/discsp/internal/telemetry"
)

// Ok carries the sender's current value to a lower-priority agent.
type Ok struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Value    csp.Value
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m Ok) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Ok) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m Ok) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m Ok) WithCausalID(id causal.ID) any { m.TID = id; return m }

// NogoodMsg carries a derived nogood to the lowest-priority agent in it.
type NogoodMsg struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Nogood   csp.Nogood
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m NogoodMsg) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m NogoodMsg) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m NogoodMsg) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m NogoodMsg) WithCausalID(id causal.ID) any { m.TID = id; return m }

// CarriedNogoodKey implements causal.NogoodCarrier.
func (m NogoodMsg) CarriedNogoodKey() string { return m.Nogood.Key() }

// Request asks the receiver to add the sender as an outgoing link (sent when
// a received nogood mentions an unknown higher-priority variable).
type Request struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	// TID is the message's causal trace ID; zero when tracing is off.
	TID causal.ID
}

// From implements sim.Message.
func (m Request) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Request) To() sim.AgentID { return m.Receiver }

// CausalID implements causal.Traced.
func (m Request) CausalID() causal.ID { return m.TID }

// WithCausalID implements causal.Traced.
func (m Request) WithCausalID(id causal.ID) any { m.TID = id; return m }

// Stats exposes per-agent bookkeeping.
type Stats struct {
	Backtracks      int64
	NogoodsRecorded int64
	ObsoleteNogoods int64
	ValueChanges    int64
}

// Agent is one ABT agent owning one variable. Priority is the variable id:
// smaller id outranks larger.
type Agent struct {
	id     csp.Var
	domain []csp.Value

	store   *nogood.Store
	counter nogood.Counter

	value    csp.Value
	view     map[csp.Var]csp.Value // values of higher-priority agents
	outLinks map[csp.Var]struct{}  // lower-priority agents to send ok? to

	insoluble bool
	stats     Stats

	// causalT, when non-nil, records nogood lineage (store and learn
	// events). Nil when tracing is off.
	causalT *causal.AgentTracer
}

var _ sim.Agent = (*Agent)(nil)
var _ sim.InsolubleReporter = (*Agent)(nil)

// NewAgent builds the ABT agent for variable id of problem. The agent
// evaluates the nogoods in which it is the lowest-priority (largest-id)
// participant; unary constraints on itself are always its own to evaluate.
func NewAgent(id csp.Var, problem *csp.Problem, initial csp.Value) *Agent {
	return NewAgentRetention(id, problem, initial, nogood.Retention{})
}

// NewAgentRetention is NewAgent with a bounded nogood store. The agent's
// own constraints are pinned; learned backtrack nogoods are evictable.
// Forgetting never changes a reached verdict (learned nogoods are implied
// by the constraints), but ABT's termination argument leans on recorded
// nogoods, so aggressive caps can make a run exhaust its cycle budget
// instead of finishing — the cap trades completeness pressure for memory,
// exactly the knob the knowledge-base management literature studies.
func NewAgentRetention(id csp.Var, problem *csp.Problem, initial csp.Value, ret nogood.Retention) *Agent {
	a := &Agent{
		id:       id,
		domain:   problem.Domain(id),
		store:    nogood.NewRetention(ret),
		value:    initial,
		view:     make(map[csp.Var]csp.Value),
		outLinks: make(map[csp.Var]struct{}),
	}
	for _, ng := range problem.NogoodsOf(id) {
		if lowest(ng) == id {
			a.store.AddPinned(ng)
		}
	}
	for _, nb := range problem.Neighbors(id) {
		if nb > id {
			a.outLinks[nb] = struct{}{}
		}
	}
	return a
}

// lowest returns the lowest-priority (largest-id) variable of ng.
func lowest(ng csp.Nogood) csp.Var {
	return ng.At(ng.Len() - 1).Var // canonical order is ascending
}

// ID implements sim.Agent.
func (a *Agent) ID() sim.AgentID { return sim.AgentID(a.id) }

// CurrentValue implements sim.Agent.
func (a *Agent) CurrentValue() csp.Value { return a.value }

// Checks implements sim.Agent.
func (a *Agent) Checks() int64 { return a.counter.Total() }

// Insoluble implements sim.InsolubleReporter.
func (a *Agent) Insoluble() bool { return a.insoluble }

// StoreSize returns the number of nogoods currently recorded (the agent's
// own constraints plus learned backtrack nogoods).
func (a *Agent) StoreSize() int { return a.store.Len() }

// LearnedNogoods returns the surviving learned (unpinned) nogoods, for
// warm-start harvesting.
func (a *Agent) LearnedNogoods() []csp.Nogood { return a.store.Learned() }

// StoreEvictions returns the number of retention evictions so far.
func (a *Agent) StoreEvictions() int64 { return a.store.Evictions() }

// StoreLearnedLen returns the number of learned (unpinned, evictable)
// nogoods currently stored — the population a retention cap bounds.
func (a *Agent) StoreLearnedLen() int { return a.store.LearnedLen() }

// Instrument attaches telemetry to the agent's nogood store: Size tracks
// the live store size, Lengths the literal counts of learned nogoods,
// Evictions the retention evictions. Called after construction so the
// seeded constraints stay out of the length histogram.
func (a *Agent) Instrument(m telemetry.StoreMetrics) {
	a.store.Instrument(m)
}

// SetCausal attaches the causal tracing handle (nil disables lineage
// recording). Restarted incarnations receive the same handle, keeping
// trace IDs stable.
func (a *Agent) SetCausal(at *causal.AgentTracer) { a.causalT = at }

// Stats returns the agent's bookkeeping counters.
func (a *Agent) Stats() Stats { return a.stats }

// Init implements sim.Agent: repair unary-constraint violations of the
// initial value (only unary constraints can fire against an empty view) and
// announce the value to all lower-priority links.
func (a *Agent) Init() []sim.Message {
	a.checkAgentView(nil)
	return a.broadcastOk()
}

// Reannounce implements sim.Reannouncer: restate the current value to one
// lower-priority peer whose process relaunched without memory. Higher-
// priority peers never receive ok? in ABT, so they get nothing here either.
func (a *Agent) Reannounce(peer sim.AgentID) []sim.Message {
	if _, ok := a.outLinks[csp.Var(peer)]; !ok {
		return nil
	}
	return []sim.Message{Ok{Sender: a.ID(), Receiver: peer, Value: a.value}}
}

// Step implements sim.Agent.
func (a *Agent) Step(in []sim.Message) []sim.Message {
	if a.insoluble {
		return nil
	}
	var (
		out           []sim.Message
		nogoodSenders []sim.AgentID
		changedView   bool
	)
	for _, m := range in {
		switch msg := m.(type) {
		case Ok:
			a.view[csp.Var(msg.Sender)] = msg.Value
			changedView = true
		case Request:
			v := csp.Var(msg.Sender)
			if _, ok := a.outLinks[v]; !ok {
				a.outLinks[v] = struct{}{}
				out = append(out, Ok{Sender: a.ID(), Receiver: sim.AgentID(v), Value: a.value})
			}
		case NogoodMsg:
			out = append(out, a.receiveNogood(msg)...)
			nogoodSenders = append(nogoodSenders, msg.Sender)
			changedView = true
		default:
			panic(fmt.Sprintf("abt: unexpected message type %T", m))
		}
	}
	if !changedView {
		return out
	}
	oldValue := a.value
	out = a.checkAgentView(out)
	if a.value == oldValue {
		// Standard ABT rule: a nogood that did not make the recipient move
		// is answered with an ok?, so the sender (which optimistically
		// dropped this agent's value from its view) relearns the current
		// value and can backtrack further.
		for _, s := range nogoodSenders {
			a.stats.ObsoleteNogoods++
			out = append(out, Ok{Sender: a.ID(), Receiver: s, Value: a.value})
		}
	}
	return out
}

// receiveNogood records the nogood and requests links for unknown
// higher-priority variables. An obsolete nogood (one that prescribes a
// value for this agent different from its current value) additionally makes
// the agent re-announce its value to the sender, whose view is stale.
func (a *Agent) receiveNogood(msg NogoodMsg) []sim.Message {
	ng := msg.Nogood
	var out []sim.Message
	for i := 0; i < ng.Len(); i++ {
		l := ng.At(i)
		if l.Var == a.id {
			continue
		}
		if _, known := a.view[l.Var]; !known {
			a.view[l.Var] = l.Val
			out = append(out, Request{Sender: a.ID(), Receiver: sim.AgentID(l.Var)})
		}
	}
	if a.store.Add(ng) {
		a.stats.NogoodsRecorded++
		a.causalT.Store(ng, msg.TID)
	}
	return out
}

// probe is the assignment "my view with my variable set to val".
type probe struct {
	a   *Agent
	val csp.Value
}

var _ csp.Assignment = probe{}

// Lookup implements csp.Assignment.
func (p probe) Lookup(v csp.Var) (csp.Value, bool) {
	if v == p.a.id {
		return p.val, true
	}
	val, ok := p.a.view[v]
	return val, ok
}

// checkAgentView restores consistency: keep the current value if possible,
// otherwise move to a consistent value, otherwise backtrack with the
// agent_view as the nogood.
func (a *Agent) checkAgentView(out []sim.Message) []sim.Message {
	for {
		if a.consistent(a.value) {
			return out
		}
		if d, ok := a.findConsistent(); ok {
			a.value = d
			a.stats.ValueChanges++
			return append(out, a.broadcastOk()...)
		}

		// Backtrack: the agent_view itself is the nogood.
		a.stats.Backtracks++
		lits := make([]csp.Lit, 0, len(a.view))
		for v, val := range a.view {
			lits = append(lits, csp.Lit{Var: v, Val: val})
		}
		ng := csp.MustNogood(lits...)
		// ABT's nogood is the agent_view itself; the derivation consults no
		// store entries, so the learn event's cause is just the enclosing
		// span (whose causes are the ok? messages that built the view).
		a.causalT.Learn(ng)
		if ng.Empty() {
			a.insoluble = true
			return out
		}
		target := lowest(ng)
		out = append(out, NogoodMsg{
			Sender:   a.ID(),
			Receiver: sim.AgentID(target),
			Nogood:   ng,
		})
		// Assume the target changes: forget its value and retry. Without
		// this the agent would be stuck until the target's next ok?.
		delete(a.view, target)
	}
}

// consistent reports whether no stored nogood is violated under view ∧
// (own = val), charging checks.
func (a *Agent) consistent(val csp.Value) bool {
	return !a.store.AnyViolated(probe{a: a, val: val}, &a.counter)
}

// findConsistent scans the domain in order for a consistent value.
func (a *Agent) findConsistent() (csp.Value, bool) {
	for _, d := range a.domain {
		if d == a.value {
			continue // already known inconsistent
		}
		if a.consistent(d) {
			return d, true
		}
	}
	return 0, false
}

func (a *Agent) broadcastOk() []sim.Message {
	targets := make([]csp.Var, 0, len(a.outLinks))
	for v := range a.outLinks {
		targets = append(targets, v)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	msgs := make([]sim.Message, 0, len(targets))
	for _, v := range targets {
		msgs = append(msgs, Ok{
			Sender:   a.ID(),
			Receiver: sim.AgentID(v),
			Value:    a.value,
		})
	}
	return msgs
}
