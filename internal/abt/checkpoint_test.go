package abt

import (
	"reflect"
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

func TestCheckpointRoundTrip(t *testing.T) {
	// K4 with 3 colors: insoluble, so a few cycles generate backtracking,
	// recorded nogoods, and link additions.
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	agents := make([]*Agent, 4)
	simAgents := make([]sim.Agent, 4)
	for v := range agents {
		agents[v] = NewAgent(csp.Var(v), p, 0)
		simAgents[v] = agents[v]
	}
	if _, err := sim.Run(p, simAgents, sim.Options{MaxCycles: 3}); err != nil {
		t.Fatal(err)
	}
	for v, a := range agents {
		cp := a.Checkpoint()
		fresh := NewAgent(csp.Var(v), p, 0)
		if err := fresh.Restore(cp); err != nil {
			t.Fatalf("agent %d: restore: %v", v, err)
		}
		if got := fresh.Checkpoint(); !reflect.DeepEqual(got, cp) {
			t.Fatalf("agent %d: restored checkpoint differs:\n got %+v\nwant %+v", v, got, cp)
		}
		if a.insoluble {
			continue // a dead agent ignores further traffic either way
		}
		batch := []sim.Message{Ok{Sender: sim.AgentID((v + 3) % 4), Receiver: sim.AgentID(v), Value: 1}}
		if out1, out2 := a.Step(batch), fresh.Step(batch); !reflect.DeepEqual(out1, out2) {
			t.Fatalf("agent %d: restored agent diverged on next step", v)
		}
		if !reflect.DeepEqual(fresh.Checkpoint(), a.Checkpoint()) {
			t.Fatalf("agent %d: state diverged after identical step", v)
		}
	}
}

func TestRestoreRejectsForeignSnapshot(t *testing.T) {
	p := csp.NewProblemUniform(2, 2)
	a := NewAgent(0, p, 0)
	if err := a.Restore(42); err == nil {
		t.Fatal("restore accepted a foreign snapshot")
	}
}
