package causal

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/telemetry"
)

func TestParseIDRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want ID
	}{
		{"0:1", ID{Agent: 0, Seq: 1}},
		{"17:9000000000", ID{Agent: 17, Seq: 9000000000}},
		{"c:0", ID{Agent: ConstraintAgent, Seq: 0}},
		{"c:42", ID{Agent: ConstraintAgent, Seq: 42}},
	}
	for _, c := range cases {
		got, err := ParseID(c.in)
		if err != nil {
			t.Errorf("ParseID(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseID(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if s := got.String(); s != c.in {
			t.Errorf("%+v.String() = %q, want %q", got, s, c.in)
		}
	}
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		id := ID{Agent: int32(r.Intn(1 << 20)), Seq: r.Int63()}
		back, err := ParseID(id.String())
		if err != nil || back != id {
			t.Fatalf("round trip %+v -> %q -> %+v, err=%v", id, id.String(), back, err)
		}
	}
	for _, bad := range []string{"", "7", "x:1", "1:y", "1:", ":3"} {
		if _, err := ParseID(bad); err == nil {
			t.Errorf("ParseID(%q) accepted malformed input", bad)
		}
	}
}

func TestZeroIDIsUntraced(t *testing.T) {
	if !(ID{}).IsZero() {
		t.Error("zero ID not IsZero")
	}
	if (ID{Agent: 0, Seq: 1}).IsZero() {
		t.Error("allocated ID reads as zero")
	}
}

// nilsafe: a disabled tracer (nil sink) must hand out nil handles whose
// every method is an immediate no-op — the inertness guarantee's first leg.
func TestNilTracerIsInert(t *testing.T) {
	tr := New(nil, testProblem(t))
	if tr != nil {
		t.Fatal("New(nil, ...) did not return a nil tracer")
	}
	at := tr.Agent(3)
	if at != nil {
		t.Fatal("nil tracer handed out a non-nil agent handle")
	}
	// None of these may panic.
	at.Begin(SpanStep, 1)
	at.Cause(testMsg{})
	if m := at.Stamp(testMsg{payload: 9}, 2, "ok"); m.(testMsg).payload != 9 {
		t.Error("nil Stamp did not pass the message through unchanged")
	}
	at.Consult(mustNogood(t, csp.Lit{Var: 0, Val: 1}))
	at.Learn(mustNogood(t, csp.Lit{Var: 0, Val: 1}))
	at.Store(mustNogood(t, csp.Lit{Var: 0, Val: 1}), ID{Agent: 1, Seq: 1})
	at.End()
}

// testMsg is a minimal Traced + NogoodCarrier message.
type testMsg struct {
	tid     ID
	payload int
	carries string
}

func (m testMsg) CausalID() ID             { return m.tid }
func (m testMsg) WithCausalID(id ID) any   { m.tid = id; return m }
func (m testMsg) CarriedNogoodKey() string { return m.carries }

// untracedMsg does not implement Traced; Stamp must pass it through.
type untracedMsg struct{ payload int }

func mustNogood(t *testing.T, lits ...csp.Lit) csp.Nogood {
	t.Helper()
	ng, err := csp.NewNogood(lits...)
	if err != nil {
		t.Fatal(err)
	}
	return ng
}

// testProblem builds a 3-variable chain with two not-equal constraints.
func testProblem(t *testing.T) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(3, 2)
	for i := 0; i < 2; i++ {
		if err := p.AddNotEqual(csp.Var(i), csp.Var(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// record runs fn against a fresh tracer and returns the decoded stream.
func record(t *testing.T, p *csp.Problem, fn func(*Tracer)) []telemetry.Event {
	t.Helper()
	var buf bytes.Buffer
	run := telemetry.NewRun(telemetry.NewRegistry(), &buf)
	run.Emit(telemetry.Event{Kind: telemetry.KindMeta, Runtime: "sync"})
	tr := New(run, p)
	if tr == nil {
		t.Fatal("tracer nil with live sink")
	}
	fn(tr)
	run.Emit(telemetry.Event{Kind: telemetry.KindEnd, Solved: true})
	if err := run.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := telemetry.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

// TestConstraintFrontier: New numbers the problem's canonical nogoods as
// c:0..c:k-1 in index order, one SpanConstraint each.
func TestConstraintFrontier(t *testing.T) {
	p := testProblem(t)
	events := record(t, p, func(tr *Tracer) {})
	var ids []string
	for _, ev := range events {
		if ev.Kind == telemetry.KindSpan {
			if ev.SpanKind != SpanConstraint {
				t.Errorf("unexpected span kind %q", ev.SpanKind)
			}
			if ev.Agent != ConstraintAgent || ev.NogoodKey == "" {
				t.Errorf("constraint span malformed: %+v", ev)
			}
			ids = append(ids, ev.SpanID)
		}
	}
	if len(ids) != p.NumNogoods() {
		t.Fatalf("got %d constraint spans, want %d", len(ids), p.NumNogoods())
	}
	for i, id := range ids {
		want := ID{Agent: ConstraintAgent, Seq: int64(i)}.String()
		if id != want {
			t.Errorf("constraint %d numbered %s, want %s", i, id, want)
		}
	}
}

// TestSpanLifecycle drives one agent through a full activation — cause,
// stamp, store, consult, learn — and checks the resulting graph wires every
// edge the way the analyses rely on.
func TestSpanLifecycle(t *testing.T) {
	p := testProblem(t)
	stored := mustNogood(t, csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 1, Val: 0})
	learned := mustNogood(t, csp.Lit{Var: 0, Val: 1})
	var stampedOut any
	events := record(t, p, func(tr *Tracer) {
		a0 := tr.Agent(0)
		a0.Begin(SpanInit, 0)
		stampedOut = a0.Stamp(testMsg{payload: 7}, 1, "ok")
		a0.End()

		a1 := tr.Agent(1)
		a1.Begin(SpanStep, 2)
		a1.Cause(stampedOut)
		a1.Store(stored, stampedOut.(testMsg).CausalID())
		a1.Consult(stored)
		a1.Consult(p.Nogood(0)) // initial constraint: resolves to c:0
		a1.Learn(learned)
		// The outgoing nogood message links back to the learn event.
		out := a1.Stamp(testMsg{carries: learned.Key()}, 0, "nogood")
		a1.End()
		if out.(testMsg).CausalID().IsZero() {
			t.Error("stamped message has no trace ID")
		}

		// Untraced messages pass through Stamp unchanged.
		a1.Begin(SpanStep, 3)
		if m := a1.Stamp(untracedMsg{payload: 4}, 0, "raw"); m.(untracedMsg).payload != 4 {
			t.Error("non-Traced message mutated by Stamp")
		}
		a1.End()

		// An activation with no causes, emits, or inner events is dropped.
		a1.Begin(SpanStep, 4)
		a1.End()
	})

	g, err := BuildGraph(events)
	if err != nil {
		t.Fatal(err)
	}
	if dang := g.Dangling(); len(dang) != 0 {
		t.Fatalf("dangling causes: %v", dang)
	}

	msgID := stampedOut.(testMsg).CausalID().String()
	msg := g.Nodes[msgID]
	if msg == nil || msg.Kind != KindMessage || msg.To != 1 || msg.Type != "ok" {
		t.Fatalf("message node wrong: %+v", msg)
	}

	var step, store, learn *Node
	for _, id := range g.Order {
		n := g.Nodes[id]
		switch {
		case n.Kind == SpanStep && n.Agent == 1 && n.Cycle == 2:
			step = n
		case n.Kind == SpanStore:
			store = n
		case n.Kind == SpanLearn:
			learn = n
		}
	}
	if step == nil || store == nil || learn == nil {
		t.Fatalf("missing nodes: step=%v store=%v learn=%v", step, store, learn)
	}
	if len(step.Causes) != 1 || step.Causes[0] != msgID {
		t.Errorf("step causes = %v, want [%s]", step.Causes, msgID)
	}
	if len(store.Causes) != 1 || store.Causes[0] != msgID {
		t.Errorf("store causes = %v, want [%s]", store.Causes, msgID)
	}
	// Learn causes: enclosing span, then the consulted store entry and the
	// consulted initial constraint.
	wantCauses := map[string]bool{step.ID: true, store.ID: true, "c:0": true}
	if len(learn.Causes) != 3 {
		t.Fatalf("learn causes = %v, want 3 entries", learn.Causes)
	}
	for _, c := range learn.Causes {
		if !wantCauses[c] {
			t.Errorf("unexpected learn cause %s (want one of %v)", c, wantCauses)
		}
	}
	if learn.NogoodKey == "" {
		t.Error("learn event lost its nogood key")
	}

	// The nogood-carrying emission records the learn event as extra cause.
	var carrier *Node
	for _, id := range g.Order {
		n := g.Nodes[id]
		if n.Kind == KindMessage && n.Type == "nogood" {
			carrier = n
		}
	}
	if carrier == nil {
		t.Fatal("nogood-carrying message not materialized")
	}
	found := false
	for _, c := range carrier.Causes {
		if c == learn.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("carrier causes %v do not include learn %s", carrier.Causes, learn.ID)
	}

	// The idle activation (cycle 4) must have been dropped.
	for _, id := range g.Order {
		if n := g.Nodes[id]; n.Kind == SpanStep && n.Cycle == 4 {
			t.Error("idle activation was emitted")
		}
	}
}

// TestAgentHandleStableAcrossRestart pins the crash-restart contract: the
// handle (and its counter) belongs to the Tracer, so a restarted incarnation
// continues its predecessor's numbering instead of reissuing IDs.
func TestAgentHandleStableAcrossRestart(t *testing.T) {
	events := record(t, testProblem(t), func(tr *Tracer) {
		first := tr.Agent(5)
		first.Begin(SpanInit, 0)
		first.Stamp(testMsg{}, 1, "ok")
		first.End()

		// "Restart": a new incarnation asks for the same agent's handle.
		second := tr.Agent(5)
		if second != first {
			t.Fatal("restarted incarnation got a fresh handle")
		}
		second.Begin(SpanStep, 0)
		second.Stamp(testMsg{}, 1, "ok")
		second.End()
	})
	g, err := BuildGraph(events)
	if err != nil {
		t.Fatal(err) // a reset counter would produce duplicate IDs here
	}
	var maxSeq int64
	for _, id := range g.Order {
		n := g.Nodes[id]
		if n.PID.Agent == 5 && n.PID.Seq > maxSeq {
			maxSeq = n.PID.Seq
		}
	}
	if maxSeq != 4 { // span, msg, span, msg
		t.Errorf("agent 5 counter reached %d, want 4", maxSeq)
	}
}

// TestConsultUnknownOriginSeeds: consulting a nogood the tracer never saw
// (a warm-start entry recorded before tracing attached) registers a seed
// node, so the provenance walk never dangles.
func TestConsultUnknownOriginSeeds(t *testing.T) {
	foreign := mustNogood(t, csp.Lit{Var: 2, Val: 1})
	events := record(t, testProblem(t), func(tr *Tracer) {
		a := tr.Agent(0)
		a.Begin(SpanStep, 1)
		a.Consult(foreign)
		a.Learn(mustNogood(t, csp.Lit{Var: 0, Val: 0}))
		a.End()
	})
	g, err := BuildGraph(events)
	if err != nil {
		t.Fatal(err)
	}
	if dang := g.Dangling(); len(dang) != 0 {
		t.Fatalf("dangling causes: %v", dang)
	}
	seeds := 0
	for _, id := range g.Order {
		if n := g.Nodes[id]; n.Kind == SpanSeed {
			seeds++
			if n.NogoodKey != foreign.Key() {
				t.Errorf("seed key = %q, want %q", n.NogoodKey, foreign.Key())
			}
		}
	}
	if seeds != 1 {
		t.Errorf("got %d seed nodes, want 1", seeds)
	}
}

// span builds a synthetic activation-span event for graph tests.
func span(id, kind string, agent int, start, end int64, causes []string, emits ...[4]string) telemetry.Event {
	ev := telemetry.Event{
		Kind: telemetry.KindSpan, SpanKind: kind, SpanID: id, Agent: agent,
		StartUS: start, EndUS: end, Causes: causes,
	}
	for _, e := range emits {
		ev.Emits = append(ev.Emits, e[0])
		ev.EmitTo = append(ev.EmitTo, int(e[1][0]-'0'))
		ev.EmitType = append(ev.EmitType, e[2])
		ev.EmitCause = append(ev.EmitCause, e[3])
	}
	return ev
}

// chainEvents is a hand-built three-hop implication chain:
//
//	agent 0 init [0,10]  — emits 0:2 to agent 1
//	agent 1 step [15,40] — caused by 0:2, emits 1:2 to agent 2
//	agent 2 step [50,60] — caused by 1:2
//	agent 0 step [5,8]   — a short decoy off the critical chain
func chainEvents(runtime string) []telemetry.Event {
	return []telemetry.Event{
		{Kind: telemetry.KindMeta, Runtime: runtime},
		span("0:1", SpanInit, 0, 0, 10, nil, [4]string{"0:2", "1", "ok", ""}),
		span("0:3", SpanStep, 0, 5, 8, nil),
		span("1:1", SpanStep, 1, 15, 40, []string{"0:2"}, [4]string{"1:2", "2", "ok", ""}),
		span("2:1", SpanStep, 2, 50, 60, []string{"1:2"}),
		{Kind: telemetry.KindEnd, Solved: true, DurationUS: 60},
	}
}

func TestCriticalPathChain(t *testing.T) {
	g, err := BuildGraph(chainEvents("async"))
	if err != nil {
		t.Fatal(err)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp.TransitKind != "queue" {
		t.Errorf("TransitKind = %q, want queue", cp.TransitKind)
	}
	wantSpans := []string{"0:1", "1:1", "2:1"}
	if len(cp.Steps) != len(wantSpans) {
		t.Fatalf("path has %d steps, want %d: %+v", len(cp.Steps), len(wantSpans), cp.Steps)
	}
	for i, s := range cp.Steps {
		if s.Span.ID != wantSpans[i] {
			t.Errorf("step %d span %s, want %s", i, s.Span.ID, wantSpans[i])
		}
	}
	if cp.Steps[0].Msg != nil {
		t.Error("first step has an inbound message")
	}
	if cp.Steps[1].Msg == nil || cp.Steps[1].Msg.ID != "0:2" {
		t.Errorf("step 1 message = %+v, want 0:2", cp.Steps[1].Msg)
	}
	// compute: 10 + 25 + 10 = 45; transit: (15-10) + (50-40) = 15; total 60.
	if cp.ComputeUS != 45 || cp.TransitUS != 15 || cp.TotalUS != 60 {
		t.Errorf("compute=%d transit=%d total=%d, want 45/15/60",
			cp.ComputeUS, cp.TransitUS, cp.TotalUS)
	}
	if cp.PerAgent[1] != 25 {
		t.Errorf("agent 1 compute = %d, want 25", cp.PerAgent[1])
	}

	// The tcp runtime classifies the same hand-offs as wire latency.
	g2, err := BuildGraph(chainEvents("tcp"))
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := g2.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if cp2.TransitKind != "wire" {
		t.Errorf("tcp TransitKind = %q, want wire", cp2.TransitKind)
	}
}

func TestBuildGraphRejectsDuplicateIDs(t *testing.T) {
	events := []telemetry.Event{
		span("0:1", SpanStep, 0, 0, 1, nil),
		span("0:1", SpanStep, 0, 2, 3, nil),
	}
	if _, err := BuildGraph(events); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("want duplicate-id error, got %v", err)
	}
}

func TestBuildGraphNoTrace(t *testing.T) {
	events := []telemetry.Event{
		{Kind: telemetry.KindMeta, Runtime: "sync"},
		{Kind: telemetry.KindEnd, Solved: true},
	}
	if _, err := BuildGraph(events); err != ErrNoTrace {
		t.Errorf("want ErrNoTrace, got %v", err)
	}
}

func TestDangling(t *testing.T) {
	events := []telemetry.Event{
		span("1:1", SpanStep, 1, 0, 1, []string{"0:9", "0:9", "2:7"}),
	}
	g, err := BuildGraph(events)
	if err != nil {
		t.Fatal(err)
	}
	dang := g.Dangling()
	if len(dang) != 2 || dang[0] != "0:9" || dang[1] != "2:7" {
		t.Errorf("Dangling() = %v, want [0:9 2:7]", dang)
	}
}

// provenanceEvents: constraint c:0 → store 1:2 (via message 0:2) and learn
// 1:3 consulting the store entry; learn 2:2 consults nothing but its span.
func provenanceEvents() []telemetry.Event {
	return []telemetry.Event{
		{Kind: telemetry.KindMeta, Runtime: "sync"},
		{Kind: telemetry.KindSpan, SpanKind: SpanConstraint, SpanID: "c:0", Agent: ConstraintAgent, NogoodKey: "0=1"},
		span("0:1", SpanInit, 0, 0, 10, nil, [4]string{"0:2", "1", "nogood", "c:0"}),
		span("1:1", SpanStep, 1, 12, 20, []string{"0:2"}),
		{Kind: telemetry.KindSpan, SpanKind: SpanStore, SpanID: "1:2", Agent: 1, Causes: []string{"0:2"}, NogoodKey: "0=1"},
		{Kind: telemetry.KindSpan, SpanKind: SpanLearn, SpanID: "1:3", Agent: 1, Causes: []string{"1:1", "1:2"}, NogoodKey: "1=0"},
		span("2:1", SpanStep, 2, 30, 35, nil),
		{Kind: telemetry.KindSpan, SpanKind: SpanLearn, SpanID: "2:2", Agent: 2, Causes: []string{"2:1"}, NogoodKey: "2=1"},
		{Kind: telemetry.KindEnd, Solved: true},
	}
}

func TestProvenance(t *testing.T) {
	g, err := BuildGraph(provenanceEvents())
	if err != nil {
		t.Fatal(err)
	}

	all, err := g.Provenance("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Roots) != 2 || all.Roots[0].ID != "1:3" || all.Roots[1].ID != "2:2" {
		t.Fatalf("roots = %+v, want learn nodes 1:3, 2:2", all.Roots)
	}
	if len(all.Dangling) != 0 {
		t.Errorf("dangling: %v", all.Dangling)
	}
	// Terminal frontier of the full walk: the constraint node and the two
	// cause-free activation spans.
	terms := all.Terminals()
	var termIDs []string
	for _, n := range terms {
		termIDs = append(termIDs, n.ID)
	}
	wantTerms := map[string]bool{"c:0": true, "0:1": true, "2:1": true}
	if len(terms) != len(wantTerms) {
		t.Fatalf("terminals = %v, want %v", termIDs, wantTerms)
	}
	for _, id := range termIDs {
		if !wantTerms[id] {
			t.Errorf("unexpected terminal %s", id)
		}
	}
	// 1:3 consulted the store node 1:2 — one use.
	if all.UseCounts["1:2"] != 1 {
		t.Errorf("UseCounts[1:2] = %d, want 1", all.UseCounts["1:2"])
	}

	// Query by trace ID walks only that root's cone.
	one, err := g.Provenance("1:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Roots) != 1 || one.Roots[0].ID != "1:3" {
		t.Fatalf("roots = %+v", one.Roots)
	}
	if _, reached := one.Reach["2:2"]; reached {
		t.Error("1:3's cone reaches unrelated learn 2:2")
	}
	if _, reached := one.Reach["c:0"]; !reached {
		t.Error("1:3's cone misses the constraint terminal")
	}

	// Query by canonical nogood key.
	byKey, err := g.Provenance("0=1")
	if err != nil {
		t.Fatal(err)
	}
	if len(byKey.Roots) != 2 { // the constraint node and the store node share the key
		t.Fatalf("key query roots = %+v, want 2", byKey.Roots)
	}

	// A non-nogood node is rejected by ID.
	if _, err := g.Provenance("1:1"); err == nil {
		t.Error("Provenance accepted an activation span as root")
	}
	if _, err := g.Provenance("no-such"); err == nil {
		t.Error("Provenance accepted an unknown target")
	}
}

// TestWritePerfetto: the export is valid JSON in Chrome trace-event shape —
// a traceEvents array with metadata, complete spans, and flow s/f pairs.
func TestWritePerfetto(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, chainEvents("async")); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			TID   int    `json:"tid"`
			ID    string `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	flows := map[string]int{}
	for _, ev := range f.TraceEvents {
		counts[ev.Phase]++
		if ev.Phase == "s" || ev.Phase == "f" {
			flows[ev.ID]++
		}
	}
	if counts["X"] != 4 { // four activation spans
		t.Errorf("complete spans = %d, want 4", counts["X"])
	}
	if counts["M"] == 0 {
		t.Error("no metadata events (process/thread names)")
	}
	// Both consumed messages (0:2, 1:2) get an s/f pair.
	if counts["s"] != 2 || counts["f"] != 2 {
		t.Errorf("flow events s=%d f=%d, want 2/2", counts["s"], counts["f"])
	}
	for id, n := range flows {
		if n != 2 {
			t.Errorf("flow %s has %d endpoints, want 2", id, n)
		}
	}
}
