package causal

import (
	"errors"
	"fmt"
	"sort"

	"github.com/discsp/discsp/internal/telemetry"
)

// This file is the read side: it reconstructs the causal graph from a
// schema-3 telemetry stream and runs the dcsptrace analyses on it.

// Node kinds beyond the span kinds written by the tracer.
const (
	// KindMessage is a reconstructed message node: the write side records
	// emissions inline on their span (Emits/EmitTo/EmitType/EmitCause), and
	// the graph builder materializes each as its own node whose causes are
	// the emitting span plus the carried-nogood node.
	KindMessage = "message"
)

// Node is one vertex of the causal graph.
type Node struct {
	ID    string
	PID   ID     // parsed form of ID
	Kind  string // SpanInit, SpanStep, SpanLearn, SpanStore, SpanSeed, SpanConstraint, or KindMessage
	Agent int
	Cycle int

	// Message-node fields.
	To   int
	Type string

	// Span timestamps (activation spans only), µs since tracing started.
	StartUS, EndUS int64

	Causes    []string
	NogoodKey string
}

// Graph is the reconstructed causal graph of one traced run.
type Graph struct {
	Nodes map[string]*Node
	// Order lists node IDs in stream order, for deterministic iteration.
	Order []string

	// Runtime is the traced run's runtime ("sync", "async", "tcp"), from
	// the stream's meta event; it classifies inter-span latency as queue
	// (in-process hand-off) or wire (TCP hop).
	Runtime string
	// Verdict fields from the stream's end event, when present.
	Solved     bool
	Insoluble  bool
	DurationUS int64

	// consumer maps a message node to the span that listed it as a cause.
	consumer map[string]string
}

// ErrNoTrace marks a stream without span events (the run was not traced
// with -causal).
var ErrNoTrace = errors.New("causal: stream contains no span events (was the run traced with -causal?)")

// BuildGraph reconstructs the causal graph from a telemetry stream.
func BuildGraph(events []telemetry.Event) (*Graph, error) {
	g := &Graph{Nodes: make(map[string]*Node), consumer: make(map[string]string)}
	for _, ev := range events {
		switch ev.Kind {
		case telemetry.KindMeta:
			if g.Runtime == "" && ev.Runtime != "" {
				g.Runtime = ev.Runtime
			}
		case telemetry.KindEnd:
			g.Solved, g.Insoluble, g.DurationUS = ev.Solved, ev.Insoluble, ev.DurationUS
		case telemetry.KindSpan:
			if err := g.addSpan(ev); err != nil {
				return nil, err
			}
		}
	}
	if len(g.Nodes) == 0 {
		return nil, ErrNoTrace
	}
	for _, id := range g.Order {
		n := g.Nodes[id]
		if n.Kind != SpanInit && n.Kind != SpanStep {
			continue
		}
		for _, c := range n.Causes {
			if m, ok := g.Nodes[c]; ok && m.Kind == KindMessage {
				g.consumer[c] = n.ID
			}
		}
	}
	return g, nil
}

func (g *Graph) addSpan(ev telemetry.Event) error {
	pid, err := ParseID(ev.SpanID)
	if err != nil {
		return err
	}
	n := &Node{
		ID:        ev.SpanID,
		PID:       pid,
		Kind:      ev.SpanKind,
		Agent:     ev.Agent,
		Cycle:     ev.Cycle,
		StartUS:   ev.StartUS,
		EndUS:     ev.EndUS,
		Causes:    ev.Causes,
		NogoodKey: ev.NogoodKey,
	}
	if err := g.add(n); err != nil {
		return err
	}
	if len(ev.Emits) != len(ev.EmitTo) || len(ev.Emits) != len(ev.EmitType) || len(ev.Emits) != len(ev.EmitCause) {
		return fmt.Errorf("causal: span %s has ragged emit columns", ev.SpanID)
	}
	for i, mid := range ev.Emits {
		mpid, err := ParseID(mid)
		if err != nil {
			return err
		}
		causes := []string{ev.SpanID}
		if ev.EmitCause[i] != "" {
			causes = append(causes, ev.EmitCause[i])
		}
		if err := g.add(&Node{
			ID:        mid,
			PID:       mpid,
			Kind:      KindMessage,
			Agent:     ev.Agent,
			Cycle:     ev.Cycle,
			To:        ev.EmitTo[i],
			Type:      ev.EmitType[i],
			StartUS:   ev.EndUS, // send instant: when the emitting span closed
			EndUS:     ev.EndUS,
			Causes:    causes,
			NogoodKey: "",
		}); err != nil {
			return err
		}
	}
	return nil
}

func (g *Graph) add(n *Node) error {
	if _, dup := g.Nodes[n.ID]; dup {
		return fmt.Errorf("causal: duplicate trace id %s (streams hold at most one traced run)", n.ID)
	}
	g.Nodes[n.ID] = n
	g.Order = append(g.Order, n.ID)
	return nil
}

// Dangling returns every cause ID referenced by some node but defined by
// none, in first-reference order. A correct trace returns an empty slice:
// provenance chains terminate at constraint/seed/init nodes, which exist
// and have no causes.
func (g *Graph) Dangling() []string {
	var out []string
	seen := make(map[string]bool)
	for _, id := range g.Order {
		for _, c := range g.Nodes[id].Causes {
			if _, ok := g.Nodes[c]; !ok && !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// before orders nodes deterministically: by agent, then seq.
func before(a, b *Node) bool {
	if a.PID.Agent != b.PID.Agent {
		return a.PID.Agent < b.PID.Agent
	}
	return a.PID.Seq < b.PID.Seq
}

// PathStep is one hop of the critical path: an activation span, the
// message that delivered its critical dependency (nil on the first step),
// and the split of the step's latency contribution.
type PathStep struct {
	Span *Node
	Msg  *Node
	// TransitUS is the latency between the sending span's end and this
	// span's start (message queued or on the wire); ComputeUS is this
	// span's own duration.
	TransitUS int64
	ComputeUS int64
}

// CriticalPath is the longest causal chain ending at the verdict: starting
// from the last span to finish, each step walks back through the
// dependency that arrived last — the edge that determined when the span
// could run, and therefore the run's wall clock.
type CriticalPath struct {
	Steps []PathStep
	// TotalUS is the span of the path: last end minus first start.
	TotalUS int64
	// ComputeUS and TransitUS split the path's latency into agent compute
	// and message hand-off; TransitKind names the hand-off medium ("wire"
	// on the tcp runtime, "queue" otherwise).
	ComputeUS   int64
	TransitUS   int64
	TransitKind string
	// PerAgent is each agent's compute contribution along the path.
	PerAgent map[int]int64
}

// CriticalPath extracts the critical path. The terminal span is the last
// activation to finish (ties broken by trace ID, so extraction is
// deterministic for a given stream).
func (g *Graph) CriticalPath() (*CriticalPath, error) {
	var terminal *Node
	for _, id := range g.Order {
		n := g.Nodes[id]
		if n.Kind != SpanInit && n.Kind != SpanStep {
			continue
		}
		if terminal == nil || n.EndUS > terminal.EndUS ||
			(n.EndUS == terminal.EndUS && before(n, terminal)) {
			terminal = n
		}
	}
	if terminal == nil {
		return nil, ErrNoTrace
	}

	cp := &CriticalPath{PerAgent: make(map[int]int64)}
	cp.TransitKind = "queue"
	if g.Runtime == "tcp" {
		cp.TransitKind = "wire"
	}

	// Walk backwards: at each span, the critical dependency is the message
	// whose sender finished last; without message causes the chain starts.
	cur := terminal
	var rev []PathStep
	visited := make(map[string]bool)
	for {
		if visited[cur.ID] {
			return nil, fmt.Errorf("causal: cycle through %s", cur.ID)
		}
		visited[cur.ID] = true
		var critMsg, critSender *Node
		for _, c := range cur.Causes {
			m, ok := g.Nodes[c]
			if !ok || m.Kind != KindMessage {
				continue
			}
			s, ok := g.Nodes[m.Causes[0]]
			if !ok {
				continue
			}
			if critSender == nil || s.EndUS > critSender.EndUS ||
				(s.EndUS == critSender.EndUS && before(s, critSender)) {
				critMsg, critSender = m, s
			}
		}
		step := PathStep{Span: cur, ComputeUS: cur.EndUS - cur.StartUS}
		if critMsg != nil {
			step.Msg = critMsg
			if t := cur.StartUS - critSender.EndUS; t > 0 {
				step.TransitUS = t
			}
		}
		rev = append(rev, step)
		if critSender == nil {
			break
		}
		cur = critSender
	}
	for i := len(rev) - 1; i >= 0; i-- {
		cp.Steps = append(cp.Steps, rev[i])
	}
	for _, s := range cp.Steps {
		cp.ComputeUS += s.ComputeUS
		cp.TransitUS += s.TransitUS
		cp.PerAgent[s.Span.Agent] += s.ComputeUS
	}
	cp.TotalUS = terminal.EndUS - cp.Steps[0].Span.StartUS
	return cp, nil
}

// Provenance is the derivation DAG of one or more nogood nodes, walked
// back to its terminal frontier (constraints and seeds).
type Provenance struct {
	// Roots are the queried nogood nodes, in stream order.
	Roots []*Node
	// Reach is the reachable subgraph, keyed by node ID.
	Reach map[string]*Node
	// UseCounts maps each nogood node's ID to the number of times a learn
	// event consulted it — the audit signal for retention policy: an
	// evicted nogood with a high use count was evicted too early.
	UseCounts map[string]int
	// Dangling lists cause IDs that resolve to no node; empty on a
	// well-formed trace.
	Dangling []string
}

// nogoodNode reports whether n introduces a nogood.
func nogoodNode(n *Node) bool {
	switch n.Kind {
	case SpanLearn, SpanStore, SpanSeed, SpanConstraint:
		return true
	}
	return false
}

// Provenance builds the derivation DAG for target: a trace ID, a canonical
// nogood key, or "" / "all" for every learn node in the trace. Use counts
// are computed over the whole trace regardless of target, so the audit
// view is stable.
func (g *Graph) Provenance(target string) (*Provenance, error) {
	p := &Provenance{Reach: make(map[string]*Node), UseCounts: make(map[string]int)}
	for _, id := range g.Order {
		n := g.Nodes[id]
		if n.Kind != SpanLearn {
			continue
		}
		for _, c := range n.Causes {
			if m, ok := g.Nodes[c]; ok && nogoodNode(m) {
				p.UseCounts[c]++
			}
		}
	}
	for _, id := range g.Order {
		n := g.Nodes[id]
		switch {
		case target == "" || target == "all":
			if n.Kind == SpanLearn {
				p.Roots = append(p.Roots, n)
			}
		case n.ID == target:
			if !nogoodNode(n) {
				return nil, fmt.Errorf("causal: node %s is a %s, not a nogood node", n.ID, n.Kind)
			}
			p.Roots = append(p.Roots, n)
		case n.NogoodKey == target && nogoodNode(n):
			p.Roots = append(p.Roots, n)
		}
	}
	if len(p.Roots) == 0 {
		return nil, fmt.Errorf("causal: no nogood node matches %q", target)
	}
	queue := make([]*Node, 0, len(p.Roots))
	seenDangling := make(map[string]bool)
	for _, r := range p.Roots {
		if _, ok := p.Reach[r.ID]; !ok {
			p.Reach[r.ID] = r
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Causes {
			m, ok := g.Nodes[c]
			if !ok {
				if !seenDangling[c] {
					seenDangling[c] = true
					p.Dangling = append(p.Dangling, c)
				}
				continue
			}
			if _, ok := p.Reach[m.ID]; !ok {
				p.Reach[m.ID] = m
				queue = append(queue, m)
			}
		}
	}
	sort.Strings(p.Dangling)
	return p, nil
}

// Terminals returns the reachable frontier nodes (no causes), in
// deterministic order. On a well-formed trace every walk bottoms out here:
// constraint, seed, and init nodes.
func (p *Provenance) Terminals() []*Node {
	var out []*Node
	for _, n := range p.Reach {
		if len(n.Causes) == 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return before(out[i], out[j]) })
	return out
}
