package causal

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/discsp/discsp/internal/telemetry"
)

// Chrome trace-event (Perfetto) export: a traced solve opens in
// ui.perfetto.dev as one track per agent, complete activation spans as
// duration events, learn/store nodes as instants, and every traced message
// as a flow arrow from the emitting span to the consuming one.
//
// Reference: the Trace Event Format spec (the "JSON Object Format" with a
// traceEvents array). Timestamps are microseconds, which is the tracer's
// native unit.

// perfettoEvent is one trace-event record; fields follow the spec's names.
type perfettoEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	ID    string         `json:"id,omitempty"`
	BP    string         `json:"bp,omitempty"`
	Scope string         `json:"s,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto renders a telemetry stream's causal trace as Chrome
// trace-event JSON on w.
func WritePerfetto(w io.Writer, events []telemetry.Event) error {
	g, err := BuildGraph(events)
	if err != nil {
		return err
	}
	return writePerfettoGraph(w, g)
}

func writePerfettoGraph(w io.Writer, g *Graph) error {
	f := perfettoFile{DisplayTimeUnit: "ms", TraceEvents: []perfettoEvent{}}
	f.TraceEvents = append(f.TraceEvents, perfettoEvent{
		Name: "process_name", Phase: "M", PID: 0,
		Args: map[string]any{"name": "discsp " + g.Runtime},
	})
	named := make(map[int]bool)
	nameTrack := func(agent int) {
		if named[agent] {
			return
		}
		named[agent] = true
		f.TraceEvents = append(f.TraceEvents, perfettoEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: agent,
			Args: map[string]any{"name": fmt.Sprintf("agent %d", agent)},
		})
	}

	for _, id := range g.Order {
		n := g.Nodes[id]
		switch n.Kind {
		case SpanInit, SpanStep:
			nameTrack(n.Agent)
			dur := n.EndUS - n.StartUS
			if dur < 1 {
				dur = 1 // zero-width spans are invisible; clamp to 1µs
			}
			args := map[string]any{"spanId": n.ID}
			if n.Cycle > 0 {
				args["cycle"] = n.Cycle
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: n.Kind, Phase: "X", Cat: "span",
				TS: n.StartUS, Dur: dur, PID: 0, TID: n.Agent, Args: args,
			})
		case SpanLearn, SpanStore:
			nameTrack(n.Agent)
			ts := int64(0)
			if len(n.Causes) > 0 {
				if sp, ok := g.Nodes[n.Causes[0]]; ok {
					ts = sp.EndUS
				}
			}
			name := n.Kind + " " + n.NogoodKey
			if n.Kind == SpanLearn && n.NogoodKey == "" {
				name = "learn ⊥ (insoluble)"
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: name, Phase: "i", Scope: "t", Cat: "nogood",
				TS: ts, PID: 0, TID: n.Agent,
				Args: map[string]any{"spanId": n.ID},
			})
		}
	}

	// Flow arrows: one s/f pair per message that some span consumed.
	for _, id := range g.Order {
		m := g.Nodes[id]
		if m.Kind != KindMessage {
			continue
		}
		consumerID, consumed := g.consumer[m.ID]
		if !consumed {
			continue
		}
		dst := g.Nodes[consumerID]
		f.TraceEvents = append(f.TraceEvents,
			perfettoEvent{
				Name: m.Type, Phase: "s", Cat: "msg", ID: m.ID,
				TS: m.StartUS, PID: 0, TID: m.Agent,
			},
			perfettoEvent{
				Name: m.Type, Phase: "f", BP: "e", Cat: "msg", ID: m.ID,
				TS: dst.StartUS, PID: 0, TID: dst.Agent,
			})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
