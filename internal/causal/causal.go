// Package causal implements the causal-tracing layer: every delivered
// message carries a trace ID, every agent activation is recorded as a span
// (recv → compute → sends), and every learned or stored nogood records its
// cause set — the received message being processed plus the nogood-store
// entries consulted during resolvent/mcs construction. On top of the
// resulting event stream the package builds the derivation graph and the
// three dcsptrace analyses: critical path, nogood provenance, and Chrome
// trace-event (Perfetto) export.
//
// Trace IDs are (agent, local event counter) pairs: deterministic, no
// clocks, no randomness. One per-agent counter numbers everything the agent
// does — spans, emitted messages, learn/store events — so an ID orders
// events within an agent by construction. The counter lives in the Tracer,
// not the agent, so it survives crash-restart (a restarted incarnation
// continues the dead one's numbering) and the TCP runtime's cold-reset link
// renumbering (which renumbers transport sequence numbers, never trace
// IDs). Initial constraints are numbered by their index in the problem's
// canonical nogood list under the reserved agent ConstraintAgent, giving
// every provenance DAG a well-defined terminal frontier.
//
// The layer is observationally inert when disabled: a nil *Tracer (and the
// nil *AgentTracer handles it hands out) turns every method into an
// immediate return, allocating nothing on the hot path.
package causal

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/telemetry"
)

// ConstraintAgent is the reserved agent number that owns initial-constraint
// nodes: "c:k" is the problem's k-th canonical nogood. Constraint nodes
// have no causes; every provenance chain terminates on them (or on a seed
// node, see SpanSeed).
const ConstraintAgent = -1

// ID is one trace identifier: the agent that created the event and the
// agent's local event counter at creation. The zero ID marks "untraced"
// (counters start at 1, so (0,0) is never allocated).
type ID struct {
	Agent int32
	Seq   int64
}

// IsZero reports whether the ID is the untraced sentinel.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID in its stream form: "agent:seq", with constraint
// nodes rendered "c:seq".
func (id ID) String() string {
	if id.Agent == ConstraintAgent {
		return "c:" + strconv.FormatInt(id.Seq, 10)
	}
	return strconv.FormatInt(int64(id.Agent), 10) + ":" + strconv.FormatInt(id.Seq, 10)
}

// ParseID parses the stream form produced by String.
func ParseID(s string) (ID, error) {
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return ID{}, fmt.Errorf("causal: malformed id %q", s)
	}
	seq, err := strconv.ParseInt(tail, 10, 64)
	if err != nil {
		return ID{}, fmt.Errorf("causal: malformed id %q: %v", s, err)
	}
	if head == "c" {
		return ID{Agent: ConstraintAgent, Seq: seq}, nil
	}
	agent, err := strconv.ParseInt(head, 10, 32)
	if err != nil {
		return ID{}, fmt.Errorf("causal: malformed id %q: %v", s, err)
	}
	return ID{Agent: int32(agent), Seq: seq}, nil
}

// Span kinds carried in telemetry.Event.SpanKind.
const (
	// SpanInit is an agent's startup activation (sim.Agent.Init).
	SpanInit = "init"
	// SpanStep is one message-driven activation (sim.Agent.Step).
	SpanStep = "step"
	// SpanLearn is a nogood derivation at a deadend; its causes are the
	// enclosing span plus the store entries consulted by the learner.
	SpanLearn = "learn"
	// SpanStore is the recording of a received nogood; its cause is the
	// carrying message.
	SpanStore = "store"
	// SpanConstraint declares one initial constraint node ("c:k"), emitted
	// once per problem nogood when tracing starts.
	SpanConstraint = "constraint"
	// SpanSeed declares a nogood of external origin (a warm-start cache
	// entry): a terminal node like a constraint, but agent-local.
	SpanSeed = "seed"
)

// Traced is implemented by message types that can carry a trace ID. The
// With method returns a copy with the ID set (messages are values), typed
// any so algorithm packages need no runtime import.
type Traced interface {
	CausalID() ID
	WithCausalID(ID) any
}

// NogoodCarrier is implemented by messages that transport a nogood; the
// stamping path uses it to link the message to the learn event that derived
// the nogood.
type NogoodCarrier interface {
	CarriedNogoodKey() string
}

// Tracer owns one run's trace: the shared sink, the constraint numbering,
// and one AgentTracer per agent. All methods are safe on a nil Tracer
// (tracing disabled) and safe for concurrent use — the async and TCP
// runtimes call from one goroutine per agent.
type Tracer struct {
	sink  *telemetry.Run
	start time.Time

	mu          sync.Mutex
	agents      map[int]*AgentTracer
	constraints map[string]ID
}

// New builds a tracer writing span events to sink and numbers problem's
// canonical nogood list as the constraint frontier (one SpanConstraint
// event per distinct nogood, in index order — deterministic across runs).
// A nil sink returns a nil tracer: tracing disabled.
func New(sink *telemetry.Run, problem *csp.Problem) *Tracer {
	if sink == nil {
		return nil
	}
	t := &Tracer{
		sink:        sink,
		start:       time.Now(),
		agents:      make(map[int]*AgentTracer),
		constraints: make(map[string]ID),
	}
	if problem != nil {
		for i, ng := range problem.Nogoods() {
			key := ng.Key()
			if _, dup := t.constraints[key]; dup {
				continue
			}
			id := ID{Agent: ConstraintAgent, Seq: int64(i)}
			t.constraints[key] = id
			t.sink.Emit(telemetry.Event{
				Kind:      telemetry.KindSpan,
				SpanKind:  SpanConstraint,
				SpanID:    id.String(),
				Agent:     ConstraintAgent,
				NogoodKey: key,
			})
		}
	}
	return t
}

// Agent returns the tracer handle for one agent, creating it on first use.
// Repeated calls return the same handle, so a crash-restarted agent (or a
// reconnected worker incarnation) continues its predecessor's counter and
// nogood registry: cause IDs are stable across restarts by construction.
// Nil-safe: a nil Tracer returns a nil handle, and every AgentTracer method
// is a no-op on nil.
func (t *Tracer) Agent(id int) *AgentTracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	at, ok := t.agents[id]
	if !ok {
		at = &AgentTracer{t: t, agent: int32(id)}
		t.agents[id] = at
	}
	return at
}

// sinceUS is the span clock: microseconds since the tracer was built.
// Timestamps are observational (they order and measure spans for the
// critical-path and Perfetto analyses); trace IDs never depend on them.
func (t *Tracer) sinceUS() int64 { return time.Since(t.start).Microseconds() }

// constraint resolves a nogood key against the constraint frontier.
func (t *Tracer) constraint(key string) (ID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	id, ok := t.constraints[key]
	return id, ok
}

// AgentTracer is one agent's tracing handle. It is owned by the single
// goroutine running the agent (runtimes guarantee at most one live
// incarnation per agent); only the emission into the shared sink and the
// constraint lookup synchronize. All methods no-op on a nil receiver.
type AgentTracer struct {
	t     *Tracer
	agent int32
	seq   int64

	// nogoods maps a nogood key to the local node that introduced it (a
	// learn, store, or seed event), for cause resolution when the learner
	// consults the store and when an outgoing message carries a nogood.
	nogoods map[string]ID

	// Open-span scratch, reset by Begin and reused across spans.
	open      bool
	spanID    ID
	kind      string
	cycle     int
	startUS   int64
	causes    []string
	emits     []string
	emitTo    []int
	emitType  []string
	emitCause []string
	inner     int

	// consulted accumulates the store entries a derivation selected,
	// between ConsultReset and Learn.
	consulted []string
}

// next allocates the agent's next event ID.
func (at *AgentTracer) next() ID {
	at.seq++
	return ID{Agent: at.agent, Seq: at.seq}
}

// Begin opens a span for one activation (kind SpanInit or SpanStep) at the
// given cycle (0 outside the synchronous runtime).
func (at *AgentTracer) Begin(kind string, cycle int) {
	if at == nil {
		return
	}
	at.open = true
	at.spanID = at.next()
	at.kind = kind
	at.cycle = cycle
	at.startUS = at.t.sinceUS()
	at.causes = at.causes[:0]
	at.emits = at.emits[:0]
	at.emitTo = at.emitTo[:0]
	at.emitType = at.emitType[:0]
	at.emitCause = at.emitCause[:0]
	at.inner = 0
	at.consulted = at.consulted[:0]
}

// Cause records one delivered message as a cause of the open span. Messages
// without a trace ID (from an untraced peer in a mixed fleet) are skipped.
func (at *AgentTracer) Cause(m any) {
	if at == nil || !at.open {
		return
	}
	if tm, ok := m.(Traced); ok {
		if id := tm.CausalID(); !id.IsZero() {
			at.causes = append(at.causes, id.String())
		}
	}
}

// Stamp assigns an outgoing message its trace ID and records the emission
// on the open span. Messages that do not implement Traced pass through
// unchanged. A message carrying a nogood additionally records the node that
// introduced the nogood as the emission's extra cause.
func (at *AgentTracer) Stamp(m any, to int, typeName string) any {
	if at == nil || !at.open {
		return m
	}
	tm, ok := m.(Traced)
	if !ok {
		return m
	}
	id := at.next()
	extra := ""
	if nc, isCarrier := m.(NogoodCarrier); isCarrier {
		if src, found := at.resolve(nc.CarriedNogoodKey()); found {
			extra = src.String()
		}
	}
	at.emits = append(at.emits, id.String())
	at.emitTo = append(at.emitTo, to)
	at.emitType = append(at.emitType, typeName)
	at.emitCause = append(at.emitCause, extra)
	return tm.WithCausalID(id)
}

// End closes the open span, emitting it when it saw any activity (causes,
// emissions, or inner learn/store events). Idle activations are dropped;
// the resulting seq gaps are deterministic and carry no information.
func (at *AgentTracer) End() {
	if at == nil || !at.open {
		return
	}
	at.open = false
	if len(at.causes) == 0 && len(at.emits) == 0 && at.inner == 0 {
		return
	}
	at.t.sink.Emit(telemetry.Event{
		Kind:      telemetry.KindSpan,
		SpanKind:  at.kind,
		SpanID:    at.spanID.String(),
		Agent:     int(at.agent),
		Cycle:     at.cycle,
		StartUS:   at.startUS,
		EndUS:     at.t.sinceUS(),
		Causes:    at.causes,
		Emits:     at.emits,
		EmitTo:    at.emitTo,
		EmitType:  at.emitType,
		EmitCause: at.emitCause,
	})
}

// Consult records one store entry selected during nogood derivation; the
// next Learn lists it as a cause. Entries of unknown origin (warm-start
// seeds recorded before tracing attached) are registered as seed nodes so
// no cause ever dangles.
func (at *AgentTracer) Consult(ng csp.Nogood) {
	if at == nil || !at.open {
		return
	}
	id, ok := at.resolve(ng.Key())
	if !ok {
		id = at.seed(ng.Key())
	}
	at.consulted = append(at.consulted, id.String())
}

// Learn records a derived nogood: a learn event whose causes are the
// enclosing span plus every consulted entry since Begin. The learned
// nogood's key is registered so later consultations and carrying messages
// resolve to this event. An empty key marks the empty nogood — the
// insolubility proof, the provenance DAG's root on insoluble instances.
func (at *AgentTracer) Learn(ng csp.Nogood) {
	if at == nil || !at.open {
		return
	}
	id := at.next()
	causes := make([]string, 0, len(at.consulted)+1)
	causes = append(causes, at.spanID.String())
	causes = append(causes, at.consulted...)
	at.consulted = at.consulted[:0]
	key := ng.Key()
	at.register(key, id)
	at.inner++
	at.t.sink.Emit(telemetry.Event{
		Kind:      telemetry.KindSpan,
		SpanKind:  SpanLearn,
		SpanID:    id.String(),
		Agent:     int(at.agent),
		Cycle:     at.cycle,
		Causes:    causes,
		NogoodKey: key,
	})
}

// Store records the recording of a received nogood, caused by the carrying
// message (zero when the sender was untraced).
func (at *AgentTracer) Store(ng csp.Nogood, cause ID) {
	if at == nil || !at.open {
		return
	}
	id := at.next()
	var causes []string
	if !cause.IsZero() {
		causes = []string{cause.String()}
	}
	key := ng.Key()
	at.register(key, id)
	at.inner++
	at.t.sink.Emit(telemetry.Event{
		Kind:      telemetry.KindSpan,
		SpanKind:  SpanStore,
		SpanID:    id.String(),
		Agent:     int(at.agent),
		Cycle:     at.cycle,
		Causes:    causes,
		NogoodKey: key,
	})
}

// seed registers a nogood of unknown origin as a terminal seed node.
func (at *AgentTracer) seed(key string) ID {
	id := at.next()
	at.register(key, id)
	at.t.sink.Emit(telemetry.Event{
		Kind:      telemetry.KindSpan,
		SpanKind:  SpanSeed,
		SpanID:    id.String(),
		Agent:     int(at.agent),
		NogoodKey: key,
	})
	return id
}

// resolve maps a nogood key to its introducing node: agent-local events
// first (learn/store/seed), then the global constraint frontier.
func (at *AgentTracer) resolve(key string) (ID, bool) {
	if id, ok := at.nogoods[key]; ok {
		return id, true
	}
	return at.t.constraint(key)
}

func (at *AgentTracer) register(key string, id ID) {
	if at.nogoods == nil {
		at.nogoods = make(map[string]ID)
	}
	if _, exists := at.nogoods[key]; !exists {
		at.nogoods[key] = id
	}
}
