package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// AgentSummary is one agent's quiescence-point totals from a stream.
type AgentSummary struct {
	Agent     int
	Checks    int64
	Processed int64
	StoreSize int64
}

// Summary condenses a telemetry stream: run identity from the meta event,
// verdict from the end event, per-agent totals from agent events, and
// nogood-store growth from the cycle/sample timeline.
type Summary struct {
	Runtime   string
	Algorithm string
	Vars      int
	Nogoods   int

	Solved      bool
	Insoluble   bool
	Ended       bool // an end event was present (stream not truncated)
	Cycles      int
	MaxCCK      int64
	TotalChecks int64
	Messages    int64
	Duration    time.Duration
	Transport   Transport

	Agents []AgentSummary

	// Store growth over the run, from the storeTotal field of cycle (sync)
	// or sample (async/tcp) events: first observation, peak, and last.
	StoreObservations    int
	StoreFirst           int64
	StorePeak            int64
	StoreLast            int64
	Samples              int
	FrontierTransitions  int // samples whose frontier hash differs from the previous one
	Cells                map[string]int
	TrialsSolved, Trials int
}

// Summarize folds a decoded stream (from Read) into a Summary.
func Summarize(events []Event) Summary {
	var s Summary
	s.Cells = make(map[string]int)
	lastFrontier := ""
	for _, ev := range events {
		switch ev.Kind {
		case KindMeta:
			if ev.Runtime != "" {
				s.Runtime = ev.Runtime
			}
			if ev.Algorithm != "" {
				s.Algorithm = ev.Algorithm
			}
			if ev.Vars != 0 {
				s.Vars = ev.Vars
			}
			if ev.Nogoods != 0 {
				s.Nogoods = ev.Nogoods
			}
		case KindCycle:
			s.observeStore(ev.StoreTotal)
		case KindSample:
			s.Samples++
			s.observeStore(ev.StoreTotal)
			if ev.Frontier != lastFrontier {
				if lastFrontier != "" {
					s.FrontierTransitions++
				}
				lastFrontier = ev.Frontier
			}
		case KindTrial:
			s.Trials++
			s.Cells[ev.Cell]++
			if ev.Solved {
				s.TrialsSolved++
			}
		case KindAgent:
			s.Agents = append(s.Agents, AgentSummary{
				Agent: ev.Agent, Checks: ev.Checks,
				Processed: ev.AgentProcessed, StoreSize: ev.StoreSize,
			})
		case KindEnd:
			s.Ended = true
			s.Solved, s.Insoluble = ev.Solved, ev.Insoluble
			s.Cycles, s.MaxCCK = ev.Cycles, ev.MaxCCK
			s.TotalChecks, s.Messages = ev.TotalChecks, ev.Messages
			s.Duration = time.Duration(ev.DurationUS) * time.Microsecond
			if ev.Transport != nil {
				s.Transport = *ev.Transport
			}
		}
	}
	sort.Slice(s.Agents, func(i, j int) bool { return s.Agents[i].Agent < s.Agents[j].Agent })
	if s.TotalChecks == 0 {
		// The tcp runtime's result has no run-wide check total; recover it
		// from the per-agent quiescence events.
		for _, a := range s.Agents {
			s.TotalChecks += a.Checks
		}
	}
	return s
}

func (s *Summary) observeStore(total int64) {
	if s.StoreObservations == 0 {
		s.StoreFirst = total
	}
	s.StoreObservations++
	if total > s.StorePeak {
		s.StorePeak = total
	}
	s.StoreLast = total
}

// Fprint renders the summary in dcsptrace's style.
func (s Summary) Fprint(w io.Writer) error {
	rt := s.Runtime
	if rt == "" {
		rt = "?"
	}
	if _, err := fmt.Fprintf(w, "runtime=%s algorithm=%s vars=%d nogoods=%d\n", rt, s.Algorithm, s.Vars, s.Nogoods); err != nil {
		return err
	}
	if !s.Ended {
		// Bench streams close with trial events and a snapshot, not an end
		// verdict; only a verdict-bearing stream that lost it is truncated.
		if s.Trials == 0 {
			if _, err := fmt.Fprintln(w, "stream truncated: no end event"); err != nil {
				return err
			}
		}
	} else {
		verdict := "unsolved"
		switch {
		case s.Solved:
			verdict = "solved"
		case s.Insoluble:
			verdict = "insoluble"
		}
		if _, err := fmt.Fprintf(w, "verdict=%s", verdict); err != nil {
			return err
		}
		if s.Cycles > 0 {
			if _, err := fmt.Fprintf(w, " cycles=%d maxcck=%d", s.Cycles, s.MaxCCK); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, " checks=%d messages=%d", s.TotalChecks, s.Messages); err != nil {
			return err
		}
		if s.Duration > 0 {
			if _, err := fmt.Fprintf(w, " duration=%v", s.Duration.Round(time.Microsecond)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s\n", s.Transport.Suffix()); err != nil {
			return err
		}
	}
	if s.Trials > 0 {
		if _, err := fmt.Fprintf(w, "trials=%d solved=%d cells=%d\n", s.Trials, s.TrialsSolved, len(s.Cells)); err != nil {
			return err
		}
	}
	if s.Samples > 0 {
		if _, err := fmt.Fprintf(w, "progress samples=%d frontier transitions=%d\n", s.Samples, s.FrontierTransitions); err != nil {
			return err
		}
	}
	if s.StoreObservations > 0 {
		if _, err := fmt.Fprintf(w, "nogood store growth: first=%d peak=%d last=%d (over %d observations)\n",
			s.StoreFirst, s.StorePeak, s.StoreLast, s.StoreObservations); err != nil {
			return err
		}
	}
	if len(s.Agents) > 0 {
		if _, err := fmt.Fprintf(w, "  %-6s %-12s %-10s %s\n", "agent", "checks", "processed", "store"); err != nil {
			return err
		}
		for _, a := range s.Agents {
			if _, err := fmt.Fprintf(w, "  %-6d %-12d %-10d %d\n", a.Agent, a.Checks, a.Processed, a.StoreSize); err != nil {
				return err
			}
		}
	}
	return nil
}
