package telemetry

import (
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	// Every metric op and every Run op must be a no-op on nil: this is the
	// disabled-telemetry configuration instrumented code relies on.
	var c *Counter
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(7)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram observed")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x", CycleBuckets) != nil {
		t.Fatal("nil registry minted metrics")
	}
	if snap := r.Snapshot(); len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	var run *Run
	run.Emit(Event{Kind: KindEnd})
	run.EmitSnapshot()
	if run.Registry() != nil {
		t.Fatal("nil run has a registry")
	}
	if err := run.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{1, 2, 4})
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 2} // <=1: {0,1}; <=2: {2}; <=4: {3,4}; +Inf: {5,100}
	for i := range h.counts {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d: got %d want %d", i, got, want[i])
		}
	}
	if h.Count() != 7 || h.Sum() != 115 {
		t.Errorf("count=%d sum=%d, want 7/115", h.Count(), h.Sum())
	}
}

func TestRegistryIdentityAndSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Insertion order differs run to run below; snapshots must not.
		r.Counter("b_total").Add(2)
		r.Counter("a_total").Add(1)
		r.Gauge(Name("g", "agent", "1")).Set(10)
		r.Gauge(Name("g", "agent", "0")).Set(5)
		r.Histogram("h", NogoodLenBuckets).Observe(3)
		return r
	}
	r := build()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Fatal("counter lookup not stable")
	}
	var s1, s2 strings.Builder
	if err := r.Snapshot().WriteJSON(&s1); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteJSON(&s2); err != nil {
		t.Fatal(err)
	}
	if s1.String() != s2.String() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", s1.String(), s2.String())
	}
	snap := r.Snapshot()
	if snap.Counters[0].Name != "a_total" || snap.Counters[1].Name != "b_total" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if snap.Gauges[0].Name != `g{agent="0"}` {
		t.Fatalf("gauges not sorted: %+v", snap.Gauges)
	}
}

func TestHistogramRedefinitionPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []int64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bounds mismatch")
		}
	}()
	r.Histogram("h", []int64{1, 3})
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("discsp_checks_total").Add(42)
	r.Gauge(Name("discsp_store_nogoods", "agent", "0")).Set(7)
	r.Gauge(Name("discsp_store_nogoods", "agent", "1")).Set(9)
	h := r.Histogram(Name("discsp_learned_nogood_len", "agent", "0"), []int64{1, 2})
	h.Observe(1)
	h.Observe(2)
	h.Observe(5)
	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE discsp_checks_total counter\n",
		"discsp_checks_total 42\n",
		"# TYPE discsp_store_nogoods gauge\n",
		`discsp_store_nogoods{agent="0"} 7` + "\n",
		`discsp_store_nogoods{agent="1"} 9` + "\n",
		"# TYPE discsp_learned_nogood_len histogram\n",
		`discsp_learned_nogood_len_bucket{agent="0",le="1"} 1` + "\n",
		`discsp_learned_nogood_len_bucket{agent="0",le="2"} 2` + "\n",
		`discsp_learned_nogood_len_bucket{agent="0",le="+Inf"} 3` + "\n",
		`discsp_learned_nogood_len_sum{agent="0"} 8` + "\n",
		`discsp_learned_nogood_len_count{agent="0"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// One TYPE line per family even with multiple labeled series.
	if strings.Count(out, "# TYPE discsp_store_nogoods ") != 1 {
		t.Errorf("duplicate TYPE lines:\n%s", out)
	}
}

func TestTransportSuffix(t *testing.T) {
	if got := (Transport{}).Suffix(); got != "" {
		t.Fatalf("zero transport suffix %q", got)
	}
	tr := Transport{Retransmits: 1, DuplicatesSuppressed: 2, Restarts: 3, Partitioned: 4, PartitionHeals: 5}
	want := " retrans=1 dups=2 restarts=3 partitioned=4 heals=5"
	if got := tr.Suffix(); got != want {
		t.Fatalf("suffix %q, want %q", got, want)
	}
	reg := NewRegistry()
	tr.Record(reg)
	if v := reg.Counter("discsp_transport_partitioned_total").Value(); v != 4 {
		t.Fatalf("recorded partitioned=%d", v)
	}
	tr.Record(nil) // must not panic
}
