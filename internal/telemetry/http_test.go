package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("discsp_checks_total").Add(99)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "discsp_checks_total 99") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if !strings.Contains(body, "# TYPE discsp_checks_total counter") {
		t.Fatalf("/metrics missing TYPE line: %q", body)
	}

	code, body = get("/metrics.json")
	var snap Snapshot
	if code != http.StatusOK || json.Unmarshal([]byte(body), &snap) != nil {
		t.Fatalf("/metrics.json: code=%d body=%q", code, body)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 99 {
		t.Fatalf("/metrics.json snapshot: %+v", snap)
	}

	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, `"discsp"`) {
		t.Fatalf("/debug/vars: code=%d body=%.200q", code, body)
	}

	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline: code=%d", code)
	}
}

func TestServeTwicePerProcess(t *testing.T) {
	// expvar.Publish panics on duplicate names; a second server (e.g. a
	// test after TestServeEndpoints, or a CLI retry) must not trip it, and
	// the expvar snapshot must follow the newest registry.
	reg := NewRegistry()
	reg.Gauge("second_registry_marker").Set(1)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "second_registry_marker") {
		t.Fatalf("expvar not following newest registry: %.300s", body)
	}
}
