// Package telemetry is the unified observability layer: a zero-dependency
// metrics registry (counters, gauges, bounded histograms) plus a structured
// run-event recorder that generalizes internal/trace beyond the synchronous
// simulator.
//
// Two properties are load-bearing and pinned by tests:
//
//   - Observational inertness. Instrumentation sites hold a possibly-nil
//     metric pointer and every method has a nil-receiver fast path, so the
//     disabled configuration costs one branch and zero allocations on the
//     hot path, and the enabled configuration only ever *reads* algorithm
//     state — it may not change cycles, maxcck, traces, or journaled
//     aggregates (see TestTelemetryInert at the repo root).
//
//   - Deterministic output. Snapshots list metrics in sorted name order and
//     histograms use fixed bucket layouts chosen at construction, so two
//     runs with identical seeds produce byte-identical snapshots regardless
//     of map iteration or worker count.
//
// Metric values are int64 throughout: every quantity this repo measures
// (checks, messages, nogoods, queue depths) is a count, and integer
// arithmetic keeps snapshots exactly reproducible across platforms.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric. All methods are safe
// for concurrent use and safe on a nil receiver (no-ops / zero).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. No-op on nil.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 metric. All methods are safe for concurrent use
// and safe on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. No-op on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative). No-op on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value; zero on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a bounded histogram over int64 observations with a fixed,
// cumulative-free bucket layout chosen at construction: counts[i] holds
// observations v <= bounds[i] (and greater than bounds[i-1]); the final
// count holds the +Inf overflow. The fixed layout is what makes snapshot
// output deterministic — two histograms with the same name always have the
// same shape. All methods are safe for concurrent use and on nil.
type Histogram struct {
	bounds []int64 // ascending upper bounds, exclusive of +Inf
	counts []atomic.Int64
	sum    atomic.Int64
	count  atomic.Int64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// It is used directly only by tests; instrumentation obtains histograms
// from a Registry.
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending: %v", bounds))
		}
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one observation. No-op on nil. The bucket scan is linear:
// layouts in this repo have ~10 buckets and the scan touches no heap.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations; zero on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations; zero on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// StoreMetrics bundles the per-store instruments a nogood store accepts:
// a live size gauge, a learned-length histogram, and an evictions counter.
// Any field may be nil (and the whole struct zero) — the store's hooks
// no-op through the nil-receiver fast paths.
type StoreMetrics struct {
	Size      *Gauge
	Lengths   *Histogram
	Evictions *Counter
}

// Fixed bucket layouts. Every histogram in the repo uses one of these, so
// streams from different runs and runtimes are structurally comparable.
var (
	// NogoodLenBuckets sizes learned-nogood (resolvent) lengths.
	NogoodLenBuckets = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}
	// QueueDepthBuckets sizes mailbox/dispatcher queue depths.
	QueueDepthBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	// CycleBuckets sizes per-trial synchronous cycle counts.
	CycleBuckets = []int64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}
	// ChecksBuckets sizes check totals and maxcck (decades).
	ChecksBuckets = []int64{10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	// MessageBuckets sizes per-cycle message counts.
	MessageBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
)

// Registry owns named metrics. Lookup (Counter/Gauge/Histogram) takes a
// mutex and may allocate on first use — callers resolve metrics once at
// setup, never on the hot path — but the metric operations themselves are
// lock-free atomics. All methods are safe on a nil receiver, returning nil
// metrics whose methods no-op: a disabled registry costs instrumented code
// exactly one nil check per site.
type Registry struct {
	mu     sync.Mutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:   make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Name composes a metric name with label pairs in canonical form:
// Name("x", "agent", "3") == `x{agent="3"}`. Labels are embedded in the
// name (sorted by the caller's argument order, which must be consistent)
// so the registry stays a flat map and snapshots stay trivially sortable.
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	if len(labels)%2 != 0 {
		panic("telemetry: Name requires key/value label pairs")
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(labels[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// EscapeLabelValue escapes a label value per the Prometheus exposition
// format: backslash, double quote, and newline are the only characters with
// escape sequences (\\, \", \n). Values without them pass through unchanged
// (and unallocated). Name applies it at composition time, so the registry's
// flat names hold the already-escaped form and the exposition writer can
// emit label blocks verbatim.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// Counter returns the named counter, creating it on first use. Returns nil
// (a valid no-op counter) when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil when
// the registry is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds
// on first use. Asking for an existing histogram with different bounds
// panics: bucket layouts are fixed per name by design. Returns nil when the
// registry is nil.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
		return h
	}
	if len(h.bounds) != len(bounds) {
		panic(fmt.Sprintf("telemetry: histogram %q redefined with different bounds", name))
	}
	for i := range bounds {
		if h.bounds[i] != bounds[i] {
			panic(fmt.Sprintf("telemetry: histogram %q redefined with different bounds", name))
		}
	}
	return h
}

// MetricValue is one named counter or gauge in a snapshot.
type MetricValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramValue is one named histogram in a snapshot. Bounds and Counts
// are parallel; Counts has one extra trailing entry for +Inf.
type HistogramValue struct {
	Name   string  `json:"name"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time copy of a registry, sorted by metric name so
// that identical runs serialize to identical bytes.
type Snapshot struct {
	Counters   []MetricValue    `json:"counters,omitempty"`
	Gauges     []MetricValue    `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current values. Nil registries snapshot to
// the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.ctrs {
		s.Counters = append(s.Counters, MetricValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, MetricValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		hv := HistogramValue{
			Name:   name,
			Bounds: append([]int64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Sum:    h.Sum(),
			Count:  h.Count(),
		}
		for i := range h.counts {
			hv.Counts[i] = h.counts[i].Load()
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
