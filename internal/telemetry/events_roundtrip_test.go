package telemetry

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// randEvent populates every field group with seed-derived values, so the
// round-trip exercises each kind carrying a full payload (omitempty means a
// field the encoder drops and the decoder leaves zero is also covered by
// the zero draws).
func randEvent(r *rand.Rand, kind Kind) Event {
	s := func() string {
		const alpha = "abc xyz0:9-"
		b := make([]byte, r.Intn(8))
		for i := range b {
			b[i] = alpha[r.Intn(len(alpha))]
		}
		return string(b)
	}
	i64 := func() int64 { return r.Int63n(1<<40) - 1<<39 }
	n := func() int { return r.Intn(1000) - 500 }
	ev := Event{
		Kind:      kind,
		Runtime:   s(),
		Algorithm: s(),
		Vars:      r.Intn(100),
		Nogoods:   r.Intn(100),

		Cycle: n(), MessagesIn: n(), MessagesOut: n(), MaxChecks: i64(), StoreTotal: i64(),
		ElapsedUS: i64(), Delivered: i64(), InFlight: i64(), Frontier: s(),
		QueueDepth: i64(),
		Cell:       s(), Trial: n(), Seed: i64(),
		Agent: n(), Checks: i64(), StoreSize: i64(), AgentProcessed: i64(),
		From: n(), To: n(), SeqHigh: i64(), AckHigh: i64(), Retransmits: i64(), Partitioned: i64(),
		Shard: n(), FramesIn: i64(), Forwarded: i64(), BytesIn: i64(), BytesOut: i64(),
		SpanID: s(), SpanKind: s(), StartUS: i64(), EndUS: i64(), NogoodKey: s(),
		Solved: r.Intn(2) == 0, Insoluble: r.Intn(2) == 0,
		Cycles: n(), MaxCCK: i64(), TotalChecks: i64(), Messages: i64(), DurationUS: i64(),
	}
	if kind == KindMeta {
		// The schema gate only inspects the stream's opening meta; keep
		// in-range so Read accepts the stream.
		ev.Schema = MinSchemaVersion + r.Intn(SchemaVersion-MinSchemaVersion+1)
	}
	if r.Intn(2) == 0 {
		ev.Processed = []int64{i64(), i64(), i64()}
		ev.Causes = []string{s(), s()}
		ev.Emits = []string{s()}
		ev.EmitTo = []int{n()}
		ev.EmitType = []string{s()}
		ev.EmitCause = []string{s()}
	}
	if r.Intn(4) == 0 {
		ev.Transport = &Transport{Retransmits: i64(), BytesSent: i64()}
	}
	return ev
}

// TestEventRoundTripAllKinds is the schema property test: for every event
// kind, randomized fully-populated events survive Recorder→Read unchanged.
func TestEventRoundTripAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, kind := range Kinds() {
		t.Run(string(kind), func(t *testing.T) {
			for trial := 0; trial < 25; trial++ {
				want := randEvent(r, kind)
				var buf bytes.Buffer
				rec := NewRecorder(&buf) // emits the opening schema meta
				rec.Emit(want)
				if err := rec.Flush(); err != nil {
					t.Fatal(err)
				}
				events, err := Read(&buf)
				if err != nil {
					t.Fatalf("trial %d: Read: %v", trial, err)
				}
				if len(events) != 2 {
					t.Fatalf("trial %d: read %d events, want 2", trial, len(events))
				}
				if got := events[1]; !reflect.DeepEqual(got, want) {
					t.Errorf("trial %d: round trip mismatch\n got %+v\nwant %+v", trial, got, want)
				}
			}
		})
	}
}

// FuzzRead hardens the JSONL decoder against arbitrary byte streams: it
// must either return events or one of the package's versioned errors —
// never panic, and never return an unclassified parse failure.
func FuzzRead(f *testing.F) {
	var seedBuf bytes.Buffer
	rec := NewRecorder(&seedBuf)
	rec.Emit(Event{Kind: KindEnd, Solved: true, Cycles: 3})
	rec.Flush()
	f.Add(seedBuf.Bytes())
	f.Add([]byte(`{"kind":"meta","schema":3}` + "\n" + `{"kind":"span","spanId":"0:1","causes":["c:2"]}`))
	f.Add([]byte(`{"kind":"start","algorithm":"AWC-rslv"}`))
	f.Add([]byte(`{"kind":"meta","schema":99}`))
	f.Add([]byte("\n\n{\"kind\":\"meta\"}\ngarbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrMalformedStream) && !errors.Is(err, ErrLegacyTrace) &&
				!errors.Is(err, ErrSchemaUnsupported) && !strings.Contains(err.Error(), "token too long") {
				t.Fatalf("unclassified error: %v", err)
			}
			return
		}
		if len(events) == 0 {
			t.Fatal("nil error with zero events")
		}
	})
}
