package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// familyHelp is the curated # HELP text for the families the solver and
// daemon register. Families outside the map (tests, future metrics) get a
// kind-derived fallback so every exposed family still carries a HELP line.
var familyHelp = map[string]string{
	"discsp_cycles_total":        "Simulator cycles executed across runs.",
	"discsp_messages_total":      "Messages sent by agents.",
	"discsp_deliveries_total":    "Messages delivered to agents.",
	"discsp_checks_total":        "Consistency checks performed.",
	"discsp_cycle_messages":      "Messages delivered in the current cycle.",
	"discsp_cycle_max_checks":    "Largest per-agent check count in the current cycle.",
	"discsp_queue_depth":         "Messages waiting for delivery.",
	"discsp_store_nogoods":       "Nogoods resident in an agent's store.",
	"discsp_store_evictions":     "Nogoods evicted by the retention policy.",
	"discsp_learned_nogood_len":  "Sizes of learned nogoods.",
	"discsp_trials_total":        "Experiment trials started.",
	"discsp_trials_solved_total": "Experiment trials that found a solution.",
	"discsp_trial_cycles":        "Cycles to termination per trial.",
	"discsp_trial_maxcck":        "Max concurrent checks per trial.",

	"discsp_transport_retransmits_total":        "Frames retransmitted by the reliable transport.",
	"discsp_transport_dups_suppressed_total":    "Duplicate frames suppressed by receivers.",
	"discsp_transport_restarts_total":           "Agent crash-restarts survived.",
	"discsp_transport_partitioned_total":        "Network partitions injected.",
	"discsp_transport_partition_heals_total":    "Network partitions healed.",
	"discsp_transport_reconnects_total":         "Sockets re-established after a severed connection.",
	"discsp_transport_heartbeat_timeouts_total": "Links declared dead by heartbeat silence.",
	"discsp_transport_corrupt_frames_total":     "Frames rejected by the CRC trailer.",
	"discsp_transport_bytes_sent_total":         "Bytes written to sockets.",
	"discsp_transport_bytes_recv_total":         "Bytes read from sockets.",
	"discsp_transport_batched_frames_total":     "Data frames coalesced into batches.",

	"dcspd_jobs_accepted_total":         "Jobs durably accepted (journaled and acknowledged).",
	"dcspd_jobs_shed_total":             "Submissions shed by admission control.",
	"dcspd_jobs_completed_total":        "Jobs finished with a solver verdict.",
	"dcspd_jobs_failed_total":           "Jobs finished failed or timed out.",
	"dcspd_jobs_canceled_total":         "Jobs withdrawn by clients.",
	"dcspd_job_retries_total":           "Attempts retried after a worker crash.",
	"dcspd_jobs_replayed_total":         "Interrupted jobs re-enqueued by journal replay.",
	"dcspd_jobs_cached_total":           "Finished jobs restored from the journal without re-running.",
	"dcspd_jobs_deadline_expired_total": "Jobs whose deadline expired waiting in the queue.",
	"dcspd_jobs_done_total":             "Jobs finished, by tenant.",
	"dcspd_queue_depth":                 "Jobs waiting for a solver slot.",
	"dcspd_running":                     "Jobs occupying solver slots.",
	"dcspd_queue_oldest_age_us":         "Age of the oldest queued job in microseconds.",
	"dcspd_queue_wait_ms":               "Queue wait per job in milliseconds, by tenant.",
	"dcspd_job_run_ms":                  "Run time per job in milliseconds, by tenant.",
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric names carry labels inline in the registry
// (see Name); this writer splits them back apart so labeled series of one
// family share a single # HELP/# TYPE header pair, and merges the le label
// into any existing histogram labels. Output order follows the snapshot's
// sorted order and is therefore deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	emitType := func(family, kind string) error {
		if typed[family] {
			return nil
		}
		typed[family] = true
		help, ok := familyHelp[family]
		if !ok {
			help = "discsp " + kind + " metric."
		}
		// HELP text escapes backslash and newline (quotes are legal there).
		help = strings.NewReplacer(`\`, `\\`, "\n", `\n`).Replace(help)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, help); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		return err
	}
	for _, c := range s.Counters {
		family, labels := splitName(c.Name)
		if err := emitType(family, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, labels, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		family, labels := splitName(g.Name)
		if err := emitType(family, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, labels, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		family, labels := splitName(h.Name)
		if err := emitType(family, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := fmt.Sprintf("%d", bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, mergeLabel(labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, mergeLabel(labels, "le", "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", family, labels, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// splitName separates a registry name into its family and the literal
// label block (including braces), e.g. `x{a="1"}` -> ("x", `{a="1"}`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabel appends key="value" to a literal label block, escaping the
// value per the exposition format (the block's existing values were escaped
// by Name at composition time).
func mergeLabel(labels, key, value string) string {
	value = EscapeLabelValue(value)
	if labels == "" {
		return fmt.Sprintf(`{%s="%s"}`, key, value)
	}
	return fmt.Sprintf(`%s,%s="%s"}`, strings.TrimSuffix(labels, "}"), key, value)
}
