package telemetry

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4). Metric names carry labels inline in the registry
// (see Name); this writer splits them back apart so labeled series of one
// family share a single # TYPE header, and merges the le label into any
// existing histogram labels. Output order follows the snapshot's sorted
// order and is therefore deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	emitType := func(family, kind string) error {
		if typed[family] {
			return nil
		}
		typed[family] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		return err
	}
	for _, c := range s.Counters {
		family, labels := splitName(c.Name)
		if err := emitType(family, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, labels, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		family, labels := splitName(g.Name)
		if err := emitType(family, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, labels, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		family, labels := splitName(h.Name)
		if err := emitType(family, "histogram"); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			le := fmt.Sprintf("%d", bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, mergeLabel(labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, mergeLabel(labels, "le", "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", family, labels, h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// splitName separates a registry name into its family and the literal
// label block (including braces), e.g. `x{a="1"}` -> ("x", `{a="1"}`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// mergeLabel appends key="value" to a literal label block.
func mergeLabel(labels, key, value string) string {
	if labels == "" {
		return fmt.Sprintf("{%s=%q}", key, value)
	}
	return fmt.Sprintf("%s,%s=%q}", strings.TrimSuffix(labels, "}"), key, value)
}
