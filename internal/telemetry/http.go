package telemetry

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// publishOnce guards the process-wide expvar registration: expvar.Publish
// panics on duplicate names, and tests (or a CLI retrying a bind) may build
// more than one server per process.
var (
	publishOnce sync.Once
	exposedReg  *Registry
	exposedMu   sync.Mutex
)

// NewMux builds an http.ServeMux exposing the registry:
//
//	/metrics        Prometheus text exposition of a live snapshot
//	/metrics.json   the same snapshot as JSON
//	/debug/vars     expvar (Go runtime memstats + a discsp snapshot var)
//	/debug/pprof/   the standard pprof handlers
//
// A fresh mux (not http.DefaultServeMux) keeps the profiling surface
// opt-in: nothing is exposed unless the caller asked for -metrics-addr.
func NewMux(reg *Registry) *http.ServeMux {
	exposedMu.Lock()
	exposedReg = reg
	exposedMu.Unlock()
	publishOnce.Do(func() {
		expvar.Publish("discsp", expvar.Func(func() any {
			exposedMu.Lock()
			r := exposedReg
			exposedMu.Unlock()
			return r.Snapshot()
		}))
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics endpoint.
type Server struct {
	// Addr is the bound address, useful when the caller asked for :0.
	Addr string

	ln  net.Listener
	srv *http.Server
}

// Serve binds addr and serves NewMux(reg) until Close. It returns after
// the listener is bound, so the endpoint is immediately curl-able; serving
// errors after Close are swallowed.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: NewMux(reg)}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
