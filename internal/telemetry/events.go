package telemetry

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// SchemaVersion is the telemetry stream schema this package writes and the
// newest it can read. Streams always open with a meta event carrying the
// writer's schema so readers can fail with a versioned error instead of a
// raw decode error (the v1 internal/trace format had no version marker; it
// is recognized by its "start" first event).
//
// Schema 3 added the span event kind (causal tracing, internal/causal);
// schema-2 streams contain a strict subset of the schema-3 kinds, so this
// binary reads both (MinSchemaVersion).
const SchemaVersion = 3

// MinSchemaVersion is the oldest stream schema Read still accepts.
const MinSchemaVersion = 2

// Kind labels one telemetry event.
type Kind string

const (
	// KindMeta opens every stream: schema version, runtime, problem shape.
	KindMeta Kind = "meta"
	// KindCycle is one synchronous simulator cycle.
	KindCycle Kind = "cycle"
	// KindSample is one watchdog progress sample (async and tcp runtimes).
	KindSample Kind = "sample"
	// KindTrial is one completed experiment trial (dcspbench/dcspsolve
	// multi-trial runs), emitted in deterministic index order.
	KindTrial Kind = "trial"
	// KindAgent reports one agent's totals at a quiescence point (end of
	// run): check totals, processed messages, final nogood-store size.
	KindAgent Kind = "agent"
	// KindLink reports one hub link's counters (tcp runtime only).
	KindLink Kind = "link"
	// KindShard reports one hub relay shard's totals at end of run (tcp
	// runtime only): frames read, frames forwarded across shards, and wire
	// bytes in/out on the shard's connections.
	KindShard Kind = "shard"
	// KindSnapshot embeds a full metrics snapshot.
	KindSnapshot Kind = "snapshot"
	// KindSpan is one causal-trace node (schema 3): an agent activation
	// span with its received-message causes and stamped emissions, or a
	// learn/store/seed/constraint node in the nogood derivation DAG. See
	// internal/causal.
	KindSpan Kind = "span"
	// KindEnd closes the stream with the run verdict.
	KindEnd Kind = "end"
)

// Event is one line of the telemetry JSONL stream. A single struct covers
// all kinds; unused fields are omitted. Every numeric field round-trips
// its zero value through omitempty, so decoding is lossless.
type Event struct {
	Kind Kind `json:"kind"`

	// meta
	Schema    int    `json:"schema,omitempty"`
	Runtime   string `json:"runtime,omitempty"` // sync | async | tcp | bench
	Algorithm string `json:"algorithm,omitempty"`
	Vars      int    `json:"vars,omitempty"`
	Nogoods   int    `json:"nogoods,omitempty"`

	// cycle
	Cycle       int   `json:"cycle,omitempty"`
	MessagesIn  int   `json:"messagesIn,omitempty"`
	MessagesOut int   `json:"messagesOut,omitempty"`
	MaxChecks   int64 `json:"maxChecks,omitempty"`
	// StoreTotal is the summed nogood-store size across agents (cycle and
	// sample events).
	StoreTotal int64 `json:"storeTotal,omitempty"`

	// sample (watchdog progress; see internal/progress)
	ElapsedUS  int64   `json:"elapsedUs,omitempty"`
	Delivered  int64   `json:"delivered,omitempty"`
	InFlight   int64   `json:"inFlight,omitempty"`
	Frontier   string  `json:"frontier,omitempty"` // hex frontier hash
	Processed  []int64 `json:"processed,omitempty"`
	QueueDepth int64   `json:"queueDepth,omitempty"`

	// trial
	Cell  string `json:"cell,omitempty"`
	Trial int    `json:"trial,omitempty"`
	Seed  int64  `json:"seed,omitempty"`

	// agent
	Agent          int   `json:"agent,omitempty"`
	Checks         int64 `json:"checks,omitempty"`
	StoreSize      int64 `json:"storeSize,omitempty"`
	AgentProcessed int64 `json:"agentProcessed,omitempty"`

	// link
	From        int   `json:"from,omitempty"`
	To          int   `json:"to,omitempty"`
	SeqHigh     int64 `json:"seqHigh,omitempty"`
	AckHigh     int64 `json:"ackHigh,omitempty"`
	Retransmits int64 `json:"retransmits,omitempty"`
	Partitioned int64 `json:"partitioned,omitempty"`

	// shard
	Shard     int   `json:"shard,omitempty"`
	FramesIn  int64 `json:"framesIn,omitempty"`
	Forwarded int64 `json:"forwarded,omitempty"`
	BytesIn   int64 `json:"bytesIn,omitempty"`
	BytesOut  int64 `json:"bytesOut,omitempty"`

	// span (schema 3, causal tracing). SpanID is the node's trace ID in
	// "agent:seq" form; Causes the trace IDs this node depends on. For
	// activation spans (init/step) the four Emit slices run in parallel,
	// one entry per stamped outgoing message: its trace ID, recipient,
	// concrete type, and the nogood node it carries ("" when none).
	// StartUS/EndUS are microseconds since tracing started — observational
	// timestamps for the critical-path and Perfetto analyses, never part
	// of a trace ID. NogoodKey is the canonical nogood on learn, store,
	// seed, and constraint nodes ("" on a learn node means the empty
	// nogood: the insolubility proof).
	SpanID    string   `json:"spanId,omitempty"`
	SpanKind  string   `json:"spanKind,omitempty"`
	Causes    []string `json:"causes,omitempty"`
	Emits     []string `json:"emits,omitempty"`
	EmitTo    []int    `json:"emitTo,omitempty"`
	EmitType  []string `json:"emitType,omitempty"`
	EmitCause []string `json:"emitCause,omitempty"`
	StartUS   int64    `json:"startUs,omitempty"`
	EndUS     int64    `json:"endUs,omitempty"`
	NogoodKey string   `json:"nogoodKey,omitempty"`

	// snapshot
	Metrics *Snapshot `json:"metrics,omitempty"`

	// end
	Solved      bool       `json:"solved,omitempty"`
	Insoluble   bool       `json:"insoluble,omitempty"`
	Cycles      int        `json:"cycles,omitempty"`
	MaxCCK      int64      `json:"maxcck,omitempty"`
	TotalChecks int64      `json:"totalChecks,omitempty"`
	Messages    int64      `json:"messages,omitempty"`
	DurationUS  int64      `json:"durationUs,omitempty"`
	Transport   *Transport `json:"transport,omitempty"`
}

// Recorder writes the JSONL event stream. Errors are sticky: the first
// write failure is remembered and reported by Flush, and later writes
// no-op, so instrumented runtimes never have to thread telemetry I/O
// errors through algorithm code. Safe for concurrent use and on nil.
type Recorder struct {
	mu  sync.Mutex
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewRecorder wraps w in a buffered JSONL recorder and emits the opening
// meta event (schema only; runtime/problem fields ride on a second meta
// event from the runtime because the recorder is built before the run).
func NewRecorder(w io.Writer) *Recorder {
	bw := bufio.NewWriter(w)
	r := &Recorder{w: bw, enc: json.NewEncoder(bw)}
	r.Emit(Event{Kind: KindMeta, Schema: SchemaVersion})
	return r
}

// Emit appends one event. No-op on nil or after a prior write error.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	r.err = r.enc.Encode(ev)
}

// Flush drains buffered events and reports the first error seen.
func (r *Recorder) Flush() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	return r.w.Flush()
}

// Stream read errors. Both carry enough context for a CLI to tell the user
// which binary/stream combination they have.
var (
	// ErrLegacyTrace marks a v1 internal/trace stream (dcspsolve -trace)
	// fed to the telemetry reader.
	ErrLegacyTrace = errors.New("telemetry: schema-1 trace stream (dcspsolve -trace format); read it with the trace reader")
	// ErrSchemaUnsupported marks a stream whose meta event declares a
	// schema this binary does not know.
	ErrSchemaUnsupported = errors.New("telemetry: unsupported stream schema")
	// ErrMalformedStream marks structural damage: not JSONL, missing meta,
	// or an unknown event kind.
	ErrMalformedStream = errors.New("telemetry: malformed stream")
	// ErrTruncatedStream marks a stream cut off at a line boundary: the
	// JSONL is well-formed but the closing end/snapshot event never
	// arrived (the writer died mid-run, or the file was torn). Reported by
	// CheckComplete, not Read, because a mid-run stream is a legitimate
	// read for followers; table-rendering consumers (dcsptrace) must
	// refuse it.
	ErrTruncatedStream = errors.New("telemetry: truncated stream")
)

var knownKinds = map[Kind]bool{
	KindMeta: true, KindCycle: true, KindSample: true, KindTrial: true,
	KindAgent: true, KindLink: true, KindShard: true, KindSnapshot: true,
	KindSpan: true, KindEnd: true,
}

// Kinds lists every event kind this schema defines, for exhaustive tests.
func Kinds() []Kind {
	return []Kind{KindMeta, KindCycle, KindSample, KindTrial, KindAgent,
		KindLink, KindShard, KindSnapshot, KindSpan, KindEnd}
}

// v1 trace kinds, used to recognize a legacy stream by its first event.
var legacyKinds = map[string]bool{"start": true, "cycle": true, "end": true}

// Read decodes a telemetry JSONL stream. The first event must be a meta
// event declaring a schema this binary supports; a stream opening with a
// v1 trace event returns ErrLegacyTrace (so callers can fall back to the
// trace reader or tell the user to), and a newer schema returns
// ErrSchemaUnsupported with the offending version.
func Read(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var events []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrMalformedStream, len(events)+1, err)
		}
		if len(events) == 0 {
			if legacyKinds[string(ev.Kind)] {
				return nil, ErrLegacyTrace
			}
			if ev.Kind != KindMeta {
				return nil, fmt.Errorf("%w: stream does not open with a meta event (got kind %q)", ErrMalformedStream, ev.Kind)
			}
			if ev.Schema > SchemaVersion {
				return nil, fmt.Errorf("%w: stream schema %d, this binary reads <= %d — rebuild dcsptrace from a newer checkout", ErrSchemaUnsupported, ev.Schema, SchemaVersion)
			}
			if ev.Schema < MinSchemaVersion {
				return nil, fmt.Errorf("%w: stream schema %d predates this binary's oldest supported %d", ErrSchemaUnsupported, ev.Schema, MinSchemaVersion)
			}
		}
		if !knownKinds[ev.Kind] {
			return nil, fmt.Errorf("%w: unknown event kind %q at line %d", ErrMalformedStream, ev.Kind, len(events)+1)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("%w: empty stream", ErrMalformedStream)
	}
	return events, nil
}

// CheckComplete reports whether a fully-read stream reached its closing
// event. Every writer in this repo ends a stream with the run verdict
// (KindEnd) and/or a metrics snapshot (KindSnapshot, always last when
// present); a stream whose final event is anything else was cut off at a
// line boundary and returns ErrTruncatedStream.
func CheckComplete(events []Event) error {
	if len(events) == 0 {
		return fmt.Errorf("%w: empty stream", ErrTruncatedStream)
	}
	last := events[len(events)-1].Kind
	if last != KindEnd && last != KindSnapshot {
		return fmt.Errorf("%w: last event kind %q, want %q or %q", ErrTruncatedStream, last, KindEnd, KindSnapshot)
	}
	return nil
}

// Run bundles a metrics registry and an event recorder for one solving
// run. Either part may be nil; all methods are safe on a nil Run, so
// runtimes hold a *Run and instrument unconditionally. A nil Run is the
// disabled configuration.
type Run struct {
	reg *Registry
	rec *Recorder
}

// NewRun bundles reg (may be nil) and, when w is non-nil, a new Recorder
// writing to w.
func NewRun(reg *Registry, w io.Writer) *Run {
	r := &Run{reg: reg}
	if w != nil {
		r.rec = NewRecorder(w)
	}
	return r
}

// Registry returns the bundled registry; nil on a nil Run.
func (r *Run) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Emit appends one event to the stream, if one is attached.
func (r *Run) Emit(ev Event) {
	if r == nil {
		return
	}
	r.rec.Emit(ev)
}

// EmitSnapshot embeds the registry's current snapshot in the stream.
func (r *Run) EmitSnapshot() {
	if r == nil || r.rec == nil {
		return
	}
	s := r.reg.Snapshot()
	r.rec.Emit(Event{Kind: KindSnapshot, Metrics: &s})
}

// Flush drains the event stream and reports the first write error.
func (r *Run) Flush() error {
	if r == nil {
		return nil
	}
	return r.rec.Flush()
}
