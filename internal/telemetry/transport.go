package telemetry

import "fmt"

// Transport is the reliability-layer counter block shared by every surface
// that reports it: dcspsolve/dcspbench output, FprintRuntimes and
// MarkdownRuntimes tables, the Prometheus snapshot, and end events in the
// telemetry stream. Before this type each of those carried its own copy of
// the five fields and its own formatter.
type Transport struct {
	// Retransmits counts frames resent past a drop, partition, or slow ack.
	Retransmits int64 `json:"retransmits,omitempty"`
	// DuplicatesSuppressed counts deliveries absorbed by the dedup layer.
	DuplicatesSuppressed int64 `json:"duplicatesSuppressed,omitempty"`
	// Restarts counts crashed agents restarted from their checkpoints.
	Restarts int64 `json:"restarts,omitempty"`
	// Partitioned counts deliveries cut or deferred by a partition.
	Partitioned int64 `json:"partitioned,omitempty"`
	// PartitionHeals counts partition windows that healed within the run.
	PartitionHeals int64 `json:"partitionHeals,omitempty"`
	// Reconnects counts node connections re-established mid-run (worker
	// redials and cold process relaunches). TCP runtime only.
	Reconnects int64 `json:"reconnects,omitempty"`
	// HeartbeatTimeouts counts dead-peer declarations: links silent past
	// the dead-peer timeout. TCP runtime only.
	HeartbeatTimeouts int64 `json:"heartbeatTimeouts,omitempty"`
	// CorruptFrames counts frames rejected by the CRC32C trailer and
	// recovered by retransmission. TCP runtime only.
	CorruptFrames int64 `json:"corruptFrames,omitempty"`

	// BytesSent and BytesRecv count wire bytes crossing the hub's sockets
	// (framing included): hub→nodes and nodes→hub respectively. TCP runtime
	// only; zero elsewhere.
	BytesSent int64 `json:"bytesSent,omitempty"`
	BytesRecv int64 `json:"bytesRecv,omitempty"`
	// BatchedFrames counts frames that crossed the sockets inside coalesced
	// batch frames rather than as individual writes, both directions summed.
	BatchedFrames int64 `json:"batchedFrames,omitempty"`
}

// IsZero reports whether every counter is zero (a clean run).
func (t Transport) IsZero() bool {
	return t == Transport{}
}

// Suffix renders the counters as the one-line " retrans=… dups=…" block
// dcspsolve and dcspbench append to verdict lines, or "" when all zero.
// The reliability block appears when any reliability counter is nonzero and
// the wire block when any byte counter is, so a clean TCP run shows its
// traffic volume without dragging in five zeros.
func (t Transport) Suffix() string {
	var s string
	if t.Retransmits|t.DuplicatesSuppressed|t.Restarts|t.Partitioned|t.PartitionHeals != 0 {
		s = fmt.Sprintf(" retrans=%d dups=%d restarts=%d partitioned=%d heals=%d",
			t.Retransmits, t.DuplicatesSuppressed, t.Restarts, t.Partitioned, t.PartitionHeals)
	}
	if t.Reconnects|t.HeartbeatTimeouts|t.CorruptFrames != 0 {
		s += fmt.Sprintf(" reconnects=%d hb_timeouts=%d corrupt=%d",
			t.Reconnects, t.HeartbeatTimeouts, t.CorruptFrames)
	}
	if t.BytesSent|t.BytesRecv|t.BatchedFrames != 0 {
		s += fmt.Sprintf(" bytes_out=%d bytes_in=%d batched=%d",
			t.BytesSent, t.BytesRecv, t.BatchedFrames)
	}
	return s
}

// TransportColumns is the canonical column order used by the table
// renderers, aligned with Transport.Values.
var TransportColumns = []string{"retrans", "dups", "restarts", "partitioned", "heals",
	"reconnects", "hb_timeouts", "corrupt", "bytes_out", "bytes_in", "batched"}

// Values returns the counters in TransportColumns order.
func (t Transport) Values() []int64 {
	return []int64{t.Retransmits, t.DuplicatesSuppressed, t.Restarts, t.Partitioned, t.PartitionHeals,
		t.Reconnects, t.HeartbeatTimeouts, t.CorruptFrames,
		t.BytesSent, t.BytesRecv, t.BatchedFrames}
}

// Record adds the counters into reg under the canonical metric names.
// No-op on a nil registry.
func (t Transport) Record(reg *Registry) {
	if reg == nil {
		return
	}
	reg.Counter("discsp_transport_retransmits_total").Add(t.Retransmits)
	reg.Counter("discsp_transport_dups_suppressed_total").Add(t.DuplicatesSuppressed)
	reg.Counter("discsp_transport_restarts_total").Add(t.Restarts)
	reg.Counter("discsp_transport_partitioned_total").Add(t.Partitioned)
	reg.Counter("discsp_transport_partition_heals_total").Add(t.PartitionHeals)
	reg.Counter("discsp_transport_reconnects_total").Add(t.Reconnects)
	reg.Counter("discsp_transport_heartbeat_timeouts_total").Add(t.HeartbeatTimeouts)
	reg.Counter("discsp_transport_corrupt_frames_total").Add(t.CorruptFrames)
	reg.Counter("discsp_transport_bytes_sent_total").Add(t.BytesSent)
	reg.Counter("discsp_transport_bytes_recv_total").Add(t.BytesRecv)
	reg.Counter("discsp_transport_batched_frames_total").Add(t.BatchedFrames)
}
