package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	run := NewRun(NewRegistry(), &buf)
	run.Registry().Counter("discsp_checks_total").Add(11)
	run.Emit(Event{Kind: KindMeta, Runtime: "async", Algorithm: "AWC-rslv", Vars: 10, Nogoods: 27})
	run.Emit(Event{Kind: KindSample, ElapsedUS: 40, Delivered: 3, Frontier: "00ff", Processed: []int64{1, 2, 0}})
	run.Emit(Event{Kind: KindAgent, Agent: 0, Checks: 100, StoreSize: 4})
	run.Emit(Event{Kind: KindAgent, Agent: 2, Checks: 50, AgentProcessed: 9})
	run.Emit(Event{Kind: KindEnd, Solved: true, TotalChecks: 150, Messages: 12,
		Transport: &Transport{Retransmits: 2}})
	run.EmitSnapshot()
	if err := run.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Kind != KindMeta || events[0].Schema != SchemaVersion {
		t.Fatalf("stream does not open with schema meta: %+v", events[0])
	}
	var end *Event
	var snap *Event
	agents := 0
	for i := range events {
		switch events[i].Kind {
		case KindEnd:
			end = &events[i]
		case KindSnapshot:
			snap = &events[i]
		case KindAgent:
			agents++
		}
	}
	if end == nil || !end.Solved || end.Transport == nil || end.Transport.Retransmits != 2 {
		t.Fatalf("end event wrong: %+v", end)
	}
	if agents != 2 {
		t.Fatalf("agents=%d", agents)
	}
	if snap == nil || snap.Metrics == nil || len(snap.Metrics.Counters) != 1 || snap.Metrics.Counters[0].Value != 11 {
		t.Fatalf("snapshot event wrong: %+v", snap)
	}
	// Agent 0's zero-valued Agent field must survive omitempty.
	sum := Summarize(events)
	if len(sum.Agents) != 2 || sum.Agents[0].Agent != 0 || sum.Agents[0].Checks != 100 {
		t.Fatalf("summary agents: %+v", sum.Agents)
	}
}

func TestReadRejectsLegacyTrace(t *testing.T) {
	v1 := `{"kind":"start","algorithm":"AWC-rslv","vars":10}
{"kind":"cycle","cycle":1}
{"kind":"end","solved":true}
`
	_, err := Read(strings.NewReader(v1))
	if !errors.Is(err, ErrLegacyTrace) {
		t.Fatalf("want ErrLegacyTrace, got %v", err)
	}
}

func TestReadRejectsNewerSchema(t *testing.T) {
	next := SchemaVersion + 1
	_, err := Read(strings.NewReader(fmt.Sprintf(`{"kind":"meta","schema":%d}`+"\n", next)))
	if !errors.Is(err, ErrSchemaUnsupported) {
		t.Fatalf("want ErrSchemaUnsupported, got %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("schema %d", next)) {
		t.Fatalf("error does not name the offending schema: %v", err)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"not json\n",
		`{"kind":"mystery"}` + "\n",
		`{"kind":"meta","schema":2}` + "\n" + `{"kind":"mystery"}` + "\n",
	} {
		if _, err := Read(strings.NewReader(bad)); !errors.Is(err, ErrMalformedStream) {
			t.Errorf("input %q: want ErrMalformedStream, got %v", bad, err)
		}
	}
}

func TestSummarizeStoreGrowthAndFrontier(t *testing.T) {
	events := []Event{
		{Kind: KindMeta, Schema: 2, Runtime: "tcp"},
		{Kind: KindSample, Frontier: "aa", StoreTotal: 3},
		{Kind: KindSample, Frontier: "aa", StoreTotal: 9},
		{Kind: KindSample, Frontier: "bb", StoreTotal: 5},
		{Kind: KindEnd, Solved: true},
	}
	s := Summarize(events)
	if s.Runtime != "tcp" || !s.Ended || !s.Solved {
		t.Fatalf("summary: %+v", s)
	}
	if s.Samples != 3 || s.FrontierTransitions != 1 {
		t.Fatalf("samples=%d transitions=%d", s.Samples, s.FrontierTransitions)
	}
	if s.StoreFirst != 3 || s.StorePeak != 9 || s.StoreLast != 5 {
		t.Fatalf("store growth: %+v", s)
	}
	var b strings.Builder
	if err := s.Fprint(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"runtime=tcp", "verdict=solved", "first=3 peak=9 last=5"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Fprint missing %q:\n%s", want, b.String())
		}
	}
}

func TestRecorderStickyError(t *testing.T) {
	w := &failWriter{}
	rec := NewRecorder(w)
	for i := 0; i < 10000; i++ { // force past the bufio buffer
		rec.Emit(Event{Kind: KindCycle, Cycle: i})
	}
	if err := rec.Flush(); err == nil {
		t.Fatal("flush did not surface the write error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }
