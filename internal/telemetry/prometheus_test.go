package telemetry

import (
	"regexp"
	"strings"
	"testing"
)

func TestEscapeLabelValue(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", "plain"},
		{`with"quote`, `with\"quote`},
		{`back\slash`, `back\\slash`},
		{"new\nline", `new\nline`},
		{"all\\\"\nthree", `all\\\"\nthree`},
		{"", ""},
	}
	for _, c := range cases {
		if got := EscapeLabelValue(c.in); got != c.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Exposition-format grammar (version 0.0.4): metric and label names, and a
// label value where the only escapes are \\, \", and \n.
var (
	promSeriesRe = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\[\\"n]|[^"\\\n])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\[\\"n]|[^"\\\n])*")*\})? -?[0-9]+$`)
	promHelpRe = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) \S.*$`)
	promTypeRe = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
)

// TestPrometheusExpositionConformance feeds the writer label values with
// every character the format escapes and validates each output line against
// the exposition grammar: series lines parse, every family is announced by
// a # HELP line immediately followed by its # TYPE line before any of its
// series, and neither header repeats.
func TestPrometheusExpositionConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("discsp_checks_total").Add(1)
	r.Counter(Name("dcspd_jobs_done_total", "tenant", `evil"tenant`)).Add(2)
	r.Gauge(Name("dcspd_queue_depth", "pool", `back\slash`)).Set(3)
	r.Gauge(Name("custom_family", "note", "line\nbreak")).Set(-4)
	h := r.Histogram(Name("dcspd_queue_wait_ms", "tenant", `q"t`), []int64{1, 10})
	h.Observe(0)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	helped := make(map[string]int)
	typed := make(map[string]int)
	lastHelp := ""
	for i, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			m := promHelpRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed HELP: %q", i+1, line)
				continue
			}
			helped[m[1]]++
			lastHelp = m[1]
		case strings.HasPrefix(line, "# TYPE "):
			m := promTypeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed TYPE: %q", i+1, line)
				continue
			}
			typed[m[1]]++
			if lastHelp != m[1] {
				t.Errorf("line %d: TYPE %s not preceded by its HELP line", i+1, m[1])
			}
		default:
			if !promSeriesRe.MatchString(line) {
				t.Errorf("line %d: series fails exposition grammar: %q", i+1, line)
				continue
			}
			family := line[:strings.IndexAny(line, "{ ")]
			family = strings.TrimSuffix(family, "_bucket")
			family = strings.TrimSuffix(family, "_sum")
			family = strings.TrimSuffix(family, "_count")
			if typed[family] == 0 {
				t.Errorf("line %d: series %q precedes its TYPE header", i+1, line)
			}
		}
	}
	for fam, n := range typed {
		if n != 1 {
			t.Errorf("family %s has %d TYPE lines, want 1", fam, n)
		}
		if helped[fam] != 1 {
			t.Errorf("family %s has %d HELP lines, want 1", fam, helped[fam])
		}
	}

	for _, want := range []string{
		`dcspd_jobs_done_total{tenant="evil\"tenant"} 2`,
		`dcspd_queue_depth{pool="back\\slash"} 3`,
		`custom_family{note="line\nbreak"} -4`,
		`dcspd_queue_wait_ms_bucket{tenant="q\"t",le="+Inf"} 3`,
		"# HELP discsp_checks_total Consistency checks performed.",
		"# HELP custom_family discsp gauge metric.",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}
