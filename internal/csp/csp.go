// Package csp defines the constraint-satisfaction model shared by every
// algorithm in this repository: variables, values, assignments, and nogoods
// (constraints expressed as prohibited value combinations), plus the Problem
// container that distributed algorithms operate on.
//
// The representation follows the paper (Hirayama & Yokoo, ICDCS 2000,
// Section 2.1): a CSP is a set of variables with finite discrete domains and
// a set of nogoods, where a nogood is a set of variable-value pairs stating
// that the combination is prohibited. A solution assigns every variable a
// value from its domain such that no nogood is violated.
package csp

import (
	"fmt"
	"strconv"
	"strings"
)

// Var identifies a variable. In the distributed setting studied by the paper
// each agent owns exactly one variable, so Var doubles as an agent
// identifier. Variables of a Problem are numbered 0..NumVars()-1.
type Var int

// Value is a member of a variable's domain. Domains are finite and discrete;
// for 3-coloring the values are color indices, for SAT they are 0 (false)
// and 1 (true).
type Value int

// Lit is one variable-value pair ("literal") inside a nogood or an
// assignment: it states "variable Var has value Val".
type Lit struct {
	Var Var
	Val Value
}

// String renders the literal as "xVar=Val".
func (l Lit) String() string {
	return "x" + strconv.Itoa(int(l.Var)) + "=" + strconv.Itoa(int(l.Val))
}

// Assignment is a read-only view of variable values. Implementations include
// full solutions, an agent's agent_view, and hypothetical views used during
// value selection.
type Assignment interface {
	// Lookup reports the value of v and whether v is assigned.
	Lookup(v Var) (Value, bool)
}

// MapAssignment is an Assignment backed by a map. The zero value is not
// usable; construct with make or NewMapAssignment.
type MapAssignment map[Var]Value

var _ Assignment = MapAssignment(nil)

// NewMapAssignment copies lits into a fresh MapAssignment.
func NewMapAssignment(lits ...Lit) MapAssignment {
	m := make(MapAssignment, len(lits))
	for _, l := range lits {
		m[l.Var] = l.Val
	}
	return m
}

// Lookup implements Assignment.
func (m MapAssignment) Lookup(v Var) (Value, bool) {
	val, ok := m[v]
	return val, ok
}

// SliceAssignment is an Assignment backed by a dense slice indexed by Var;
// entries equal to Unassigned are treated as absent. It is the cheap
// representation used by the simulator's global solution check.
type SliceAssignment []Value

// Unassigned marks an absent entry in a SliceAssignment.
const Unassigned Value = -1

var _ Assignment = SliceAssignment(nil)

// NewSliceAssignment returns a SliceAssignment of n variables, all
// unassigned.
func NewSliceAssignment(n int) SliceAssignment {
	s := make(SliceAssignment, n)
	for i := range s {
		s[i] = Unassigned
	}
	return s
}

// Lookup implements Assignment.
func (s SliceAssignment) Lookup(v Var) (Value, bool) {
	if int(v) < 0 || int(v) >= len(s) || s[v] == Unassigned {
		return 0, false
	}
	return s[v], true
}

// Override is an Assignment that reads Var as Val and defers every other
// variable to Base. It is used to test "what if my variable took value d"
// without copying the underlying view.
type Override struct {
	Base Assignment
	Var  Var
	Val  Value
}

var _ Assignment = Override{}

// Lookup implements Assignment.
func (o Override) Lookup(v Var) (Value, bool) {
	if v == o.Var {
		return o.Val, true
	}
	return o.Base.Lookup(v)
}

// FormatLits renders literals as "{x1=0 x2=1}". Used by error messages and
// tracing.
func FormatLits(lits []Lit) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range lits {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(l.String())
	}
	b.WriteByte('}')
	return b.String()
}

// checkVar panics if v is negative; used by constructors that receive
// caller-supplied literals. Negative variables are always a programming
// error, never a data error.
func checkVar(v Var) {
	if v < 0 {
		panic(fmt.Sprintf("csp: negative variable %d", v))
	}
}
