package csp

import (
	"cmp"
	"errors"
	"slices"
	"sort"
	"strconv"
	"strings"
)

// ErrContradictoryNogood is returned by NewNogood when the same variable
// appears with two different values. Such a nogood can never be violated and
// recording it would be useless.
var ErrContradictoryNogood = errors.New("csp: nogood assigns one variable two values")

// Nogood is a set of variable-value pairs stating that the combination is
// prohibited (Section 2.1 of the paper). Nogoods are immutable and stored in
// canonical form: literals sorted by variable, no duplicates. The zero value
// is the empty nogood, which is violated by every assignment (it encodes
// global insolubility).
type Nogood struct {
	lits []Lit // sorted by Var, unique Vars
	// key is the canonical dedup key, interned at construction by NewNogood
	// so Key() never allocates in steady state. Derived nogoods built by
	// Union/Without/WithoutAt leave it empty and fall back to computing it
	// on demand; Key() handles both.
	key string
}

// NewNogood canonicalizes lits into a Nogood: duplicates collapse, literals
// sort by variable. It returns ErrContradictoryNogood if one variable
// appears with conflicting values.
func NewNogood(lits ...Lit) (Nogood, error) {
	cp := make([]Lit, len(lits))
	copy(cp, lits)
	slices.SortFunc(cp, func(a, b Lit) int {
		if a.Var != b.Var {
			return cmp.Compare(a.Var, b.Var)
		}
		return cmp.Compare(a.Val, b.Val)
	})
	out := cp[:0]
	for i, l := range cp {
		checkVar(l.Var)
		if i > 0 && l.Var == cp[i-1].Var {
			if l.Val != cp[i-1].Val {
				return Nogood{}, ErrContradictoryNogood
			}
			continue
		}
		out = append(out, l)
	}
	return Nogood{lits: out, key: litsKey(out)}, nil
}

// MustNogood is NewNogood for literals known to be consistent; it panics on
// error. Intended for tests and for construction sites that have already
// deduplicated by variable.
func MustNogood(lits ...Lit) Nogood {
	ng, err := NewNogood(lits...)
	if err != nil {
		panic(err)
	}
	return ng
}

// Len returns the number of literals.
func (n Nogood) Len() int { return len(n.lits) }

// Empty reports whether the nogood has no literals. The empty nogood is
// violated by every assignment and therefore proves the problem insoluble.
func (n Nogood) Empty() bool { return len(n.lits) == 0 }

// Lits returns a copy of the literal list in canonical order.
func (n Nogood) Lits() []Lit {
	cp := make([]Lit, len(n.lits))
	copy(cp, n.lits)
	return cp
}

// At returns the i-th literal in canonical order.
func (n Nogood) At(i int) Lit { return n.lits[i] }

// ValueOf reports the value the nogood prescribes for v, if v appears.
func (n Nogood) ValueOf(v Var) (Value, bool) {
	i := sort.Search(len(n.lits), func(i int) bool { return n.lits[i].Var >= v })
	if i < len(n.lits) && n.lits[i].Var == v {
		return n.lits[i].Val, true
	}
	return 0, false
}

// Contains reports whether v appears in the nogood.
func (n Nogood) Contains(v Var) bool {
	_, ok := n.ValueOf(v)
	return ok
}

// Vars returns the variables mentioned, in increasing order.
func (n Nogood) Vars() []Var {
	vs := make([]Var, len(n.lits))
	for i, l := range n.lits {
		vs[i] = l.Var
	}
	return vs
}

// Without returns the nogood with any literal on v removed. If v does not
// appear, the receiver is returned unchanged (they share storage; nogoods
// are immutable so sharing is safe).
func (n Nogood) Without(v Var) Nogood {
	i := sort.Search(len(n.lits), func(i int) bool { return n.lits[i].Var >= v })
	if i >= len(n.lits) || n.lits[i].Var != v {
		return n
	}
	out := make([]Lit, 0, len(n.lits)-1)
	out = append(out, n.lits[:i]...)
	out = append(out, n.lits[i+1:]...)
	return Nogood{lits: out}
}

// WithoutAt returns the nogood with the i-th literal removed. It is the
// positional form of Without, used by the mcs minimization loop.
func (n Nogood) WithoutAt(i int) Nogood {
	out := make([]Lit, 0, len(n.lits)-1)
	out = append(out, n.lits[:i]...)
	out = append(out, n.lits[i+1:]...)
	return Nogood{lits: out}
}

// Union merges the receiver with other. It returns
// ErrContradictoryNogood when the two prescribe different values for a
// shared variable — in resolvent-based learning that cannot happen because
// all operands are violated under one agent_view, but the API guards it.
func (n Nogood) Union(other Nogood) (Nogood, error) {
	merged := make([]Lit, 0, len(n.lits)+len(other.lits))
	i, j := 0, 0
	for i < len(n.lits) && j < len(other.lits) {
		a, b := n.lits[i], other.lits[j]
		switch {
		case a.Var < b.Var:
			merged = append(merged, a)
			i++
		case a.Var > b.Var:
			merged = append(merged, b)
			j++
		default:
			if a.Val != b.Val {
				return Nogood{}, ErrContradictoryNogood
			}
			merged = append(merged, a)
			i, j = i+1, j+1
		}
	}
	merged = append(merged, n.lits[i:]...)
	merged = append(merged, other.lits[j:]...)
	return Nogood{lits: merged}, nil
}

// Equal reports literal-for-literal equality (canonical form makes this a
// simple scan).
func (n Nogood) Equal(other Nogood) bool {
	if len(n.lits) != len(other.lits) {
		return false
	}
	for i := range n.lits {
		if n.lits[i] != other.lits[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every literal of the receiver appears in other.
func (n Nogood) SubsetOf(other Nogood) bool {
	if len(n.lits) > len(other.lits) {
		return false
	}
	j := 0
	for _, l := range n.lits {
		for j < len(other.lits) && other.lits[j].Var < l.Var {
			j++
		}
		if j >= len(other.lits) || other.lits[j] != l {
			return false
		}
		j++
	}
	return true
}

// Violated reports whether every literal of the nogood holds under a: the
// prohibited combination is fully present. Unassigned variables make the
// nogood not violated. One call to Violated is the unit of the paper's
// "nogood check" cost measure; callers that account cost must count calls
// (see the nogood package's Store and the algorithms' check counters).
//
// The common concrete assignment types are dispatched to devirtualized
// loops: one evaluation then costs a handful of slice (or map) reads with
// no per-literal interface call. Hot paths that already hold a *DenseView
// should call ViolatedDense directly, which additionally avoids
// constructing the Assignment interface value at the call site.
func (n Nogood) Violated(a Assignment) bool {
	switch v := a.(type) {
	case *DenseView:
		return n.ViolatedDense(v)
	case SliceAssignment:
		for _, l := range n.lits {
			// v[l.Var] != l.Val also rejects unassigned entries, except for
			// a literal whose value IS the sentinel — Lookup can never
			// report that value, so such a literal never holds.
			if int(l.Var) >= len(v) || v[l.Var] != l.Val || l.Val == Unassigned {
				return false
			}
		}
		return true
	case MapAssignment:
		for _, l := range n.lits {
			if val, ok := v[l.Var]; !ok || val != l.Val {
				return false
			}
		}
		return true
	}
	for _, l := range n.lits {
		val, ok := a.Lookup(l.Var)
		if !ok || val != l.Val {
			return false
		}
	}
	return true
}

// ViolatedDense is Violated specialized to a dense view. It is the
// zero-allocation evaluation primitive of the agent hot path: no interface
// conversion, no per-literal dynamic dispatch.
func (n Nogood) ViolatedDense(d *DenseView) bool {
	vals, set := d.vals, d.set
	for _, l := range n.lits {
		i := int(l.Var)
		if i >= len(vals) || vals[i] != l.Val || !set[i] {
			return false
		}
	}
	return true
}

// Key returns a canonical string key usable in maps for deduplication.
// Nogoods built by NewNogood carry the key interned from construction, so
// calling Key on them allocates nothing; derived nogoods (Union, Without,
// WithoutAt) compute it on demand.
func (n Nogood) Key() string {
	if n.key != "" || len(n.lits) == 0 {
		return n.key
	}
	return litsKey(n.lits)
}

// litsKey renders canonical literals into the dedup key format.
func litsKey(lits []Lit) string {
	var b strings.Builder
	b.Grow(len(lits) * 8)
	for _, l := range lits {
		b.WriteString(strconv.Itoa(int(l.Var)))
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(int(l.Val)))
		b.WriteByte(';')
	}
	return b.String()
}

// String renders the nogood for tracing and error messages.
func (n Nogood) String() string { return FormatLits(n.lits) }
