package csp

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file implements the repository's native problem exchange format:
// JSON with explicit domains and k-ary nogoods. DIMACS CNF and COL cover
// the paper's benchmark families, but general problems built through the
// API (mixed domains, ternary+ nogoods) have no DIMACS form; this one
// round-trips everything Problem can express.

// problemJSON is the serialized shape.
type problemJSON struct {
	// Domains lists each variable's domain; variable i is entry i.
	Domains [][]int `json:"domains"`
	// Nogoods lists each nogood as variable-value pairs.
	Nogoods [][]litJSON `json:"nogoods"`
}

type litJSON struct {
	Var int `json:"var"`
	Val int `json:"val"`
}

// WriteProblemJSON serializes the problem.
func WriteProblemJSON(w io.Writer, p *Problem) error {
	out := problemJSON{
		Domains: make([][]int, p.NumVars()),
		Nogoods: make([][]litJSON, 0, p.NumNogoods()),
	}
	for v := 0; v < p.NumVars(); v++ {
		dom := p.Domain(Var(v))
		ints := make([]int, len(dom))
		for i, d := range dom {
			ints[i] = int(d)
		}
		out.Domains[v] = ints
	}
	for i := 0; i < p.NumNogoods(); i++ {
		ng := p.Nogood(i)
		lits := make([]litJSON, 0, ng.Len())
		for j := 0; j < ng.Len(); j++ {
			l := ng.At(j)
			lits = append(lits, litJSON{Var: int(l.Var), Val: int(l.Val)})
		}
		out.Nogoods = append(out.Nogoods, lits)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadProblemJSON parses a problem written by WriteProblemJSON, validating
// domains and nogood references.
func ReadProblemJSON(r io.Reader) (*Problem, error) {
	var in problemJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("csp: parse problem json: %w", err)
	}
	p := NewProblem()
	for v, dom := range in.Domains {
		if len(dom) == 0 {
			return nil, fmt.Errorf("csp: variable %d has empty domain", v)
		}
		vals := make([]Value, len(dom))
		for i, d := range dom {
			vals[i] = Value(d)
		}
		p.AddVar(vals...)
	}
	for i, lits := range in.Nogoods {
		cl := make([]Lit, 0, len(lits))
		for _, l := range lits {
			if l.Var < 0 || l.Var >= p.NumVars() {
				return nil, fmt.Errorf("csp: nogood %d references unknown variable %d", i, l.Var)
			}
			cl = append(cl, Lit{Var: Var(l.Var), Val: Value(l.Val)})
		}
		ng, err := NewNogood(cl...)
		if err != nil {
			return nil, fmt.Errorf("csp: nogood %d: %w", i, err)
		}
		if err := p.AddNogood(ng); err != nil {
			return nil, fmt.Errorf("csp: nogood %d: %w", i, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
