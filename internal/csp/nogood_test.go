package csp

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewNogoodCanonicalizes(t *testing.T) {
	tests := []struct {
		name string
		in   []Lit
		want []Lit
	}{
		{"empty", nil, []Lit{}},
		{"single", []Lit{{Var: 3, Val: 1}}, []Lit{{Var: 3, Val: 1}}},
		{
			"sorts by variable",
			[]Lit{{Var: 5, Val: 0}, {Var: 1, Val: 2}, {Var: 3, Val: 1}},
			[]Lit{{Var: 1, Val: 2}, {Var: 3, Val: 1}, {Var: 5, Val: 0}},
		},
		{
			"collapses duplicates",
			[]Lit{{Var: 2, Val: 1}, {Var: 2, Val: 1}, {Var: 0, Val: 0}},
			[]Lit{{Var: 0, Val: 0}, {Var: 2, Val: 1}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ng, err := NewNogood(tt.in...)
			if err != nil {
				t.Fatalf("NewNogood(%v): %v", tt.in, err)
			}
			got := ng.Lits()
			if len(got) == 0 && len(tt.want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("Lits() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestNewNogoodContradiction(t *testing.T) {
	_, err := NewNogood(Lit{Var: 1, Val: 0}, Lit{Var: 1, Val: 1})
	if !errors.Is(err, ErrContradictoryNogood) {
		t.Fatalf("err = %v, want ErrContradictoryNogood", err)
	}
}

func TestNogoodValueOf(t *testing.T) {
	ng := MustNogood(Lit{Var: 2, Val: 7}, Lit{Var: 9, Val: 1})
	if v, ok := ng.ValueOf(2); !ok || v != 7 {
		t.Errorf("ValueOf(2) = %d,%v want 7,true", v, ok)
	}
	if v, ok := ng.ValueOf(9); !ok || v != 1 {
		t.Errorf("ValueOf(9) = %d,%v want 1,true", v, ok)
	}
	if _, ok := ng.ValueOf(5); ok {
		t.Errorf("ValueOf(5) = _,true want false")
	}
	if ng.Contains(5) {
		t.Errorf("Contains(5) = true")
	}
	if !ng.Contains(9) {
		t.Errorf("Contains(9) = false")
	}
}

func TestNogoodWithout(t *testing.T) {
	ng := MustNogood(Lit{Var: 1, Val: 0}, Lit{Var: 2, Val: 1}, Lit{Var: 3, Val: 2})
	got := ng.Without(2)
	want := MustNogood(Lit{Var: 1, Val: 0}, Lit{Var: 3, Val: 2})
	if !got.Equal(want) {
		t.Errorf("Without(2) = %v, want %v", got, want)
	}
	if !ng.Without(99).Equal(ng) {
		t.Errorf("Without(absent) changed the nogood")
	}
	if got := ng.WithoutAt(0); !got.Equal(MustNogood(Lit{Var: 2, Val: 1}, Lit{Var: 3, Val: 2})) {
		t.Errorf("WithoutAt(0) = %v", got)
	}
	// Original untouched (immutability).
	if ng.Len() != 3 {
		t.Errorf("receiver mutated: %v", ng)
	}
}

func TestNogoodUnion(t *testing.T) {
	a := MustNogood(Lit{Var: 1, Val: 0}, Lit{Var: 2, Val: 1})
	b := MustNogood(Lit{Var: 2, Val: 1}, Lit{Var: 4, Val: 0})
	got, err := a.Union(b)
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	want := MustNogood(Lit{Var: 1, Val: 0}, Lit{Var: 2, Val: 1}, Lit{Var: 4, Val: 0})
	if !got.Equal(want) {
		t.Errorf("Union = %v, want %v", got, want)
	}

	c := MustNogood(Lit{Var: 2, Val: 2})
	if _, err := a.Union(c); !errors.Is(err, ErrContradictoryNogood) {
		t.Errorf("Union with conflicting value: err = %v, want ErrContradictoryNogood", err)
	}

	empty := MustNogood()
	if got, err := a.Union(empty); err != nil || !got.Equal(a) {
		t.Errorf("Union with empty = %v, %v", got, err)
	}
}

func TestNogoodSubsetOf(t *testing.T) {
	big := MustNogood(Lit{Var: 1, Val: 0}, Lit{Var: 2, Val: 1}, Lit{Var: 3, Val: 2})
	tests := []struct {
		sub  Nogood
		want bool
	}{
		{MustNogood(), true},
		{MustNogood(Lit{Var: 2, Val: 1}), true},
		{MustNogood(Lit{Var: 1, Val: 0}, Lit{Var: 3, Val: 2}), true},
		{big, true},
		{MustNogood(Lit{Var: 2, Val: 2}), false}, // same var, other value
		{MustNogood(Lit{Var: 9, Val: 0}), false}, // absent var
		{MustNogood(Lit{Var: 1, Val: 0}, Lit{Var: 2, Val: 1}, Lit{Var: 3, Val: 2}, Lit{Var: 4, Val: 0}), false}, // superset
	}
	for _, tt := range tests {
		if got := tt.sub.SubsetOf(big); got != tt.want {
			t.Errorf("%v.SubsetOf(%v) = %v, want %v", tt.sub, big, got, tt.want)
		}
	}
}

func TestNogoodViolated(t *testing.T) {
	ng := MustNogood(Lit{Var: 0, Val: 1}, Lit{Var: 1, Val: 2})
	tests := []struct {
		name string
		a    Assignment
		want bool
	}{
		{"full match", NewMapAssignment(Lit{Var: 0, Val: 1}, Lit{Var: 1, Val: 2}), true},
		{"value differs", NewMapAssignment(Lit{Var: 0, Val: 1}, Lit{Var: 1, Val: 0}), false},
		{"partially unassigned", NewMapAssignment(Lit{Var: 0, Val: 1}), false},
		{"empty", NewMapAssignment(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ng.Violated(tt.a); got != tt.want {
				t.Errorf("Violated = %v, want %v", got, tt.want)
			}
		})
	}
	// The empty nogood is violated by everything.
	if !MustNogood().Violated(NewMapAssignment()) {
		t.Errorf("empty nogood not violated by empty assignment")
	}
}

func TestNogoodKeyDistinguishes(t *testing.T) {
	a := MustNogood(Lit{Var: 1, Val: 23}, Lit{Var: 4, Val: 5})
	b := MustNogood(Lit{Var: 1, Val: 2}, Lit{Var: 3, Val: 45})
	c := MustNogood(Lit{Var: 14, Val: 5}, Lit{Var: 12, Val: 3})
	keys := map[string]bool{a.Key(): true, b.Key(): true, c.Key(): true}
	if len(keys) != 3 {
		t.Errorf("keys collide: %q %q %q", a.Key(), b.Key(), c.Key())
	}
	if a.Key() != MustNogood(Lit{Var: 4, Val: 5}, Lit{Var: 1, Val: 23}).Key() {
		t.Errorf("key depends on literal order")
	}
}

// randomLits draws literals over a small variable space so collisions and
// duplicates are frequent.
func randomLits(rng *rand.Rand) []Lit {
	n := rng.Intn(8)
	lits := make([]Lit, n)
	for i := range lits {
		lits[i] = Lit{Var: Var(rng.Intn(6)), Val: Value(rng.Intn(3))}
	}
	return lits
}

// TestNogoodCanonicalProperty checks with testing/quick-style random inputs
// that construction is order-insensitive and idempotent.
func TestNogoodCanonicalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		lits := randomLits(rng)
		ng1, err1 := NewNogood(lits...)
		shuffled := make([]Lit, len(lits))
		copy(shuffled, lits)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		ng2, err2 := NewNogood(shuffled...)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("order-dependent error: %v vs %v for %v", err1, err2, lits)
		}
		if err1 != nil {
			continue
		}
		if !ng1.Equal(ng2) || ng1.Key() != ng2.Key() {
			t.Fatalf("order-dependent canonical form: %v vs %v", ng1, ng2)
		}
		ng3, err := NewNogood(ng1.Lits()...)
		if err != nil || !ng3.Equal(ng1) {
			t.Fatalf("not idempotent: %v -> %v (%v)", ng1, ng3, err)
		}
	}
}

// TestNogoodUnionProperty: union is commutative and its result is violated
// exactly when both operands are violated (under assignments covering all
// variables).
func TestNogoodUnionProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}
	f := func(rawA, rawB []uint8) bool {
		a := litsFromBytes(rawA)
		b := litsFromBytes(rawB)
		ngA, errA := NewNogood(a...)
		ngB, errB := NewNogood(b...)
		if errA != nil || errB != nil {
			return true
		}
		u1, err1 := ngA.Union(ngB)
		u2, err2 := ngB.Union(ngA)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		if !u1.Equal(u2) {
			return false
		}
		// Every assignment extending the union violates both operands.
		full := NewMapAssignment(u1.Lits()...)
		return ngA.Violated(full) && ngB.Violated(full) && u1.Violated(full)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func litsFromBytes(raw []uint8) []Lit {
	lits := make([]Lit, 0, len(raw))
	for _, b := range raw {
		lits = append(lits, Lit{Var: Var(b % 5), Val: Value(b / 5 % 3)})
	}
	return lits
}
