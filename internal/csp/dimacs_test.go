package csp

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseCNF(t *testing.T) {
	input := `c a comment
p cnf 3 2
1 -2 3 0
-1 2 0
`
	cnf, err := ParseCNF(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ParseCNF: %v", err)
	}
	if cnf.NumVars != 3 || len(cnf.Clauses) != 2 {
		t.Fatalf("got %d vars, %d clauses", cnf.NumVars, len(cnf.Clauses))
	}
	want := [][]int{{1, -2, 3}, {-1, 2}}
	for i, cl := range want {
		for j, lit := range cl {
			if cnf.Clauses[i][j] != lit {
				t.Errorf("clause %d = %v, want %v", i, cnf.Clauses[i], cl)
			}
		}
	}
}

func TestParseCNFMultilineClause(t *testing.T) {
	input := "p cnf 3 1\n1\n-2\n3 0\n"
	cnf, err := ParseCNF(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ParseCNF: %v", err)
	}
	if len(cnf.Clauses) != 1 || len(cnf.Clauses[0]) != 3 {
		t.Fatalf("clauses = %v", cnf.Clauses)
	}
}

func TestParseCNFMissingTerminator(t *testing.T) {
	// Some archives omit the trailing 0 on the last clause; tolerate it.
	cnf, err := ParseCNF(strings.NewReader("p cnf 2 2\n1 2 0\n-1 -2"))
	if err != nil {
		t.Fatalf("ParseCNF: %v", err)
	}
	if len(cnf.Clauses) != 2 {
		t.Fatalf("clauses = %v", cnf.Clauses)
	}
}

func TestParseCNFErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"no header", "1 2 0\n"},
		{"bad header", "p sat 3 1\n"},
		{"literal out of range", "p cnf 2 1\n3 0\n"},
		{"clause count mismatch", "p cnf 2 5\n1 0\n"},
		{"garbage literal", "p cnf 2 1\n1 x 0\n"},
		{"empty input", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseCNF(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ParseCNF accepted %q", tt.in)
			}
		})
	}
}

func TestCNFRoundTrip(t *testing.T) {
	orig := &CNF{NumVars: 4, Clauses: [][]int{{1, -2, 4}, {-3, 2}, {4}}}
	var buf bytes.Buffer
	if err := WriteCNF(&buf, orig, "round trip"); err != nil {
		t.Fatalf("WriteCNF: %v", err)
	}
	parsed, err := ParseCNF(&buf)
	if err != nil {
		t.Fatalf("ParseCNF: %v", err)
	}
	if parsed.NumVars != orig.NumVars || len(parsed.Clauses) != len(orig.Clauses) {
		t.Fatalf("round trip shape mismatch: %+v", parsed)
	}
	for i := range orig.Clauses {
		for j := range orig.Clauses[i] {
			if parsed.Clauses[i][j] != orig.Clauses[i][j] {
				t.Errorf("clause %d: %v != %v", i, parsed.Clauses[i], orig.Clauses[i])
			}
		}
	}
}

func TestCNFProblem(t *testing.T) {
	cnf := &CNF{NumVars: 2, Clauses: [][]int{{1, 2}, {-1, -2}}}
	p, err := cnf.Problem()
	if err != nil {
		t.Fatalf("Problem: %v", err)
	}
	if p.NumVars() != 2 || p.NumNogoods() != 2 {
		t.Fatalf("shape: %d vars, %d nogoods", p.NumVars(), p.NumNogoods())
	}
	// x0=1, x1=0 satisfies both clauses.
	if !p.IsSolution(SliceAssignment{1, 0}) {
		t.Errorf("valid model rejected")
	}
	// x0=0, x1=0 falsifies clause 1.
	if p.IsSolution(SliceAssignment{0, 0}) {
		t.Errorf("invalid model accepted")
	}
}

func TestParseCOL(t *testing.T) {
	input := `c graph
p edge 4 3
e 1 2
e 2 3
e 3 4
`
	g, err := ParseCOL(strings.NewReader(input))
	if err != nil {
		t.Fatalf("ParseCOL: %v", err)
	}
	if g.NumNodes != 4 || len(g.Edges) != 3 {
		t.Fatalf("got %d nodes, %d edges", g.NumNodes, len(g.Edges))
	}
	if g.Edges[0] != [2]int{0, 1} {
		t.Errorf("edge 0 = %v (0-based expected)", g.Edges[0])
	}
}

func TestParseCOLErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"no header", "e 1 2\n"},
		{"bad header", "p graph 3 1\n"},
		{"endpoint out of range", "p edge 2 1\ne 1 5\n"},
		{"zero endpoint", "p edge 2 1\ne 0 1\n"},
		{"unknown record", "p edge 2 1\nq 1 2\n"},
		{"empty", ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseCOL(strings.NewReader(tt.in)); err == nil {
				t.Errorf("ParseCOL accepted %q", tt.in)
			}
		})
	}
}

func TestCOLRoundTrip(t *testing.T) {
	orig := &Graph{NumNodes: 5, Edges: [][2]int{{0, 1}, {2, 4}}}
	var buf bytes.Buffer
	if err := WriteCOL(&buf, orig, "round trip"); err != nil {
		t.Fatalf("WriteCOL: %v", err)
	}
	parsed, err := ParseCOL(&buf)
	if err != nil {
		t.Fatalf("ParseCOL: %v", err)
	}
	if parsed.NumNodes != orig.NumNodes || len(parsed.Edges) != len(orig.Edges) {
		t.Fatalf("shape mismatch: %+v", parsed)
	}
	for i := range orig.Edges {
		if parsed.Edges[i] != orig.Edges[i] {
			t.Errorf("edge %d: %v != %v", i, parsed.Edges[i], orig.Edges[i])
		}
	}
}

func TestGraphProblem(t *testing.T) {
	g := &Graph{NumNodes: 3, Edges: [][2]int{{0, 1}, {1, 2}, {0, 2}}}
	p, err := g.Problem(3)
	if err != nil {
		t.Fatalf("Problem: %v", err)
	}
	if p.NumNogoods() != 9 {
		t.Errorf("NumNogoods = %d, want 9", p.NumNogoods())
	}
	if !p.IsSolution(SliceAssignment{0, 1, 2}) {
		t.Errorf("proper coloring rejected")
	}
	if _, err := g.Problem(0); err == nil {
		t.Errorf("Problem(0 colors) accepted")
	}
}

func TestProblemJSONRoundTrip(t *testing.T) {
	p := NewProblem()
	p.AddVar(0, 1, 2)
	p.AddVar(5, 7)
	p.AddVar(0, 1)
	if err := p.AddNogood(MustNogood(Lit{Var: 0, Val: 1}, Lit{Var: 1, Val: 5}, Lit{Var: 2, Val: 0})); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNogood(MustNogood(Lit{Var: 2, Val: 1})); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteProblemJSON(&buf, p); err != nil {
		t.Fatalf("write: %v", err)
	}
	back, err := ReadProblemJSON(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if back.NumVars() != 3 || back.NumNogoods() != 2 {
		t.Fatalf("shape: %d vars %d nogoods", back.NumVars(), back.NumNogoods())
	}
	if got := back.Domain(1); len(got) != 2 || got[0] != 5 || got[1] != 7 {
		t.Errorf("domain 1 = %v", got)
	}
	if !back.Nogood(0).Equal(p.Nogood(0)) || !back.Nogood(1).Equal(p.Nogood(1)) {
		t.Errorf("nogoods changed: %v %v", back.Nogood(0), back.Nogood(1))
	}
}

func TestReadProblemJSONErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"garbage", "nope"},
		{"empty domain", `{"domains":[[]],"nogoods":[]}`},
		{"unknown variable", `{"domains":[[0,1]],"nogoods":[[{"var":5,"val":0}]]}`},
		{"negative variable", `{"domains":[[0,1]],"nogoods":[[{"var":-1,"val":0}]]}`},
		{"contradictory nogood", `{"domains":[[0,1]],"nogoods":[[{"var":0,"val":0},{"var":0,"val":1}]]}`},
		{"value outside domain", `{"domains":[[0,1]],"nogoods":[[{"var":0,"val":9}]]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadProblemJSON(strings.NewReader(tc.in)); err == nil {
				t.Errorf("accepted %q", tc.in)
			}
		})
	}
}
