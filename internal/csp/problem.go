package csp

import (
	"errors"
	"fmt"
	"sort"
)

// Problem is a CSP: variables 0..n-1 with finite discrete domains and a set
// of nogoods. In the distributed setting, variable i belongs to agent i and
// agent i knows exactly the nogoods relevant to variable i (Section 2.1:
// "P_i includes all nogoods that are relevant to variables in P_i").
//
// Problem is mutable during construction (AddVar / AddNogood /
// AddAllDifferent / AddClause) and should be treated as read-only once
// handed to a solver; solvers never mutate it.
type Problem struct {
	domains [][]Value
	nogoods []Nogood

	// byVar[v] lists indices into nogoods of the nogoods mentioning v.
	// Maintained incrementally by AddNogood.
	byVar [][]int
}

// NewProblem returns an empty problem.
func NewProblem() *Problem {
	return &Problem{}
}

// NewProblemUniform returns a problem with n variables that all share the
// domain {0..domainSize-1}; the common case for coloring (domainSize colors)
// and SAT (domainSize 2).
func NewProblemUniform(n, domainSize int) *Problem {
	p := NewProblem()
	dom := make([]Value, domainSize)
	for i := range dom {
		dom[i] = Value(i)
	}
	for i := 0; i < n; i++ {
		p.AddVar(dom...)
	}
	return p
}

// AddVar appends a variable with the given domain and returns its Var. The
// domain is copied.
func (p *Problem) AddVar(domain ...Value) Var {
	dom := make([]Value, len(domain))
	copy(dom, domain)
	p.domains = append(p.domains, dom)
	p.byVar = append(p.byVar, nil)
	return Var(len(p.domains) - 1)
}

// NumVars returns the number of variables.
func (p *Problem) NumVars() int { return len(p.domains) }

// Domain returns variable v's domain. The returned slice is shared; callers
// must not mutate it.
func (p *Problem) Domain(v Var) []Value { return p.domains[v] }

// NumNogoods returns the number of nogoods added so far.
func (p *Problem) NumNogoods() int { return len(p.nogoods) }

// Nogood returns the i-th nogood.
func (p *Problem) Nogood(i int) Nogood { return p.nogoods[i] }

// Nogoods returns a copy of the nogood list.
func (p *Problem) Nogoods() []Nogood {
	cp := make([]Nogood, len(p.nogoods))
	copy(cp, p.nogoods)
	return cp
}

// AddNogood records ng as a constraint of the problem. Nogoods mentioning
// variables that do not exist yet are rejected.
func (p *Problem) AddNogood(ng Nogood) error {
	for i := 0; i < ng.Len(); i++ {
		if l := ng.At(i); int(l.Var) >= len(p.domains) {
			return fmt.Errorf("csp: nogood %v mentions undeclared variable x%d", ng, l.Var)
		}
	}
	idx := len(p.nogoods)
	p.nogoods = append(p.nogoods, ng)
	for i := 0; i < ng.Len(); i++ {
		p.byVar[ng.At(i).Var] = append(p.byVar[ng.At(i).Var], idx)
	}
	return nil
}

// NogoodsOf returns the nogoods mentioning v, in insertion order. The slice
// is freshly allocated.
func (p *Problem) NogoodsOf(v Var) []Nogood {
	idxs := p.byVar[v]
	out := make([]Nogood, len(idxs))
	for i, idx := range idxs {
		out[i] = p.nogoods[idx]
	}
	return out
}

// Neighbors returns the variables that share at least one nogood with v,
// sorted, excluding v itself. In the one-variable-per-agent setting these
// are exactly the agents v's agent communicates with.
func (p *Problem) Neighbors(v Var) []Var {
	seen := make(map[Var]struct{})
	for _, idx := range p.byVar[v] {
		ng := p.nogoods[idx]
		for i := 0; i < ng.Len(); i++ {
			if u := ng.At(i).Var; u != v {
				seen[u] = struct{}{}
			}
		}
	}
	out := make([]Var, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddNotEqual adds the binary "u ≠ v" constraint, expanded into one nogood
// per shared domain value — the encoding the paper uses for graph-coloring
// arcs (Figure 1 shows the three per-arc nogoods explicitly).
func (p *Problem) AddNotEqual(u, v Var) error {
	if u == v {
		return fmt.Errorf("csp: not-equal constraint on single variable x%d", u)
	}
	shared := make(map[Value]struct{}, len(p.domains[u]))
	for _, val := range p.domains[u] {
		shared[val] = struct{}{}
	}
	for _, val := range p.domains[v] {
		if _, ok := shared[val]; !ok {
			continue
		}
		ng, err := NewNogood(Lit{Var: u, Val: val}, Lit{Var: v, Val: val})
		if err != nil {
			return err
		}
		if err := p.AddNogood(ng); err != nil {
			return err
		}
	}
	return nil
}

// SATLit is a propositional literal for AddClause: variable index plus
// polarity.
type SATLit struct {
	Var     Var
	Negated bool
}

// ErrEmptyClause is returned by AddClause for a clause with no literals,
// which would make the problem trivially insoluble by accident.
var ErrEmptyClause = errors.New("csp: empty clause")

// AddClause adds a propositional clause over Boolean variables (domain
// {0,1}) as a nogood: the clause is violated exactly when every literal is
// false, so the nogood assigns each clause variable the value falsifying its
// literal. Tautological clauses (x ∨ ¬x ∨ ...) are skipped with no error.
func (p *Problem) AddClause(lits ...SATLit) error {
	if len(lits) == 0 {
		return ErrEmptyClause
	}
	ngLits := make([]Lit, 0, len(lits))
	for _, l := range lits {
		falsifying := Value(0)
		if l.Negated {
			falsifying = 1
		}
		ngLits = append(ngLits, Lit{Var: l.Var, Val: falsifying})
	}
	ng, err := NewNogood(ngLits...)
	if errors.Is(err, ErrContradictoryNogood) {
		return nil // tautology: clause contains x and ¬x, never violated
	}
	if err != nil {
		return err
	}
	return p.AddNogood(ng)
}

// IsSolution reports whether a assigns every variable a value in its domain
// and violates no nogood. This is the out-of-band global check used by the
// simulator's termination detection; it does not contribute to any agent's
// nogood-check count.
func (p *Problem) IsSolution(a Assignment) bool {
	for v := range p.domains {
		val, ok := a.Lookup(Var(v))
		if !ok || !p.inDomain(Var(v), val) {
			return false
		}
	}
	for _, ng := range p.nogoods {
		if ng.Violated(a) {
			return false
		}
	}
	return true
}

// CountViolations returns the number of nogoods violated under a. Used by
// tests and by the breakout cost function's verification helpers.
func (p *Problem) CountViolations(a Assignment) int {
	count := 0
	for _, ng := range p.nogoods {
		if ng.Violated(a) {
			count++
		}
	}
	return count
}

func (p *Problem) inDomain(v Var, val Value) bool {
	for _, d := range p.domains[v] {
		if d == val {
			return true
		}
	}
	return false
}

// Validate checks structural sanity: every variable has a non-empty domain
// and every nogood value is inside the corresponding domain. Generators call
// this before returning instances.
func (p *Problem) Validate() error {
	for v, dom := range p.domains {
		if len(dom) == 0 {
			return fmt.Errorf("csp: variable x%d has empty domain", v)
		}
	}
	for _, ng := range p.nogoods {
		for i := 0; i < ng.Len(); i++ {
			if l := ng.At(i); !p.inDomain(l.Var, l.Val) {
				return fmt.Errorf("csp: nogood %v uses value outside domain of x%d", ng, l.Var)
			}
		}
	}
	return nil
}

// Clone returns a deep copy; useful when an experiment mutates weights or
// appends learned nogoods into problem-shaped scratch space.
func (p *Problem) Clone() *Problem {
	cp := NewProblem()
	for _, dom := range p.domains {
		cp.AddVar(dom...)
	}
	for _, ng := range p.nogoods {
		// Nogoods are immutable, so sharing them is safe.
		if err := cp.AddNogood(ng); err != nil {
			// Cannot happen: the source problem already validated them.
			panic(err)
		}
	}
	return cp
}

// Stats summarizes a problem for logging and generator tests.
type Stats struct {
	Vars          int
	Nogoods       int
	MaxDomain     int
	MaxNogoodSize int
}

// Summarize computes Stats.
func (p *Problem) Summarize() Stats {
	s := Stats{Vars: len(p.domains), Nogoods: len(p.nogoods)}
	for _, dom := range p.domains {
		if len(dom) > s.MaxDomain {
			s.MaxDomain = len(dom)
		}
	}
	for _, ng := range p.nogoods {
		if ng.Len() > s.MaxNogoodSize {
			s.MaxNogoodSize = ng.Len()
		}
	}
	return s
}
