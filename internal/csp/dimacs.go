package csp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the two DIMACS exchange formats the repository's CLI
// tools speak: CNF (SAT instances, "p cnf" header) and COL (graph-coloring
// instances, "p edge" header). The paper's 3ONESAT benchmark instances were
// distributed as DIMACS CNF files, so round-tripping through these formats
// lets users plug in their own instances.

// CNF is a propositional formula in clausal form. Variables are numbered
// 1..NumVars following DIMACS convention; positive literal v is v, negative
// is -v.
type CNF struct {
	NumVars int
	Clauses [][]int
}

// ParseCNF reads a DIMACS CNF file. Comment lines ("c ...") are ignored;
// clauses may span lines and are terminated by 0, per the standard.
func ParseCNF(r io.Reader) (*CNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		cnf        *CNF
		current    []int
		numClauses = -1
	)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") || strings.HasPrefix(line, "%") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("csp: line %d: malformed problem line %q", lineNo, line)
			}
			nv, err1 := strconv.Atoi(fields[2])
			nc, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || nv < 0 || nc < 0 {
				return nil, fmt.Errorf("csp: line %d: bad counts in %q", lineNo, line)
			}
			cnf = &CNF{NumVars: nv, Clauses: make([][]int, 0, nc)}
			numClauses = nc
			continue
		}
		if cnf == nil {
			return nil, fmt.Errorf("csp: line %d: clause before problem line", lineNo)
		}
		for _, tok := range strings.Fields(line) {
			lit, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("csp: line %d: bad literal %q", lineNo, tok)
			}
			if lit == 0 {
				cl := make([]int, len(current))
				copy(cl, current)
				cnf.Clauses = append(cnf.Clauses, cl)
				current = current[:0]
				continue
			}
			v := lit
			if v < 0 {
				v = -v
			}
			if v > cnf.NumVars {
				return nil, fmt.Errorf("csp: line %d: literal %d out of range (p cnf %d)", lineNo, lit, cnf.NumVars)
			}
			current = append(current, lit)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("csp: read cnf: %w", err)
	}
	if cnf == nil {
		return nil, fmt.Errorf("csp: missing problem line")
	}
	if len(current) > 0 {
		// Tolerate a final clause missing its 0 terminator; several
		// benchmark archives contain such files.
		cl := make([]int, len(current))
		copy(cl, current)
		cnf.Clauses = append(cnf.Clauses, cl)
	}
	if numClauses >= 0 && len(cnf.Clauses) != numClauses {
		return nil, fmt.Errorf("csp: header declares %d clauses, found %d", numClauses, len(cnf.Clauses))
	}
	return cnf, nil
}

// WriteCNF writes the formula in DIMACS CNF format.
func WriteCNF(w io.Writer, cnf *CNF, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", cnf.NumVars, len(cnf.Clauses)); err != nil {
		return err
	}
	for _, cl := range cnf.Clauses {
		for _, lit := range cl {
			if _, err := fmt.Fprintf(bw, "%d ", lit); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Problem converts the formula into a CSP with one Boolean variable (domain
// {0,1}) per DIMACS variable; DIMACS variable i becomes Var(i-1).
func (c *CNF) Problem() (*Problem, error) {
	p := NewProblemUniform(c.NumVars, 2)
	for _, cl := range c.Clauses {
		lits := make([]SATLit, 0, len(cl))
		for _, lit := range cl {
			v := lit
			neg := false
			if v < 0 {
				v, neg = -v, true
			}
			lits = append(lits, SATLit{Var: Var(v - 1), Negated: neg})
		}
		if err := p.AddClause(lits...); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Graph is an undirected simple graph for coloring instances. Nodes are
// numbered 0..NumNodes-1.
type Graph struct {
	NumNodes int
	Edges    [][2]int
}

// ParseCOL reads a DIMACS COL ("p edge") graph file. Nodes in the file are
// 1-based and are shifted to 0-based.
func ParseCOL(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var g *Graph
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if len(fields) != 4 || fields[1] != "edge" {
				return nil, fmt.Errorf("csp: line %d: malformed problem line %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("csp: line %d: bad node count", lineNo)
			}
			g = &Graph{NumNodes: n}
		case "e":
			if g == nil {
				return nil, fmt.Errorf("csp: line %d: edge before problem line", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("csp: line %d: malformed edge %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || u < 1 || v < 1 || u > g.NumNodes || v > g.NumNodes {
				return nil, fmt.Errorf("csp: line %d: edge endpoints out of range", lineNo)
			}
			g.Edges = append(g.Edges, [2]int{u - 1, v - 1})
		default:
			return nil, fmt.Errorf("csp: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("csp: read col: %w", err)
	}
	if g == nil {
		return nil, fmt.Errorf("csp: missing problem line")
	}
	return g, nil
}

// WriteCOL writes the graph in DIMACS COL format (1-based nodes).
func WriteCOL(w io.Writer, g *Graph, comments ...string) error {
	bw := bufio.NewWriter(w)
	for _, c := range comments {
		if _, err := fmt.Fprintf(bw, "c %s\n", c); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.NumNodes, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d\n", e[0]+1, e[1]+1); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Problem converts the graph into a k-coloring CSP: one variable per node
// with domain {0..colors-1} and per-edge not-equal constraints expanded into
// nogoods.
func (g *Graph) Problem(colors int) (*Problem, error) {
	if colors < 1 {
		return nil, fmt.Errorf("csp: need at least one color, got %d", colors)
	}
	p := NewProblemUniform(g.NumNodes, colors)
	for _, e := range g.Edges {
		if err := p.AddNotEqual(Var(e[0]), Var(e[1])); err != nil {
			return nil, err
		}
	}
	return p, nil
}
