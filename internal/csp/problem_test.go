package csp

import (
	"errors"
	"testing"
)

func triangle(t *testing.T) *Problem {
	t.Helper()
	p := NewProblemUniform(3, 3)
	for _, e := range [][2]Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatalf("AddNotEqual: %v", err)
		}
	}
	return p
}

func TestProblemConstruction(t *testing.T) {
	p := triangle(t)
	if p.NumVars() != 3 {
		t.Errorf("NumVars = %d, want 3", p.NumVars())
	}
	// 3 edges × 3 shared values = 9 nogoods.
	if p.NumNogoods() != 9 {
		t.Errorf("NumNogoods = %d, want 9", p.NumNogoods())
	}
	if got := len(p.Domain(0)); got != 3 {
		t.Errorf("len(Domain(0)) = %d, want 3", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestProblemNeighbors(t *testing.T) {
	p := NewProblemUniform(4, 2)
	if err := p.AddNotEqual(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := p.AddNotEqual(2, 3); err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		v    Var
		want []Var
	}{
		{0, []Var{2}},
		{1, []Var{}},
		{2, []Var{0, 3}},
		{3, []Var{2}},
	}
	for _, tt := range tests {
		got := p.Neighbors(tt.v)
		if len(got) != len(tt.want) {
			t.Errorf("Neighbors(%d) = %v, want %v", tt.v, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("Neighbors(%d) = %v, want %v", tt.v, got, tt.want)
				break
			}
		}
	}
}

func TestProblemIsSolution(t *testing.T) {
	p := triangle(t)
	tests := []struct {
		name string
		a    Assignment
		want bool
	}{
		{"proper coloring", SliceAssignment{0, 1, 2}, true},
		{"conflict", SliceAssignment{0, 0, 2}, false},
		{"incomplete", SliceAssignment{0, 1, Unassigned}, false},
		{"out of domain", SliceAssignment{0, 1, 7}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := p.IsSolution(tt.a); got != tt.want {
				t.Errorf("IsSolution = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestProblemCountViolations(t *testing.T) {
	p := triangle(t)
	if got := p.CountViolations(SliceAssignment{0, 0, 0}); got != 3 {
		t.Errorf("CountViolations(all same) = %d, want 3", got)
	}
	if got := p.CountViolations(SliceAssignment{0, 1, 2}); got != 0 {
		t.Errorf("CountViolations(solution) = %d, want 0", got)
	}
}

func TestAddNogoodRejectsUndeclaredVariable(t *testing.T) {
	p := NewProblemUniform(2, 2)
	err := p.AddNogood(MustNogood(Lit{Var: 5, Val: 0}))
	if err == nil {
		t.Fatal("AddNogood accepted undeclared variable")
	}
}

func TestAddNotEqualSelfLoop(t *testing.T) {
	p := NewProblemUniform(2, 2)
	if err := p.AddNotEqual(1, 1); err == nil {
		t.Fatal("AddNotEqual accepted a self loop")
	}
}

func TestAddNotEqualDisjointDomains(t *testing.T) {
	p := NewProblem()
	a := p.AddVar(0, 1)
	b := p.AddVar(2, 3)
	if err := p.AddNotEqual(a, b); err != nil {
		t.Fatalf("AddNotEqual: %v", err)
	}
	if p.NumNogoods() != 0 {
		t.Errorf("disjoint domains produced %d nogoods, want 0", p.NumNogoods())
	}
}

func TestAddClause(t *testing.T) {
	p := NewProblemUniform(3, 2)
	// (x0 ∨ ¬x1 ∨ x2) is violated exactly at x0=0, x1=1, x2=0.
	if err := p.AddClause(
		SATLit{Var: 0},
		SATLit{Var: 1, Negated: true},
		SATLit{Var: 2},
	); err != nil {
		t.Fatalf("AddClause: %v", err)
	}
	if p.NumNogoods() != 1 {
		t.Fatalf("NumNogoods = %d, want 1", p.NumNogoods())
	}
	ng := p.Nogood(0)
	if !ng.Violated(SliceAssignment{0, 1, 0}) {
		t.Errorf("nogood %v not violated by falsifying assignment", ng)
	}
	if ng.Violated(SliceAssignment{1, 1, 0}) {
		t.Errorf("nogood %v violated by satisfying assignment", ng)
	}
}

func TestAddClauseTautologySkipped(t *testing.T) {
	p := NewProblemUniform(2, 2)
	if err := p.AddClause(SATLit{Var: 0}, SATLit{Var: 0, Negated: true}, SATLit{Var: 1}); err != nil {
		t.Fatalf("AddClause(tautology): %v", err)
	}
	if p.NumNogoods() != 0 {
		t.Errorf("tautology produced %d nogoods", p.NumNogoods())
	}
}

func TestAddClauseEmpty(t *testing.T) {
	p := NewProblemUniform(1, 2)
	if err := p.AddClause(); !errors.Is(err, ErrEmptyClause) {
		t.Fatalf("err = %v, want ErrEmptyClause", err)
	}
}

func TestProblemClone(t *testing.T) {
	p := triangle(t)
	cp := p.Clone()
	if cp.NumVars() != p.NumVars() || cp.NumNogoods() != p.NumNogoods() {
		t.Fatalf("clone shape mismatch")
	}
	// Mutating the clone must not affect the original.
	if err := cp.AddNogood(MustNogood(Lit{Var: 0, Val: 0})); err != nil {
		t.Fatal(err)
	}
	if p.NumNogoods() == cp.NumNogoods() {
		t.Errorf("clone shares nogood storage with original")
	}
}

func TestProblemValidate(t *testing.T) {
	p := NewProblem()
	p.AddVar() // empty domain
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted empty domain")
	}

	p2 := NewProblemUniform(1, 2)
	if err := p2.AddNogood(MustNogood(Lit{Var: 0, Val: 9})); err != nil {
		t.Fatal(err)
	}
	if err := p2.Validate(); err == nil {
		t.Error("Validate accepted out-of-domain nogood value")
	}
}

func TestProblemSummarize(t *testing.T) {
	p := triangle(t)
	s := p.Summarize()
	if s.Vars != 3 || s.Nogoods != 9 || s.MaxDomain != 3 || s.MaxNogoodSize != 2 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestNogoodsOfIndex(t *testing.T) {
	p := triangle(t)
	for v := Var(0); v < 3; v++ {
		ngs := p.NogoodsOf(v)
		if len(ngs) != 6 { // 2 incident edges × 3 values
			t.Errorf("len(NogoodsOf(%d)) = %d, want 6", v, len(ngs))
		}
		for _, ng := range ngs {
			if !ng.Contains(v) {
				t.Errorf("NogoodsOf(%d) returned %v not mentioning x%d", v, ng, v)
			}
		}
	}
}

func TestAssignments(t *testing.T) {
	m := NewMapAssignment(Lit{Var: 1, Val: 5})
	if v, ok := m.Lookup(1); !ok || v != 5 {
		t.Errorf("map Lookup(1) = %d,%v", v, ok)
	}
	if _, ok := m.Lookup(2); ok {
		t.Errorf("map Lookup(2) should miss")
	}

	s := NewSliceAssignment(3)
	if _, ok := s.Lookup(0); ok {
		t.Errorf("fresh slice assignment should be unassigned")
	}
	s[0] = 2
	if v, ok := s.Lookup(0); !ok || v != 2 {
		t.Errorf("slice Lookup(0) = %d,%v", v, ok)
	}
	if _, ok := s.Lookup(99); ok {
		t.Errorf("out-of-range Lookup should miss")
	}
	if _, ok := s.Lookup(-1); ok {
		t.Errorf("negative Lookup should miss")
	}

	o := Override{Base: s, Var: 1, Val: 7}
	if v, ok := o.Lookup(1); !ok || v != 7 {
		t.Errorf("override Lookup(1) = %d,%v", v, ok)
	}
	if v, ok := o.Lookup(0); !ok || v != 2 {
		t.Errorf("override passthrough Lookup(0) = %d,%v", v, ok)
	}
}
