package csp

// DenseView is a mutable, slice-backed partial assignment over variables
// 0..n-1: the cheap representation for agent views and hypothetical probes
// on the evaluation hot path. Unlike SliceAssignment it carries an explicit
// assigned bitmap, so it is correct for any Value range (including negative
// values from JSON problems, which would collide with SliceAssignment's
// Unassigned sentinel).
//
// DenseView exists for performance: Nogood.Violated has a concrete-type
// fast path for *DenseView that indexes the backing slices directly, and
// nogood.CheckDense evaluates against it without ever constructing an
// Assignment interface value — the per-check boxing allocation that
// dominated the map-backed view path.
type DenseView struct {
	vals []Value
	set  []bool
}

var _ Assignment = (*DenseView)(nil)

// NewDenseView returns a view over n variables, all unassigned.
func NewDenseView(n int) *DenseView {
	return &DenseView{vals: make([]Value, n), set: make([]bool, n)}
}

// Len returns the number of variables the view spans.
func (d *DenseView) Len() int { return len(d.vals) }

// Assign sets v to val.
func (d *DenseView) Assign(v Var, val Value) {
	d.vals[v] = val
	d.set[v] = true
}

// Unassign clears v.
func (d *DenseView) Unassign(v Var) {
	d.set[v] = false
}

// Known reports whether v is assigned.
func (d *DenseView) Known(v Var) bool {
	return int(v) < len(d.set) && d.set[v]
}

// Lookup implements Assignment.
func (d *DenseView) Lookup(v Var) (Value, bool) {
	if int(v) < 0 || int(v) >= len(d.vals) || !d.set[v] {
		return 0, false
	}
	return d.vals[v], true
}

// Reset unassigns every variable.
func (d *DenseView) Reset() {
	clear(d.set)
}
