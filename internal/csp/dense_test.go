package csp

import (
	"math/rand"
	"testing"
)

func TestDenseViewBasics(t *testing.T) {
	d := NewDenseView(4)
	if d.Len() != 4 {
		t.Fatalf("Len = %d, want 4", d.Len())
	}
	if d.Known(0) || d.Known(3) {
		t.Fatal("fresh view has assigned variables")
	}
	d.Assign(1, 7)
	d.Assign(2, -3) // negative values must round-trip (JSON problems)
	if val, ok := d.Lookup(1); !ok || val != 7 {
		t.Fatalf("Lookup(1) = %d,%v, want 7,true", val, ok)
	}
	if val, ok := d.Lookup(2); !ok || val != -3 {
		t.Fatalf("Lookup(2) = %d,%v, want -3,true", val, ok)
	}
	if _, ok := d.Lookup(0); ok {
		t.Fatal("Lookup(0) reported an unassigned variable")
	}
	if _, ok := d.Lookup(9); ok {
		t.Fatal("Lookup out of range reported assigned")
	}
	d.Unassign(1)
	if d.Known(1) {
		t.Fatal("Unassign left the variable known")
	}
	d.Reset()
	if d.Known(2) {
		t.Fatal("Reset left a variable known")
	}
}

// opaque hides the concrete type so Violated takes its generic
// interface-dispatch path.
type opaque struct{ m MapAssignment }

func (o opaque) Lookup(v Var) (Value, bool) { return o.m.Lookup(v) }

// TestViolatedRepresentationAgreement: Violated's concrete-type fast paths
// (DenseView, SliceAssignment, MapAssignment) and ViolatedDense must agree
// with the generic Lookup loop on random nogoods and random partial
// assignments — the devirtualization must never change an answer.
func TestViolatedRepresentationAgreement(t *testing.T) {
	const nVars, nVals = 6, 3
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		// Random nogood over distinct variables.
		nLits := rng.Intn(4)
		seen := make(map[Var]bool)
		var lits []Lit
		for len(lits) < nLits {
			v := Var(rng.Intn(nVars))
			if seen[v] {
				continue
			}
			seen[v] = true
			lits = append(lits, Lit{Var: v, Val: Value(rng.Intn(nVals))})
		}
		ng := MustNogood(lits...)

		// Random partial assignment in all four representations.
		m := make(MapAssignment)
		s := make(SliceAssignment, nVars)
		d := NewDenseView(nVars)
		for v := 0; v < nVars; v++ {
			s[v] = Unassigned
			if rng.Intn(3) == 0 {
				continue
			}
			val := Value(rng.Intn(nVals))
			m[Var(v)] = val
			s[v] = val
			d.Assign(Var(v), val)
		}

		want := ng.Violated(opaque{m: m})
		if got := ng.Violated(m); got != want {
			t.Fatalf("MapAssignment path: %v, generic: %v (ng=%v m=%v)", got, want, ng, m)
		}
		if got := ng.Violated(s); got != want {
			t.Fatalf("SliceAssignment path: %v, generic: %v (ng=%v m=%v)", got, want, ng, m)
		}
		if got := ng.Violated(d); got != want {
			t.Fatalf("DenseView path: %v, generic: %v (ng=%v m=%v)", got, want, ng, m)
		}
		if got := ng.ViolatedDense(d); got != want {
			t.Fatalf("ViolatedDense: %v, generic: %v (ng=%v m=%v)", got, want, ng, m)
		}
	}
}

// TestViolatedSliceSentinelLiteral: a literal whose value equals the
// SliceAssignment Unassigned sentinel can never hold (Lookup cannot report
// the sentinel), and the fast path must preserve that.
func TestViolatedSliceSentinelLiteral(t *testing.T) {
	ng := MustNogood(Lit{Var: 0, Val: Unassigned})
	s := SliceAssignment{Unassigned}
	if ng.Violated(s) {
		t.Fatal("sentinel-valued literal reported violated on unassigned slot")
	}
}

// TestKeyInterning: NewNogood-built nogoods carry their key from
// construction; derived nogoods compute the identical key on demand.
func TestKeyInterning(t *testing.T) {
	ng := MustNogood(Lit{Var: 2, Val: 1}, Lit{Var: 0, Val: 3})
	want := "0:3;2:1;"
	if ng.Key() != want {
		t.Fatalf("Key = %q, want %q", ng.Key(), want)
	}
	if got := testing.AllocsPerRun(100, func() { _ = ng.Key() }); got != 0 {
		t.Errorf("Key() on a constructed nogood allocates %.1f per call, want 0", got)
	}

	derived := ng.Without(2)
	if derived.Key() != MustNogood(Lit{Var: 0, Val: 3}).Key() {
		t.Fatalf("derived Key = %q mismatches constructed key", derived.Key())
	}
	u, err := ng.Union(MustNogood(Lit{Var: 5, Val: 0}))
	if err != nil {
		t.Fatal(err)
	}
	if u.Key() != MustNogood(Lit{Var: 0, Val: 3}, Lit{Var: 2, Val: 1}, Lit{Var: 5, Val: 0}).Key() {
		t.Fatalf("union Key = %q mismatches constructed key", u.Key())
	}
	at := ng.WithoutAt(0)
	if at.Key() != MustNogood(Lit{Var: 2, Val: 1}).Key() {
		t.Fatalf("WithoutAt Key = %q mismatches constructed key", at.Key())
	}
	if (Nogood{}).Key() != "" {
		t.Fatal("empty nogood key must be empty")
	}
}
