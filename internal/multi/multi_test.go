package multi

import (
	"testing"
	"time"

	"github.com/discsp/discsp/internal/async"
	"github.com/discsp/discsp/internal/central"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/gen"
	"github.com/discsp/discsp/internal/sim"
)

func TestPartitionValidate(t *testing.T) {
	tests := []struct {
		name    string
		pt      Partition
		numVars int
		wantErr bool
	}{
		{"uniform ok", Uniform(6, 2), 6, false},
		{"singletons ok", Singletons(3), 3, false},
		{"uneven tail", Uniform(5, 2), 5, false},
		{"missing variable", Partition{{0}, {2}}, 3, true},
		{"duplicate variable", Partition{{0, 1}, {1, 2}}, 3, true},
		{"empty agent", Partition{{0, 1, 2}, {}}, 3, true},
		{"out of range", Partition{{0, 5}}, 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.pt.Validate(tt.numVars)
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestUniformShapes(t *testing.T) {
	pt := Uniform(7, 3)
	if len(pt) != 3 || len(pt[0]) != 3 || len(pt[2]) != 1 {
		t.Errorf("Uniform(7,3) = %v", pt)
	}
	owner := pt.Owner()
	if owner[0] != 0 || owner[3] != 1 || owner[6] != 2 {
		t.Errorf("Owner = %v", owner)
	}
}

// runMulti drives a partitioned problem on the synchronous simulator via
// multi.Run and returns its result and agents.
func runMulti(t *testing.T, p *csp.Problem, pt Partition, initial csp.SliceAssignment, opts Options, maxCycles int) (Result, []*Agent) {
	t.Helper()
	res, agents, err := Run(p, pt, initial, opts, sim.Options{MaxCycles: maxCycles})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, agents
}

// assemble reconstructs the real assignment from the agents' blocks.
func assemble(p *csp.Problem, agents []*Agent) csp.SliceAssignment {
	return Assemble(p, agents)
}

func chain(t *testing.T, n, colors int) *csp.Problem {
	t.Helper()
	p := csp.NewProblemUniform(n, colors)
	for i := 0; i < n-1; i++ {
		if err := p.AddNotEqual(csp.Var(i), csp.Var(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestMultiSolvesChainBlocks(t *testing.T) {
	p := chain(t, 8, 3)
	init := csp.NewSliceAssignment(8)
	for i := range init {
		init[i] = 0
	}
	res, agents := runMulti(t, p, Uniform(8, 2), init, Options{}, 1000)
	got := assemble(p, agents)
	if !p.IsSolution(got) {
		t.Fatalf("final assignment %v not a solution (res=%+v)", got, res)
	}
}

func TestMultiSolvesColoringBlocks(t *testing.T) {
	inst, err := gen.Coloring(18, 48, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 4)
	_, agents := runMulti(t, inst.Problem, Uniform(18, 3), init, Options{}, 4000)
	got := assemble(inst.Problem, agents)
	if !inst.Problem.IsSolution(got) {
		t.Fatalf("final assignment not a solution")
	}
}

func TestMultiSingletonPartition(t *testing.T) {
	inst, err := gen.Coloring(12, 30, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	init := gen.RandomInitial(inst.Problem, 6)
	_, agents := runMulti(t, inst.Problem, Singletons(12), init, Options{}, 4000)
	got := assemble(inst.Problem, agents)
	if !inst.Problem.IsSolution(got) {
		t.Fatalf("singleton-partition run failed")
	}
}

func TestMultiDetectsLocalInsolubility(t *testing.T) {
	// Agent 0 owns a 2-colored triangle: its own CSP is unsatisfiable.
	p := csp.NewProblemUniform(4, 2)
	for _, e := range [][2]csp.Var{{0, 1}, {1, 2}, {0, 2}} {
		if err := p.AddNotEqual(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	pt := Partition{{0, 1, 2}, {3}}
	a := NewAgent(0, p, pt, csp.NewSliceAssignment(4), Options{})
	a.Init()
	if !a.Insoluble() {
		t.Fatalf("local insolubility not detected")
	}
}

func TestMultiDetectsCrossInsolubility(t *testing.T) {
	// K4 over 3 colors split 2+2: soluble locally, globally insoluble.
	p := csp.NewProblemUniform(4, 3)
	for i := csp.Var(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := p.AddNotEqual(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, ok := central.New(p).Solve(); ok {
		t.Fatal("oracle solved K4/3")
	}
	init := csp.SliceAssignment{0, 1, 0, 1}
	res, _ := runMulti(t, p, Uniform(4, 2), init, Options{}, 10000)
	if !res.Insoluble {
		t.Fatalf("cross-boundary insolubility not derived: %+v", res)
	}
}

func TestMultiLearnedNogoodsFlow(t *testing.T) {
	// A chain of 3 agents × 2 vars over 2 colors with extra cross
	// constraints to force deadends.
	p := chain(t, 6, 2)
	init := csp.NewSliceAssignment(6)
	for i := range init {
		init[i] = 0
	}
	_, agents := runMulti(t, p, Uniform(6, 2), init, Options{}, 2000)
	got := assemble(p, agents)
	if !p.IsSolution(got) {
		t.Fatalf("chain/2-colors should be soluble, got %v", got)
	}
}

func TestMultiSizeBoundedRecording(t *testing.T) {
	p := chain(t, 6, 3)
	pt := Uniform(6, 2)
	a := NewAgent(1, p, pt, csp.NewSliceAssignment(6), Options{SizeBound: 1})
	big := csp.MustNogood(
		csp.Lit{Var: 2, Val: 0}, csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 4, Val: 2},
	)
	before := a.store.Len()
	a.Step([]sim.Message{NogoodMsg{Sender: 0, Receiver: 1, Nogood: big}})
	if a.store.Len() != before {
		t.Errorf("size-3 nogood recorded under SizeBound=1")
	}
}

func TestMultiRequestAnswered(t *testing.T) {
	p := chain(t, 6, 3)
	pt := Uniform(6, 2)
	a := NewAgent(1, p, pt, csp.NewSliceAssignment(6), Options{})
	out := a.Step([]sim.Message{Request{Sender: 2, Receiver: 1}})
	found := false
	for _, m := range out {
		if ok, isOk := m.(Ok); isOk && ok.Receiver == 2 {
			found = true
			if len(ok.Values) != 2 {
				t.Errorf("ok carries %d values, want 2", len(ok.Values))
			}
		}
	}
	if !found {
		t.Fatalf("request unanswered: %v", out)
	}
}

func TestProjection(t *testing.T) {
	p := chain(t, 6, 3)
	pt := Uniform(6, 2) // agent 1 owns {2,3}
	a := NewAgent(1, p, pt, csp.NewSliceAssignment(6), Options{})
	ng := csp.MustNogood(csp.Lit{Var: 1, Val: 2}, csp.Lit{Var: 2, Val: 2})

	// Unknown external: inactive.
	if _, active := a.project(ng, nil); active {
		t.Errorf("projection active with unknown external")
	}
	// Matching external: active, local part on x2.
	a.view[1] = viewEntry{val: 2}
	proj, active := a.project(ng, nil)
	if !active {
		t.Fatalf("projection inactive with matching view")
	}
	if proj.local.Len() != 1 || !proj.local.Contains(2) {
		t.Errorf("projected local part = %v", proj.local)
	}
	if len(proj.matched) != 1 || proj.matched[0].Var != 1 {
		t.Errorf("matched = %v", proj.matched)
	}
	// Mismatching external: inactive.
	a.view[1] = viewEntry{val: 0}
	if _, active := a.project(ng, nil); active {
		t.Errorf("projection active with mismatching view")
	}
	// Excluded external: inactive.
	a.view[1] = viewEntry{val: 2}
	if _, active := a.project(ng, map[csp.Var]bool{1: true}); active {
		t.Errorf("projection active with excluded external")
	}
}

// TestDeriveNogoodMinimal: the block-level resolvent must be an external
// assumption set that keeps the block insoluble, and dropping any single
// assumption must restore solubility (greedy minimality).
func TestDeriveNogoodMinimal(t *testing.T) {
	// Agent 1 owns {2,3} over {0,1} with a local not-equal; externals 0,1
	// pin both block solutions via cross nogoods; external 4 is irrelevant
	// noise that must not appear in the derived nogood.
	p := csp.NewProblemUniform(5, 2)
	if err := p.AddNotEqual(2, 3); err != nil {
		t.Fatal(err)
	}
	add := func(lits ...csp.Lit) {
		t.Helper()
		if err := p.AddNogood(csp.MustNogood(lits...)); err != nil {
			t.Fatal(err)
		}
	}
	// Block solutions are (x2,x3) ∈ {(0,1),(1,0)}. Kill both under x0=1:
	add(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 2, Val: 0})
	add(csp.Lit{Var: 0, Val: 1}, csp.Lit{Var: 2, Val: 1})
	// A cross nogood with irrelevant external 4 that never fires.
	add(csp.Lit{Var: 4, Val: 0}, csp.Lit{Var: 3, Val: 0})

	pt := Partition{{0}, {2, 3}, {1}, {4}}
	a := NewAgent(1, p, pt, csp.SliceAssignment{0, 0, 0, 1, 1}, Options{})
	out := a.Step([]sim.Message{
		Ok{Sender: 0, Receiver: 1, Priority: 9, Values: []csp.Lit{{Var: 0, Val: 1}}},
		Ok{Sender: 3, Receiver: 1, Priority: 9, Values: []csp.Lit{{Var: 4, Val: 1}}},
	})
	want := csp.MustNogood(csp.Lit{Var: 0, Val: 1})
	found := false
	for _, m := range out {
		if nm, ok := m.(NogoodMsg); ok {
			found = true
			if !nm.Nogood.Equal(want) {
				t.Errorf("derived %v, want minimal %v", nm.Nogood, want)
			}
			if nm.Receiver != 0 {
				t.Errorf("nogood sent to %d, want owner 0", nm.Receiver)
			}
		}
	}
	if !found {
		t.Fatalf("no nogood derived at block deadend: %v", out)
	}
	if a.Priority() != 10 {
		t.Errorf("priority = %d, want 10", a.Priority())
	}
}

// TestMultiOnAsyncRuntime: the block agents are runtime-agnostic; run them
// on the goroutine-per-agent runtime. Note async.Run's solution monitor is
// variable-level and multi agents publish only a block fingerprint, so the
// run ends by quiescence and the test checks the assembled assignment.
func TestMultiOnAsyncRuntime(t *testing.T) {
	inst, err := gen.Coloring(12, 30, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	pt := Uniform(12, 3)
	init := gen.RandomInitial(inst.Problem, 22)
	agents := make([]*Agent, len(pt))
	res, err := async.Run(neverSolvedProblem(len(pt)), func(v csp.Var) sim.Agent {
		a := NewAgent(sim.AgentID(v), inst.Problem, pt, init, Options{})
		agents[v] = a
		return opaqueAgent{Agent: a}
	}, async.Options{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatalf("run: %v (res=%+v)", err, res)
	}
	if !res.Quiescent {
		t.Fatalf("expected quiescent end, got %+v", res)
	}
	got := Assemble(inst.Problem, agents)
	if !inst.Problem.IsSolution(got) {
		t.Fatalf("assembled assignment not a solution: %v", got)
	}
}

// opaqueAgent hides the block values from the runtime's variable-level
// monitor so the placeholder problem below stays permanently "unsolved"
// and the run ends by quiescence — which for multi AWC coincides with a
// globally consistent state.
type opaqueAgent struct{ *Agent }

func (opaqueAgent) CurrentValue() csp.Value { return 0 }

// neverSolvedProblem prohibits the only value opaqueAgent ever publishes.
func neverSolvedProblem(agents int) *csp.Problem {
	p := csp.NewProblemUniform(agents, 2)
	for v := 0; v < agents; v++ {
		if err := p.AddNogood(csp.MustNogood(csp.Lit{Var: csp.Var(v), Val: 0})); err != nil {
			panic(err)
		}
	}
	return p
}
