package multi

import (
	"fmt"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

// Result reports a partitioned run: the simulator's cost metrics plus the
// assembled variable-level assignment.
type Result struct {
	sim.Result
	// Assignment is the global variable-level assignment assembled from
	// the agents' blocks (shadowing the sim-level field, which RunAgents
	// leaves empty for block agents).
	Assignment csp.SliceAssignment
}

// Run executes block-wise AWC over the partitioned problem on the
// synchronous simulator. initial supplies a starting value for every
// problem variable.
func Run(problem *csp.Problem, partition Partition, initial csp.SliceAssignment, opts Options, simOpts sim.Options) (Result, []*Agent, error) {
	if err := partition.Validate(problem.NumVars()); err != nil {
		return Result{}, nil, err
	}
	if len(initial) != problem.NumVars() {
		return Result{}, nil, fmt.Errorf("multi: %d initial values for %d variables", len(initial), problem.NumVars())
	}
	agents := make([]*Agent, len(partition))
	simAgents := make([]sim.Agent, len(partition))
	for i := range partition {
		agents[i] = NewAgent(sim.AgentID(i), problem, partition, initial, opts)
		simAgents[i] = agents[i]
	}
	res, err := sim.RunAgents(simAgents, simOpts, func() bool {
		return problem.IsSolution(Assemble(problem, agents))
	})
	if err != nil {
		return Result{}, nil, err
	}
	return Result{Result: res, Assignment: Assemble(problem, agents)}, agents, nil
}

// Assemble reconstructs the variable-level assignment from the agents'
// current blocks.
func Assemble(problem *csp.Problem, agents []*Agent) csp.SliceAssignment {
	out := csp.NewSliceAssignment(problem.NumVars())
	for _, a := range agents {
		for _, l := range a.Values() {
			out[l.Var] = l.Val
		}
	}
	return out
}
