// Package multi extends AWC to distributed CSPs where an agent owns several
// variables — the extension the paper's Section 5 points to ("The authors
// have proposed a few extended versions of the AWC to handle a problem with
// multi-variables per agent [26]. Perhaps, it is easy to introduce our
// learning method into these algorithms as well."), after Yokoo & Hirayama,
// "Distributed Constraint Satisfaction Algorithm for Complex Local
// Problems" (ICMAS-98).
//
// Each agent owns a block of variables forming a local CSP and holds every
// nogood relevant to its variables; nogoods crossing the partition boundary
// are evaluated against the agent_view of external variables. One priority
// is attached to the whole agent. An agent repairs by re-solving its local
// CSP (with the internal/central engine) subject to the constraints whose
// external participants outrank it; a local deadend derives a resolvent-
// style nogood over external variable values — the paper's learning method
// lifted to variable blocks — which is sent to the owning agents, after
// which the agent raises its priority.
package multi

import (
	"fmt"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/sim"
)

// Partition assigns every problem variable to exactly one agent: entry i
// lists the variables owned by agent i. Validate before use.
type Partition [][]csp.Var

// Validate checks that the partition covers variables 0..n-1 exactly once
// and that every agent owns at least one variable.
func (pt Partition) Validate(numVars int) error {
	seen := make([]bool, numVars)
	count := 0
	for agent, vars := range pt {
		if len(vars) == 0 {
			return fmt.Errorf("multi: agent %d owns no variables", agent)
		}
		for _, v := range vars {
			if int(v) < 0 || int(v) >= numVars {
				return fmt.Errorf("multi: agent %d owns out-of-range variable %d", agent, v)
			}
			if seen[v] {
				return fmt.Errorf("multi: variable %d owned twice", v)
			}
			seen[v] = true
			count++
		}
	}
	if count != numVars {
		return fmt.Errorf("multi: partition covers %d of %d variables", count, numVars)
	}
	return nil
}

// Uniform builds the partition that gives each agent `block` consecutive
// variables (the last agent may get fewer).
func Uniform(numVars, block int) Partition {
	if block < 1 {
		block = 1
	}
	var pt Partition
	for start := 0; start < numVars; start += block {
		end := start + block
		if end > numVars {
			end = numVars
		}
		vars := make([]csp.Var, 0, end-start)
		for v := start; v < end; v++ {
			vars = append(vars, csp.Var(v))
		}
		pt = append(pt, vars)
	}
	return pt
}

// Singletons is the one-variable-per-agent partition, under which this
// algorithm degenerates to (block-wise) AWC.
func Singletons(numVars int) Partition {
	return Uniform(numVars, 1)
}

// Owner maps each variable to its owning agent.
func (pt Partition) Owner() map[csp.Var]sim.AgentID {
	owner := make(map[csp.Var]sim.AgentID)
	for agent, vars := range pt {
		for _, v := range vars {
			owner[v] = sim.AgentID(agent)
		}
	}
	return owner
}

// Ok announces an agent's current local solution (all owned variable
// values) and its priority.
type Ok struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Values   []csp.Lit
	Priority int
}

// From implements sim.Message.
func (m Ok) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Ok) To() sim.AgentID { return m.Receiver }

// NogoodMsg carries a learned nogood over variable-value pairs to an agent
// owning at least one of its variables.
type NogoodMsg struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
	Nogood   csp.Nogood
}

// From implements sim.Message.
func (m NogoodMsg) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m NogoodMsg) To() sim.AgentID { return m.Receiver }

// Request asks the receiver to add the sender to its ok? recipients.
type Request struct {
	Sender   sim.AgentID
	Receiver sim.AgentID
}

// From implements sim.Message.
func (m Request) From() sim.AgentID { return m.Sender }

// To implements sim.Message.
func (m Request) To() sim.AgentID { return m.Receiver }

// Stats exposes per-agent bookkeeping.
type Stats struct {
	// Deadends counts local-CSP wipeouts under the higher constraints.
	Deadends int64
	// NogoodsGenerated counts derived-and-sent nogoods.
	NogoodsGenerated int64
	// NogoodsRecorded counts received nogoods that were new and recorded.
	NogoodsRecorded int64
	// PriorityRaises counts deadend escalations.
	PriorityRaises int64
	// LocalSolves counts local-CSP searches.
	LocalSolves int64
}

type viewEntry struct {
	val  csp.Value
	prio int
}

// rank orders agents: higher priority wins, ties break toward the smaller
// agent id (mirroring the variable-id tie-break of single-variable AWC).
type rank struct {
	p  int
	id sim.AgentID
}

func (a rank) outranks(b rank) bool {
	if a.p != b.p {
		return a.p > b.p
	}
	return a.id < b.id
}
