package multi

import (
	"sort"

	"github.com/discsp/discsp/internal/central"
	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
)

// projection is a cross-boundary nogood reduced against the agent_view: the
// external literals that matched the view are stripped, leaving a
// constraint over owned variables only.
type projection struct {
	// local is the induced constraint over owned variables.
	local csp.Nogood
	// matched lists the external literals whose view values enabled the
	// projection; they are the assumptions a derived nogood is built from.
	matched []csp.Lit
}

// project reduces ng against the view. active is false when the nogood
// cannot currently fire: some external literal is unknown, differs from the
// view, or belongs to excluded.
func (a *Agent) project(ng csp.Nogood, excluded map[csp.Var]bool) (projection, bool) {
	var p projection
	localLits := make([]csp.Lit, 0, ng.Len())
	for i := 0; i < ng.Len(); i++ {
		l := ng.At(i)
		if a.owned[l.Var] {
			localLits = append(localLits, l)
			continue
		}
		if excluded[l.Var] {
			return projection{}, false
		}
		e, known := a.view[l.Var]
		if !known || e.val != l.Val {
			return projection{}, false
		}
		p.matched = append(p.matched, l)
	}
	p.local = csp.MustNogood(localLits...)
	return p, true
}

// localIndex maps owned variables to dense indices for the block solver.
func (a *Agent) localIndex() map[csp.Var]csp.Var {
	idx := make(map[csp.Var]csp.Var, len(a.vars))
	for i, v := range a.vars {
		idx[v] = csp.Var(i)
	}
	return idx
}

// buildLocalProblem assembles the block CSP: owned domains, local nogoods,
// and the given induced constraints (already projected to owned vars).
func (a *Agent) buildLocalProblem(induced []csp.Nogood) *csp.Problem {
	idx := a.localIndex()
	sub := csp.NewProblem()
	for _, v := range a.vars {
		sub.AddVar(a.problem.Domain(v)...)
	}
	remap := func(ng csp.Nogood) csp.Nogood {
		lits := ng.Lits()
		for i := range lits {
			lits[i].Var = idx[lits[i].Var]
		}
		return csp.MustNogood(lits...)
	}
	for _, ng := range a.localNogoods {
		if err := sub.AddNogood(remap(ng)); err != nil {
			panic("multi: local nogood remap: " + err.Error())
		}
	}
	for _, ng := range induced {
		if ng.Empty() {
			// An induced empty constraint means the view alone violates a
			// recorded nogood over... impossible: every stored nogood has
			// an owned literal, so projections are non-empty.
			panic("multi: empty induced constraint")
		}
		if err := sub.AddNogood(remap(ng)); err != nil {
			panic("multi: induced nogood remap: " + err.Error())
		}
	}
	return sub
}

// chargeSolver books the block solver's work as checks: one unit per search
// node and per pruning, the closest analogue of a nogood check.
func (a *Agent) chargeSolver(before, after central.Stats) {
	a.counter.Add(int(after.Nodes - before.Nodes + after.Prunings - before.Prunings))
}

// candidateView overlays a candidate block solution on the agent_view.
type candidateView struct {
	a   *Agent
	sol map[csp.Var]csp.Value
}

var _ csp.Assignment = candidateView{}

// Lookup implements csp.Assignment.
func (c candidateView) Lookup(v csp.Var) (csp.Value, bool) {
	if val, ok := c.sol[v]; ok {
		return val, true
	}
	e, ok := c.a.view[v]
	if !ok {
		return 0, false
	}
	return e.val, true
}

// solveLocal searches for a block assignment satisfying the local nogoods
// plus the active projections of `hard`. Among up to LocalSolutionLimit
// such assignments it returns the one minimizing violations of `minimize`
// (evaluated under the view, charging checks); ok is false when none
// exists.
func (a *Agent) solveLocal(hard, minimize []csp.Nogood) (map[csp.Var]csp.Value, bool) {
	a.stats.LocalSolves++
	induced := make([]csp.Nogood, 0, len(hard))
	for _, ng := range hard {
		if p, active := a.project(ng, nil); active {
			induced = append(induced, p.local)
		}
	}
	sub := a.buildLocalProblem(induced)
	solver := central.New(sub)
	limit := a.opts.LocalSolutionLimit
	if limit <= 0 {
		limit = defaultLocalSolutionLimit
	}
	if len(minimize) == 0 {
		limit = 1
	}
	before := solver.Stats()
	solutions := solver.Enumerate(limit)
	a.chargeSolver(before, solver.Stats())
	if len(solutions) == 0 {
		return nil, false
	}

	bestIdx, bestViol := 0, -1
	for i, sol := range solutions {
		mapped := a.remapSolution(sol)
		viol := 0
		cv := candidateView{a: a, sol: mapped}
		for _, ng := range minimize {
			if nogood.Check(ng, cv, &a.counter) {
				viol++
			}
		}
		if bestViol < 0 || viol < bestViol {
			bestIdx, bestViol = i, viol
		}
	}
	return a.remapSolution(solutions[bestIdx]), true
}

// remapSolution converts a dense block solution back to original ids.
func (a *Agent) remapSolution(sol csp.SliceAssignment) map[csp.Var]csp.Value {
	out := make(map[csp.Var]csp.Value, len(a.vars))
	for i, v := range a.vars {
		out[v] = sol[i]
	}
	return out
}

// deriveNogood lifts resolvent-based learning to blocks: the assumptions
// are the external view literals that enabled the higher projections; they
// are greedily minimized by re-testing insolubility with each assumption
// withdrawn (the block analogue of the subset tests of mcs learning, with
// the block solver charged as checks).
func (a *Agent) deriveNogood(higher []csp.Nogood) csp.Nogood {
	assumptions := make(map[csp.Var]csp.Value)
	for _, ng := range higher {
		p, active := a.project(ng, nil)
		if !active {
			continue
		}
		for _, l := range p.matched {
			assumptions[l.Var] = l.Val
		}
	}
	vars := make([]csp.Var, 0, len(assumptions))
	for v := range assumptions {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })

	excluded := make(map[csp.Var]bool)
	for _, v := range vars {
		excluded[v] = true
		if !a.insolubleUnder(higher, excluded) {
			excluded[v] = false
			delete(excluded, v)
		}
	}
	lits := make([]csp.Lit, 0, len(vars))
	for _, v := range vars {
		if !excluded[v] {
			lits = append(lits, csp.Lit{Var: v, Val: assumptions[v]})
		}
	}
	return csp.MustNogood(lits...)
}

// insolubleUnder reports whether the block CSP stays unsatisfiable when the
// excluded external variables are treated as unknown.
func (a *Agent) insolubleUnder(higher []csp.Nogood, excluded map[csp.Var]bool) bool {
	induced := make([]csp.Nogood, 0, len(higher))
	for _, ng := range higher {
		if p, active := a.project(ng, excluded); active {
			induced = append(induced, p.local)
		}
	}
	solver := central.New(a.buildLocalProblem(induced))
	before := solver.Stats()
	_, ok := solver.Solve()
	a.chargeSolver(before, solver.Stats())
	return !ok
}
