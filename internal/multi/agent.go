package multi

import (
	"fmt"
	"sort"

	"github.com/discsp/discsp/internal/csp"
	"github.com/discsp/discsp/internal/nogood"
	"github.com/discsp/discsp/internal/sim"
)

// Options tunes the multi-variable agent.
type Options struct {
	// SizeBound, when positive, is the kthRslv recording rule lifted to
	// blocks: received nogoods larger than k are not recorded.
	SizeBound int
	// LocalSolutionLimit caps how many local solutions are enumerated when
	// choosing the one minimizing lower-priority violations; 0 means 16.
	LocalSolutionLimit int
}

const defaultLocalSolutionLimit = 16

// Agent owns a block of variables of problem and runs block-wise AWC.
type Agent struct {
	id      sim.AgentID
	problem *csp.Problem
	vars    []csp.Var
	owned   map[csp.Var]bool
	owner   map[csp.Var]sim.AgentID
	opts    Options

	// localNogoods involve only owned variables and are always enforced.
	localNogoods []csp.Nogood
	// store holds cross-boundary constraint nogoods plus learned nogoods.
	store   *nogood.Store
	counter nogood.Counter

	values     map[csp.Var]csp.Value
	priority   int
	view       map[csp.Var]viewEntry
	agentPrios map[sim.AgentID]int
	outLinks   map[sim.AgentID]struct{}

	lastLearned *csp.Nogood
	insoluble   bool
	stats       Stats
}

var (
	_ sim.Agent             = (*Agent)(nil)
	_ sim.InsolubleReporter = (*Agent)(nil)
)

// NewAgent builds the agent with the given id owning partition[id]. initial
// supplies starting values for the owned variables (repaired at Init if
// they violate local constraints).
func NewAgent(id sim.AgentID, problem *csp.Problem, partition Partition, initial csp.SliceAssignment, opts Options) *Agent {
	vars := make([]csp.Var, len(partition[id]))
	copy(vars, partition[id])
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	a := &Agent{
		id:         id,
		problem:    problem,
		vars:       vars,
		owned:      make(map[csp.Var]bool, len(vars)),
		owner:      partition.Owner(),
		opts:       opts,
		store:      nogood.New(),
		values:     make(map[csp.Var]csp.Value, len(vars)),
		view:       make(map[csp.Var]viewEntry),
		agentPrios: make(map[sim.AgentID]int),
		outLinks:   make(map[sim.AgentID]struct{}),
	}
	for _, v := range vars {
		a.owned[v] = true
		a.values[v] = clampToDomain(problem.Domain(v), initial[v])
	}
	seen := make(map[string]bool)
	for _, v := range vars {
		for _, ng := range problem.NogoodsOf(v) {
			if seen[ng.Key()] {
				continue
			}
			seen[ng.Key()] = true
			if a.allOwned(ng) {
				a.localNogoods = append(a.localNogoods, ng)
				continue
			}
			a.store.AddPinned(ng)
			for i := 0; i < ng.Len(); i++ {
				if u := ng.At(i).Var; !a.owned[u] {
					a.outLinks[a.owner[u]] = struct{}{}
				}
			}
		}
	}
	return a
}

// clampToDomain substitutes the first domain value for an initial value
// outside the domain (e.g. the Unassigned sentinel).
func clampToDomain(domain []csp.Value, val csp.Value) csp.Value {
	for _, d := range domain {
		if d == val {
			return val
		}
	}
	return domain[0]
}

func (a *Agent) allOwned(ng csp.Nogood) bool {
	for i := 0; i < ng.Len(); i++ {
		if !a.owned[ng.At(i).Var] {
			return false
		}
	}
	return true
}

// ID implements sim.Agent.
func (a *Agent) ID() sim.AgentID { return a.id }

// CurrentValue implements sim.Agent; it is only meaningful for singleton
// blocks. Use Values for the full local solution.
func (a *Agent) CurrentValue() csp.Value { return a.values[a.vars[0]] }

// Values returns the agent's current local solution as literals in
// variable order.
func (a *Agent) Values() []csp.Lit {
	lits := make([]csp.Lit, len(a.vars))
	for i, v := range a.vars {
		lits[i] = csp.Lit{Var: v, Val: a.values[v]}
	}
	return lits
}

// Checks implements sim.Agent: direct nogood checks plus local-search
// effort (one unit per search node and per forward-checking pruning, the
// closest analogue of a nogood check inside the block solver).
func (a *Agent) Checks() int64 { return a.counter.Total() }

// Insoluble implements sim.InsolubleReporter.
func (a *Agent) Insoluble() bool { return a.insoluble }

// Priority returns the agent's current priority.
func (a *Agent) Priority() int { return a.priority }

// Stats returns the agent's bookkeeping counters.
func (a *Agent) Stats() Stats { return a.stats }

// Init implements sim.Agent: repair the initial block against local
// constraints (externals are unknown, so only local nogoods bind) and
// announce it.
func (a *Agent) Init() []sim.Message {
	if !a.locallyConsistent() {
		sol, ok := a.solveLocal(nil, nil)
		if !ok {
			// The agent's own CSP is unsatisfiable: the whole problem is.
			a.insoluble = true
			return nil
		}
		a.adopt(sol)
	}
	return a.broadcastOk(nil)
}

// Step implements sim.Agent.
func (a *Agent) Step(in []sim.Message) []sim.Message {
	if a.insoluble {
		return nil
	}
	var (
		out        []sim.Message
		mustAnswer []sim.AgentID
		sawTraffic bool
	)
	for _, m := range in {
		sawTraffic = true
		switch msg := m.(type) {
		case Ok:
			a.agentPrios[msg.Sender] = msg.Priority
			for _, l := range msg.Values {
				if !a.owned[l.Var] {
					a.view[l.Var] = viewEntry{val: l.Val, prio: msg.Priority}
				}
			}
		case Request:
			// Always answer with the current block, even on an existing
			// link: the requester asked because it lacks the values.
			a.outLinks[msg.Sender] = struct{}{}
			mustAnswer = append(mustAnswer, msg.Sender)
		case NogoodMsg:
			out = append(out, a.receiveNogood(msg.Nogood)...)
		default:
			panic(fmt.Sprintf("multi: unexpected message type %T", m))
		}
	}
	if !sawTraffic {
		return nil
	}
	acted, actOut := a.checkLocal()
	out = append(out, actOut...)
	if !acted {
		for _, id := range mustAnswer {
			out = append(out, Ok{Sender: a.id, Receiver: id, Values: a.Values(), Priority: a.priority})
		}
	}
	return out
}

func (a *Agent) receiveNogood(ng csp.Nogood) []sim.Message {
	var out []sim.Message
	requested := make(map[sim.AgentID]bool)
	for i := 0; i < ng.Len(); i++ {
		l := ng.At(i)
		if a.owned[l.Var] {
			continue
		}
		if _, known := a.view[l.Var]; !known {
			a.view[l.Var] = viewEntry{val: l.Val, prio: a.agentPrios[a.owner[l.Var]]}
			target := a.owner[l.Var]
			if !requested[target] {
				requested[target] = true
				out = append(out, Request{Sender: a.id, Receiver: target})
			}
		}
	}
	if a.opts.SizeBound > 0 && ng.Len() > a.opts.SizeBound {
		return out
	}
	if a.store.Add(ng) {
		a.stats.NogoodsRecorded++
	}
	return out
}

// fullView is the assignment combining the local solution with the view.
type fullView struct{ a *Agent }

var _ csp.Assignment = fullView{}

// Lookup implements csp.Assignment.
func (f fullView) Lookup(v csp.Var) (csp.Value, bool) {
	if f.a.owned[v] {
		return f.a.values[v], true
	}
	e, ok := f.a.view[v]
	if !ok {
		return 0, false
	}
	return e.val, true
}

func (a *Agent) myRank() rank { return rank{p: a.priority, id: a.id} }

// nogoodRank is the lowest rank among the nogood's external owner agents;
// ok=false when the nogood has no external participant (purely local).
func (a *Agent) nogoodRank(ng csp.Nogood) (rank, bool) {
	var (
		low   rank
		found bool
	)
	for i := 0; i < ng.Len(); i++ {
		v := ng.At(i).Var
		if a.owned[v] {
			continue
		}
		ownerID := a.owner[v]
		r := rank{p: a.agentPrios[ownerID], id: ownerID}
		if !found || low.outranks(r) {
			low, found = r, true
		}
	}
	return low, found
}

func (a *Agent) isHigher(ng csp.Nogood) bool {
	r, ok := a.nogoodRank(ng)
	if !ok {
		return true
	}
	return r.outranks(a.myRank())
}

// locallyConsistent reports whether the current block violates any local
// nogood (externals ignored).
func (a *Agent) locallyConsistent() bool {
	fv := fullView{a: a}
	for _, ng := range a.localNogoods {
		if nogood.Check(ng, fv, &a.counter) {
			return false
		}
	}
	return true
}

// checkLocal is block-wise check_agent_view.
func (a *Agent) checkLocal() (bool, []sim.Message) {
	// Fast path: current block consistent with local nogoods and violated
	// higher nogoods?
	fv := fullView{a: a}
	consistent := a.locallyConsistent()
	if consistent {
		for _, ng := range a.store.All() {
			if !a.isHigher(ng) {
				continue
			}
			if nogood.Check(ng, fv, &a.counter) {
				consistent = false
				break
			}
		}
	}
	if consistent {
		return false, nil
	}

	higher, lower := a.splitStore()
	if sol, ok := a.solveLocal(higher, lower); ok {
		a.adopt(sol)
		return true, a.broadcastOk(nil)
	}

	// Local deadend: no block assignment satisfies the local constraints
	// plus the higher nogoods under the current view.
	a.stats.Deadends++
	learned := a.deriveNogood(higher)
	if a.lastLearned != nil && learned.Equal(*a.lastLearned) {
		return false, nil
	}
	cp := learned
	a.lastLearned = &cp
	a.stats.NogoodsGenerated++
	if learned.Empty() {
		a.insoluble = true
		return false, nil
	}
	var msgs []sim.Message
	for _, target := range a.nogoodOwners(learned) {
		msgs = append(msgs, NogoodMsg{Sender: a.id, Receiver: target, Nogood: learned})
	}

	maxPrio := a.priority
	for _, p := range a.agentPrios {
		if p > maxPrio {
			maxPrio = p
		}
	}
	a.priority = maxPrio + 1
	a.stats.PriorityRaises++

	// Move to the local solution minimizing violations over all cross
	// nogoods (local constraints stay hard).
	if sol, ok := a.solveLocal(nil, a.store.All()); ok {
		a.adopt(sol)
	}
	return true, a.broadcastOk(msgs)
}

// splitStore classifies stored nogoods by priority.
func (a *Agent) splitStore() (higher, lower []csp.Nogood) {
	for _, ng := range a.store.All() {
		if a.isHigher(ng) {
			higher = append(higher, ng)
		} else {
			lower = append(lower, ng)
		}
	}
	return higher, lower
}

// nogoodOwners returns the distinct owner agents of the nogood's variables,
// ascending.
func (a *Agent) nogoodOwners(ng csp.Nogood) []sim.AgentID {
	set := make(map[sim.AgentID]struct{})
	for i := 0; i < ng.Len(); i++ {
		set[a.owner[ng.At(i).Var]] = struct{}{}
	}
	owners := make([]sim.AgentID, 0, len(set))
	for id := range set {
		owners = append(owners, id)
	}
	sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	return owners
}

func (a *Agent) adopt(sol map[csp.Var]csp.Value) {
	for v, val := range sol {
		a.values[v] = val
	}
}

func (a *Agent) broadcastOk(msgs []sim.Message) []sim.Message {
	targets := make([]sim.AgentID, 0, len(a.outLinks))
	for id := range a.outLinks {
		targets = append(targets, id)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i] < targets[j] })
	for _, id := range targets {
		msgs = append(msgs, Ok{Sender: a.id, Receiver: id, Values: a.Values(), Priority: a.priority})
	}
	return msgs
}
